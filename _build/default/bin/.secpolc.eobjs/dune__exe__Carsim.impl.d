bin/carsim.ml: Arg Cmd Cmdliner Format Fun List Printf Secpol Term
