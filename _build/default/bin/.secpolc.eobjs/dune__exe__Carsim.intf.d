bin/carsim.mli:
