bin/secpolc.ml: Arg Cmd Cmdliner Format Fun List Option Printf Secpol String Term
