bin/secpolc.mli:
