bin/threatctl.ml: Arg Cmd Cmdliner Format Fun List Printf Secpol String Term
