bin/threatctl.mli:
