(* secpolc: the policy compiler / toolchain CLI.

   Subcommands:
     check   parse + compile + static analysis (conflicts, shadowing)
     fmt     pretty-print the normal form
     eval    evaluate one access request against a policy
     diff    rule-level difference between two policy files
     bundle  seal a policy file into an update bundle (prints the checksum)
*)

module Policy = Secpol.Policy
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  match Policy.Parser.parse (read_file path) with
  | Ok p -> Ok p
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

let policy_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"POLICY" ~doc:"Policy source file.")

(* ---------- check ---------- *)

let check_cmd =
  let run strategy_first_match file =
    match load file with
    | Error e ->
        prerr_endline e;
        1
    | Ok ast -> (
        match Policy.Compile.compile ast with
        | Error issues ->
            List.iter
              (fun i -> Format.eprintf "%a@." Policy.Compile.pp_issue i)
              issues;
            1
        | Ok (db, warnings) ->
            List.iter
              (fun i -> Format.printf "%a@." Policy.Compile.pp_issue i)
              warnings;
            let conflicts = Policy.Conflict.conflicts db in
            List.iter
              (fun c -> Format.printf "conflict: %a@." Policy.Conflict.pp_conflict c)
              conflicts;
            let shadowed = Policy.Conflict.shadowed db in
            List.iter
              (fun ((a : Policy.Ir.rule), (b : Policy.Ir.rule)) ->
                Format.printf "shadowed: rule #%d is covered by rule #%d@."
                  b.idx a.idx)
              shadowed;
            (* coverage over the universes the policy itself names *)
            let modes =
              match
                List.concat_map
                  (fun (r : Policy.Ir.rule) -> Option.value ~default:[] r.modes)
                  db.Policy.Ir.rules
                |> List.sort_uniq String.compare
              with
              | [] -> [ "(any)" ]
              | l -> l
            in
            let subjects = Policy.Ir.subjects db in
            let assets = Policy.Ir.assets db in
            if subjects <> [] && assets <> [] then
              Format.printf "%a@."
                Policy.Coverage.pp
                (Policy.Coverage.analyse db ~modes ~subjects ~assets);
            Format.printf "%s v%d: %d rules, default %s: %s@." db.Policy.Ir.name
              db.Policy.Ir.version
              (List.length db.Policy.Ir.rules)
              (Policy.Ast.decision_name db.Policy.Ir.default)
              (if conflicts = [] then "OK"
               else if strategy_first_match then
                 "conflicts resolved by source order (first-match)"
               else "conflicts resolved by deny-overrides");
            if conflicts <> [] then 2 else 0)
  in
  let first_match =
    Arg.(value & flag & info [ "first-match" ] ~doc:"Report conflicts assuming first-match resolution.")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse, compile and statically analyse a policy.")
    Term.(const run $ first_match $ policy_file)

(* ---------- fmt ---------- *)

let fmt_cmd =
  let run file =
    match load file with
    | Error e ->
        prerr_endline e;
        1
    | Ok ast ->
        print_string (Policy.Printer.to_string ast);
        0
  in
  Cmd.v
    (Cmd.info "fmt" ~doc:"Print the canonical form of a policy.")
    Term.(const run $ policy_file)

(* ---------- eval ---------- *)

let eval_cmd =
  let run file mode subject asset op msg_id strategy =
    match load file with
    | Error e ->
        prerr_endline e;
        1
    | Ok ast -> (
        match Policy.Compile.compile ast with
        | Error issues ->
            List.iter (fun i -> Format.eprintf "%a@." Policy.Compile.pp_issue i) issues;
            1
        | Ok (db, _) ->
            let strategy =
              match strategy with
              | "deny-overrides" -> Policy.Engine.Deny_overrides
              | "allow-overrides" -> Policy.Engine.Allow_overrides
              | "first-match" -> Policy.Engine.First_match
              | s ->
                  Printf.eprintf "unknown strategy %s\n" s;
                  exit 1
            in
            let engine = Policy.Engine.create ~strategy db in
            let op =
              match op with
              | "read" -> Policy.Ir.Read
              | "write" -> Policy.Ir.Write
              | s ->
                  Printf.eprintf "unknown operation %s (read|write)\n" s;
                  exit 1
            in
            let request = { Policy.Ir.mode; subject; asset; op; msg_id } in
            let outcome = Policy.Engine.decide engine request in
            Format.printf "%a -> %a@." Policy.Ir.pp_request request
              Policy.Engine.pp_outcome outcome;
            (match outcome.Policy.Engine.decision with
            | Policy.Ast.Allow -> 0
            | Policy.Ast.Deny -> 3))
  in
  let mode =
    Arg.(value & opt string "" & info [ "mode" ] ~docv:"MODE" ~doc:"Operating mode.")
  in
  let subject =
    Arg.(required & opt (some string) None & info [ "subject" ] ~docv:"SUBJECT" ~doc:"Requesting subject.")
  in
  let asset =
    Arg.(required & opt (some string) None & info [ "asset" ] ~docv:"ASSET" ~doc:"Target asset.")
  in
  let op =
    Arg.(value & opt string "read" & info [ "op" ] ~docv:"OP" ~doc:"read or write.")
  in
  let msg =
    Arg.(value & opt (some int) None & info [ "msg" ] ~docv:"ID" ~doc:"CAN message id.")
  in
  let strategy =
    Arg.(value & opt string "deny-overrides"
         & info [ "strategy" ] ~docv:"S" ~doc:"deny-overrides, allow-overrides or first-match.")
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate one access request. Exit 0 allow / 3 deny.")
    Term.(const run $ policy_file $ mode $ subject $ asset $ op $ msg $ strategy)

(* ---------- diff ---------- *)

let diff_cmd =
  let run old_file new_file =
    match (load old_file, load new_file) with
    | Error e, _ | _, Error e ->
        prerr_endline e;
        1
    | Ok old_p, Ok new_p ->
        let d = Policy.Update.diff old_p new_p in
        Format.printf "%a" Policy.Update.pp_diff d;
        if d.Policy.Update.added = [] && d.Policy.Update.removed = []
           && d.Policy.Update.default_changed = None
        then begin
          print_endline "policies are semantically identical";
          0
        end
        else 0
  in
  let old_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD" ~doc:"Old policy.")
  in
  let new_file =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW" ~doc:"New policy.")
  in
  Cmd.v
    (Cmd.info "diff" ~doc:"Rule-level difference between two policies.")
    Term.(const run $ old_file $ new_file)

(* ---------- bundle ---------- *)

let bundle_cmd =
  let run file key =
    match Policy.Update.bundle_of_source (read_file file) with
    | Error e ->
        Printf.eprintf "%s: %s\n" file e;
        1
    | Ok b ->
        let b =
          match key with None -> b | Some key -> Policy.Update.sign ~key b
        in
        Printf.printf "name:      %s\nversion:   %d\nchecksum:  %s\nsize:      %d bytes\n"
          b.Policy.Update.name b.Policy.Update.version b.Policy.Update.checksum
          (String.length b.Policy.Update.source);
        (match b.Policy.Update.signature with
        | Some s -> Printf.printf "signature: %s\n" s
        | None -> ());
        0
  in
  let key =
    Arg.(value & opt (some string) None
         & info [ "sign" ] ~docv:"KEY" ~doc:"Sign the bundle under the OEM key.")
  in
  Cmd.v
    (Cmd.info "bundle" ~doc:"Validate and seal a policy into an update bundle.")
    Term.(const run $ policy_file $ key)

let () =
  let info =
    Cmd.info "secpolc" ~version:"1.0.0"
      ~doc:"Policy compiler and toolchain for the Secpol policy DSL."
  in
  exit (Cmd.eval' (Cmd.group info [ check_cmd; fmt_cmd; eval_cmd; diff_cmd; bundle_cmd ]))
