(* threatctl: threat-model inspection and policy derivation.

   Operates on the built-in connected-car model (paper Table I).

   Subcommands:
     report   full security-model document as Markdown
     table    the threat table only
     matrix   the likelihood/impact risk matrix
     rank     threats by DREAD average
     derive   derive and print the least-privilege policy
     show     one threat in detail
*)

module Threat = Secpol.Threat
module V = Secpol.Vehicle
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* every inspection command takes --file to work on a user-authored model;
   the built-in car model (paper Table I) is the default *)
let model_arg =
  Arg.(value & opt (some file) None
       & info [ "f"; "file" ] ~docv:"MODEL"
           ~doc:"Threat-model file (Model_format); defaults to the built-in \
                 connected-car model.")

let load_model = function
  | None -> V.Threat_catalog.model ()
  | Some path -> (
      match Threat.Model_format.parse (read_file path) with
      | Ok m -> m
      | Error e ->
          Printf.eprintf "%s: %s\n" path e;
          exit 1)

let report_cmd =
  let run file =
    print_string (Threat.Report.markdown (load_model file));
    0
  in
  Cmd.v (Cmd.info "report" ~doc:"Full security-model document (Markdown).")
    Term.(const run $ model_arg)

let table_cmd =
  let run file =
    print_string (Threat.Report.threat_table (load_model file));
    0
  in
  Cmd.v (Cmd.info "table" ~doc:"The threat table (Markdown).")
    Term.(const run $ model_arg)

let matrix_cmd =
  let run file =
    Format.printf "%a" Threat.Risk.pp_matrix (load_model file).Threat.Model.threats;
    0
  in
  Cmd.v (Cmd.info "matrix" ~doc:"Likelihood/impact risk matrix.")
    Term.(const run $ model_arg)

let rank_cmd =
  let run file top =
    let threats = Threat.Risk.rank (load_model file).Threat.Model.threats in
    let threats =
      match top with None -> threats | Some n -> Threat.Risk.top n threats
    in
    List.iteri
      (fun i t ->
        Format.printf "%2d. %-40s %.1f (%s)@." (i + 1) t.Threat.Threat.id
          (Threat.Threat.risk t)
          (Threat.Dread.rating_name (Threat.Threat.rating t)))
      threats;
    0
  in
  let top =
    Arg.(value & opt (some int) None & info [ "top" ] ~docv:"N" ~doc:"Only the N highest.")
  in
  Cmd.v (Cmd.info "rank" ~doc:"Threats ranked by DREAD average.")
    Term.(const run $ model_arg $ top)

let derive_cmd =
  let run file version =
    let report = Secpol.Pipeline.derive ~version (load_model file) in
    print_string report.Secpol.Pipeline.bundle.Secpol.Policy.Update.source;
    Format.eprintf "%a@." Secpol.Pipeline.pp_report report;
    0
  in
  let version =
    Arg.(value & opt int 1 & info [ "version" ] ~docv:"V" ~doc:"Policy version.")
  in
  Cmd.v
    (Cmd.info "derive"
       ~doc:"Derive the least-privilege policy (source on stdout, report on stderr).")
    Term.(const run $ model_arg $ version)

let show_cmd =
  let run id =
    match V.Threat_catalog.find id with
    | None ->
        Printf.eprintf "unknown threat %S\n" id;
        1
    | Some row ->
        let t = row.V.Threat_catalog.threat in
        Format.printf "id:          %s@." t.Threat.Threat.id;
        Format.printf "title:       %s@." t.Threat.Threat.title;
        Format.printf "description: %s@." t.Threat.Threat.description;
        Format.printf "asset:       %s@." t.Threat.Threat.asset;
        Format.printf "entry:       %s@."
          (String.concat ", " t.Threat.Threat.entry_points);
        Format.printf "modes:       %s@." (String.concat ", " t.Threat.Threat.modes);
        Format.printf "STRIDE:      %s@."
          (Threat.Stride.to_string t.Threat.Threat.stride);
        Format.printf "DREAD:       %a (%s)@." Threat.Dread.pp
          t.Threat.Threat.dread
          (Threat.Dread.rating_name (Threat.Threat.rating t));
        Format.printf "policy:      %s (paper: %s)@."
          (match Secpol.Policy.Derive.row_access t with
          | Some a -> Secpol.Policy.Derive.access_name a
          | None -> "-")
          (Secpol.Policy.Derive.access_name row.V.Threat_catalog.paper_policy);
        Format.printf "residual:    %b@." (Threat.Threat.residual_risk t);
        0
  in
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"THREAT" ~doc:"Threat id.")
  in
  Cmd.v (Cmd.info "show" ~doc:"One threat in detail.") Term.(const run $ id)

let export_cmd =
  let run file =
    print_string (Threat.Model_format.print (load_model file));
    0
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Serialise a model in the textual interchange format (the \
             built-in car model by default).")
    Term.(const run $ model_arg)

let () =
  let info =
    Cmd.info "threatctl" ~version:"1.0.0"
      ~doc:"Threat-model inspection and policy derivation for the connected-car case study."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            report_cmd; table_cmd; matrix_cmd; rank_cmd; derive_cmd; show_cmd;
            export_cmd;
          ]))
