examples/connected_car.ml: Format List Printf Secpol String
