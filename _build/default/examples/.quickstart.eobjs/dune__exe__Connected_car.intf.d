examples/connected_car.mli:
