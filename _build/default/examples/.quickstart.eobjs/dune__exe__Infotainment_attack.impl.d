examples/infotainment_attack.ml: Format List Printf Secpol String
