examples/infotainment_attack.mli:
