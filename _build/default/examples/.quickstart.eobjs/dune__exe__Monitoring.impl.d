examples/monitoring.ml: Format Hashtbl List Option Printf Secpol String
