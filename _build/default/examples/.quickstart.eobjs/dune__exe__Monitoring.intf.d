examples/monitoring.mli:
