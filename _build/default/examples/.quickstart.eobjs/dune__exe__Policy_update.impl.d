examples/policy_update.ml: Format List Printf Secpol String
