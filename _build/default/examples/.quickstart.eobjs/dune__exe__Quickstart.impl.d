examples/quickstart.ml: Format List Secpol String
