examples/quickstart.mli:
