(* The paper's §V case study, live: a connected car under attack, first
   unprotected, then with the hardware policy engine.

   Run with: dune exec examples/connected_car.exe *)

module V = Secpol.Vehicle
module Car = V.Car
module Names = V.Names
module Messages = V.Messages
module State = V.State
module Attacker = Secpol.Attack.Attacker
module Primitives = Secpol.Attack.Primitives

let banner title =
  Printf.printf "\n=== %s ===\n" title

let show_state (car : Car.t) =
  Format.printf "  state: %a@." State.pp car.state

let journal (car : Car.t) since =
  List.iter
    (fun (t, msg) -> if t >= since then Printf.printf "  [%7.3f] %s\n" t msg)
    (State.events car.state)

let drive_and_attack ~enforcement ~label =
  banner label;
  let car = Car.create ~enforcement () in
  Car.run car ~seconds:1.0;
  Printf.printf "after 1 s of normal driving:\n";
  show_state car;

  (* Attack 1 — Table I row 1: the Jeep-style pivot.  The infotainment unit
     is compromised over its cellular link and forges the immobilise
     command while the car is moving. *)
  banner (label ^ " / spoofed ECU-disable from the infotainment pivot");
  let t0 = Secpol.Sim.Engine.now car.Car.sim in
  let atk = Attacker.compromise car Names.infotainment in
  let accepted =
    Primitives.spoof atk ~msg_id:Messages.ecu_command
      ~payload:(String.make 1 Messages.cmd_disable)
  in
  Printf.printf "  forged frame %s at the compromised node\n"
    (if accepted then "accepted" else "REFUSED by the HPE write filter");
  Car.run car ~seconds:0.5;
  journal car t0;
  show_state car;
  Printf.printf "  attack %s\n"
    (if car.Car.state.State.ev_ecu_enabled then "FAILED — propulsion intact"
     else "SUCCEEDED — car dead on the road");

  (* Attack 2 — Table I row 13: unlock while in motion. *)
  banner (label ^ " / unlock-in-motion replay");
  let t1 = Secpol.Sim.Engine.now car.Car.sim in
  let _ =
    Primitives.spoof atk ~msg_id:Messages.lock_command
      ~payload:(String.make 1 Messages.cmd_unlock)
  in
  Car.run car ~seconds:0.5;
  journal car t1;
  Printf.printf "  doors %s\n"
    (if car.Car.state.State.doors_locked then "stayed locked"
     else "UNLOCKED at speed");

  (* Attack 3 — denial of service flood. *)
  banner (label ^ " / bus flood from the compromised node");
  let sent = Primitives.dos_flood atk ~count:500 in
  Printf.printf "  %d/500 flood frames reached the bus\n" sent;
  Car.run car ~seconds:0.5;

  (* What did the engines see? *)
  (match car.Car.hpes with
  | [] -> ()
  | hpes ->
      banner (label ^ " / HPE statistics");
      List.iter
        (fun (_, hpe) ->
          Format.printf "  %a@."
            (fun ppf () -> Secpol.Hpe.Engine.pp_stats ppf hpe)
            ())
        hpes);
  car

let () =
  (* a device shipped with nothing but firmware-level acceptance filters *)
  let _ = drive_and_attack ~enforcement:Car.Software_filters
      ~label:"conventional device (software filters)"
  in
  (* the paper's proposal: least-privilege policy in a locked HPE *)
  let car =
    drive_and_attack
      ~enforcement:(Car.Hpe (V.Policy_map.baseline ()))
      ~label:"policy-equipped device (HPE)"
  in
  banner "crash handling still works under enforcement";
  let t = Secpol.Sim.Engine.now car.Car.sim in
  V.Safety.trigger_crash (Car.node car Names.safety) car.Car.state;
  Car.run car ~seconds:0.5;
  journal car t;
  Printf.printf
    "\nSummary: the HPE blocks the forged commands at their source while \
     every legitimate function —\ntelemetry, remote locking, the whole \
     crash chain — keeps working.\n"
