(* The software enforcement path (paper §V.B.1): the infotainment browser
   exploit under the SELinux-style policy engine, before and after the
   hardening policy update — and the defence-in-depth interplay with the
   HPE at the bus.

   Run with: dune exec examples/infotainment_attack.exe *)

module V = Secpol.Vehicle
module Car = V.Car
module Os = V.Infotainment_os
module Selinux = Secpol.Selinux

let banner title = Printf.printf "\n=== %s ===\n" title

let attempt_chain os label =
  banner label;
  Printf.printf "browser context: %s\n"
    (Selinux.Context.to_string (Os.browser_context os));
  Printf.printf "benign browsing: %s\n"
    (if Os.browse os then "works" else "broken (policy too tight!)");
  match Os.exploit_browser os with
  | Error e ->
      Printf.printf "exploit: transition DENIED (%s)\n" e;
      Printf.printf "kill chain broken at step 1.\n";
      None
  | Ok installer ->
      Printf.printf "exploit: escalated to %s\n"
        (Selinux.Context.to_string installer);
      let installed = Os.install_package os ~as_:installer in
      Printf.printf "package install: %s\n"
        (if installed then "SUCCEEDED" else "denied");
      Some installer

let try_kill_propulsion car os installer =
  let frame =
    Secpol.Can.Frame.data_std V.Messages.ecu_command
      (String.make 1 V.Messages.cmd_disable)
  in
  let sent = Os.send_can os ~as_:installer frame in
  Printf.printf "CAN write from the escalated domain: %s\n"
    (if sent then "reached the bus" else "refused");
  Car.run car ~seconds:0.3;
  Printf.printf "propulsion: %s\n"
    (if car.Car.state.V.State.ev_ecu_enabled then "intact"
     else "KILLED from the media display")

let () =
  (* Scene 1: factory policy, no HPE — the full Jeep-style chain works. *)
  let car = Car.create () in
  Car.run car ~seconds:0.3;
  let os = Os.create_exn car.Car.state (Car.node car V.Names.infotainment) in
  (match attempt_chain os "factory software policy (v1), no HPE" with
  | Some installer -> try_kill_propulsion car os installer
  | None -> ());

  (* Scene 2: the OEM ships the hardened policy module over the air. *)
  banner "policy update arrives: base module v2";
  (match Os.apply_hardening os with
  | Ok () -> Printf.printf "module loaded; neverallow assertions re-checked.\n"
  | Error es -> failwith (String.concat "; " es));
  (match attempt_chain os "hardened software policy (v2)" with
  | Some _ -> Printf.printf "UNEXPECTED: chain survived v2\n"
  | None -> ());
  Printf.printf "audit log now holds %d denial(s):\n" (Os.denial_count os);
  List.iter
    (fun d ->
      if not d.Selinux.Server.granted then
        Format.printf "  %a@." Selinux.Server.pp_denial d)
    (Selinux.Server.audit_log (Os.server os));

  (* Scene 3: defence in depth — factory-sloppy software policy but an HPE
     on the node; the chain escalates in software yet dies at the bus. *)
  let car2 = Car.create ~enforcement:(Car.Hpe (V.Policy_map.baseline ())) () in
  Car.run car2 ~seconds:0.3;
  let os2 = Os.create_exn car2.Car.state (Car.node car2 V.Names.infotainment) in
  (match
     attempt_chain os2 "factory software policy (v1) + hardware policy engine"
   with
  | Some installer -> try_kill_propulsion car2 os2 installer
  | None -> ());
  Printf.printf
    "\nSummary: either engine alone breaks the kill chain — the software \
     policy at the domain transition,\nthe HPE at the forged bus write; \
     together they give the layered enforcement the paper argues for.\n"
