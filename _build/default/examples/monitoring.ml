(* Security monitoring: the enforcement engines as a detection sensor.

   An HPE-equipped car is watched by the IDS while a compromised node and
   an alien station misbehave; incidents are classified and the bus
   evidence is exported in candump format for offline forensics.

   Run with: dune exec examples/monitoring.exe *)

module V = Secpol.Vehicle
module Car = V.Car
module Ids = V.Ids
module Can = Secpol.Can

let banner title = Printf.printf "\n=== %s ===\n" title

let scan_and_report ids label =
  banner ("IDS scan: " ^ label);
  match Ids.scan ids with
  | [] -> print_endline "  (no incidents)"
  | incidents ->
      List.iter
        (fun i -> Format.printf "  %a@." Ids.pp_incident i)
        incidents

let () =
  let car = Car.create ~enforcement:(Car.Hpe (V.Policy_map.baseline ())) () in
  let ids = Ids.create car in

  banner "phase 1: normal driving";
  Car.run car ~seconds:2.0;
  scan_and_report ids "after 2 s of clean traffic";

  banner "phase 2: the infotainment unit is compromised";
  let atk = Secpol.Attack.Attacker.compromise car V.Names.infotainment in
  (* it probes the bus with commands it was never designed to send *)
  List.iter
    (fun msg_id ->
      ignore
        (Secpol.Attack.Primitives.spoof atk ~msg_id
           ~payload:(String.make 1 V.Messages.cmd_disable)))
    [ V.Messages.ecu_command; V.Messages.eps_command; V.Messages.engine_command ];
  Car.run car ~seconds:0.5;
  scan_and_report ids "after the probing attempts";
  Printf.printf "  vehicle state: propulsion %s, steering %s\n"
    (if car.Car.state.V.State.ev_ecu_enabled then "intact" else "LOST")
    (if car.Car.state.V.State.eps_active then "intact" else "LOST");

  banner "phase 3: an alien station joins the bus";
  let alien = Secpol.Attack.Attacker.alien car ~name:"dongle" in
  (* it impersonates the sensor cluster and floods telemetry *)
  for _ = 1 to 150 do
    ignore
      (Secpol.Attack.Primitives.spoof alien ~msg_id:V.Messages.brake_status
         ~payload:"\x00\x00")
  done;
  ignore (Secpol.Attack.Primitives.spoof alien ~msg_id:0x7C0 ~payload:"\xAA");
  Car.run car ~seconds:1.0;
  scan_and_report ids "after the alien joined";

  banner "forensics: candump evidence (last lines)";
  let log = Can.Candump.export (Car.trace car) in
  let lines = String.split_on_char '\n' log in
  let n = List.length lines in
  List.iteri
    (fun i line -> if i >= n - 6 && line <> "" then Printf.printf "  %s\n" line)
    lines;
  Printf.printf "  (%d frames captured in total)\n" (n - 1);

  banner "incident summary";
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (i : Ids.incident) ->
      let k = Ids.kind_name i.Ids.kind in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    (Ids.incidents ids);
  Hashtbl.iter (fun k v -> Printf.printf "  %-20s %d\n" k v) counts;
  print_endline
    "\nThe same policy machinery that blocks the attacks also tells the \
     operations centre precisely\nwho misbehaved and how — enforcement and \
     detection from one policy source."
