(* The paper's headline claim, §V.A.2/3: when a new threat appears after
   deployment, a policy update beats a guideline-driven redesign.

   This example walks both paths for the same newly discovered threat:
   the stochastic response-time models give the timeline, and the policy
   path is then actually executed — derive, validate, seal, install.

   Run with: dune exec examples/policy_update.exe *)

module Threat = Secpol.Threat
module Policy = Secpol.Policy
module V = Secpol.Vehicle
module L = Secpol.Lifecycle

let ok = function Ok v -> v | Error e -> failwith e

let () =
  (* The deployed fleet runs policy v1 derived from Table I. *)
  let model = V.Threat_catalog.model () in
  let v1 = Secpol.Pipeline.derive model in
  let store = Policy.Update.create () in
  (match Secpol.Pipeline.deploy store v1 with
  | Ok () -> ()
  | Error e -> failwith e);
  Printf.printf "Fleet deployed with policy v1 (%d rules).\n\n"
    (List.length v1.Secpol.Pipeline.db.Policy.Ir.rules);

  (* Day 0: researchers disclose a new attack — drivetrain command
     injection through the public charging port. *)
  let threat =
    Threat.Threat.make ~id:"charging_port_injection"
      ~title:"Command injection through the public charging port"
      ~description:
        "A malicious charging station drives the charge-controller path to \
         inject drivetrain commands."
      ~asset:V.Names.ev_ecu
      ~entry_points:[ V.Names.ep_any_node ]
      ~modes:[ V.Modes.name V.Modes.Normal ]
      ~stride:(ok (Threat.Stride.of_string "STE"))
      ~dread:(ok (Threat.Dread.of_list [ 8; 6; 5; 7; 5 ]))
      ~attack_operation:Threat.Threat.Write
      ~legitimate_operations:[ Threat.Threat.Read ] ()
  in
  Printf.printf "Day 0: new threat disclosed: %s\n" threat.Threat.Threat.title;
  Printf.printf "       STRIDE %s, DREAD %s -> %s priority\n\n"
    (Threat.Stride.to_string threat.Threat.Threat.stride)
    (Format.asprintf "%a" Threat.Dread.pp threat.Threat.Threat.dread)
    (Threat.Risk.priority_name (Threat.Risk.priority threat.Threat.Threat.dread));

  (* Path A: the traditional guideline response. *)
  print_endline "Path A — guideline-based response (redesign + recall):";
  let rng = Secpol.Sim.Rng.create 2026L in
  let plan_a = L.Response.sample rng L.Response.Guideline_redesign in
  Format.printf "%a@.@." L.Response.pp_plan plan_a;

  (* Path B: the paper's policy response. *)
  print_endline "Path B — policy update:";
  let plan_b = L.Response.sample rng L.Response.Policy_update in
  Format.printf "%a@.@." L.Response.pp_plan plan_b;

  (* Execute path B for real. *)
  print_endline "Executing path B:";
  let v2 =
    match
      Secpol.Pipeline.respond_to_new_threat ~store ~model ~threat
        ~at:(L.Response.development_days plan_b *. 86_400.0)
    with
    | Ok r -> r
    | Error es -> failwith (String.concat "; " es)
  in
  Printf.printf "  derived + validated: policy v%d, %d conflicts\n"
    v2.Secpol.Pipeline.bundle.Policy.Update.version
    (List.length v2.Secpol.Pipeline.conflicts);
  Printf.printf "  sealed: checksum %s\n"
    (String.sub v2.Secpol.Pipeline.bundle.Policy.Update.checksum 0 16);
  Printf.printf "  installed on the device store: v%d active\n\n"
    (match Policy.Update.current store v2.Secpol.Pipeline.policy.Policy.Ast.name with
    | Some b -> b.Policy.Update.version
    | None -> -1);
  print_endline "  rule-level diff shipped to the fleet:";
  Format.printf "%a@." Policy.Update.pp_diff
    (Policy.Update.diff v1.Secpol.Pipeline.policy v2.Secpol.Pipeline.policy);

  (* Fleet-level comparison: exposure window distributions. *)
  print_endline "Exposure window (discovery -> 95% of a 100k fleet protected):";
  let results = L.Comparison.compare_all ~trials:300 ~target:0.95 () in
  List.iter (fun r -> Format.printf "%a@.@." L.Comparison.pp_result r) results;
  let no_noshow =
    { L.Ota.default_params with L.Ota.recall_no_show = 0.0 }
  in
  match
    L.Comparison.speedup
      (L.Comparison.compare_all ~trials:300 ~target:0.95 ~params:no_noshow ())
  with
  | Some s ->
      Printf.printf
        "Even granting the recall a 100%% completion rate, the policy path \
         is %.0fx faster to fleet-wide protection.\n"
        s
  | None -> ()
