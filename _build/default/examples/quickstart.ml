(* Quickstart: model a tiny device, derive an enforceable policy, evaluate
   requests against it, and ship an update.

   Run with: dune exec examples/quickstart.exe *)

module Threat = Secpol.Threat
module Policy = Secpol.Policy

let ok = function Ok v -> v | Error e -> failwith e

let () =
  (* 1. Application threat modelling: a smart door lock with two assets. *)
  let assets =
    [
      Threat.Asset.make ~id:"lock_motor" ~name:"Lock motor"
        ~description:"actuator that bolts the door" Threat.Asset.Safety_critical;
      Threat.Asset.make ~id:"access_log" ~name:"Access log"
        ~description:"who opened the door, when" Threat.Asset.Privacy;
    ]
  in
  let entry_points =
    [
      Threat.Entry_point.make ~id:"ble" ~name:"Bluetooth LE"
        Threat.Entry_point.Wireless;
      Threat.Entry_point.make ~id:"cloud" ~name:"Cloud API"
        Threat.Entry_point.Network;
      Threat.Entry_point.make ~id:"keypad" ~name:"Keypad"
        Threat.Entry_point.Physical;
    ]
  in
  (* STRIDE classification and DREAD scores per identified threat. *)
  let threats =
    [
      Threat.Threat.make ~id:"replay_unlock"
        ~title:"Replayed BLE unlock command"
        ~asset:"lock_motor" ~entry_points:[ "ble" ]
        ~stride:(ok (Threat.Stride.of_string "ST"))
        ~dread:(ok (Threat.Dread.of_list [ 8; 6; 5; 7; 6 ]))
        ~attack_operation:Threat.Threat.Write
        ~legitimate_operations:[ Threat.Threat.Read ] ();
      Threat.Threat.make ~id:"log_exfiltration"
        ~title:"Access-log exfiltration through the cloud API"
        ~asset:"access_log" ~entry_points:[ "cloud" ]
        ~stride:(ok (Threat.Stride.of_string "I"))
        ~dread:(ok (Threat.Dread.of_list [ 5; 7; 6; 8; 7 ]))
        ~attack_operation:Threat.Threat.Read
        ~legitimate_operations:[ Threat.Threat.Read ] ();
    ]
  in
  let model =
    Threat.Model.make_exn ~use_case:"Smart door lock" ~assets ~entry_points
      ~threats ()
  in
  Format.printf "%a@." Threat.Model.pp_report model;

  (* 2. The paper's move: derive an enforceable policy instead of prose. *)
  let report = Secpol.Pipeline.derive model in
  print_endline "Derived policy:";
  print_string report.Secpol.Pipeline.bundle.Policy.Update.source;

  (* 3. Enforce it. *)
  let engine = Policy.Engine.create report.Secpol.Pipeline.db in
  let request subject op =
    {
      Policy.Ir.mode = "";
      subject;
      asset = "lock_motor";
      op;
      msg_id = None;
    }
  in
  let show subject op =
    Format.printf "  %s %s lock_motor -> %a@." subject (Policy.Ir.op_name op)
      Policy.Engine.pp_outcome
      (Policy.Engine.decide engine (request subject op))
  in
  print_endline "\nDecisions:";
  show "ble" Policy.Ir.Read;
  show "ble" Policy.Ir.Write;
  (* the replay attack: blocked by least privilege *)
  show "keypad" Policy.Ir.Read;

  (* residual risk: which threats can't be stopped by R/W alone? *)
  (match report.Secpol.Pipeline.residual with
  | [] -> print_endline "\nNo residual risk: every attack operation is excluded."
  | residual ->
      Format.printf "\nResidual risk (needs behavioural policies): %s@."
        (String.concat ", "
           (List.map (fun (t : Threat.Threat.t) -> t.id) residual)));

  (* 4. Post-deployment: install the policy, then ship an update for a
        newly discovered threat. *)
  let store = Policy.Update.create () in
  (match Secpol.Pipeline.deploy store report with
  | Ok () -> print_endline "\nInstalled policy v1 on the device."
  | Error e -> failwith e);
  let new_threat =
    Threat.Threat.make ~id:"keypad_brute_force"
      ~title:"Keypad brute-force unlock" ~asset:"lock_motor"
      ~entry_points:[ "keypad" ]
      ~stride:(ok (Threat.Stride.of_string "SE"))
      ~dread:(ok (Threat.Dread.of_list [ 7; 9; 4; 6; 8 ]))
      ~attack_operation:Threat.Threat.Write
      ~legitimate_operations:[ Threat.Threat.Read ] ()
  in
  match
    Secpol.Pipeline.respond_to_new_threat ~store ~model ~threat:new_threat
      ~at:86_400.0
  with
  | Ok r2 ->
      Format.printf
        "New threat %s countered by policy v%d — an update, not a redesign.@."
        new_threat.Threat.Threat.id r2.Secpol.Pipeline.bundle.Policy.Update.version;
      print_endline "Diff against v1:";
      Format.printf "%a@." Policy.Update.pp_diff
        (Policy.Update.diff report.Secpol.Pipeline.policy r2.Secpol.Pipeline.policy)
  | Error es -> failwith (String.concat "; " es)
