lib/attack/attacker.ml: List Secpol_can Secpol_hpe Secpol_vehicle String
