lib/attack/attacker.mli: Secpol_can Secpol_vehicle
