lib/attack/campaign.ml: Array Attacker Format Int64 List Primitives Scenarios Secpol_can Secpol_sim Secpol_vehicle String
