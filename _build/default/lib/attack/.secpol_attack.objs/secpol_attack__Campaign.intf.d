lib/attack/campaign.mli: Format Scenarios Secpol_vehicle
