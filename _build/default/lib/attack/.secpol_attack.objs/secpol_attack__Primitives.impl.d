lib/attack/primitives.ml: Attacker Char Secpol_can Secpol_sim String
