lib/attack/primitives.mli: Attacker Secpol_sim
