lib/attack/scenarios.ml: Attacker Format List Primitives Printf Secpol_can Secpol_threat Secpol_vehicle String
