lib/attack/scenarios.mli: Format Secpol_vehicle
