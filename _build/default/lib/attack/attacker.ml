module Car = Secpol_vehicle.Car
module Node = Secpol_can.Node
module Controller = Secpol_can.Controller
module Frame = Secpol_can.Frame

type t = {
  node : Node.t;
  hpe : Secpol_hpe.Engine.t option;
  mutable captured : Frame.t list; (* newest first *)
}

let hook_capture t =
  Node.set_on_receive t.node (fun _node ~sender:_ frame ->
      t.captured <- frame :: t.captured)

let compromise car name =
  let node = Car.node car name in
  (* Malicious firmware clears its own software filter bank. *)
  Controller.set_filters (Node.controller node) [];
  let t = { node; hpe = Car.hpe car name; captured = [] } in
  hook_capture t;
  t

let alien car ~name =
  let node = Node.create ~filters:[] ~name car.Car.bus in
  let t = { node; hpe = None; captured = [] } in
  hook_capture t;
  t

let node_name t = Node.name t.node

let send t frame = Node.send t.node frame

let spoof_command t ~msg_id cmd =
  send t (Frame.data (Secpol_can.Identifier.standard msg_id) (String.make 1 cmd))

let try_reconfigure_hpe t =
  match t.hpe with
  | None -> Ok ()
  | Some hpe ->
      Secpol_hpe.Registers.write_reg
        (Secpol_hpe.Engine.registers hpe)
        ~addr:Secpol_hpe.Registers.cmd_clear 0

let captured t = List.rev t.captured

let replay t ?(filter = fun _ -> true) () =
  List.fold_left
    (fun acc frame -> if filter frame && send t frame then acc + 1 else acc)
    0 (captured t)
