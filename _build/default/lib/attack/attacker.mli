(** Attacker models.

    Two placements, following the paper's inside/outside distinction:
    - {!compromise}: take over an existing node's *firmware*.  Firmware can
      clear the controller's software acceptance filters and transmit
      arbitrary frames through its own controller — but it cannot remove
      the HPE gates, and a locked HPE register file refuses
      reconfiguration.
    - {!alien}: introduce a foreign station on the bus.  It has full
      control of its own (HPE-less) hardware, but victim-side read gates
      still apply to what it injects. *)

type t

val compromise : Secpol_vehicle.Car.t -> string -> t
(** Compromise the named node's firmware: acceptance filters cleared,
    transmit path under attacker control. *)

val alien : Secpol_vehicle.Car.t -> name:string -> t
(** Attach a new malicious station. *)

val node_name : t -> string

val send : t -> Secpol_can.Frame.t -> bool
(** Transmit a raw frame; [false] when refused locally (HPE write gate). *)

val spoof_command : t -> msg_id:int -> char -> bool
(** Forge a one-command frame for an arbitrary message ID. *)

val try_reconfigure_hpe : t -> (unit, string) result
(** Attempt to clear the node's HPE approved lists through its register
    file, as malicious firmware would.  [Ok] only against an unlocked (or
    absent) engine; absence reports [Ok] trivially with no effect. *)

val captured : t -> Secpol_can.Frame.t list
(** Frames observed on the bus since compromise (promiscuous capture for
    replay). *)

val replay : t -> ?filter:(Secpol_can.Frame.t -> bool) -> unit -> int
(** Retransmit captured frames (newest last); returns how many were
    accepted for transmission. *)
