module V = Secpol_vehicle
module Car = V.Car
module Messages = V.Messages
module Names = V.Names
module Trace = Secpol_can.Trace
module Rng = Secpol_sim.Rng

type level = Off | Software | Hardware

let level_name = function
  | Off -> "no enforcement"
  | Software -> "software filters"
  | Hardware -> "hardware policy engine"

let enforcement_of = function
  | Off -> Car.No_enforcement
  | Software -> Car.Software_filters
  | Hardware -> Car.Hpe (V.Policy_map.baseline ())

type summary = {
  level : level;
  outcomes : Scenarios.outcome list;
  succeeded : int;
  residual_succeeded : int;
  clean_succeeded : int;
}

let run_level ?seed level =
  let outcomes = Scenarios.run_all ?seed ~enforcement:(enforcement_of level) () in
  let succeeded =
    List.length (List.filter (fun (o : Scenarios.outcome) -> o.succeeded) outcomes)
  in
  let residual_succeeded =
    List.length
      (List.filter
         (fun (o : Scenarios.outcome) -> o.succeeded && o.expected_residual)
         outcomes)
  in
  { level; outcomes; succeeded; residual_succeeded;
    clean_succeeded = succeeded - residual_succeeded }

let table ?seed () = List.map (run_level ?seed) [ Off; Software; Hardware ]

let matches_paper summaries =
  let find l = List.find_opt (fun s -> s.level = l) summaries in
  match (find Off, find Hardware) with
  | Some off, Some hw ->
      let total = List.length off.outcomes in
      let residual_total =
        List.length
          (List.filter
             (fun (o : Scenarios.outcome) -> o.expected_residual)
             off.outcomes)
      in
      off.succeeded = total
      && hw.clean_succeeded = 0
      && hw.residual_succeeded = residual_total
  | _ -> false

(* Command messages a forger would abuse: everything actuating. *)
let command_ids =
  [
    Messages.ecu_command;
    Messages.eps_command;
    Messages.engine_command;
    Messages.lock_command;
    Messages.modem_command;
    Messages.sw_install;
  ]

type sweep_point = { compromised : int; attack_frames : int; delivered : int }

let firmware_sweep ?(seed = 42L) ?(frames_per_node = 20) level
    ~compromised_counts =
  List.map
    (fun k ->
      let car = Car.create ~seed ~enforcement:(enforcement_of level) () in
      Car.run car ~seconds:0.2;
      let rng = Rng.create (Int64.add seed (Int64.of_int k)) in
      let order = Array.of_list Names.nodes in
      Rng.shuffle rng order;
      let chosen = Array.to_list (Array.sub order 0 (min k (Array.length order))) in
      let attackers = List.map (fun n -> (n, Attacker.compromise car n)) chosen in
      let attack_frames = ref 0 in
      List.iter
        (fun (name, atk) ->
          let foreign_ids =
            List.filter
              (fun id ->
                not
                  (List.exists
                     (fun (m : Messages.t) -> m.id = id)
                     (Messages.produced_by name)))
              command_ids
          in
          for i = 1 to frames_per_node do
            let id = List.nth foreign_ids (i mod List.length foreign_ids) in
            incr attack_frames;
            ignore
              (Primitives.spoof atk ~msg_id:id
                 ~payload:(String.make 1 Messages.cmd_disable))
          done)
        attackers;
      Car.run car ~seconds:1.0;
      let delivered =
        Trace.count (Car.trace car) (fun e ->
            match e.Trace.event with
            | Trace.Rx_delivered _ ->
                List.mem e.Trace.node chosen
                && (match e.Trace.frame.Secpol_can.Frame.id with
                   | Secpol_can.Identifier.Standard id ->
                       List.mem id command_ids
                       && not
                            (List.exists
                               (fun (m : Messages.t) -> m.id = id)
                               (Messages.produced_by e.Trace.node))
                   | Secpol_can.Identifier.Extended _ -> false)
            | _ -> false)
      in
      { compromised = k; attack_frames = !attack_frames; delivered })
    compromised_counts

type benign_stats = {
  seconds : float;
  deliveries : int;
  hpe_blocks : int;
  undelivered : int;
}

let designed_deliveries car =
  Trace.count (Car.trace car) (fun e ->
      match e.Trace.event with
      | Trace.Rx_delivered receiver -> (
          match e.Trace.frame.Secpol_can.Frame.id with
          | Secpol_can.Identifier.Standard id -> (
              match Messages.find id with
              | Some m -> List.mem receiver m.consumers
              | None -> false)
          | Secpol_can.Identifier.Extended _ -> false)
      | _ -> false)

let benign_run ?(seed = 42L) ?(seconds = 5.0) level =
  let run lvl =
    let car = Car.create ~seed ~enforcement:(enforcement_of lvl) () in
    Car.run car ~seconds;
    car
  in
  let baseline = designed_deliveries (run Off) in
  let car = run level in
  let deliveries = designed_deliveries car in
  {
    seconds;
    deliveries;
    hpe_blocks = Car.false_hpe_blocks car;
    undelivered = max 0 (baseline - deliveries);
  }

let pp_summary ppf s =
  Format.fprintf ppf "%-24s %2d/%d attacks succeed (%d residual, %d clean)"
    (level_name s.level) s.succeeded (List.length s.outcomes)
    s.residual_succeeded s.clean_succeeded
