(** Attack campaigns: the quantitative experiments behind the paper's
    comparative claims.

    - {!run_level} / {!table}: all sixteen Table-I scenarios under one
      enforcement level (experiment Q1).  The paper's expectation: with no
      enforcement every attack lands; with the HPE and the least-privilege
      baseline policy, exactly the residual (W/RW) rows survive.
    - {!firmware_sweep}: containment as node firmware compromise spreads
      (experiment Q3).  Software acceptance filters sit in firmware, so
      they vanish with the nodes; the locked HPE does not.
    - {!benign_run}: false-block measurement on clean traffic
      (experiment Q4). *)

type level = Off | Software | Hardware

val level_name : level -> string

val enforcement_of : level -> Secpol_vehicle.Car.enforcement
(** [Hardware] uses the least-privilege baseline policy of
    {!Secpol_vehicle.Policy_map.baseline}. *)

type summary = {
  level : level;
  outcomes : Scenarios.outcome list;
  succeeded : int;
  residual_succeeded : int;  (** successes on W/RW rows *)
  clean_succeeded : int;  (** successes on R rows *)
}

val run_level : ?seed:int64 -> level -> summary

val table : ?seed:int64 -> unit -> summary list
(** All three levels. *)

val matches_paper : summary list -> bool
(** The reproduction criterion: under [Off] every scenario succeeds; under
    [Hardware] the R rows are all blocked and the W/RW rows all remain
    (the paper's residual-risk cases). *)

type sweep_point = {
  compromised : int;  (** number of compromised nodes *)
  attack_frames : int;  (** forged frames attempted *)
  delivered : int;  (** forged frames accepted by some victim *)
}

val firmware_sweep :
  ?seed:int64 ->
  ?frames_per_node:int ->
  level ->
  compromised_counts:int list ->
  sweep_point list
(** For each count, compromise that many nodes (deterministically shuffled
    by [seed]), let each forge [frames_per_node] (default 20) command
    frames it is not designed to produce, and measure deliveries. *)

type benign_stats = {
  seconds : float;
  deliveries : int;  (** frames accepted by designed consumers *)
  hpe_blocks : int;
      (** false HPE blocks on clean traffic
          ({!Secpol_vehicle.Car.false_hpe_blocks}) *)
  undelivered : int;  (** designed deliveries missing vs the Off baseline *)
}

val benign_run : ?seed:int64 -> ?seconds:float -> level -> benign_stats
(** Clean traffic only.  Under [Hardware] the reproduction expects
    [hpe_blocks = 0] and [undelivered = 0]: least privilege must not break
    legitimate function. *)

val pp_summary : Format.formatter -> summary -> unit
