module Frame = Secpol_can.Frame
module Identifier = Secpol_can.Identifier
module Rng = Secpol_sim.Rng

let spoof attacker ~msg_id ~payload =
  Attacker.send attacker (Frame.data (Identifier.standard msg_id) payload)

let burst attacker ~msg_id ~payload ~count =
  let sent = ref 0 in
  for _ = 1 to count do
    if spoof attacker ~msg_id ~payload then incr sent
  done;
  !sent

let dos_flood attacker ~count = burst attacker ~msg_id:0x000 ~payload:"" ~count

let fuzz attacker rng ~count =
  let sent = ref 0 in
  for _ = 1 to count do
    let msg_id = Rng.int rng 0x800 in
    let payload = String.make 1 (Char.chr (Rng.int rng 256)) in
    if spoof attacker ~msg_id ~payload then incr sent
  done;
  !sent
