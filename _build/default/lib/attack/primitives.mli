(** Attack primitives composed by the scenarios. *)

val spoof :
  Attacker.t -> msg_id:int -> payload:string -> bool
(** Inject a forged data frame. *)

val burst :
  Attacker.t -> msg_id:int -> payload:string -> count:int -> int
(** Inject [count] copies back-to-back; returns how many the local transmit
    path accepted. *)

val dos_flood :
  Attacker.t -> count:int -> int
(** Classic CAN denial of service: flood the bus with the
    highest-priority identifier (0x000) so arbitration starves everyone
    else.  Returns frames accepted for transmission. *)

val fuzz :
  Attacker.t -> Secpol_sim.Rng.t -> count:int -> int
(** Random standard IDs with random 1-byte payloads; returns frames
    accepted for transmission. *)
