module V = Secpol_vehicle
module Car = V.Car
module State = V.State
module Messages = V.Messages
module Names = V.Names
module Modes = V.Modes
module Catalog = V.Threat_catalog
module Frame = Secpol_can.Frame
module Identifier = Secpol_can.Identifier

type outcome = {
  threat_id : string;
  platform : string;
  succeeded : bool;
  expected_residual : bool;
  detail : string;
}

type t = {
  threat_id : string;
  description : string;
  platform : string;
  execute : seed:int64 -> Car.enforcement -> bool * string;
      (** (succeeded, detail) *)
}

let threat_id t = t.threat_id

let description t = t.description

let residual_of_catalog id =
  match Catalog.find id with
  | Some row -> Secpol_threat.Threat.residual_risk row.threat
  | None -> false

let warmup car = Car.run car ~seconds:0.3

let settle car = Car.run car ~seconds:0.3

let one cmd = String.make 1 cmd

let spoof atk msg_id payload = Primitives.spoof atk ~msg_id ~payload

(* Most rows share one shape: drive, compromise the platform, inject one
   forged command, observe the state predicate. *)
let simple ~threat_id ~description ~platform ~msg_id ~payload ~success =
  {
    threat_id;
    description;
    platform;
    execute =
      (fun ~seed enforcement ->
        let car = Car.create ~seed ~enforcement () in
        warmup car;
        let atk = Attacker.compromise car platform in
        let accepted = spoof atk msg_id payload in
        settle car;
        let ok = success car in
        ( ok,
          Printf.sprintf "frame %s at the attacker's node%s"
            (if accepted then "accepted" else "refused")
            (if ok then "; goal state reached" else "") ));
  }

let scenarios =
  [
    (* 1: spoofed door-lock/safety-provenance data disables the ECU. *)
    simple ~threat_id:Catalog.ev_ecu_spoof_disable_locks
      ~description:
        "Compromised infotainment forges the immobilise command (as the \
         door-lock/alarm path would send it) while driving."
      ~platform:Names.infotainment ~msg_id:Messages.ecu_command
      ~payload:(one Messages.cmd_disable)
      ~success:(fun car -> not car.Car.state.State.ev_ecu_enabled);
    (* 2: spoofed sensor data triggers the ECU's emergency reaction. *)
    simple ~threat_id:Catalog.ev_ecu_spoof_disable_sensors
      ~description:
        "Compromised telematics forges an obstacle warning at speed; the \
         ECU performs an emergency stop."
      ~platform:Names.telematics ~msg_id:Messages.obstacle_warning
      ~payload:"\001"
      ~success:(fun car -> car.Car.state.State.speed_kmh = 0.0);
    (* 3: thief silences the tracking uplink from the telematics itself. *)
    {
      threat_id = Catalog.ev_ecu_tracking_disable;
      description =
        "Thief with wireless access compromises the telematics firmware and \
         shuts the modem down; tracking reports stop.  Read/write policy \
         leaves this residual (the unit legitimately owns its radio).";
      platform = Names.telematics;
      execute =
        (fun ~seed enforcement ->
          let car = Car.create ~seed ~enforcement ~driving:false () in
          warmup car;
          let _atk = Attacker.compromise car Names.telematics in
          (* firmware-level action on the unit itself; no bus frame *)
          car.Car.state.State.modem_enabled <- false;
          car.Car.state.State.tracking_enabled <- false;
          settle car;
          ( (not car.Car.state.State.tracking_enabled),
            "firmware action on the compromised unit; no CAN frame to filter"
          ));
    };
    (* 4: reactivating an immobilised vehicle over the wireless link. *)
    {
      threat_id = Catalog.ev_ecu_failsafe_override;
      description =
        "Vehicle remotely immobilised after theft; attacker replays the \
         enable command from the compromised telematics unit.";
      platform = Names.telematics;
      execute =
        (fun ~seed enforcement ->
          let car = Car.create ~seed ~enforcement ~driving:false () in
          car.Car.state.State.ev_ecu_enabled <- false;
          Car.set_mode car Modes.Fail_safe;
          warmup car;
          let atk = Attacker.compromise car Names.telematics in
          let accepted =
            spoof atk Messages.ecu_command (one Messages.cmd_enable)
          in
          settle car;
          ( car.Car.state.State.ev_ecu_enabled,
            if accepted then "enable command reached the bus"
            else "enable command refused at the attacker's node" ));
    };
    (* 5: EPS deactivation from an arbitrary compromised node. *)
    simple ~threat_id:Catalog.eps_deactivation
      ~description:
        "Compromised infotainment (standing in for 'any node') forges the \
         steering-assist shutdown."
      ~platform:Names.infotainment ~msg_id:Messages.eps_command
      ~payload:(one Messages.cmd_disable)
      ~success:(fun car -> not car.Car.state.State.eps_active);
    (* 6: engine shutdown from the compromised sensor cluster. *)
    simple ~threat_id:Catalog.engine_sensor_deactivation
      ~description:
        "Compromised sensor cluster sends the engine stop command it was \
         never designed to produce."
      ~platform:Names.sensors ~msg_id:Messages.engine_command
      ~payload:(one Messages.cmd_disable)
      ~success:(fun car -> not car.Car.state.State.engine_running);
    (* 7: telematics reconfigured from the drivetrain side. *)
    simple ~threat_id:Catalog.connectivity_component_modification
      ~description:
        "Pivot from the compromised sensor cluster reconfigures (here: \
         shuts down) the telematics modem during operation."
      ~platform:Names.sensors ~msg_id:Messages.modem_command
      ~payload:(one Messages.cmd_disable)
      ~success:(fun car -> not car.Car.state.State.modem_enabled);
    (* 8: privacy attack via modified radio firmware. *)
    simple ~threat_id:Catalog.connectivity_firmware_privacy
      ~description:
        "Compromised infotainment pushes a radio-firmware modification \
         (modelled as an unauthorised modem reconfiguration command)."
      ~platform:Names.infotainment ~msg_id:Messages.modem_command
      ~payload:(one Messages.cmd_disable)
      ~success:(fun car -> not car.Car.state.State.modem_enabled);
    (* 9: fail-safe comms silenced through the emergency path (residual). *)
    {
      threat_id = Catalog.connectivity_modem_disable_emergency;
      description =
        "Compromised safety controller — the legitimate emergency path — \
         shuts the modem down before a crash; the eCall then fails.  The \
         RW policy row cannot block a legitimate writer.";
      platform = Names.safety;
      execute =
        (fun ~seed enforcement ->
          let car = Car.create ~seed ~enforcement () in
          warmup car;
          let atk = Attacker.compromise car Names.safety in
          let _ = spoof atk Messages.modem_command (one Messages.cmd_disable) in
          settle car;
          ( (not car.Car.state.State.modem_enabled),
            "modem state after the forged shutdown" ));
    };
    (* 10: the same attack via the sensor/airbag path (non-producer). *)
    simple ~threat_id:Catalog.connectivity_modem_disable_sensors
      ~description:
        "Compromised sensor cluster tries the same modem shutdown through \
         the crash-signalling path."
      ~platform:Names.sensors ~msg_id:Messages.modem_command
      ~payload:(one Messages.cmd_disable)
      ~success:(fun car -> not car.Car.state.State.modem_enabled);
    (* 11: browser exploit escalation chain (software + bus). *)
    {
      threat_id = Catalog.infotainment_browser_escalation;
      description =
        "Media-browser exploit transitions into the installer domain, \
         installs a package, and uses the CAN socket to kill propulsion.  \
         The software policy engine (hardened policy) breaks the chain at \
         the transition; the HPE breaks it at the bus.";
      platform = Names.infotainment;
      execute =
        (fun ~seed enforcement ->
          let car = Car.create ~seed ~enforcement () in
          warmup car;
          let hardened =
            match enforcement with
            | Car.Software_filters -> true
            | Car.No_enforcement | Car.Hpe _ -> false
          in
          let os =
            V.Infotainment_os.create_exn ~hardened car.Car.state
              (Car.node car Names.infotainment)
          in
          let detail, escalated =
            match V.Infotainment_os.exploit_browser os with
            | Ok ctx -> ("escalated to installer_t", Some ctx)
            | Error e -> (e, None)
          in
          match escalated with
          | None -> (false, detail)
          | Some ctx ->
              let installed = V.Infotainment_os.install_package os ~as_:ctx in
              let frame =
                Frame.data
                  (Identifier.standard Messages.ecu_command)
                  (one Messages.cmd_disable)
              in
              let _sent = V.Infotainment_os.send_can os ~as_:ctx frame in
              settle car;
              ( installed && not car.Car.state.State.ev_ecu_enabled,
                detail ^ "; final CAN write "
                ^
                if not car.Car.state.State.ev_ecu_enabled then "landed"
                else "did not take effect" ));
    };
    (* 12: forged status values on the driver display. *)
    {
      threat_id = Catalog.infotainment_status_modification;
      description =
        "Compromised telematics forges acceleration telemetry; the display \
         shows 200 km/h while the car does 50.";
      platform = Names.telematics;
      execute =
        (fun ~seed enforcement ->
          let car = Car.create ~seed ~enforcement () in
          warmup car;
          let atk = Attacker.compromise car Names.telematics in
          let _ = spoof atk Messages.accel_status "\200\000" in
          Car.run car ~seconds:0.005;
          let displayed =
            V.Infotainment.displayed_speed (Car.node car Names.infotainment)
          in
          ( displayed = Some 200.0,
            match displayed with
            | Some s -> Printf.sprintf "display shows %.0f km/h" s
            | None -> "display never updated" ));
    };
    (* 13: unlock while in motion. *)
    simple ~threat_id:Catalog.door_unlock_in_motion
      ~description:
        "Compromised infotainment replays the unlock command at speed."
      ~platform:Names.infotainment ~msg_id:Messages.lock_command
      ~payload:(one Messages.cmd_unlock)
      ~success:(fun car -> not car.Car.state.State.doors_locked);
    (* 14: doors relocked during an accident (residual). *)
    {
      threat_id = Catalog.door_lock_in_accident;
      description =
        "After a crash unlocks the doors, the compromised telematics unit \
         — a legitimate lock-command writer — relocks them, trapping the \
         occupants.  The W policy row cannot block a legitimate writer.";
      platform = Names.telematics;
      execute =
        (fun ~seed enforcement ->
          let car = Car.create ~seed ~enforcement () in
          warmup car;
          V.Safety.trigger_crash (Car.node car Names.safety) car.Car.state;
          Car.run car ~seconds:0.1;
          let atk = Attacker.compromise car Names.telematics in
          let _ = spoof atk Messages.lock_command (one Messages.cmd_lock) in
          settle car;
          ( car.Car.state.State.doors_locked,
            Printf.sprintf "doors %s after the crash"
              (if car.Car.state.State.doors_locked then "relocked" else "open")
          ));
    };
    (* 15: false fail-safe triggering via forged crash telemetry. *)
    simple ~threat_id:Catalog.safety_false_failsafe
      ~description:
        "Compromised infotainment forges a crash-magnitude brake reading; \
         the safety controller enters fail-safe and unlocks the car."
      ~platform:Names.infotainment ~msg_id:Messages.brake_status
      ~payload:(String.make 1 V.Sensors.crash_signal)
      ~success:(fun car -> car.Car.state.State.failsafe_latched);
    (* 16: alarm and locking defeated from the lock controller (residual). *)
    {
      threat_id = Catalog.safety_alarm_disable;
      description =
        "Parked, locked and alarmed car: the compromised door-lock \
         controller opens its own actuators and — as a legitimate \
         immobiliser writer — lifts the propulsion cut.";
      platform = Names.door_locks;
      execute =
        (fun ~seed enforcement ->
          let car = Car.create ~seed ~enforcement ~driving:false () in
          car.Car.state.State.doors_locked <- true;
          V.Safety.arm_alarm (Car.node car Names.safety) car.Car.state;
          warmup car;
          let atk = Attacker.compromise car Names.door_locks in
          (* actuators are under the compromised firmware's direct control *)
          car.Car.state.State.doors_locked <- false;
          let _ = spoof atk Messages.ecu_command (one Messages.cmd_enable) in
          settle car;
          ( car.Car.state.State.ev_ecu_enabled
            && not car.Car.state.State.doors_locked,
            "doors opened locally; immobiliser state via forged enable" ));
    };
  ]

let all = scenarios

let find id = List.find_opt (fun s -> s.threat_id = id) scenarios

let run ?(seed = 42L) ~enforcement t =
  let succeeded, detail = t.execute ~seed enforcement in
  {
    threat_id = t.threat_id;
    platform = t.platform;
    succeeded;
    expected_residual = residual_of_catalog t.threat_id;
    detail;
  }

let run_all ?seed ~enforcement () =
  List.map (fun s -> run ?seed ~enforcement s) scenarios

let pp_outcome ppf (o : outcome) =
  Format.fprintf ppf "%-40s via %-12s %s%s" o.threat_id o.platform
    (if o.succeeded then "SUCCEEDED" else "blocked  ")
    (if o.expected_residual then " [residual per Table I]" else "")
