(** The sixteen Table-I threats as executable attack scenarios.

    Each scenario builds a car under the requested enforcement, establishes
    the row's preconditions (driving / parked / crashed / immobilised),
    mounts the attack from a concrete platform, and evaluates success
    against the vehicle state.

    Attack platforms follow the row's entry points: R-rows are mounted from
    a pivot node that is *not* a designed producer of the abused message
    (so least-privilege write filtering can block them), while the W/RW
    rows are mounted from a node that legitimately writes the abused
    message — the residual-risk cases the paper's coarse policies cannot
    stop. *)

type outcome = {
  threat_id : string;
  platform : string;  (** node the attack was mounted from *)
  succeeded : bool;  (** did the attack reach its goal state *)
  expected_residual : bool;  (** Table I marks this row W/RW (residual) *)
  detail : string;
}

type t

val all : t list
(** One scenario per Table-I row, in table order. *)

val find : string -> t option
(** By threat id. *)

val threat_id : t -> string

val description : t -> string

val run :
  ?seed:int64 -> enforcement:Secpol_vehicle.Car.enforcement -> t -> outcome
(** Execute the scenario from scratch. *)

val run_all :
  ?seed:int64 ->
  enforcement:Secpol_vehicle.Car.enforcement ->
  unit ->
  outcome list

val pp_outcome : Format.formatter -> outcome -> unit
