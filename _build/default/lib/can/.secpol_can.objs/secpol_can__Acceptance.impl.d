lib/can/acceptance.ml: Identifier List
