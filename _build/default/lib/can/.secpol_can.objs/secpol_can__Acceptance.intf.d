lib/can/acceptance.mli: Identifier
