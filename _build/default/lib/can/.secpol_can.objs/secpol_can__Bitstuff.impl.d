lib/can/bitstuff.ml: List
