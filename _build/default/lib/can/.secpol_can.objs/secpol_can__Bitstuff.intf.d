lib/can/bitstuff.mli:
