lib/can/bus.ml: Frame Identifier List Printf Secpol_sim Trace Transceiver
