lib/can/bus.mli: Frame Secpol_sim Trace
