lib/can/candump.ml: Buffer Bus Char Frame Identifier List Printf Secpol_sim String Trace
