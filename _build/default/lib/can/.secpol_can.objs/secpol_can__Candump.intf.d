lib/can/candump.mli: Bus Frame Secpol_sim Trace
