lib/can/controller.ml: Acceptance Errors Format Frame Transceiver
