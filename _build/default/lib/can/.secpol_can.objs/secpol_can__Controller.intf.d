lib/can/controller.mli: Acceptance Errors Format Frame Transceiver
