lib/can/crc.ml: List
