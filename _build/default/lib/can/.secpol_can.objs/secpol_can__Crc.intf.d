lib/can/crc.mli:
