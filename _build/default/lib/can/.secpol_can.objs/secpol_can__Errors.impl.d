lib/can/errors.ml: Format
