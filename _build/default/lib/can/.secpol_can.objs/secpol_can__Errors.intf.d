lib/can/errors.mli: Format
