lib/can/frame.ml: Bitstuff Bool Char Crc Format Fun Identifier List Printf String
