lib/can/frame.mli: Format Identifier
