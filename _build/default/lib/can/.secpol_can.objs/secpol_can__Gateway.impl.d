lib/can/gateway.ml: Bus Transceiver
