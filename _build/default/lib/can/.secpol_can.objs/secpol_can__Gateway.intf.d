lib/can/gateway.mli: Bus Frame
