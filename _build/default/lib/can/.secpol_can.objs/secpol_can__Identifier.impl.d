lib/can/identifier.ml: Format Printf
