lib/can/identifier.mli: Format
