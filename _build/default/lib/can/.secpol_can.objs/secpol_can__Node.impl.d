lib/can/node.ml: Bus Controller Errors Frame List Option Secpol_sim Trace Transceiver
