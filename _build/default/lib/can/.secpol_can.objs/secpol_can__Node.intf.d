lib/can/node.mli: Acceptance Bus Controller Frame
