lib/can/trace.ml: Format Frame List Printf
