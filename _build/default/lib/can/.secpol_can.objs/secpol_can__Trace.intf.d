lib/can/trace.mli: Format Frame Identifier
