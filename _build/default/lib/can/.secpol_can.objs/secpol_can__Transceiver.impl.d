lib/can/transceiver.ml: Frame List Secpol_sim String
