lib/can/transceiver.mli: Frame Secpol_sim
