type t = { mask : int; value : int; extended : bool }

let make ?(extended = false) ~mask ~value () =
  if mask < 0 || value < 0 then invalid_arg "Acceptance.make: negative field";
  { mask; value; extended }

let exact id =
  {
    mask = (if Identifier.is_extended id then 0x1FFFFFFF else 0x7FF);
    value = Identifier.raw id;
    extended = Identifier.is_extended id;
  }

let accept_all extended = { mask = 0; value = 0; extended }

let matches t id =
  Identifier.is_extended id = t.extended
  && Identifier.raw id land t.mask = t.value land t.mask

let accepts filters id =
  match filters with [] -> true | fs -> List.exists (fun f -> matches f id) fs
