(** Software acceptance filters, as found in commodity CAN controllers.

    A filter is a mask/value pair over the raw identifier: a frame is
    accepted when [(raw id) land mask = value land mask] and the frame
    format (standard/extended) matches.  These are the "programmable
    software based filter[s]" the paper contrasts with the hardware policy
    engine: node firmware configures them, so compromised firmware can
    disable them. *)

type t = {
  mask : int;
  value : int;
  extended : bool;  (** which frame format this filter addresses *)
}

val make : ?extended:bool -> mask:int -> value:int -> unit -> t
(** @raise Invalid_argument on negative mask or value. *)

val exact : Identifier.t -> t
(** Filter accepting exactly one identifier. *)

val accept_all : bool -> t
(** [accept_all extended] passes every id of that format (mask 0). *)

val matches : t -> Identifier.t -> bool

val accepts : t list -> Identifier.t -> bool
(** True when any filter matches.  The empty filter bank accepts
    everything (filtering disabled — the controller's reset state). *)
