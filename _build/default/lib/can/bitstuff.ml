let stuff bits =
  let rec loop run prev acc = function
    | [] -> List.rev acc
    | b :: rest ->
        let run = if b = prev then run + 1 else 1 in
        if run = 5 then
          (* emit b then a stuff bit of opposite polarity; the stuff bit
             restarts the run *)
          loop 1 (not b) (not b :: b :: acc) rest
        else loop run b (b :: acc) rest
  in
  match bits with
  | [] -> []
  | b :: rest -> loop 1 b [ b ] rest

let unstuff bits =
  let rec loop run prev acc = function
    | [] -> Ok (List.rev acc)
    | b :: rest ->
        if run = 5 then
          if b = prev then Error "stuffing violation: six consecutive equal bits"
          else (* b is a stuff bit: drop it and restart the run *)
            loop 1 b acc rest
        else
          let run = if b = prev then run + 1 else 1 in
          loop run b (b :: acc) rest
  in
  match bits with
  | [] -> Ok []
  | b :: rest -> loop 1 b [ b ] rest

let stuffed_length bits =
  let rec loop run prev n = function
    | [] -> n
    | b :: rest ->
        let run = if b = prev then run + 1 else 1 in
        if run = 5 then loop 1 (not b) (n + 2) rest else loop run b (n + 1) rest
  in
  match bits with [] -> 0 | b :: rest -> loop 1 b 1 rest
