(** CAN bit stuffing.

    After five consecutive bits of the same polarity the transmitter
    inserts one bit of opposite polarity; receivers strip it.  Stuffing
    applies from start-of-frame through the CRC sequence. *)

val stuff : bool list -> bool list
(** Insert stuff bits. *)

val unstuff : bool list -> (bool list, string) result
(** Remove stuff bits.  Errors on a stuffing violation (six consecutive
    equal bits), which on a real bus raises a stuff-error frame. *)

val stuffed_length : bool list -> int
(** [List.length (stuff bits)] without building the list. *)
