type stats = {
  mutable tx_ok : int;
  mutable tx_errors : int;
  mutable tx_abandoned : int;
  mutable tx_refused : int;
  mutable rx_delivered : int;
  mutable rx_filtered : int;
  mutable rx_line_errors : int;
}

type rx_result =
  | Deliver of Frame.t
  | Filtered of Frame.t
  | Line_error of Transceiver.line_error

type t = {
  name : string;
  mutable filters : Acceptance.t list;
  errors : Errors.t;
  stats : stats;
}

let create ~name () =
  {
    name;
    filters = [];
    errors = Errors.create ();
    stats =
      {
        tx_ok = 0;
        tx_errors = 0;
        tx_abandoned = 0;
        tx_refused = 0;
        rx_delivered = 0;
        rx_filtered = 0;
        rx_line_errors = 0;
      };
  }

let name t = t.name

let filters t = t.filters

let set_filters t filters = t.filters <- filters

let errors t = t.errors

let stats t = t.stats

let receive t wire =
  match Transceiver.receive wire with
  | Transceiver.Line_error e ->
      Errors.on_rx_error t.errors;
      t.stats.rx_line_errors <- t.stats.rx_line_errors + 1;
      Line_error e
  | Transceiver.Frame frame ->
      if Acceptance.accepts t.filters frame.Frame.id then begin
        Errors.on_rx_success t.errors;
        t.stats.rx_delivered <- t.stats.rx_delivered + 1;
        Deliver frame
      end
      else begin
        t.stats.rx_filtered <- t.stats.rx_filtered + 1;
        Filtered frame
      end

let note_tx_ok t =
  Errors.on_tx_success t.errors;
  t.stats.tx_ok <- t.stats.tx_ok + 1

let note_tx_error t =
  Errors.on_tx_error t.errors;
  t.stats.tx_errors <- t.stats.tx_errors + 1

let note_tx_abandoned t = t.stats.tx_abandoned <- t.stats.tx_abandoned + 1

let note_tx_refused t = t.stats.tx_refused <- t.stats.tx_refused + 1

let note_wire_error t = Errors.on_rx_error t.errors

let pp_stats ppf s =
  Format.fprintf ppf
    "tx ok=%d err=%d abandoned=%d refused=%d; rx delivered=%d filtered=%d line-errors=%d"
    s.tx_ok s.tx_errors s.tx_abandoned s.tx_refused s.rx_delivered s.rx_filtered
    s.rx_line_errors
