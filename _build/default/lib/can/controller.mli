(** CAN controller model (paper Fig. 3): frame decode, acceptance
    filtering, error confinement and transmit/receive statistics.

    The controller is deliberately firmware-configurable: its acceptance
    filters can be rewritten at run time ([set_filters]), which is exactly
    the weakness the paper's hardware policy engine addresses — compromised
    firmware clears the filters, the HPE stays put. *)

type stats = {
  mutable tx_ok : int;
  mutable tx_errors : int;
  mutable tx_abandoned : int;
  mutable tx_refused : int;
  mutable rx_delivered : int;
  mutable rx_filtered : int;
  mutable rx_line_errors : int;
}

type rx_result =
  | Deliver of Frame.t  (** passed decode and acceptance *)
  | Filtered of Frame.t  (** decoded but rejected by acceptance filters *)
  | Line_error of Transceiver.line_error

type t

val create : name:string -> unit -> t
(** Reset state: no acceptance filters (everything accepted). *)

val name : t -> string

val filters : t -> Acceptance.t list

val set_filters : t -> Acceptance.t list -> unit

val errors : t -> Errors.t

val stats : t -> stats

val receive : t -> bool list -> rx_result
(** Sample a wire sequence: decode, filter, update error counters and
    statistics. *)

val note_tx_ok : t -> unit

val note_tx_error : t -> unit

val note_tx_abandoned : t -> unit

val note_tx_refused : t -> unit

val note_wire_error : t -> unit
(** A corrupted transmission observed as a bystander (bumps REC). *)

val pp_stats : Format.formatter -> stats -> unit
