let polynomial = 0x4599

let width = 15

let compute bits =
  let crc =
    List.fold_left
      (fun crc bit ->
        let crc_next = (crc lsl 1) land 0x7FFF in
        let msb = crc land 0x4000 <> 0 in
        if bit <> msb then crc_next lxor polynomial else crc_next)
      0 bits
  in
  crc land 0x7FFF

let to_bits crc = List.init width (fun i -> crc land (1 lsl (width - 1 - i)) <> 0)
