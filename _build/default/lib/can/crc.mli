(** CRC-15-CAN (polynomial x^15 + x^14 + x^10 + x^8 + x^7 + x^4 + x^3 + 1,
    i.e. 0x4599) computed over the frame bits from start-of-frame through
    the end of the data field, as ISO 11898-1 specifies. *)

val compute : bool list -> int
(** 15-bit checksum of a bit sequence (MSB-first). *)

val width : int
(** 15. *)

val to_bits : int -> bool list
(** The checksum as its 15 wire bits, MSB first. *)
