type state = Error_active | Error_passive | Bus_off

type t = { mutable tec : int; mutable rec_ : int }

let create () = { tec = 0; rec_ = 0 }

let tec t = t.tec

let rec_ t = t.rec_

let state t =
  if t.tec > 255 then Bus_off
  else if t.tec > 127 || t.rec_ > 127 then Error_passive
  else Error_active

let on_tx_success t = t.tec <- max 0 (t.tec - 1)

let on_tx_error t = if state t <> Bus_off then t.tec <- t.tec + 8

let on_rx_success t = t.rec_ <- max 0 (t.rec_ - 1)

let on_rx_error t = if state t <> Bus_off then t.rec_ <- t.rec_ + 1

let can_transmit t = state t <> Bus_off

let reset t =
  t.tec <- 0;
  t.rec_ <- 0

let state_name = function
  | Error_active -> "error-active"
  | Error_passive -> "error-passive"
  | Bus_off -> "bus-off"

let pp ppf t =
  Format.fprintf ppf "TEC=%d REC=%d (%s)" t.tec t.rec_ (state_name (state t))
