(** CAN error confinement (ISO 11898-1, simplified).

    Every controller keeps a transmit error counter (TEC) and receive error
    counter (REC).  Errors raise them fast (+8 transmit, +1 receive),
    successes decay them (-1); the controller moves between error-active,
    error-passive and bus-off states on the standard thresholds. *)

type state = Error_active | Error_passive | Bus_off

type t

val create : unit -> t

val tec : t -> int

val rec_ : t -> int

val state : t -> state

val on_tx_success : t -> unit

val on_tx_error : t -> unit

val on_rx_success : t -> unit

val on_rx_error : t -> unit

val can_transmit : t -> bool
(** False once bus-off: the controller must not touch the bus. *)

val reset : t -> unit
(** Bus-off recovery (128 occurrences of 11 recessive bits, modelled as an
    explicit reset): counters to zero, state back to error-active. *)

val state_name : state -> string

val pp : Format.formatter -> t -> unit
