type t = { id : Identifier.t; rtr : bool; dlc : int; payload : string }

let data id payload =
  if String.length payload > 8 then
    invalid_arg "Frame.data: payload exceeds 8 bytes";
  { id; rtr = false; dlc = String.length payload; payload }

let remote id ~dlc =
  if dlc < 0 || dlc > 8 then invalid_arg "Frame.remote: dlc outside 0..8";
  { id; rtr = true; dlc; payload = "" }

let data_ext id payload = data (Identifier.extended id) payload

let data_std id payload = data (Identifier.standard id) payload

(* Bit helpers: [true] is the recessive level (logical 1), [false]
   dominant (logical 0).  Fields are transmitted MSB first. *)
let int_bits value width =
  List.init width (fun i -> value land (1 lsl (width - 1 - i)) <> 0)

let bits_int bits = List.fold_left (fun acc b -> (acc lsl 1) lor Bool.to_int b) 0 bits

(* Unstuffed body: SOF through the data field. *)
let body_bits t =
  let sof = [ false ] in
  let arbitration_and_control =
    match t.id with
    | Identifier.Standard id ->
        (* ID[10..0]  RTR  IDE=0  r0=0 *)
        int_bits id 11 @ [ t.rtr; false; false ]
    | Identifier.Extended id ->
        (* ID[28..18]  SRR=1  IDE=1  ID[17..0]  RTR  r1=0  r0=0 *)
        int_bits (id lsr 18) 11
        @ [ true; true ]
        @ int_bits (id land 0x3FFFF) 18
        @ [ t.rtr; false; false ]
  in
  let dlc = int_bits t.dlc 4 in
  let data_bits =
    List.concat_map
      (fun i -> int_bits (Char.code t.payload.[i]) 8)
      (List.init (String.length t.payload) Fun.id)
  in
  sof @ arbitration_and_control @ dlc @ data_bits

(* CRC delimiter, ACK slot (transmitted recessive), ACK delimiter and seven
   end-of-frame bits; not subject to stuffing. *)
let trailer = List.init 10 (fun _ -> true)

let to_wire t =
  let body = body_bits t in
  let crc = Crc.compute body in
  Bitstuff.stuff (body @ Crc.to_bits crc) @ trailer

let wire_length t =
  let body = body_bits t in
  let crc = Crc.compute body in
  Bitstuff.stuffed_length (body @ Crc.to_bits crc) + List.length trailer

let interframe_space = 3

let transmission_time t ~bitrate =
  if bitrate <= 0.0 then invalid_arg "Frame.transmission_time: bitrate <= 0";
  float_of_int (wire_length t + interframe_space) /. bitrate

let take n l =
  let rec loop n acc = function
    | rest when n = 0 -> Some (List.rev acc, rest)
    | [] -> None
    | x :: rest -> loop (n - 1) (x :: acc) rest
  in
  loop n [] l

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name n bits =
  match take n bits with
  | Some (f, rest) -> Ok (f, rest)
  | None -> Error (Printf.sprintf "truncated frame: missing %s" name)

let of_wire wire =
  let n = List.length wire in
  if n < 10 then Error "frame too short"
  else begin
    let stuffed, tail =
      match take (n - 10) wire with
      | Some (s, t) -> (s, t)
      | None -> assert false
    in
    if List.exists not tail then Error "malformed trailer (expected recessive bits)"
    else
      let* bits = Bitstuff.unstuff stuffed in
      let* sof, bits = field "SOF" 1 bits in
      if List.hd sof then Error "SOF must be dominant"
      else
        let* id_base, bits = field "base id" 11 bits in
        let* flag1, bits = field "RTR/SRR" 1 bits in
        let* ide, bits = field "IDE" 1 bits in
        let parse_tail ~id ~rtr bits reserved_count =
          let* reserved, bits = field "reserved" reserved_count bits in
          if List.exists Fun.id reserved then Error "reserved bits must be dominant"
          else
            let* dlc_bits, bits = field "DLC" 4 bits in
            let dlc = bits_int dlc_bits in
            if dlc > 8 then Error (Printf.sprintf "DLC %d out of range" dlc)
            else
              let data_len = if rtr then 0 else dlc in
              let* data_bits, bits = field "data" (8 * data_len) bits in
              let* crc_bits, bits = field "CRC" Crc.width bits in
              if bits <> [] then Error "trailing bits after CRC"
              else
                let payload =
                  String.init data_len (fun i ->
                      match take 8 (List.filteri (fun j _ -> j >= 8 * i) data_bits) with
                      | Some (byte, _) -> Char.chr (bits_int byte)
                      | None -> assert false)
                in
                let frame = { id; rtr; dlc; payload } in
                let body = body_bits frame in
                if Crc.compute body <> bits_int crc_bits then Error "CRC mismatch"
                else Ok frame
        in
        if List.hd ide then
          (* extended: flag1 is SRR (must be recessive) *)
          if not (List.hd flag1) then Error "SRR must be recessive"
          else
            let* id_ext, bits = field "extended id" 18 bits in
            let* rtr, bits = field "RTR" 1 bits in
            let id =
              Identifier.extended ((bits_int id_base lsl 18) lor bits_int id_ext)
            in
            parse_tail ~id ~rtr:(List.hd rtr) bits 2
        else
          let id = Identifier.standard (bits_int id_base) in
          parse_tail ~id ~rtr:(List.hd flag1) bits 1
  end

let payload_bytes t = List.init (String.length t.payload) (fun i -> Char.code t.payload.[i])

let equal a b = a = b

let pp ppf t =
  if t.rtr then Format.fprintf ppf "%a remote dlc=%d" Identifier.pp t.id t.dlc
  else begin
    Format.fprintf ppf "%a [%d]" Identifier.pp t.id t.dlc;
    String.iter (fun c -> Format.fprintf ppf " %02x" (Char.code c)) t.payload
  end
