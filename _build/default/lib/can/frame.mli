(** CAN frames and their wire encoding (ISO 11898-1 classic frames).

    A frame is a data frame (payload of 0..8 bytes) or a remote frame
    (payload-less request carrying only a DLC).  [to_wire] produces the
    physical bit sequence: the bit-stuffed segment from start-of-frame
    through the CRC sequence, followed by the unstuffed trailer (CRC
    delimiter, ACK slot, ACK delimiter, seven end-of-frame bits).
    [of_wire] inverts it, checking structure, stuffing and CRC — the
    round-trip is exercised by property tests. *)

type t = private {
  id : Identifier.t;
  rtr : bool;  (** remote transmission request *)
  dlc : int;  (** data length code, 0..8 *)
  payload : string;  (** [dlc] bytes for data frames, [""] for remote *)
}

val data : Identifier.t -> string -> t
(** Data frame; DLC is the payload length.
    @raise Invalid_argument when the payload exceeds 8 bytes. *)

val remote : Identifier.t -> dlc:int -> t
(** Remote frame requesting [dlc] bytes.
    @raise Invalid_argument when [dlc] is outside 0..8. *)

val data_ext : int -> string -> t
(** Convenience: extended-identifier data frame. *)

val data_std : int -> string -> t
(** Convenience: standard-identifier data frame. *)

val to_wire : t -> bool list
(** Physical bit sequence (false = dominant). *)

val of_wire : bool list -> (t, string) result

val wire_length : t -> int
(** [List.length (to_wire t)]: used for transmission timing. *)

val transmission_time : t -> bitrate:float -> float
(** Seconds on a bus of [bitrate] bits/s, including the 3-bit interframe
    space. *)

val payload_bytes : t -> int list
(** Payload as unsigned byte values. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** e.g. [0x0f0 [8] 01 02 03 04 05 06 07 08] or [0x0f0 remote dlc=2]. *)
