type t = {
  name : string;
  a : Bus.t;
  b : Bus.t;
  mutable forwarded : int;
  mutable dropped : int;
}

let bridge t ~dst ~predicate wire =
  match Transceiver.receive wire with
  | Transceiver.Line_error _ -> ()
  | Transceiver.Frame frame ->
      if predicate frame then begin
        t.forwarded <- t.forwarded + 1;
        Bus.transmit dst ~sender:t.name frame
      end
      else t.dropped <- t.dropped + 1

let connect ~name ~a ~b ~forward_a_to_b ~forward_b_to_a =
  if a == b then invalid_arg "Gateway.connect: both sides are the same bus";
  let t = { name; a; b; forwarded = 0; dropped = 0 } in
  Bus.attach a ~name
    ~deliver:(fun ~time:_ ~sender:_ wire ->
      bridge t ~dst:b ~predicate:forward_a_to_b wire)
    ~on_wire_error:(fun () -> ());
  (try
     Bus.attach b ~name
       ~deliver:(fun ~time:_ ~sender:_ wire ->
         bridge t ~dst:a ~predicate:forward_b_to_a wire)
       ~on_wire_error:(fun () -> ())
   with Invalid_argument _ as e ->
     Bus.detach a name;
     raise e);
  t

let name t = t.name

let forwarded t = t.forwarded

let dropped t = t.dropped

let disconnect t =
  Bus.detach t.a t.name;
  Bus.detach t.b t.name
