type t = Standard of int | Extended of int

let max_standard = 0x7FF

let max_extended = 0x1FFFFFFF

let standard id =
  if id < 0 || id > max_standard then
    invalid_arg (Printf.sprintf "Identifier.standard: 0x%x out of 11-bit range" id);
  Standard id

let extended id =
  if id < 0 || id > max_extended then
    invalid_arg (Printf.sprintf "Identifier.extended: 0x%x out of 29-bit range" id);
  Extended id

let raw = function Standard id | Extended id -> id

let is_extended = function Standard _ -> false | Extended _ -> true

let base_id = function
  | Standard id -> id
  | Extended id -> (id lsr 18) land 0x7FF

let arbitration_compare a b =
  match compare (base_id a) (base_id b) with
  | 0 -> (
      (* Equal base ids: the standard frame's RTR bit is dominant where the
         extended frame transmits its recessive SRR bit, so standard wins. *)
      match (a, b) with
      | Standard _, Standard _ -> 0
      | Standard _, Extended _ -> -1
      | Extended _, Standard _ -> 1
      | Extended x, Extended y -> compare (x land 0x3FFFF) (y land 0x3FFFF))
  | c -> c

let equal a b = a = b

let pp ppf = function
  | Standard id -> Format.fprintf ppf "0x%03x" id
  | Extended id -> Format.fprintf ppf "0x%08xx" id
