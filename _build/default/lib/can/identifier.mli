(** CAN message identifiers (ISO 11898-1).

    Standard frames carry an 11-bit identifier, extended frames a 29-bit
    one.  The identifier doubles as the arbitration priority: during the
    arbitration field a dominant bit (0) overrides a recessive bit (1), so
    numerically lower identifiers win the bus. *)

type t =
  | Standard of int  (** 11-bit, 0 .. 0x7FF *)
  | Extended of int  (** 29-bit, 0 .. 0x1FFFFFFF *)

val standard : int -> t
(** @raise Invalid_argument when out of 11-bit range. *)

val extended : int -> t
(** @raise Invalid_argument when out of 29-bit range. *)

val raw : t -> int
(** The numeric identifier value. *)

val is_extended : t -> bool

val base_id : t -> int
(** The 11 most significant identifier bits as transmitted first: the whole
    identifier for standard frames, bits 28..18 for extended frames. *)

val arbitration_compare : t -> t -> int
(** Bus-arbitration order: negative when the first identifier wins.
    Mirrors the wire: base IDs compare first; on equal base IDs a standard
    frame beats an extended one (its RTR slot is dominant where the extended
    frame sends recessive SRR); extended frames with equal base IDs compare
    on their 18 extension bits. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** [0x123] or [0x12345678x] (extended ids carry an [x] suffix). *)
