type event =
  | Tx_ok
  | Tx_error
  | Tx_abandoned
  | Tx_refused
  | Rx_delivered of string
  | Rx_filtered of string
  | Rx_blocked of string * string
  | Rx_line_error of string

type entry = { time : float; node : string; frame : Frame.t; event : event }

type t = { mutable entries : entry list (* newest first *) }

let create () = { entries = [] }

let record t ~time ~node frame event =
  t.entries <- { time; node; frame; event } :: t.entries

let entries t = List.rev t.entries

let length t = List.length t.entries

let deliveries_to t name =
  List.filter
    (fun e -> match e.event with Rx_delivered r -> r = name | _ -> false)
    (entries t)

let delivered_ids_to t name =
  List.map (fun e -> e.frame.Frame.id) (deliveries_to t name)

let blocked_at t name =
  List.filter
    (fun e -> match e.event with Rx_blocked (r, _) -> r = name | _ -> false)
    (entries t)

let count t pred = List.length (List.filter pred (entries t))

let clear t = t.entries <- []

let event_name = function
  | Tx_ok -> "tx-ok"
  | Tx_error -> "tx-error"
  | Tx_abandoned -> "tx-abandoned"
  | Tx_refused -> "tx-refused"
  | Rx_delivered r -> "rx-delivered:" ^ r
  | Rx_filtered r -> "rx-filtered:" ^ r
  | Rx_blocked (r, by) -> Printf.sprintf "rx-blocked:%s(%s)" r by
  | Rx_line_error r -> "rx-line-error:" ^ r

let pp_entry ppf e =
  Format.fprintf ppf "[%10.6f] %-12s %a %s" e.time e.node Frame.pp e.frame
    (event_name e.event)

let pp ppf t = List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)
