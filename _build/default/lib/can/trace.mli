(** Bus activity trace: the simulator's observability layer.

    Scenarios assert on traces (did the spoofed frame reach the ECU?), and
    the benches summarise them. *)

type event =
  | Tx_ok  (** frame transmitted and acknowledged *)
  | Tx_error  (** transmission corrupted; will be retried *)
  | Tx_abandoned  (** retry budget exhausted *)
  | Tx_refused  (** controller bus-off, or blocked by a write gate *)
  | Rx_delivered of string  (** accepted by the named receiver *)
  | Rx_filtered of string  (** dropped by the receiver's acceptance filter *)
  | Rx_blocked of string * string  (** receiver, blocking gate ("hpe") *)
  | Rx_line_error of string  (** receiver observed a line error *)

type entry = { time : float; node : string; frame : Frame.t; event : event }

type t

val create : unit -> t

val record : t -> time:float -> node:string -> Frame.t -> event -> unit

val entries : t -> entry list
(** Chronological. *)

val length : t -> int

val deliveries_to : t -> string -> entry list
(** Frames accepted by the given node. *)

val delivered_ids_to : t -> string -> Identifier.t list

val blocked_at : t -> string -> entry list
(** Frames a gate blocked at the given node. *)

val count : t -> (entry -> bool) -> int

val clear : t -> unit

val event_name : event -> string

val pp_entry : Format.formatter -> entry -> unit

val pp : Format.formatter -> t -> unit
