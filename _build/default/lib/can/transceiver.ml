type line_error = Stuff_violation | Crc_mismatch | Form_error

type rx = Frame of Frame.t | Line_error of line_error

let transmit = Frame.to_wire

let receive wire =
  match Frame.of_wire wire with
  | Ok frame -> Frame frame
  | Error msg ->
      if String.length msg >= 5 && String.sub msg 0 5 = "stuff" then
        Line_error Stuff_violation
      else if msg = "CRC mismatch" then Line_error Crc_mismatch
      else Line_error Form_error

let corrupt rng wire =
  match wire with
  | [] -> []
  | _ ->
      let n = List.length wire in
      let target = Secpol_sim.Rng.int rng n in
      List.mapi (fun i b -> if i = target then not b else b) wire

let line_error_name = function
  | Stuff_violation -> "stuff violation"
  | Crc_mismatch -> "CRC mismatch"
  | Form_error -> "form error"
