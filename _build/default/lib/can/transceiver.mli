(** CAN transceiver model (paper Fig. 3).

    The physical transceiver converts between the differential CAN-H/CAN-L
    pair and the controller's single-ended bit stream.  In the simulator the
    "wire" is the bit list of {!Frame.to_wire}; the transceiver is the
    boundary where frames become bits and line errors surface. *)

type line_error = Stuff_violation | Crc_mismatch | Form_error

type rx = Frame of Frame.t | Line_error of line_error

val transmit : Frame.t -> bool list
(** Drive a frame onto the wire. *)

val receive : bool list -> rx
(** Sample a wire sequence back into a frame, classifying failures the way
    a controller signals them: stuffing violations, CRC mismatches, and
    form errors (malformed fields/trailer). *)

val corrupt : Secpol_sim.Rng.t -> bool list -> bool list
(** Flip one random bit — electrical noise injection for error-path
    testing. *)

val line_error_name : line_error -> string
