lib/core/pipeline.ml: Format List Secpol_policy Secpol_threat String
