lib/core/pipeline.mli: Format Secpol_policy Secpol_threat
