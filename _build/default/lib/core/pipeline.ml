module Threat = Secpol_threat
module Policy = Secpol_policy

type report = {
  model : Threat.Model.t;
  policy : Policy.Ast.policy;
  db : Policy.Ir.db;
  conflicts : Policy.Conflict.conflict list;
  shadowed : (Policy.Ir.rule * Policy.Ir.rule) list;
  bundle : Policy.Update.bundle;
  residual : Threat.Threat.t list;
}

let derive ?(version = 1) ?(at = 0.0) model =
  let policy = Policy.Derive.model_to_policy ~version model in
  let db =
    Policy.Compile.compile_exn
      ~known_modes:model.Threat.Model.modes
      ~known_assets:(List.map (fun (a : Threat.Asset.t) -> a.id) model.assets)
      policy
  in
  {
    model;
    policy;
    db;
    conflicts = Policy.Conflict.conflicts db;
    shadowed = Policy.Conflict.shadowed db;
    bundle = Policy.Update.bundle ~at policy;
    residual = Policy.Derive.residual_risks model;
  }

let deploy store report = Policy.Update.install store report.bundle

let respond_to_new_threat ~store ~model ~threat ~at =
  match Threat.Model.add_threat model threat with
  | Error _ as e -> e
  | Ok model ->
      let next_version =
        match
          Policy.Update.current store
            (Policy.Derive.model_to_policy model).Policy.Ast.name
        with
        | Some b -> b.Policy.Update.version + 1
        | None -> 1
      in
      let report = derive ~version:next_version ~at model in
      (match deploy store report with
      | Ok () -> Ok report
      | Error e -> Error [ e ])

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>pipeline: %s -> policy %s v%d (%d rules, default %s)@,\
     conflicts: %d, shadowed: %d, residual threats: %d@,\
     bundle %s (checksum %s...)@]"
    r.model.Threat.Model.use_case r.db.Policy.Ir.name r.db.Policy.Ir.version
    (List.length r.db.Policy.Ir.rules)
    (Policy.Ast.decision_name r.db.Policy.Ir.default)
    (List.length r.conflicts) (List.length r.shadowed)
    (List.length r.residual) r.bundle.Policy.Update.name
    (String.sub r.bundle.Policy.Update.checksum 0 8)
