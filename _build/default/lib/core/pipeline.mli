(** The end-to-end policy-based security modelling pipeline — the paper's
    proposed flow in one call chain:

    threat model (STRIDE + DREAD) -> derived least-privilege policy ->
    compiled rule database -> static validation (conflicts, shadowing) ->
    sealed update bundle -> installation on the device store.

    The post-deployment loop ({!respond_to_new_threat}) is the headline
    capability: a newly discovered threat becomes an installable policy
    bundle without touching the device design. *)

type report = {
  model : Secpol_threat.Model.t;
  policy : Secpol_policy.Ast.policy;
  db : Secpol_policy.Ir.db;
  conflicts : Secpol_policy.Conflict.conflict list;
  shadowed : (Secpol_policy.Ir.rule * Secpol_policy.Ir.rule) list;
  bundle : Secpol_policy.Update.bundle;
  residual : Secpol_threat.Threat.t list;
      (** threats a read/write policy cannot fully block (Table I's W/RW
          rows) *)
}

val derive : ?version:int -> ?at:float -> Secpol_threat.Model.t -> report
(** Model to sealed bundle.  Never fails on a valid model: derived
    policies compile by construction (asserted by tests). *)

val deploy :
  Secpol_policy.Update.store -> report -> (unit, string) result
(** Install the report's bundle. *)

val respond_to_new_threat :
  store:Secpol_policy.Update.store ->
  model:Secpol_threat.Model.t ->
  threat:Secpol_threat.Threat.t ->
  at:float ->
  (report, string list) result
(** The post-deployment loop: extend the model with the new threat,
    re-derive at the next version number, validate, seal and install. *)

val pp_report : Format.formatter -> report -> unit
