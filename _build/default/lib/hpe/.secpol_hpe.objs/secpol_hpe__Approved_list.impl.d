lib/hpe/approved_list.ml: Bytes Char Format Hashtbl List Secpol_can String
