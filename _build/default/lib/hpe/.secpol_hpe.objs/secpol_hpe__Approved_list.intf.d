lib/hpe/approved_list.mli: Format Secpol_can
