lib/hpe/config.ml: Bool Format List Printf Registers Secpol_policy String
