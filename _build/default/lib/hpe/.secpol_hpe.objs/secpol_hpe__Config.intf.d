lib/hpe/config.mli: Format Registers Secpol_policy
