lib/hpe/decision.ml: Approved_list Secpol_can
