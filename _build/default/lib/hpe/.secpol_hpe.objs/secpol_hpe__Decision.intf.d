lib/hpe/decision.mli: Approved_list Secpol_can
