lib/hpe/engine.ml: Config Decision Format Hashtbl List Rate_limiter Registers Secpol_can Secpol_sim
