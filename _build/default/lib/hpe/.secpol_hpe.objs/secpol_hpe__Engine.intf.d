lib/hpe/engine.mli: Config Format Registers Secpol_can
