lib/hpe/rate_limiter.ml: Hashtbl List Option Secpol_policy
