lib/hpe/rate_limiter.mli: Secpol_policy
