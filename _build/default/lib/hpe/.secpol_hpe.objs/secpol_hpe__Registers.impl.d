lib/hpe/registers.ml: Approved_list Bool Printf Secpol_can
