lib/hpe/registers.mli: Approved_list
