module Policy = Secpol_policy

type binding = { msg_id : int; asset : string }

type t = {
  read_ids : int list;
  write_ids : int list;
  write_rates : (int * Policy.Ast.rate) list;
  own_ids : int list;
}

let make ?(write_rates = []) ?(own_ids = []) ~read_ids ~write_ids () =
  { read_ids; write_ids; write_rates; own_ids }

(* The strictest (smallest-budget) rate among the allow-write rules that
   match this binding; None when some matching allow rule is unlimited. *)
let write_rate_for db request =
  let matching =
    List.filter
      (fun (r : Policy.Ir.rule) ->
        r.decision = Policy.Ast.Allow && Policy.Ir.rule_matches r request)
      db.Policy.Ir.rules
  in
  if List.exists (fun (r : Policy.Ir.rule) -> r.rate = None) matching then None
  else
    List.fold_left
      (fun acc (r : Policy.Ir.rule) ->
        match (acc, r.rate) with
        | None, rate -> rate
        | Some a, Some b ->
            let per_sec (x : Policy.Ast.rate) =
              float_of_int x.count /. float_of_int x.window_ms
            in
            Some (if per_sec b < per_sec a then b else a)
        | Some _, None -> acc)
      None matching

let of_policy engine ~mode ~subject ~bindings =
  let request op (b : binding) =
    {
      Policy.Ir.mode;
      subject;
      asset = b.asset;
      op;
      msg_id = Some b.msg_id;
    }
  in
  (* rate budgets must not be consumed during compilation: query the
     database's matching rules directly rather than the live engine *)
  let db = Policy.Engine.db engine in
  let static_engine = Policy.Engine.create ~cache:false db in
  let allowed op b = Policy.Engine.permitted static_engine (request op b) in
  let read_ids =
    List.filter_map
      (fun b -> if allowed Policy.Ir.Read b then Some b.msg_id else None)
      bindings
  in
  let writable =
    List.filter (fun b -> allowed Policy.Ir.Write b) bindings
  in
  let write_rates =
    List.filter_map
      (fun b ->
        match write_rate_for db (request Policy.Ir.Write b) with
        | Some rate -> Some (b.msg_id, rate)
        | None -> None)
      writable
  in
  {
    read_ids = List.sort_uniq compare read_ids;
    write_ids = List.sort_uniq compare (List.map (fun b -> b.msg_id) writable);
    write_rates = List.sort_uniq compare write_rates;
    own_ids = [];
  }

let provision regs config ?(enable_read = true) ?(enable_write = true)
    ?(lock = true) () =
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let rec load addr = function
    | [] -> Ok ()
    | id :: rest ->
        let* () = Registers.write_reg regs ~addr id in
        load addr rest
  in
  let* () = Registers.write_reg regs ~addr:Registers.cmd_clear 0 in
  let* () = load Registers.cmd_add_read config.read_ids in
  let* () = load Registers.cmd_add_write config.write_ids in
  let ctrl_value =
    Bool.to_int enable_read
    lor (Bool.to_int enable_write lsl 1)
    lor (Bool.to_int lock lsl 2)
  in
  Registers.write_reg regs ~addr:Registers.ctrl ctrl_value

let pp ppf t =
  let hex ids = String.concat "," (List.map (Printf.sprintf "0x%x") ids) in
  Format.fprintf ppf "read:{%s} write:{%s}" (hex t.read_ids) (hex t.write_ids);
  match t.write_rates with
  | [] -> ()
  | rates ->
      Format.fprintf ppf " rates:{%s}"
        (String.concat ","
           (List.map
              (fun (id, (r : Policy.Ast.rate)) ->
                Printf.sprintf "0x%x:%d/%dms" id r.count r.window_ms)
              rates))
