(** Compiling a policy database into HPE approved lists.

    The bridge between the policy world (subject/asset/operation) and the
    HPE world (message IDs): a [binding] declares which asset's state each
    CAN message ID carries.  For a node hosting subject [s] in mode [m],
    message ID [i] bound to asset [a] is approved for reading when the
    policy allows [(m, s, a, read)], and for writing when it allows
    [(m, s, a, write)]. *)

type binding = { msg_id : int; asset : string }
(** [msg_id] is a standard (11-bit) CAN ID. *)

type t = {
  read_ids : int list;
  write_ids : int list;
  write_rates : (int * Secpol_policy.Ast.rate) list;
      (** behavioural budgets for approved write IDs, from rate-carrying
          policy rules *)
  own_ids : int list;
      (** IDs this node is the *exclusive* designed producer of; an
          incoming frame carrying one of them must be an impersonation and
          raises a spoof alert ({!Engine.spoof_alerts}) *)
}

val make :
  ?write_rates:(int * Secpol_policy.Ast.rate) list ->
  ?own_ids:int list ->
  read_ids:int list ->
  write_ids:int list ->
  unit ->
  t

val of_policy :
  Secpol_policy.Engine.t ->
  mode:string ->
  subject:string ->
  bindings:binding list ->
  t
(** Evaluate the policy for every binding in both directions.  Message-ID-
    scoped policy rules are honoured: each query carries its binding's
    [msg_id]. *)

val provision :
  Registers.t ->
  t ->
  ?enable_read:bool ->
  ?enable_write:bool ->
  ?lock:bool ->
  unit ->
  (unit, string) result
(** Boot-time provisioning through the register file: clear, load both
    lists, set the enables (default both [true]) and finally the lock
    (default [true]).  Fails if the register file is already locked. *)

val pp : Format.formatter -> t -> unit
