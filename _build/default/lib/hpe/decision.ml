type direction = Reading | Writing

type verdict = Grant | Block

type t = {
  direction : direction;
  approved : Approved_list.t;
  mutable grants : int;
  mutable blocks : int;
}

let create direction approved = { direction; approved; grants = 0; blocks = 0 }

let direction t = t.direction

let decide t (frame : Secpol_can.Frame.t) =
  if Approved_list.mem t.approved frame.id then begin
    t.grants <- t.grants + 1;
    Grant
  end
  else begin
    t.blocks <- t.blocks + 1;
    Block
  end

let grants t = t.grants

let blocks t = t.blocks

let reset_counters t =
  t.grants <- 0;
  t.blocks <- 0

let direction_name = function Reading -> "reading" | Writing -> "writing"

let verdict_name = function Grant -> "grant" | Block -> "block"
