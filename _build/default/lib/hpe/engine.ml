module Node = Secpol_can.Node

type t = {
  node : Node.t;
  regs : Registers.t;
  read_block : Decision.t;
  write_block : Decision.t;
  rates : Rate_limiter.t;
  mutable rate_blocks : int;
  own_ids : (int, unit) Hashtbl.t;
  mutable spoof_alerts : int;
}

let gate_name = "hpe"

let install node =
  let regs = Registers.create () in
  let read_block = Decision.create Decision.Reading (Registers.read_list regs) in
  let write_block = Decision.create Decision.Writing (Registers.write_list regs) in
  let t =
    { node; regs; read_block; write_block; rates = Rate_limiter.create ();
      rate_blocks = 0; own_ids = Hashtbl.create 8; spoof_alerts = 0 }
  in
  let now () = Secpol_sim.Engine.now (Secpol_can.Bus.sim (Node.bus node)) in
  Node.set_rx_gate node ~name:gate_name (fun frame ->
      (* impersonation detection: a frame arriving with an ID this node is
         the sole producer of cannot be genuine.  Detection, not
         prevention: the frame is flagged but filtering is still governed
         by the approved reading list. *)
      (match frame.Secpol_can.Frame.id with
      | Secpol_can.Identifier.Standard id when Hashtbl.mem t.own_ids id ->
          t.spoof_alerts <- t.spoof_alerts + 1
      | Secpol_can.Identifier.Standard _ | Secpol_can.Identifier.Extended _ ->
          ());
      (not (Registers.read_filter_enabled regs))
      || Decision.decide read_block frame = Decision.Grant);
  Node.set_tx_gate node ~name:gate_name (fun frame ->
      (not (Registers.write_filter_enabled regs))
      ||
      if Decision.decide write_block frame <> Decision.Grant then false
      else
        match frame.Secpol_can.Frame.id with
        | Secpol_can.Identifier.Standard id ->
            let ok = Rate_limiter.admit t.rates ~now:(now ()) ~msg_id:id in
            if not ok then t.rate_blocks <- t.rate_blocks + 1;
            ok
        | Secpol_can.Identifier.Extended _ -> true);
  t

let node_name t = Node.name t.node

let registers t = t.regs

let load_rates t (config : Config.t) =
  Rate_limiter.clear t.rates;
  List.iter
    (fun (msg_id, rate) -> Rate_limiter.set t.rates ~msg_id rate)
    config.Config.write_rates;
  Hashtbl.reset t.own_ids;
  List.iter (fun id -> Hashtbl.replace t.own_ids id ()) config.Config.own_ids

let provision t config =
  match Config.provision t.regs config () with
  | Error _ as e -> e
  | Ok () ->
      (* the rate table freezes under the same lock as the lists *)
      load_rates t config;
      Ok ()

let provision_unlocked t config =
  match Config.provision t.regs config ~lock:false () with
  | Error _ as e -> e
  | Ok () ->
      load_rates t config;
      Ok ()

let locked t = Registers.locked t.regs

let read_grants t = Decision.grants t.read_block

let read_blocks t = Decision.blocks t.read_block

let write_grants t = Decision.grants t.write_block

let write_blocks t = Decision.blocks t.write_block

let rate_blocks t = t.rate_blocks

let spoof_alerts t = t.spoof_alerts

let uninstall t = Node.clear_gates t.node

let pp_stats ppf t =
  Format.fprintf ppf "%s: read grant=%d block=%d; write grant=%d block=%d%s"
    (node_name t) (read_grants t) (read_blocks t) (write_grants t)
    (write_blocks t)
    (if locked t then " [locked]" else "")
