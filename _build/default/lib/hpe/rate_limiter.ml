type entry = {
  rate : Secpol_policy.Ast.rate;
  mutable grants : float list; (* timestamps within the window, newest first *)
}

type t = (int, entry) Hashtbl.t

let create () : t = Hashtbl.create 16

let set t ~msg_id rate = Hashtbl.replace t msg_id { rate; grants = [] }

let remove t ~msg_id = Hashtbl.remove t msg_id

let clear t = Hashtbl.reset t

let limit t ~msg_id =
  Option.map (fun e -> e.rate) (Hashtbl.find_opt t msg_id)

let limits t =
  Hashtbl.fold (fun id e acc -> (id, e.rate) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let admit t ~now ~msg_id =
  match Hashtbl.find_opt t msg_id with
  | None -> true
  | Some e ->
      let horizon = now -. (float_of_int e.rate.window_ms /. 1000.0) in
      e.grants <- List.filter (fun ts -> ts > horizon) e.grants;
      if List.length e.grants < e.rate.count then begin
        e.grants <- now :: e.grants;
        true
      end
      else false

let reset_state t = Hashtbl.iter (fun _ e -> e.grants <- []) t
