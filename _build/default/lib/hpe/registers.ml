type t = {
  read_list : Approved_list.t;
  write_list : Approved_list.t;
  mutable read_enable : bool;
  mutable write_enable : bool;
  mutable locked : bool;
}

let ctrl = 0x00

let status = 0x04

let cmd_add_read = 0x08

let cmd_add_write = 0x0C

let cmd_clear = 0x10

let count_read = 0x14

let count_write = 0x18

let create () =
  {
    read_list = Approved_list.create ();
    write_list = Approved_list.create ();
    read_enable = false;
    write_enable = false;
    locked = false;
  }

let read_list t = t.read_list

let write_list t = t.write_list

let read_filter_enabled t = t.read_enable

let write_filter_enabled t = t.write_enable

let locked t = t.locked

let ctrl_value t =
  Bool.to_int t.read_enable
  lor (Bool.to_int t.write_enable lsl 1)
  lor (Bool.to_int t.locked lsl 2)

let write_reg t ~addr value =
  if t.locked && not (addr = ctrl && value = ctrl_value t) then
    Error "HPE register file is locked"
  else if addr = ctrl then begin
    t.read_enable <- value land 1 <> 0;
    t.write_enable <- value land 2 <> 0;
    if value land 4 <> 0 then t.locked <- true;
    Ok ()
  end
  else if addr = cmd_add_read || addr = cmd_add_write then
    if value < 0 || value > 0x7FF then
      Error (Printf.sprintf "CAN id 0x%x outside 11-bit range" value)
    else begin
      let list = if addr = cmd_add_read then t.read_list else t.write_list in
      Approved_list.add list (Secpol_can.Identifier.standard value);
      Ok ()
    end
  else if addr = cmd_clear then begin
    Approved_list.clear t.read_list;
    Approved_list.clear t.write_list;
    Ok ()
  end
  else if addr = status || addr = count_read || addr = count_write then
    Error (Printf.sprintf "register 0x%02x is read-only" addr)
  else Error (Printf.sprintf "unknown register 0x%02x" addr)

let read_reg t ~addr =
  if addr = ctrl || addr = status then Ok (ctrl_value t)
  else if addr = count_read then Ok (Approved_list.cardinal t.read_list)
  else if addr = count_write then Ok (Approved_list.cardinal t.write_list)
  else if addr = cmd_add_read || addr = cmd_add_write || addr = cmd_clear then
    Error (Printf.sprintf "register 0x%02x is write-only" addr)
  else Error (Printf.sprintf "unknown register 0x%02x" addr)

let hard_reset t =
  Approved_list.clear t.read_list;
  Approved_list.clear t.write_list;
  t.read_enable <- false;
  t.write_enable <- false;
  t.locked <- false
