lib/lifecycle/comparison.ml: Format List Ota Response Secpol_sim
