lib/lifecycle/comparison.mli: Format Ota Response Secpol_sim
