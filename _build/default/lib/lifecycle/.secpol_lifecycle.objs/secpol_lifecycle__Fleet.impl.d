lib/lifecycle/fleet.ml: Array Hashtbl List Option Ota Secpol_policy Secpol_sim
