lib/lifecycle/fleet.mli: Ota Secpol_policy
