lib/lifecycle/ota.ml: Array Float Secpol_sim
