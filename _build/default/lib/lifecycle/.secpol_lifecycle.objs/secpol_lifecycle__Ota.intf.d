lib/lifecycle/ota.mli: Secpol_sim
