lib/lifecycle/phases.ml: Format List String
