lib/lifecycle/phases.mli: Format
