lib/lifecycle/response.ml: Format List Secpol_sim
