lib/lifecycle/response.mli: Format Secpol_sim
