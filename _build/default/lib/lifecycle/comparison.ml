module Rng = Secpol_sim.Rng
module Stats = Secpol_sim.Stats

type result = {
  kind : Response.kind;
  development : Stats.t;
  exposure : Stats.t;
  unreachable : int;
}

let channel_of (plan : Response.plan) =
  if plan.requires_recall then Ota.Recall else Ota.Over_the_air

let run ?(seed = 42L) ?(trials = 500) ?(target = 0.95)
    ?(params = Ota.default_params) kind =
  if trials <= 0 then invalid_arg "Comparison.run: trials must be positive";
  if target <= 0.0 || target > 1.0 then
    invalid_arg "Comparison.run: target outside (0,1]";
  let rng = Rng.create seed in
  let development = Stats.create () in
  let exposure = Stats.create () in
  let unreachable = ref 0 in
  for _ = 1 to trials do
    let plan = Response.sample rng kind in
    let dev = Response.development_days plan in
    Stats.add development dev;
    let rollout = Ota.simulate rng params (channel_of plan) in
    match rollout.Ota.days_to_quantile target with
    | Some d -> Stats.add exposure (dev +. d)
    | None -> incr unreachable
  done;
  { kind; development; exposure; unreachable = !unreachable }

let compare_all ?seed ?trials ?target ?params () =
  List.map
    (fun kind -> run ?seed ?trials ?target ?params kind)
    [ Response.Guideline_redesign; Response.Policy_update;
      Response.Reduced_functionality ]

let speedup results =
  let median kind =
    match List.find_opt (fun r -> r.kind = kind) results with
    | Some r when Stats.count r.exposure > 0 -> Some (Stats.median r.exposure)
    | Some _ | None -> None
  in
  match (median Response.Guideline_redesign, median Response.Policy_update) with
  | Some g, Some p when p > 0.0 -> Some (g /. p)
  | _ -> None

let pp_result ppf r =
  Format.fprintf ppf "@[<v>%s:@,  development: %a@,  exposure:    %a"
    (Response.kind_name r.kind) Stats.pp_summary r.development Stats.pp_summary
    r.exposure;
  if r.unreachable > 0 then
    Format.fprintf ppf "@,  %d/%d trials never reached the protection target"
      r.unreachable
      (Stats.count r.exposure + r.unreachable);
  Format.fprintf ppf "@]"
