(** Experiment Q2: exposure window under guideline redesign vs policy
    update.

    The exposure window runs from threat discovery until a target fraction
    of the fleet is protected: development time ({!Response}) plus fleet
    roll-out ({!Ota}).  A Monte-Carlo over both chains yields the
    distributions the bench reports.  The reproduction criterion is the
    paper's qualitative claim: the policy path is "significantly faster" —
    here, orders of magnitude at the median, robust across the parameter
    sweep. *)

type result = {
  kind : Response.kind;
  development : Secpol_sim.Stats.t;  (** days of development *)
  exposure : Secpol_sim.Stats.t;
      (** days from discovery to the protection target; unreachable targets
          (recall no-shows) are excluded and counted *)
  unreachable : int;  (** trials that never hit the protection target *)
}

val run :
  ?seed:int64 ->
  ?trials:int ->
  ?target:float ->
  ?params:Ota.params ->
  Response.kind ->
  result
(** [trials] default 500; [target] default 0.95 of the fleet. *)

val compare_all :
  ?seed:int64 ->
  ?trials:int ->
  ?target:float ->
  ?params:Ota.params ->
  unit ->
  result list
(** All three response kinds under identical conditions. *)

val speedup : result list -> float option
(** Median exposure of [Guideline_redesign] divided by median exposure of
    [Policy_update]; [None] if either is missing or empty. *)

val pp_result : Format.formatter -> result -> unit
