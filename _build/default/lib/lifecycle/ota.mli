(** Fleet roll-out models: how fast protection reaches deployed vehicles
    once the fix exists.

    Over-the-air updates follow a fast exponential uptake (vehicles apply
    the update as they come online).  Recalls are far slower: owners book
    dealer visits at a low rate and a fraction never show up at all —
    automotive recall completion rates famously plateau well below 100%. *)

type channel = Over_the_air | Recall

type params = {
  fleet : int;  (** number of vehicles *)
  ota_mean_days : float;  (** mean days for one vehicle to apply an OTA *)
  recall_mean_days : float;  (** mean days until an owner visits the dealer *)
  recall_no_show : float;  (** fraction of owners who never respond *)
}

val default_params : params
(** 100k vehicles; OTA mean 3 days; recall mean 90 days with 25%% never
    completing. *)

type rollout = {
  channel : channel;
  days_to_quantile : float -> float option;
      (** [days_to_quantile q] = days until fraction [q] of the fleet is
          protected; [None] when the channel can never reach [q] *)
  protected_at : float -> float;
      (** fraction of fleet protected [d] days after release *)
}

val simulate : Secpol_sim.Rng.t -> params -> channel -> rollout
(** Draw per-vehicle protection times and build the empirical curve. *)

val channel_name : channel -> string
