type process = Threat_modelling | Security_model_bridge | Secure_testing

type stage = {
  id : string;
  name : string;
  process : process;
  description : string;
  outputs : string list;
}

let stage ~id ~name ~process ~description ~outputs =
  { id; name; process; description; outputs }

let pipeline =
  [
    stage ~id:"risk_assessment" ~name:"Risk assessment"
      ~process:Threat_modelling
      ~description:
        "Understand the application use case; decompose it into internal \
         and external entities and their interactions."
      ~outputs:[ "security requirements" ];
    stage ~id:"identify_assets" ~name:"Identify assets"
      ~process:Threat_modelling
      ~description:
        "Identify items of value to protect, including dependent assets \
         seen from a data-flow perspective."
      ~outputs:[ "asset inventory" ];
    stage ~id:"entry_points" ~name:"Entry points" ~process:Threat_modelling
      ~description:
        "Enumerate the interfaces that expose critical assets to an \
         attacker."
      ~outputs:[ "entry-point inventory" ];
    stage ~id:"threat_identification" ~name:"Threat identification"
      ~process:Threat_modelling
      ~description:
        "Identify exploitable vulnerabilities and categorise them with \
         STRIDE."
      ~outputs:[ "system threat model" ];
    stage ~id:"threat_rating" ~name:"Threat rating" ~process:Threat_modelling
      ~description:
        "Prioritise and quantify each threat's likelihood, risk and \
         potential damage with DREAD."
      ~outputs:[ "ranked threat list" ];
    stage ~id:"countermeasures" ~name:"Determine countermeasures"
      ~process:Threat_modelling
      ~description:
        "Define a countermeasure per threat by priority.  Traditional: \
         prose guidelines.  This paper: enforceable access-control \
         policies."
      ~outputs:[ "guidelines (traditional)"; "security policies (proposed)" ];
    stage ~id:"security_model" ~name:"Device security model"
      ~process:Security_model_bridge
      ~description:
        "The bridge between modelling and testing: the technical document \
         (or policy set) implementations must comply with."
      ~outputs:[ "security model / policy set" ];
    stage ~id:"implementation" ~name:"Compliant implementation"
      ~process:Secure_testing
      ~description:
        "Hardware and software development against the security model; \
         policies compile into HPE approved lists and MAC rules."
      ~outputs:[ "device firmware + policy configuration" ];
    stage ~id:"security_testing" ~name:"Secure application testing"
      ~process:Secure_testing
      ~description:
        "Verify the implementation against the security model; attack \
         scenarios double as regression tests."
      ~outputs:[ "test evidence" ];
    stage ~id:"deployment" ~name:"Deployment & maintenance"
      ~process:Secure_testing
      ~description:
        "Ship; on new threats, loop back — through redesign under the \
         traditional approach, through a policy update under the proposed \
         one."
      ~outputs:[ "deployed fleet"; "policy updates" ];
  ]

let find id = List.find_opt (fun s -> s.id = id) pipeline

let process_name = function
  | Threat_modelling -> "Application threat modelling"
  | Security_model_bridge -> "Device security model"
  | Secure_testing -> "Secure application testing"

let pp_stage ppf s =
  Format.fprintf ppf "%-28s [%s]@,    %s@,    -> %s" s.name
    (process_name s.process) s.description
    (String.concat ", " s.outputs)

let pp_pipeline ppf () =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i s -> Format.fprintf ppf "%d. %a@," (i + 1) pp_stage s)
    pipeline;
  Format.fprintf ppf "@]"
