(** The secure product development life-cycle of paper Fig. 1.

    Two processes — application threat modelling and secure application
    testing — bridged by the device security model.  Under the paper's
    approach the "determine countermeasure" stage emits enforceable
    policies, which is what makes the post-deployment loop
    ({!Response.Policy_update}) possible at all. *)

type process = Threat_modelling | Security_model_bridge | Secure_testing

type stage = {
  id : string;
  name : string;
  process : process;
  description : string;
  outputs : string list;
}

val pipeline : stage list
(** All stages in life-cycle order. *)

val find : string -> stage option

val process_name : process -> string

val pp_stage : Format.formatter -> stage -> unit

val pp_pipeline : Format.formatter -> unit -> unit
(** Render Fig. 1 as text. *)
