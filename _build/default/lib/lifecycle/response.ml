module Rng = Secpol_sim.Rng

type kind = Guideline_redesign | Policy_update | Reduced_functionality

type stage = { name : string; days : float }

type plan = { kind : kind; stages : stage list; requires_recall : bool }

let kind_name = function
  | Guideline_redesign -> "guideline redesign + recall"
  | Policy_update -> "policy update (OTA)"
  | Reduced_functionality -> "reduced functionality patch"

(* Inverse-CDF triangular sampling. *)
let triangular rng ~low ~mode ~high =
  if not (low <= mode && mode <= high) then
    invalid_arg "Response.triangular: need low <= mode <= high";
  if low = high then low
  else begin
    let u = Rng.float rng 1.0 in
    let cut = (mode -. low) /. (high -. low) in
    if u < cut then low +. sqrt (u *. (high -. low) *. (mode -. low))
    else high -. sqrt ((1.0 -. u) *. (high -. low) *. (high -. mode))
  end

let stage rng name ~low ~mode ~high =
  { name; days = triangular rng ~low ~mode ~high }

let sample rng = function
  | Guideline_redesign ->
      {
        kind = Guideline_redesign;
        stages =
          [
            stage rng "impact analysis & re-modelling" ~low:7.0 ~mode:14.0
              ~high:30.0;
            stage rng "hardware/software redesign" ~low:60.0 ~mode:120.0
              ~high:240.0;
            stage rng "re-validation & testing" ~low:30.0 ~mode:60.0 ~high:90.0;
            stage rng "certification & homologation" ~low:14.0 ~mode:45.0
              ~high:90.0;
          ];
        requires_recall = true;
      }
  | Policy_update ->
      {
        kind = Policy_update;
        stages =
          [
            stage rng "threat modelling refresh" ~low:0.5 ~mode:1.0 ~high:3.0;
            stage rng "policy authoring" ~low:0.5 ~mode:1.0 ~high:2.0;
            stage rng "offline validation (compile/conflicts/regression)"
              ~low:1.0 ~mode:2.0 ~high:5.0;
          ];
        requires_recall = false;
      }
  | Reduced_functionality ->
      {
        kind = Reduced_functionality;
        stages =
          [
            stage rng "quick patch disabling the feature" ~low:3.0 ~mode:7.0
              ~high:21.0;
            stage rng "regression testing" ~low:3.0 ~mode:7.0 ~high:14.0;
          ];
        requires_recall = false;
      }

let development_days plan =
  List.fold_left (fun acc s -> acc +. s.days) 0.0 plan.stages

let pp_plan ppf plan =
  Format.fprintf ppf "@[<v>%s (development %.1f days)" (kind_name plan.kind)
    (development_days plan);
  List.iter
    (fun s -> Format.fprintf ppf "@,  %-48s %6.1f days" s.name s.days)
    plan.stages;
  Format.fprintf ppf "@,  deployment: %s@]"
    (if plan.requires_recall then "physical recall" else "over the air")
