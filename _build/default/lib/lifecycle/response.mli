(** Post-deployment threat-response models.

    When a new threat invalidates the shipped security model, the OEM
    responds either the traditional way (redesign / recall, §V.A.1) or with
    a policy update (§V.A.2).  Each response is a chain of stochastic
    stages; durations are in days, drawn from triangular distributions
    with documented industry-plausible parameters.  Absolute numbers are
    not the claim — the *orders-of-magnitude gap* between the two paths is
    (see {!Comparison}). *)

type kind = Guideline_redesign | Policy_update | Reduced_functionality
(** [Reduced_functionality] is the paper's stop-gap: disable the feature in
    software now, fix properly in the next product cycle. *)

type stage = { name : string; days : float }

type plan = {
  kind : kind;
  stages : stage list;  (** in order; development ends when all complete *)
  requires_recall : bool;
      (** physical deployment (dealer visit) vs over-the-air *)
}

val kind_name : kind -> string

val sample : Secpol_sim.Rng.t -> kind -> plan
(** Draw one concrete plan.  Stage menus:
    - [Guideline_redesign]: impact analysis, hardware/software redesign,
      re-validation, certification; deployed by recall.
    - [Policy_update]: threat modelling refresh, policy authoring, offline
      validation (compile + conflict analysis + regression scenarios);
      deployed over the air.
    - [Reduced_functionality]: quick software patch that disables the
      vulnerable feature; OTA, but leaves functionality degraded. *)

val development_days : plan -> float
(** Sum of stage durations (before fleet deployment starts). *)

val triangular : Secpol_sim.Rng.t -> low:float -> mode:float -> high:float -> float
(** Triangular sampler used by [sample]; exposed for tests. *)

val pp_plan : Format.formatter -> plan -> unit
