lib/policy/ast.ml: List Option String
