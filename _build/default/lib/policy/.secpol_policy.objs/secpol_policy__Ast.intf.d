lib/policy/ast.mli:
