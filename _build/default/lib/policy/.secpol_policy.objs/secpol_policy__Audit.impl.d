lib/policy/audit.ml: Ast Engine Format Ir List Option
