lib/policy/audit.mli: Ast Engine Format Ir
