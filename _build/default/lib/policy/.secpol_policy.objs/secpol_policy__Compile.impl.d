lib/policy/compile.ml: Ast Format Ir List Parser Printf String
