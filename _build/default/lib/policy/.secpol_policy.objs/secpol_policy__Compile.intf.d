lib/policy/compile.mli: Ast Format Ir
