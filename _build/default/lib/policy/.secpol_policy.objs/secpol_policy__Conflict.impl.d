lib/policy/conflict.ml: Ast Format Ir List Printf
