lib/policy/conflict.mli: Format Ir
