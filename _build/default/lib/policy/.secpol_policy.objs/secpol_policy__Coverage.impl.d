lib/policy/coverage.ml: Ast Format Ir List
