lib/policy/coverage.mli: Ast Format Ir
