lib/policy/derive.ml: Ast Char Hashtbl List Option Printer Printf Secpol_threat String
