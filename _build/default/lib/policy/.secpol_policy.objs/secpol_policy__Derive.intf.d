lib/policy/derive.mli: Ast Secpol_threat
