lib/policy/engine.ml: Ast Format Hashtbl Ir List Option Printf String
