lib/policy/engine.mli: Ast Format Ir
