lib/policy/ir.ml: Ast Format List Printf String
