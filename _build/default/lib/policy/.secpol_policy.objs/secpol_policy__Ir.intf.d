lib/policy/ir.mli: Ast Format
