lib/policy/lexer.ml: Buffer List Printf String
