lib/policy/lexer.mli:
