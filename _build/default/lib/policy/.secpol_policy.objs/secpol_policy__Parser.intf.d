lib/policy/parser.mli: Ast Lexer
