lib/policy/printer.ml: Ast Buffer Format List String
