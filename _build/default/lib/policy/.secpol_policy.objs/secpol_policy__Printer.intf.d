lib/policy/printer.mli: Ast Format
