lib/policy/update.ml: Ast Char Compile Digest Format Hashtbl Ir List Option Parser Printer Printf String
