lib/policy/update.mli: Ast Format Ir
