type op = Read | Write | Rw

type decision = Allow | Deny

type subjects = Any_subject | Subjects of string list

type msg_range = { lo : int; hi : int }

type rate = { count : int; window_ms : int }

type rule = {
  decision : decision;
  op : op;
  subjects : subjects;
  messages : msg_range list option;
  rate : rate option;
}

type asset_block = { asset : string; rules : rule list }

type section =
  | Default of decision
  | Modes of string list * asset_block list
  | Global of asset_block

type policy = { name : string; version : int; sections : section list }

let op_name = function Read -> "read" | Write -> "write" | Rw -> "rw"

let decision_name = function Allow -> "allow" | Deny -> "deny"

let range lo hi =
  if lo < 0 then invalid_arg "Ast.range: negative lower bound";
  if hi < lo then invalid_arg "Ast.range: hi < lo";
  { lo; hi }

let single i = range i i

let rate_limit ~count ~window_ms =
  if count <= 0 then invalid_arg "Ast.rate_limit: count must be positive";
  if window_ms <= 0 then invalid_arg "Ast.rate_limit: window must be positive";
  { count; window_ms }

let range_mem i r = i >= r.lo && i <= r.hi

let normalise_subjects = function
  | Any_subject -> Any_subject
  | Subjects [] -> Any_subject
  | Subjects l -> Subjects (List.sort_uniq String.compare l)

(* Sort ranges by lower bound and merge overlapping or adjacent ones, so the
   normal form of a message set is unique. *)
let normalise_ranges rs =
  let sorted = List.sort (fun a b -> compare (a.lo, a.hi) (b.lo, b.hi)) rs in
  let rec merge = function
    | a :: b :: rest ->
        if b.lo <= a.hi + 1 then merge ({ lo = a.lo; hi = max a.hi b.hi } :: rest)
        else a :: merge (b :: rest)
    | l -> l
  in
  merge sorted

let normalise_rule r =
  {
    r with
    subjects = normalise_subjects r.subjects;
    messages = Option.map normalise_ranges r.messages;
  }

let normalise_block b = { b with rules = List.map normalise_rule b.rules }

let normalise_section = function
  | Default d -> Default d
  | Modes (modes, blocks) ->
      Modes (List.sort_uniq String.compare modes, List.map normalise_block blocks)
  | Global b -> Global (normalise_block b)

let normalise p = { p with sections = List.map normalise_section p.sections }

let equal a b = normalise a = normalise b
