type entry = {
  time : float;
  request : Ir.request;
  decision : Ast.decision;
  rule_origin : string option;
}

type t = {
  capacity : int;
  mutable buffer : entry list;  (* newest first *)
  mutable retained : int;
  mutable total : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Audit.create: capacity must be positive";
  { capacity; buffer = []; retained = 0; total = 0 }

let log t ~time request (outcome : Engine.outcome) =
  let entry =
    {
      time;
      request;
      decision = outcome.decision;
      rule_origin = Option.map (fun (r : Ir.rule) -> r.origin) outcome.matched;
    }
  in
  t.buffer <- entry :: t.buffer;
  t.retained <- t.retained + 1;
  t.total <- t.total + 1;
  if t.retained > t.capacity then begin
    (* drop the oldest half lazily to avoid O(n) per log call *)
    let keep = t.capacity in
    t.buffer <- List.filteri (fun i _ -> i < keep) t.buffer;
    t.retained <- keep
  end

let entries t = List.rev t.buffer

let denials t = List.filter (fun e -> e.decision = Ast.Deny) (entries t)

let allows t = List.filter (fun e -> e.decision = Ast.Allow) (entries t)

let total_logged t = t.total

let denials_for_subject t subject =
  List.filter (fun e -> e.request.Ir.subject = subject) (denials t)

let clear t =
  t.buffer <- [];
  t.retained <- 0

let pp_entry ppf e =
  Format.fprintf ppf "[%8.3f] %a -> %s%s" e.time Ir.pp_request e.request
    (Ast.decision_name e.decision)
    (match e.rule_origin with None -> " (default)" | Some o -> " (" ^ o ^ ")")

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)
