(** Bounded audit log of policy decisions.

    Both enforcement paths log here; the connected-car scenarios read the
    log back to prove which attacks were blocked, by which rule. *)

type entry = {
  time : float;  (** simulation time of the decision *)
  request : Ir.request;
  decision : Ast.decision;
  rule_origin : string option;  (** origin of the deciding rule, if any *)
}

type t

val create : ?capacity:int -> unit -> t
(** Ring buffer; oldest entries are evicted past [capacity]
    (default 4096). *)

val log : t -> time:float -> Ir.request -> Engine.outcome -> unit

val entries : t -> entry list
(** Retained entries, oldest first. *)

val denials : t -> entry list

val allows : t -> entry list

val total_logged : t -> int
(** Includes evicted entries. *)

val denials_for_subject : t -> string -> entry list

val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit

val pp : Format.formatter -> t -> unit
