type issue = { severity : [ `Error | `Warning ]; message : string }

let pp_issue ppf i =
  Format.fprintf ppf "%s: %s"
    (match i.severity with `Error -> "error" | `Warning -> "warning")
    i.message

let compile ?known_modes ?known_assets ?known_subjects (p : Ast.policy) =
  let p = Ast.normalise p in
  let issues = ref [] in
  let error fmt =
    Printf.ksprintf (fun m -> issues := { severity = `Error; message = m } :: !issues) fmt
  in
  let warn fmt =
    Printf.ksprintf
      (fun m -> issues := { severity = `Warning; message = m } :: !issues)
      fmt
  in
  let check_known what universe name =
    match universe with
    | Some names when not (List.mem name names) ->
        warn "policy %S references unknown %s %S" p.name what name
    | Some _ | None -> ()
  in
  let defaults =
    List.filter_map (function Ast.Default d -> Some d | _ -> None) p.sections
  in
  if List.length defaults > 1 then error "policy %S has multiple default sections" p.name;
  let default = match defaults with d :: _ -> d | [] -> Ast.Deny in
  let next_idx = ref 0 in
  let lower_block modes (b : Ast.asset_block) =
    check_known "asset" known_assets b.asset;
    if b.rules = [] then warn "asset block %S has no rules" b.asset;
    List.map
      (fun (r : Ast.rule) ->
        (match r.subjects with
        | Ast.Any_subject -> ()
        | Ast.Subjects subs ->
            List.iter (check_known "subject" known_subjects) subs);
        if r.decision = Ast.Deny && r.rate <> None then
          error "policy %S: a deny rule cannot carry a rate limit" p.name;
        let idx = !next_idx in
        incr next_idx;
        {
          Ir.idx;
          decision = r.decision;
          ops = Ir.op_of_ast r.op;
          subjects = r.subjects;
          asset = b.asset;
          modes;
          messages = r.messages;
          rate = r.rate;
          origin = Printf.sprintf "%s v%d" p.name p.version;
        })
      b.rules
  in
  let rules =
    List.concat_map
      (function
        | Ast.Default _ -> []
        | Ast.Global b -> lower_block None b
        | Ast.Modes (modes, blocks) ->
            List.iter (check_known "mode" known_modes) modes;
            if blocks = [] then error "empty mode section in policy %S" p.name;
            List.concat_map (lower_block (Some modes)) blocks)
      p.sections
  in
  let issues = List.rev !issues in
  let errors = List.filter (fun i -> i.severity = `Error) issues in
  if errors <> [] then Error issues
  else
    Ok ({ Ir.name = p.name; version = p.version; default; rules }, issues)

let compile_exn ?known_modes ?known_assets ?known_subjects p =
  match compile ?known_modes ?known_assets ?known_subjects p with
  | Ok (db, _) -> db
  | Error issues ->
      let msgs =
        List.filter_map
          (fun i -> if i.severity = `Error then Some i.message else None)
          issues
      in
      invalid_arg ("Compile.compile_exn: " ^ String.concat "; " msgs)

let of_source source =
  match Parser.parse source with
  | Error e -> Error e
  | Ok ast -> (
      match compile ast with
      | Ok (db, _) -> Ok db
      | Error issues ->
          let first =
            List.find_opt (fun i -> i.severity = `Error) issues
          in
          Error
            (match first with
            | Some i -> i.message
            | None -> "compilation failed"))
