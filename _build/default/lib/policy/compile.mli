(** Compiler from policy AST to the flat rule database ({!Ir.db}).

    Lowering: every [rw] rule expands to both operations; mode sections
    stamp their asset blocks with the mode list; the [default] section sets
    the database default (deny when absent — fail-closed). *)

type issue = {
  severity : [ `Error | `Warning ];
  message : string;
}

val compile :
  ?known_modes:string list ->
  ?known_assets:string list ->
  ?known_subjects:string list ->
  Ast.policy ->
  (Ir.db * issue list, issue list) result
(** [compile p] lowers [p].  Errors (compilation fails):
    - more than one [default] section;
    - an empty mode section ([mode x { }] with no asset blocks).
    Warnings (returned alongside the database):
    - an asset block with no rules;
    - references to modes / assets / subjects outside the optional known
      universes (when provided) — these catch typos against a threat model. *)

val compile_exn :
  ?known_modes:string list ->
  ?known_assets:string list ->
  ?known_subjects:string list ->
  Ast.policy ->
  Ir.db
(** @raise Invalid_argument on errors; warnings are discarded. *)

val of_source : string -> (Ir.db, string) result
(** Parse then compile; warnings discarded, first error rendered. *)

val pp_issue : Format.formatter -> issue -> unit
