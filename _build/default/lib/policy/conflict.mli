(** Static policy analysis: conflicting and shadowed rules.

    Run after compilation to surface mistakes before deployment — the
    policy-update workflow of the paper depends on being able to validate a
    new policy off-device. *)

type conflict = {
  rule_a : Ir.rule;
  rule_b : Ir.rule;
  reason : string;
}
(** Two rules whose scopes overlap in every dimension but whose decisions
    differ.  Under [Deny_overrides] the deny silently wins; under
    [First_match] source order silently wins — either way the author should
    be told. *)

val conflicts : Ir.db -> conflict list
(** Every conflicting pair, earlier rule first. *)

val shadowed : Ir.db -> (Ir.rule * Ir.rule) list
(** Pairs [(winner, dead)] where [winner] precedes [dead] and covers its
    entire scope with the same decision, making [dead] unreachable under
    first-match evaluation and redundant under the override strategies. *)

val overlap : Ir.rule -> Ir.rule -> bool
(** Scope overlap test (ignores decisions). *)

val covers : Ir.rule -> Ir.rule -> bool
(** [covers a b] is true when every request matched by [b] is matched by
    [a]. *)

val pp_conflict : Format.formatter -> conflict -> unit
