type cell = { mode : string; subject : string; asset : string; op : Ir.op }

type report = {
  total : int;
  covered : int;
  gaps : cell list;
  default : Ast.decision;
}

let rule_covers (r : Ir.rule) (c : cell) =
  r.asset = c.asset
  && List.mem c.op r.ops
  && (match r.subjects with
     | Ast.Any_subject -> true
     | Ast.Subjects l -> List.mem c.subject l)
  && match r.modes with None -> true | Some l -> List.mem c.mode l

let cell_covered (db : Ir.db) c = List.exists (fun r -> rule_covers r c) db.rules

let analyse db ~modes ~subjects ~assets =
  if modes = [] || subjects = [] || assets = [] then
    invalid_arg "Coverage.analyse: empty universe";
  let gaps = ref [] in
  let covered = ref 0 in
  let total = ref 0 in
  List.iter
    (fun mode ->
      List.iter
        (fun subject ->
          List.iter
            (fun asset ->
              List.iter
                (fun op ->
                  incr total;
                  let c = { mode; subject; asset; op } in
                  if cell_covered db c then incr covered else gaps := c :: !gaps)
                [ Ir.Read; Ir.Write ])
            assets)
        subjects)
    modes;
  { total = !total; covered = !covered; gaps = List.rev !gaps;
    default = db.Ir.default }

let ratio r = if r.total = 0 then 1.0 else float_of_int r.covered /. float_of_int r.total

let pp ppf r =
  Format.fprintf ppf
    "coverage: %d/%d cells decided explicitly (%.0f%%); %d gap(s) fall to \
     default %s"
    r.covered r.total
    (100.0 *. ratio r)
    (List.length r.gaps)
    (Ast.decision_name r.default);
  List.iteri
    (fun i c ->
      if i < 5 then
        Format.fprintf ppf "@,  gap: %s %s %s in %s" c.subject
          (Ir.op_name c.op) c.asset c.mode)
    r.gaps;
  if List.length r.gaps > 5 then
    Format.fprintf ppf "@,  ... and %d more" (List.length r.gaps - 5)
