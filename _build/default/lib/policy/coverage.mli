(** Coverage analysis: which cells of the access space does a policy decide
    explicitly, and which fall silently to the default?

    With [default deny] a gap is fail-safe but may indicate a forgotten
    legitimate flow (a Q4 false block waiting to happen); with
    [default allow] a gap is an unreviewed permission.  The analysis
    enumerates the [(mode, subject, asset, operation)] grid over declared
    universes and reports the cells no rule speaks about. *)

type cell = { mode : string; subject : string; asset : string; op : Ir.op }

type report = {
  total : int;  (** grid size *)
  covered : int;  (** cells some rule explicitly decides *)
  gaps : cell list;  (** uncovered cells, deterministic order *)
  default : Ast.decision;  (** what the gaps resolve to at run time *)
}

val cell_covered : Ir.db -> cell -> bool
(** True when some rule's scope includes the cell (message-ID constraints
    are ignored: a message-scoped rule covers its cell for the IDs it
    names). *)

val analyse :
  Ir.db ->
  modes:string list ->
  subjects:string list ->
  assets:string list ->
  report
(** Enumerate the grid.  Universes must be non-empty.
    @raise Invalid_argument otherwise. *)

val ratio : report -> float
(** covered / total. *)

val pp : Format.formatter -> report -> unit
(** Summary plus the first few gaps. *)
