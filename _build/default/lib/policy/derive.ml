module T = Secpol_threat.Threat
module Model = Secpol_threat.Model
module Entry_point = Secpol_threat.Entry_point
module Countermeasure = Secpol_threat.Countermeasure

type access = R | W | RW

let access_name = function R -> "R" | W -> "W" | RW -> "RW"

let row_access (t : T.t) =
  match List.sort_uniq compare t.legitimate_operations with
  | [] -> None
  | [ T.Read ] -> Some R
  | [ T.Write ] -> Some W
  | _ -> Some RW

let threat_rules (t : T.t) =
  let ops =
    match row_access t with
    | None -> []
    | Some R -> [ Ast.Read ]
    | Some W -> [ Ast.Write ]
    | Some RW -> [ Ast.Rw ]
  in
  List.map
    (fun op ->
      {
        Ast.decision = Ast.Allow;
        op;
        subjects = Ast.Subjects t.entry_points;
        messages = None;
        rate = None;
      })
    ops

let sanitise_name name =
  let mangled =
    String.map
      (fun c ->
        if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_' then c
        else if c >= 'A' && c <= 'Z' then Char.lowercase_ascii c
        else '_')
      name
  in
  if mangled = "" then "policy" else mangled

let block_of asset rules = { Ast.asset; rules }

let sections_of_threat (t : T.t) =
  let block = block_of t.asset (threat_rules t) in
  if t.modes = [] then [ Ast.Global block ] else [ Ast.Modes (t.modes, [ block ]) ]

let threat_to_policy ?(version = 1) (t : T.t) =
  Ast.normalise
    {
      Ast.name = sanitise_name t.id;
      version;
      sections = Ast.Default Ast.Deny :: sections_of_threat t;
    }

(* Group the model's threats by their mode scope, then merge rules per asset
   within each group, deduplicating identical rules. *)
let model_to_policy ?name ?(version = 1) (m : Model.t) =
  let name = match name with Some n -> n | None -> sanitise_name m.use_case in
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (t : T.t) ->
      let key = List.sort_uniq String.compare t.modes in
      let existing = Option.value ~default:[] (Hashtbl.find_opt groups key) in
      Hashtbl.replace groups key (existing @ [ t ]))
    m.threats;
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) groups []
    |> List.sort compare
  in
  let merge_blocks threats =
    let assets =
      List.sort_uniq String.compare (List.map (fun (t : T.t) -> t.asset) threats)
    in
    List.filter_map
      (fun asset ->
        let rules =
          threats
          |> List.filter (fun (t : T.t) -> t.asset = asset)
          |> List.concat_map threat_rules
          |> List.sort_uniq compare
        in
        if rules = [] then None else Some (block_of asset rules))
      assets
  in
  let sections =
    List.concat_map
      (fun key ->
        let threats = Hashtbl.find groups key in
        match merge_blocks threats with
        | [] -> []
        | blocks ->
            if key = [] then List.map (fun b -> Ast.Global b) blocks
            else [ Ast.Modes (key, blocks) ])
      keys
  in
  Ast.normalise { Ast.name; version; sections = Ast.Default Ast.Deny :: sections }

let enforcement_for (m : Model.t) (t : T.t) =
  let bus_only =
    List.for_all
      (fun ep_id ->
        match Model.find_entry_point m ep_id with
        | Some ep -> ep.interface = Entry_point.Bus
        | None -> false)
      t.entry_points
  in
  if bus_only then Countermeasure.Hardware_enforced
  else Countermeasure.Software_enforced

let countermeasures (m : Model.t) =
  List.map
    (fun (t : T.t) ->
      let source = Printer.to_string (threat_to_policy t) in
      Countermeasure.policy ~threat_id:t.id
        ~description:(Printf.sprintf "derived least-privilege policy for %s" t.id)
        ~enforcement:(enforcement_for m t) source)
    m.threats

let residual_risks (m : Model.t) = List.filter T.residual_risk m.threats
