(** Policy derivation from a threat model — the paper's core contribution:
    the "determine countermeasure" stage emits enforceable policies instead
    of prose guidelines.

    Derivation is least-privilege: for every threat, the asset's entry
    points are permitted exactly the operations that legitimate parties
    require ({!Secpol_threat.Threat.t.legitimate_operations}); everything
    else falls to the policy's [default deny].  The attack operation is
    therefore blocked unless it coincides with a legitimate operation — the
    residual-risk (RW) rows of Table I, which the paper says need
    finer-grained behavioural policies. *)

type access = R | W | RW
(** The paper's Table-I "Policy" column. *)

val access_name : access -> string
(** ["R"], ["W"], ["RW"]. *)

val row_access : Secpol_threat.Threat.t -> access option
(** The Table-I policy cell for a threat: its legitimate operations folded
    to R/W/RW; [None] when nothing legitimate remains (full deny). *)

val threat_rules : Secpol_threat.Threat.t -> Ast.rule list
(** Allow-rules granting the threat's legitimate operations to its entry
    points (to be combined with [default deny]). *)

val threat_to_policy :
  ?version:int -> Secpol_threat.Threat.t -> Ast.policy
(** A standalone single-threat policy, e.g. for an emergency update
    countering one newly discovered threat. *)

val model_to_policy :
  ?name:string -> ?version:int -> Secpol_threat.Model.t -> Ast.policy
(** The full security model as one policy: one mode section per distinct
    mode set, merged asset blocks, [default deny].  [name] defaults to the
    model's use-case name mangled to an identifier. *)

val countermeasures :
  Secpol_threat.Model.t -> Secpol_threat.Countermeasure.t list
(** One policy countermeasure per threat in the model (hardware-enforced
    for bus entry points, software-enforced otherwise). *)

val residual_risks : Secpol_threat.Model.t -> Secpol_threat.Threat.t list
(** Threats whose attack operation survives derivation (the RW rows). *)
