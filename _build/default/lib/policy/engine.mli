(** Policy evaluation engine: the configurable "policy engine" of the paper,
    shared by the software (SELinux-style) and hardware (HPE) enforcement
    paths, which compile their own tables from the same {!Ir.db}. *)

type strategy =
  | Deny_overrides
      (** any matching deny wins over any matching allow (default; this is
          the fail-safe composition used for Table I) *)
  | Allow_overrides  (** any matching allow wins over any matching deny *)
  | First_match  (** the earliest matching rule in source order decides *)

type outcome = {
  decision : Ast.decision;
  matched : Ir.rule option;  (** rule that determined the decision, if any *)
  from_cache : bool;
}

type t

val create : ?strategy:strategy -> ?cache:bool -> Ir.db -> t
(** [cache] (default [true]) memoises decisions per distinct request. *)

val strategy : t -> strategy

val db : t -> Ir.db

val decide : ?now:float -> t -> Ir.request -> outcome
(** [now] (seconds, default [0.]) drives behavioural rate limits: an allow
    rule with [rate n per w] can ground at most [n] Allow decisions per
    subject within any sliding [w]-millisecond window; once exhausted it is
    skipped and evaluation falls through (usually to [default deny]).  The
    budget is consumed only when the rule actually produces the decision —
    matching alongside a winning deny costs nothing.  Requests touching
    rate-limited assets bypass the decision cache (their outcome is
    time-dependent). *)

val permitted : ?now:float -> t -> Ir.request -> bool
(** [decide] projected to a boolean. *)

val swap_db : t -> Ir.db -> unit
(** Hot-swap the policy database (a policy update); flushes the cache. *)

val flush_cache : t -> unit

type stats = {
  decisions : int;
  allows : int;
  denies : int;
  cache_hits : int;
  cache_misses : int;
}

val stats : t -> stats

val pp_outcome : Format.formatter -> outcome -> unit
