type token =
  | POLICY
  | VERSION
  | MODE
  | ASSET
  | DEFAULT
  | ALLOW
  | DENY
  | READ
  | WRITE
  | RW
  | FROM
  | MESSAGES
  | RATE
  | PER
  | ANY
  | IDENT of string
  | STRING of string
  | INT of int
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | DOTDOT
  | EOF

type position = { line : int; column : int }

exception Lex_error of string * position

let token_name = function
  | POLICY -> "'policy'"
  | VERSION -> "'version'"
  | MODE -> "'mode'"
  | ASSET -> "'asset'"
  | DEFAULT -> "'default'"
  | ALLOW -> "'allow'"
  | DENY -> "'deny'"
  | READ -> "'read'"
  | WRITE -> "'write'"
  | RW -> "'rw'"
  | FROM -> "'from'"
  | MESSAGES -> "'messages'"
  | RATE -> "'rate'"
  | PER -> "'per'"
  | ANY -> "'any'"
  | IDENT s -> Printf.sprintf "identifier %S" s
  | STRING s -> Printf.sprintf "string %S" s
  | INT i -> Printf.sprintf "integer %d" i
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | DOTDOT -> "'..'"
  | EOF -> "end of input"

let keyword_of_string = function
  | "policy" -> Some POLICY
  | "version" -> Some VERSION
  | "mode" -> Some MODE
  | "asset" -> Some ASSET
  | "default" -> Some DEFAULT
  | "allow" -> Some ALLOW
  | "deny" -> Some DENY
  | "read" -> Some READ
  | "write" -> Some WRITE
  | "rw" -> Some RW
  | "from" -> Some FROM
  | "messages" -> Some MESSAGES
  | "rate" -> Some RATE
  | "per" -> Some PER
  | "any" -> Some ANY
  | _ -> None

type state = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let position st = { line = st.line; column = st.col }

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let is_hex_digit c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '#' ->
      skip_line st;
      skip_trivia st
  | Some '/'
    when st.pos + 1 < String.length st.input && st.input.[st.pos + 1] = '/' ->
      skip_line st;
      skip_trivia st
  | _ -> ()

and skip_line st =
  match peek st with
  | Some '\n' | None -> ()
  | Some _ ->
      advance st;
      skip_line st

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

let lex_string st =
  let pos0 = position st in
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> raise (Lex_error ("unterminated string", pos0))
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' ->
            Buffer.add_char buf '"';
            advance st;
            loop ()
        | Some '\\' ->
            Buffer.add_char buf '\\';
            advance st;
            loop ()
        | Some c -> raise (Lex_error (Printf.sprintf "bad escape '\\%c'" c, position st))
        | None -> raise (Lex_error ("unterminated string", pos0)))
    | Some '\n' -> raise (Lex_error ("newline in string", position st))
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
  in
  loop ();
  Buffer.contents buf

let lex_number st =
  let pos0 = position st in
  let start = st.pos in
  let hex =
    st.pos + 1 < String.length st.input
    && st.input.[st.pos] = '0'
    && (st.input.[st.pos + 1] = 'x' || st.input.[st.pos + 1] = 'X')
  in
  if hex then begin
    advance st;
    advance st;
    let digits_start = st.pos in
    while (match peek st with Some c -> is_hex_digit c | None -> false) do
      advance st
    done;
    if st.pos = digits_start then
      raise (Lex_error ("hex literal with no digits", pos0))
  end
  else
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
  let text = String.sub st.input start (st.pos - start) in
  match int_of_string_opt text with
  | Some v -> v
  | None -> raise (Lex_error (Printf.sprintf "bad number %S" text, pos0))

let tokenize input =
  let st = { input; pos = 0; line = 1; col = 1 } in
  let rec loop acc =
    skip_trivia st;
    let pos = position st in
    match peek st with
    | None -> List.rev ((EOF, pos) :: acc)
    | Some c ->
        let tok =
          match c with
          | '{' ->
              advance st;
              LBRACE
          | '}' ->
              advance st;
              RBRACE
          | ';' ->
              advance st;
              SEMI
          | ',' ->
              advance st;
              COMMA
          | '.' ->
              advance st;
              if peek st = Some '.' then begin
                advance st;
                DOTDOT
              end
              else raise (Lex_error ("expected '..'", pos))
          | '"' -> STRING (lex_string st)
          | c when is_digit c -> INT (lex_number st)
          | c when is_ident_start c -> (
              let word = lex_ident st in
              match keyword_of_string word with
              | Some kw -> kw
              | None -> IDENT word)
          | c -> raise (Lex_error (Printf.sprintf "illegal character %C" c, pos))
        in
        loop ((tok, pos) :: acc)
  in
  loop []
