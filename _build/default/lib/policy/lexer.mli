(** Hand-written lexer for the policy DSL.

    Comments run from [#] or [//] to end of line.  Integers are decimal or
    [0x]-prefixed hexadecimal.  Strings are double-quoted; backslash escapes
    the quote and backslash characters. *)

type token =
  | POLICY
  | VERSION
  | MODE
  | ASSET
  | DEFAULT
  | ALLOW
  | DENY
  | READ
  | WRITE
  | RW
  | FROM
  | MESSAGES
  | RATE
  | PER
  | ANY
  | IDENT of string
  | STRING of string
  | INT of int
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | DOTDOT
  | EOF

type position = { line : int; column : int }

exception Lex_error of string * position

val token_name : token -> string
(** For diagnostics, e.g. [IDENT "x"] -> ["identifier \"x\""]. *)

val tokenize : string -> (token * position) list
(** The whole input, ending with [EOF].
    @raise Lex_error on an illegal character, unterminated string or
    malformed number. *)
