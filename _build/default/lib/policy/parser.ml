open Ast

exception Parse_error of string * Lexer.position

type state = { mutable tokens : (Lexer.token * Lexer.position) list }

let peek st =
  match st.tokens with
  | [] -> (Lexer.EOF, { Lexer.line = 0; column = 0 })
  | t :: _ -> t

let advance st = match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let error st msg =
  let _, pos = peek st in
  raise (Parse_error (msg, pos))

let expect st tok =
  let got, pos = peek st in
  if got = tok then advance st
  else
    raise
      (Parse_error
         ( Printf.sprintf "expected %s but found %s" (Lexer.token_name tok)
             (Lexer.token_name got),
           pos ))

let parse_ident st =
  match peek st with
  | Lexer.IDENT name, _ ->
      advance st;
      name
  | got, pos ->
      raise
        (Parse_error
           ( Printf.sprintf "expected identifier but found %s" (Lexer.token_name got),
             pos ))

let parse_int st =
  match peek st with
  | Lexer.INT v, _ ->
      advance st;
      v
  | got, pos ->
      raise
        (Parse_error
           ( Printf.sprintf "expected integer but found %s" (Lexer.token_name got),
             pos ))

let parse_ident_list st =
  let first = parse_ident st in
  let rec more acc =
    match peek st with
    | Lexer.COMMA, _ ->
        advance st;
        more (parse_ident st :: acc)
    | _ -> List.rev acc
  in
  more [ first ]

let parse_decision st =
  match peek st with
  | Lexer.ALLOW, _ ->
      advance st;
      Allow
  | Lexer.DENY, _ ->
      advance st;
      Deny
  | got, pos ->
      raise
        (Parse_error
           ( Printf.sprintf "expected 'allow' or 'deny' but found %s"
               (Lexer.token_name got),
             pos ))

let parse_op st =
  match peek st with
  | Lexer.READ, _ ->
      advance st;
      Read
  | Lexer.WRITE, _ ->
      advance st;
      Write
  | Lexer.RW, _ ->
      advance st;
      Rw
  | got, pos ->
      raise
        (Parse_error
           ( Printf.sprintf "expected 'read', 'write' or 'rw' but found %s"
               (Lexer.token_name got),
             pos ))

let parse_subjects st =
  match peek st with
  | Lexer.ANY, _ ->
      advance st;
      Any_subject
  | _ -> Subjects (parse_ident_list st)

let parse_range st =
  let lo = parse_int st in
  match peek st with
  | Lexer.DOTDOT, pos ->
      advance st;
      let hi = parse_int st in
      if hi < lo then raise (Parse_error ("empty message range (hi < lo)", pos));
      range lo hi
  | _ -> single lo

let parse_ranges st =
  let first = parse_range st in
  let rec more acc =
    match peek st with
    | Lexer.COMMA, _ ->
        advance st;
        more (parse_range st :: acc)
    | _ -> List.rev acc
  in
  more [ first ]

(* rule := decision op 'from' subjects ['messages' ranges]
           ['rate' INT 'per' INT] ';' *)
let parse_rule st =
  let decision = parse_decision st in
  let op = parse_op st in
  expect st Lexer.FROM;
  let subjects = parse_subjects st in
  let messages =
    match peek st with
    | Lexer.MESSAGES, _ ->
        advance st;
        Some (parse_ranges st)
    | _ -> None
  in
  let rate =
    match peek st with
    | Lexer.RATE, pos ->
        advance st;
        let count = parse_int st in
        expect st Lexer.PER;
        let window_ms = parse_int st in
        if count <= 0 || window_ms <= 0 then
          raise (Parse_error ("rate count and window must be positive", pos));
        Some { count; window_ms }
    | _ -> None
  in
  expect st Lexer.SEMI;
  { decision; op; subjects; messages; rate }

(* asset-block := 'asset' ident '{' rule* '}' *)
let parse_asset_block st =
  expect st Lexer.ASSET;
  let asset = parse_ident st in
  expect st Lexer.LBRACE;
  let rec rules acc =
    match peek st with
    | Lexer.RBRACE, _ ->
        advance st;
        List.rev acc
    | _ -> rules (parse_rule st :: acc)
  in
  let rules = rules [] in
  { asset; rules }

let parse_section st =
  match peek st with
  | Lexer.DEFAULT, _ ->
      advance st;
      let d = parse_decision st in
      expect st Lexer.SEMI;
      Default d
  | Lexer.MODE, _ ->
      advance st;
      let modes = parse_ident_list st in
      expect st Lexer.LBRACE;
      let rec blocks acc =
        match peek st with
        | Lexer.RBRACE, _ ->
            advance st;
            List.rev acc
        | _ -> blocks (parse_asset_block st :: acc)
      in
      Modes (modes, blocks [])
  | Lexer.ASSET, _ -> Global (parse_asset_block st)
  | got, pos ->
      raise
        (Parse_error
           ( Printf.sprintf
               "expected 'default', 'mode' or 'asset' but found %s"
               (Lexer.token_name got),
             pos ))

(* policy := 'policy' string 'version' int '{' section* '}' *)
let parse_policy st =
  expect st Lexer.POLICY;
  let name =
    match peek st with
    | Lexer.STRING s, _ ->
        advance st;
        s
    | got, pos ->
        raise
          (Parse_error
             ( Printf.sprintf "expected policy name string but found %s"
                 (Lexer.token_name got),
               pos ))
  in
  expect st Lexer.VERSION;
  let version = parse_int st in
  if version < 0 then error st "negative policy version";
  expect st Lexer.LBRACE;
  let rec sections acc =
    match peek st with
    | Lexer.RBRACE, _ ->
        advance st;
        List.rev acc
    | _ -> sections (parse_section st :: acc)
  in
  { name; version; sections = sections [] }

let render_error msg (pos : Lexer.position) =
  Printf.sprintf "line %d, column %d: %s" pos.line pos.column msg

let run f input =
  match f { tokens = Lexer.tokenize input } with
  | v -> Ok v
  | exception Parse_error (msg, pos) -> Error (render_error msg pos)
  | exception Lexer.Lex_error (msg, pos) -> Error (render_error msg pos)

let parse input =
  let one st =
    let p = parse_policy st in
    expect st Lexer.EOF;
    p
  in
  run one input

let parse_exn input =
  let st = { tokens = Lexer.tokenize input } in
  let p = parse_policy st in
  expect st Lexer.EOF;
  p

let parse_many input =
  let many st =
    let rec loop acc =
      match peek st with
      | Lexer.EOF, _ -> List.rev acc
      | _ -> loop (parse_policy st :: acc)
    in
    loop []
  in
  run many input
