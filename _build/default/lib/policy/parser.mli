(** Recursive-descent parser for the policy DSL (grammar in {!Ast}). *)

exception Parse_error of string * Lexer.position

val parse : string -> (Ast.policy, string) result
(** Parse one complete policy.  Errors render as
    ["line L, column C: message"]. *)

val parse_exn : string -> Ast.policy
(** @raise Parse_error *)

val parse_many : string -> (Ast.policy list, string) result
(** Parse a file containing zero or more policies. *)
