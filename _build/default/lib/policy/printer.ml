open Ast

let pp_range ppf (r : msg_range) =
  if r.lo = r.hi then Format.fprintf ppf "0x%x" r.lo
  else Format.fprintf ppf "0x%x..0x%x" r.lo r.hi

let pp_list pp_item ppf items =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    pp_item ppf items

let pp_subjects ppf = function
  | Any_subject -> Format.pp_print_string ppf "any"
  | Subjects l -> pp_list Format.pp_print_string ppf l

let pp_rule ppf (r : rule) =
  Format.fprintf ppf "%s %s from %a" (decision_name r.decision) (op_name r.op)
    pp_subjects r.subjects;
  (match r.messages with
  | None -> ()
  | Some ranges -> Format.fprintf ppf " messages %a" (pp_list pp_range) ranges);
  (match r.rate with
  | None -> ()
  | Some rate -> Format.fprintf ppf " rate %d per %d" rate.count rate.window_ms);
  Format.fprintf ppf ";"

let pp_asset_block ppf (b : asset_block) =
  Format.fprintf ppf "@[<v 2>asset %s {" b.asset;
  List.iter (fun r -> Format.fprintf ppf "@,%a" pp_rule r) b.rules;
  Format.fprintf ppf "@]@,}"

let pp_section ppf = function
  | Default d -> Format.fprintf ppf "default %s;" (decision_name d)
  | Global b -> pp_asset_block ppf b
  | Modes (modes, blocks) ->
      Format.fprintf ppf "@[<v 2>mode %a {" (pp_list Format.pp_print_string) modes;
      List.iter (fun b -> Format.fprintf ppf "@,%a" pp_asset_block b) blocks;
      Format.fprintf ppf "@]@,}"

let escape_name name =
  let buf = Buffer.create (String.length name + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' ->
          Buffer.add_char buf '\\';
          Buffer.add_char buf c
      | c -> Buffer.add_char buf c)
    name;
  Buffer.contents buf

let pp_policy ppf (p : policy) =
  let p = normalise p in
  Format.fprintf ppf "@[<v 2>policy \"%s\" version %d {" (escape_name p.name)
    p.version;
  List.iter (fun s -> Format.fprintf ppf "@,%a" pp_section s) p.sections;
  Format.fprintf ppf "@]@,}@."

let to_string p = Format.asprintf "%a" pp_policy p
