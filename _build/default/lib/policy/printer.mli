(** Pretty-printer for the policy DSL.

    Round-trip guarantee: for any policy [p],
    [Parser.parse_exn (to_string p)] equals [Ast.normalise p]. *)

val pp_rule : Format.formatter -> Ast.rule -> unit

val pp_policy : Format.formatter -> Ast.policy -> unit

val to_string : Ast.policy -> string
