type bundle = {
  name : string;
  version : int;
  source : string;
  checksum : string;
  signature : string option;
  created_at : float;
}

let checksum_of ~name ~version ~source =
  Digest.to_hex (Digest.string (Printf.sprintf "%s\x00%d\x00%s" name version source))

let bundle ?(at = 0.0) policy =
  let source = Printer.to_string policy in
  let name = policy.Ast.name and version = policy.Ast.version in
  {
    name;
    version;
    source;
    checksum = checksum_of ~name ~version ~source;
    signature = None;
    created_at = at;
  }

let bundle_of_source ?(at = 0.0) source =
  match Parser.parse source with
  | Error e -> Error e
  | Ok ast -> (
      match Compile.compile ast with
      | Error issues ->
          let msgs =
            List.filter_map
              (fun (i : Compile.issue) ->
                if i.severity = `Error then Some i.message else None)
              issues
          in
          Error (String.concat "; " msgs)
      | Ok _ ->
          let name = ast.Ast.name and version = ast.Ast.version in
          Ok
            {
              name;
              version;
              source;
              checksum = checksum_of ~name ~version ~source;
              signature = None;
              created_at = at;
            })

let verify b = b.checksum = checksum_of ~name:b.name ~version:b.version ~source:b.source

let tampered b ~payload = { b with source = payload }

(* HMAC over the checksum: H((K xor opad) || H((K xor ipad) || m)) with a
   64-byte block, per RFC 2104 (the hash is the stdlib digest; the point is
   the keyed construction, not the primitive's strength). *)
let hmac ~key message =
  let block = 64 in
  let key =
    if String.length key > block then Digest.string key else key
  in
  let key = key ^ String.make (block - String.length key) '\000' in
  let xor_with pad =
    String.init block (fun i -> Char.chr (Char.code key.[i] lxor pad))
  in
  Digest.to_hex
    (Digest.string (xor_with 0x5c ^ Digest.string (xor_with 0x36 ^ message)))

let sign ~key b = { b with signature = Some (hmac ~key b.checksum) }

let verify_signed ~key b =
  verify b
  &&
  match b.signature with
  | Some s -> s = hmac ~key b.checksum
  | None -> false

type store = (string, bundle list) Hashtbl.t
(* newest first *)

let create () : store = Hashtbl.create 8

let current store name =
  match Hashtbl.find_opt store name with
  | Some (b :: _) -> Some b
  | Some [] | None -> None

let install store b =
  if not (verify b) then
    Error (Printf.sprintf "bundle %s v%d failed integrity check" b.name b.version)
  else
    match Compile.of_source b.source with
    | Error e -> Error (Printf.sprintf "bundle %s v%d does not compile: %s" b.name b.version e)
    | Ok _ -> (
        match current store b.name with
        | Some cur when b.version <= cur.version ->
            Error
              (Printf.sprintf
                 "bundle %s v%d is not newer than installed v%d (downgrade refused)"
                 b.name b.version cur.version)
        | Some _ | None ->
            let history = Option.value ~default:[] (Hashtbl.find_opt store b.name) in
            Hashtbl.replace store b.name (b :: history);
            Ok ())

let install_signed store ~key b =
  if not (verify_signed ~key b) then
    Error
      (Printf.sprintf "bundle %s v%d failed the authenticity check" b.name
         b.version)
  else install store b

let current_db store name =
  match current store name with
  | None -> None
  | Some b -> ( match Compile.of_source b.source with Ok db -> Some db | Error _ -> None)

let rollback store name =
  match Hashtbl.find_opt store name with
  | Some (_ :: (prev :: _ as rest)) ->
      Hashtbl.replace store name rest;
      Ok prev
  | Some _ | None -> Error (Printf.sprintf "no earlier version of %s to roll back to" name)

let history store name =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt store name))

let names store =
  Hashtbl.fold (fun k _ acc -> k :: acc) store [] |> List.sort_uniq String.compare

type diff = {
  added : Ir.rule list;
  removed : Ir.rule list;
  default_changed : (Ast.decision * Ast.decision) option;
}

(* Compare rules by scope + decision, ignoring idx and origin. *)
let rule_key (r : Ir.rule) =
  (r.decision, List.sort compare r.ops, r.subjects, r.asset, r.modes, r.messages)

let diff old_p new_p =
  let old_db = Compile.compile_exn old_p and new_db = Compile.compile_exn new_p in
  let old_keys = List.map rule_key old_db.rules in
  let new_keys = List.map rule_key new_db.rules in
  let added =
    List.filter (fun r -> not (List.mem (rule_key r) old_keys)) new_db.rules
  in
  let removed =
    List.filter (fun r -> not (List.mem (rule_key r) new_keys)) old_db.rules
  in
  let default_changed =
    if old_db.default <> new_db.default then Some (old_db.default, new_db.default)
    else None
  in
  { added; removed; default_changed }

let pp_diff ppf d =
  (match d.default_changed with
  | None -> ()
  | Some (o, n) ->
      Format.fprintf ppf "default: %s -> %s@." (Ast.decision_name o)
        (Ast.decision_name n));
  List.iter (fun r -> Format.fprintf ppf "+ %a@." Ir.pp_rule r) d.added;
  List.iter (fun r -> Format.fprintf ppf "- %a@." Ir.pp_rule r) d.removed
