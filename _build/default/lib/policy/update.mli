(** Versioned policy distribution — the paper's post-deployment "policy
    definition update" mechanism.

    A {!bundle} wraps policy source with an integrity checksum; a {!store}
    models the policy state of one device, enforcing monotonically
    increasing versions with rollback support. *)

type bundle = private {
  name : string;
  version : int;
  source : string;  (** policy DSL source text *)
  checksum : string;  (** hex digest over name, version and source *)
  signature : string option;
      (** HMAC over the checksum under the OEM key; [None] = unsigned *)
  created_at : float;  (** creation timestamp (simulation time) *)
}

val bundle : ?at:float -> Ast.policy -> bundle
(** Render the policy and seal it with a checksum. *)

val bundle_of_source : ?at:float -> string -> (bundle, string) result
(** Validate (parse + compile) the source first; malformed policies are
    refused at packaging time, not on the device. *)

val verify : bundle -> bool
(** Recompute and compare the checksum. *)

val tampered : bundle -> payload:string -> bundle
(** A copy whose [source] was replaced without resealing — for testing that
    installs reject modified bundles.  [verify] on the result is [false]
    (unless [payload] equals the original source). *)

(** {2 Authenticity}

    Checksums catch corruption; they do not stop an attacker who can forge
    a whole bundle.  Signing binds the bundle to the OEM key provisioned
    into the device at manufacture. *)

val sign : key:string -> bundle -> bundle
(** Attach an HMAC signature over the sealed checksum. *)

val verify_signed : key:string -> bundle -> bool
(** Integrity and authenticity: {!verify} plus a signature check under
    [key].  Unsigned bundles fail. *)

type store

val create : unit -> store

val install : store -> bundle -> (unit, string) result
(** Refuses: corrupt bundles ([verify] fails), unparseable sources, and
    versions not strictly greater than the currently installed version of
    the same policy name. *)

val install_signed : store -> key:string -> bundle -> (unit, string) result
(** {!install} that additionally refuses unsigned or wrongly-signed
    bundles — for devices provisioned with an OEM key. *)

val current : store -> string -> bundle option
(** Installed bundle for a policy name. *)

val current_db : store -> string -> Ir.db option
(** Compiled form of {!current}. *)

val rollback : store -> string -> (bundle, string) result
(** Revert to the previously installed version.  Errors when there is no
    earlier version. *)

val history : store -> string -> bundle list
(** All versions ever installed, oldest first (rollbacks truncate). *)

val names : store -> string list

type diff = {
  added : Ir.rule list;
  removed : Ir.rule list;
  default_changed : (Ast.decision * Ast.decision) option;
}

val diff : Ast.policy -> Ast.policy -> diff
(** Rule-level difference between two policy versions (matching rules by
    their scope and decision, ignoring source order). *)

val pp_diff : Format.formatter -> diff -> unit
