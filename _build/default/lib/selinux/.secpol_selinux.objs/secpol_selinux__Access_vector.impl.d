lib/selinux/access_vector.ml: Format List Printf String
