lib/selinux/access_vector.mli: Format
