lib/selinux/avc.ml: Hashtbl Policy_db
