lib/selinux/avc.mli: Policy_db
