lib/selinux/context.ml: Format Printf String
