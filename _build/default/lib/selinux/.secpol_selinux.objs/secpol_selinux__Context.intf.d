lib/selinux/context.mli: Format
