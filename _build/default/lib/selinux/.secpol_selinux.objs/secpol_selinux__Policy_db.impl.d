lib/selinux/policy_db.ml: Access_vector List Printf String Te_rule
