lib/selinux/policy_db.mli: Access_vector Te_rule
