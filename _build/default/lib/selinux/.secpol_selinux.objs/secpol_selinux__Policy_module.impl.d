lib/selinux/policy_module.ml: Hashtbl List Option Policy_db Printf String Te_rule
