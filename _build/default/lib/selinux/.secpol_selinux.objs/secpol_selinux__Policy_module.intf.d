lib/selinux/policy_module.mli: Policy_db Te_rule
