lib/selinux/server.ml: Avc Context Format Fun List Option Policy_db Printf
