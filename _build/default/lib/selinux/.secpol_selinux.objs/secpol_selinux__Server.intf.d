lib/selinux/server.mli: Context Format Policy_db
