lib/selinux/te_parser.ml: Buffer List Option Policy_module Printf String Te_rule
