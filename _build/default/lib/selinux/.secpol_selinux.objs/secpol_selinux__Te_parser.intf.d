lib/selinux/te_parser.mli: Policy_module
