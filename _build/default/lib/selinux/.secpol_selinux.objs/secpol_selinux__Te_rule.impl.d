lib/selinux/te_rule.ml: Format List String
