lib/selinux/te_rule.mli: Format
