type cls = { name : string; permissions : string list }

let cls ~name ~permissions =
  if name = "" then invalid_arg "Access_vector.cls: empty name";
  if permissions = [] then invalid_arg "Access_vector.cls: no permissions";
  let sorted = List.sort_uniq String.compare permissions in
  if List.length sorted <> List.length permissions then
    invalid_arg "Access_vector.cls: duplicate permissions";
  { name; permissions = sorted }

let has_permission c p = List.mem p c.permissions

let file =
  cls ~name:"file" ~permissions:[ "read"; "write"; "execute"; "append"; "unlink" ]

let process =
  cls ~name:"process" ~permissions:[ "fork"; "transition"; "signal"; "setexec" ]

let can_socket =
  cls ~name:"can_socket"
    ~permissions:[ "create"; "read"; "write"; "setfilter"; "clearfilter" ]

let service = cls ~name:"service" ~permissions:[ "start"; "stop"; "reload"; "status" ]

let firmware = cls ~name:"firmware" ~permissions:[ "read"; "flash"; "verify" ]

let standard_classes = [ file; process; can_socket; service; firmware ]

type t = { cls : string; perms : string list }

let make c perms =
  List.iter
    (fun p ->
      if not (has_permission c p) then
        invalid_arg
          (Printf.sprintf "Access_vector.make: class %s has no permission %S" c.name p))
    perms;
  { cls = c.name; perms = List.sort_uniq String.compare perms }

let empty c = { cls = c.name; perms = [] }

let mem t p = List.mem p t.perms

let union a b =
  if a.cls <> b.cls then invalid_arg "Access_vector.union: class mismatch";
  { cls = a.cls; perms = List.sort_uniq String.compare (a.perms @ b.perms) }

let pp ppf t =
  Format.fprintf ppf "{ %s { %s } }" t.cls (String.concat " " t.perms)
