(** Object classes and permission vectors.

    An object class (e.g. [file], [process], [can_socket]) declares the
    permissions that exist on objects of that class; an access vector is a
    subset of one class's permissions. *)

type cls = private { name : string; permissions : string list }

val cls : name:string -> permissions:string list -> cls
(** @raise Invalid_argument on an empty name, empty permission list or
    duplicate permissions. *)

val has_permission : cls -> string -> bool

(** Standard classes used by the embedded scenarios. *)

val file : cls
(** read write execute append unlink *)

val process : cls
(** fork transition signal setexec *)

val can_socket : cls
(** can read/write plus filter configuration *)

val service : cls
(** start stop reload status *)

val firmware : cls
(** read flash verify *)

val standard_classes : cls list

type t = { cls : string; perms : string list }
(** An access vector: permissions of one class (sorted, deduplicated). *)

val make : cls -> string list -> t
(** @raise Invalid_argument when a permission is not declared by the
    class. *)

val empty : cls -> t

val mem : t -> string -> bool

val union : t -> t -> t
(** @raise Invalid_argument on different classes. *)

val pp : Format.formatter -> t -> unit
(** [{ class { p1 p2 } }]. *)
