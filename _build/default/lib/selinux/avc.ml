type key = { source : string; target : string; cls : string }

type t = {
  capacity : int;
  table : (key, string list) Hashtbl.t;
  mutable generation : int;
  mutable table_generation : int;
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
}

let create ?(capacity = 512) () =
  if capacity <= 0 then invalid_arg "Avc.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create 64;
    generation = 0;
    table_generation = 0;
    hits = 0;
    misses = 0;
    flushes = 0;
  }

let flush t =
  Hashtbl.reset t.table;
  t.flushes <- t.flushes + 1

let lookup t db ~source ~target ~cls =
  if t.table_generation <> t.generation then begin
    flush t;
    t.table_generation <- t.generation
  end;
  let key = { source; target; cls } in
  match Hashtbl.find_opt t.table key with
  | Some av ->
      t.hits <- t.hits + 1;
      av
  | None ->
      t.misses <- t.misses + 1;
      let av = Policy_db.compute_av db ~source ~target ~cls in
      if Hashtbl.length t.table >= t.capacity then flush t;
      Hashtbl.replace t.table key av;
      av

let invalidate t = t.generation <- t.generation + 1

type stats = { hits : int; misses : int; flushes : int }

let stats (t : t) = { hits = t.hits; misses = t.misses; flushes = t.flushes }

let hit_rate (t : t) =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total
