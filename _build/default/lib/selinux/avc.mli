(** Access vector cache.

    The security server's rule walk is slow; the AVC memoises the computed
    permission vector per (source type, target type, class).  A policy
    reload bumps the generation counter, logically invalidating every
    cached entry at once. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 512) bounds retained entries; on overflow the cache
    is reset (a simple, predictable policy). *)

val lookup :
  t -> Policy_db.t -> source:string -> target:string -> cls:string -> string list
(** Cached {!Policy_db.compute_av}. *)

val invalidate : t -> unit
(** Call on policy reload. *)

type stats = { hits : int; misses : int; flushes : int }

val stats : t -> stats

val hit_rate : t -> float
(** hits / (hits + misses); 0. before any lookup. *)
