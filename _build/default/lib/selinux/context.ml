type t = { user : string; role : string; type_ : string }

let valid c = c <> "" && not (String.contains c ':')

let make ~user ~role ~type_ =
  if not (valid user && valid role && valid type_) then
    invalid_arg "Context.make: components must be non-empty and colon-free";
  { user; role; type_ }

let of_string s =
  match String.split_on_char ':' s with
  | [ user; role; type_ ] when valid user && valid role && valid type_ ->
      Ok { user; role; type_ }
  | _ -> Error (Printf.sprintf "malformed security context %S" s)

let to_string t = Printf.sprintf "%s:%s:%s" t.user t.role t.type_

let type_of t = t.type_

let with_type t type_ = make ~user:t.user ~role:t.role ~type_

let equal a b = a = b

let pp ppf t = Format.pp_print_string ppf (to_string t)
