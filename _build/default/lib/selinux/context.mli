(** Security contexts, SELinux-style: [user:role:type].

    Type enforcement only consults the type component; user and role are
    carried for realism and auditability. *)

type t = private { user : string; role : string; type_ : string }

val make : user:string -> role:string -> type_:string -> t
(** @raise Invalid_argument on empty components or components containing
    [':']. *)

val of_string : string -> (t, string) result
(** Parse ["user:role:type"]. *)

val to_string : t -> string

val type_of : t -> string

val with_type : t -> string -> t
(** Domain transition: same user and role, new type. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
