type t = {
  classes : Access_vector.cls list;
  types : string list;
  attributes : (string * string list) list;
  rules : Te_rule.t list;
}

let expand t name =
  match List.assoc_opt name t.attributes with
  | Some members -> members
  | None -> [ name ]

(* Does rule source/target name cover the concrete type? *)
let covers t name concrete =
  name = concrete || List.mem concrete (expand t name)

let matching_allows t ~source ~target ~cls =
  List.filter
    (fun (r : Te_rule.t) ->
      r.kind = Te_rule.Allow && r.cls = cls
      && covers t r.source source
      && (covers t r.target target || (r.target = "self" && source = target)))
    t.rules

let compute_av t ~source ~target ~cls =
  matching_allows t ~source ~target ~cls
  |> List.concat_map (fun (r : Te_rule.t) -> r.perms)
  |> List.sort_uniq String.compare

let allows t ~source ~target ~cls perm = List.mem perm (compute_av t ~source ~target ~cls)

let check_neverallow t (r : Te_rule.t) =
  let sources = expand t r.source in
  let targets = if r.target = "self" then [] else expand t r.target in
  let violations = ref [] in
  List.iter
    (fun source ->
      let targets = if r.target = "self" then [ source ] else targets in
      List.iter
        (fun target ->
          let granted = compute_av t ~source ~target ~cls:r.cls in
          let bad = List.filter (fun p -> List.mem p granted) r.perms in
          if bad <> [] then
            violations :=
              Printf.sprintf
                "neverallow violated: %s -> %s : %s { %s } is granted" source
                target r.cls (String.concat " " bad)
              :: !violations)
        targets)
    sources;
  List.rev !violations

let build ?(classes = Access_vector.standard_classes) ~types
    ?(attributes = []) ~rules () =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let sorted_types = List.sort_uniq String.compare types in
  if List.length sorted_types <> List.length types then err "duplicate type declaration";
  let attr_names = List.map fst attributes in
  let sorted_attrs = List.sort_uniq String.compare attr_names in
  if List.length sorted_attrs <> List.length attr_names then
    err "duplicate attribute declaration";
  List.iter
    (fun (attr, members) ->
      if List.mem attr types then err "attribute %S collides with a type" attr;
      List.iter
        (fun m ->
          if not (List.mem m types) then
            err "attribute %S lists unknown type %S" attr m)
        members)
    attributes;
  let known name = List.mem name types || List.mem name attr_names in
  let find_class name =
    List.find_opt (fun (c : Access_vector.cls) -> c.name = name) classes
  in
  List.iter
    (fun (r : Te_rule.t) ->
      (match find_class r.cls with
      | None -> err "rule references unknown class %S" r.cls
      | Some c ->
          List.iter
            (fun p ->
              if not (Access_vector.has_permission c p) then
                err "class %S has no permission %S" r.cls p)
            r.perms);
      if not (known r.source) then err "rule references unknown source %S" r.source;
      if r.target <> "self" && not (known r.target) then
        err "rule references unknown target %S" r.target)
    rules;
  let db = { classes; types; attributes; rules } in
  if !errors = [] then
    List.iter
      (fun (r : Te_rule.t) ->
        if r.kind = Te_rule.Neverallow then
          List.iter (fun v -> errors := v :: !errors) (check_neverallow db r))
      rules;
  match List.rev !errors with [] -> Ok db | es -> Error es

let build_exn ?classes ~types ?attributes ~rules () =
  match build ?classes ~types ?attributes ~rules () with
  | Ok db -> db
  | Error es -> invalid_arg ("Policy_db.build_exn: " ^ String.concat "; " es)

let types t = t.types

let attributes t = t.attributes

let rule_count t = List.length t.rules

let allow_rules t =
  List.filter (fun (r : Te_rule.t) -> r.kind = Te_rule.Allow) t.rules
