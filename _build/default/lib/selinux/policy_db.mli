(** Compiled type-enforcement policy database.

    Holds the declared types, attribute memberships, object classes and
    rules.  [build] validates everything and checks the [neverallow]
    assertions — a policy that violates one is refused outright, exactly as
    the SELinux toolchain refuses to assemble such a policy. *)

type t

val build :
  ?classes:Access_vector.cls list ->
  types:string list ->
  ?attributes:(string * string list) list ->
  rules:Te_rule.t list ->
  unit ->
  (t, string list) result
(** [classes] defaults to {!Access_vector.standard_classes}.
    [attributes] maps attribute name -> member types.  Errors include:
    duplicate/unknown types, unknown classes or permissions in rules,
    unknown source/target names, and neverallow violations. *)

val build_exn :
  ?classes:Access_vector.cls list ->
  types:string list ->
  ?attributes:(string * string list) list ->
  rules:Te_rule.t list ->
  unit ->
  t

val types : t -> string list

val attributes : t -> (string * string list) list

val expand : t -> string -> string list
(** An attribute expands to its member types; a type expands to itself. *)

val compute_av : t -> source:string -> target:string -> cls:string -> string list
(** Permissions granted by the union of matching allow rules, with
    attribute expansion and [self] resolution. *)

val allows : t -> source:string -> target:string -> cls:string -> string -> bool

val rule_count : t -> int

val allow_rules : t -> Te_rule.t list
