type t = {
  name : string;
  version : int;
  types : string list;
  attributes : (string * string list) list;
  rules : Te_rule.t list;
}

let make ~name ?(version = 1) ?(types = []) ?(attributes = []) ~rules () =
  if name = "" then invalid_arg "Policy_module.make: empty name";
  { name; version; types; attributes; rules }

type store = { base : string; mutable loaded : t list; mutable db : Policy_db.t }

(* Merge attribute declarations: same attribute declared by several modules
   unions its members. *)
let merge_attributes mods =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun m ->
      List.iter
        (fun (attr, members) ->
          let existing = Option.value ~default:[] (Hashtbl.find_opt tbl attr) in
          Hashtbl.replace tbl attr (List.sort_uniq String.compare (existing @ members)))
        m.attributes)
    mods;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let link mods =
  let types =
    List.sort_uniq String.compare (List.concat_map (fun m -> m.types) mods)
  in
  let rules = List.concat_map (fun m -> m.rules) mods in
  Policy_db.build ~types ~attributes:(merge_attributes mods) ~rules ()

let store ~base =
  match link [ base ] with
  | Error _ as e -> e
  | Ok db -> Ok { base = base.name; loaded = [ base ]; db }

let load st m =
  let replaced = List.find_opt (fun x -> x.name = m.name) st.loaded in
  (match replaced with
  | Some old when m.version <= old.version ->
      Error
        [
          Printf.sprintf "module %s v%d is not newer than loaded v%d" m.name
            m.version old.version;
        ]
  | Some _ | None ->
      let candidate =
        List.map (fun x -> if x.name = m.name then m else x) st.loaded
        @ if replaced = None then [ m ] else []
      in
      match link candidate with
      | Error _ as e -> e
      | Ok db ->
          st.loaded <- candidate;
          st.db <- db;
          Ok db)

let unload st name =
  if name = st.base then Error [ "cannot unload the base module" ]
  else if not (List.exists (fun m -> m.name = name) st.loaded) then
    Error [ Printf.sprintf "module %s is not loaded" name ]
  else
    let candidate = List.filter (fun m -> m.name <> name) st.loaded in
    match link candidate with
    | Error _ as e -> e
    | Ok db ->
        st.loaded <- candidate;
        st.db <- db;
        Ok db

let modules st = st.loaded

let db st = st.db
