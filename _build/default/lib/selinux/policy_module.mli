(** Loadable policy modules, mirroring SELinux's modular policy store.

    A device ships with a base module; countermeasure updates arrive as
    additional modules that are loaded into the store and linked into a
    fresh {!Policy_db.t}.  Linking re-runs full validation, including
    [neverallow] assertions across module boundaries — a malicious or
    broken update is rejected as a unit. *)

type t = {
  name : string;
  version : int;
  types : string list;
  attributes : (string * string list) list;
  rules : Te_rule.t list;
}

val make :
  name:string ->
  ?version:int ->
  ?types:string list ->
  ?attributes:(string * string list) list ->
  rules:Te_rule.t list ->
  unit ->
  t

type store

val store : base:t -> (store, string list) result
(** A store always contains a base module. *)

val load : store -> t -> (Policy_db.t, string list) result
(** Insert or upgrade a module (same name, higher version) and relink.  On
    failure the store is unchanged. *)

val unload : store -> string -> (Policy_db.t, string list) result
(** Remove a non-base module and relink. *)

val modules : store -> t list
(** Currently loaded, base first. *)

val db : store -> Policy_db.t
(** The currently linked database. *)
