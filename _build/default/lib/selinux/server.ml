type denial = {
  seq : int;
  source : Context.t;
  target : Context.t;
  cls : string;
  perm : string;
  granted : bool;
}

type t = {
  mutable db : Policy_db.t;
  mutable enforcing : bool;
  avc : Avc.t option;
  mutable log : denial list; (* newest first *)
  mutable seq : int;
}

let create ?(enforcing = true) ?(avc = true) db =
  {
    db;
    enforcing;
    avc = (if avc then Some (Avc.create ()) else None);
    log = [];
    seq = 0;
  }

let enforcing t = t.enforcing

let set_enforcing t v = t.enforcing <- v

let db t = t.db

let reload t db =
  t.db <- db;
  Option.iter Avc.invalidate t.avc

let compute_av t ~source ~target ~cls =
  match t.avc with
  | Some avc -> Avc.lookup avc t.db ~source ~target ~cls
  | None -> Policy_db.compute_av t.db ~source ~target ~cls

let record t ~source ~target ~cls ~perm ~granted =
  let entry = { seq = t.seq; source; target; cls; perm; granted } in
  t.seq <- t.seq + 1;
  t.log <- entry :: t.log

let check t ~source ~target ~cls perm =
  let av =
    compute_av t ~source:(Context.type_of source) ~target:(Context.type_of target)
      ~cls
  in
  let allowed = List.mem perm av in
  if not allowed then record t ~source ~target ~cls ~perm ~granted:false;
  allowed || not t.enforcing

let check_all t ~source ~target ~cls perms =
  (* evaluate every permission so each denial is audited *)
  let results = List.map (fun p -> check t ~source ~target ~cls p) perms in
  List.for_all Fun.id results

let transition t ~source ~target ~new_type =
  let can_transition =
    check t ~source
      ~target:(Context.with_type target new_type)
      ~cls:"process" "transition"
  in
  let can_execute = check t ~source ~target ~cls:"file" "execute" in
  if can_transition && can_execute then Ok (Context.with_type source new_type)
  else
    Error
      (Printf.sprintf "domain transition %s -> %s denied"
         (Context.type_of source) new_type)

let audit_log t = List.rev t.log

let denial_count t =
  List.length (List.filter (fun d -> not d.granted) t.log)

let avc_hit_rate t = match t.avc with Some avc -> Avc.hit_rate avc | None -> 0.0

let pp_denial ppf d =
  Format.fprintf ppf "avc: %s { %s } scontext=%s tcontext=%s tclass=%s"
    (if d.granted then "granted" else "denied")
    d.perm (Context.to_string d.source) (Context.to_string d.target) d.cls
