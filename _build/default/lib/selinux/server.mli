(** The security server: SELinux-style policy decision point.

    Subjects and objects carry {!Context.t}s; the server checks the subject
    type's access vector onto the object type and audits denials (and
    [auditallow]ed grants).  In permissive mode everything is allowed but
    denials are still audited — the standard way to trial a policy. *)

type denial = {
  seq : int;
  source : Context.t;
  target : Context.t;
  cls : string;
  perm : string;
  granted : bool;  (** true for auditallow records *)
}

type t

val create : ?enforcing:bool -> ?avc:bool -> Policy_db.t -> t
(** [enforcing] defaults to [true]; [avc] (default [true]) toggles the
    cache — the off position exists for the AVC ablation bench. *)

val enforcing : t -> bool

val set_enforcing : t -> bool -> unit

val db : t -> Policy_db.t

val reload : t -> Policy_db.t -> unit
(** Swap the policy database (e.g. after a module load) and invalidate the
    AVC. *)

val check : t -> source:Context.t -> target:Context.t -> cls:string -> string -> bool
(** One permission.  In permissive mode, always [true] (denials are still
    recorded). *)

val check_all :
  t -> source:Context.t -> target:Context.t -> cls:string -> string list -> bool
(** All the listed permissions. *)

val transition :
  t -> source:Context.t -> target:Context.t -> new_type:string -> (Context.t, string) result
(** Domain transition: requires [process transition] from the source's type
    to [new_type].  [target] is the entrypoint object, which must allow
    [file execute]. *)

val audit_log : t -> denial list
(** Chronological. *)

val denial_count : t -> int

val avc_hit_rate : t -> float

val pp_denial : Format.formatter -> denial -> unit
(** AVC-log style:
    [avc: denied { write } scontext=u:r:t tcontext=u:r:t tclass=file]. *)
