type token =
  | IDENT of string
  | INT of int
  | LBRACE
  | RBRACE
  | COLON
  | SEMI
  | EOF

exception Error of string * int (* message, line *)

let token_name = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT i -> Printf.sprintf "integer %d" i
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | COLON -> "':'"
  | SEMI -> "';'"
  | EOF -> "end of input"

let tokenize input =
  let n = String.length input in
  let line = ref 1 in
  let rec loop i acc =
    if i >= n then List.rev ((EOF, !line) :: acc)
    else
      match input.[i] with
      | '\n' ->
          incr line;
          loop (i + 1) acc
      | ' ' | '\t' | '\r' -> loop (i + 1) acc
      | '#' ->
          let rec eol j = if j < n && input.[j] <> '\n' then eol (j + 1) else j in
          loop (eol i) acc
      | '{' -> loop (i + 1) ((LBRACE, !line) :: acc)
      | '}' -> loop (i + 1) ((RBRACE, !line) :: acc)
      | ':' -> loop (i + 1) ((COLON, !line) :: acc)
      | ';' -> loop (i + 1) ((SEMI, !line) :: acc)
      | '0' .. '9' ->
          let rec num j = if j < n && input.[j] >= '0' && input.[j] <= '9' then num (j + 1) else j in
          let stop = num i in
          loop stop ((INT (int_of_string (String.sub input i (stop - i))), !line) :: acc)
      | ('a' .. 'z' | 'A' .. 'Z' | '_') ->
          let is_ident c =
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
            || (c >= '0' && c <= '9') || c = '_'
          in
          let rec word j = if j < n && is_ident input.[j] then word (j + 1) else j in
          let stop = word i in
          loop stop ((IDENT (String.sub input i (stop - i)), !line) :: acc)
      | c -> raise (Error (Printf.sprintf "illegal character %C" c, !line))
  in
  loop 0 []

type state = { mutable tokens : (token * int) list }

let peek st = match st.tokens with [] -> (EOF, 0) | t :: _ -> t

let advance st = match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let fail st msg =
  let _, line = peek st in
  raise (Error (msg, line))

let expect st tok =
  let got, line = peek st in
  if got = tok then advance st
  else
    raise
      (Error
         ( Printf.sprintf "expected %s but found %s" (token_name tok)
             (token_name got),
           line ))

let ident st =
  match peek st with
  | IDENT s, _ ->
      advance st;
      s
  | got, line ->
      raise
        (Error
           (Printf.sprintf "expected identifier, found %s" (token_name got), line))

let perms st =
  match peek st with
  | LBRACE, _ ->
      advance st;
      let rec loop acc =
        match peek st with
        | RBRACE, _ ->
            advance st;
            List.rev acc
        | IDENT _, _ -> loop (ident st :: acc)
        | got, line ->
            raise
              (Error
                 ( Printf.sprintf "expected permission or '}', found %s"
                     (token_name got),
                   line ))
      in
      let ps = loop [] in
      if ps = [] then fail st "empty permission set";
      ps
  | IDENT _, _ -> [ ident st ]
  | got, line ->
      raise
        (Error
           ( Printf.sprintf "expected permission(s), found %s" (token_name got),
             line ))

let rule_kind = function
  | "allow" -> Some Te_rule.allow
  | "neverallow" -> Some Te_rule.neverallow
  | "auditallow" -> Some Te_rule.auditallow
  | "dontaudit" -> Some Te_rule.dontaudit
  | _ -> None

let parse_module st =
  (match ident st with
  | "module" -> ()
  | other -> fail st (Printf.sprintf "expected 'module', found %S" other));
  let name = ident st in
  let version =
    match peek st with
    | INT v, _ ->
        advance st;
        v
    | got, line ->
        raise
          (Error
             ( Printf.sprintf "expected module version, found %s" (token_name got),
               line ))
  in
  expect st SEMI;
  let types = ref [] in
  let attributes = ref [] in
  let memberships = ref [] in
  let rules = ref [] in
  let rec decls () =
    match peek st with
    | EOF, _ -> ()
    | IDENT "type", _ ->
        advance st;
        types := ident st :: !types;
        expect st SEMI;
        decls ()
    | IDENT "attribute", _ ->
        advance st;
        attributes := ident st :: !attributes;
        expect st SEMI;
        decls ()
    | IDENT "typeattribute", _ ->
        advance st;
        let type_ = ident st in
        let attr = ident st in
        memberships := (attr, type_) :: !memberships;
        expect st SEMI;
        decls ()
    | IDENT word, _ when rule_kind word <> None ->
        advance st;
        let make = Option.get (rule_kind word) in
        let source = ident st in
        let target = ident st in
        expect st COLON;
        let cls = ident st in
        let ps = perms st in
        expect st SEMI;
        rules := make ~source ~target ~cls ps :: !rules;
        decls ()
    | got, line ->
        raise
          (Error
             ( Printf.sprintf
                 "expected a declaration (type/attribute/typeattribute/allow/...), \
                  found %s"
                 (token_name got),
               line ))
  in
  decls ();
  let attributes =
    List.map
      (fun attr ->
        ( attr,
          !memberships
          |> List.filter_map (fun (a, t) -> if a = attr then Some t else None)
          |> List.sort_uniq String.compare ))
      (List.sort_uniq String.compare !attributes)
  in
  (* memberships naming undeclared attributes are an error *)
  List.iter
    (fun (attr, _) ->
      if not (List.mem_assoc attr attributes) then
        raise (Error (Printf.sprintf "typeattribute names undeclared attribute %S" attr, 0)))
    !memberships;
  Policy_module.make ~name ~version
    ~types:(List.rev !types)
    ~attributes
    ~rules:(List.rev !rules)
    ()

let parse input =
  match
    let st = { tokens = tokenize input } in
    let m = parse_module st in
    expect st EOF;
    m
  with
  | m -> Ok m
  | exception Error (msg, line) -> Error (Printf.sprintf "line %d: %s" line msg)

let parse_exn input =
  match parse input with Ok m -> m | Error e -> failwith e

let print (m : Policy_module.t) =
  let b = Buffer.create 512 in
  Printf.bprintf b "module %s %d;\n\n" m.Policy_module.name m.Policy_module.version;
  List.iter (Printf.bprintf b "type %s;\n") m.Policy_module.types;
  List.iter
    (fun (attr, _) -> Printf.bprintf b "attribute %s;\n" attr)
    m.Policy_module.attributes;
  List.iter
    (fun (attr, members) ->
      List.iter
        (fun member -> Printf.bprintf b "typeattribute %s %s;\n" member attr)
        members)
    m.Policy_module.attributes;
  Buffer.add_char b '\n';
  List.iter
    (fun (r : Te_rule.t) ->
      Printf.bprintf b "%s %s %s : %s { %s };\n"
        (Te_rule.kind_name r.kind)
        r.source r.target r.cls
        (String.concat " " r.perms))
    m.Policy_module.rules;
  Buffer.contents b
