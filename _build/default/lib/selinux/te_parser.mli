(** Parser for a textual policy-module language modelled on SELinux's
    kernel policy syntax — the form a software-side policy update is
    shipped in.

    {v
    module base 2;

    type media_t;
    type installer_exec_t;
    attribute app_domain;
    typeattribute media_t app_domain;

    allow media_t installer_exec_t : file { read execute };
    neverallow app_domain can0_t : can_socket write;
    v}

    Comments run from [#] to end of line.  A single permission may be
    written without braces. *)

val parse : string -> (Policy_module.t, string) result
(** Parse one module.  Errors render as ["line L: message"]. *)

val parse_exn : string -> Policy_module.t

val print : Policy_module.t -> string
(** Render a module back to source; [parse (print m)] reproduces [m] up to
    rule order normalisation (exercised by tests). *)
