type kind = Allow | Neverallow | Auditallow | Dontaudit

type t = {
  kind : kind;
  source : string;
  target : string;
  cls : string;
  perms : string list;
}

let rule kind ~source ~target ~cls perms =
  if source = "" || target = "" || cls = "" then
    invalid_arg "Te_rule: empty component";
  if perms = [] then invalid_arg "Te_rule: empty permission set";
  { kind; source; target; cls; perms = List.sort_uniq String.compare perms }

let allow = rule Allow

let neverallow = rule Neverallow

let auditallow = rule Auditallow

let dontaudit = rule Dontaudit

let kind_name = function
  | Allow -> "allow"
  | Neverallow -> "neverallow"
  | Auditallow -> "auditallow"
  | Dontaudit -> "dontaudit"

let pp ppf t =
  Format.fprintf ppf "%s %s %s : %s { %s };" (kind_name t.kind) t.source t.target
    t.cls
    (String.concat " " t.perms)
