(** Type-enforcement rules.

    [allow source target : class { perms }] grants; [neverallow] is a
    build-time assertion that no allow rule (after attribute expansion)
    grants the listed permissions.  Sources and targets name either a type
    or an attribute (a named set of types). *)

type kind = Allow | Neverallow | Auditallow | Dontaudit

type t = {
  kind : kind;
  source : string;  (** type or attribute *)
  target : string;  (** type, attribute, or ["self"] *)
  cls : string;
  perms : string list;
}

val allow : source:string -> target:string -> cls:string -> string list -> t

val neverallow : source:string -> target:string -> cls:string -> string list -> t

val auditallow : source:string -> target:string -> cls:string -> string list -> t

val dontaudit : source:string -> target:string -> cls:string -> string list -> t

val kind_name : kind -> string

val pp : Format.formatter -> t -> unit
(** SELinux surface syntax: [allow s t : c { p1 p2 };]. *)
