lib/sim/rng.mli:
