type t = {
  mutable now : float;
  queue : (t -> unit) Event_queue.t;
  root_rng : Rng.t;
}

let create ?(seed = 42L) () =
  { now = 0.0; queue = Event_queue.create (); root_rng = Rng.create seed }

let now t = t.now

let rng t = t.root_rng

let schedule t ~at f =
  if at < t.now then invalid_arg "Engine.schedule: time in the past";
  Event_queue.add t.queue ~time:at f

let schedule_in t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule_in: negative delay";
  schedule t ~at:(t.now +. delay) f

let every t ~period ?until f =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  let within at = match until with None -> true | Some u -> at < u in
  let rec tick at sim =
    f sim;
    let next = at +. period in
    if within next then schedule sim ~at:next (tick next)
  in
  let first = t.now +. period in
  if within first then schedule t ~at:first (tick first)

let pending t = Event_queue.length t.queue

let run_next t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
      t.now <- time;
      f t;
      true

let run_until t horizon =
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | Some time when time <= horizon ->
        ignore (run_next t);
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  if horizon > t.now then t.now <- horizon

let stop t = Event_queue.clear t.queue
