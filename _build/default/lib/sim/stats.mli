(** Online statistics for simulation measurements. *)

type t
(** A running univariate sample: count, mean, variance (Welford), extrema,
    and the raw observations for exact quantiles. *)

val create : unit -> t

val add : t -> float -> unit
(** Record one observation. *)

val count : t -> int

val total : t -> float

val mean : t -> float
(** 0. on an empty sample. *)

val variance : t -> float
(** Unbiased sample variance; 0. for fewer than two observations. *)

val stddev : t -> float

val min : t -> float
(** @raise Invalid_argument on an empty sample. *)

val max : t -> float
(** @raise Invalid_argument on an empty sample. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in \[0,100\], nearest-rank method.
    @raise Invalid_argument on an empty sample or out-of-range [p]. *)

val median : t -> float

val pp_summary : Format.formatter -> t -> unit
(** One-line [n/mean/sd/min/p50/p99/max] summary. *)

(** Named counters, e.g. per-event-kind tallies. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> string -> unit
  val add : t -> string -> int -> unit
  val get : t -> string -> int
  val to_list : t -> (string * int) list
  (** Sorted by name. *)
end
