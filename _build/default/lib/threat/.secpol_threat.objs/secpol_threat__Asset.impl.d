lib/threat/asset.ml: Format Printf String
