lib/threat/asset.mli: Format
