lib/threat/countermeasure.ml: Format List
