lib/threat/countermeasure.mli: Format
