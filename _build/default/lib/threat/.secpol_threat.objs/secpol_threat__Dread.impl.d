lib/threat/dread.ml: Format List Printf String
