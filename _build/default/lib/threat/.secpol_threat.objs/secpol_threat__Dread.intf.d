lib/threat/dread.mli: Format
