lib/threat/entry_point.ml: Format Printf String
