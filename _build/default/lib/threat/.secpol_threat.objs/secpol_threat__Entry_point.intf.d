lib/threat/entry_point.mli: Format
