lib/threat/model.ml: Asset Countermeasure Entry_point Format Hashtbl List Printf Risk String Threat
