lib/threat/model.mli: Asset Countermeasure Entry_point Format Threat
