lib/threat/model_format.ml: Asset Buffer Dread Entry_point List Model Printf Stride String Threat
