lib/threat/model_format.mli: Model
