lib/threat/report.ml: Asset Buffer Countermeasure Dread Entry_point Format List Model Printf Risk Stride String Threat
