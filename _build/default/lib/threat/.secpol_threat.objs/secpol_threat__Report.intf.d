lib/threat/report.mli: Model
