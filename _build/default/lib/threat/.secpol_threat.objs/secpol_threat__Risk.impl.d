lib/threat/risk.ml: Dread Format List Threat
