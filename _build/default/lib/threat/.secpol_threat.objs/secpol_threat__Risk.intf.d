lib/threat/risk.mli: Dread Format Threat
