lib/threat/stride.ml: Format List Printf String
