lib/threat/stride.mli: Format
