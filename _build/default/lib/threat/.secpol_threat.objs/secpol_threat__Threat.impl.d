lib/threat/threat.ml: Dread Format List Stride String
