lib/threat/threat.mli: Dread Format Stride
