type criticality = Safety_critical | Operational | Privacy | Convenience

type t = {
  id : string;
  name : string;
  description : string;
  criticality : criticality;
}

let valid_id id =
  id <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
       id

let make ~id ~name ?(description = "") criticality =
  if not (valid_id id) then
    invalid_arg (Printf.sprintf "Asset.make: invalid id %S" id);
  { id; name; description; criticality }

let criticality_name = function
  | Safety_critical -> "safety-critical"
  | Operational -> "operational"
  | Privacy -> "privacy"
  | Convenience -> "convenience"

let criticality_rank = function
  | Safety_critical -> 3
  | Operational -> 2
  | Privacy -> 1
  | Convenience -> 0

let compare_by_criticality a b =
  match compare (criticality_rank b.criticality) (criticality_rank a.criticality) with
  | 0 -> String.compare a.id b.id
  | c -> c

let pp ppf t =
  Format.fprintf ppf "%s [%s] (%s)" t.name t.id (criticality_name t.criticality)
