(** Assets: items of value that the threat model protects. *)

type criticality =
  | Safety_critical  (** failure endangers life (EV-ECU, EPS, airbags) *)
  | Operational  (** failure degrades core function (engine, telematics) *)
  | Privacy  (** compromise leaks user data (GPS traces, call logs) *)
  | Convenience  (** comfort features (infotainment UI) *)

type t = {
  id : string;  (** unique machine name, e.g. ["ev_ecu"] *)
  name : string;  (** display name, e.g. ["EV-ECU"] *)
  description : string;
  criticality : criticality;
}

val make :
  id:string -> name:string -> ?description:string -> criticality -> t
(** @raise Invalid_argument if [id] is empty or contains whitespace. *)

val criticality_name : criticality -> string

val criticality_rank : criticality -> int
(** Higher is more critical: Convenience 0 .. Safety_critical 3. *)

val compare_by_criticality : t -> t -> int
(** Most critical first; ties broken by id. *)

val pp : Format.formatter -> t -> unit
