type kind = Guideline of string list | Policy of string

type enforcement = Software_enforced | Hardware_enforced | Procedural

type t = {
  threat_id : string;
  kind : kind;
  enforcement : enforcement;
  description : string;
}

let guideline ~threat_id ?(description = "") recommendations =
  if recommendations = [] then
    invalid_arg "Countermeasure.guideline: empty recommendation list";
  { threat_id; kind = Guideline recommendations; enforcement = Procedural; description }

let policy ~threat_id ?(description = "") ~enforcement source =
  { threat_id; kind = Policy source; enforcement; description }

let is_policy t = match t.kind with Policy _ -> true | Guideline _ -> false

let updatable_post_deployment = is_policy

let enforcement_name = function
  | Software_enforced -> "software"
  | Hardware_enforced -> "hardware"
  | Procedural -> "procedural"

let pp ppf t =
  match t.kind with
  | Guideline gs ->
      Format.fprintf ppf "guideline for %s (%d recommendations)" t.threat_id
        (List.length gs)
  | Policy _ ->
      Format.fprintf ppf "policy for %s (%s-enforced)" t.threat_id
        (enforcement_name t.enforcement)
