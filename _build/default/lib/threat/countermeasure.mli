(** Countermeasures: the output of the "determine countermeasure" stage.

    The paper contrasts two kinds: traditional design-time *guidelines*
    (prose that developers must implement, possibly requiring redesign) and
    machine-enforceable *policies* (deployable as an update). *)

type kind =
  | Guideline of string list
      (** design-time guidance, one recommendation per entry *)
  | Policy of string
      (** source text of an enforceable policy, in the DSL of
          [Secpol_policy] *)

type enforcement = Software_enforced | Hardware_enforced | Procedural

type t = {
  threat_id : string;  (** the {!Threat.t} this counters *)
  kind : kind;
  enforcement : enforcement;
  description : string;
}

val guideline :
  threat_id:string -> ?description:string -> string list -> t
(** A procedural guideline countermeasure.
    @raise Invalid_argument on an empty recommendation list. *)

val policy :
  threat_id:string ->
  ?description:string ->
  enforcement:enforcement ->
  string ->
  t
(** A policy countermeasure carrying DSL source text. *)

val is_policy : t -> bool

val updatable_post_deployment : t -> bool
(** Policies can be shipped as updates; guidelines require redesign. *)

val pp : Format.formatter -> t -> unit
