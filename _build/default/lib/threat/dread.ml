type t = {
  damage : int;
  reproducibility : int;
  exploitability : int;
  affected_users : int;
  discoverability : int;
}

let component_names =
  [ "damage"; "reproducibility"; "exploitability"; "affected_users"; "discoverability" ]

let make ~damage ~reproducibility ~exploitability ~affected_users ~discoverability =
  let components =
    [ damage; reproducibility; exploitability; affected_users; discoverability ]
  in
  let bad =
    List.find_opt (fun (_, v) -> v < 0 || v > 10)
      (List.combine component_names components)
  in
  match bad with
  | Some (name, v) ->
      Error (Printf.sprintf "DREAD %s out of range: %d (expected 0..10)" name v)
  | None ->
      Ok { damage; reproducibility; exploitability; affected_users; discoverability }

let make_exn ~damage ~reproducibility ~exploitability ~affected_users ~discoverability =
  match make ~damage ~reproducibility ~exploitability ~affected_users ~discoverability with
  | Ok t -> t
  | Error msg -> invalid_arg ("Dread.make_exn: " ^ msg)

let of_list = function
  | [ d; r; e; a; di ] ->
      make ~damage:d ~reproducibility:r ~exploitability:e ~affected_users:a
        ~discoverability:di
  | l -> Error (Printf.sprintf "DREAD needs 5 components, got %d" (List.length l))

let to_list t =
  [ t.damage; t.reproducibility; t.exploitability; t.affected_users; t.discoverability ]

let average t = float_of_int (List.fold_left ( + ) 0 (to_list t)) /. 5.0

type rating = Low | Medium | High | Critical

let rating t =
  let avg = average t in
  if avg < 3.0 then Low
  else if avg < 5.0 then Medium
  else if avg < 7.0 then High
  else Critical

let rating_name = function
  | Low -> "Low"
  | Medium -> "Medium"
  | High -> "High"
  | Critical -> "Critical"

let compare_by_risk a b =
  match compare (average b) (average a) with
  | 0 -> compare b.damage a.damage
  | c -> c

let pp ppf t =
  Format.fprintf ppf "%d,%d,%d,%d,%d (%.1f)" t.damage t.reproducibility
    t.exploitability t.affected_users t.discoverability (average t)

let of_string s =
  (* accept "8,5,4,6,4" or "8,5,4,6,4 (5.4)" *)
  let s =
    match String.index_opt s '(' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  let parse_int p =
    match int_of_string_opt p with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "bad DREAD component %S" p)
  in
  let rec parse_all = function
    | [] -> Ok []
    | p :: rest -> (
        match parse_int p with
        | Error _ as e -> e
        | Ok v -> ( match parse_all rest with Error _ as e -> e | Ok vs -> Ok (v :: vs)))
  in
  match parse_all parts with Error _ as e -> e | Ok vs -> of_list vs
