(** DREAD risk scoring (used by the paper's Table I).

    Five components — Damage, Reproducibility, Exploitability, Affected
    users, Discoverability — each scored 0..10; the threat's risk is their
    arithmetic mean.  Table I prints rows such as [8,5,4,6,4 (5.4)]. *)

type t = private {
  damage : int;
  reproducibility : int;
  exploitability : int;
  affected_users : int;
  discoverability : int;
}

val make :
  damage:int ->
  reproducibility:int ->
  exploitability:int ->
  affected_users:int ->
  discoverability:int ->
  (t, string) result
(** Validates every component to 0..10. *)

val make_exn :
  damage:int ->
  reproducibility:int ->
  exploitability:int ->
  affected_users:int ->
  discoverability:int ->
  t
(** @raise Invalid_argument on an out-of-range component. *)

val of_list : int list -> (t, string) result
(** From the five components in D,R,E,A,D order. *)

val to_list : t -> int list

val average : t -> float
(** Arithmetic mean of the five components. *)

type rating = Low | Medium | High | Critical

val rating : t -> rating
(** Bands over the average: Low < 3.0 <= Medium < 5.0 <= High < 7.0 <=
    Critical.  Table I's rows land in Medium (4.4) through High (6.8). *)

val rating_name : rating -> string

val compare_by_risk : t -> t -> int
(** Descending by average, then by damage — the prioritisation order used
    when ranking threats. *)

val pp : Format.formatter -> t -> unit
(** Table-I style: [8,5,4,6,4 (5.4)]. *)

val of_string : string -> (t, string) result
(** Parse the Table-I style rendering, with or without the parenthesised
    average (the average is recomputed, never trusted). *)
