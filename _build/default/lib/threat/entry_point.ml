type interface = Bus | Wireless | Physical | Network | Ui

type t = {
  id : string;
  name : string;
  interface : interface;
  description : string;
}

let valid_id id =
  id <> ""
  && String.for_all
       (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
       id

let make ~id ~name ?(description = "") interface =
  if not (valid_id id) then
    invalid_arg (Printf.sprintf "Entry_point.make: invalid id %S" id);
  { id; name; interface; description }

let interface_name = function
  | Bus -> "bus"
  | Wireless -> "wireless"
  | Physical -> "physical"
  | Network -> "network"
  | Ui -> "ui"

let remote t = match t.interface with Wireless | Network -> true | Bus | Physical | Ui -> false

let pp ppf t = Format.fprintf ppf "%s [%s/%s]" t.name t.id (interface_name t.interface)
