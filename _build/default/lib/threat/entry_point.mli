(** Entry points: interfaces through which an attacker can reach an asset. *)

type interface =
  | Bus  (** internal interconnect, e.g. CAN *)
  | Wireless  (** 3G/4G/WiFi/BT radio links *)
  | Physical  (** connectors, debug ports, manual controls *)
  | Network  (** IP-reachable services *)
  | Ui  (** on-device user interfaces, e.g. media display *)

type t = {
  id : string;
  name : string;
  interface : interface;
  description : string;
}

val make : id:string -> name:string -> ?description:string -> interface -> t
(** @raise Invalid_argument on an invalid id (same rules as {!Asset.make}). *)

val interface_name : interface -> string

val remote : t -> bool
(** [true] when exploitable without physical access (Wireless/Network). *)

val pp : Format.formatter -> t -> unit
