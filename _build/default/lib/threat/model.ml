type t = {
  use_case : string;
  description : string;
  assets : Asset.t list;
  entry_points : Entry_point.t list;
  modes : string list;
  threats : Threat.t list;
  countermeasures : Countermeasure.t list;
}

let duplicates ids =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun id ->
      if Hashtbl.mem seen id then Some id
      else begin
        Hashtbl.add seen id ();
        None
      end)
    ids

let validate m =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  if m.use_case = "" then err "empty use-case name";
  List.iter (err "duplicate asset id %S")
    (duplicates (List.map (fun (a : Asset.t) -> a.id) m.assets));
  List.iter (err "duplicate entry-point id %S")
    (duplicates (List.map (fun (e : Entry_point.t) -> e.id) m.entry_points));
  List.iter (err "duplicate threat id %S")
    (duplicates (List.map (fun (t : Threat.t) -> t.id) m.threats));
  List.iter (err "duplicate mode %S") (duplicates m.modes);
  let asset_ids = List.map (fun (a : Asset.t) -> a.id) m.assets in
  let ep_ids = List.map (fun (e : Entry_point.t) -> e.id) m.entry_points in
  let threat_ids = List.map (fun (t : Threat.t) -> t.id) m.threats in
  List.iter
    (fun (t : Threat.t) ->
      if not (List.mem t.asset asset_ids) then
        err "threat %S references unknown asset %S" t.id t.asset;
      List.iter
        (fun ep ->
          if not (List.mem ep ep_ids) then
            err "threat %S references unknown entry point %S" t.id ep)
        t.entry_points;
      List.iter
        (fun mode ->
          if not (List.mem mode m.modes) then
            err "threat %S references unknown mode %S" t.id mode)
        t.modes)
    m.threats;
  List.iter
    (fun (c : Countermeasure.t) ->
      if not (List.mem c.threat_id threat_ids) then
        err "countermeasure references unknown threat %S" c.threat_id)
    m.countermeasures;
  List.rev !errors

let make ~use_case ?(description = "") ~assets ~entry_points ?(modes = [])
    ~threats ?(countermeasures = []) () =
  let m =
    { use_case; description; assets; entry_points; modes; threats; countermeasures }
  in
  match validate m with [] -> Ok m | errors -> Error errors

let make_exn ~use_case ?description ~assets ~entry_points ?modes ~threats
    ?countermeasures () =
  match
    make ~use_case ?description ~assets ~entry_points ?modes ~threats
      ?countermeasures ()
  with
  | Ok m -> m
  | Error errors ->
      invalid_arg ("Model.make_exn: " ^ String.concat "; " errors)

let find_asset m id = List.find_opt (fun (a : Asset.t) -> a.id = id) m.assets

let find_entry_point m id =
  List.find_opt (fun (e : Entry_point.t) -> e.id = id) m.entry_points

let find_threat m id = List.find_opt (fun (t : Threat.t) -> t.id = id) m.threats

let threats_to_asset m asset_id =
  List.filter (fun (t : Threat.t) -> t.asset = asset_id) m.threats

let threats_via_entry_point m ep_id =
  List.filter (fun (t : Threat.t) -> List.mem ep_id t.entry_points) m.threats

let threats_in_mode m mode =
  List.filter
    (fun (t : Threat.t) -> t.modes = [] || List.mem mode t.modes)
    m.threats

let covered_ids m =
  List.map (fun (c : Countermeasure.t) -> c.threat_id) m.countermeasures

let uncovered_threats m =
  let covered = covered_ids m in
  List.filter (fun (t : Threat.t) -> not (List.mem t.id covered)) m.threats

let coverage m =
  match m.threats with
  | [] -> 1.0
  | threats ->
      let covered = covered_ids m in
      let n =
        List.length
          (List.filter (fun (t : Threat.t) -> List.mem t.id covered) threats)
      in
      float_of_int n /. float_of_int (List.length threats)

let add_threat m threat =
  let m' = { m with threats = m.threats @ [ threat ] } in
  match validate m' with [] -> Ok m' | errors -> Error errors

let add_countermeasure m cm =
  let m' = { m with countermeasures = m.countermeasures @ [ cm ] } in
  match validate m' with [] -> Ok m' | errors -> Error errors

let pp_report ppf m =
  Format.fprintf ppf "Security model: %s@." m.use_case;
  if m.description <> "" then Format.fprintf ppf "%s@." m.description;
  Format.fprintf ppf "@.Operating modes: %s@."
    (if m.modes = [] then "(single mode)" else String.concat ", " m.modes);
  Format.fprintf ppf "@.Assets (%d):@." (List.length m.assets);
  List.iter
    (fun a -> Format.fprintf ppf "  %a@." Asset.pp a)
    (List.sort Asset.compare_by_criticality m.assets);
  Format.fprintf ppf "@.Entry points (%d):@." (List.length m.entry_points);
  List.iter (fun e -> Format.fprintf ppf "  %a@." Entry_point.pp e) m.entry_points;
  Format.fprintf ppf "@.Threats (%d, highest risk first):@."
    (List.length m.threats);
  List.iter
    (fun t -> Format.fprintf ppf "  %a@." Threat.pp t)
    (Risk.rank m.threats);
  Format.fprintf ppf "@.Risk matrix:@.";
  Risk.pp_matrix ppf m.threats;
  Format.fprintf ppf "@.Countermeasures (%d, coverage %.0f%%):@."
    (List.length m.countermeasures)
    (100.0 *. coverage m);
  List.iter
    (fun c -> Format.fprintf ppf "  %a@." Countermeasure.pp c)
    m.countermeasures;
  match uncovered_threats m with
  | [] -> ()
  | un ->
      Format.fprintf ppf "@.Uncovered threats:@.";
      List.iter (fun (t : Threat.t) -> Format.fprintf ppf "  %s@." t.id) un
