(** The threat-model document: the end product of application threat
    modelling (paper Fig. 1), tying together use case, assets, entry points,
    operating modes, threats and countermeasures. *)

type t = private {
  use_case : string;
  description : string;
  assets : Asset.t list;
  entry_points : Entry_point.t list;
  modes : string list;  (** declared operating modes, e.g. car modes *)
  threats : Threat.t list;
  countermeasures : Countermeasure.t list;
}

val make :
  use_case:string ->
  ?description:string ->
  assets:Asset.t list ->
  entry_points:Entry_point.t list ->
  ?modes:string list ->
  threats:Threat.t list ->
  ?countermeasures:Countermeasure.t list ->
  unit ->
  (t, string list) result
(** Validates referential integrity and returns every violation found:
    duplicate asset / entry-point / threat ids, threats referencing unknown
    assets, entry points or modes, and countermeasures referencing unknown
    threats. *)

val make_exn :
  use_case:string ->
  ?description:string ->
  assets:Asset.t list ->
  entry_points:Entry_point.t list ->
  ?modes:string list ->
  threats:Threat.t list ->
  ?countermeasures:Countermeasure.t list ->
  unit ->
  t
(** @raise Invalid_argument listing all validation errors. *)

val find_asset : t -> string -> Asset.t option

val find_entry_point : t -> string -> Entry_point.t option

val find_threat : t -> string -> Threat.t option

val threats_to_asset : t -> string -> Threat.t list

val threats_via_entry_point : t -> string -> Threat.t list

val threats_in_mode : t -> string -> Threat.t list
(** Threats applicable in the given mode; a threat with an empty mode list
    applies in every mode. *)

val uncovered_threats : t -> Threat.t list
(** Threats with no countermeasure. *)

val coverage : t -> float
(** Fraction of threats with at least one countermeasure; 1. when there are
    no threats. *)

val add_threat : t -> Threat.t -> (t, string list) result
(** Extend the model with a newly discovered threat (re-validates). *)

val add_countermeasure : t -> Countermeasure.t -> (t, string list) result

val pp_report : Format.formatter -> t -> unit
(** Full human-readable security-model document. *)
