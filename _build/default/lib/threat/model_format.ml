(* Line-oriented tokenizer: identifiers, quoted strings, integers and
   braces; '#' comments. *)

type token =
  | IDENT of string
  | STRING of string
  | INT of int
  | LBRACE
  | RBRACE
  | EOF

exception Error of string * int

let token_name = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | STRING s -> Printf.sprintf "string %S" s
  | INT i -> Printf.sprintf "integer %d" i
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | EOF -> "end of input"

let tokenize input =
  let n = String.length input in
  let line = ref 1 in
  let rec loop i acc =
    if i >= n then List.rev ((EOF, !line) :: acc)
    else
      match input.[i] with
      | '\n' ->
          incr line;
          loop (i + 1) acc
      | ' ' | '\t' | '\r' -> loop (i + 1) acc
      | '#' ->
          let rec eol j = if j < n && input.[j] <> '\n' then eol (j + 1) else j in
          loop (eol i) acc
      | '{' -> loop (i + 1) ((LBRACE, !line) :: acc)
      | '}' -> loop (i + 1) ((RBRACE, !line) :: acc)
      | '"' ->
          let buf = Buffer.create 16 in
          let rec str j =
            if j >= n then raise (Error ("unterminated string", !line))
            else
              match input.[j] with
              | '"' -> j + 1
              | '\\' when j + 1 < n ->
                  Buffer.add_char buf input.[j + 1];
                  str (j + 2)
              | '\n' -> raise (Error ("newline in string", !line))
              | c ->
                  Buffer.add_char buf c;
                  str (j + 1)
          in
          let stop = str (i + 1) in
          loop stop ((STRING (Buffer.contents buf), !line) :: acc)
      | '0' .. '9' ->
          let rec num j =
            if j < n && input.[j] >= '0' && input.[j] <= '9' then num (j + 1) else j
          in
          let stop = num i in
          loop stop
            ((INT (int_of_string (String.sub input i (stop - i))), !line) :: acc)
      | ('a' .. 'z' | 'A' .. 'Z' | '_') ->
          let is_ident c =
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
            || (c >= '0' && c <= '9') || c = '_'
          in
          let rec word j = if j < n && is_ident input.[j] then word (j + 1) else j in
          let stop = word i in
          loop stop ((IDENT (String.sub input i (stop - i)), !line) :: acc)
      | c -> raise (Error (Printf.sprintf "illegal character %C" c, !line))
  in
  loop 0 []

type state = { mutable tokens : (token * int) list }

let peek st = match st.tokens with [] -> (EOF, 0) | t :: _ -> t

let advance st = match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let line_of st = snd (peek st)

let fail st msg = raise (Error (msg, line_of st))

let ident st =
  match peek st with
  | IDENT s, _ ->
      advance st;
      s
  | got, line ->
      raise (Error (Printf.sprintf "expected identifier, found %s" (token_name got), line))

let string_ st =
  match peek st with
  | STRING s, _ ->
      advance st;
      s
  | got, line ->
      raise (Error (Printf.sprintf "expected string, found %s" (token_name got), line))

let int_ st =
  match peek st with
  | INT v, _ ->
      advance st;
      v
  | got, line ->
      raise (Error (Printf.sprintf "expected integer, found %s" (token_name got), line))

let top_keywords = [ "use_case"; "description"; "modes"; "asset"; "entry"; "threat" ]

let threat_keywords =
  [ "title"; "description"; "asset"; "entry"; "modes"; "stride"; "dread";
    "attack"; "legit" ]

(* idents until a keyword of the surrounding scope, a brace or eof; at
   least one.  Consequence: user-chosen names must not collide with the
   scope's keywords. *)
let ident_list ~stop st =
  let rec loop acc =
    match peek st with
    | IDENT s, _ when not (List.mem s stop) -> loop (ident st :: acc)
    | _ -> List.rev acc
  in
  match loop [] with [] -> fail st "expected at least one identifier" | l -> l

let criticality_of_string st = function
  | "safety_critical" -> Asset.Safety_critical
  | "operational" -> Asset.Operational
  | "privacy" -> Asset.Privacy
  | "convenience" -> Asset.Convenience
  | s -> fail st (Printf.sprintf "unknown criticality %S" s)

let criticality_name = function
  | Asset.Safety_critical -> "safety_critical"
  | Asset.Operational -> "operational"
  | Asset.Privacy -> "privacy"
  | Asset.Convenience -> "convenience"

let interface_of_string st = function
  | "bus" -> Entry_point.Bus
  | "wireless" -> Entry_point.Wireless
  | "physical" -> Entry_point.Physical
  | "network" -> Entry_point.Network
  | "ui" -> Entry_point.Ui
  | s -> fail st (Printf.sprintf "unknown interface %S" s)

let operation_of_string st = function
  | "read" -> Threat.Read
  | "write" -> Threat.Write
  | s -> fail st (Printf.sprintf "unknown operation %S (read|write)" s)

let operation_name = function Threat.Read -> "read" | Threat.Write -> "write"

type threat_fields = {
  mutable title : string option;
  mutable description : string;
  mutable asset : string option;
  mutable entry : string list;
  mutable modes : string list;
  mutable stride : Stride.t option;
  mutable dread : Dread.t option;
  mutable attack : Threat.operation option;
  mutable legit : Threat.operation list;
}

let parse_threat st id =
  let f =
    {
      title = None;
      description = "";
      asset = None;
      entry = [];
      modes = [];
      stride = None;
      dread = None;
      attack = None;
      legit = [];
    }
  in
  (match peek st with
  | LBRACE, _ -> advance st
  | got, line ->
      raise (Error (Printf.sprintf "expected '{', found %s" (token_name got), line)));
  let rec fields () =
    match peek st with
    | RBRACE, _ -> advance st
    | IDENT "title", _ ->
        advance st;
        f.title <- Some (string_ st);
        fields ()
    | IDENT "description", _ ->
        advance st;
        f.description <- string_ st;
        fields ()
    | IDENT "asset", _ ->
        advance st;
        f.asset <- Some (ident st);
        fields ()
    | IDENT "entry", _ ->
        advance st;
        f.entry <- ident_list ~stop:threat_keywords st;
        fields ()
    | IDENT "modes", _ ->
        advance st;
        f.modes <- ident_list ~stop:threat_keywords st;
        fields ()
    | IDENT "stride", _ -> (
        advance st;
        match Stride.of_string (ident st) with
        | Ok s ->
            f.stride <- Some s;
            fields ()
        | Error e -> fail st e)
    | IDENT "dread", _ -> (
        advance st;
        (* bind one by one: list literals evaluate right-to-left *)
        let d = int_ st in
        let r = int_ st in
        let e = int_ st in
        let a = int_ st in
        let di = int_ st in
        match Dread.of_list [ d; r; e; a; di ] with
        | Ok d ->
            f.dread <- Some d;
            fields ()
        | Error e -> fail st e)
    | IDENT "attack", _ ->
        advance st;
        f.attack <- Some (operation_of_string st (ident st));
        fields ()
    | IDENT "legit", _ ->
        advance st;
        f.legit <- List.map (operation_of_string st) (ident_list ~stop:threat_keywords st);
        fields ()
    | got, line ->
        raise
          (Error
             (Printf.sprintf "unknown threat field %s" (token_name got), line))
  in
  fields ();
  let require what = function
    | Some v -> v
    | None -> fail st (Printf.sprintf "threat %S is missing %s" id what)
  in
  Threat.make ~id
    ~title:(require "title" f.title)
    ~description:f.description
    ~asset:(require "asset" f.asset)
    ~entry_points:f.entry ~modes:f.modes
    ~stride:(require "stride" f.stride)
    ~dread:(require "dread" f.dread)
    ~attack_operation:(require "attack" f.attack)
    ~legitimate_operations:f.legit ()

let parse_document st =
  let use_case = ref None in
  let description = ref "" in
  let modes = ref [] in
  let assets = ref [] in
  let entries = ref [] in
  let threats = ref [] in
  let rec decls () =
    match peek st with
    | EOF, _ -> ()
    | IDENT "use_case", _ ->
        advance st;
        use_case := Some (string_ st);
        decls ()
    | IDENT "description", _ ->
        advance st;
        description := string_ st;
        decls ()
    | IDENT "modes", _ ->
        advance st;
        modes := ident_list ~stop:top_keywords st;
        decls ()
    | IDENT "asset", _ ->
        advance st;
        let id = ident st in
        let name = string_ st in
        let criticality = criticality_of_string st (ident st) in
        let description =
          match peek st with STRING _, _ -> string_ st | _ -> ""
        in
        assets := Asset.make ~id ~name ~description criticality :: !assets;
        decls ()
    | IDENT "entry", _ ->
        advance st;
        let id = ident st in
        let name = string_ st in
        let interface = interface_of_string st (ident st) in
        let description =
          match peek st with STRING _, _ -> string_ st | _ -> ""
        in
        entries := Entry_point.make ~id ~name ~description interface :: !entries;
        decls ()
    | IDENT "threat", _ ->
        advance st;
        let id = ident st in
        threats := parse_threat st id :: !threats;
        decls ()
    | got, line ->
        raise
          (Error (Printf.sprintf "unknown declaration %s" (token_name got), line))
  in
  decls ();
  let use_case =
    match !use_case with
    | Some u -> u
    | None -> fail st "missing use_case declaration"
  in
  Model.make ~use_case ~description:!description ~assets:(List.rev !assets)
    ~entry_points:(List.rev !entries)
    ~modes:!modes
    ~threats:(List.rev !threats)
    ()

let parse input =
  match
    let st = { tokens = tokenize input } in
    parse_document st
  with
  | Ok m -> Ok m
  | Error validation -> Error (String.concat "; " validation)
  | exception Error (msg, line) -> Error (Printf.sprintf "line %d: %s" line msg)

let parse_exn input =
  match parse input with Ok m -> m | Error e -> failwith e

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let print (m : Model.t) =
  let b = Buffer.create 2048 in
  Printf.bprintf b "use_case %s\n" (quote m.use_case);
  if m.description <> "" then
    Printf.bprintf b "description %s\n" (quote m.description);
  if m.modes <> [] then
    Printf.bprintf b "modes %s\n" (String.concat " " m.modes);
  Buffer.add_char b '\n';
  List.iter
    (fun (a : Asset.t) ->
      Printf.bprintf b "asset %s %s %s%s\n" a.id (quote a.name)
        (criticality_name a.criticality)
        (if a.description = "" then "" else " " ^ quote a.description))
    m.assets;
  Buffer.add_char b '\n';
  List.iter
    (fun (e : Entry_point.t) ->
      Printf.bprintf b "entry %s %s %s%s\n" e.id (quote e.name)
        (Entry_point.interface_name e.interface)
        (if e.description = "" then "" else " " ^ quote e.description))
    m.entry_points;
  List.iter
    (fun (t : Threat.t) ->
      Printf.bprintf b "\nthreat %s {\n" t.id;
      Printf.bprintf b "  title %s\n" (quote t.title);
      if t.description <> "" then
        Printf.bprintf b "  description %s\n" (quote t.description);
      Printf.bprintf b "  asset %s\n" t.asset;
      Printf.bprintf b "  entry %s\n" (String.concat " " t.entry_points);
      if t.modes <> [] then
        Printf.bprintf b "  modes %s\n" (String.concat " " t.modes);
      Printf.bprintf b "  stride %s\n" (Stride.to_string t.stride);
      Printf.bprintf b "  dread %s\n"
        (String.concat " " (List.map string_of_int (Dread.to_list t.dread)));
      Printf.bprintf b "  attack %s\n" (operation_name t.attack_operation);
      if t.legitimate_operations <> [] then
        Printf.bprintf b "  legit %s\n"
          (String.concat " " (List.map operation_name t.legitimate_operations));
      Buffer.add_string b "}\n")
    m.threats;
  Buffer.contents b
