(** Textual interchange format for threat-model documents.

    A threat model is authored (or exported) as plain text, so the
    modelling stage of the paper's Fig. 1 pipeline can live in version
    control next to the code it protects:

    {v
    use_case "Smart door lock"
    description "..."
    modes normal maintenance

    asset lock_motor "Lock motor" safety_critical "actuator bolting the door"
    entry ble "Bluetooth LE" wireless "proximity radio link"

    threat replay_unlock {
      title "Replayed BLE unlock command"
      asset lock_motor
      entry ble
      modes normal
      stride ST
      dread 8 6 5 7 6
      attack write
      legit read
    }
    v}

    Comments run from [#] to end of line.  [parse (print m)] reproduces [m]
    (countermeasures are not serialised — they are derived artefacts). *)

val parse : string -> (Model.t, string) result
(** Parse and validate a complete model.  Errors carry a line number for
    syntax problems, or the model validator's messages. *)

val parse_exn : string -> Model.t

val print : Model.t -> string
(** Serialise (without countermeasures). *)
