let buffer_add_line b fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt

let threat_row b (m : Model.t) (t : Threat.t) =
  let entry_names =
    t.entry_points
    |> List.map (fun id ->
           match Model.find_entry_point m id with
           | Some ep -> ep.Entry_point.name
           | None -> id)
    |> String.concat ", "
  in
  let modes = if t.modes = [] then "all" else String.concat ", " t.modes in
  buffer_add_line b "| %s | %s | %s | %s | %s | %s | %s | %s |" t.id t.asset
    entry_names modes
    (Stride.to_string t.stride)
    (Format.asprintf "%a" Dread.pp t.dread)
    (Dread.rating_name (Threat.rating t))
    (if Threat.residual_risk t then "yes" else "no")

let threat_table (m : Model.t) =
  let b = Buffer.create 1024 in
  buffer_add_line b
    "| Threat | Asset | Entry points | Modes | STRIDE | DREAD (avg) | Rating | Residual |";
  buffer_add_line b "|---|---|---|---|---|---|---|---|";
  List.iter (threat_row b m) (Risk.rank m.threats);
  Buffer.contents b

let markdown (m : Model.t) =
  let b = Buffer.create 4096 in
  buffer_add_line b "# Security model: %s" m.use_case;
  if m.description <> "" then begin
    buffer_add_line b "";
    buffer_add_line b "%s" m.description
  end;
  buffer_add_line b "";
  buffer_add_line b "## Operating modes";
  buffer_add_line b "";
  (if m.modes = [] then buffer_add_line b "Single operating mode."
   else List.iter (fun mode -> buffer_add_line b "- `%s`" mode) m.modes);
  buffer_add_line b "";
  buffer_add_line b "## Assets";
  buffer_add_line b "";
  buffer_add_line b "| Asset | Criticality | Description |";
  buffer_add_line b "|---|---|---|";
  List.iter
    (fun (a : Asset.t) ->
      buffer_add_line b "| %s (`%s`) | %s | %s |" a.name a.id
        (Asset.criticality_name a.criticality)
        a.description)
    (List.sort Asset.compare_by_criticality m.assets);
  buffer_add_line b "";
  buffer_add_line b "## Entry points";
  buffer_add_line b "";
  buffer_add_line b "| Entry point | Interface | Remote | Description |";
  buffer_add_line b "|---|---|---|---|";
  List.iter
    (fun (e : Entry_point.t) ->
      buffer_add_line b "| %s (`%s`) | %s | %s | %s |" e.name e.id
        (Entry_point.interface_name e.interface)
        (if Entry_point.remote e then "yes" else "no")
        e.description)
    m.entry_points;
  buffer_add_line b "";
  buffer_add_line b "## Threats (highest risk first)";
  buffer_add_line b "";
  Buffer.add_string b (threat_table m);
  buffer_add_line b "";
  buffer_add_line b "Mean risk: %.2f. Residual rows cannot be fully excluded"
    (Risk.mean_risk m.threats);
  buffer_add_line b
    "by read/write permissions alone and need behavioural or situational policies.";
  buffer_add_line b "";
  buffer_add_line b "## Risk matrix";
  buffer_add_line b "";
  buffer_add_line b "```";
  Buffer.add_string b (Format.asprintf "%a" Risk.pp_matrix m.threats);
  buffer_add_line b "```";
  buffer_add_line b "";
  buffer_add_line b "## Countermeasures (coverage %.0f%%)" (100.0 *. Model.coverage m);
  buffer_add_line b "";
  List.iter
    (fun (c : Countermeasure.t) ->
      buffer_add_line b "- %s" (Format.asprintf "%a" Countermeasure.pp c))
    m.countermeasures;
  (match Model.uncovered_threats m with
  | [] -> ()
  | uncovered ->
      buffer_add_line b "";
      buffer_add_line b "### Uncovered threats";
      buffer_add_line b "";
      List.iter
        (fun (t : Threat.t) -> buffer_add_line b "- `%s`" t.id)
        uncovered);
  Buffer.contents b
