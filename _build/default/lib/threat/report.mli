(** Markdown rendering of a threat-model document.

    The paper's "technical document that provides security guidelines
    specific to that use case", generated from the machine model so it can
    never drift from what is actually enforced. *)

val markdown : Model.t -> string
(** The full security-model document: use case, operating modes, asset and
    entry-point inventories, the Table-I-style threat table (STRIDE, DREAD
    components and average, rating, residual-risk marker), the
    likelihood/impact matrix, and the countermeasure list with coverage. *)

val threat_table : Model.t -> string
(** Just the threat table (one Markdown table). *)
