let likelihood (d : Dread.t) =
  float_of_int (d.reproducibility + d.exploitability + d.discoverability) /. 3.0

let impact (d : Dread.t) = float_of_int (d.damage + d.affected_users) /. 2.0

type priority = P1 | P2 | P3 | P4

let priority d =
  let high_l = likelihood d >= 5.0 and high_i = impact d >= 5.0 in
  match (high_l, high_i) with
  | true, true -> P1
  | false, true -> P2
  | true, false -> P3
  | false, false -> P4

let priority_name = function P1 -> "P1" | P2 -> "P2" | P3 -> "P3" | P4 -> "P4"

let rank threats = List.stable_sort Threat.compare_by_risk threats

let top n threats =
  let ranked = rank threats in
  List.filteri (fun i _ -> i < n) ranked

let all_priorities = [ P1; P2; P3; P4 ]

let by_priority threats =
  List.map
    (fun p ->
      (p, List.filter (fun (t : Threat.t) -> priority t.dread = p) threats))
    all_priorities

let mean_risk threats =
  match threats with
  | [] -> 0.0
  | _ ->
      List.fold_left (fun acc t -> acc +. Threat.risk t) 0.0 threats
      /. float_of_int (List.length threats)

let pp_matrix ppf threats =
  let buckets = by_priority threats in
  let label = function
    | P1 -> "P1 high-likelihood / high-impact"
    | P2 -> "P2 low-likelihood / high-impact"
    | P3 -> "P3 high-likelihood / low-impact"
    | P4 -> "P4 low-likelihood / low-impact"
  in
  List.iter
    (fun (p, ts) ->
      Format.fprintf ppf "%s:@." (label p);
      List.iter
        (fun (t : Threat.t) ->
          Format.fprintf ppf "  %s (risk %.1f)@." t.id (Threat.risk t))
        (rank ts))
    buckets
