(** Risk assessment over a set of threats: ranking and the
    likelihood/impact matrix used to prioritise design effort. *)

val likelihood : Dread.t -> float
(** Mean of the attacker-facing components: reproducibility,
    exploitability, discoverability. *)

val impact : Dread.t -> float
(** Mean of the victim-facing components: damage, affected users. *)

type priority = P1 | P2 | P3 | P4
(** P1 is most urgent. *)

val priority : Dread.t -> priority
(** Quadrant of the likelihood/impact matrix, split at 5.0:
    high/high -> P1, low-likelihood/high-impact -> P2,
    high-likelihood/low-impact -> P3, low/low -> P4. *)

val priority_name : priority -> string

val rank : Threat.t list -> Threat.t list
(** Descending DREAD average (stable for equal risk). *)

val top : int -> Threat.t list -> Threat.t list
(** The [n] highest-risk threats. *)

val by_priority : Threat.t list -> (priority * Threat.t list) list
(** Partition into the four priority buckets, P1 first; empty buckets are
    included so callers can render a complete matrix. *)

val mean_risk : Threat.t list -> float
(** Mean DREAD average over the set; 0. on an empty list. *)

val pp_matrix : Format.formatter -> Threat.t list -> unit
(** Render the 2x2 likelihood/impact matrix with threat ids per quadrant. *)
