type category =
  | Spoofing
  | Tampering
  | Repudiation
  | Information_disclosure
  | Denial_of_service
  | Elevation_of_privilege

type t = category list

let all =
  [
    Spoofing;
    Tampering;
    Repudiation;
    Information_disclosure;
    Denial_of_service;
    Elevation_of_privilege;
  ]

let code = function
  | Spoofing -> 'S'
  | Tampering -> 'T'
  | Repudiation -> 'R'
  | Information_disclosure -> 'I'
  | Denial_of_service -> 'D'
  | Elevation_of_privilege -> 'E'

let of_code = function
  | 'S' -> Some Spoofing
  | 'T' -> Some Tampering
  | 'R' -> Some Repudiation
  | 'I' -> Some Information_disclosure
  | 'D' -> Some Denial_of_service
  | 'E' -> Some Elevation_of_privilege
  | _ -> None

let name = function
  | Spoofing -> "Spoofing"
  | Tampering -> "Tampering"
  | Repudiation -> "Repudiation"
  | Information_disclosure -> "Information disclosure"
  | Denial_of_service -> "Denial of service"
  | Elevation_of_privilege -> "Elevation of privilege"

let property_violated = function
  | Spoofing -> "authentication"
  | Tampering -> "integrity"
  | Repudiation -> "non-repudiation"
  | Information_disclosure -> "confidentiality"
  | Denial_of_service -> "availability"
  | Elevation_of_privilege -> "authorisation"

let rank = function
  | Spoofing -> 0
  | Tampering -> 1
  | Repudiation -> 2
  | Information_disclosure -> 3
  | Denial_of_service -> 4
  | Elevation_of_privilege -> 5

let mem c t = List.mem c t

let normalise t =
  List.sort_uniq (fun a b -> compare (rank a) (rank b)) t

let of_string s =
  let rec loop i acc =
    if i >= String.length s then Ok (List.rev acc)
    else
      match of_code s.[i] with
      | None -> Error (Printf.sprintf "unknown STRIDE code %C" s.[i])
      | Some c ->
          if List.mem c acc then
            Error (Printf.sprintf "duplicate STRIDE code %C" s.[i])
          else loop (i + 1) (c :: acc)
  in
  match loop 0 [] with
  | Error _ as e -> e
  | Ok cs -> Ok (normalise cs)

let to_string t =
  let t = normalise t in
  String.init (List.length t) (fun i -> code (List.nth t i))

let pp ppf t = Format.pp_print_string ppf (to_string t)

let pp_category ppf c = Format.pp_print_string ppf (name c)
