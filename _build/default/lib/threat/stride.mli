(** STRIDE threat categorisation (Microsoft; used by the paper's Table I).

    Each category names the security property it violates:
    Spoofing/authentication, Tampering/integrity, Repudiation/non-repudiation,
    Information disclosure/confidentiality, Denial of service/availability,
    Elevation of privilege/authorisation. *)

type category =
  | Spoofing
  | Tampering
  | Repudiation
  | Information_disclosure
  | Denial_of_service
  | Elevation_of_privilege

type t = category list
(** A classification, e.g. Table I's ["STD"] = spoofing, tampering, DoS.
    Order follows the S-T-R-I-D-E mnemonic and duplicates are not allowed. *)

val all : category list
(** The six categories in mnemonic order. *)

val code : category -> char
(** One-letter code: ['S'], ['T'], ['R'], ['I'], ['D'], ['E']. *)

val of_code : char -> category option

val name : category -> string
(** Full name, e.g. ["Information disclosure"]. *)

val property_violated : category -> string
(** The security property the category attacks, e.g. Tampering -> integrity. *)

val of_string : string -> (t, string) result
(** Parse a compact code string such as ["STD"] or ["STIDE"].  Rejects
    unknown letters and duplicates; normalises to mnemonic order. *)

val to_string : t -> string
(** Inverse of [of_string]; categories render in mnemonic order. *)

val mem : category -> t -> bool

val normalise : t -> t
(** Deduplicate and sort into mnemonic order. *)

val pp : Format.formatter -> t -> unit
(** Prints the compact code, e.g. [STD]. *)

val pp_category : Format.formatter -> category -> unit
