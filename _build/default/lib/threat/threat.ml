type operation = Read | Write

type t = {
  id : string;
  title : string;
  description : string;
  asset : string;
  entry_points : string list;
  modes : string list;
  stride : Stride.t;
  dread : Dread.t;
  attack_operation : operation;
  legitimate_operations : operation list;
}

let dedup l = List.sort_uniq compare l

let make ~id ~title ?(description = "") ~asset ~entry_points ?(modes = [])
    ~stride ~dread ~attack_operation ~legitimate_operations () =
  if id = "" then invalid_arg "Threat.make: empty id";
  if asset = "" then invalid_arg "Threat.make: empty asset";
  if entry_points = [] then invalid_arg "Threat.make: no entry points";
  {
    id;
    title;
    description;
    asset;
    entry_points = dedup entry_points;
    modes = dedup modes;
    stride = Stride.normalise stride;
    dread;
    attack_operation;
    legitimate_operations = dedup legitimate_operations;
  }

let operation_name = function Read -> "read" | Write -> "write"

let risk t = Dread.average t.dread

let rating t = Dread.rating t.dread

let residual_risk t = List.mem t.attack_operation t.legitimate_operations

let remote_modes t = t.modes

let compare_by_risk a b =
  match compare (risk b) (risk a) with
  | 0 -> String.compare a.id b.id
  | c -> c

let pp ppf t =
  Format.fprintf ppf "%s [%a %a %s]" t.id Stride.pp t.stride Dread.pp t.dread
    (Dread.rating_name (rating t))
