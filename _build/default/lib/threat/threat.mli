(** A single identified threat, as one row of the paper's Table I.

    Beyond the descriptive fields, a threat records its *access semantics* at
    the targeted entry points: which operation the attacker performs
    ([attack_operation]) and which operations legitimate parties still need
    ([legitimate_operations]).  Policy derivation (see
    [Secpol_policy.Derive]) is least-privilege: the derived policy permits
    exactly the legitimate operations, so the attack operation is blocked
    unless it coincides with a legitimate need — the paper's RW rows, where a
    coarse read/write policy leaves residual risk and finer-grained
    behavioural policies are called for. *)

type operation = Read | Write

type t = {
  id : string;  (** unique machine name, e.g. ["ev_ecu_spoof_disable"] *)
  title : string;
  description : string;
  asset : string;  (** id of the targeted {!Asset.t} *)
  entry_points : string list;  (** ids of the {!Entry_point.t}s used *)
  modes : string list;  (** operating modes in which the threat applies *)
  stride : Stride.t;
  dread : Dread.t;
  attack_operation : operation;
  legitimate_operations : operation list;
}

val make :
  id:string ->
  title:string ->
  ?description:string ->
  asset:string ->
  entry_points:string list ->
  ?modes:string list ->
  stride:Stride.t ->
  dread:Dread.t ->
  attack_operation:operation ->
  legitimate_operations:operation list ->
  unit ->
  t
(** Normalises the STRIDE set and deduplicates entry points / modes /
    legitimate operations.
    @raise Invalid_argument on an empty id, asset or entry-point list. *)

val operation_name : operation -> string

val risk : t -> float
(** DREAD average. *)

val rating : t -> Dread.rating

val residual_risk : t -> bool
(** [true] when the attack operation is also a legitimate operation, so a
    read/write policy alone cannot block the attack. *)

val remote_modes : t -> string list
(** Alias for [t.modes]; named accessor for readability at call sites. *)

val compare_by_risk : t -> t -> int
(** Highest DREAD average first; ties by id. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: id, STRIDE, DREAD, rating. *)
