lib/vehicle/assets.ml: List Names Secpol_threat
