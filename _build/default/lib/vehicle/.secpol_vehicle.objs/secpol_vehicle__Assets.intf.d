lib/vehicle/assets.mli: Secpol_threat
