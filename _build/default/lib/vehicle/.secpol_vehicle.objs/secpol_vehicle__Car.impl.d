lib/vehicle/car.ml: Door_locks Engine_ecu Eps Ev_ecu Infotainment List Messages Modes Names Policy_map Printf Safety Secpol_can Secpol_hpe Secpol_policy Secpol_sim Sensors State Telematics
