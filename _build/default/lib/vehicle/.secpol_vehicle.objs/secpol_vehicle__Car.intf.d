lib/vehicle/car.mli: Modes Secpol_can Secpol_hpe Secpol_policy Secpol_sim State
