lib/vehicle/door_locks.ml: Ecu Messages Names Secpol_can Secpol_sim State String
