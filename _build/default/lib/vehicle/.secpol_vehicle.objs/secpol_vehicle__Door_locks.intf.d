lib/vehicle/door_locks.mli: Secpol_can Secpol_sim State
