lib/vehicle/ecu.ml: Char List Messages Modes Names Secpol_can Secpol_sim State String
