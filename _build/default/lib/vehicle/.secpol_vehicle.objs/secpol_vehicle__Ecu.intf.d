lib/vehicle/ecu.mli: Messages Secpol_can Secpol_sim State
