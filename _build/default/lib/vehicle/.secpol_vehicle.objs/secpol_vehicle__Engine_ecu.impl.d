lib/vehicle/engine_ecu.ml: Ecu Messages Names Secpol_can Secpol_sim State String
