lib/vehicle/engine_ecu.mli: Secpol_can Secpol_sim State
