lib/vehicle/eps.ml: Ecu Messages Names Secpol_can Secpol_sim State String
