lib/vehicle/eps.mli: Secpol_can Secpol_sim State
