lib/vehicle/ev_ecu.mli: Secpol_can Secpol_sim State
