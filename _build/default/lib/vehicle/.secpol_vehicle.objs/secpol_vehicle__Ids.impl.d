lib/vehicle/ids.ml: Car Format Hashtbl List Messages Option Secpol_can Secpol_hpe Secpol_sim
