lib/vehicle/ids.mli: Car Format
