lib/vehicle/infotainment.ml: Char Ecu Hashtbl Messages Names Printf Secpol_can Secpol_sim State
