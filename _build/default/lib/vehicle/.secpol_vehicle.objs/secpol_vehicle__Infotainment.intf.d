lib/vehicle/infotainment.mli: Secpol_can Secpol_sim State
