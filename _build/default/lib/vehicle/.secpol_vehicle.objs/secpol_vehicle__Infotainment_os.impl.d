lib/vehicle/infotainment_os.ml: Secpol_can Secpol_selinux State String
