lib/vehicle/infotainment_os.mli: Secpol_can Secpol_selinux State
