lib/vehicle/messages.ml: List Modes Names Printf Secpol_hpe
