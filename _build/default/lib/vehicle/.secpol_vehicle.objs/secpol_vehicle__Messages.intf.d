lib/vehicle/messages.mli: Modes Secpol_hpe
