lib/vehicle/modes.ml: Format
