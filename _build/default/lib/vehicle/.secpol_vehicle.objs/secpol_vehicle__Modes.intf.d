lib/vehicle/modes.mli: Format
