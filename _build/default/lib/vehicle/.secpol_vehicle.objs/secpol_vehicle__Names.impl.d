lib/vehicle/names.ml: List Printf
