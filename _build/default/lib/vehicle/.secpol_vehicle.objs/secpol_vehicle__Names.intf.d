lib/vehicle/names.mli:
