lib/vehicle/policy_map.ml: Hashtbl List Messages Modes Names Option Secpol_hpe Secpol_policy String
