lib/vehicle/policy_map.mli: Modes Secpol_hpe Secpol_policy
