lib/vehicle/safety.ml: Char Ecu Messages Modes Names Printf Secpol_can Secpol_sim Sensors State
