lib/vehicle/safety.mli: Secpol_can Secpol_sim State
