lib/vehicle/segmented.ml: Door_locks Engine_ecu Eps Ev_ecu Infotainment List Messages Names Printf Safety Secpol_can Secpol_sim Sensors State Telematics
