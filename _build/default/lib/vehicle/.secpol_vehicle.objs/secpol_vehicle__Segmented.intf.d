lib/vehicle/segmented.mli: Secpol_can Secpol_sim State
