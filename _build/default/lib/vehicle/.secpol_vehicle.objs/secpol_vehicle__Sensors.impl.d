lib/vehicle/sensors.ml: Char Ecu Messages Names Secpol_sim State String
