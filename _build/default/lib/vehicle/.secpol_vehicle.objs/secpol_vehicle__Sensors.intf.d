lib/vehicle/sensors.mli: Secpol_can Secpol_sim State
