lib/vehicle/state.ml: Format List Modes
