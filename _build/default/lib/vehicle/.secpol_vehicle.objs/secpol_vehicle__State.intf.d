lib/vehicle/state.mli: Format Modes
