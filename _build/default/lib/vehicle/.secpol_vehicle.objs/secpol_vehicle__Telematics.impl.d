lib/vehicle/telematics.ml: Ecu Messages Names Printf Secpol_can Secpol_sim State
