lib/vehicle/telematics.mli: Secpol_can Secpol_sim State
