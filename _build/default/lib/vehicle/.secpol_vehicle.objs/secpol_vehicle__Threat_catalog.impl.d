lib/vehicle/threat_catalog.ml: Assets List Modes Names Secpol_policy Secpol_threat String
