lib/vehicle/threat_catalog.mli: Secpol_policy Secpol_threat
