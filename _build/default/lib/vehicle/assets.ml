module Asset = Secpol_threat.Asset
module Entry_point = Secpol_threat.Entry_point

let all =
  [
    Asset.make ~id:Names.ev_ecu ~name:"EV-ECU"
      ~description:"Electronic vehicle ECU: acceleration, braking, transmission control"
      Asset.Safety_critical;
    Asset.make ~id:Names.eps ~name:"EPS"
      ~description:"Electronic power steering" Asset.Safety_critical;
    Asset.make ~id:Names.engine ~name:"Engine"
      ~description:"Engine / propulsion unit" Asset.Operational;
    Asset.make ~id:Names.asset_connectivity ~name:"3G/4G/WiFi"
      ~description:"Cellular and WiFi connectivity (telematics unit)"
      Asset.Operational;
    Asset.make ~id:Names.infotainment ~name:"Infotainment system"
      ~description:"Media player, browser and display unit" Asset.Convenience;
    Asset.make ~id:Names.door_locks ~name:"Door locks"
      ~description:"Central locking actuators" Asset.Safety_critical;
    Asset.make ~id:Names.asset_safety_critical ~name:"Safety critical"
      ~description:"Airbags, alarm, fail-safe controller" Asset.Safety_critical;
    Asset.make ~id:Names.sensors ~name:"Sensors"
      ~description:"Acceleration, brake and transmission sensor cluster"
      Asset.Safety_critical;
  ]

let entry_points =
  [
    Entry_point.make ~id:Names.ep_door_locks ~name:"Door locks"
      ~description:"lock/unlock signalling path" Entry_point.Bus;
    Entry_point.make ~id:Names.ep_safety_critical ~name:"Safety critical"
      ~description:"fail-safe and alarm signalling path" Entry_point.Bus;
    Entry_point.make ~id:Names.ep_sensors ~name:"Sensors"
      ~description:"sensor telemetry feed" Entry_point.Bus;
    Entry_point.make ~id:Names.ep_connectivity ~name:"3G/4G/WiFi"
      ~description:"cellular / WiFi radio link" Entry_point.Wireless;
    Entry_point.make ~id:Names.ep_any_node ~name:"Any CAN node"
      ~description:"any station on the shared CAN bus" Entry_point.Bus;
    Entry_point.make ~id:Names.ep_ev_ecu ~name:"EV-ECU"
      ~description:"propulsion controller as a pivot" Entry_point.Bus;
    Entry_point.make ~id:Names.ep_infotainment ~name:"Infotainment system"
      ~description:"infotainment unit as a pivot" Entry_point.Bus;
    Entry_point.make ~id:Names.ep_emergency ~name:"Emergency signalling"
      ~description:"eCall / emergency trigger path" Entry_point.Bus;
    Entry_point.make ~id:Names.ep_air_bags ~name:"Air bags"
      ~description:"airbag deployment signalling" Entry_point.Bus;
    Entry_point.make ~id:Names.ep_media_browser ~name:"Media player browser"
      ~description:"user-facing browser on the media display" Entry_point.Ui;
    Entry_point.make ~id:Names.ep_manual_open ~name:"Manual open"
      ~description:"physical door handle / key" Entry_point.Physical;
  ]

let find id = List.find_opt (fun (a : Asset.t) -> a.id = id) all
