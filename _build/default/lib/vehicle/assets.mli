(** The car's critical assets and entry points as threat-model objects
    (paper §V: "the car's chosen critical assets are EV-ECU, electronic
    power steering, Engine, 3G/4G/WiFi, infotainment system, door locks
    and safety critical devices"). *)

val all : Secpol_threat.Asset.t list

val entry_points : Secpol_threat.Entry_point.t list

val find : string -> Secpol_threat.Asset.t option
