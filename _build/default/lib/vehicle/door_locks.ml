module Engine = Secpol_sim.Engine

let create sim bus state =
  let node = Ecu.make_node bus ~name:Names.door_locks in
  let log msg = State.log state ~time:(Engine.now sim) msg in
  let handlers =
    [
      ( Messages.lock_command,
        fun ~sender:_ frame ->
          match Ecu.command frame with
          | Some c when c = Messages.cmd_lock ->
              if not state.State.doors_locked then begin
                state.State.doors_locked <- true;
                log "doors: locked"
              end
          | Some c when c = Messages.cmd_unlock ->
              if state.State.doors_locked then begin
                state.State.doors_locked <- false;
                log
                  (if state.State.speed_kmh > 0.0 then
                     "doors: UNLOCKED WHILE IN MOTION"
                   else "doors: unlocked");
                (* Unlock while armed looks like a break-in: immobilise. *)
                if state.State.alarm_armed then
                  ignore
                    (Ecu.send_command node
                       (Messages.find_exn Messages.ecu_command)
                       Messages.cmd_disable)
              end
          | Some _ | None -> () );
      ( Messages.airbag_deploy,
        fun ~sender:_ _frame ->
          if state.State.doors_locked then begin
            state.State.doors_locked <- false;
            log "doors: crash unlock (airbag deployment)"
          end );
    ]
    @ [ Ecu.diag_responder node state ]
  in
  Secpol_can.Node.set_on_receive node (Ecu.dispatch handlers);
  Ecu.start_periodic sim node
    (Messages.find_exn Messages.door_status)
    ~payload:(fun () ->
      String.make 1 (if state.State.doors_locked then '\001' else '\000'))
    ~enabled:(fun () -> true);
  node
