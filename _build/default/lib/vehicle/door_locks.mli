(** Central locking ECU.

    Locks/unlocks on [lock_command], auto-unlocks on airbag deployment
    (rescue access), and — as the alarm's actuator arm — immobilises the
    drivetrain when an unlock happens while armed.  Table I threats 13/14
    target it. *)

val create :
  Secpol_sim.Engine.t -> Secpol_can.Bus.t -> State.t -> Secpol_can.Node.t
