module Node = Secpol_can.Node
module Frame = Secpol_can.Frame
module Identifier = Secpol_can.Identifier
module Acceptance = Secpol_can.Acceptance
module Engine = Secpol_sim.Engine

let pad payload dlc =
  let len = String.length payload in
  if len = dlc then payload
  else if len > dlc then String.sub payload 0 dlc
  else payload ^ String.make (dlc - len) '\000'

let frame_of (m : Messages.t) payload =
  Frame.data (Identifier.standard m.id) (pad payload m.dlc)

let command_frame m cmd = frame_of m (String.make 1 cmd)

let command (frame : Frame.t) =
  if String.length frame.payload > 0 then Some frame.payload.[0] else None

let send node m payload = Node.send node (frame_of m payload)

let send_command node m cmd = Node.send node (command_frame m cmd)

let consumer_filters name =
  List.map
    (fun (m : Messages.t) -> Acceptance.exact (Identifier.standard m.id))
    (Messages.consumed_by name)

let software_filters = consumer_filters

let make_node ?(software_filters = true) bus ~name =
  let filters = if software_filters then consumer_filters name else [] in
  Node.create ~filters ~name bus

let start_periodic sim node (m : Messages.t) ~payload ~enabled =
  match m.period with
  | None -> ()
  | Some period ->
      Engine.every sim ~period (fun _sim ->
          if enabled () then ignore (send node m (payload ())))

let node_tag node =
  let name = Node.name node in
  match
    List.find_index (fun n -> n = name) Names.nodes
  with
  | Some i -> Char.chr (i + 1)
  | None -> '\000'

let diag_responder node (state : State.t) =
  ( Messages.diag_request,
    fun ~sender:_ _frame ->
      if state.State.mode = Modes.Remote_diagnostic then
        ignore
          (send node
             (Messages.find_exn Messages.diag_response)
             (String.make 1 (node_tag node))) )

let dispatch handlers _node ~sender (frame : Frame.t) =
  match frame.id with
  | Identifier.Standard id -> (
      match List.assoc_opt id handlers with
      | Some handler -> handler ~sender frame
      | None -> ())
  | Identifier.Extended _ -> ()
