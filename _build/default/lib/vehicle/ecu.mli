(** Shared plumbing for the ECU behaviour models.

    Every ECU is a CAN node with (a) software acceptance filters matching
    the message map's consumer sets, (b) periodic telemetry, and (c) an
    event handler over decoded commands.  The helpers here keep the eight
    ECU modules small and uniform. *)

val frame_of : Messages.t -> string -> Secpol_can.Frame.t
(** Build the message's frame, padding/truncating the payload to its DLC. *)

val command_frame : Messages.t -> char -> Secpol_can.Frame.t
(** One-command-byte frame (padded to the DLC). *)

val command : Secpol_can.Frame.t -> char option
(** First payload byte, if any. *)

val send : Secpol_can.Node.t -> Messages.t -> string -> bool
(** Build and transmit; result as {!Secpol_can.Node.send}. *)

val send_command : Secpol_can.Node.t -> Messages.t -> char -> bool

val software_filters : string -> Secpol_can.Acceptance.t list
(** Exact acceptance filters for every message the named node consumes —
    the firmware-configured filter bank the paper contrasts with the
    HPE. *)

val make_node :
  ?software_filters:bool -> Secpol_can.Bus.t -> name:string -> Secpol_can.Node.t
(** Node named after a {!Names} constant; [software_filters] (default
    [true]) installs the consumer filter bank. *)

val start_periodic :
  Secpol_sim.Engine.t ->
  Secpol_can.Node.t ->
  Messages.t ->
  payload:(unit -> string) ->
  enabled:(unit -> bool) ->
  unit
(** Emit the message at its map period while [enabled ()]; messages without
    a period are ignored. *)

val dispatch :
  (int * (sender:string -> Secpol_can.Frame.t -> unit)) list ->
  Secpol_can.Node.t ->
  sender:string ->
  Secpol_can.Frame.t ->
  unit
(** Route a received frame to the handler registered for its standard ID;
    unknown IDs are ignored (already filtered). *)

val diag_responder :
  Secpol_can.Node.t ->
  State.t ->
  int * (sender:string -> Secpol_can.Frame.t -> unit)
(** Handler entry for [diag_request]: in remote-diagnostic mode the ECU
    answers with a [diag_response] carrying its node tag; in any other
    mode the request is ignored (and the mode-scoped policy keeps it off
    the bus in the first place). *)
