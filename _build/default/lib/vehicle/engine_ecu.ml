module Engine = Secpol_sim.Engine

let create sim bus state =
  let node = Ecu.make_node bus ~name:Names.engine in
  let log msg = State.log state ~time:(Engine.now sim) msg in
  let handlers =
    [
      ( Messages.engine_command,
        fun ~sender:_ frame ->
          match Ecu.command frame with
          | Some c when c = Messages.cmd_disable ->
              if state.State.engine_running then begin
                state.State.engine_running <- false;
                state.State.speed_kmh <- 0.0;
                log "engine: stopped"
              end
          | Some c when c = Messages.cmd_enable ->
              if (not state.State.engine_running) && state.State.ev_ecu_enabled
              then begin
                state.State.engine_running <- true;
                log "engine: started"
              end
          | Some _ | None -> () );
      ( Messages.failsafe_enter,
        fun ~sender:_ _frame ->
          if state.State.engine_running then begin
            state.State.engine_running <- false;
            log "engine: shut down (fail-safe)"
          end );
    ]
    @ [ Ecu.diag_responder node state ]
  in
  Secpol_can.Node.set_on_receive node (Ecu.dispatch handlers);
  Ecu.start_periodic sim node
    (Messages.find_exn Messages.engine_status)
    ~payload:(fun () ->
      String.make 1 (if state.State.engine_running then '\001' else '\000'))
    ~enabled:(fun () -> state.State.engine_running);
  node
