(** Engine control unit: start/stop per [engine_command] (Table I threat 6
    deactivates it through a compromised sensor). *)

val create :
  Secpol_sim.Engine.t -> Secpol_can.Bus.t -> State.t -> Secpol_can.Node.t
