module Engine = Secpol_sim.Engine

let create sim bus state =
  let node = Ecu.make_node bus ~name:Names.eps in
  let log msg = State.log state ~time:(Engine.now sim) msg in
  let handlers =
    [
      ( Messages.eps_command,
        fun ~sender:_ frame ->
          match Ecu.command frame with
          | Some c when c = Messages.cmd_disable ->
              if state.State.eps_active then begin
                state.State.eps_active <- false;
                log "eps: assistance deactivated"
              end
          | Some c when c = Messages.cmd_enable ->
              if not state.State.eps_active then begin
                state.State.eps_active <- true;
                log "eps: assistance activated"
              end
          | Some _ | None -> () );
      ( Messages.failsafe_enter,
        fun ~sender:_ _frame ->
          (* steering assistance stays available in fail-safe *)
          if not state.State.eps_active then begin
            state.State.eps_active <- true;
            log "eps: forced active (fail-safe)"
          end );
    ]
    @ [ Ecu.diag_responder node state ]
  in
  Secpol_can.Node.set_on_receive node (Ecu.dispatch handlers);
  Ecu.start_periodic sim node
    (Messages.find_exn Messages.eps_status)
    ~payload:(fun () ->
      String.make 1 (if state.State.eps_active then '\001' else '\000') ^ "\000")
    ~enabled:(fun () -> true);
  node
