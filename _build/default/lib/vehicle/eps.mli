(** Electronic power steering ECU: assistance on/off per [eps_command]
    (Table I threat 5 deactivates it from a compromised node). *)

val create :
  Secpol_sim.Engine.t -> Secpol_can.Bus.t -> State.t -> Secpol_can.Node.t
