module Engine = Secpol_sim.Engine

let now sim = Engine.now sim

let create sim bus state =
  let node = Ecu.make_node bus ~name:Names.ev_ecu in
  let log msg = State.log state ~time:(now sim) msg in
  let handlers =
    [
      ( Messages.ecu_command,
        fun ~sender:_ frame ->
          match Ecu.command frame with
          | Some c when c = Messages.cmd_disable ->
              if state.State.ev_ecu_enabled then begin
                state.State.ev_ecu_enabled <- false;
                state.State.speed_kmh <- 0.0;
                log "ev-ecu: propulsion disabled"
              end
          | Some c when c = Messages.cmd_enable ->
              if not state.State.ev_ecu_enabled then begin
                state.State.ev_ecu_enabled <- true;
                log "ev-ecu: propulsion enabled"
              end
          | Some _ | None -> () );
      ( Messages.obstacle_warning,
        fun ~sender:_ _frame ->
          if state.State.speed_kmh > 0.0 then begin
            state.State.speed_kmh <- 0.0;
            log "ev-ecu: emergency stop (obstacle)"
          end );
      ( Messages.airbag_deploy,
        fun ~sender:_ _frame ->
          if state.State.ev_ecu_enabled then begin
            state.State.ev_ecu_enabled <- false;
            state.State.speed_kmh <- 0.0;
            log "ev-ecu: propulsion cut (airbag deployment)"
          end );
      ( Messages.failsafe_enter,
        fun ~sender:_ _frame ->
          if state.State.speed_kmh > 0.0 then begin
            state.State.speed_kmh <- 0.0;
            log "ev-ecu: controlled stop (fail-safe)"
          end );
    ]
    @ [ Ecu.diag_responder node state ]
  in
  Secpol_can.Node.set_on_receive node (Ecu.dispatch handlers);
  Ecu.start_periodic sim node
    (Messages.find_exn Messages.ecu_status)
    ~payload:(fun () ->
      String.make 1 (if state.State.ev_ecu_enabled then '\001' else '\000'))
    ~enabled:(fun () -> true);
  node
