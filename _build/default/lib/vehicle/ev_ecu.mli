(** EV-ECU behaviour model: the propulsion controller.

    Acts on [ecu_command] (enable/disable propulsion), reacts to obstacle
    warnings with an emergency stop, and shuts down on airbag deployment.
    Its disablement during normal driving is the headline attack of the
    paper's §V.A. *)

val create :
  Secpol_sim.Engine.t -> Secpol_can.Bus.t -> State.t -> Secpol_can.Node.t
