module Trace = Secpol_can.Trace
module Frame = Secpol_can.Frame
module Identifier = Secpol_can.Identifier

type kind =
  | Unknown_id of int
  | Unapproved_source of { msg_id : int; sender : string }
  | Impersonation of { node : string; alerts : int }
  | Policy_violation of { node : string; blocks : int }
  | Flood of { msg_id : int; observed : int; expected : int }

type incident = { time : float; kind : kind }

type t = {
  car : Car.t;
  mutable seen_entries : int;
  mutable seen_alerts : (string * int) list;
  mutable seen_blocks : (string * int) list;
  mutable last_scan : float;
  mutable log : incident list; (* newest first *)
}

let create car =
  {
    car;
    seen_entries = 0;
    seen_alerts = List.map (fun (n, _) -> (n, 0)) car.Car.hpes;
    seen_blocks = List.map (fun (n, _) -> (n, 0)) car.Car.hpes;
    last_scan = Secpol_sim.Engine.now car.Car.sim;
    log = [];
  }

(* How often we would raise the same (deduplicated) incident: once per scan. *)
let dedup kinds =
  List.fold_left (fun acc k -> if List.mem k acc then acc else k :: acc) [] kinds
  |> List.rev

let flood_factor = 3

let scan t =
  let now = Secpol_sim.Engine.now t.car.Car.sim in
  let entries = Trace.entries (Car.trace t.car) in
  let fresh = List.filteri (fun i _ -> i >= t.seen_entries) entries in
  t.seen_entries <- List.length entries;
  let window = now -. t.last_scan in
  t.last_scan <- now;
  let tx_counts : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let trace_kinds =
    List.filter_map
      (fun (e : Trace.entry) ->
        match (e.event, e.frame.Frame.id) with
        | Trace.Tx_ok, Identifier.Standard id -> (
            Hashtbl.replace tx_counts id
              (1 + Option.value ~default:0 (Hashtbl.find_opt tx_counts id));
            match Messages.find id with
            | None -> Some (Unknown_id id)
            | Some m ->
                if List.mem e.node m.producers then None
                else Some (Unapproved_source { msg_id = id; sender = e.node }))
        | Trace.Tx_ok, Identifier.Extended _ ->
            Some (Unknown_id (Identifier.raw e.frame.Frame.id))
        | _ -> None)
      fresh
  in
  let flood_kinds =
    if window <= 0.0 then []
    else
      Hashtbl.fold
        (fun id count acc ->
          match Messages.find id with
          | Some m -> (
              match m.period with
              | Some period ->
                  let expected =
                    max 1 (int_of_float (ceil (window /. period)))
                  in
                  if count > flood_factor * expected then
                    Flood { msg_id = id; observed = count; expected } :: acc
                  else acc
              | None -> acc)
          | None -> acc)
        tx_counts []
  in
  let hpe_kinds =
    List.concat_map
      (fun (name, hpe) ->
        let alerts = Secpol_hpe.Engine.spoof_alerts hpe in
        let blocks = Secpol_hpe.Engine.write_blocks hpe in
        let prev_alerts =
          Option.value ~default:0 (List.assoc_opt name t.seen_alerts)
        in
        let prev_blocks =
          Option.value ~default:0 (List.assoc_opt name t.seen_blocks)
        in
        t.seen_alerts <-
          (name, alerts) :: List.remove_assoc name t.seen_alerts;
        t.seen_blocks <-
          (name, blocks) :: List.remove_assoc name t.seen_blocks;
        (if alerts > prev_alerts then
           [ Impersonation { node = name; alerts = alerts - prev_alerts } ]
         else [])
        @
        if blocks > prev_blocks then
          [ Policy_violation { node = name; blocks = blocks - prev_blocks } ]
        else [])
      t.car.Car.hpes
  in
  let fresh_incidents =
    List.map
      (fun kind -> { time = now; kind })
      (dedup (trace_kinds @ flood_kinds @ hpe_kinds))
  in
  t.log <- List.rev_append fresh_incidents t.log;
  fresh_incidents

let incidents t = List.rev t.log

let kind_name = function
  | Unknown_id _ -> "unknown-id"
  | Unapproved_source _ -> "unapproved-source"
  | Impersonation _ -> "impersonation"
  | Policy_violation _ -> "policy-violation"
  | Flood _ -> "flood"

let pp_incident ppf i =
  Format.fprintf ppf "[%8.3f] " i.time;
  match i.kind with
  | Unknown_id id -> Format.fprintf ppf "unknown message id 0x%x on the bus" id
  | Unapproved_source { msg_id; sender } ->
      Format.fprintf ppf "%s transmitted 0x%x, which it is not designed to produce"
        sender msg_id
  | Impersonation { node; alerts } ->
      Format.fprintf ppf "%d frame(s) impersonating %s" alerts node
  | Policy_violation { node; blocks } ->
      Format.fprintf ppf "%s attempted %d transmission(s) outside its policy"
        node blocks
  | Flood { msg_id; observed; expected } ->
      Format.fprintf ppf "0x%x flooding: %d frames where ~%d expected" msg_id
        observed expected
