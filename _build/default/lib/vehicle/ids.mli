(** Intrusion detection over the car's bus trace and HPE counters.

    Enforcement decisions double as detection signal: a write block means a
    node tried to transmit outside its policy; a spoof alert means somebody
    used an identity they don't own.  The IDS folds those signals together
    with trace anomalies (unknown IDs, undesigned senders, frequency
    anomalies) into classified incidents — the observability the OEM's
    security operations centre would consume. *)

type kind =
  | Unknown_id of int
      (** a frame whose ID is not in the message map at all *)
  | Unapproved_source of { msg_id : int; sender : string }
      (** transmitted by a station that is not a designed producer *)
  | Impersonation of { node : string; alerts : int }
      (** the node's HPE flagged frames arriving under its exclusive IDs *)
  | Policy_violation of { node : string; blocks : int }
      (** the node's HPE write filter blocked its own transmissions — its
          firmware is trying to exceed policy *)
  | Flood of { msg_id : int; observed : int; expected : int }
      (** a periodic message far above its design rate in the scan window *)

type incident = { time : float; kind : kind }
(** [time] is the simulation time of the scan that raised it. *)

type t

val create : Car.t -> t
(** Attach to a car.  Scanning is incremental: each {!scan} covers the
    trace since the previous one. *)

val scan : t -> incident list
(** Analyse new activity; returns (and records) fresh incidents. *)

val incidents : t -> incident list
(** Everything raised so far, chronological. *)

val kind_name : kind -> string

val pp_incident : Format.formatter -> incident -> unit
