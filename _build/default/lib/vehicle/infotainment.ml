module Engine = Secpol_sim.Engine
module Node = Secpol_can.Node

(* last displayed speed per node name; keyed because nodes are created per
   car instance *)
let display_cache : (string, float) Hashtbl.t = Hashtbl.create 4

let create sim bus state =
  let node = Ecu.make_node bus ~name:Names.infotainment in
  let log msg = State.log state ~time:(Engine.now sim) msg in
  let handlers =
    [
      ( Messages.sw_install,
        fun ~sender frame ->
          match Ecu.command frame with
          | Some _ ->
              state.State.software_installs <- state.State.software_installs + 1;
              log
                (Printf.sprintf "infotainment: software installed (from %s)"
                   sender)
          | None -> () );
      ( Messages.accel_status,
        fun ~sender:_ frame ->
          match Ecu.command frame with
          | Some b ->
              Hashtbl.replace display_cache (Node.name node)
                (float_of_int (Char.code b))
          | None -> () );
    ]
  in
  Node.set_on_receive node (Ecu.dispatch handlers);
  Ecu.start_periodic sim node
    (Messages.find_exn Messages.media_status)
    ~payload:(fun () -> "\001")
    ~enabled:(fun () -> true);
  node

let displayed_speed node = Hashtbl.find_opt display_cache (Node.name node)
