(** Infotainment unit: media display, browser, status mirror.

    On the CAN side it consumes status telemetry and the [sw_install]
    trigger (designed for remote-diagnostic updates from telematics;
    Table I threat 11 abuses it).  Its application side — browser and
    package installs under the software policy engine — is modelled by
    [Secpol.Infotainment_os] on top of this node. *)

val create :
  Secpol_sim.Engine.t -> Secpol_can.Bus.t -> State.t -> Secpol_can.Node.t

val displayed_speed : Secpol_can.Node.t -> float option
(** Last speed shown on the driver display, from accel telemetry. *)
