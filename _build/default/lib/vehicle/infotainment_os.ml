module Sel = Secpol_selinux
module Context = Sel.Context
module Te = Sel.Te_rule
module Pm = Sel.Policy_module

type t = {
  server : Sel.Server.t;
  store : Pm.store;
  node : Secpol_can.Node.t;
  state : State.t;
  browser : Context.t;
}

let types =
  [
    "media_t";
    "installer_t";
    "vehicle_ctl_t";
    "system_t";
    "media_content_t";
    "installer_exec_t";
    "system_storage_t";
    "can0_t";
  ]

(* Factory policy: note the sloppy grants that enable the Table I threat-11
   chain — browser can execute + transition into the installer, and the
   installer can write the CAN socket. *)
let base_v1 =
  Pm.make ~name:"base" ~version:1 ~types
    ~attributes:[ ("app_domain", [ "media_t"; "installer_t" ]) ]
    ~rules:
      [
        Te.allow ~source:"media_t" ~target:"media_content_t" ~cls:"file"
          [ "read"; "write" ];
        Te.allow ~source:"media_t" ~target:"installer_exec_t" ~cls:"file"
          [ "read"; "execute" ];
        Te.allow ~source:"media_t" ~target:"installer_t" ~cls:"process"
          [ "transition" ];
        Te.allow ~source:"installer_t" ~target:"system_storage_t" ~cls:"file"
          [ "read"; "write" ];
        Te.allow ~source:"installer_t" ~target:"can0_t" ~cls:"can_socket"
          [ "read"; "write" ];
        Te.allow ~source:"vehicle_ctl_t" ~target:"can0_t" ~cls:"can_socket"
          [ "create"; "read"; "write"; "setfilter" ];
        Te.allow ~source:"media_t" ~target:"can0_t" ~cls:"can_socket" [ "read" ];
        Te.allow ~source:"system_t" ~target:"system_storage_t" ~cls:"file"
          [ "read"; "write"; "unlink" ];
      ]
    ()

(* The policy update: same module name, version 2; the escalation chain is
   gone and a neverallow pins it. *)
let base_v2 =
  Pm.make ~name:"base" ~version:2 ~types
    ~attributes:[ ("app_domain", [ "media_t"; "installer_t" ]) ]
    ~rules:
      [
        Te.allow ~source:"media_t" ~target:"media_content_t" ~cls:"file"
          [ "read"; "write" ];
        Te.allow ~source:"installer_t" ~target:"system_storage_t" ~cls:"file"
          [ "read"; "write" ];
        Te.allow ~source:"vehicle_ctl_t" ~target:"can0_t" ~cls:"can_socket"
          [ "create"; "read"; "write"; "setfilter" ];
        Te.allow ~source:"media_t" ~target:"can0_t" ~cls:"can_socket" [ "read" ];
        Te.allow ~source:"system_t" ~target:"system_storage_t" ~cls:"file"
          [ "read"; "write"; "unlink" ];
        Te.neverallow ~source:"media_t" ~target:"installer_t" ~cls:"process"
          [ "transition" ];
        Te.neverallow ~source:"app_domain" ~target:"can0_t" ~cls:"can_socket"
          [ "write" ];
      ]
    ()

let ctx type_ = Context.make ~user:"user_u" ~role:"user_r" ~type_

let obj type_ = Context.make ~user:"system_u" ~role:"object_r" ~type_

let create ?(hardened = false) state node =
  match Pm.store ~base:base_v1 with
  | Error _ as e -> e
  | Ok store -> (
      let t =
        {
          server = Sel.Server.create (Pm.db store);
          store;
          node;
          state;
          browser = ctx "media_t";
        }
      in
      if not hardened then Ok t
      else
        match Pm.load store base_v2 with
        | Error _ as e -> e
        | Ok db ->
            Sel.Server.reload t.server db;
            Ok t)

let create_exn ?hardened state node =
  match create ?hardened state node with
  | Ok t -> t
  | Error es -> invalid_arg ("Infotainment_os.create_exn: " ^ String.concat "; " es)

let server t = t.server

let browser_context t = t.browser

let browse t =
  Sel.Server.check t.server ~source:t.browser ~target:(obj "media_content_t")
    ~cls:"file" "read"

let exploit_browser t =
  Sel.Server.transition t.server ~source:t.browser
    ~target:(obj "installer_exec_t") ~new_type:"installer_t"

let install_package t ~as_ =
  let allowed =
    Sel.Server.check t.server ~source:as_ ~target:(obj "system_storage_t")
      ~cls:"file" "write"
  in
  if allowed then begin
    t.state.State.software_installs <- t.state.State.software_installs + 1;
    true
  end
  else false

let send_can t ~as_ frame =
  let allowed =
    Sel.Server.check t.server ~source:as_ ~target:(obj "can0_t")
      ~cls:"can_socket" "write"
  in
  allowed && Secpol_can.Node.send t.node frame

let apply_hardening t =
  match Pm.load t.store base_v2 with
  | Error _ as e -> e
  | Ok db ->
      Sel.Server.reload t.server db;
      Ok ()

let denial_count t = Sel.Server.denial_count t.server
