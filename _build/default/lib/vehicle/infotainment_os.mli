(** The infotainment unit's application environment under the software
    policy engine (the paper's "SELinux-based policy enforcement").

    Domains: [media_t] (browser / media player), [installer_t] (package
    installer), [vehicle_ctl_t] (the daemon allowed to touch the CAN
    socket), [system_t].  The factory base policy is sloppy: the browser
    may execute the installer and transition into it, and the installer may
    write the CAN socket — the escalation chain of Table I threat 11
    ("exploit to gain access to higher control level").

    The {!hardening} module is the paper's policy-update countermeasure: a
    new base-policy version that removes the browser's transition right and
    the installer's CAN access. *)

type t

val create :
  ?hardened:bool -> State.t -> Secpol_can.Node.t -> (t, string list) result
(** [hardened] (default [false]) applies {!hardening} at build time. *)

val create_exn : ?hardened:bool -> State.t -> Secpol_can.Node.t -> t

val server : t -> Secpol_selinux.Server.t

val browser_context : t -> Secpol_selinux.Context.t
(** [user_u:user_r:media_t]. *)

val browse : t -> bool
(** Benign browsing: [media_t] reads media content.  Allowed in both
    policy versions. *)

val exploit_browser : t -> (Secpol_selinux.Context.t, string) result
(** The browser exploit: execute the installer binary and transition
    [media_t] -> [installer_t].  Succeeds only if the policy grants the
    chain. *)

val install_package : t -> as_:Secpol_selinux.Context.t -> bool
(** Write a package into system storage (increments the car state's
    install counter when permitted). *)

val send_can :
  t -> as_:Secpol_selinux.Context.t -> Secpol_can.Frame.t -> bool
(** CAN transmission from an application domain: checked against
    [can_socket write], then handed to the node (whose HPE write gate, if
    any, still applies). *)

val apply_hardening : t -> (unit, string list) result
(** Load the hardened base policy (version 2) at run time — the
    post-deployment policy update. *)

val denial_count : t -> int
