type t = {
  id : int;
  name : string;
  asset : string;
  producers : string list;
  consumers : string list;
  period : float option;
  dlc : int;
  modes : Modes.t list;
}

let airbag_deploy = 0x010

let failsafe_enter = 0x020

let brake_status = 0x050

let accel_status = 0x060

let transmission_status = 0x070

let obstacle_warning = 0x080

let ecu_command = 0x100

let ecu_status = 0x110

let eps_command = 0x120

let eps_status = 0x130

let engine_command = 0x140

let engine_status = 0x150

let lock_command = 0x200

let door_status = 0x210

let modem_command = 0x300

let gps_position = 0x310

let tracking_report = 0x320

let media_status = 0x400

let sw_install = 0x410

let diag_request = 0x500

let diag_response = 0x510

let cmd_disable = '\000'

let cmd_enable = '\001'

let cmd_lock = '\000'

let cmd_unlock = '\001'

open Names

let msg ?period ?(dlc = 1) ?(modes = []) ~id ~name ~asset ~producers ~consumers () =
  { id; name; asset; producers; consumers; period; dlc; modes }

let all =
  [
    (* Safety-critical signalling: dominant (lowest) identifiers. *)
    msg ~id:airbag_deploy ~name:"airbag_deploy" ~asset:asset_safety_critical
      ~producers:[ safety ]
      ~consumers:[ ev_ecu; door_locks; telematics ]
      ();
    msg ~id:failsafe_enter ~name:"failsafe_enter" ~asset:asset_safety_critical
      ~producers:[ safety ]
      ~consumers:[ ev_ecu; eps; engine; door_locks; telematics; infotainment ]
      ();
    (* Sensor telemetry: periodic broadcast. *)
    msg ~id:brake_status ~name:"brake_status" ~asset:sensors ~period:0.02 ~dlc:2
      ~producers:[ sensors ]
      ~consumers:[ ev_ecu; engine; eps; safety ]
      ();
    msg ~id:accel_status ~name:"accel_status" ~asset:sensors ~period:0.02 ~dlc:2
      ~producers:[ sensors ]
      ~consumers:[ ev_ecu; engine; infotainment ]
      ();
    msg ~id:transmission_status ~name:"transmission_status" ~asset:sensors
      ~period:0.1 ~dlc:2
      ~producers:[ sensors ]
      ~consumers:[ ev_ecu; engine; infotainment ]
      ();
    msg ~id:obstacle_warning ~name:"obstacle_warning" ~asset:sensors
      ~producers:[ sensors ]
      ~consumers:[ ev_ecu; safety ]
      ();
    (* Propulsion control. *)
    msg ~id:ecu_command ~name:"ecu_command" ~asset:ev_ecu
      ~producers:[ safety; door_locks ]
      ~consumers:[ ev_ecu ]
      ();
    msg ~id:ecu_status ~name:"ecu_status" ~asset:ev_ecu ~period:0.1 ~dlc:4
      ~producers:[ ev_ecu ]
      ~consumers:[ infotainment; telematics; safety ]
      ();
    (* Steering. *)
    msg ~id:eps_command ~name:"eps_command" ~asset:eps
      ~producers:[ ev_ecu ]
      ~consumers:[ eps ]
      ();
    msg ~id:eps_status ~name:"eps_status" ~asset:eps ~period:0.1 ~dlc:2
      ~producers:[ eps ]
      ~consumers:[ ev_ecu; infotainment ]
      ();
    (* Engine. *)
    msg ~id:engine_command ~name:"engine_command" ~asset:engine
      ~producers:[ ev_ecu; safety ]
      ~consumers:[ engine ]
      ();
    msg ~id:engine_status ~name:"engine_status" ~asset:engine ~period:0.1 ~dlc:4
      ~producers:[ engine ]
      ~consumers:[ ev_ecu; infotainment; telematics ]
      ();
    (* Door locks. *)
    msg ~id:lock_command ~name:"lock_command" ~asset:door_locks
      ~producers:[ telematics; safety ]
      ~consumers:[ door_locks ]
      ();
    msg ~id:door_status ~name:"door_status" ~asset:door_locks ~period:0.5
      ~producers:[ door_locks ]
      ~consumers:[ safety; infotainment; telematics ]
      ();
    (* Connectivity. *)
    msg ~id:modem_command ~name:"modem_command" ~asset:asset_connectivity
      ~producers:[ safety ]
      ~consumers:[ telematics ]
      ();
    msg ~id:gps_position ~name:"gps_position" ~asset:asset_connectivity
      ~period:1.0 ~dlc:8
      ~producers:[ telematics ]
      ~consumers:[ infotainment; safety ]
      ();
    msg ~id:tracking_report ~name:"tracking_report" ~asset:asset_connectivity
      ~period:5.0 ~dlc:8
      ~producers:[ telematics ]
      ~consumers:[]
      ();
    (* Infotainment. *)
    msg ~id:media_status ~name:"media_status" ~asset:infotainment ~period:1.0
      ~producers:[ infotainment ]
      ~consumers:[ telematics ]
      ();
    msg ~id:sw_install ~name:"sw_install" ~asset:infotainment
      ~producers:[ telematics ]
      ~consumers:[ infotainment ]
      ~modes:[ Modes.Remote_diagnostic ]
      ();
    (* Remote diagnostics. *)
    msg ~id:diag_request ~name:"diag_request" ~asset:asset_safety_critical
      ~dlc:8
      ~producers:[ telematics ]
      ~consumers:[ ev_ecu; eps; engine; door_locks; safety ]
      ~modes:[ Modes.Remote_diagnostic ]
      ();
    msg ~id:diag_response ~name:"diag_response" ~asset:asset_safety_critical
      ~dlc:8
      ~producers:[ ev_ecu; eps; engine; door_locks; safety ]
      ~consumers:[ telematics ]
      ~modes:[ Modes.Remote_diagnostic ]
      ();
  ]

let find id = List.find_opt (fun m -> m.id = id) all

let find_exn id =
  match find id with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Messages.find_exn: unknown id 0x%x" id)

let by_name name = List.find_opt (fun m -> m.name = name) all

let produced_by node = List.filter (fun m -> List.mem node m.producers) all

let consumed_by node = List.filter (fun m -> List.mem node m.consumers) all

let bindings =
  List.map (fun m -> { Secpol_hpe.Config.msg_id = m.id; asset = m.asset }) all

let validate () =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let ids = List.map (fun m -> m.id) all in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    err "duplicate message ids";
  let names_ = List.map (fun m -> m.name) all in
  if List.length (List.sort_uniq compare names_) <> List.length names_ then
    err "duplicate message names";
  List.iter
    (fun m ->
      if m.id < 0 || m.id > 0x7FF then err "message %s id out of range" m.name;
      if m.dlc < 0 || m.dlc > 8 then err "message %s dlc out of range" m.name;
      if not (List.mem m.asset Names.assets) then
        err "message %s references unknown asset %s" m.name m.asset;
      if m.producers = [] then err "message %s has no producers" m.name;
      List.iter
        (fun n ->
          if not (List.mem n Names.nodes) then
            err "message %s producer %s unknown" m.name n)
        m.producers;
      List.iter
        (fun n ->
          if not (List.mem n Names.nodes) then
            err "message %s consumer %s unknown" m.name n)
        m.consumers)
    all;
  List.rev !errors
