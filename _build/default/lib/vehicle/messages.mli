(** The car's CAN message map.

    Every message ID is bound to the asset whose state or actuation it
    carries, the nodes designed to produce it, and the nodes that consume
    it.  The HPE approved lists, the ECU behaviour models and the traffic
    generator are all driven from this single map, so the three can never
    disagree. *)

type t = {
  id : int;  (** standard 11-bit CAN ID; lower = higher priority *)
  name : string;
  asset : string;  (** asset this message reads or actuates *)
  producers : string list;  (** nodes designed to send it *)
  consumers : string list;  (** nodes that act on it *)
  period : float option;  (** seconds, for periodic telemetry; [None] = event-driven *)
  dlc : int;
  modes : Modes.t list;  (** modes in which the message is designed to flow;
                             [[]] = every mode *)
}

(** {2 Message IDs} *)

val airbag_deploy : int

val failsafe_enter : int

val brake_status : int

val accel_status : int

val transmission_status : int

val obstacle_warning : int

val ecu_command : int
(** Enable/disable propulsion (the spoofing target of §V.A). *)

val ecu_status : int

val eps_command : int

val eps_status : int

val engine_command : int

val engine_status : int

val lock_command : int

val door_status : int

val modem_command : int

val gps_position : int

val tracking_report : int

val media_status : int

val sw_install : int
(** Infotainment software installation trigger. *)

val diag_request : int

val diag_response : int

(** {2 Command payload bytes} *)

val cmd_disable : char

val cmd_enable : char

val cmd_lock : char

val cmd_unlock : char

(** {2 The map} *)

val all : t list

val find : int -> t option

val find_exn : int -> t

val by_name : string -> t option

val produced_by : string -> t list
(** Messages a node is designed to send. *)

val consumed_by : string -> t list
(** Messages a node is designed to act on. *)

val bindings : Secpol_hpe.Config.binding list
(** The full map as HPE policy bindings. *)

val validate : unit -> string list
(** Internal consistency: unique ids and names, known producer/consumer
    nodes, known assets.  Empty list = healthy (asserted by tests). *)
