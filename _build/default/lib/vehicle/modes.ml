type t = Normal | Remote_diagnostic | Fail_safe

let all = [ Normal; Remote_diagnostic; Fail_safe ]

let name = function
  | Normal -> "normal"
  | Remote_diagnostic -> "remote_diagnostic"
  | Fail_safe -> "fail_safe"

let of_name = function
  | "normal" -> Some Normal
  | "remote_diagnostic" -> Some Remote_diagnostic
  | "fail_safe" -> Some Fail_safe
  | _ -> None

let display = function
  | Normal -> "Normal"
  | Remote_diagnostic -> "Remote Diagnostic"
  | Fail_safe -> "Fail-safe"

let pp ppf t = Format.pp_print_string ppf (display t)
