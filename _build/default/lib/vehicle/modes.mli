(** The connected car's operating modes (paper Table I).

    Core functionality adjusts per mode: Normal covers driving and parking;
    Remote-diagnostic is reserved for the manufacturer or an authorised
    engineer; Fail-safe is reserved for emergencies. *)

type t = Normal | Remote_diagnostic | Fail_safe

val all : t list

val name : t -> string
(** The policy-DSL mode identifier: ["normal"], ["remote_diagnostic"],
    ["fail_safe"]. *)

val of_name : string -> t option

val display : t -> string
(** Human-readable, e.g. ["Remote Diagnostic"]. *)

val pp : Format.formatter -> t -> unit
