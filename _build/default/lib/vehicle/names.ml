let ev_ecu = "ev_ecu"

let eps = "eps"

let engine = "engine"

let telematics = "telematics"

let infotainment = "infotainment"

let door_locks = "door_locks"

let safety = "safety"

let sensors = "sensors"

let nodes =
  [ ev_ecu; eps; engine; telematics; infotainment; door_locks; safety; sensors ]

let asset_connectivity = "connectivity"

let asset_safety_critical = "safety_critical"

let assets =
  [
    ev_ecu;
    eps;
    engine;
    asset_connectivity;
    infotainment;
    door_locks;
    asset_safety_critical;
    sensors;
  ]

let asset_of_node node =
  if node = telematics then asset_connectivity
  else if node = safety then asset_safety_critical
  else if List.mem node nodes then node
  else invalid_arg (Printf.sprintf "Names.asset_of_node: unknown node %S" node)

let node_of_asset asset =
  if asset = asset_connectivity then telematics
  else if asset = asset_safety_critical then safety
  else if List.mem asset nodes then asset
  else invalid_arg (Printf.sprintf "Names.node_of_asset: unknown asset %S" asset)

let ep_door_locks = "ep_door_locks"

let ep_safety_critical = "ep_safety_critical"

let ep_sensors = "ep_sensors"

let ep_connectivity = "ep_connectivity"

let ep_any_node = "ep_any_node"

let ep_ev_ecu = "ep_ev_ecu"

let ep_infotainment = "ep_infotainment"

let ep_emergency = "ep_emergency"

let ep_air_bags = "ep_air_bags"

let ep_media_browser = "ep_media_browser"

let ep_manual_open = "ep_manual_open"

let entry_points =
  [
    ep_door_locks;
    ep_safety_critical;
    ep_sensors;
    ep_connectivity;
    ep_any_node;
    ep_ev_ecu;
    ep_infotainment;
    ep_emergency;
    ep_air_bags;
    ep_media_browser;
    ep_manual_open;
  ]

let nodes_of_entry_point ep =
  if ep = ep_door_locks then [ door_locks ]
  else if ep = ep_safety_critical then [ safety ]
  else if ep = ep_sensors then [ sensors ]
  else if ep = ep_connectivity then [ telematics ]
  else if ep = ep_any_node then nodes
  else if ep = ep_ev_ecu then [ ev_ecu ]
  else if ep = ep_infotainment then [ infotainment ]
  else if ep = ep_emergency then [ safety ]
  else if ep = ep_air_bags then [ safety ]
  else if ep = ep_media_browser then [ infotainment ]
  else if ep = ep_manual_open then [ door_locks ]
  else invalid_arg (Printf.sprintf "Names.nodes_of_entry_point: unknown %S" ep)
