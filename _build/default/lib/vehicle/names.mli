(** Canonical identifiers for the car's nodes and assets.

    Node names double as policy subjects; asset names are the policy
    objects and the threat-model asset ids.  Using these constants
    everywhere keeps the threat model, the policy text and the simulation
    consistent. *)

(** {2 CAN nodes (Fig. 2)} *)

val ev_ecu : string

val eps : string

val engine : string

val telematics : string
(** The 3G/4G/WiFi unit. *)

val infotainment : string

val door_locks : string

val safety : string
(** Safety-critical controller: airbags, alarm, fail-safe logic. *)

val sensors : string
(** Acceleration / brake / transmission sensor cluster. *)

val nodes : string list
(** All eight, in Fig. 2 order. *)

(** {2 Assets (Table I)} *)

val asset_connectivity : string
(** The "3G/4G/WiFi" asset, hosted by the telematics node. *)

val asset_safety_critical : string

val assets : string list

val asset_of_node : string -> string
(** Which asset a node hosts.  @raise Invalid_argument on unknown nodes. *)

val node_of_asset : string -> string
(** Inverse of {!asset_of_node}. *)

(** {2 Entry points (Table I)} *)

val ep_door_locks : string

val ep_safety_critical : string

val ep_sensors : string

val ep_connectivity : string
(** "3G/4G/WiFi" as an attack entry point. *)

val ep_any_node : string

val ep_ev_ecu : string

val ep_infotainment : string

val ep_emergency : string

val ep_air_bags : string

val ep_media_browser : string

val ep_manual_open : string

val entry_points : string list

val nodes_of_entry_point : string -> string list
(** The CAN node(s) an attacker reaches through an entry point; e.g.
    [ep_media_browser] -> the infotainment node, [ep_any_node] -> every
    node.  @raise Invalid_argument on unknown entry points. *)
