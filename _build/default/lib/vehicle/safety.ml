module Engine = Secpol_sim.Engine
module Node = Secpol_can.Node

let now node = Engine.now (Secpol_can.Bus.sim (Node.bus node))

let enter_failsafe node (state : State.t) reason =
  if not state.failsafe_latched then begin
    state.failsafe_latched <- true;
    state.mode <- Modes.Fail_safe;
    State.log state ~time:(now node)
      (Printf.sprintf "safety: fail-safe entered (%s)" reason);
    ignore
      (Ecu.send_command node
         (Messages.find_exn Messages.failsafe_enter)
         '\001');
    (* rescue access: unlock the doors *)
    ignore
      (Ecu.send_command node
         (Messages.find_exn Messages.lock_command)
         Messages.cmd_unlock)
  end

let deploy_airbag node (state : State.t) reason =
  State.log state ~time:(now node)
    (Printf.sprintf "safety: airbag deployed (%s)" reason);
  ignore
    (Ecu.send_command node (Messages.find_exn Messages.airbag_deploy) '\001');
  enter_failsafe node state reason

let trigger_crash node state = deploy_airbag node state "crash"

let arm_alarm node (state : State.t) =
  if not state.alarm_armed then begin
    state.alarm_armed <- true;
    State.log state ~time:(now node) "safety: alarm armed (immobilised)";
    ignore
      (Ecu.send_command node
         (Messages.find_exn Messages.ecu_command)
         Messages.cmd_disable)
  end

let disarm_alarm node (state : State.t) =
  if state.alarm_armed then begin
    state.alarm_armed <- false;
    State.log state ~time:(now node) "safety: alarm disarmed";
    ignore
      (Ecu.send_command node
         (Messages.find_exn Messages.ecu_command)
         Messages.cmd_enable)
  end

let create sim bus state =
  let node = Ecu.make_node bus ~name:Names.safety in
  ignore sim;
  let handlers =
    [
      ( Messages.brake_status,
        fun ~sender:_ frame ->
          match Ecu.command frame with
          | Some c when c = Sensors.crash_signal ->
              deploy_airbag node state "crash-magnitude deceleration"
          | Some _ | None -> () );
      ( Messages.obstacle_warning,
        fun ~sender:_ frame ->
          (* Immediate-reaction case from §V.A: stationary obstacle while
             manoeuvring at low speed -> cut propulsion. *)
          match Ecu.command frame with
          | Some d
            when Char.code d < 2
                 && state.State.speed_kmh > 0.0
                 && state.State.speed_kmh < 10.0 ->
              ignore
                (Ecu.send_command node
                   (Messages.find_exn Messages.ecu_command)
                   Messages.cmd_disable)
          | Some _ | None -> () );
    ]
    @ [ Ecu.diag_responder node state ]
  in
  Node.set_on_receive node (Ecu.dispatch handlers);
  node
