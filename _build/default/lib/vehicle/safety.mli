(** Safety-critical controller: airbags, alarm/immobiliser and the
    fail-safe chain.

    On a crash-magnitude brake reading it deploys the airbag and enters
    fail-safe (so a *spoofed* crash reading is Table I threat 15); the
    alarm immobilises the drivetrain when armed (disabling it is threat
    16). *)

val create :
  Secpol_sim.Engine.t -> Secpol_can.Bus.t -> State.t -> Secpol_can.Node.t

val trigger_crash : Secpol_can.Node.t -> State.t -> unit
(** Physical crash: deploy airbag, broadcast fail-safe entry. *)

val arm_alarm : Secpol_can.Node.t -> State.t -> unit
(** Arm the alarm and immobilise the drivetrain (parked & locked car). *)

val disarm_alarm : Secpol_can.Node.t -> State.t -> unit
(** Disarm and lift the immobiliser. *)
