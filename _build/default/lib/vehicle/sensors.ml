module Engine = Secpol_sim.Engine

let crash_signal = '\255'

let byte_of_speed state =
  Char.chr (min 255 (int_of_float (max 0.0 state.State.speed_kmh)))

let create sim bus state =
  let node = Ecu.make_node bus ~name:Names.sensors in
  let running () = state.State.engine_running in
  Ecu.start_periodic sim node
    (Messages.find_exn Messages.brake_status)
    ~payload:(fun () -> "\000\000")
    ~enabled:running;
  Ecu.start_periodic sim node
    (Messages.find_exn Messages.accel_status)
    ~payload:(fun () -> String.make 1 (byte_of_speed state) ^ "\000")
    ~enabled:running;
  Ecu.start_periodic sim node
    (Messages.find_exn Messages.transmission_status)
    ~payload:(fun () -> "\001\000")
    ~enabled:running;
  node

let emit_obstacle node ~distance_m =
  let payload = String.make 1 (Char.chr (min 255 (max 0 distance_m))) in
  Ecu.send node (Messages.find_exn Messages.obstacle_warning) payload
