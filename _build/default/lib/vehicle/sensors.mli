(** Sensor cluster ECU: periodic brake / acceleration / transmission
    telemetry, plus event-driven obstacle warnings.

    A brake_status frame whose first byte is {!crash_signal} represents a
    crash-magnitude deceleration; the safety controller reacts to it (and a
    spoofed one is exactly Table I threat 15). *)

val crash_signal : char

val create :
  Secpol_sim.Engine.t -> Secpol_can.Bus.t -> State.t -> Secpol_can.Node.t
(** Starts the periodic telemetry (active while the engine runs). *)

val emit_obstacle : Secpol_can.Node.t -> distance_m:int -> bool
(** Broadcast an obstacle warning. *)
