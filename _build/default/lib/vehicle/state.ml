type t = {
  mutable mode : Modes.t;
  mutable ev_ecu_enabled : bool;
  mutable engine_running : bool;
  mutable eps_active : bool;
  mutable doors_locked : bool;
  mutable alarm_armed : bool;
  mutable modem_enabled : bool;
  mutable tracking_enabled : bool;
  mutable failsafe_latched : bool;
  mutable speed_kmh : float;
  mutable software_installs : int;
  mutable emergency_calls : int;
  mutable journal : (float * string) list;
}

let create ?(mode = Modes.Normal) () =
  {
    mode;
    ev_ecu_enabled = true;
    engine_running = false;
    eps_active = false;
    doors_locked = false;
    alarm_armed = false;
    modem_enabled = true;
    tracking_enabled = true;
    failsafe_latched = false;
    speed_kmh = 0.0;
    software_installs = 0;
    emergency_calls = 0;
    journal = [];
  }

let driving () =
  let t = create () in
  t.engine_running <- true;
  t.eps_active <- true;
  t.doors_locked <- true;
  t.speed_kmh <- 50.0;
  t

let log t ~time message = t.journal <- (time, message) :: t.journal

let events t = List.rev t.journal

let pp ppf t =
  Format.fprintf ppf
    "mode=%s ecu=%b engine=%b eps=%b doors-locked=%b alarm=%b modem=%b tracking=%b failsafe=%b speed=%.0fkm/h"
    (Modes.name t.mode) t.ev_ecu_enabled t.engine_running t.eps_active
    t.doors_locked t.alarm_armed t.modem_enabled t.tracking_enabled
    t.failsafe_latched t.speed_kmh
