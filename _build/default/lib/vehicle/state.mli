(** Shared vehicle state mutated by the ECU behaviour models.

    Attack scenarios assert on this state: "spoofed CAN data causing
    disablement of the ECU" succeeded iff [ev_ecu_enabled] went false
    during normal operation. *)

type t = {
  mutable mode : Modes.t;
  mutable ev_ecu_enabled : bool;  (** propulsion control responding *)
  mutable engine_running : bool;
  mutable eps_active : bool;  (** power steering assistance *)
  mutable doors_locked : bool;
  mutable alarm_armed : bool;
  mutable modem_enabled : bool;  (** 3G/4G/WiFi radio *)
  mutable tracking_enabled : bool;  (** remote theft tracking *)
  mutable failsafe_latched : bool;  (** fail-safe actions taken *)
  mutable speed_kmh : float;
  mutable software_installs : int;  (** infotainment package installs *)
  mutable emergency_calls : int;  (** eCall attempts that went out *)
  mutable journal : (float * string) list;  (** newest first; use {!events} *)
}

val create : ?mode:Modes.t -> unit -> t
(** A healthy car: ECU enabled, engine off, doors unlocked, alarm off,
    modem on, tracking on, stationary. *)

val driving : unit -> t
(** Normal mode, engine running, EPS active, 50 km/h, doors locked. *)

val log : t -> time:float -> string -> unit
(** Append to the event journal. *)

val events : t -> (float * string) list
(** Chronological journal of state-changing events. *)

val pp : Format.formatter -> t -> unit
