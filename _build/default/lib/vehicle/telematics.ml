module Engine = Secpol_sim.Engine

let create sim bus state =
  let node = Ecu.make_node bus ~name:Names.telematics in
  let log msg = State.log state ~time:(Engine.now sim) msg in
  let emergency_call reason =
    if state.State.modem_enabled then begin
      state.State.emergency_calls <- state.State.emergency_calls + 1;
      log (Printf.sprintf "telematics: emergency call placed (%s)" reason)
    end
    else log (Printf.sprintf "telematics: EMERGENCY CALL FAILED, modem down (%s)" reason)
  in
  let handlers =
    [
      ( Messages.modem_command,
        fun ~sender:_ frame ->
          match Ecu.command frame with
          | Some c when c = Messages.cmd_disable ->
              if state.State.modem_enabled then begin
                state.State.modem_enabled <- false;
                state.State.tracking_enabled <- false;
                log "telematics: modem disabled (tracking lost)"
              end
          | Some c when c = Messages.cmd_enable ->
              if not state.State.modem_enabled then begin
                state.State.modem_enabled <- true;
                state.State.tracking_enabled <- true;
                log "telematics: modem enabled"
              end
          | Some _ | None -> () );
      (Messages.airbag_deploy, fun ~sender:_ _frame -> emergency_call "airbag");
      ( Messages.failsafe_enter,
        fun ~sender:_ _frame ->
          if not state.State.failsafe_latched then () (* crash path handles it *)
      );
    ]
  in
  Secpol_can.Node.set_on_receive node (Ecu.dispatch handlers);
  Ecu.start_periodic sim node
    (Messages.find_exn Messages.gps_position)
    ~payload:(fun () -> "\042\000\000\000\000\000\000\000")
    ~enabled:(fun () -> state.State.modem_enabled);
  Ecu.start_periodic sim node
    (Messages.find_exn Messages.tracking_report)
    ~payload:(fun () -> "\001\000\000\000\000\000\000\000")
    ~enabled:(fun () ->
      state.State.modem_enabled && state.State.tracking_enabled);
  node

let remote_lock node =
  Ecu.send_command node (Messages.find_exn Messages.lock_command) Messages.cmd_lock

let remote_unlock node =
  Ecu.send_command node (Messages.find_exn Messages.lock_command) Messages.cmd_unlock

let request_diagnostics node =
  Ecu.send node (Messages.find_exn Messages.diag_request) "\001"
