(** Telematics unit: the 3G/4G/WiFi asset.

    Emits GPS positions and theft-tracking reports while the modem is up,
    places the emergency call on airbag deployment, and executes remote
    lock/unlock on behalf of the OEM backend.  Silencing its modem is
    Table I threats 9/10; losing tracking is threat 3. *)

val create :
  Secpol_sim.Engine.t -> Secpol_can.Bus.t -> State.t -> Secpol_can.Node.t

val remote_lock : Secpol_can.Node.t -> bool
(** OEM backend asks the car to lock (sent over the radio link, then the
    bus). *)

val remote_unlock : Secpol_can.Node.t -> bool

val request_diagnostics : Secpol_can.Node.t -> bool
(** Broadcast a diagnostic request (designed for remote-diagnostic mode). *)
