test/test_attack.ml: Alcotest List Option Printf Secpol_attack Secpol_can Secpol_hpe Secpol_sim Secpol_threat Secpol_vehicle
