test/test_can.ml: Alcotest Bool Char Float Gen List Printf QCheck QCheck_alcotest Secpol_can Secpol_sim String
