test/test_can.mli:
