test/test_core.ml: Alcotest List Option Secpol Secpol_attack Secpol_policy Secpol_threat Secpol_vehicle String
