test/test_faults.ml: Alcotest Array Format List Secpol_attack Secpol_can Secpol_sim Secpol_vehicle String
