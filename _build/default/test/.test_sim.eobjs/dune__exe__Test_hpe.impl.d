test/test_hpe.ml: Alcotest Gen List Printf QCheck QCheck_alcotest Secpol_can Secpol_hpe Secpol_policy Secpol_sim
