test/test_hpe.mli:
