test/test_lifecycle.ml: Alcotest Array List Printf Secpol_lifecycle Secpol_policy Secpol_sim String
