test/test_policy.ml: Alcotest List Printf QCheck QCheck_alcotest Secpol_policy Secpol_threat String
