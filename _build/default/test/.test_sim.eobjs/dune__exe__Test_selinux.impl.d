test/test_selinux.ml: Alcotest List Printf Secpol_selinux String
