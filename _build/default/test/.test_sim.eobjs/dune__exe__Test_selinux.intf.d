test/test_selinux.mli:
