test/test_sim.ml: Alcotest Array Float Fun Gen List Printf QCheck QCheck_alcotest Secpol_sim
