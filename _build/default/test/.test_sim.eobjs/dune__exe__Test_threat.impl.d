test/test_threat.ml: Alcotest Format List Option Printf QCheck QCheck_alcotest Secpol_threat String
