test/test_threat.mli:
