test/test_vehicle.ml: Alcotest Format List Option Secpol_can Secpol_hpe Secpol_policy Secpol_threat Secpol_vehicle String
