(* Tests for attacker models, primitives, the sixteen Table-I scenarios and
   the campaigns — the Q1/Q3/Q4 reproduction checks. *)

module V = Secpol_vehicle
module Car = V.Car
module Names = V.Names
module Messages = V.Messages
module Catalog = V.Threat_catalog
module Attacker = Secpol_attack.Attacker
module Primitives = Secpol_attack.Primitives
module Scenarios = Secpol_attack.Scenarios
module Campaign = Secpol_attack.Campaign
module Frame = Secpol_can.Frame
module Node = Secpol_can.Node
module Controller = Secpol_can.Controller
module Rng = Secpol_sim.Rng

let check = Alcotest.check

let quick name f = Alcotest.test_case name `Quick f

let slow name f = Alcotest.test_case name `Slow f

let hpe_enforcement () = Car.Hpe (V.Policy_map.baseline ())

(* ---------- Attacker model ---------- *)

let test_compromise_clears_filters () =
  let car = Car.create () in
  let node = Car.node car Names.ev_ecu in
  Alcotest.(check bool) "filters configured" true
    (Controller.filters (Node.controller node) <> []);
  let _atk = Attacker.compromise car Names.ev_ecu in
  Alcotest.(check bool) "filters cleared" true
    (Controller.filters (Node.controller node) = [])

let test_compromised_node_spoofs () =
  let car = Car.create () in
  Car.run car ~seconds:0.2;
  let atk = Attacker.compromise car Names.infotainment in
  Alcotest.(check bool) "spoof accepted locally" true
    (Attacker.spoof_command atk ~msg_id:Messages.ecu_command
       Messages.cmd_disable);
  Car.run car ~seconds:0.2;
  Alcotest.(check bool) "ecu disabled" false car.Car.state.V.State.ev_ecu_enabled

let test_alien_node () =
  let car = Car.create () in
  Car.run car ~seconds:0.2;
  let atk = Attacker.alien car ~name:"mallory" in
  Alcotest.(check bool) "alien transmits" true
    (Attacker.spoof_command atk ~msg_id:Messages.eps_command
       Messages.cmd_disable);
  Car.run car ~seconds:0.2;
  Alcotest.(check bool) "eps down" false car.Car.state.V.State.eps_active

let test_attacker_captures_and_replays () =
  let car = Car.create () in
  let atk = Attacker.alien car ~name:"mallory" in
  Car.run car ~seconds:0.5;
  Alcotest.(check bool) "captured traffic" true (Attacker.captured atk <> []);
  let only_telemetry (f : Frame.t) =
    match f.id with
    | Secpol_can.Identifier.Standard id -> id = Messages.accel_status
    | Secpol_can.Identifier.Extended _ -> false
  in
  let sent = Attacker.replay atk ~filter:only_telemetry () in
  Alcotest.(check bool) "replayed" true (sent > 0)

let test_reconfigure_hpe_locked () =
  let car = Car.create ~enforcement:(hpe_enforcement ()) () in
  let atk = Attacker.compromise car Names.infotainment in
  match Attacker.try_reconfigure_hpe atk with
  | Ok () -> Alcotest.fail "reconfigured a locked HPE"
  | Error _ -> ()

let test_reconfigure_hpe_absent () =
  let car = Car.create () in
  let atk = Attacker.compromise car Names.infotainment in
  match Attacker.try_reconfigure_hpe atk with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* ---------- Primitives ---------- *)

let test_dos_flood () =
  let car = Car.create () in
  Car.run car ~seconds:0.2;
  let atk = Attacker.alien car ~name:"mallory" in
  let sent = Primitives.dos_flood atk ~count:2000 in
  check Alcotest.int "all accepted without enforcement" 2000 sent;
  Car.run car ~seconds:0.05;
  (* id 0x000 dominates arbitration: legitimate frames starve behind the
     flood, which is still draining *)
  Alcotest.(check bool) "flood still queued" true
    (Secpol_can.Bus.pending car.Car.bus > 100)

let test_fuzz_counts () =
  let car = Car.create () in
  let atk = Attacker.alien car ~name:"mallory" in
  let rng = Rng.create 1L in
  let sent = Primitives.fuzz atk rng ~count:50 in
  check Alcotest.int "all accepted" 50 sent

let test_hpe_blocks_flood_at_source () =
  let car = Car.create ~enforcement:(hpe_enforcement ()) () in
  Car.run car ~seconds:0.2;
  (* a compromised *equipped* node cannot flood: 0x000 is unapproved *)
  let atk = Attacker.compromise car Names.infotainment in
  let sent = Primitives.dos_flood atk ~count:100 in
  check Alcotest.int "flood refused at the write filter" 0 sent

(* ---------- Scenarios (experiment Q1) ---------- *)

let test_all_sixteen_present () =
  check Alcotest.int "sixteen scenarios" 16 (List.length Scenarios.all);
  List.iter
    (fun (row : Catalog.row) ->
      Alcotest.(check bool)
        (row.threat.Secpol_threat.Threat.id ^ " has a scenario")
        true
        (Scenarios.find row.threat.Secpol_threat.Threat.id <> None))
    Catalog.rows

let test_all_succeed_without_enforcement () =
  let outcomes = Scenarios.run_all ~enforcement:Car.No_enforcement () in
  List.iter
    (fun (o : Scenarios.outcome) ->
      Alcotest.(check bool) (o.threat_id ^ " succeeds") true o.succeeded)
    outcomes

let test_hpe_blocks_exactly_non_residual () =
  let outcomes = Scenarios.run_all ~enforcement:(hpe_enforcement ()) () in
  List.iter
    (fun (o : Scenarios.outcome) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s %s" o.threat_id
           (if o.expected_residual then "remains (residual)" else "blocked"))
        o.expected_residual o.succeeded)
    outcomes

let test_software_filters_do_not_stop_spoofing () =
  (* under software filters, only the SELinux-backed browser chain fails *)
  let outcomes = Scenarios.run_all ~enforcement:Car.Software_filters () in
  List.iter
    (fun (o : Scenarios.outcome) ->
      let expected = o.threat_id <> Catalog.infotainment_browser_escalation in
      Alcotest.(check bool) (o.threat_id ^ " outcome") expected o.succeeded)
    outcomes

(* ---------- Campaign (experiments Q1/Q3/Q4) ---------- *)

let test_campaign_matches_paper () =
  let summaries = Campaign.table () in
  Alcotest.(check bool) "reproduction criterion" true
    (Campaign.matches_paper summaries);
  let hw =
    List.find (fun (s : Campaign.summary) -> s.level = Campaign.Hardware) summaries
  in
  check Alcotest.int "hardware leaves only the residual rows" 4
    hw.Campaign.succeeded

let test_firmware_sweep_software_grows () =
  let points =
    Campaign.firmware_sweep Campaign.Software ~compromised_counts:[ 0; 2; 4; 8 ]
  in
  (match points with
  | [ p0; _; _; p8 ] ->
      check Alcotest.int "no compromise, no deliveries" 0 p0.Campaign.delivered;
      Alcotest.(check bool) "full compromise delivers attacks" true
        (p8.Campaign.delivered > 0);
      Alcotest.(check bool) "frames were attempted" true
        (p8.Campaign.attack_frames > 0)
  | _ -> Alcotest.fail "expected four points");
  (* non-strict growth along the sweep *)
  let rec monotone = function
    | (a : Campaign.sweep_point) :: (b :: _ as rest) ->
        a.delivered <= b.delivered && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "containment degrades monotonically" true (monotone points)

let test_firmware_sweep_hardware_flat () =
  let points =
    Campaign.firmware_sweep Campaign.Hardware ~compromised_counts:[ 0; 2; 4; 8 ]
  in
  List.iter
    (fun (p : Campaign.sweep_point) ->
      check Alcotest.int
        (Printf.sprintf "k=%d contained" p.Campaign.compromised)
        0 p.Campaign.delivered)
    points

let test_spoof_detection () =
  (* an alien station impersonates the sensor cluster; the sensors' own HPE
     flags frames arriving under its exclusive IDs *)
  let car = Car.create ~enforcement:(hpe_enforcement ()) () in
  Car.run car ~seconds:0.5;
  let sensors_hpe = Option.get (Car.hpe car Names.sensors) in
  check Alcotest.int "no alerts on clean traffic" 0
    (Secpol_hpe.Engine.spoof_alerts sensors_hpe);
  let atk = Attacker.alien car ~name:"mallory" in
  for _ = 1 to 5 do
    ignore
      (Attacker.spoof_command atk ~msg_id:Messages.brake_status
         V.Sensors.crash_signal)
  done;
  Car.run car ~seconds:0.5;
  check Alcotest.int "five impersonations flagged" 5
    (Secpol_hpe.Engine.spoof_alerts sensors_hpe)

let test_benign_run_no_damage () =
  let stats = Campaign.benign_run Campaign.Hardware in
  check Alcotest.int "no false blocks" 0 stats.Campaign.hpe_blocks;
  check Alcotest.int "nothing undelivered" 0 stats.Campaign.undelivered;
  Alcotest.(check bool) "traffic flowed" true (stats.Campaign.deliveries > 100)

let () =
  Alcotest.run "secpol_attack"
    [
      ( "attacker",
        [
          quick "compromise clears filters" test_compromise_clears_filters;
          quick "compromised node spoofs" test_compromised_node_spoofs;
          quick "alien node" test_alien_node;
          quick "capture + replay" test_attacker_captures_and_replays;
          quick "locked HPE resists" test_reconfigure_hpe_locked;
          quick "absent HPE trivially ok" test_reconfigure_hpe_absent;
        ] );
      ( "primitives",
        [
          quick "dos flood" test_dos_flood;
          quick "fuzz" test_fuzz_counts;
          quick "flood blocked at source" test_hpe_blocks_flood_at_source;
        ] );
      ( "scenarios",
        [
          quick "sixteen rows covered" test_all_sixteen_present;
          slow "all succeed unprotected" test_all_succeed_without_enforcement;
          slow "HPE blocks exactly the R rows" test_hpe_blocks_exactly_non_residual;
          slow "software filters and spoofing"
            test_software_filters_do_not_stop_spoofing;
        ] );
      ( "campaign",
        [
          slow "matches the paper" test_campaign_matches_paper;
          slow "firmware sweep (software)" test_firmware_sweep_software_grows;
          slow "firmware sweep (hardware)" test_firmware_sweep_hardware_flat;
          quick "spoof detection" test_spoof_detection;
          slow "benign run" test_benign_run_no_damage;
        ] );
    ]
