(* Tests for the Secpol facade: the end-to-end pipeline and a full
   integration walk of the paper's workflow — model, derive, deploy,
   attack, discover a new threat, ship a policy update. *)

module Pipeline = Secpol.Pipeline
module Threat = Secpol_threat.Threat
module Model = Secpol_threat.Model
module Policy = Secpol_policy
module V = Secpol_vehicle
module Car = V.Car
module Catalog = V.Threat_catalog
module Scenarios = Secpol_attack.Scenarios

let check = Alcotest.check

let quick name f = Alcotest.test_case name `Quick f

let slow name f = Alcotest.test_case name `Slow f

let car_model () = Catalog.model ()

(* ---------- Pipeline ---------- *)

let test_derive_car_model () =
  let report = Pipeline.derive ~version:1 (car_model ()) in
  Alcotest.(check bool) "compiles with rules" true
    (List.length report.Pipeline.db.Policy.Ir.rules > 0);
  Alcotest.(check bool) "default deny" true
    (report.Pipeline.db.Policy.Ir.default = Policy.Ast.Deny);
  check Alcotest.int "no conflicts" 0 (List.length report.Pipeline.conflicts);
  check Alcotest.int "four residual threats" 4
    (List.length report.Pipeline.residual);
  Alcotest.(check bool) "bundle sealed" true
    (Policy.Update.verify report.Pipeline.bundle)

let test_derived_policy_round_trips () =
  let report = Pipeline.derive (car_model ()) in
  match Policy.Parser.parse report.Pipeline.bundle.Policy.Update.source with
  | Ok p ->
      Alcotest.(check bool) "bundle source parses back to the policy" true
        (Policy.Ast.equal p report.Pipeline.policy)
  | Error e -> Alcotest.fail e

let test_deploy () =
  let store = Policy.Update.create () in
  let report = Pipeline.derive (car_model ()) in
  (match Pipeline.deploy store report with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Policy.Update.current store report.Pipeline.policy.Policy.Ast.name with
  | Some b -> check Alcotest.int "installed v1" 1 b.Policy.Update.version
  | None -> Alcotest.fail "nothing installed"

let new_threat =
  Threat.make ~id:"charging_port_injection"
    ~title:"Command injection through the public charging port"
    ~description:
      "A malicious charging station injects drivetrain commands through \
       the charge-controller path — a threat discovered only after \
       deployment."
    ~asset:V.Names.ev_ecu
    ~entry_points:[ V.Names.ep_any_node ]
    ~modes:[ V.Modes.name V.Modes.Normal ]
    ~stride:
      (match Secpol_threat.Stride.of_string "STE" with
      | Ok s -> s
      | Error e -> failwith e)
    ~dread:
      (match Secpol_threat.Dread.of_list [ 8; 6; 5; 7; 5 ] with
      | Ok d -> d
      | Error e -> failwith e)
    ~attack_operation:Threat.Write
    ~legitimate_operations:[ Threat.Read ] ()

let test_respond_to_new_threat () =
  let store = Policy.Update.create () in
  let model = car_model () in
  let first = Pipeline.derive model in
  (match Pipeline.deploy store first with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Pipeline.respond_to_new_threat ~store ~model ~threat:new_threat ~at:100.0 with
  | Error es -> Alcotest.fail (String.concat "; " es)
  | Ok report ->
      check Alcotest.int "seventeen threats now" 17
        (List.length report.Pipeline.model.Model.threats);
      check Alcotest.int "version bumped" 2
        report.Pipeline.bundle.Policy.Update.version;
      (match
         Policy.Update.current store report.Pipeline.policy.Policy.Ast.name
       with
      | Some b -> check Alcotest.int "v2 installed" 2 b.Policy.Update.version
      | None -> Alcotest.fail "nothing installed");
      (* diff against v1 shows added rules, nothing dropped *)
      let d = Policy.Update.diff first.Pipeline.policy report.Pipeline.policy in
      Alcotest.(check bool) "rules added" true (d.Policy.Update.added <> []);
      check Alcotest.int "no rules removed" 0 (List.length d.Policy.Update.removed)

let test_respond_rejects_invalid_threat () =
  let store = Policy.Update.create () in
  let model = car_model () in
  let bad =
    Threat.make ~id:"bad" ~title:"bad" ~asset:"not_an_asset"
      ~entry_points:[ V.Names.ep_sensors ]
      ~stride:
        (match Secpol_threat.Stride.of_string "T" with
        | Ok s -> s
        | Error e -> failwith e)
      ~dread:
        (match Secpol_threat.Dread.of_list [ 1; 1; 1; 1; 1 ] with
        | Ok d -> d
        | Error e -> failwith e)
      ~attack_operation:Threat.Write ~legitimate_operations:[] ()
  in
  match Pipeline.respond_to_new_threat ~store ~model ~threat:bad ~at:0.0 with
  | Ok _ -> Alcotest.fail "accepted a threat referencing an unknown asset"
  | Error _ -> ()

(* ---------- End-to-end integration ---------- *)

let test_full_paper_workflow () =
  (* 1. Threat modelling produces the car model (Table I). *)
  let model = car_model () in
  check Alcotest.int "sixteen threats" 16 (List.length model.Model.threats);
  (* 2. Derivation emits a policy; the device also carries the operational
        baseline compiled into HPE approved lists. *)
  let report = Pipeline.derive model in
  check Alcotest.int "no conflicts" 0 (List.length report.Pipeline.conflicts);
  (* 3. An unprotected fleet falls to the spoofing attack... *)
  let unprotected =
    Scenarios.run ~enforcement:Car.No_enforcement
      (Option.get (Scenarios.find Catalog.ev_ecu_spoof_disable_locks))
  in
  Alcotest.(check bool) "unprotected car falls" true unprotected.Scenarios.succeeded;
  (* 4. ...while the HPE-equipped car shrugs it off. *)
  let protected_ =
    Scenarios.run
      ~enforcement:(Car.Hpe (V.Policy_map.baseline ()))
      (Option.get (Scenarios.find Catalog.ev_ecu_spoof_disable_locks))
  in
  Alcotest.(check bool) "protected car stands" false protected_.Scenarios.succeeded;
  (* 5. Post-deployment: a new threat arrives as a policy update, not a
        redesign. *)
  let store = Policy.Update.create () in
  (match Pipeline.deploy store report with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Pipeline.respond_to_new_threat ~store ~model ~threat:new_threat ~at:1.0 with
  | Ok r2 ->
      Alcotest.(check bool) "update sealed" true
        (Policy.Update.verify r2.Pipeline.bundle)
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_pipeline_from_model_file () =
  (* the Fig. 1 front half driven from a version-controlled text file *)
  let source =
    {|use_case "Charging station"
      modes normal maintenance
      asset charger "Charge controller" safety_critical
      entry cable "Charge cable" physical
      entry backend "Operator backend" network
      threat cable_injection {
        title "Command injection through the cable"
        asset charger
        entry cable
        modes normal
        stride STE
        dread 8 6 5 7 5
        attack write
        legit read
      }|}
  in
  match Secpol.Threat.Model_format.parse source with
  | Error e -> Alcotest.fail e
  | Ok model ->
      let report = Pipeline.derive model in
      let engine = Policy.Engine.create report.Pipeline.db in
      Alcotest.(check bool) "cable read allowed" true
        (Policy.Engine.permitted engine
           {
             Policy.Ir.mode = "normal";
             subject = "cable";
             asset = "charger";
             op = Policy.Ir.Read;
             msg_id = None;
           });
      Alcotest.(check bool) "cable write (the attack) denied" false
        (Policy.Engine.permitted engine
           {
             Policy.Ir.mode = "normal";
             subject = "cable";
             asset = "charger";
             op = Policy.Ir.Write;
             msg_id = None;
           })

let test_facade_reexports () =
  (* the umbrella namespace exposes every subsystem *)
  let _ = Secpol.Sim.Rng.create 1L in
  let _ = Secpol.Threat.Stride.all in
  let _ = Secpol.Policy.Ast.Allow in
  let _ = Secpol.Can.Identifier.standard 1 in
  let _ = Secpol.Hpe.Approved_list.create () in
  let _ = Secpol.Selinux.Access_vector.file in
  let _ = Secpol.Vehicle.Names.nodes in
  let _ = Secpol.Attack.Campaign.Off in
  let _ = Secpol.Lifecycle.Phases.pipeline in
  ()

let () =
  Alcotest.run "secpol_core"
    [
      ( "pipeline",
        [
          quick "derive car model" test_derive_car_model;
          quick "bundle round trips" test_derived_policy_round_trips;
          quick "deploy" test_deploy;
          quick "respond to new threat" test_respond_to_new_threat;
          quick "invalid threat rejected" test_respond_rejects_invalid_threat;
        ] );
      ( "integration",
        [
          slow "full paper workflow" test_full_paper_workflow;
          quick "pipeline from a model file" test_pipeline_from_model_file;
          quick "facade re-exports" test_facade_reexports;
        ] );
    ]
