(* Failure injection and determinism: the simulator under line noise, and
   reproducibility guarantees the whole evaluation relies on. *)

module V = Secpol_vehicle
module Car = V.Car
module State = V.State
module Names = V.Names
module Messages = V.Messages
module Scenarios = Secpol_attack.Scenarios
module Catalog = V.Threat_catalog
module Node = Secpol_can.Node
module Controller = Secpol_can.Controller
module Errors = Secpol_can.Errors
module Trace = Secpol_can.Trace

let check = Alcotest.check

let quick name f = Alcotest.test_case name `Quick f

let slow name f = Alcotest.test_case name `Slow f

(* ---------- Determinism ---------- *)

let state_fingerprint (s : State.t) =
  Format.asprintf "%a|%d|%d" State.pp s s.software_installs s.emergency_calls

let trace_fingerprint car =
  List.map
    (fun (e : Trace.entry) ->
      Format.asprintf "%.9f %s %a %s" e.time e.node Secpol_can.Frame.pp e.frame
        (Trace.event_name e.event))
    (Trace.entries (Car.trace car))

let test_same_seed_same_run () =
  let run () =
    let car = Car.create ~seed:7L ~corrupt_prob:0.01 () in
    Car.run car ~seconds:2.0;
    (state_fingerprint car.Car.state, trace_fingerprint car)
  in
  let s1, t1 = run () in
  let s2, t2 = run () in
  check Alcotest.string "same state" s1 s2;
  check Alcotest.int "same trace length" (List.length t1) (List.length t2);
  List.iter2 (fun a b -> check Alcotest.string "same trace entry" a b) t1 t2

let test_different_seed_different_noise () =
  let errors seed =
    let car = Car.create ~seed ~corrupt_prob:0.05 () in
    Car.run car ~seconds:2.0;
    Trace.count (Car.trace car) (fun e -> e.Trace.event = Trace.Tx_error)
  in
  (* same noise rate, different draws *)
  Alcotest.(check bool) "noise actually drawn" true (errors 1L > 0);
  Alcotest.(check bool) "seeds shape the run" true (errors 1L <> errors 99L)

(* ---------- Line noise ---------- *)

let test_noisy_bus_function_retained () =
  let car = Car.create ~corrupt_prob:0.02 () in
  Car.run car ~seconds:3.0;
  let s = car.Car.state in
  Alcotest.(check bool) "ecu healthy" true s.State.ev_ecu_enabled;
  Alcotest.(check bool) "engine running" true s.State.engine_running;
  (* retransmissions happened... *)
  Alcotest.(check bool) "errors observed" true
    (Trace.count (Car.trace car) (fun e -> e.Trace.event = Trace.Tx_error) > 0);
  (* ...and nobody fell off the bus at this noise level *)
  List.iter
    (fun name ->
      let errs = Controller.errors (Node.controller (Car.node car name)) in
      Alcotest.(check bool) (name ^ " not bus-off") true
        (Errors.state errs <> Errors.Bus_off))
    Names.nodes

let test_noisy_bus_crash_chain_still_works () =
  let car = Car.create ~corrupt_prob:0.02 () in
  Car.run car ~seconds:0.5;
  V.Safety.trigger_crash (Car.node car Names.safety) car.Car.state;
  Car.run car ~seconds:1.0;
  Alcotest.(check bool) "failsafe latched" true car.Car.state.State.failsafe_latched;
  Alcotest.(check bool) "doors unlocked" false car.Car.state.State.doors_locked;
  check Alcotest.int "emergency call placed" 1 car.Car.state.State.emergency_calls

let test_hpe_enforcement_under_noise () =
  (* the headline spoofing attack on a noisy bus: retransmission gets the
     forged frame through eventually without enforcement, while the HPE
     blocks it at the source regardless of line conditions *)
  let attack enforcement =
    let car = Car.create ~corrupt_prob:0.05 ~enforcement () in
    Car.run car ~seconds:0.3;
    let node = Car.node car Names.infotainment in
    Controller.set_filters (Node.controller node) [];
    for _ = 1 to 20 do
      ignore
        (Node.send node
           (Secpol_can.Frame.data_std Messages.ecu_command
              (String.make 1 Messages.cmd_disable)))
    done;
    Car.run car ~seconds:1.0;
    car.Car.state.State.ev_ecu_enabled
  in
  Alcotest.(check bool) "lands through the noise unprotected" false
    (attack Car.Software_filters);
  Alcotest.(check bool) "still blocked by the HPE" true
    (attack (Car.Hpe (V.Policy_map.baseline ())))

let test_extreme_noise_starves_the_bus () =
  let car = Car.create ~corrupt_prob:0.9 () in
  Car.run car ~seconds:1.0;
  (* almost nothing gets through; retry budgets exhaust *)
  Alcotest.(check bool) "abandonments" true
    (Trace.count (Car.trace car) (fun e -> e.Trace.event = Trace.Tx_abandoned) > 0)

(* ---------- Stress ---------- *)

let test_priority_storm_ordering () =
  (* 500 frames of random priority queued at once drain in priority order *)
  let sim = Secpol_sim.Engine.create () in
  let bus = Secpol_can.Bus.create ~bitrate:1_000_000.0 sim in
  let tx = Node.create ~name:"tx" bus in
  let rx = Node.create ~name:"rx" bus in
  let rng = Secpol_sim.Rng.create 3L in
  (* distinct ids so the expected order is unambiguous *)
  let ids = Array.init 500 (fun i -> i) in
  Secpol_sim.Rng.shuffle rng ids;
  Array.iter
    (fun id -> ignore (Node.send tx (Secpol_can.Frame.data_std id "")))
    ids;
  Secpol_sim.Engine.run_until sim 10.0;
  let received =
    List.map
      (fun (f : Secpol_can.Frame.t) -> Secpol_can.Identifier.raw f.id)
      (Node.received rx)
  in
  check Alcotest.int "all delivered" 500 (List.length received);
  (* after the first frame (whatever won while the bus was idle), the rest
     drain lowest-id-first among what was pending: the tail is sorted *)
  match received with
  | _first :: rest ->
      Alcotest.(check bool) "priority order" true
        (List.sort compare rest = rest)
  | [] -> Alcotest.fail "nothing delivered"

let test_long_run_stability () =
  let car = Car.create () in
  Car.run car ~seconds:60.0;
  Alcotest.(check bool) "still healthy after a minute" true
    car.Car.state.State.ev_ecu_enabled;
  Alcotest.(check bool) "thousands of frames" true
    (Secpol_can.Bus.frames_sent car.Car.bus > 8_000)

let () =
  Alcotest.run "secpol_faults"
    [
      ( "determinism",
        [
          quick "same seed, same run" test_same_seed_same_run;
          quick "different seeds differ" test_different_seed_different_noise;
        ] );
      ( "noise",
        [
          slow "function retained" test_noisy_bus_function_retained;
          slow "crash chain under noise" test_noisy_bus_crash_chain_still_works;
          slow "enforcement under noise" test_hpe_enforcement_under_noise;
          quick "extreme noise" test_extreme_noise_starves_the_bus;
        ] );
      ( "stress",
        [
          quick "priority storm" test_priority_storm_ordering;
          slow "long run" test_long_run_stability;
        ] );
    ]
