(* Tests for the SELinux-style software policy engine. *)

module Context = Secpol_selinux.Context
module Av = Secpol_selinux.Access_vector
module Te = Secpol_selinux.Te_rule
module Db = Secpol_selinux.Policy_db
module Pm = Secpol_selinux.Policy_module
module Avc = Secpol_selinux.Avc
module Server = Secpol_selinux.Server

let check = Alcotest.check

let quick name f = Alcotest.test_case name `Quick f

(* ---------- Contexts ---------- *)

let test_context_roundtrip () =
  let c = Context.make ~user:"user_u" ~role:"user_r" ~type_:"media_t" in
  check Alcotest.string "to_string" "user_u:user_r:media_t" (Context.to_string c);
  match Context.of_string "user_u:user_r:media_t" with
  | Ok c' -> Alcotest.(check bool) "equal" true (Context.equal c c')
  | Error e -> Alcotest.fail e

let test_context_invalid () =
  (match Context.of_string "a:b" with
  | Ok _ -> Alcotest.fail "accepted two components"
  | Error _ -> ());
  (match Context.of_string "a:b:c:d" with
  | Ok _ -> Alcotest.fail "accepted four components"
  | Error _ -> ());
  Alcotest.check_raises "empty component"
    (Invalid_argument "Context.make: components must be non-empty and colon-free")
    (fun () -> ignore (Context.make ~user:"" ~role:"r" ~type_:"t"))

let test_context_with_type () =
  let c = Context.make ~user:"u" ~role:"r" ~type_:"a_t" in
  let c' = Context.with_type c "b_t" in
  check Alcotest.string "new type" "b_t" (Context.type_of c');
  check Alcotest.string "same user/role" "u:r:b_t" (Context.to_string c')

(* ---------- Access vectors ---------- *)

let test_class_validation () =
  Alcotest.check_raises "duplicate perms"
    (Invalid_argument "Access_vector.cls: duplicate permissions") (fun () ->
      ignore (Av.cls ~name:"x" ~permissions:[ "read"; "read" ]));
  Alcotest.(check bool) "file has read" true (Av.has_permission Av.file "read");
  Alcotest.(check bool) "file lacks start" false (Av.has_permission Av.file "start")

let test_av_make () =
  let av = Av.make Av.file [ "write"; "read" ] in
  Alcotest.(check (list string)) "sorted" [ "read"; "write" ] av.Av.perms;
  Alcotest.(check bool) "mem" true (Av.mem av "read");
  Alcotest.check_raises "unknown perm"
    (Invalid_argument "Access_vector.make: class file has no permission \"fly\"")
    (fun () -> ignore (Av.make Av.file [ "fly" ]))

let test_av_union () =
  let a = Av.make Av.file [ "read" ] and b = Av.make Av.file [ "write" ] in
  Alcotest.(check (list string)) "union" [ "read"; "write" ] (Av.union a b).Av.perms;
  let c = Av.make Av.process [ "fork" ] in
  Alcotest.check_raises "class mismatch"
    (Invalid_argument "Access_vector.union: class mismatch") (fun () ->
      ignore (Av.union a c))

(* ---------- Policy database ---------- *)

let base_types = [ "media_t"; "installer_t"; "system_t"; "exec_t" ]

let build ?attributes rules =
  Db.build ~types:base_types ?attributes ~rules ()

let test_db_basic_allow () =
  match build [ Te.allow ~source:"media_t" ~target:"exec_t" ~cls:"file" [ "read" ] ] with
  | Error es -> Alcotest.fail (String.concat "; " es)
  | Ok db ->
      Alcotest.(check bool) "granted" true
        (Db.allows db ~source:"media_t" ~target:"exec_t" ~cls:"file" "read");
      Alcotest.(check bool) "write not granted" false
        (Db.allows db ~source:"media_t" ~target:"exec_t" ~cls:"file" "write");
      Alcotest.(check bool) "other source" false
        (Db.allows db ~source:"system_t" ~target:"exec_t" ~cls:"file" "read")

let test_db_attribute_expansion () =
  match
    Db.build ~types:base_types
      ~attributes:[ ("app_domain", [ "media_t"; "installer_t" ]) ]
      ~rules:
        [ Te.allow ~source:"app_domain" ~target:"exec_t" ~cls:"file" [ "read" ] ]
      ()
  with
  | Error es -> Alcotest.fail (String.concat "; " es)
  | Ok db ->
      Alcotest.(check bool) "member granted" true
        (Db.allows db ~source:"installer_t" ~target:"exec_t" ~cls:"file" "read");
      Alcotest.(check bool) "non-member denied" false
        (Db.allows db ~source:"system_t" ~target:"exec_t" ~cls:"file" "read");
      Alcotest.(check (list string)) "expand" [ "media_t"; "installer_t" ]
        (Db.expand db "app_domain")

let test_db_self_target () =
  match build [ Te.allow ~source:"media_t" ~target:"self" ~cls:"process" [ "fork" ] ] with
  | Error es -> Alcotest.fail (String.concat "; " es)
  | Ok db ->
      Alcotest.(check bool) "self" true
        (Db.allows db ~source:"media_t" ~target:"media_t" ~cls:"process" "fork");
      Alcotest.(check bool) "not other" false
        (Db.allows db ~source:"media_t" ~target:"installer_t" ~cls:"process" "fork")

let test_db_unknown_references () =
  (match build [ Te.allow ~source:"ghost_t" ~target:"exec_t" ~cls:"file" [ "read" ] ] with
  | Ok _ -> Alcotest.fail "accepted unknown source"
  | Error _ -> ());
  (match build [ Te.allow ~source:"media_t" ~target:"exec_t" ~cls:"ghost" [ "read" ] ] with
  | Ok _ -> Alcotest.fail "accepted unknown class"
  | Error _ -> ());
  match build [ Te.allow ~source:"media_t" ~target:"exec_t" ~cls:"file" [ "levitate" ] ] with
  | Ok _ -> Alcotest.fail "accepted unknown permission"
  | Error _ -> ()

let test_db_neverallow_violation () =
  match
    build
      [
        Te.allow ~source:"media_t" ~target:"exec_t" ~cls:"file" [ "execute" ];
        Te.neverallow ~source:"media_t" ~target:"exec_t" ~cls:"file" [ "execute" ];
      ]
  with
  | Ok _ -> Alcotest.fail "neverallow violation accepted"
  | Error es ->
      Alcotest.(check bool) "reported" true
        (List.exists
           (fun e ->
             String.length e >= 10 && String.sub e 0 10 = "neverallow")
           es)

let test_db_neverallow_via_attribute () =
  match
    Db.build ~types:base_types
      ~attributes:[ ("app_domain", [ "media_t"; "installer_t" ]) ]
      ~rules:
        [
          Te.allow ~source:"installer_t" ~target:"exec_t" ~cls:"file" [ "write" ];
          Te.neverallow ~source:"app_domain" ~target:"exec_t" ~cls:"file" [ "write" ];
        ]
      ()
  with
  | Ok _ -> Alcotest.fail "attribute neverallow violation accepted"
  | Error _ -> ()

let test_db_neverallow_satisfied () =
  match
    build
      [
        Te.allow ~source:"media_t" ~target:"exec_t" ~cls:"file" [ "read" ];
        Te.neverallow ~source:"media_t" ~target:"exec_t" ~cls:"file" [ "execute" ];
      ]
  with
  | Ok _ -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_db_duplicate_types () =
  match Db.build ~types:[ "a_t"; "a_t" ] ~rules:[] () with
  | Ok _ -> Alcotest.fail "accepted duplicate types"
  | Error _ -> ()

(* ---------- Modules ---------- *)

let base_module =
  Pm.make ~name:"base" ~types:base_types
    ~rules:[ Te.allow ~source:"media_t" ~target:"exec_t" ~cls:"file" [ "read" ] ]
    ()

let test_module_store_and_load () =
  match Pm.store ~base:base_module with
  | Error es -> Alcotest.fail (String.concat "; " es)
  | Ok store -> (
      let extra =
        Pm.make ~name:"update" ~types:[ "new_t" ]
          ~rules:
            [ Te.allow ~source:"new_t" ~target:"exec_t" ~cls:"file" [ "read" ] ]
          ()
      in
      match Pm.load store extra with
      | Error es -> Alcotest.fail (String.concat "; " es)
      | Ok db ->
          Alcotest.(check bool) "new rule active" true
            (Db.allows db ~source:"new_t" ~target:"exec_t" ~cls:"file" "read");
          check Alcotest.int "two modules" 2 (List.length (Pm.modules store)))

let test_module_version_monotonic () =
  match Pm.store ~base:base_module with
  | Error es -> Alcotest.fail (String.concat "; " es)
  | Ok store -> (
      match Pm.load store (Pm.make ~name:"base" ~version:1 ~types:base_types ~rules:[] ()) with
      | Ok _ -> Alcotest.fail "accepted same version"
      | Error _ -> ())

let test_module_upgrade_replaces () =
  match Pm.store ~base:base_module with
  | Error es -> Alcotest.fail (String.concat "; " es)
  | Ok store -> (
      let v2 =
        Pm.make ~name:"base" ~version:2 ~types:base_types ~rules:[] ()
      in
      match Pm.load store v2 with
      | Error es -> Alcotest.fail (String.concat "; " es)
      | Ok db ->
          Alcotest.(check bool) "old rule gone" false
            (Db.allows db ~source:"media_t" ~target:"exec_t" ~cls:"file" "read"))

let test_module_unload () =
  match Pm.store ~base:base_module with
  | Error es -> Alcotest.fail (String.concat "; " es)
  | Ok store ->
      (match Pm.unload store "base" with
      | Ok _ -> Alcotest.fail "unloaded base"
      | Error _ -> ());
      (match Pm.unload store "ghost" with
      | Ok _ -> Alcotest.fail "unloaded unknown"
      | Error _ -> ());
      let extra = Pm.make ~name:"extra" ~types:[ "x_t" ] ~rules:[] () in
      ignore (Pm.load store extra);
      (match Pm.unload store "extra" with
      | Ok _ -> check Alcotest.int "one left" 1 (List.length (Pm.modules store))
      | Error es -> Alcotest.fail (String.concat "; " es))

let test_module_load_failure_atomic () =
  match Pm.store ~base:base_module with
  | Error es -> Alcotest.fail (String.concat "; " es)
  | Ok store -> (
      let broken =
        Pm.make ~name:"broken" ~rules:
          [ Te.allow ~source:"ghost_t" ~target:"exec_t" ~cls:"file" [ "read" ] ]
          ()
      in
      match Pm.load store broken with
      | Ok _ -> Alcotest.fail "loaded a broken module"
      | Error _ ->
          check Alcotest.int "store unchanged" 1 (List.length (Pm.modules store));
          Alcotest.(check bool) "db still serves" true
            (Db.allows (Pm.db store) ~source:"media_t" ~target:"exec_t"
               ~cls:"file" "read"))

let test_module_neverallow_guards_updates () =
  (* a loaded neverallow pins the invariant: a later sloppy module that
     grants the forbidden permission is rejected as a unit *)
  let guarded =
    Pm.make ~name:"base" ~types:base_types
      ~rules:
        [ Te.neverallow ~source:"media_t" ~target:"exec_t" ~cls:"file" [ "execute" ] ]
      ()
  in
  match Pm.store ~base:guarded with
  | Error es -> Alcotest.fail (String.concat "; " es)
  | Ok store -> (
      let sloppy =
        Pm.make ~name:"feature"
          ~rules:
            [ Te.allow ~source:"media_t" ~target:"exec_t" ~cls:"file" [ "execute" ] ]
          ()
      in
      match Pm.load store sloppy with
      | Ok _ -> Alcotest.fail "neverallow did not guard the update"
      | Error _ -> ())

(* ---------- AVC ---------- *)

let simple_db () =
  match build [ Te.allow ~source:"media_t" ~target:"exec_t" ~cls:"file" [ "read" ] ] with
  | Ok db -> db
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_avc_hits () =
  let avc = Avc.create () in
  let db = simple_db () in
  let q () = Avc.lookup avc db ~source:"media_t" ~target:"exec_t" ~cls:"file" in
  Alcotest.(check (list string)) "first lookup" [ "read" ] (q ());
  ignore (q ());
  ignore (q ());
  let stats = Avc.stats avc in
  check Alcotest.int "hits" 2 stats.Avc.hits;
  check Alcotest.int "misses" 1 stats.Avc.misses;
  Alcotest.(check bool) "hit rate" true (Avc.hit_rate avc > 0.6)

let test_avc_invalidate () =
  let avc = Avc.create () in
  let db = simple_db () in
  ignore (Avc.lookup avc db ~source:"media_t" ~target:"exec_t" ~cls:"file");
  Avc.invalidate avc;
  (* after invalidation the same query misses again *)
  ignore (Avc.lookup avc db ~source:"media_t" ~target:"exec_t" ~cls:"file");
  check Alcotest.int "two misses" 2 (Avc.stats avc).Avc.misses

let test_avc_capacity_flush () =
  let avc = Avc.create ~capacity:4 () in
  let db = simple_db () in
  for i = 0 to 9 do
    ignore
      (Avc.lookup avc db ~source:(Printf.sprintf "s%d" i) ~target:"exec_t"
         ~cls:"file")
  done;
  Alcotest.(check bool) "flushed" true ((Avc.stats avc).Avc.flushes >= 1)

(* ---------- Server ---------- *)

let ctx t = Context.make ~user:"u" ~role:"r" ~type_:t

let server_db () =
  match
    Db.build ~types:[ "media_t"; "installer_t"; "exec_t"; "storage_t" ]
      ~rules:
        [
          Te.allow ~source:"media_t" ~target:"exec_t" ~cls:"file"
            [ "read"; "execute" ];
          Te.allow ~source:"media_t" ~target:"installer_t" ~cls:"process"
            [ "transition" ];
          Te.allow ~source:"installer_t" ~target:"storage_t" ~cls:"file"
            [ "write" ];
        ]
      ()
  with
  | Ok db -> db
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_server_check_and_audit () =
  let s = Server.create (server_db ()) in
  Alcotest.(check bool) "allowed" true
    (Server.check s ~source:(ctx "media_t") ~target:(ctx "exec_t") ~cls:"file" "read");
  Alcotest.(check bool) "denied" false
    (Server.check s ~source:(ctx "media_t") ~target:(ctx "storage_t") ~cls:"file" "write");
  check Alcotest.int "one denial" 1 (Server.denial_count s);
  match Server.audit_log s with
  | [ d ] ->
      check Alcotest.string "denied perm" "write" d.Server.perm;
      Alcotest.(check bool) "not granted" false d.Server.granted
  | _ -> Alcotest.fail "expected one audit entry"

let test_server_permissive () =
  let s = Server.create ~enforcing:false (server_db ()) in
  Alcotest.(check bool) "permissive allows" true
    (Server.check s ~source:(ctx "media_t") ~target:(ctx "storage_t") ~cls:"file" "write");
  check Alcotest.int "still audited" 1 (Server.denial_count s);
  Server.set_enforcing s true;
  Alcotest.(check bool) "enforcing denies" false
    (Server.check s ~source:(ctx "media_t") ~target:(ctx "storage_t") ~cls:"file" "write")

let test_server_check_all () =
  let s = Server.create (server_db ()) in
  Alcotest.(check bool) "both granted" true
    (Server.check_all s ~source:(ctx "media_t") ~target:(ctx "exec_t")
       ~cls:"file" [ "read"; "execute" ]);
  Alcotest.(check bool) "one missing" false
    (Server.check_all s ~source:(ctx "media_t") ~target:(ctx "exec_t")
       ~cls:"file" [ "read"; "unlink" ])

let test_server_transition () =
  let s = Server.create (server_db ()) in
  (match
     Server.transition s ~source:(ctx "media_t") ~target:(ctx "exec_t")
       ~new_type:"installer_t"
   with
  | Ok c -> check Alcotest.string "new domain" "installer_t" (Context.type_of c)
  | Error e -> Alcotest.fail e);
  match
    Server.transition s ~source:(ctx "installer_t") ~target:(ctx "exec_t")
      ~new_type:"media_t"
  with
  | Ok _ -> Alcotest.fail "reverse transition allowed"
  | Error _ -> ()

let test_server_reload_invalidates () =
  let s = Server.create (server_db ()) in
  Alcotest.(check bool) "before" true
    (Server.check s ~source:(ctx "media_t") ~target:(ctx "exec_t") ~cls:"file" "read");
  let tightened =
    match
      Db.build ~types:[ "media_t"; "installer_t"; "exec_t"; "storage_t" ] ~rules:[] ()
    with
    | Ok db -> db
    | Error es -> Alcotest.fail (String.concat "; " es)
  in
  Server.reload s tightened;
  Alcotest.(check bool) "after reload denied" false
    (Server.check s ~source:(ctx "media_t") ~target:(ctx "exec_t") ~cls:"file" "read")

let test_server_avc_hit_rate () =
  let s = Server.create (server_db ()) in
  for _ = 1 to 10 do
    ignore
      (Server.check s ~source:(ctx "media_t") ~target:(ctx "exec_t") ~cls:"file" "read")
  done;
  Alcotest.(check bool) "cache warms" true (Server.avc_hit_rate s > 0.8)

(* ---------- .te source parser ---------- *)

module Te_parser = Secpol_selinux.Te_parser

let sample_te =
  {|
# infotainment hardening, shipped over the air
module hardening 2;

type media_t;
type installer_t;
type can0_t;
attribute app_domain;
typeattribute media_t app_domain;
typeattribute installer_t app_domain;

allow media_t can0_t : can_socket read;
neverallow app_domain can0_t : can_socket { write setfilter };
dontaudit media_t can0_t : can_socket read;
|}

let test_te_parse () =
  match Te_parser.parse sample_te with
  | Error e -> Alcotest.fail e
  | Ok m ->
      check Alcotest.string "name" "hardening" m.Pm.name;
      check Alcotest.int "version" 2 m.Pm.version;
      check Alcotest.int "types" 3 (List.length m.Pm.types);
      Alcotest.(check (list (pair string (list string))))
        "attribute membership"
        [ ("app_domain", [ "installer_t"; "media_t" ]) ]
        m.Pm.attributes;
      check Alcotest.int "rules" 3 (List.length m.Pm.rules);
      (match m.Pm.rules with
      | [ _; never; _ ] ->
          Alcotest.(check bool) "neverallow kind" true
            (never.Te.kind = Te.Neverallow);
          Alcotest.(check (list string)) "braced perms"
            [ "setfilter"; "write" ] never.Te.perms
      | _ -> Alcotest.fail "unexpected rule shape")

let test_te_parse_single_perm () =
  match Te_parser.parse "module m 1;\ntype a_t;\nallow a_t a_t : file read;" with
  | Ok m -> check Alcotest.int "one rule" 1 (List.length m.Pm.rules)
  | Error e -> Alcotest.fail e

let test_te_parse_errors () =
  List.iter
    (fun src ->
      match Te_parser.parse src with
      | Ok _ -> Alcotest.fail ("accepted: " ^ src)
      | Error e ->
          Alcotest.(check bool) "positioned error" true
            (String.length e > 5 && String.sub e 0 4 = "line"))
    [
      "type a_t;";
      "module m 1; type a_t";
      "module m 1; allow a_t : file read;";
      "module m 1; allow a_t b_t : file { };";
      "module m 1; typeattribute a_t ghost;";
      "module m 1; bogus a_t;";
      "module m 1; allow a_t b_t : file read; @";
    ]

let test_te_print_parse_roundtrip () =
  let m = Te_parser.parse_exn sample_te in
  let m' = Te_parser.parse_exn (Te_parser.print m) in
  check Alcotest.string "name" m.Pm.name m'.Pm.name;
  check Alcotest.int "version" m.Pm.version m'.Pm.version;
  Alcotest.(check (list string)) "types" m.Pm.types m'.Pm.types;
  Alcotest.(check bool) "attributes" true (m.Pm.attributes = m'.Pm.attributes);
  Alcotest.(check bool) "rules" true (m.Pm.rules = m'.Pm.rules)

let test_te_parsed_module_loads () =
  (* a textual update goes through the full chain: parse -> load -> enforce *)
  let base =
    Pm.make ~name:"base" ~version:1
      ~types:[ "media_t"; "installer_t"; "can0_t" ]
      ~rules:
        [
          Te.allow ~source:"media_t" ~target:"can0_t" ~cls:"can_socket"
            [ "read"; "write" ];
        ]
      ()
  in
  match Pm.store ~base with
  | Error es -> Alcotest.fail (String.concat "; " es)
  | Ok store -> (
      let update =
        Te_parser.parse_exn
          "module base 2;\n\
           type media_t; type installer_t; type can0_t;\n\
           allow media_t can0_t : can_socket read;"
      in
      match Pm.load store update with
      | Error es -> Alcotest.fail (String.concat "; " es)
      | Ok db ->
          Alcotest.(check bool) "write right revoked by the textual update"
            false
            (Db.allows db ~source:"media_t" ~target:"can0_t" ~cls:"can_socket"
               "write"))

let () =
  Alcotest.run "secpol_selinux"
    [
      ( "context",
        [
          quick "round trip" test_context_roundtrip;
          quick "invalid" test_context_invalid;
          quick "with_type" test_context_with_type;
        ] );
      ( "access-vector",
        [
          quick "class validation" test_class_validation;
          quick "make" test_av_make;
          quick "union" test_av_union;
        ] );
      ( "policy-db",
        [
          quick "basic allow" test_db_basic_allow;
          quick "attribute expansion" test_db_attribute_expansion;
          quick "self target" test_db_self_target;
          quick "unknown references" test_db_unknown_references;
          quick "neverallow violation" test_db_neverallow_violation;
          quick "neverallow via attribute" test_db_neverallow_via_attribute;
          quick "neverallow satisfied" test_db_neverallow_satisfied;
          quick "duplicate types" test_db_duplicate_types;
        ] );
      ( "modules",
        [
          quick "store + load" test_module_store_and_load;
          quick "version monotonic" test_module_version_monotonic;
          quick "upgrade replaces" test_module_upgrade_replaces;
          quick "unload rules" test_module_unload;
          quick "atomic failure" test_module_load_failure_atomic;
          quick "neverallow guards updates" test_module_neverallow_guards_updates;
        ] );
      ( "avc",
        [
          quick "hits/misses" test_avc_hits;
          quick "invalidate" test_avc_invalidate;
          quick "capacity flush" test_avc_capacity_flush;
        ] );
      ( "te-parser",
        [
          quick "parse module" test_te_parse;
          quick "single permission" test_te_parse_single_perm;
          quick "errors" test_te_parse_errors;
          quick "print/parse round trip" test_te_print_parse_roundtrip;
          quick "parsed module loads" test_te_parsed_module_loads;
        ] );
      ( "server",
        [
          quick "check + audit" test_server_check_and_audit;
          quick "permissive mode" test_server_permissive;
          quick "check_all" test_server_check_all;
          quick "domain transition" test_server_transition;
          quick "reload invalidates" test_server_reload_invalidates;
          quick "avc hit rate" test_server_avc_hit_rate;
        ] );
    ]
