(* Tests for the STRIDE/DREAD threat-modelling library. *)

module Stride = Secpol_threat.Stride
module Dread = Secpol_threat.Dread
module Asset = Secpol_threat.Asset
module Entry_point = Secpol_threat.Entry_point
module Threat = Secpol_threat.Threat
module Risk = Secpol_threat.Risk
module Countermeasure = Secpol_threat.Countermeasure
module Model = Secpol_threat.Model

let check = Alcotest.check

let quick name f = Alcotest.test_case name `Quick f

(* ---------- STRIDE ---------- *)

let test_stride_codes () =
  List.iter
    (fun c ->
      check
        Alcotest.(option char)
        (Stride.name c) (Some (Stride.code c))
        (Option.map Stride.code (Stride.of_code (Stride.code c))))
    Stride.all;
  Alcotest.(check bool) "unknown code" true (Stride.of_code 'X' = None)

let test_stride_parse () =
  match Stride.of_string "STD" with
  | Ok cs ->
      check Alcotest.string "round trip" "STD" (Stride.to_string cs);
      Alcotest.(check bool) "spoofing" true (Stride.mem Stride.Spoofing cs);
      Alcotest.(check bool) "no repudiation" false (Stride.mem Stride.Repudiation cs)
  | Error e -> Alcotest.fail e

let test_stride_parse_unordered () =
  (* parsing normalises to mnemonic order *)
  match Stride.of_string "DTS" with
  | Ok cs -> check Alcotest.string "normalised" "STD" (Stride.to_string cs)
  | Error e -> Alcotest.fail e

let test_stride_rejects_bad () =
  (match Stride.of_string "SXT" with
  | Ok _ -> Alcotest.fail "accepted unknown letter"
  | Error _ -> ());
  match Stride.of_string "SS" with
  | Ok _ -> Alcotest.fail "accepted duplicate"
  | Error _ -> ()

let test_stride_full_set () =
  match Stride.of_string "STRIDE" with
  | Ok cs ->
      check Alcotest.int "six categories" 6 (List.length cs);
      check Alcotest.string "round trip" "STRIDE" (Stride.to_string cs)
  | Error e -> Alcotest.fail e

let test_stride_properties () =
  check Alcotest.string "tampering->integrity" "integrity"
    (Stride.property_violated Stride.Tampering);
  check Alcotest.string "dos->availability" "availability"
    (Stride.property_violated Stride.Denial_of_service)

let stride_subset_gen =
  (* generate a random sub-list of the six categories, in random order *)
  QCheck.Gen.(
    let shuffled = shuffle_l Stride.all in
    map2 (fun l n -> List.filteri (fun i _ -> i < n) l) shuffled (0 -- 6))

let prop_stride_roundtrip =
  QCheck.Test.make ~name:"STRIDE to_string/of_string round trip" ~count:100
    (QCheck.make stride_subset_gen) (fun cs ->
      match Stride.of_string (Stride.to_string cs) with
      | Ok cs' -> Stride.normalise cs = cs'
      | Error _ -> false)

(* ---------- DREAD ---------- *)

let test_dread_make () =
  match
    Dread.make ~damage:8 ~reproducibility:5 ~exploitability:4 ~affected_users:6
      ~discoverability:4
  with
  | Ok d ->
      check Alcotest.(float 1e-9) "average" 5.4 (Dread.average d);
      check Alcotest.string "rating" "High" (Dread.rating_name (Dread.rating d))
  | Error e -> Alcotest.fail e

let test_dread_out_of_range () =
  (match
     Dread.make ~damage:11 ~reproducibility:5 ~exploitability:4
       ~affected_users:6 ~discoverability:4
   with
  | Ok _ -> Alcotest.fail "accepted 11"
  | Error _ -> ());
  match
    Dread.make ~damage:(-1) ~reproducibility:5 ~exploitability:4
      ~affected_users:6 ~discoverability:4
  with
  | Ok _ -> Alcotest.fail "accepted -1"
  | Error _ -> ()

let test_dread_of_list () =
  (match Dread.of_list [ 1; 2; 3; 4; 5 ] with
  | Ok d -> Alcotest.(check (list int)) "to_list" [ 1; 2; 3; 4; 5 ] (Dread.to_list d)
  | Error e -> Alcotest.fail e);
  match Dread.of_list [ 1; 2; 3 ] with
  | Ok _ -> Alcotest.fail "accepted short list"
  | Error _ -> ()

let test_dread_rating_bands () =
  let rating l =
    match Dread.of_list l with
    | Ok d -> Dread.rating_name (Dread.rating d)
    | Error e -> Alcotest.fail e
  in
  check Alcotest.string "low" "Low" (rating [ 2; 2; 2; 2; 2 ]);
  check Alcotest.string "medium" "Medium" (rating [ 4; 4; 4; 4; 4 ]);
  check Alcotest.string "high" "High" (rating [ 6; 6; 6; 6; 6 ]);
  check Alcotest.string "critical" "Critical" (rating [ 8; 8; 8; 8; 8 ])

let test_dread_of_string () =
  (match Dread.of_string "8,5,4,6,4 (5.4)" with
  | Ok d -> check Alcotest.(float 1e-9) "avg recomputed" 5.4 (Dread.average d)
  | Error e -> Alcotest.fail e);
  (match Dread.of_string "8,5,4,6,4" with
  | Ok d -> Alcotest.(check (list int)) "no parens" [ 8; 5; 4; 6; 4 ] (Dread.to_list d)
  | Error e -> Alcotest.fail e);
  match Dread.of_string "8,5,x,6,4" with
  | Ok _ -> Alcotest.fail "accepted junk"
  | Error _ -> ()

let test_dread_pp () =
  match Dread.of_list [ 8; 5; 4; 6; 4 ] with
  | Ok d ->
      check Alcotest.string "table format" "8,5,4,6,4 (5.4)"
        (Format.asprintf "%a" Dread.pp d)
  | Error e -> Alcotest.fail e

let dread_components_gen =
  QCheck.Gen.(
    map
      (fun (a, b, c, d, e) -> [ a; b; c; d; e ])
      (tup5 (0 -- 10) (0 -- 10) (0 -- 10) (0 -- 10) (0 -- 10)))

let prop_dread_average_bounds =
  QCheck.Test.make ~name:"DREAD average within [0,10]" ~count:200
    (QCheck.make dread_components_gen) (fun l ->
      match Dread.of_list l with
      | Ok d ->
          let avg = Dread.average d in
          avg >= 0.0 && avg <= 10.0
      | Error _ -> false)

let prop_dread_string_roundtrip =
  QCheck.Test.make ~name:"DREAD pp/of_string round trip" ~count:200
    (QCheck.make dread_components_gen) (fun l ->
      match Dread.of_list l with
      | Ok d -> (
          match Dread.of_string (Format.asprintf "%a" Dread.pp d) with
          | Ok d' -> Dread.to_list d = Dread.to_list d'
          | Error _ -> false)
      | Error _ -> false)

(* ---------- Assets and entry points ---------- *)

let test_asset_make () =
  let a = Asset.make ~id:"ev_ecu" ~name:"EV-ECU" Asset.Safety_critical in
  check Alcotest.string "id" "ev_ecu" a.Asset.id;
  check Alcotest.int "rank" 3 (Asset.criticality_rank a.Asset.criticality)

let test_asset_bad_id () =
  Alcotest.check_raises "spaces" (Invalid_argument "Asset.make: invalid id \"EV ECU\"")
    (fun () -> ignore (Asset.make ~id:"EV ECU" ~name:"x" Asset.Operational))

let test_asset_ordering () =
  let a = Asset.make ~id:"a" ~name:"A" Asset.Convenience in
  let b = Asset.make ~id:"b" ~name:"B" Asset.Safety_critical in
  Alcotest.(check bool) "safety first" true (Asset.compare_by_criticality b a < 0)

let test_entry_point_remote () =
  let wireless = Entry_point.make ~id:"radio" ~name:"Radio" Entry_point.Wireless in
  let bus = Entry_point.make ~id:"canbus" ~name:"CAN" Entry_point.Bus in
  Alcotest.(check bool) "wireless remote" true (Entry_point.remote wireless);
  Alcotest.(check bool) "bus local" false (Entry_point.remote bus)

(* ---------- Threats ---------- *)

let dread_of l =
  match Dread.of_list l with Ok d -> d | Error e -> Alcotest.fail e

let stride_of s =
  match Stride.of_string s with Ok c -> c | Error e -> Alcotest.fail e

let sample_threat ?(id = "t1") ?(legit = [ Threat.Read ]) () =
  Threat.make ~id ~title:"Sample" ~asset:"ev_ecu" ~entry_points:[ "ep1"; "ep1" ]
    ~modes:[ "normal" ] ~stride:(stride_of "STD")
    ~dread:(dread_of [ 8; 5; 4; 6; 4 ])
    ~attack_operation:Threat.Write ~legitimate_operations:legit ()

let test_threat_make_dedups () =
  let t = sample_threat () in
  Alcotest.(check (list string)) "deduplicated entry points" [ "ep1" ]
    t.Threat.entry_points

let test_threat_risk () =
  let t = sample_threat () in
  check Alcotest.(float 1e-9) "risk" 5.4 (Threat.risk t)

let test_threat_residual () =
  Alcotest.(check bool) "read-only blocks write attack" false
    (Threat.residual_risk (sample_threat ()));
  Alcotest.(check bool) "write-permitting leaves residual" true
    (Threat.residual_risk (sample_threat ~legit:[ Threat.Read; Threat.Write ] ()))

let test_threat_validation () =
  Alcotest.check_raises "no entry points"
    (Invalid_argument "Threat.make: no entry points") (fun () ->
      ignore
        (Threat.make ~id:"x" ~title:"x" ~asset:"a" ~entry_points:[]
           ~stride:(stride_of "S")
           ~dread:(dread_of [ 1; 1; 1; 1; 1 ])
           ~attack_operation:Threat.Read ~legitimate_operations:[] ()))

(* ---------- Risk ---------- *)

let test_risk_likelihood_impact () =
  let d = dread_of [ 8; 6; 6; 4; 6 ] in
  check Alcotest.(float 1e-9) "likelihood" 6.0 (Risk.likelihood d);
  check Alcotest.(float 1e-9) "impact" 6.0 (Risk.impact d)

let test_risk_priorities () =
  let p l = Risk.priority_name (Risk.priority (dread_of l)) in
  check Alcotest.string "P1" "P1" (p [ 8; 8; 8; 8; 8 ]);
  check Alcotest.string "P2" "P2" (p [ 9; 1; 1; 9; 1 ]);
  check Alcotest.string "P3" "P3" (p [ 1; 9; 9; 1; 9 ]);
  check Alcotest.string "P4" "P4" (p [ 1; 1; 1; 1; 1 ])

let test_risk_rank () =
  let low = sample_threat ~id:"low" () in
  let high =
    Threat.make ~id:"high" ~title:"High" ~asset:"a" ~entry_points:[ "e" ]
      ~stride:(stride_of "T")
      ~dread:(dread_of [ 9; 9; 9; 9; 9 ])
      ~attack_operation:Threat.Write ~legitimate_operations:[] ()
  in
  match Risk.rank [ low; high ] with
  | first :: _ -> check Alcotest.string "highest first" "high" first.Threat.id
  | [] -> Alcotest.fail "empty ranking"

let test_risk_top () =
  let ts =
    List.init 5 (fun i ->
        Threat.make
          ~id:(Printf.sprintf "t%d" i)
          ~title:"t" ~asset:"a" ~entry_points:[ "e" ] ~stride:(stride_of "D")
          ~dread:(dread_of [ i * 2; i; i; i; i ])
          ~attack_operation:Threat.Read ~legitimate_operations:[] ())
  in
  check Alcotest.int "top 2" 2 (List.length (Risk.top 2 ts))

let test_risk_mean () =
  check Alcotest.(float 0.0) "empty" 0.0 (Risk.mean_risk []);
  check Alcotest.(float 1e-9) "singleton" 5.4 (Risk.mean_risk [ sample_threat () ])

let test_risk_by_priority_complete () =
  let buckets = Risk.by_priority [ sample_threat () ] in
  check Alcotest.int "four buckets" 4 (List.length buckets);
  let total = List.fold_left (fun acc (_, ts) -> acc + List.length ts) 0 buckets in
  check Alcotest.int "partition" 1 total

(* ---------- Model ---------- *)

let asset id = Asset.make ~id ~name:(String.uppercase_ascii id) Asset.Operational

let entry id = Entry_point.make ~id ~name:id Entry_point.Bus

let valid_model () =
  Model.make ~use_case:"test"
    ~assets:[ asset "ev_ecu"; asset "eps" ]
    ~entry_points:[ entry "ep1"; entry "ep2" ]
    ~modes:[ "normal" ] ~threats:[ sample_threat () ] ()

let test_model_valid () =
  match valid_model () with
  | Ok m ->
      check Alcotest.int "assets" 2 (List.length m.Model.assets);
      check Alcotest.(float 0.0) "no countermeasures" 0.0 (Model.coverage m)
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_model_unknown_asset () =
  let bad =
    Threat.make ~id:"bad" ~title:"bad" ~asset:"missing" ~entry_points:[ "ep1" ]
      ~stride:(stride_of "S")
      ~dread:(dread_of [ 1; 1; 1; 1; 1 ])
      ~attack_operation:Threat.Read ~legitimate_operations:[] ()
  in
  match
    Model.make ~use_case:"t" ~assets:[ asset "ev_ecu" ]
      ~entry_points:[ entry "ep1" ] ~threats:[ bad ] ()
  with
  | Ok _ -> Alcotest.fail "accepted unknown asset"
  | Error _ -> ()

let test_model_unknown_mode () =
  match
    Model.make ~use_case:"t" ~assets:[ asset "ev_ecu" ]
      ~entry_points:[ entry "ep1" ] ~modes:[]
      ~threats:
        [
          Threat.make ~id:"t" ~title:"t" ~asset:"ev_ecu" ~entry_points:[ "ep1" ]
            ~modes:[ "weird" ] ~stride:(stride_of "S")
            ~dread:(dread_of [ 1; 1; 1; 1; 1 ])
            ~attack_operation:Threat.Read ~legitimate_operations:[] ();
        ]
      ()
  with
  | Ok _ -> Alcotest.fail "accepted unknown mode"
  | Error _ -> ()

let test_model_duplicate_ids () =
  match
    Model.make ~use_case:"t"
      ~assets:[ asset "ev_ecu"; asset "ev_ecu" ]
      ~entry_points:[ entry "ep1" ] ~modes:[ "normal" ] ~threats:[] ()
  with
  | Ok _ -> Alcotest.fail "accepted duplicate assets"
  | Error _ -> ()

let test_model_countermeasure_refs () =
  match
    Model.make ~use_case:"t" ~assets:[ asset "ev_ecu" ]
      ~entry_points:[ entry "ep1" ] ~modes:[ "normal" ]
      ~threats:[ sample_threat () ]
      ~countermeasures:
        [ Countermeasure.guideline ~threat_id:"nonexistent" [ "do better" ] ]
      ()
  with
  | Ok _ -> Alcotest.fail "accepted dangling countermeasure"
  | Error _ -> ()

let test_model_queries () =
  match valid_model () with
  | Error es -> Alcotest.fail (String.concat "; " es)
  | Ok m ->
      check Alcotest.int "threats to ev_ecu" 1
        (List.length (Model.threats_to_asset m "ev_ecu"));
      check Alcotest.int "threats to eps" 0
        (List.length (Model.threats_to_asset m "eps"));
      check Alcotest.int "via ep1" 1
        (List.length (Model.threats_via_entry_point m "ep1"));
      check Alcotest.int "in normal" 1
        (List.length (Model.threats_in_mode m "normal"));
      Alcotest.(check bool) "find_threat" true (Model.find_threat m "t1" <> None)

let test_model_add_countermeasure_coverage () =
  match valid_model () with
  | Error es -> Alcotest.fail (String.concat "; " es)
  | Ok m -> (
      check Alcotest.int "uncovered" 1 (List.length (Model.uncovered_threats m));
      match
        Model.add_countermeasure m
          (Countermeasure.policy ~threat_id:"t1"
             ~enforcement:Countermeasure.Hardware_enforced
             "policy \"p\" version 1 {}")
      with
      | Ok m' ->
          check Alcotest.(float 0.0) "full coverage" 1.0 (Model.coverage m');
          check Alcotest.int "none uncovered" 0
            (List.length (Model.uncovered_threats m'))
      | Error es -> Alcotest.fail (String.concat "; " es))

let test_model_add_threat_revalidates () =
  match valid_model () with
  | Error es -> Alcotest.fail (String.concat "; " es)
  | Ok m -> (
      let bad =
        Threat.make ~id:"t2" ~title:"bad" ~asset:"nope" ~entry_points:[ "ep1" ]
          ~stride:(stride_of "S")
          ~dread:(dread_of [ 1; 1; 1; 1; 1 ])
          ~attack_operation:Threat.Read ~legitimate_operations:[] ()
      in
      match Model.add_threat m bad with
      | Ok _ -> Alcotest.fail "accepted invalid threat"
      | Error _ -> ())

let test_countermeasure_kinds () =
  let g = Countermeasure.guideline ~threat_id:"t" [ "a"; "b" ] in
  let p =
    Countermeasure.policy ~threat_id:"t"
      ~enforcement:Countermeasure.Software_enforced "src"
  in
  Alcotest.(check bool) "guideline not updatable" false
    (Countermeasure.updatable_post_deployment g);
  Alcotest.(check bool) "policy updatable" true
    (Countermeasure.updatable_post_deployment p);
  Alcotest.check_raises "empty guideline"
    (Invalid_argument "Countermeasure.guideline: empty recommendation list")
    (fun () -> ignore (Countermeasure.guideline ~threat_id:"t" []))

(* ---------- Model interchange format ---------- *)

module Model_format = Secpol_threat.Model_format

let sample_model_source =
  {|
# a small device model
use_case "Smart door lock"
description "Connected deadbolt"
modes normal maintenance

asset lock_motor "Lock motor" safety_critical "actuator bolting the door"
asset access_log "Access log" privacy

entry ble "Bluetooth LE" wireless "proximity radio"
entry keypad "Keypad" physical

threat replay_unlock {
  title "Replayed BLE unlock command"
  description "Captured unlock replayed at the kerb"
  asset lock_motor
  entry ble
  modes normal
  stride ST
  dread 8 6 5 7 6
  attack write
  legit read
}

threat log_theft {
  title "Access log exfiltration"
  asset access_log
  entry ble keypad
  stride I
  dread 5 7 6 8 7
  attack read
  legit read
}
|}

let test_format_parse () =
  match Model_format.parse sample_model_source with
  | Error e -> Alcotest.fail e
  | Ok m ->
      check Alcotest.string "use case" "Smart door lock" m.Model.use_case;
      check Alcotest.int "assets" 2 (List.length m.Model.assets);
      check Alcotest.int "entries" 2 (List.length m.Model.entry_points);
      check Alcotest.int "threats" 2 (List.length m.Model.threats);
      (match Model.find_threat m "replay_unlock" with
      | Some t ->
          check Alcotest.(float 1e-9) "risk" 6.4 (Threat.risk t);
          Alcotest.(check (list string)) "modes" [ "normal" ] t.Threat.modes
      | None -> Alcotest.fail "replay_unlock missing");
      (* a threat with no modes applies everywhere *)
      check Alcotest.int "log_theft in maintenance" 2
        (List.length (Model.threats_in_mode m "maintenance") + 1)

let test_format_roundtrip () =
  let m = Model_format.parse_exn sample_model_source in
  let m' = Model_format.parse_exn (Model_format.print m) in
  check Alcotest.string "use case" m.Model.use_case m'.Model.use_case;
  Alcotest.(check bool) "assets equal" true (m.Model.assets = m'.Model.assets);
  Alcotest.(check bool) "entries equal" true
    (m.Model.entry_points = m'.Model.entry_points);
  Alcotest.(check bool) "threats equal" true (m.Model.threats = m'.Model.threats)

let test_format_errors () =
  List.iter
    (fun src ->
      match Model_format.parse src with
      | Ok _ -> Alcotest.fail ("accepted: " ^ src)
      | Error _ -> ())
    [
      "";
      "use_case \"x\" asset a \"A\" bogus_criticality";
      "use_case \"x\" threat t { }";
      "use_case \"x\" threat t { title \"y\" asset ghost entry e stride S \
       dread 1 1 1 1 1 attack write }";
      "use_case \"x\" nonsense";
      "use_case \"x\" threat t { dread 1 2 3 }";
    ]

let test_format_validates_references () =
  (* syntax fine, semantics broken: threat references an unknown asset *)
  let src =
    {|use_case "x"
      entry e "E" bus
      threat t { title "t" asset ghost entry e stride S dread 1 1 1 1 1 attack write }|}
  in
  match Model_format.parse src with
  | Ok _ -> Alcotest.fail "accepted dangling asset reference"
  | Error e ->
      Alcotest.(check bool) "validator message" true
        (String.length e > 0 && not (String.length e > 4 && String.sub e 0 4 = "line"))

(* ---------- Report rendering ---------- *)

let test_report_markdown () =
  match valid_model () with
  | Error es -> Alcotest.fail (String.concat "; " es)
  | Ok m ->
      let md = Secpol_threat.Report.markdown m in
      let contains needle =
        let nl = String.length needle and hl = String.length md in
        let rec scan i =
          i + nl <= hl && (String.sub md i nl = needle || scan (i + 1))
        in
        scan 0
      in
      List.iter
        (fun section ->
          Alcotest.(check bool) ("contains " ^ section) true (contains section))
        [
          "# Security model: test";
          "## Assets";
          "## Entry points";
          "## Threats";
          "## Risk matrix";
          "## Countermeasures";
          "| t1 |";
          "8,5,4,6,4 (5.4)";
          "### Uncovered threats";
        ]

let test_report_table_rows () =
  match valid_model () with
  | Error es -> Alcotest.fail (String.concat "; " es)
  | Ok m ->
      let table = Secpol_threat.Report.threat_table m in
      let rows =
        List.filter
          (fun l -> String.length l > 0 && l.[0] = '|')
          (String.split_on_char '\n' table)
      in
      (* header + separator + one threat *)
      check Alcotest.int "row count" 3 (List.length rows)

let () =
  Alcotest.run "secpol_threat"
    [
      ( "stride",
        [
          quick "codes" test_stride_codes;
          quick "parse" test_stride_parse;
          quick "parse unordered" test_stride_parse_unordered;
          quick "rejects bad input" test_stride_rejects_bad;
          quick "full set" test_stride_full_set;
          quick "properties violated" test_stride_properties;
          QCheck_alcotest.to_alcotest prop_stride_roundtrip;
        ] );
      ( "dread",
        [
          quick "make + average" test_dread_make;
          quick "range validation" test_dread_out_of_range;
          quick "of_list" test_dread_of_list;
          quick "rating bands" test_dread_rating_bands;
          quick "of_string" test_dread_of_string;
          quick "pp table format" test_dread_pp;
          QCheck_alcotest.to_alcotest prop_dread_average_bounds;
          QCheck_alcotest.to_alcotest prop_dread_string_roundtrip;
        ] );
      ( "assets",
        [
          quick "make" test_asset_make;
          quick "bad id" test_asset_bad_id;
          quick "criticality ordering" test_asset_ordering;
          quick "entry point remoteness" test_entry_point_remote;
        ] );
      ( "threats",
        [
          quick "dedup" test_threat_make_dedups;
          quick "risk" test_threat_risk;
          quick "residual risk" test_threat_residual;
          quick "validation" test_threat_validation;
        ] );
      ( "risk",
        [
          quick "likelihood/impact" test_risk_likelihood_impact;
          quick "priority quadrants" test_risk_priorities;
          quick "ranking" test_risk_rank;
          quick "top-n" test_risk_top;
          quick "mean risk" test_risk_mean;
          quick "by_priority partition" test_risk_by_priority_complete;
        ] );
      ( "model",
        [
          quick "valid model" test_model_valid;
          quick "unknown asset" test_model_unknown_asset;
          quick "unknown mode" test_model_unknown_mode;
          quick "duplicate ids" test_model_duplicate_ids;
          quick "dangling countermeasure" test_model_countermeasure_refs;
          quick "queries" test_model_queries;
          quick "coverage" test_model_add_countermeasure_coverage;
          quick "add_threat revalidates" test_model_add_threat_revalidates;
          quick "countermeasure kinds" test_countermeasure_kinds;
        ] );
      ( "format",
        [
          quick "parse" test_format_parse;
          quick "print/parse round trip" test_format_roundtrip;
          quick "syntax errors" test_format_errors;
          quick "reference validation" test_format_validates_references;
        ] );
      ( "report",
        [
          quick "markdown sections" test_report_markdown;
          quick "table rows" test_report_table_rows;
        ] );
    ]
