(* Tests for the connected-car case study, including the Table-I
   reproduction checks: recomputed DREAD averages and re-derived policy
   cells must match the paper. *)

module V = Secpol_vehicle
module Modes = V.Modes
module State = V.State
module Names = V.Names
module Messages = V.Messages
module Policy_map = V.Policy_map
module Catalog = V.Threat_catalog
module Car = V.Car
module Os = V.Infotainment_os
module Threat = Secpol_threat.Threat
module Dread = Secpol_threat.Dread
module Model = Secpol_threat.Model
module Derive = Secpol_policy.Derive
module Conflict = Secpol_policy.Conflict
module Compile = Secpol_policy.Compile
module PEngine = Secpol_policy.Engine
module Node = Secpol_can.Node

let check = Alcotest.check

let quick name f = Alcotest.test_case name `Quick f

(* ---------- Names and modes ---------- *)

let test_modes () =
  check Alcotest.int "three modes" 3 (List.length Modes.all);
  List.iter
    (fun m ->
      check
        Alcotest.(option string)
        "name round trip"
        (Some (Modes.name m))
        (Option.map Modes.name (Modes.of_name (Modes.name m))))
    Modes.all;
  Alcotest.(check bool) "unknown" true (Modes.of_name "turbo" = None)

let test_names_bijection () =
  check Alcotest.int "eight nodes" 8 (List.length Names.nodes);
  check Alcotest.int "eight assets" 8 (List.length Names.assets);
  List.iter
    (fun node ->
      check Alcotest.string "asset/node round trip" node
        (Names.node_of_asset (Names.asset_of_node node)))
    Names.nodes

let test_entry_point_mapping () =
  List.iter
    (fun ep ->
      let nodes = Names.nodes_of_entry_point ep in
      Alcotest.(check bool) "non-empty" true (nodes <> []);
      List.iter
        (fun n -> Alcotest.(check bool) "known node" true (List.mem n Names.nodes))
        nodes)
    Names.entry_points;
  check Alcotest.int "any_node covers all" 8
    (List.length (Names.nodes_of_entry_point Names.ep_any_node))

(* ---------- Message map ---------- *)

let test_messages_validate () =
  Alcotest.(check (list string)) "consistent" [] (Messages.validate ())

let test_messages_lookup () =
  (match Messages.find Messages.ecu_command with
  | Some m ->
      check Alcotest.string "name" "ecu_command" m.Messages.name;
      Alcotest.(check bool) "safety produces" true
        (List.mem Names.safety m.Messages.producers);
      Alcotest.(check bool) "infotainment does not" false
        (List.mem Names.infotainment m.Messages.producers)
  | None -> Alcotest.fail "ecu_command missing");
  Alcotest.(check bool) "unknown id" true (Messages.find 0x7FE = None)

let test_messages_produced_consumed () =
  let produced = Messages.produced_by Names.sensors in
  Alcotest.(check bool) "sensors produce telemetry" true
    (List.exists (fun (m : Messages.t) -> m.id = Messages.brake_status) produced);
  let consumed = Messages.consumed_by Names.ev_ecu in
  Alcotest.(check bool) "ecu consumes its command" true
    (List.exists (fun (m : Messages.t) -> m.id = Messages.ecu_command) consumed)

let test_messages_priority_structure () =
  (* safety-critical messages must win arbitration against telemetry *)
  Alcotest.(check bool) "airbag beats telemetry" true
    (Messages.airbag_deploy < Messages.brake_status);
  Alcotest.(check bool) "failsafe beats commands" true
    (Messages.failsafe_enter < Messages.ecu_command)

(* ---------- Policies ---------- *)

let test_baseline_compiles_cleanly () =
  let p = Policy_map.baseline () in
  let db =
    Compile.compile_exn
      ~known_modes:(List.map Modes.name Modes.all)
      ~known_assets:Names.assets ~known_subjects:Names.assets p
  in
  Alcotest.(check bool) "default deny" true (db.Secpol_policy.Ir.default = Secpol_policy.Ast.Deny);
  check Alcotest.int "no conflicts" 0 (List.length (Conflict.conflicts db));
  Alcotest.(check bool) "plenty of rules" true
    (List.length db.Secpol_policy.Ir.rules > 20)

let test_baseline_least_privilege () =
  let e = Policy_map.engine (Policy_map.baseline ()) in
  let req subject op msg_id asset =
    {
      Secpol_policy.Ir.mode = "normal";
      subject;
      asset;
      op;
      msg_id = Some msg_id;
    }
  in
  (* designed producer may write *)
  Alcotest.(check bool) "safety writes ecu_command" true
    (PEngine.permitted e
       (req Names.asset_safety_critical Secpol_policy.Ir.Write
          Messages.ecu_command Names.ev_ecu));
  (* non-producer may not *)
  Alcotest.(check bool) "infotainment cannot write ecu_command" false
    (PEngine.permitted e
       (req Names.infotainment Secpol_policy.Ir.Write Messages.ecu_command
          Names.ev_ecu));
  (* designed consumer may read *)
  Alcotest.(check bool) "ev_ecu reads brake_status" true
    (PEngine.permitted e
       (req Names.ev_ecu Secpol_policy.Ir.Read Messages.brake_status
          Names.sensors));
  (* diag traffic only in remote_diagnostic mode *)
  Alcotest.(check bool) "diag denied in normal" false
    (PEngine.permitted e
       (req Names.asset_connectivity Secpol_policy.Ir.Write
          Messages.diag_request Names.asset_safety_critical));
  Alcotest.(check bool) "diag allowed in remote_diagnostic" true
    (PEngine.permitted e
       {
         (req Names.asset_connectivity Secpol_policy.Ir.Write
            Messages.diag_request Names.asset_safety_critical)
         with
         mode = "remote_diagnostic";
       })

let test_permissive_allows_everything () =
  let e = Policy_map.engine (Policy_map.permissive ()) in
  Alcotest.(check bool) "anything goes" true
    (PEngine.permitted e
       {
         Secpol_policy.Ir.mode = "normal";
         subject = "anyone";
         asset = Names.ev_ecu;
         op = Secpol_policy.Ir.Write;
         msg_id = Some Messages.ecu_command;
       })

let test_hpe_config_for_nodes () =
  let e = Policy_map.engine (Policy_map.baseline ()) in
  let cfg_inf =
    Policy_map.hpe_config_for e ~mode:Modes.Normal ~node:Names.infotainment
  in
  Alcotest.(check bool) "infotainment cannot write commands" false
    (List.mem Messages.ecu_command cfg_inf.Secpol_hpe.Config.write_ids);
  Alcotest.(check bool) "infotainment reads telemetry" true
    (List.mem Messages.accel_status cfg_inf.Secpol_hpe.Config.read_ids);
  let cfg_safety =
    Policy_map.hpe_config_for e ~mode:Modes.Normal ~node:Names.safety
  in
  Alcotest.(check bool) "safety writes ecu_command" true
    (List.mem Messages.ecu_command cfg_safety.Secpol_hpe.Config.write_ids);
  let cfg_sensors =
    Policy_map.hpe_config_for e ~mode:Modes.Normal ~node:Names.sensors
  in
  Alcotest.(check bool) "sensors write their telemetry" true
    (List.mem Messages.brake_status cfg_sensors.Secpol_hpe.Config.write_ids);
  Alcotest.(check bool) "sensors cannot write engine_command" false
    (List.mem Messages.engine_command cfg_sensors.Secpol_hpe.Config.write_ids)

let test_hardened_situational_and_behavioural () =
  let e = Policy_map.engine (Policy_map.hardened ()) in
  let lock_write mode =
    {
      Secpol_policy.Ir.mode;
      subject = Names.asset_connectivity;
      asset = Names.door_locks;
      op = Secpol_policy.Ir.Write;
      msg_id = Some Messages.lock_command;
    }
  in
  (* situational: remote locking works in normal mode, is denied in
     fail-safe (row 14's attack window) *)
  Alcotest.(check bool) "normal-mode remote lock works" true
    (PEngine.permitted ~now:0.0 e (lock_write "normal"));
  Alcotest.(check bool) "fail-safe relock denied" false
    (PEngine.permitted ~now:1.0 e (lock_write "fail_safe"));
  (* behavioural: the third lock command within 10 s is refused *)
  Alcotest.(check bool) "second within budget" true
    (PEngine.permitted ~now:2.0 e (lock_write "normal"));
  Alcotest.(check bool) "third exceeds the budget" false
    (PEngine.permitted ~now:3.0 e (lock_write "normal"));
  Alcotest.(check bool) "budget recovers" true
    (PEngine.permitted ~now:20.0 e (lock_write "normal"))

let test_hardened_closes_row14_on_car () =
  (* the accident-relock attack (Table I row 14) is residual under the
     baseline policy but closed by the situational update *)
  let run policy =
    let car = Car.create ~enforcement:(Car.Hpe policy) () in
    Car.run car ~seconds:0.3;
    V.Safety.trigger_crash (Car.node car Names.safety) car.Car.state;
    Car.run car ~seconds:0.1;
    (* the hardware mode line follows the fail-safe entry *)
    Car.set_mode car Modes.Fail_safe;
    let node = Car.node car Names.telematics in
    Secpol_can.Controller.set_filters (Node.controller node) [];
    let _ =
      Node.send node
        (Secpol_can.Frame.data_std Messages.lock_command
           (String.make 1 Messages.cmd_lock))
    in
    Car.run car ~seconds:0.3;
    car.Car.state.State.doors_locked
  in
  Alcotest.(check bool) "baseline: occupants trapped (residual)" true
    (run (Policy_map.baseline ()));
  Alcotest.(check bool) "hardened: rescue access preserved" false
    (run (Policy_map.hardened ()))

let test_hardened_benign_unharmed () =
  let car = Car.create ~enforcement:(Car.Hpe (Policy_map.hardened ())) () in
  Car.run car ~seconds:2.0;
  check Alcotest.int "no false blocks" 0 (Car.false_hpe_blocks car);
  (* remote lock/unlock still works within the behavioural budget *)
  ignore (V.Telematics.remote_unlock (Car.node car Names.telematics));
  Car.run car ~seconds:0.2;
  Alcotest.(check bool) "unlocked" false car.Car.state.State.doors_locked

(* ---------- Table I reproduction (experiment T1) ---------- *)

let test_table1_sixteen_rows () =
  check Alcotest.int "sixteen threats" 16 (List.length Catalog.rows)

let test_table1_dread_averages_match_paper () =
  List.iter
    (fun (row : Catalog.row) ->
      let recomputed = Dread.average row.threat.Threat.dread in
      check
        Alcotest.(float 1e-9)
        (row.threat.Threat.id ^ " average")
        row.paper_average recomputed)
    Catalog.rows

let test_table1_policy_column_matches_derivation () =
  List.iter
    (fun (row : Catalog.row) ->
      match Derive.row_access row.threat with
      | Some derived ->
          check Alcotest.string
            (row.threat.Threat.id ^ " policy cell")
            (Derive.access_name row.paper_policy)
            (Derive.access_name derived)
      | None -> Alcotest.fail (row.threat.Threat.id ^ ": no access derived"))
    Catalog.rows

let test_table1_residual_rows () =
  let residual_ids =
    Catalog.rows
    |> List.filter (fun (r : Catalog.row) -> Threat.residual_risk r.threat)
    |> List.map (fun (r : Catalog.row) -> r.threat.Threat.id)
  in
  Alcotest.(check (list string))
    "exactly the W/RW rows carry residual risk"
    [
      Catalog.ev_ecu_tracking_disable;
      Catalog.connectivity_modem_disable_emergency;
      Catalog.door_lock_in_accident;
      Catalog.safety_alarm_disable;
    ]
    residual_ids

let test_table1_residual_iff_not_r () =
  List.iter
    (fun (row : Catalog.row) ->
      let residual = Threat.residual_risk row.threat in
      let is_r = row.paper_policy = Derive.R in
      Alcotest.(check bool)
        (row.threat.Threat.id ^ " residual iff not R")
        (not is_r) residual)
    Catalog.rows

let test_table1_model_validates () =
  let m = Catalog.model () in
  check Alcotest.int "16 threats" 16 (List.length m.Model.threats);
  check Alcotest.int "8 assets" 8 (List.length m.Model.assets);
  check Alcotest.(float 0.0) "full countermeasure coverage" 1.0 (Model.coverage m)

let test_table1_stride_strings () =
  let expect =
    [
      ("ev_ecu_spoof_disable_locks", "STD");
      ("ev_ecu_tracking_disable", "SD");
      ("connectivity_component_modification", "STIDE");
      ("connectivity_firmware_privacy", "TIE");
      ("infotainment_status_modification", "STR");
      ("safety_alarm_disable", "TE");
    ]
  in
  List.iter
    (fun (id, stride) ->
      match Catalog.find id with
      | Some row ->
          check Alcotest.string (id ^ " stride") stride
            (Secpol_threat.Stride.to_string row.threat.Threat.stride)
      | None -> Alcotest.fail ("missing row " ^ id))
    expect

let test_table1_model_roundtrips_through_format () =
  (* the whole sixteen-row model survives textual export/import *)
  let m = Catalog.model () in
  match
    Secpol_threat.Model_format.parse (Secpol_threat.Model_format.print m)
  with
  | Error e -> Alcotest.fail e
  | Ok m' ->
      Alcotest.(check bool) "threats equal" true
        (m.Model.threats = m'.Model.threats);
      Alcotest.(check bool) "assets equal" true (m.Model.assets = m'.Model.assets);
      Alcotest.(check bool) "entry points equal" true
        (m.Model.entry_points = m'.Model.entry_points);
      Alcotest.(check (list string)) "modes equal" m.Model.modes m'.Model.modes

let test_table1_highest_risk_is_door_lock_in_accident () =
  (* 6.8 is the table's maximum *)
  match Secpol_threat.Risk.rank Catalog.threats with
  | top :: _ ->
      check Alcotest.string "top risk" Catalog.door_lock_in_accident
        top.Threat.id
  | [] -> Alcotest.fail "no threats"

(* ---------- Car simulation ---------- *)

let test_car_benign_traffic () =
  let car = Car.create () in
  Car.run car ~seconds:2.0;
  Alcotest.(check bool) "deliveries happened" true (Car.total_deliveries car > 100);
  let s = car.Car.state in
  Alcotest.(check bool) "ecu healthy" true s.State.ev_ecu_enabled;
  Alcotest.(check bool) "engine running" true s.State.engine_running;
  Alcotest.(check bool) "doors locked" true s.State.doors_locked;
  Alcotest.(check bool) "modem up" true s.State.modem_enabled

(* Deliveries to designed consumers only: nodes that consume nothing have an
   empty acceptance bank, which a CAN controller treats as accept-all, so
   raw delivery totals over-count under software filters. *)
let designed_deliveries car =
  Secpol_can.Trace.count (Car.trace car) (fun e ->
      match e.Secpol_can.Trace.event with
      | Secpol_can.Trace.Rx_delivered receiver -> (
          match e.Secpol_can.Trace.frame.Secpol_can.Frame.id with
          | Secpol_can.Identifier.Standard id -> (
              match Messages.find id with
              | Some m -> List.mem receiver m.Messages.consumers
              | None -> false)
          | Secpol_can.Identifier.Extended _ -> false)
      | _ -> false)

let test_car_hpe_no_false_blocks () =
  let baseline = Car.create ~enforcement:Car.Software_filters () in
  Car.run baseline ~seconds:2.0;
  let car = Car.create ~enforcement:(Car.Hpe (Policy_map.baseline ())) () in
  Car.run car ~seconds:2.0;
  check Alcotest.int "zero false blocks on clean traffic" 0
    (Car.false_hpe_blocks car);
  (* every designed delivery still happens *)
  check Alcotest.int "designed deliveries match the software-filter baseline"
    (designed_deliveries baseline)
    (designed_deliveries car)

let test_car_crash_chain () =
  let car = Car.create () in
  Car.run car ~seconds:0.5;
  V.Safety.trigger_crash (Car.node car Names.safety) car.Car.state;
  Car.run car ~seconds:0.5;
  let s = car.Car.state in
  Alcotest.(check bool) "failsafe latched" true s.State.failsafe_latched;
  Alcotest.(check bool) "doors unlocked for rescue" false s.State.doors_locked;
  Alcotest.(check bool) "propulsion cut" false s.State.ev_ecu_enabled;
  check Alcotest.int "emergency call placed" 1 s.State.emergency_calls

let test_car_remote_lock_unlock () =
  let car = Car.create ~driving:false () in
  Car.run car ~seconds:0.2;
  ignore (V.Telematics.remote_lock (Car.node car Names.telematics));
  Car.run car ~seconds:0.2;
  Alcotest.(check bool) "locked" true car.Car.state.State.doors_locked;
  ignore (V.Telematics.remote_unlock (Car.node car Names.telematics));
  Car.run car ~seconds:0.2;
  Alcotest.(check bool) "unlocked" false car.Car.state.State.doors_locked

let test_car_alarm_immobilises () =
  let car = Car.create ~driving:false () in
  Car.run car ~seconds:0.2;
  V.Safety.arm_alarm (Car.node car Names.safety) car.Car.state;
  Car.run car ~seconds:0.2;
  Alcotest.(check bool) "armed" true car.Car.state.State.alarm_armed;
  Alcotest.(check bool) "immobilised" false car.Car.state.State.ev_ecu_enabled;
  V.Safety.disarm_alarm (Car.node car Names.safety) car.Car.state;
  Car.run car ~seconds:0.2;
  Alcotest.(check bool) "mobile again" true car.Car.state.State.ev_ecu_enabled

let test_car_mode_switch_reprovisions () =
  let car = Car.create ~enforcement:(Car.Hpe (Policy_map.baseline ())) () in
  Car.run car ~seconds:0.2;
  Car.set_mode car Modes.Remote_diagnostic;
  (match Car.hpe car Names.telematics with
  | Some hpe ->
      Alcotest.(check bool) "still locked after reprovision" true
        (Secpol_hpe.Engine.locked hpe)
  | None -> Alcotest.fail "no hpe on telematics");
  (* diag request is writable by telematics only in remote_diagnostic mode *)
  Alcotest.(check bool) "diag write passes now" true
    (Node.send (Car.node car Names.telematics)
       (Secpol_can.Frame.data_std Messages.diag_request "\x01"));
  Car.set_mode car Modes.Normal;
  Alcotest.(check bool) "diag write refused in normal" false
    (Node.send (Car.node car Names.telematics)
       (Secpol_can.Frame.data_std Messages.diag_request "\x01"))

let test_car_diagnostic_session () =
  let car = Car.create ~enforcement:(Car.Hpe (Policy_map.baseline ())) ~driving:false () in
  Car.run car ~seconds:0.2;
  let telematics = Car.node car Names.telematics in
  let responses () =
    List.length
      (List.filter
         (fun (f : Secpol_can.Frame.t) ->
           Secpol_can.Identifier.raw f.id = Messages.diag_response)
         (Node.received telematics))
  in
  (* in normal mode the request never reaches the bus *)
  Alcotest.(check bool) "request refused in normal mode" false
    (V.Telematics.request_diagnostics telematics);
  (* switch to remote diagnostics: request goes out, five ECUs answer *)
  Car.set_mode car Modes.Remote_diagnostic;
  Alcotest.(check bool) "request accepted in RD mode" true
    (V.Telematics.request_diagnostics telematics);
  Car.run car ~seconds:0.2;
  check Alcotest.int "five ECUs respond" 5 (responses ());
  (* back in normal mode the ECUs stay silent even to a forged request *)
  Car.set_mode car Modes.Normal;
  let before = responses () in
  let atk_node = Car.node car Names.sensors in
  Secpol_can.Controller.set_filters (Node.controller atk_node) [];
  ignore
    (Node.send atk_node (Secpol_can.Frame.data_std Messages.diag_request "\x01"));
  Car.run car ~seconds:0.2;
  check Alcotest.int "no responses in normal mode" before (responses ())

let test_car_display_mirrors_speed () =
  let car = Car.create () in
  Car.run car ~seconds:1.0;
  match V.Infotainment.displayed_speed (Car.node car Names.infotainment) with
  | Some s -> check Alcotest.(float 0.01) "display shows 50" 50.0 s
  | None -> Alcotest.fail "display never updated"

(* ---------- ECU helpers ---------- *)

let test_ecu_frame_padding () =
  let m = Messages.find_exn Messages.ecu_status in
  (* ecu_status has dlc 4: short payloads pad, long ones truncate *)
  let short = V.Ecu.frame_of m "\x01" in
  check Alcotest.int "padded" 4 short.Secpol_can.Frame.dlc;
  check Alcotest.string "zero padding" "\x01\x00\x00\x00"
    short.Secpol_can.Frame.payload;
  let long = V.Ecu.frame_of m "\x01\x02\x03\x04\x05\x06" in
  check Alcotest.string "truncated" "\x01\x02\x03\x04"
    long.Secpol_can.Frame.payload

let test_ecu_command_helpers () =
  let m = Messages.find_exn Messages.ecu_command in
  let f = V.Ecu.command_frame m Messages.cmd_disable in
  Alcotest.(check (option char)) "command byte" (Some Messages.cmd_disable)
    (V.Ecu.command f);
  let empty = Secpol_can.Frame.data_std 0x100 "" in
  Alcotest.(check (option char)) "empty payload" None (V.Ecu.command empty)

let test_names_invalid_inputs () =
  Alcotest.check_raises "unknown node"
    (Invalid_argument "Names.asset_of_node: unknown node \"toaster\"")
    (fun () -> ignore (Names.asset_of_node "toaster"));
  Alcotest.check_raises "unknown entry point"
    (Invalid_argument "Names.nodes_of_entry_point: unknown \"ep_toaster\"")
    (fun () -> ignore (Names.nodes_of_entry_point "ep_toaster"))

let test_pp_smoke () =
  (* the report/matrix printers must render the full model without raising *)
  let m = Catalog.model () in
  let report = Format.asprintf "%a" Model.pp_report m in
  Alcotest.(check bool) "report mentions the use case" true
    (String.length report > 500);
  let state = Format.asprintf "%a" State.pp (State.driving ()) in
  Alcotest.(check bool) "state renders" true (String.length state > 20)

(* ---------- Intrusion detection ---------- *)

module Ids = V.Ids

let kind_is name (i : Ids.incident) = Ids.kind_name i.Ids.kind = name

let test_ids_quiet_on_benign_traffic () =
  let car = Car.create ~enforcement:(Car.Hpe (Policy_map.baseline ())) () in
  let ids = Ids.create car in
  Car.run car ~seconds:2.0;
  Alcotest.(check (list string)) "no incidents" []
    (List.map (fun (i : Ids.incident) -> Ids.kind_name i.Ids.kind) (Ids.scan ids))

let test_ids_flags_unapproved_source () =
  let car = Car.create () in
  let ids = Ids.create car in
  Car.run car ~seconds:0.5;
  ignore (Ids.scan ids);
  let node = Car.node car Names.infotainment in
  Secpol_can.Controller.set_filters (Node.controller node) [];
  ignore
    (Node.send node
       (Secpol_can.Frame.data_std Messages.ecu_command
          (String.make 1 Messages.cmd_disable)));
  Car.run car ~seconds:0.2;
  let fresh = Ids.scan ids in
  Alcotest.(check bool) "unapproved source raised" true
    (List.exists (kind_is "unapproved-source") fresh)

let test_ids_flags_unknown_id_and_flood () =
  let car = Car.create () in
  let ids = Ids.create car in
  Car.run car ~seconds:0.5;
  ignore (Ids.scan ids);
  let alien = Node.create ~name:"alien" car.Car.bus in
  ignore (Node.send alien (Secpol_can.Frame.data_std 0x7F0 ""));
  for _ = 1 to 200 do
    ignore (Node.send alien (Secpol_can.Frame.data_std Messages.brake_status "\x00\x00"))
  done;
  Car.run car ~seconds:0.5;
  let fresh = Ids.scan ids in
  Alcotest.(check bool) "unknown id raised" true
    (List.exists (kind_is "unknown-id") fresh);
  Alcotest.(check bool) "flood raised" true
    (List.exists (kind_is "flood") fresh)

let test_ids_uses_hpe_signals () =
  let car = Car.create ~enforcement:(Car.Hpe (Policy_map.baseline ())) () in
  let ids = Ids.create car in
  Car.run car ~seconds:0.5;
  ignore (Ids.scan ids);
  (* compromised node tries to transmit outside policy: write blocks *)
  let node = Car.node car Names.infotainment in
  ignore
    (Node.send node
       (Secpol_can.Frame.data_std Messages.ecu_command
          (String.make 1 Messages.cmd_disable)));
  (* alien impersonates the sensors: spoof alerts *)
  let alien = Node.create ~name:"alien" car.Car.bus in
  ignore (Node.send alien (Secpol_can.Frame.data_std Messages.brake_status "\x00\x00"));
  Car.run car ~seconds:0.2;
  let fresh = Ids.scan ids in
  Alcotest.(check bool) "policy violation raised" true
    (List.exists (kind_is "policy-violation") fresh);
  Alcotest.(check bool) "impersonation raised" true
    (List.exists (kind_is "impersonation") fresh);
  (* incremental: a second scan with no new activity is silent *)
  Alcotest.(check (list string)) "second scan quiet" []
    (List.map (fun (i : Ids.incident) -> Ids.kind_name i.Ids.kind) (Ids.scan ids));
  Alcotest.(check bool) "history retained" true (List.length (Ids.incidents ids) >= 2)

(* ---------- Segmented (gateway) topology ---------- *)

module Segmented = V.Segmented

let test_segmented_benign_function () =
  let car = Segmented.create () in
  Segmented.run car ~seconds:1.0;
  (* cross-segment telemetry still reaches the driver display *)
  (match V.Infotainment.displayed_speed (Segmented.node car Names.infotainment) with
  | Some s -> check Alcotest.(float 0.01) "display shows 50" 50.0 s
  | None -> Alcotest.fail "telemetry never crossed the gateway");
  (* the crash chain spans both segments: safety (powertrain) unlocks the
     doors (comfort) and the telematics unit places the call *)
  V.Safety.trigger_crash (Segmented.node car Names.safety) car.Segmented.state;
  Segmented.run car ~seconds:0.5;
  Alcotest.(check bool) "doors unlocked across segments" false
    car.Segmented.state.State.doors_locked;
  check Alcotest.int "emergency call placed" 1
    car.Segmented.state.State.emergency_calls

let test_segmented_blocks_non_crossing_injection () =
  (* eps_command never legitimately crosses: the gateway drops it *)
  let car = Segmented.create () in
  Segmented.run car ~seconds:0.3;
  let infotainment = Segmented.node car Names.infotainment in
  Secpol_can.Controller.set_filters (Node.controller infotainment) [];
  ignore
    (Node.send infotainment
       (Secpol_can.Frame.data_std Messages.eps_command
          (String.make 1 Messages.cmd_disable)));
  Segmented.run car ~seconds:0.3;
  Alcotest.(check bool) "eps survives" true car.Segmented.state.State.eps_active;
  Alcotest.(check bool) "gateway dropped something" true
    (Secpol_can.Gateway.dropped car.Segmented.gateway > 0)

let test_segmented_residual_crossing_injection () =
  (* ecu_command legitimately crosses (door_locks -> ev_ecu), so the
     ID-granular gateway forwards the forged copy too — the weakness the
     per-node HPE does not have *)
  let car = Segmented.create () in
  Segmented.run car ~seconds:0.3;
  let infotainment = Segmented.node car Names.infotainment in
  Secpol_can.Controller.set_filters (Node.controller infotainment) [];
  ignore
    (Node.send infotainment
       (Secpol_can.Frame.data_std Messages.ecu_command
          (String.make 1 Messages.cmd_disable)));
  Segmented.run car ~seconds:0.3;
  Alcotest.(check bool) "gateway forwards the forged crossing ID" false
    car.Segmented.state.State.ev_ecu_enabled

let test_segmented_whitelist_is_minimal () =
  let ids = Segmented.crossing_ids () in
  Alcotest.(check bool) "ecu_command crosses" true
    (List.mem Messages.ecu_command ids);
  Alcotest.(check bool) "eps_command does not" false
    (List.mem Messages.eps_command ids);
  Alcotest.(check bool) "engine_command does not" false
    (List.mem Messages.engine_command ids)

(* ---------- Infotainment OS ---------- *)

let make_os ?hardened () =
  let car = Car.create () in
  Car.run car ~seconds:0.1;
  (car, Os.create_exn ?hardened car.Car.state (Car.node car Names.infotainment))

let test_os_browse_allowed_everywhere () =
  let _, os = make_os () in
  Alcotest.(check bool) "v1 browse" true (Os.browse os);
  let _, os2 = make_os ~hardened:true () in
  Alcotest.(check bool) "v2 browse" true (Os.browse os2)

let test_os_escalation_chain_v1 () =
  let car, os = make_os () in
  match Os.exploit_browser os with
  | Error e -> Alcotest.fail ("factory policy should allow the chain: " ^ e)
  | Ok installer ->
      Alcotest.(check bool) "install works" true
        (Os.install_package os ~as_:installer);
      check Alcotest.int "install counted" 1
        car.Car.state.State.software_installs;
      Alcotest.(check bool) "CAN write allowed by sloppy policy" true
        (Os.send_can os ~as_:installer
           (Secpol_can.Frame.data_std Messages.media_status "\x01"))

let test_os_escalation_blocked_v2 () =
  let _, os = make_os ~hardened:true () in
  (match Os.exploit_browser os with
  | Ok _ -> Alcotest.fail "hardened policy allowed the transition"
  | Error _ -> ());
  Alcotest.(check bool) "denials audited" true (Os.denial_count os > 0)

let test_os_runtime_hardening () =
  let _, os = make_os () in
  (match Os.exploit_browser os with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Os.apply_hardening os with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es));
  match Os.exploit_browser os with
  | Ok _ -> Alcotest.fail "escalation survived the policy update"
  | Error _ -> ()

let () =
  Alcotest.run "secpol_vehicle"
    [
      ( "naming",
        [
          quick "modes" test_modes;
          quick "node/asset bijection" test_names_bijection;
          quick "entry-point mapping" test_entry_point_mapping;
        ] );
      ( "messages",
        [
          quick "map validates" test_messages_validate;
          quick "lookup" test_messages_lookup;
          quick "produced/consumed" test_messages_produced_consumed;
          quick "priority structure" test_messages_priority_structure;
        ] );
      ( "policies",
        [
          quick "baseline compiles" test_baseline_compiles_cleanly;
          quick "least privilege" test_baseline_least_privilege;
          quick "permissive factory" test_permissive_allows_everything;
          quick "hpe configs" test_hpe_config_for_nodes;
          quick "hardened: situational + behavioural"
            test_hardened_situational_and_behavioural;
          quick "hardened closes row 14" test_hardened_closes_row14_on_car;
          quick "hardened leaves benign traffic alone"
            test_hardened_benign_unharmed;
        ] );
      ( "table1",
        [
          quick "sixteen rows" test_table1_sixteen_rows;
          quick "DREAD averages match paper" test_table1_dread_averages_match_paper;
          quick "policy column matches derivation"
            test_table1_policy_column_matches_derivation;
          quick "residual rows" test_table1_residual_rows;
          quick "residual iff not R" test_table1_residual_iff_not_r;
          quick "model validates" test_table1_model_validates;
          quick "stride strings" test_table1_stride_strings;
          quick "format round trip" test_table1_model_roundtrips_through_format;
          quick "highest risk row" test_table1_highest_risk_is_door_lock_in_accident;
        ] );
      ( "car",
        [
          quick "benign traffic" test_car_benign_traffic;
          quick "no false blocks under HPE" test_car_hpe_no_false_blocks;
          quick "crash chain" test_car_crash_chain;
          quick "remote lock/unlock" test_car_remote_lock_unlock;
          quick "alarm immobiliser" test_car_alarm_immobilises;
          quick "mode switch reprovisions" test_car_mode_switch_reprovisions;
          quick "diagnostic session" test_car_diagnostic_session;
          quick "display mirrors speed" test_car_display_mirrors_speed;
        ] );
      ( "helpers",
        [
          quick "frame padding" test_ecu_frame_padding;
          quick "command helpers" test_ecu_command_helpers;
          quick "invalid names" test_names_invalid_inputs;
          quick "printer smoke" test_pp_smoke;
        ] );
      ( "ids",
        [
          quick "quiet on benign traffic" test_ids_quiet_on_benign_traffic;
          quick "unapproved source" test_ids_flags_unapproved_source;
          quick "unknown id + flood" test_ids_flags_unknown_id_and_flood;
          quick "hpe signals" test_ids_uses_hpe_signals;
        ] );
      ( "segmented",
        [
          quick "benign function across segments" test_segmented_benign_function;
          quick "non-crossing injection blocked"
            test_segmented_blocks_non_crossing_injection;
          quick "crossing injection residual"
            test_segmented_residual_crossing_injection;
          quick "whitelist minimal" test_segmented_whitelist_is_minimal;
        ] );
      ( "infotainment-os",
        [
          quick "browsing allowed" test_os_browse_allowed_everywhere;
          quick "escalation chain (factory)" test_os_escalation_chain_v1;
          quick "escalation blocked (hardened)" test_os_escalation_blocked_v2;
          quick "runtime hardening" test_os_runtime_hardening;
        ] );
    ]
