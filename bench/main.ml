(* Benchmark and reproduction harness.

   One target per paper artefact (see DESIGN.md's experiment index):
     table1      Table I regenerated and cross-checked against the paper
     fig1        the secure product development life-cycle pipeline
     fig2        the connected-car CAN topology and live connectivity
     fig3        the CAN node internals: transceiver -> controller -> CPU
     fig4        the CAN node with integrated HPE
     q1          attack-scenario matrix across enforcement levels
     q2          exposure window: guideline redesign vs policy update
     q3          firmware-compromise sweep: software filters vs HPE
     q4          false-block rate of derived policies on benign traffic
     perf        bechamel micro-benchmarks of the engines
     parscale    shard-per-domain scaling of the decision server
     topology    central vs distributed enforcement over four segments
     serve       the secpold daemon end to end over its unix socket
     ablation    design-choice ablations from DESIGN.md §7

   Run all with `dune exec bench/main.exe`, or name the targets. *)

module V = Secpol_vehicle
module Catalog = V.Threat_catalog
module Threat = Secpol_threat.Threat
module Dread = Secpol_threat.Dread
module Stride = Secpol_threat.Stride
module Derive = Secpol_policy.Derive
module Policy = Secpol_policy
module Can = Secpol_can
module Hpe = Secpol_hpe
module Campaign = Secpol_attack.Campaign
module Scenarios = Secpol_attack.Scenarios
module Lifecycle = Secpol_lifecycle
module Par = Secpol_par
module Serve_daemon = Secpol_serve.Daemon
module Serve_client = Secpol_serve.Client

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

(* ------------------------------------------------------------------ *)
(* Table I                                                             *)
(* ------------------------------------------------------------------ *)

let mode_marks (t : Threat.t) =
  let has m = List.mem (V.Modes.name m) t.modes in
  Printf.sprintf "%c %c %c"
    (if has V.Modes.Normal then 'x' else '.')
    (if has V.Modes.Remote_diagnostic then 'x' else '.')
    (if has V.Modes.Fail_safe then 'x' else '.')

let table1 () =
  section "Table I: threat modelling of the connected car (regenerated)";
  Printf.printf
    "%-38s %-20s %-6s %-6s %-17s %-7s %-7s %s\n"
    "Threat" "Asset" "Modes" "STRIDE" "DREAD (avg)" "Derived" "Paper" "OK";
  let avg_ok = ref 0 and pol_ok = ref 0 in
  List.iter
    (fun (row : Catalog.row) ->
      let t = row.threat in
      let avg = Dread.average t.Threat.dread in
      let derived =
        match Derive.row_access t with
        | Some a -> Derive.access_name a
        | None -> "-"
      in
      let avg_match = Float.abs (avg -. row.paper_average) < 1e-9 in
      let pol_match = derived = Derive.access_name row.paper_policy in
      if avg_match then incr avg_ok;
      if pol_match then incr pol_ok;
      Printf.printf "%-38s %-20s %-6s %-6s %-17s %-7s %-7s %s\n"
        t.Threat.id t.Threat.asset (mode_marks t)
        (Stride.to_string t.Threat.stride)
        (Format.asprintf "%a" Dread.pp t.Threat.dread)
        derived
        (Derive.access_name row.paper_policy)
        (if avg_match && pol_match then "ok" else "MISMATCH"))
    Catalog.rows;
  Printf.printf
    "\nDREAD averages recomputed: %d/16 match the paper.\n\
     Policy cells re-derived:   %d/16 match the paper.\n\
     Residual-risk rows (policy cannot exclude the attack operation): %s\n"
    !avg_ok !pol_ok
    (String.concat ", "
       (List.map
          (fun (t : Threat.t) -> t.Threat.id)
          (List.filter Threat.residual_risk Catalog.threats)))

(* ------------------------------------------------------------------ *)
(* Fig. 1                                                              *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  section "Fig. 1: secure product development life-cycle";
  Format.printf "%a@." Lifecycle.Phases.pp_pipeline ();
  (* walk the pipeline concretely for the car use case *)
  subsection "Walkthrough on the connected-car use case";
  let model = Catalog.model () in
  let report = Secpol.Pipeline.derive model in
  Printf.printf
    "assets identified:        %d\n\
     entry points enumerated:  %d\n\
     threats identified:       %d (STRIDE-categorised)\n\
     threats rated:            mean DREAD %.2f, max %.2f\n\
     countermeasures:          %d policies (all machine-enforceable)\n\
     security model:           policy %s v%d, %d compiled rules, default %s\n\
     static validation:        %d conflicts, %d shadowed rules\n\
     sealed update bundle:     checksum %s\n"
    (List.length model.Secpol_threat.Model.assets)
    (List.length model.Secpol_threat.Model.entry_points)
    (List.length model.Secpol_threat.Model.threats)
    (Secpol_threat.Risk.mean_risk model.Secpol_threat.Model.threats)
    (List.fold_left (fun acc t -> max acc (Threat.risk t)) 0.0
       model.Secpol_threat.Model.threats)
    (List.length model.Secpol_threat.Model.countermeasures)
    report.Secpol.Pipeline.db.Policy.Ir.name
    report.Secpol.Pipeline.db.Policy.Ir.version
    (List.length report.Secpol.Pipeline.db.Policy.Ir.rules)
    (Policy.Ast.decision_name report.Secpol.Pipeline.db.Policy.Ir.default)
    (List.length report.Secpol.Pipeline.conflicts)
    (List.length report.Secpol.Pipeline.shadowed)
    (String.sub report.Secpol.Pipeline.bundle.Policy.Update.checksum 0 16)

(* ------------------------------------------------------------------ *)
(* Fig. 2                                                              *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  section "Fig. 2: connected-car components on the shared CAN bus";
  List.iter
    (fun node ->
      let tx = V.Messages.produced_by node in
      let rx = V.Messages.consumed_by node in
      Printf.printf "%-14s TX: %-58s RX: %s\n" node
        (String.concat ", " (List.map (fun (m : V.Messages.t) -> m.name) tx))
        (String.concat ", " (List.map (fun (m : V.Messages.t) -> m.name) rx)))
    V.Names.nodes;
  subsection "Live connectivity (1 s of simulated traffic)";
  let car = V.Car.create () in
  V.Car.run car ~seconds:1.0;
  Printf.printf "bus utilisation: %.1f%%  frames on the bus: %d\n"
    (100.0 *. Can.Bus.utilisation car.V.Car.bus)
    (Can.Bus.frames_sent car.V.Car.bus);
  List.iter
    (fun node ->
      let stats =
        Can.Controller.stats (Can.Node.controller (V.Car.node car node))
      in
      Printf.printf "%-14s %s\n" node
        (Format.asprintf "%a" Can.Controller.pp_stats stats))
    V.Names.nodes

(* ------------------------------------------------------------------ *)
(* Fig. 3                                                              *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  section "Fig. 3: CAN node internals (transceiver / controller / processor)";
  let frame = Can.Frame.data_std V.Messages.ecu_status "\x01\x00\x00\x00" in
  Format.printf "frame:                 %a@." Can.Frame.pp frame;
  let wire = Can.Transceiver.transmit frame in
  Printf.printf
    "transceiver (TX):      %d wire bits (incl. stuffing + trailer), %.1f us \
     at 500 kbit/s\n"
    (List.length wire)
    (1e6 *. Can.Frame.transmission_time frame ~bitrate:500_000.0);
  (match Can.Transceiver.receive wire with
  | Can.Transceiver.Frame f ->
      Format.printf "transceiver (RX):      decoded %a (CRC ok)@." Can.Frame.pp f
  | Can.Transceiver.Line_error e ->
      Printf.printf "transceiver (RX):      unexpected %s\n"
        (Can.Transceiver.line_error_name e));
  let controller = Can.Controller.create ~name:"ev_ecu" () in
  Can.Controller.set_filters controller (V.Ecu.software_filters V.Names.ev_ecu);
  (match Can.Controller.receive controller wire with
  | Can.Controller.Deliver _ ->
      Printf.printf "controller:            hmm, ev_ecu does not consume ecu_status\n"
  | Can.Controller.Filtered _ ->
      Printf.printf
        "controller (ev_ecu):   frame decoded, dropped by acceptance filter \
         (not a consumer)\n"
  | Can.Controller.Line_error _ -> ());
  let controller2 = Can.Controller.create ~name:"infotainment" () in
  Can.Controller.set_filters controller2
    (V.Ecu.software_filters V.Names.infotainment);
  (match Can.Controller.receive controller2 wire with
  | Can.Controller.Deliver f ->
      Format.printf
        "controller (infot.):   accepted %a -> processor callback@."
        Can.Frame.pp f
  | Can.Controller.Filtered _ | Can.Controller.Line_error _ ->
      Printf.printf "controller (infot.):   unexpected drop\n");
  subsection "Line-error handling";
  let rng = Secpol_sim.Rng.create 9L in
  let corrupted = Can.Transceiver.corrupt rng wire in
  (match Can.Transceiver.receive corrupted with
  | Can.Transceiver.Line_error e ->
      Printf.printf
        "single bit flip:       classified as %s; REC bumps, sender retransmits\n"
        (Can.Transceiver.line_error_name e)
  | Can.Transceiver.Frame _ ->
      Printf.printf "single bit flip:       slipped through (possible but rare)\n")

(* ------------------------------------------------------------------ *)
(* Fig. 4                                                              *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  section "Fig. 4: CAN node with integrated hardware policy engine";
  let engine = V.Policy_map.engine (V.Policy_map.baseline ()) in
  let cfg =
    V.Policy_map.hpe_config_for engine ~mode:V.Modes.Normal
      ~node:V.Names.infotainment
  in
  Format.printf "infotainment HPE config (normal mode): %a@." Hpe.Config.pp cfg;
  let sim = Secpol_sim.Engine.create () in
  let bus = Can.Bus.create ~bitrate:500_000.0 sim in
  let sender = Can.Node.create ~name:"peer" bus in
  let node = Can.Node.create ~name:V.Names.infotainment bus in
  let hpe = Hpe.Engine.install node in
  (match Hpe.Engine.provision hpe cfg with
  | Ok () -> Printf.printf "provisioned through the register file and locked.\n"
  | Error e -> Printf.printf "provisioning failed: %s\n" e);
  let try_read name id =
    ignore (Can.Node.send sender (Can.Frame.data_std id "\x01"));
    Secpol_sim.Engine.run_until sim (Secpol_sim.Engine.now sim +. 0.01);
    Printf.printf "  reading filter: %-20s (0x%03x) -> %s\n" name id
      (if
         List.exists
           (fun (f : Can.Frame.t) -> Can.Identifier.raw f.id = id)
           (Can.Node.received node)
       then "GRANT (processor sees it)"
       else "BLOCK")
  in
  let try_write name id =
    let ok = Can.Node.send node (Can.Frame.data_std id "\x00") in
    Printf.printf "  writing filter: %-20s (0x%03x) -> %s\n" name id
      (if ok then "GRANT (reaches the bus)" else "BLOCK")
  in
  subsection "Decision block in action";
  try_read "accel_status" V.Messages.accel_status;
  try_read "ecu_command" V.Messages.ecu_command;
  try_write "media_status" V.Messages.media_status;
  try_write "ecu_command (spoof)" V.Messages.ecu_command;
  Format.printf "%a@."
    (fun ppf () -> Hpe.Engine.pp_stats ppf hpe)
    ();
  subsection "Transparency to (compromised) firmware";
  (match
     Hpe.Registers.write_reg (Hpe.Engine.registers hpe)
       ~addr:Hpe.Registers.cmd_clear 0
   with
  | Ok () -> Printf.printf "register write: accepted (BUG)\n"
  | Error e -> Printf.printf "firmware tries to clear the lists: refused (%s)\n" e)

(* ------------------------------------------------------------------ *)
(* Q1: the attack matrix                                               *)
(* ------------------------------------------------------------------ *)

let q1 () =
  section "Q1: Table-I attack scenarios vs enforcement level";
  let summaries = Campaign.table () in
  Printf.printf "%-40s %-8s %-12s %-12s %-10s\n" "threat" "paper" "none" "software"
    "hpe";
  let outcome_of (s : Campaign.summary) id =
    let o =
      List.find
        (fun (o : Scenarios.outcome) -> o.threat_id = id)
        s.Campaign.outcomes
    in
    if o.Scenarios.succeeded then "SUCCEEDS" else "blocked"
  in
  List.iter
    (fun (row : Catalog.row) ->
      let id = row.threat.Threat.id in
      Printf.printf "%-40s %-8s %-12s %-12s %-10s\n" id
        (Derive.access_name row.paper_policy)
        (outcome_of (List.nth summaries 0) id)
        (outcome_of (List.nth summaries 1) id)
        (outcome_of (List.nth summaries 2) id))
    Catalog.rows;
  print_newline ();
  List.iter
    (fun s -> Format.printf "%a@." Campaign.pp_summary s)
    summaries;
  Printf.printf
    "\nPaper expectation: unprotected, every attack lands; with the HPE and \
     the least-privilege policy,\nexactly the W/RW (residual) rows survive \
     — matches: %b\n"
    (Campaign.matches_paper summaries)

(* ------------------------------------------------------------------ *)
(* Q2: exposure window                                                 *)
(* ------------------------------------------------------------------ *)

let q2 () =
  section "Q2: threat-to-mitigation exposure window (500-trial Monte-Carlo)";
  let params = Lifecycle.Ota.default_params in
  let results = Lifecycle.Comparison.compare_all ~trials:500 ~target:0.95 ~params () in
  List.iter
    (fun r -> Format.printf "%a@.@." Lifecycle.Comparison.pp_result r)
    results;
  (match Lifecycle.Comparison.speedup results with
  | Some s ->
      Printf.printf
        "median speedup of the policy update over guideline redesign: %.0fx\n" s
  | None ->
      (* with 25%% recall no-shows the redesign path rarely reaches 95%%;
         report with the no-show fraction removed *)
      let params = { params with Lifecycle.Ota.recall_no_show = 0.0 } in
      let results =
        Lifecycle.Comparison.compare_all ~trials:500 ~target:0.95 ~params ()
      in
      (match Lifecycle.Comparison.speedup results with
      | Some s ->
          Printf.printf
            "recall no-shows make 95%% unreachable; with no-shows removed, \
             median speedup: %.0fx\n"
            s
      | None -> Printf.printf "speedup not computable\n"));
  subsection "Fleet protection over time (single draw)";
  let rng = Secpol_sim.Rng.create 42L in
  let ota = Lifecycle.Ota.simulate rng params Lifecycle.Ota.Over_the_air in
  let recall = Lifecycle.Ota.simulate rng params Lifecycle.Ota.Recall in
  Printf.printf "%-8s %-14s %-14s\n" "day" "OTA" "recall";
  List.iter
    (fun d ->
      Printf.printf "%-8.0f %13.1f%% %13.1f%%\n" d
        (100.0 *. ota.Lifecycle.Ota.protected_at d)
        (100.0 *. recall.Lifecycle.Ota.protected_at d))
    [ 1.0; 3.0; 7.0; 14.0; 30.0; 90.0; 180.0; 365.0 ]

(* ------------------------------------------------------------------ *)
(* Q3: firmware-compromise sweep                                       *)
(* ------------------------------------------------------------------ *)

let q3 () =
  section "Q3: containment as firmware compromise spreads";
  let counts = [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let sw = Campaign.firmware_sweep Campaign.Software ~compromised_counts:counts in
  let hw = Campaign.firmware_sweep Campaign.Hardware ~compromised_counts:counts in
  Printf.printf "%-18s %-22s %-22s\n" "compromised nodes"
    "software filters" "hardware policy engine";
  Printf.printf "%-18s %-22s %-22s\n" "" "(forged delivered)" "(forged delivered)";
  List.iter2
    (fun (s : Campaign.sweep_point) (h : Campaign.sweep_point) ->
      Printf.printf "%-18d %-22s %-22s\n" s.Campaign.compromised
        (Printf.sprintf "%d/%d" s.Campaign.delivered s.Campaign.attack_frames)
        (Printf.sprintf "%d/%d" h.Campaign.delivered h.Campaign.attack_frames))
    sw hw;
  Printf.printf
    "\nPaper expectation: software acceptance filters live in firmware and \
     fall with it; the locked HPE keeps\nforged command frames off their \
     victims regardless of how far the compromise spreads.\n"

(* ------------------------------------------------------------------ *)
(* Q4: false blocks on benign traffic                                  *)
(* ------------------------------------------------------------------ *)

let q4 () =
  section "Q4: least privilege must not break legitimate function";
  Printf.printf "%-26s %-14s %-14s %-14s\n" "enforcement" "deliveries"
    "false blocks" "undelivered";
  List.iter
    (fun level ->
      let s = Campaign.benign_run ~seconds:5.0 level in
      Printf.printf "%-26s %-14d %-14d %-14d\n" (Campaign.level_name level)
        s.Campaign.deliveries s.Campaign.hpe_blocks s.Campaign.undelivered)
    [ Campaign.Off; Campaign.Software; Campaign.Hardware ];
  Printf.printf
    "\n(deliveries = frames accepted by designed consumers over 5 s; the HPE \
     row must show zero false blocks\nand zero undelivered designed frames)\n"

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks                                                    *)
(* ------------------------------------------------------------------ *)

(* One measured row of the perf suite; ns/op and minor words/op from the
   bechamel OLS fit.  Collected across targets so `--json FILE` can emit a
   machine-readable report at exit (consumed by the CI bench-smoke job). *)
type perf_row = { bench : string; ns_per_op : float; minor_per_op : float }

let perf_rows : perf_row list ref = ref []

(* registry snapshot from the instrumented engine pass, folded into the
   JSON report as "telemetry" *)
let telemetry : Policy.Json.t option ref = ref None

(* `--quick` trades precision for wall-clock: enough samples for a sanity
   gate in CI, not for a publishable number. *)
let quick_mode = ref false

let json_file : string option ref = ref None

let check_speedup : float option ref = ref None

let check_batched : float option ref = ref None

(* trajectory gate: committed baseline artifacts to diff fresh ratio
   metrics against (see Protocol.check_ratio) *)
let baseline_file : string option ref = ref None

let parallel_baseline_file : string option ref = ref None

let tolerance = ref 0.10

(* manual-harness batched-vs-compiled result: (compiled-loop ns/req,
   decide_batch ns/req, speedup) *)
let batched_vs_compiled : (float * float * float) option ref = ref None

let run_bechamel tests =
  let open Bechamel in
  let open Toolkit in
  let limit, quota =
    if !quick_mode then (500, Time.second 0.05) else (2000, Time.second 0.5)
  in
  let cfg = Benchmark.cfg ~limit ~quota () in
  let raw =
    Benchmark.all cfg
      Instance.[ minor_allocated; monotonic_clock ]
      (Test.make_grouped ~name:"secpol" tests)
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let estimate results name =
    match Hashtbl.find_opt results name with
    | Some ols -> (
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> e
        | Some [] | None -> Float.nan)
    | None -> Float.nan
  in
  let times = Analyze.all ols Instance.monotonic_clock raw in
  let allocs = Analyze.all ols Instance.minor_allocated raw in
  let rows =
    Hashtbl.fold (fun name _ acc -> name :: acc) times []
    |> List.sort compare
    |> List.map (fun name ->
           {
             bench = name;
             ns_per_op = estimate times name;
             minor_per_op = estimate allocs name;
           })
  in
  perf_rows := !perf_rows @ rows;
  Printf.printf "%-58s %14s %14s\n" "benchmark" "ns/op" "minor w/op";
  List.iter
    (fun r ->
      Printf.printf "%-58s %14.1f %14.1f\n" r.bench r.ns_per_op r.minor_per_op)
    rows

(* the connected-car decision workload: every designed producer write and
   consumer read, plus the Table-I spoofed writes the policy denies *)
let car_workload () =
  let designed =
    List.concat_map
      (fun (m : V.Messages.t) ->
        let req subject op =
          {
            Policy.Ir.mode = "normal";
            subject = V.Names.asset_of_node subject;
            asset = m.asset;
            op;
            msg_id = Some m.id;
          }
        in
        List.map (fun p -> req p Policy.Ir.Write) m.producers
        @ List.map (fun c -> req c Policy.Ir.Read) m.consumers)
      V.Messages.all
  in
  let attacks =
    List.map
      (fun (m : V.Messages.t) ->
        {
          Policy.Ir.mode = "normal";
          subject = V.Names.asset_of_node V.Names.infotainment;
          asset = m.asset;
          op = Policy.Ir.Write;
          msg_id = Some m.id;
        })
      V.Messages.all
  in
  Array.of_list (designed @ attacks)

let perf () =
  section "Micro-benchmarks (Bechamel, OLS ns/op)";
  let open Bechamel in
  (* HPE lookup: bitset vs hashtable (ablation from DESIGN.md §7) *)
  let ids =
    List.map (fun (m : V.Messages.t) -> Can.Identifier.standard m.id) V.Messages.all
  in
  let bitset = Hpe.Approved_list.of_ids ~backend:Hpe.Approved_list.Bitset ids in
  let table = Hpe.Approved_list.of_ids ~backend:Hpe.Approved_list.Hashtable ids in
  let intervals =
    Hpe.Approved_list.of_ids ~backend:Hpe.Approved_list.Intervals ids
  in
  let probe = Can.Identifier.standard V.Messages.ecu_command in
  let miss = Can.Identifier.standard 0x7ff in
  let bench_approved name l =
    Test.make ~name
      (Staged.stage (fun () ->
           ignore (Hpe.Approved_list.mem l probe);
           ignore (Hpe.Approved_list.mem l miss)))
  in
  let bench_bitset = bench_approved "hpe/approved-list/bitset" bitset in
  let bench_table = bench_approved "hpe/approved-list/hashtable" table in
  let bench_intervals = bench_approved "hpe/approved-list/intervals" intervals in
  (* policy engine: interpreted scan vs compiled indexed table vs cache,
     over the connected-car workload (every designed producer write and
     consumer read, plus the Table-I spoofed writes the policy denies) *)
  let db = Policy.Compile.compile_exn (V.Policy_map.baseline ()) in
  let workload = car_workload () in
  let bench_engine name engine =
    let n = Array.length workload in
    let i = ref 0 in
    Test.make ~name
      (Staged.stage (fun () ->
           let req = workload.(!i) in
           incr i;
           if !i = n then i := 0;
           ignore (Policy.Engine.decide engine req)))
  in
  let bench_interpreted =
    bench_engine "policy/engine/interpreted (car workload)"
      (Policy.Engine.create ~mode:`Interpreted ~cache:false db)
  in
  let bench_compiled =
    bench_engine "policy/engine/compiled (car workload)"
      (Policy.Engine.create ~mode:`Compiled ~cache:false db)
  in
  let bench_compiled_cache =
    bench_engine "policy/engine/compiled+cache (car workload)"
      (Policy.Engine.create ~mode:`Compiled ~cache:true db)
  in
  (match
     Policy.Engine.table_stats (Policy.Engine.create ~mode:`Compiled db)
   with
  | Some s -> Format.printf "compiled table: %a@." Policy.Table.pp_stats s
  | None -> ());
  (* policy parsing *)
  let source = Policy.Printer.to_string (V.Policy_map.baseline ()) in
  let bench_parse =
    Test.make ~name:"policy/parse baseline source"
      (Staged.stage (fun () -> ignore (Policy.Parser.parse source)))
  in
  (* SELinux server with and without AVC *)
  let os_db =
    Secpol_selinux.Policy_db.build_exn
      ~types:[ "media_t"; "exec_t" ]
      ~rules:
        [
          Secpol_selinux.Te_rule.allow ~source:"media_t" ~target:"exec_t"
            ~cls:"file" [ "read" ];
        ]
      ()
  in
  let srv_avc = Secpol_selinux.Server.create ~avc:true os_db in
  let srv_raw = Secpol_selinux.Server.create ~avc:false os_db in
  let sctx = Secpol_selinux.Context.make ~user:"u" ~role:"r" ~type_:"media_t" in
  let tctx = Secpol_selinux.Context.make ~user:"u" ~role:"r" ~type_:"exec_t" in
  let bench_avc =
    Test.make ~name:"selinux/check (avc)"
      (Staged.stage (fun () ->
           ignore
             (Secpol_selinux.Server.check srv_avc ~source:sctx ~target:tctx
                ~cls:"file" "read")))
  in
  let bench_noavc =
    Test.make ~name:"selinux/check (no avc)"
      (Staged.stage (fun () ->
           ignore
             (Secpol_selinux.Server.check srv_raw ~source:sctx ~target:tctx
                ~cls:"file" "read")))
  in
  (* frame codec *)
  let frame = Can.Frame.data_std V.Messages.ecu_status "\x01\x02\x03\x04" in
  let wire = Can.Frame.to_wire frame in
  let bench_encode =
    Test.make ~name:"can/frame/to_wire"
      (Staged.stage (fun () -> ignore (Can.Frame.to_wire frame)))
  in
  let bench_decode =
    Test.make ~name:"can/frame/of_wire"
      (Staged.stage (fun () -> ignore (Can.Frame.of_wire wire)))
  in
  (* end-to-end bus step: one frame across an 8-node bus *)
  let bench_bus =
    Test.make ~name:"can/bus/frame across 8 nodes"
      (Staged.stage
         (let sim = Secpol_sim.Engine.create () in
          let bus = Can.Bus.create ~bitrate:500_000.0 sim in
          let sender = Can.Node.create ~name:"sender" bus in
          for i = 1 to 7 do
            ignore (Can.Node.create ~name:(Printf.sprintf "n%d" i) bus)
          done;
          fun () ->
            ignore (Can.Node.send sender frame);
            Secpol_sim.Engine.run_until sim
              (Secpol_sim.Engine.now sim +. 0.001)))
  in
  run_bechamel
    [
      bench_bitset;
      bench_table;
      bench_intervals;
      bench_interpreted;
      bench_compiled;
      bench_compiled_cache;
      bench_parse;
      bench_avc;
      bench_noavc;
      bench_encode;
      bench_decode;
      bench_bus;
    ];
  (* batched vs per-request compiled path, on the fixed protocol rather
     than bechamel: both sides get the *same* manual harness (whole-
     workload passes, median of repeats), so the ratio compares the two
     decision paths and not two measurement methodologies.  This is the
     ratio the trajectory gate tracks. *)
  subsection "Batched decision path (fixed protocol, median of repeats)";
  let n = Array.length workload in
  let rounds = if !quick_mode then 50 else 400 in
  let warmup, repeats = if !quick_mode then (2, 7) else (5, 21) in
  let engine_scalar = Policy.Engine.create ~mode:`Compiled ~cache:false db in
  let engine_batch = Policy.Engine.create ~mode:`Compiled ~cache:false db in
  let scalar () =
    for _ = 1 to rounds do
      for k = 0 to n - 1 do
        ignore (Policy.Engine.decide engine_scalar workload.(k))
      done
    done
  in
  let batch = Policy.Batch.create ~capacity:n () in
  Array.iter (fun req -> Policy.Batch.push batch req) workload;
  let out = Array.make n Policy.Ast.Deny in
  let batched () =
    for _ = 1 to rounds do
      Policy.Engine.decide_batch engine_batch batch ~out
    done
  in
  let ops = rounds * n in
  let per_req median_s = median_s /. float_of_int ops *. 1e9 in
  let minor_per_op f =
    let w0 = Gc.minor_words () in
    f ();
    (Gc.minor_words () -. w0) /. float_of_int ops
  in
  (* start both measurements from the same heap shape: the bechamel suite
     above leaves an unpredictable minor/major heap behind, and the scalar
     loop's 20 w/op make its GC tax sensitive to that starting state *)
  Gc.compact ();
  let scalar_med, _ = Protocol.measure ~warmup ~repeats scalar in
  Gc.compact ();
  let batched_med, _ = Protocol.measure ~warmup ~repeats batched in
  let scalar_ns = per_req scalar_med and batched_ns = per_req batched_med in
  let scalar_minor = minor_per_op scalar in
  let batched_minor = minor_per_op batched in
  Printf.printf
    "protocol: %d warmup + %d timed repeats, %d passes x %d requests per \
     repeat, median reported\n"
    warmup repeats rounds n;
  Printf.printf "%-58s %14s %14s\n" "benchmark" "ns/op" "minor w/op";
  Printf.printf "%-58s %14.1f %14.1f\n"
    "policy/engine/compiled-loop (car workload)" scalar_ns scalar_minor;
  Printf.printf "%-58s %14.1f %14.1f\n"
    "policy/engine/decide_batch (car workload)" batched_ns batched_minor;
  let speedup = if batched_ns > 0.0 then scalar_ns /. batched_ns else 0.0 in
  Printf.printf "batched vs per-request compiled: %.2fx\n" speedup;
  batched_vs_compiled := Some (scalar_ns, batched_ns, speedup);
  perf_rows :=
    !perf_rows
    @ [
        {
          bench = "policy/engine/compiled-loop (car workload)";
          ns_per_op = scalar_ns;
          minor_per_op = scalar_minor;
        };
        {
          bench = "policy/engine/decide_batch (car workload)";
          ns_per_op = batched_ns;
          minor_per_op = batched_minor;
        };
      ];
  (* one extra pass through an obs-registered compiled engine: bechamel
     gives the OLS mean, the histogram gives the latency distribution *)
  let obs = Secpol_obs.Registry.create () in
  let engine = Policy.Engine.create ~mode:`Compiled ~cache:false ~obs db in
  let passes = if !quick_mode then 20 else 200 in
  for _ = 1 to passes do
    Array.iter (fun req -> ignore (Policy.Engine.decide engine req)) workload
  done;
  Format.printf "compiled decide latency: %a@." Secpol_obs.Histogram.pp_summary
    (Secpol_obs.Registry.histogram obs "policy.engine.decide_ns");
  telemetry := Some (Policy.Obs_json.registry obs)

(* ------------------------------------------------------------------ *)
(* Parallel scaling                                                    *)
(* ------------------------------------------------------------------ *)

type par_row = {
  domains : int;
  batched : bool;  (** served through {!Par.Serve.run_batch}? *)
  served : int;
  elapsed_s : float;
  throughput : float;  (** median over the protocol's repeats *)
}

let par_rows : par_row list ref = ref []

let parallel_json_file : string option ref = ref None

let parscale () =
  section "Parallel scaling: shard-per-domain decision serving (car workload)";
  let db = Policy.Compile.compile_exn (V.Policy_map.baseline ()) in
  let reqs = car_workload () in
  let n = Array.length reqs in
  let total = if !quick_mode then 50_000 else 400_000 in
  (* strictly increasing timestamps so rate-limited rules are exercised
     identically across runs *)
  let work =
    Array.init total (fun k -> (float_of_int k *. 1e-3, reqs.(k mod n)))
  in
  let ladder = [ 1; 2; 4; 8 ] in
  let repeats = if !quick_mode then 2 else 3 in
  Printf.printf
    "%d requests per run over %d distinct request shapes, partitioned by \
     subject (host has %d core(s));\n\
     domain ladder %s, 1 warmup + %d timed repeats per rung, median \
     throughput reported\n"
    total n
    (Domain.recommended_domain_count ())
    (String.concat "/" (List.map string_of_int ladder))
    repeats;
  Printf.printf "%-22s %12s %14s   %s\n" "configuration" "elapsed s" "req/s"
    "per-shard";
  let report name (s : Par.Serve.stats) =
    Printf.printf "%-22s %12.4f %14.0f   %s\n" name s.elapsed_s s.throughput
      (String.concat "+"
         (Array.to_list (Array.map string_of_int s.per_shard)))
  in
  (* warmup run + [repeats] timed runs; keep the run with the median
     throughput so elapsed/throughput/per-shard stay one consistent
     observation *)
  let median_run run =
    ignore (run ());
    let rs = ref [] in
    for _ = 1 to repeats do
      rs := run () :: !rs
    done;
    let sorted =
      List.sort
        (fun (a : Par.Serve.stats) b -> compare a.throughput b.throughput)
        !rs
    in
    List.nth sorted (List.length sorted / 2)
  in
  let seq = Par.Serve.run_sequential db work in
  report "sequential" seq.Par.Serve.stats;
  let seq_decisions =
    Array.map
      (fun (o : Policy.Engine.outcome) -> o.Policy.Engine.decision)
      seq.Par.Serve.outcomes
  in
  List.iter
    (fun domains ->
      let s =
        median_run (fun () ->
            let r = Par.Serve.run ~domains db work in
            if r.Par.Serve.outcomes <> seq.Par.Serve.outcomes then
              Printf.printf
                "  WARNING: %d-domain outcomes diverge from the sequential \
                 engine\n"
                domains;
            r.Par.Serve.stats)
      in
      report (Printf.sprintf "%d domain(s)" domains) s;
      par_rows :=
        !par_rows
        @ [
            {
              domains;
              batched = false;
              served = s.served;
              elapsed_s = s.elapsed_s;
              throughput = s.throughput;
            };
          ])
    ladder;
  (* the same ladder through the batched path: whole sub-batches per
     shard, one decide_batch call each *)
  List.iter
    (fun domains ->
      let s =
        median_run (fun () ->
            let r = Par.Serve.run_batch ~domains db work in
            if r.Par.Serve.decisions <> seq_decisions then
              Printf.printf
                "  WARNING: %d-domain batched decisions diverge from the \
                 sequential engine\n"
                domains;
            r.Par.Serve.stats)
      in
      report (Printf.sprintf "%d domain(s), batched" domains) s;
      par_rows :=
        !par_rows
        @ [
            {
              domains;
              batched = true;
              served = s.served;
              elapsed_s = s.elapsed_s;
              throughput = s.throughput;
            };
          ])
    ladder

(* top-rung over 1-domain throughput, separately for the scalar and the
   batched ladder — ratios survive a machine change, absolute req/s does
   not, which is why the trajectory gate tracks these *)
let par_scaling ~batched () =
  let rows = List.filter (fun r -> r.batched = batched) !par_rows in
  match
    ( List.find_opt (fun r -> r.domains = 1) rows,
      List.fold_left
        (fun acc r -> match acc with
          | Some b when b.domains >= r.domains -> acc
          | _ -> Some r)
        None rows )
  with
  | Some base, Some top when base.throughput > 0.0 ->
      Some (base, top, top.throughput /. base.throughput)
  | _ -> None

let par_report () =
  let scaling_json batched =
    match par_scaling ~batched () with
    | Some (_, _, s) -> Policy.Json.Float s
    | None -> Policy.Json.Null
  in
  Policy.Json.Obj
    [
      ("schema", Policy.Json.Int 2);
      ("suite", Policy.Json.String "secpol-parscale");
      ("quick", Policy.Json.Bool !quick_mode);
      ("partition_key", Policy.Json.String "subject");
      ("meta", Protocol.meta ());
      ( "runs",
        Policy.Json.List
          (List.map
             (fun r ->
               Policy.Json.Obj
                 [
                   ("domains", Policy.Json.Int r.domains);
                   ("batched", Policy.Json.Bool r.batched);
                   ("served", Policy.Json.Int r.served);
                   ("elapsed_s", Policy.Json.Float r.elapsed_s);
                   ("throughput_per_s", Policy.Json.Float r.throughput);
                 ])
             !par_rows) );
      ("scaling", scaling_json false);
      ("batched_scaling", scaling_json true);
    ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablations (design choices from DESIGN.md)";
  subsection "Conflict resolution strategy";
  (* a policy where an update appends a deny after a broad allow *)
  let src =
    "policy \"abl\" version 1 { default deny; asset ev_ecu { allow rw from \
     any; deny write from infotainment; } }"
  in
  let db =
    match Policy.Compile.of_source src with Ok db -> db | Error e -> failwith e
  in
  let req =
    {
      Policy.Ir.mode = "normal";
      subject = "infotainment";
      asset = "ev_ecu";
      op = Policy.Ir.Write;
      msg_id = None;
    }
  in
  List.iter
    (fun (name, strategy) ->
      let e = Policy.Engine.create ~strategy db in
      Printf.printf
        "  %-16s infotainment write on ev_ecu -> %s\n" name
        (if Policy.Engine.permitted e req then "ALLOWED (unsafe)" else "denied")
    )
    [
      ("deny-overrides", Policy.Engine.Deny_overrides);
      ("first-match", Policy.Engine.First_match);
      ("allow-overrides", Policy.Engine.Allow_overrides);
    ];
  Printf.printf
    "  -> deny-overrides is the fail-safe composition; first-match depends \
     on rule order; allow-overrides is unsafe here.\n";
  subsection "Mode-scoped vs mode-flattened policy";
  let flatten (p : Policy.Ast.policy) =
    {
      p with
      Policy.Ast.sections =
        List.map
          (function
            | Policy.Ast.Modes (_, blocks) ->
                (* drop the scope: rules apply in every mode *)
                Policy.Ast.Modes
                  (List.map V.Modes.name V.Modes.all, blocks)
            | s -> s)
          p.Policy.Ast.sections;
    }
  in
  let scoped = V.Policy_map.engine (V.Policy_map.baseline ()) in
  let flat = V.Policy_map.engine (flatten (V.Policy_map.baseline ())) in
  let diag_in_normal engine =
    Policy.Engine.permitted engine
      {
        Policy.Ir.mode = "normal";
        subject = V.Names.asset_connectivity;
        asset = V.Names.asset_safety_critical;
        op = Policy.Ir.Write;
        msg_id = Some V.Messages.diag_request;
      }
  in
  Printf.printf
    "  diagnostic write in normal mode: scoped policy -> %s, flattened -> %s\n"
    (if diag_in_normal scoped then "ALLOWED (leak)" else "denied")
    (if diag_in_normal flat then "ALLOWED (leak)" else "denied");
  Printf.printf
    "  -> without mode scoping, remote-diagnostic privileges leak into \
     normal driving (Table I row 4's attack surface).\n";
  subsection "HPE lock bit";
  let sim = Secpol_sim.Engine.create () in
  let bus = Can.Bus.create ~bitrate:500_000.0 sim in
  let node = Can.Node.create ~name:"n" bus in
  let hpe = Hpe.Engine.install node in
  let cfg = (Hpe.Config.make ~read_ids:[ 0x100 ] ~write_ids:[] ()) in
  (match Hpe.Engine.provision_unlocked hpe cfg with
  | Ok () -> ()
  | Error e -> failwith e);
  let attempt () =
    Hpe.Registers.write_reg (Hpe.Engine.registers hpe)
      ~addr:Hpe.Registers.cmd_clear 0
  in
  Printf.printf "  unlocked engine, firmware clears the lists: %s\n"
    (match attempt () with Ok () -> "SUCCEEDS (defence gone)" | Error _ -> "refused");
  Hpe.Registers.hard_reset (Hpe.Engine.registers hpe);
  (match Hpe.Engine.provision hpe cfg with Ok () -> () | Error e -> failwith e);
  Printf.printf "  locked engine,   firmware clears the lists: %s\n"
    (match attempt () with Ok () -> "SUCCEEDS (BUG)" | Error _ -> "refused");
  subsection "Guideline architecture (gateway segmentation) vs policy (HPE)";
  let spoof_from_infotainment msg_id =
    (* segmented car: infotainment compromised on the comfort bus *)
    let seg = V.Segmented.create () in
    V.Segmented.run seg ~seconds:0.3;
    let node = V.Segmented.node seg V.Names.infotainment in
    Can.Controller.set_filters (Can.Node.controller node) [];
    ignore
      (Can.Node.send node
         (Can.Frame.data_std msg_id (String.make 1 V.Messages.cmd_disable)));
    V.Segmented.run seg ~seconds:0.3;
    (* HPE car: same attack on the flat bus *)
    let hpe_car = V.Car.create ~enforcement:(V.Car.Hpe (V.Policy_map.baseline ())) () in
    V.Car.run hpe_car ~seconds:0.3;
    let atk = V.Car.node hpe_car V.Names.infotainment in
    Can.Controller.set_filters (Can.Node.controller atk) [];
    ignore
      (Can.Node.send atk
         (Can.Frame.data_std msg_id (String.make 1 V.Messages.cmd_disable)));
    V.Car.run hpe_car ~seconds:0.3;
    (seg.V.Segmented.state, hpe_car.V.Car.state)
  in
  let seg_eps, hpe_eps = spoof_from_infotainment V.Messages.eps_command in
  Printf.printf
    "  spoofed eps_command (never crosses segments):  gateway %s | HPE %s\n"
    (if seg_eps.V.State.eps_active then "blocks" else "FORWARDS")
    (if hpe_eps.V.State.eps_active then "blocks" else "FORWARDS");
  let seg_ecu, hpe_ecu = spoof_from_infotainment V.Messages.ecu_command in
  Printf.printf
    "  spoofed ecu_command (crosses legitimately):    gateway %s | HPE %s\n"
    (if seg_ecu.V.State.ev_ecu_enabled then "blocks" else "FORWARDS (residual)")
    (if hpe_ecu.V.State.ev_ecu_enabled then "blocks" else "FORWARDS");
  Printf.printf
    "  -> ID-granular segmentation only protects IDs that never cross; the \
     per-node HPE write filter\n     distinguishes *who* transmits, which is \
     the paper's argument for policy enforcement in the node.\n"

(* ------------------------------------------------------------------ *)
(* Extensions beyond the paper's figures                               *)
(* ------------------------------------------------------------------ *)

let extension () =
  section "Extensions: behavioural & situational policies, spoof detection, fleet integrity";
  subsection "Residual row 14 closed by a situational policy update";
  let relock_after_crash policy =
    let car = V.Car.create ~enforcement:(V.Car.Hpe policy) () in
    V.Car.run car ~seconds:0.3;
    V.Safety.trigger_crash (V.Car.node car V.Names.safety) car.V.Car.state;
    V.Car.run car ~seconds:0.1;
    V.Car.set_mode car V.Modes.Fail_safe;
    let node = V.Car.node car V.Names.telematics in
    Can.Controller.set_filters (Can.Node.controller node) [];
    let _ =
      Can.Node.send node
        (Can.Frame.data_std V.Messages.lock_command
           (String.make 1 V.Messages.cmd_lock))
    in
    V.Car.run car ~seconds:0.3;
    car.V.Car.state.V.State.doors_locked
  in
  Printf.printf
    "  baseline policy (Table-I W row):   doors %s after the forged relock\n"
    (if relock_after_crash (V.Policy_map.baseline ()) then
       "RELOCKED (occupants trapped — residual risk)"
     else "open");
  Printf.printf
    "  hardened policy (situational deny): doors %s after the forged relock\n"
    (if relock_after_crash (V.Policy_map.hardened ()) then "RELOCKED (BUG)"
     else "stay open (rescue access preserved)");
  subsection "Replay storm shaped by a behavioural budget";
  let car = V.Car.create ~enforcement:(V.Car.Hpe (V.Policy_map.hardened ())) () in
  V.Car.run car ~seconds:0.3;
  let node = V.Car.node car V.Names.telematics in
  Can.Controller.set_filters (Can.Node.controller node) [];
  let accepted = ref 0 in
  for _ = 1 to 20 do
    if
      Can.Node.send node
        (Can.Frame.data_std V.Messages.lock_command
           (String.make 1 V.Messages.cmd_unlock))
    then incr accepted
  done;
  let hpe = Option.get (V.Car.hpe car V.Names.telematics) in
  Printf.printf
    "  20 replayed lock commands from a compromised legitimate writer: %d \
     reach the bus (budget: 2 per 10 s; %d rate-blocked)\n"
    !accepted
    (Hpe.Engine.rate_blocks hpe);
  subsection "Impersonation (spoof) detection";
  let car = V.Car.create ~enforcement:(V.Car.Hpe (V.Policy_map.baseline ())) () in
  V.Car.run car ~seconds:0.3;
  let alien = Can.Node.create ~name:"alien" car.V.Car.bus in
  for _ = 1 to 5 do
    ignore
      (Can.Node.send alien (Can.Frame.data_std V.Messages.brake_status "\xFF"))
  done;
  V.Car.run car ~seconds:0.3;
  let sensors_hpe = Option.get (V.Car.hpe car V.Names.sensors) in
  Printf.printf
    "  alien station forges 5 brake_status frames: the sensor cluster's HPE \
     raises %d spoof alerts\n  (it is the sole designed producer of that ID; \
     alert-only — feeds intrusion detection)\n"
    (Hpe.Engine.spoof_alerts sensors_hpe);
  subsection "Fleet distribution with hostile deliveries";
  (match Lifecycle.Fleet.create ~size:1000 (V.Policy_map.baseline ()) with
  | Error e -> Printf.printf "  fleet creation failed: %s\n" e
  | Ok fleet -> (
      let v2 = Policy.Update.bundle (V.Policy_map.hardened ()) in
      match Lifecycle.Fleet.distribute fleet ~corruption:0.2 v2 with
      | Error e -> Printf.printf "  distribution failed: %s\n" e
      | Ok dist ->
          Printf.printf
            "  1000 devices, 20%% of deliveries tampered in transit: %d \
             corrupt bundles rejected by device\n  integrity checks; fleet \
             versions after the campaign: %s\n"
            dist.Lifecycle.Fleet.tampered_rejections
            (String.concat ", "
               (List.map
                  (fun (v, n) -> Printf.sprintf "v%d: %d" v n)
                  (Lifecycle.Fleet.versions fleet)))))

(* ------------------------------------------------------------------ *)
(* Fleet campaign                                                      *)
(* ------------------------------------------------------------------ *)

let campaign_json_file : string option ref = ref None

(* (report json, median elapsed seconds over the protocol's repeats) *)
let campaign_result : (Policy.Json.t * float) option ref = ref None

let fleet_campaign () =
  section "Fleet campaign: verifier-gated staged rollout under live threat";
  let module FC = Lifecycle.Campaign in
  let fleet = if !quick_mode then 20_000 else 200_000 in
  let domains = max 1 (min 8 (Domain.recommended_domain_count () - 1)) in
  let repeats = if !quick_mode then 2 else 3 in
  let cfg = FC.default_config ~fleet ~seed:42L ~domains ~quick:!quick_mode () in
  let last = ref None in
  let run () =
    match FC.run cfg with
    | Error e -> failwith ("campaign bench: " ^ e)
    | Ok r -> last := Some r
  in
  let median_s, _ = Protocol.measure ~warmup:1 ~repeats run in
  match !last with
  | None -> ()
  | Some r ->
      Printf.printf
        "%d vehicles over %d domain(s), two shared decision tables, 1 warmup \
         + %d timed repeats\n"
        fleet domains repeats;
      Printf.printf
        "  median campaign wall time %.2f s; %d batched decisions (%.0f/s \
         in the reported run)\n"
        median_s r.FC.decisions r.FC.throughput_per_s;
      Printf.printf
        "  gate %s (widened %d); ota p50 %.2f d / p99 %.2f d vs recall p50 \
         %.2f d -> %.1fx\n"
        (if r.FC.gate.FC.passed then "passed" else "REFUSED")
        r.FC.gate.FC.widened r.FC.ota.FC.p50_days r.FC.ota.FC.p99_days
        r.FC.recall.FC.p50_days r.FC.speedup_p50;
      campaign_result := Some (FC.to_json r, median_s)

let campaign_report () =
  match !campaign_result with
  | None -> Policy.Json.Null
  | Some (report, median_s) ->
      Policy.Json.Obj
        [
          ("schema", Policy.Json.Int 1);
          ("suite", Policy.Json.String "secpol-campaign-bench");
          ("quick", Policy.Json.Bool !quick_mode);
          ("meta", Protocol.meta ());
          ("median_elapsed_s", Policy.Json.Float median_s);
          ("report", report);
        ]

(* ------------------------------------------------------------------ *)
(* Decision service                                                    *)
(* ------------------------------------------------------------------ *)

type serve_row = {
  s_domains : int;
  s_requests : int;
  s_batch : int;
  s_elapsed_s : float;
  s_throughput : float;
}

let serve_rows : serve_row list ref = ref []

let serve_json_file : string option ref = ref None

(* End-to-end cost of the daemon: wire codec + connection thread +
   admission + pool hand-off + decide_batch, measured from a client over
   the Unix socket — the number a deployment actually sees, as opposed
   to parscale's in-process shard throughput. *)
let serve_bench () =
  section "Decision service: secpold end to end over its unix socket";
  let db = Policy.Compile.compile_exn (V.Policy_map.baseline ()) in
  let reqs = car_workload () in
  let n = Array.length reqs in
  let batch = 512 in
  let batches = if !quick_mode then 20 else 200 in
  let total = batch * batches in
  let batch_reqs = Array.init batch (fun k -> reqs.(k mod n)) in
  let warmup, repeats = if !quick_mode then (1, 3) else (2, 7) in
  let ladder = [ 1; 2; 4; 8 ] in
  Printf.printf
    "%d requests per timed run (%d batches x %d), one client connection;\n\
     domain ladder %s, %d warmup + %d timed repeats per rung, median \
     reported (host has %d core(s))\n"
    total batches batch
    (String.concat "/" (List.map string_of_int ladder))
    warmup repeats
    (Domain.recommended_domain_count ());
  Printf.printf "%-22s %12s %14s\n" "configuration" "elapsed s" "req/s";
  List.iter
    (fun domains ->
      let socket_path =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "secpold-bench-%d-%d.sock" (Unix.getpid ()) domains)
      in
      let config =
        { Serve_daemon.default_config with socket_path; domains }
      in
      let daemon = Serve_daemon.start ~config db in
      Fun.protect
        ~finally:(fun () -> Serve_daemon.stop daemon)
        (fun () ->
          let client = Serve_client.connect socket_path in
          Fun.protect
            ~finally:(fun () -> Serve_client.close client)
            (fun () ->
              let run () =
                for _ = 1 to batches do
                  let b = Serve_client.decide client batch_reqs in
                  if b.Serve_client.degraded || b.Serve_client.shed then
                    failwith "serve bench: degraded or shed response"
                done
              in
              let median_s, _ = Protocol.measure ~warmup ~repeats run in
              let throughput = float_of_int total /. median_s in
              Printf.printf "%-22s %12.4f %14.0f\n"
                (Printf.sprintf "%d domain(s)" domains)
                median_s throughput;
              serve_rows :=
                !serve_rows
                @ [
                    {
                      s_domains = domains;
                      s_requests = total;
                      s_batch = batch;
                      s_elapsed_s = median_s;
                      s_throughput = throughput;
                    };
                  ])))
    ladder

let serve_report () =
  let scaling =
    match
      ( List.find_opt (fun r -> r.s_domains = 1) !serve_rows,
        List.fold_left
          (fun acc r ->
            match acc with
            | Some b when b.s_domains >= r.s_domains -> acc
            | _ -> Some r)
          None !serve_rows )
    with
    | Some base, Some top when base.s_throughput > 0.0 ->
        Policy.Json.Float (top.s_throughput /. base.s_throughput)
    | _ -> Policy.Json.Null
  in
  Policy.Json.Obj
    [
      ("schema", Policy.Json.Int 1);
      ("suite", Policy.Json.String "secpol-serve");
      ("quick", Policy.Json.Bool !quick_mode);
      ("transport", Policy.Json.String "unix-socket");
      ("meta", Protocol.meta ());
      ( "runs",
        Policy.Json.List
          (List.map
             (fun r ->
               Policy.Json.Obj
                 [
                   ("domains", Policy.Json.Int r.s_domains);
                   ("requests", Policy.Json.Int r.s_requests);
                   ("batch", Policy.Json.Int r.s_batch);
                   ("elapsed_s", Policy.Json.Float r.s_elapsed_s);
                   ("throughput_per_s", Policy.Json.Float r.s_throughput);
                 ])
             !serve_rows) );
      ("scaling", scaling);
    ]

let json_float f =
  if Float.is_finite f then Policy.Json.Float f else Policy.Json.Null

(* ------------------------------------------------------------------ *)
(* Topology: central vs distributed enforcement                        *)
(* ------------------------------------------------------------------ *)

module Faults = Secpol_faults
module Tcar = V.Topology_car
module Topology = Can.Topology
module Gate = Par.Frame_gate

let topology_json_file : string option ref = ref None

let topology_baseline_file : string option ref = ref None

let topology_report : Policy.Json.t option ref = ref None

(* Every gate crossing of a topology drive: one Tx event per transmission
   attempt at the sender's gate, one Rx event per reception at the
   receiver's — across every segment bus. *)
let topo_gate_events car =
  List.concat_map
    (fun seg ->
      List.map
        (fun (e : Can.Trace.entry) ->
          let event node dir =
            { Gate.time = e.time; node; dir; id = e.frame.Can.Frame.id }
          in
          match e.event with
          | Can.Trace.Tx_ok | Tx_error | Tx_abandoned | Tx_refused ->
              event e.node Gate.Tx
          | Rx_delivered r | Rx_filtered r | Rx_blocked (r, _) | Rx_line_error r
            ->
              event r Gate.Rx)
        (Can.Trace.entries (Can.Bus.trace (Tcar.bus car seg))))
    (Tcar.segments car)
  |> Array.of_list

let topology_bench () =
  section "Topology: enforcement placement over the four-segment car";
  let seconds = if !quick_mode then 1.0 else 2.0 in
  let warmup, repeats = if !quick_mode then (1, 5) else (3, 11) in
  let car = Tcar.create ~seed:42L ~placement:`Distributed () in
  Tcar.run car ~seconds;
  let topo = Tcar.topology car in
  subsection
    (Printf.sprintf "Per-segment load (%.1f s of benign traffic)" seconds);
  Printf.printf "%-14s %12s %10s %12s\n" "segment" "utilisation" "frames"
    "deliveries";
  let segment_rows =
    List.map
      (fun seg ->
        let bus = Tcar.bus car seg in
        let util = Can.Bus.utilisation bus in
        let frames = Can.Bus.frames_sent bus in
        let deliveries = Tcar.deliveries_in car seg in
        Printf.printf "%-14s %11.1f%% %10d %12d\n" seg (100.0 *. util) frames
          deliveries;
        Policy.Json.Obj
          [
            ("name", Policy.Json.String seg);
            ("utilisation", json_float util);
            ("frames_sent", Policy.Json.Int frames);
            ("deliveries", Policy.Json.Int deliveries);
          ])
      (Tcar.segments car)
  in
  (* Distributed placement replays EVERY gate crossing through the
     per-node HPE bank; central placement evaluates only what reaches a
     gateway: each transmission is checked once per gateway attached to
     its segment.  Same captured traffic, two enforcement workloads. *)
  subsection "Enforcement replay: per-node HPE banks vs gateway whitelists";
  let events = topo_gate_events car in
  let engine = V.Policy_map.engine (V.Policy_map.baseline ()) in
  let node_configs =
    List.filter_map
      (fun (node, _) ->
        match
          V.Policy_map.hpe_config_for engine ~mode:V.Modes.Normal ~node
        with
        | cfg -> Some (node, cfg)
        | exception Invalid_argument _ -> None)
      (Tcar.nodes car)
  in
  let gateway_names = Topology.gateway_names topo in
  let gateway_configs =
    List.map
      (fun gw ->
        let ids =
          Topology.crossing_ids topo ~gateway:gw `A_to_b
          @ Topology.crossing_ids topo ~gateway:gw `B_to_a
          |> List.sort_uniq compare
        in
        (gw, Hpe.Config.make ~read_ids:ids ~write_ids:[] ()))
      gateway_names
  in
  let central_events =
    Array.of_list
      (List.concat_map
         (fun seg ->
           let attached =
             List.filter
               (fun gw ->
                 let a, b = Topology.link topo gw in
                 a = seg || b = seg)
               gateway_names
           in
           List.concat_map
             (fun (e : Can.Trace.entry) ->
               match e.event with
               | Can.Trace.Tx_ok | Tx_error | Tx_abandoned ->
                   List.map
                     (fun gw ->
                       {
                         Gate.time = e.time;
                         node = gw;
                         dir = Gate.Rx;
                         id = e.frame.Can.Frame.id;
                       })
                     attached
               | _ -> [])
             (Can.Trace.entries (Can.Bus.trace (Tcar.bus car seg))))
         (Tcar.segments car))
  in
  let per_event ~count median_s =
    if count = 0 then Float.nan else median_s /. float_of_int count *. 1e9
  in
  let dist_med, _ =
    Protocol.measure ~warmup ~repeats (fun () ->
        ignore (Gate.run_sequential node_configs events))
  in
  let central_med, _ =
    Protocol.measure ~warmup ~repeats (fun () ->
        ignore (Gate.run_sequential gateway_configs central_events))
  in
  let dist_ns = per_event ~count:(Array.length events) dist_med in
  let central_ns = per_event ~count:(Array.length central_events) central_med in
  (* the sharded bank grouped one-bank-per-segment must agree with the
     sequential reference verdict for verdict *)
  let seq = Gate.run_sequential node_configs events in
  let sharded =
    Gate.run ~domains:2
      ~group:(fun e ->
        match Tcar.segment_of car e.Gate.node with
        | Some seg -> seg
        | None -> e.Gate.node)
      node_configs events
  in
  let sharded_ok = sharded.Gate.verdicts = seq.Gate.verdicts in
  let central_fraction =
    if Array.length events = 0 then 0.0
    else float_of_int (Array.length central_events)
         /. float_of_int (Array.length events)
  in
  Printf.printf "%-58s %14s %10s\n" "placement" "ns/event" "events";
  Printf.printf "%-58s %14.1f %10d\n" "distributed (per-node HPE gate banks)"
    dist_ns (Array.length events);
  Printf.printf "%-58s %14.1f %10d\n" "central (gateway whitelists only)"
    central_ns
    (Array.length central_events);
  Printf.printf
    "central evaluates %.3f of the distributed workload; segment-sharded \
     bank matches sequential verdicts: %b\n"
    central_fraction sharded_ok;
  (* blast containment per (plan x placement): the distributed-enforcement
     claim the trajectory gate tracks.  Deterministic for a fixed seed. *)
  subsection "Blast containment (plan x placement)";
  let horizon = if !quick_mode then 1.5 else 2.5 in
  let plans =
    [
      Faults.Plan.segment_partition ~horizon;
      Faults.Plan.segment_babble ~horizon;
    ]
  in
  let placements = [ `Central; `Distributed ] in
  let runs =
    List.concat_map
      (fun plan ->
        List.map
          (fun placement ->
            let o = Faults.Blast.run ~placement ~seed:42L ~plan () in
            let faulted = Faults.Blast.faulted o.Faults.Blast.blast in
            Printf.printf "  %-20s %-12s %s (blast: %s)\n"
              plan.Faults.Plan.name
              (Tcar.placement_name placement)
              (if o.Faults.Blast.passed then "contained" else "LEAKED")
              (String.concat ", " faulted);
            (plan.Faults.Plan.name, placement, o.Faults.Blast.passed, faulted))
          placements)
      plans
  in
  let containment =
    let n = List.length runs in
    if n = 0 then 0.0
    else
      float_of_int (List.length (List.filter (fun (_, _, p, _) -> p) runs))
      /. float_of_int n
  in
  Printf.printf "containment: %.2f of %d (plan x placement) runs\n" containment
    (List.length runs);
  topology_report :=
    Some
      (Policy.Json.Obj
         [
           ("schema", Policy.Json.Int 1);
           ("suite", Policy.Json.String "secpol-topology");
           ("quick", Policy.Json.Bool !quick_mode);
           ("meta", Protocol.meta ());
           ( "workload",
             Policy.Json.Obj
               [
                 ("seconds", Policy.Json.Float seconds);
                 ("events", Policy.Json.Int (Array.length events));
                 ( "central_events",
                   Policy.Json.Int (Array.length central_events) );
                 ("segments", Policy.Json.List segment_rows);
               ] );
           ( "latency",
             Policy.Json.Obj
               [
                 ("distributed_ns_per_event", json_float dist_ns);
                 ("central_ns_per_event", json_float central_ns);
                 ("sharded_matches_sequential", Policy.Json.Bool sharded_ok);
               ] );
           ( "checks",
             Policy.Json.Obj
               [ ("central_fraction", json_float central_fraction) ] );
           ( "blast",
             Policy.Json.Obj
               [
                 ("containment", json_float containment);
                 ("horizon", Policy.Json.Float horizon);
                 ( "runs",
                   Policy.Json.List
                     (List.map
                        (fun (plan, placement, passed, faulted) ->
                          Policy.Json.Obj
                            [
                              ("plan", Policy.Json.String plan);
                              ( "placement",
                                Policy.Json.String
                                  (Tcar.placement_name placement) );
                              ("passed", Policy.Json.Bool passed);
                              ( "faulted_segments",
                                Policy.Json.List
                                  (List.map
                                     (fun s -> Policy.Json.String s)
                                     faulted) );
                            ])
                        runs) );
               ] );
         ])

let targets =
  [
    ("table1", table1);
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("q1", q1);
    ("q2", q2);
    ("q3", q3);
    ("q4", q4);
    ("perf", perf);
    ("parscale", parscale);
    ("topology", topology_bench);
    ("serve", serve_bench);
    ("campaign", fleet_campaign);
    ("ablation", ablation);
    ("extension", extension);
  ]

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(*                                                                     *)
(*   main.exe [TARGET...] [--quick] [--json FILE]                      *)
(*            [--parallel-json FILE] [--check-speedup X]               *)
(*                                                                     *)
(* Exit codes: 0 ok; 1 unknown target / bad flag; 4 a gate failed:     *)
(* compiled-vs-interpreted speedup below --check-speedup, batched-vs-  *)
(* compiled speedup below --check-batched-speedup, or a ratio in a     *)
(* --baseline / --parallel-baseline artifact regressed beyond the      *)
(* --tolerance band (the CI trajectory gates).                         *)
(* ------------------------------------------------------------------ *)

let find_row suffix =
  List.find_opt
    (fun r ->
      let n = String.length r.bench and m = String.length suffix in
      n >= m && String.sub r.bench (n - m) m = suffix)
    !perf_rows

let speedup_rows () =
  match
    ( find_row "policy/engine/interpreted (car workload)",
      find_row "policy/engine/compiled (car workload)" )
  with
  | Some i, Some c when c.ns_per_op > 0.0 && Float.is_finite i.ns_per_op ->
      Some (i, c, i.ns_per_op /. c.ns_per_op)
  | _ -> None

let json_report () =
  let results =
    List.map
      (fun r ->
        Policy.Json.Obj
          [
            ("name", Policy.Json.String r.bench);
            ("ns_per_op", json_float r.ns_per_op);
            ("minor_words_per_op", json_float r.minor_per_op);
          ])
      !perf_rows
  in
  let speedup =
    match speedup_rows () with
    | None -> Policy.Json.Null
    | Some (i, c, s) ->
        Policy.Json.Obj
          [
            ("baseline", Policy.Json.String i.bench);
            ("fast_path", Policy.Json.String c.bench);
            ("speedup", json_float s);
          ]
  in
  let batched =
    match !batched_vs_compiled with
    | None -> Policy.Json.Null
    | Some (scalar_ns, batched_ns, s) ->
        Policy.Json.Obj
          [
            ( "baseline",
              Policy.Json.String "policy/engine/compiled-loop (car workload)"
            );
            ( "fast_path",
              Policy.Json.String "policy/engine/decide_batch (car workload)"
            );
            ("baseline_ns_per_op", json_float scalar_ns);
            ("fast_path_ns_per_op", json_float batched_ns);
            ("speedup", json_float s);
          ]
  in
  Policy.Json.Obj
    [
      ("schema", Policy.Json.Int 2);
      ("suite", Policy.Json.String "secpol-perf");
      ("quick", Policy.Json.Bool !quick_mode);
      ("meta", Protocol.meta ());
      ("results", Policy.Json.List results);
      ("compiled_vs_interpreted", speedup);
      ("batched_vs_compiled", batched);
      ("telemetry", Option.value ~default:Policy.Json.Null !telemetry);
    ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let usage () =
    Printf.eprintf
      "usage: main.exe [TARGET...] [--quick] [--json FILE] [--parallel-json \
       FILE] [--serve-json FILE] [--campaign-json FILE] [--topology-json \
       FILE] [--check-speedup X]\n\
      \                [--check-batched-speedup X] [--baseline FILE] \
       [--parallel-baseline FILE] [--topology-baseline FILE] [--tolerance \
       PCT]\nknown targets: %s\n"
      (String.concat ", " (List.map fst targets));
    exit 1
  in
  let rec parse names = function
    | [] -> List.rev names
    | "--quick" :: rest ->
        quick_mode := true;
        parse names rest
    | "--json" :: file :: rest ->
        json_file := Some file;
        parse names rest
    | "--parallel-json" :: file :: rest ->
        parallel_json_file := Some file;
        parse names rest
    | "--topology-json" :: file :: rest ->
        topology_json_file := Some file;
        parse names rest
    | "--topology-baseline" :: file :: rest ->
        topology_baseline_file := Some file;
        parse names rest
    | "--serve-json" :: file :: rest ->
        serve_json_file := Some file;
        parse names rest
    | "--campaign-json" :: file :: rest ->
        campaign_json_file := Some file;
        parse names rest
    | "--baseline" :: file :: rest ->
        baseline_file := Some file;
        parse names rest
    | "--parallel-baseline" :: file :: rest ->
        parallel_baseline_file := Some file;
        parse names rest
    | "--tolerance" :: x :: rest -> (
        match float_of_string_opt x with
        | Some v when v >= 0.0 ->
            tolerance := v /. 100.0;
            parse names rest
        | Some _ | None -> usage ())
    | "--check-speedup" :: x :: rest -> (
        match float_of_string_opt x with
        | Some v ->
            check_speedup := Some v;
            parse names rest
        | None -> usage ())
    | "--check-batched-speedup" :: x :: rest -> (
        match float_of_string_opt x with
        | Some v ->
            check_batched := Some v;
            parse names rest
        | None -> usage ())
    | ( "--json" | "--parallel-json" | "--serve-json" | "--campaign-json"
      | "--topology-json" | "--topology-baseline" | "--check-speedup"
      | "--check-batched-speedup" | "--baseline" | "--parallel-baseline"
      | "--tolerance" )
      :: [] ->
        usage ()
    | name :: rest ->
        if String.length name >= 2 && String.sub name 0 2 = "--" then usage ();
        parse (name :: names) rest
  in
  let requested =
    match parse [] args with [] -> List.map fst targets | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name targets with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown bench target %S; known: %s\n" name
            (String.concat ", " (List.map fst targets));
          exit 1)
    requested;
  (match !json_file with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Policy.Json.to_string (json_report ()));
      output_char oc '\n';
      close_out oc;
      Printf.printf "\nwrote %s (%d benchmark results)\n" file
        (List.length !perf_rows));
  (match !parallel_json_file with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Policy.Json.to_string (par_report ()));
      output_char oc '\n';
      close_out oc;
      Printf.printf "\nwrote %s (%d parallel scaling runs)\n" file
        (List.length !par_rows));
  (match !serve_json_file with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Policy.Json.to_string (serve_report ()));
      output_char oc '\n';
      close_out oc;
      Printf.printf "\nwrote %s (%d serving ladder runs)\n" file
        (List.length !serve_rows));
  (match !campaign_json_file with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Policy.Json.to_string (campaign_report ()));
      output_char oc '\n';
      close_out oc;
      Printf.printf "\nwrote %s (campaign artifact)\n" file);
  (match (!topology_json_file, !topology_report) with
  | Some file, Some report ->
      let oc = open_out file in
      output_string oc (Policy.Json.to_string report);
      output_char oc '\n';
      close_out oc;
      Printf.printf "\nwrote %s (topology artifact)\n" file
  | Some _, None ->
      Printf.eprintf
        "--topology-json: no topology results recorded (run the topology \
         target)\n"
  | None, _ -> ());
  (match !check_speedup with
  | None -> ()
  | Some threshold -> (
      match speedup_rows () with
      | None ->
          Printf.eprintf
            "--check-speedup: no engine benchmarks recorded (run the perf \
             target)\n";
          exit 4
      | Some (i, c, s) ->
          Printf.printf
            "speedup gate: interpreted %.1f ns/op -> compiled %.1f ns/op = \
             %.2fx (threshold %.2fx)\n"
            i.ns_per_op c.ns_per_op s threshold;
          if s < threshold then exit 4));
  (match !check_batched with
  | None -> ()
  | Some threshold -> (
      match !batched_vs_compiled with
      | None ->
          Printf.eprintf
            "--check-batched-speedup: no batched benchmark recorded (run the \
             perf target)\n";
          exit 4
      | Some (scalar_ns, batched_ns, s) ->
          Printf.printf
            "batched gate: per-request compiled %.1f ns/op -> decide_batch \
             %.1f ns/op = %.2fx (threshold %.2fx)\n"
            scalar_ns batched_ns s threshold;
          if s < threshold then exit 4));
  (* trajectory gate: ratio metrics of this run vs committed baseline
     artifacts; exits 4 on regression beyond the tolerance band *)
  let trajectory_failed = ref false in
  let run_checks ~what ~fresh ~file checks =
    match file with
    | None -> ()
    | Some file -> (
        match Protocol.load_json file with
        | Error e ->
            Printf.eprintf "trajectory: cannot read %s baseline %s: %s\n" what
              file e;
            trajectory_failed := true
        | Ok baseline ->
            let named =
              List.map
                (fun (name, path) ->
                  ( name,
                    Protocol.check_ratio ~tolerance:!tolerance ~name ~fresh
                      ~baseline path ))
                checks
            in
            if not (Protocol.report_checks named) then
              trajectory_failed := true)
  in
  run_checks ~what:"perf" ~fresh:(json_report ()) ~file:!baseline_file
    [
      ( "batched_vs_compiled.speedup",
        [ "batched_vs_compiled"; "speedup" ] );
    ];
  run_checks ~what:"parscale" ~fresh:(par_report ())
    ~file:!parallel_baseline_file
    [
      ("scaling", [ "scaling" ]);
      ("batched_scaling", [ "batched_scaling" ]);
    ];
  run_checks ~what:"topology"
    ~fresh:(Option.value ~default:Policy.Json.Null !topology_report)
    ~file:!topology_baseline_file
    [
      ("checks.central_fraction", [ "checks"; "central_fraction" ]);
      ("blast.containment", [ "blast"; "containment" ]);
    ];
  if !trajectory_failed then exit 4
