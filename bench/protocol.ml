(* Fixed measurement protocol for the hand-rolled (non-bechamel) benchmark
   rows and for the benchmark-trajectory artifacts CI diffs against
   committed baselines.

   The protocol is deliberately rigid so two runs are comparable: a fixed
   number of warmup executions (JIT-free here, but the allocator, branch
   predictors and the page cache still need priming), then a fixed number
   of timed repeats, reporting the *median* repeat — medians shrug off the
   one repeat that caught a GC slice or a scheduler migration, where a
   mean would smear it over the result.  Every artifact embeds machine and
   git metadata, because a baseline number is meaningless without knowing
   what it was measured on; the trajectory gate therefore compares
   *ratios* (speedups, scaling), which survive a machine change, rather
   than absolute ns. *)

module Clock = Secpol_obs.Clock
module Json = Secpol_policy.Json

let median samples =
  let s = Array.copy samples in
  Array.sort compare s;
  let n = Array.length s in
  if n = 0 then Float.nan
  else if n land 1 = 1 then s.(n / 2)
  else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0

(* [measure ~warmup ~repeats f] runs [f] [warmup] times untimed, then
   [repeats] timed times; returns the median elapsed seconds and every
   sample (chronological, for the artifact). *)
let measure ~warmup ~repeats f =
  for _ = 1 to warmup do
    f ()
  done;
  let samples = Array.make repeats 0.0 in
  for i = 0 to repeats - 1 do
    let t0 = Clock.now () in
    f ();
    samples.(i) <- Clock.now () -. t0
  done;
  (median samples, samples)

(* ------------------------------------------------------------------ *)
(* Run metadata                                                        *)
(* ------------------------------------------------------------------ *)

let first_line_of cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    line
  with _ -> ""

let meta () =
  Json.Obj
    [
      ("hostname", Json.String (try Unix.gethostname () with _ -> ""));
      ("uname", Json.String (first_line_of "uname -sr 2>/dev/null"));
      ("cores", Json.Int (Domain.recommended_domain_count ()));
      ("ocaml", Json.String Sys.ocaml_version);
      ("word_size", Json.Int Sys.word_size);
      ( "git_commit",
        Json.String (first_line_of "git rev-parse HEAD 2>/dev/null") );
      ( "git_branch",
        Json.String
          (first_line_of "git rev-parse --abbrev-ref HEAD 2>/dev/null") );
    ]

(* ------------------------------------------------------------------ *)
(* Baseline comparison                                                 *)
(* ------------------------------------------------------------------ *)

let load_json path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | text -> Json.of_string text

(* float at a path of object fields, e.g. ["batched_vs_compiled";"speedup"] *)
let rec float_at json = function
  | [] -> (
      match json with
      | Json.Float f -> Some f
      | Json.Int i -> Some (float_of_int i)
      | _ -> None)
  | field :: rest -> (
      match Json.member field json with
      | Some j -> float_at j rest
      | None -> None)

type verdict =
  | Ok_within of { fresh : float; base : float }
  | Regressed of { fresh : float; base : float; floor : float }
  | Missing of string

(* A ratio metric must stay within [tolerance] (a fraction, e.g. 0.10) of
   its baseline value, from below — getting faster is never a failure. *)
let check_ratio ~tolerance ~name ~fresh ~baseline path =
  match (float_at fresh path, float_at baseline path) with
  | Some f, Some b ->
      let floor = b *. (1.0 -. tolerance) in
      if f >= floor then Ok_within { fresh = f; base = b }
      else Regressed { fresh = f; base = b; floor }
  | None, _ -> Missing (Printf.sprintf "%s missing from fresh report" name)
  | _, None -> Missing (Printf.sprintf "%s missing from baseline" name)

(* Pretty-print and fold a list of (name, verdict): true = all ok. *)
let report_checks checks =
  List.fold_left
    (fun ok (name, v) ->
      (match v with
      | Ok_within { fresh; base } ->
          Printf.printf "trajectory: %-28s %.3f (baseline %.3f) ok\n" name
            fresh base
      | Regressed { fresh; base; floor } ->
          Printf.printf
            "trajectory: %-28s %.3f REGRESSED below %.3f (baseline %.3f)\n"
            name fresh floor base
      | Missing what -> Printf.printf "trajectory: %-28s %s\n" name what);
      ok && match v with Ok_within _ -> true | _ -> false)
    true checks
