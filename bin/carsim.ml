(* carsim: connected-car scenario runner.

   Subcommands:
     list      list the Table-I attack scenarios
     table1    print the regenerated Table I
     run       benign drive, print state and statistics
     attack    execute one attack scenario
     matrix    the full attack matrix across enforcement levels
     campaign  a fleet-scale staged policy-update campaign
     policy    print the car's derived baseline policy
*)

module V = Secpol.Vehicle
module Car = V.Car
module Catalog = V.Threat_catalog
module Scenarios = Secpol.Attack.Scenarios
module Campaign = Secpol.Attack.Campaign
module Threat = Secpol.Threat.Threat
module Derive = Secpol.Policy.Derive
open Cmdliner

let enforcement_conv =
  let parse = function
    | "off" | "none" -> Ok Campaign.Off
    | "sw" | "software" -> Ok Campaign.Software
    | "hpe" | "hardware" -> Ok Campaign.Hardware
    | s -> Error (`Msg (Printf.sprintf "unknown enforcement %S (off|sw|hpe)" s))
  in
  let print ppf level = Format.pp_print_string ppf (Campaign.level_name level) in
  Arg.conv (parse, print)

let enforcement =
  Arg.(value & opt enforcement_conv Campaign.Hardware
       & info [ "e"; "enforcement" ] ~docv:"LEVEL" ~doc:"off, sw or hpe.")

let seed =
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

(* ---------- list ---------- *)

let list_cmd =
  let run () =
    List.iter
      (fun s ->
        Printf.printf "%-40s %s\n" (Scenarios.threat_id s)
          (match Catalog.find (Scenarios.threat_id s) with
          | Some row -> row.Catalog.threat.Threat.title
          | None -> ""))
      Scenarios.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the Table-I attack scenarios.")
    Term.(const run $ const ())

(* ---------- table1 ---------- *)

let table1_cmd =
  let run () =
    Printf.printf "%-40s %-6s %-17s %-6s\n" "threat" "STRIDE" "DREAD (avg)" "policy";
    List.iter
      (fun (row : Catalog.row) ->
        Printf.printf "%-40s %-6s %-17s %-6s\n" row.threat.Threat.id
          (Secpol.Threat.Stride.to_string row.threat.Threat.stride)
          (Format.asprintf "%a" Secpol.Threat.Dread.pp row.threat.Threat.dread)
          (match Derive.row_access row.threat with
          | Some a -> Derive.access_name a
          | None -> "-"))
      Catalog.rows;
    0
  in
  Cmd.v (Cmd.info "table1" ~doc:"Print the regenerated Table I.")
    Term.(const run $ const ())

(* ---------- run ---------- *)

module Gate = Secpol.Par.Frame_gate

(* Every gate crossing of the drive: one Tx event per transmission attempt
   (at the sender's gate) and one Rx event per reception (at the
   receiver's). *)
let gate_events car =
  List.map
    (fun (e : Secpol.Can.Trace.entry) ->
      let event node dir =
        { Gate.time = e.time; node; dir; id = e.frame.Secpol.Can.Frame.id }
      in
      match e.event with
      | Secpol.Can.Trace.Tx_ok | Tx_error | Tx_abandoned | Tx_refused ->
          event e.node Gate.Tx
      | Rx_delivered r | Rx_filtered r | Rx_blocked (r, _) | Rx_line_error r ->
          event r Gate.Rx)
    (Secpol.Can.Trace.entries (Car.trace car))
  |> Array.of_list

let gate_replay ~domains car =
  let events = gate_events car in
  let nodes =
    Array.to_list (Array.map (fun (e : Gate.event) -> e.node) events)
    |> List.sort_uniq String.compare
  in
  let engine = V.Policy_map.engine (V.Policy_map.baseline ()) in
  let configs =
    (* nodes outside the message map (replayers, attackers) have no HPE:
       the gate passes their traffic through, as on a mixed bus *)
    List.filter_map
      (fun node ->
        match
          V.Policy_map.hpe_config_for engine ~mode:V.Modes.Normal ~node
        with
        | cfg -> Some (node, cfg)
        | exception Invalid_argument _ -> None)
      nodes
  in
  let seq = Gate.run_sequential configs events in
  let par = Gate.run ~domains configs events in
  Printf.printf "parallel gate replay: %d events, %d guarded nodes\n"
    (Array.length events) (List.length configs);
  Printf.printf "  sequential: %10.0f events/s\n" seq.Gate.stats.throughput;
  Printf.printf "  %d domain(s): %10.0f events/s (shards: %s)\n" domains
    par.Gate.stats.throughput
    (String.concat "+"
       (Array.to_list (Array.map string_of_int par.Gate.stats.per_shard)));
  Printf.printf
    "  granted %d, blocked %d, rate-limited %d; identical to sequential: %b\n"
    par.Gate.stats.granted par.Gate.stats.blocked par.Gate.stats.rate_blocked
    (par.Gate.verdicts = seq.Gate.verdicts);
  List.iter
    (fun (name, c) ->
      Printf.printf "  %s = %d\n" name (Secpol.Obs.Counter.value c))
    (Secpol.Obs.Registry.counters par.Gate.registry)

let run_cmd =
  let run level seed seconds metrics_out parallel =
    let obs = Secpol.Obs.Registry.create () in
    let car =
      Car.create ~seed ~enforcement:(Campaign.enforcement_of level) ~obs ()
    in
    Car.run car ~seconds;
    Format.printf "state after %.1f s: %a@." seconds V.State.pp car.Car.state;
    Printf.printf "bus utilisation: %.1f%%, frames: %d, deliveries: %d\n"
      (100.0 *. Secpol.Can.Bus.utilisation car.Car.bus)
      (Secpol.Can.Bus.frames_sent car.Car.bus)
      (Car.total_deliveries car);
    (match car.Car.hpes with
    | [] -> ()
    | hpes ->
        List.iter
          (fun (_, hpe) ->
            print_endline (Format.asprintf "%a" (fun ppf () -> Secpol.Hpe.Engine.pp_stats ppf hpe) ()))
          hpes);
    List.iter
      (fun (t, msg) -> Printf.printf "[%8.3f] %s\n" t msg)
      (V.State.events car.Car.state);
    (match metrics_out with
    | None -> ()
    | Some file ->
        let json = Secpol.Policy.Obs_json.to_string obs in
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc json;
            output_char oc '\n');
        Printf.printf "metrics written to %s\n" file);
    (match parallel with
    | None -> ()
    | Some domains -> gate_replay ~domains car);
    0
  in
  let seconds =
    Arg.(value & opt float 2.0 & info [ "t"; "seconds" ] ~docv:"S" ~doc:"Duration.")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write the run's telemetry registry (counters, gauges, \
                   latency histograms, event trace) to $(docv) as JSON.")
  in
  let parallel =
    Arg.(value & opt (some int) None
         & info [ "parallel" ] ~docv:"N"
             ~doc:"After the drive, replay the captured bus traffic \
                   through the sharded per-node HPE frame gate on $(docv) \
                   worker domains and compare against the sequential \
                   gate.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Drive the car and print what happened.")
    Term.(const run $ enforcement $ seed $ seconds $ metrics_out $ parallel)

(* ---------- attack ---------- *)

let attack_cmd =
  let run level seed threat_id =
    match Scenarios.find threat_id with
    | None ->
        Printf.eprintf "unknown scenario %S; see `carsim list`\n" threat_id;
        1
    | Some s ->
        print_endline (Scenarios.description s);
        print_newline ();
        let o =
          Scenarios.run ~seed ~enforcement:(Campaign.enforcement_of level) s
        in
        Format.printf "%a@." Scenarios.pp_outcome o;
        Printf.printf "detail: %s\n" o.Scenarios.detail;
        if o.Scenarios.succeeded then 3 else 0
  in
  let threat_id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"THREAT" ~doc:"Threat id.")
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Execute one Table-I attack scenario. Exit 0 blocked / 3 succeeded.")
    Term.(const run $ enforcement $ seed $ threat_id)

(* ---------- matrix ---------- *)

let matrix_cmd =
  let run seed =
    let summaries = Campaign.table ~seed () in
    List.iter (fun s -> Format.printf "%a@." Campaign.pp_summary s) summaries;
    Printf.printf "matches the paper's expectation: %b\n"
      (Campaign.matches_paper summaries);
    if Campaign.matches_paper summaries then 0 else 1
  in
  Cmd.v
    (Cmd.info "matrix" ~doc:"Run all sixteen scenarios at every enforcement level.")
    Term.(const run $ seed)

(* ---------- campaign (fleet-scale policy update) ---------- *)

module Fleet_campaign = Secpol.Lifecycle.Campaign

let campaign_cmd =
  let module FC = Fleet_campaign in
  let run fleet seed domains quick unsafe report =
    let cfg = FC.default_config ~fleet ~seed ~domains ~quick () in
    let new_policy =
      (* a deliberately widened update: the gate must refuse it *)
      if unsafe then Some (V.Policy_map.permissive ~version:2 ()) else None
    in
    match FC.run ?new_policy cfg with
    | Error e ->
        prerr_endline e;
        3
    | Ok r ->
        (match report with
        | Some file ->
            Out_channel.with_open_text file (fun oc ->
                output_string oc
                  (Secpol.Policy.Json.to_string (FC.to_json r));
                output_char oc '\n')
        | None -> ());
        Printf.printf "threat: %s (day %g)\n" r.FC.threat_title r.FC.threat_day;
        Printf.printf
          "gate: %s (widened %d, tightened %d, obligations %d -> %d)\n"
          (if r.FC.gate.FC.passed then "passed" else "REFUSED")
          r.FC.gate.FC.widened r.FC.gate.FC.tightened
          r.FC.gate.FC.violations_before r.FC.gate.FC.violations_after;
        List.iter
          (fun (s : FC.stage_report) ->
            Printf.printf "stage %-8s day %4g  %7d vehicles, %7d adopted%s\n"
              s.FC.stage.FC.name s.FC.stage.FC.start_day s.FC.vehicles
              s.FC.adopted
              (if s.FC.started then "" else "  (not started)"))
          r.FC.stages;
        Printf.printf "decisions: %d (%.0f/s), benign denied: %d, lock bursts: %d allowed / %d shaped\n"
          r.FC.decisions r.FC.throughput_per_s r.FC.benign_denied
          r.FC.lock_allowed r.FC.lock_denied;
        let channel name (c : FC.channel_report) =
          Printf.printf
            "%-6s mitigation: %7d vehicles, %7d never, p50 %6.2f d, p99 %7.2f d\n"
            name c.FC.mitigated c.FC.never c.FC.p50_days c.FC.p99_days
        in
        channel "ota" r.FC.ota;
        channel "recall" r.FC.recall;
        Printf.printf "ota vs recall p50 speedup: %.1fx\n" r.FC.speedup_p50;
        if r.FC.gate.FC.passed then 0 else 4
  in
  let fleet =
    Arg.(value & opt int 100_000
         & info [ "fleet" ] ~docv:"N" ~doc:"Fleet size (vehicle instances).")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"D"
             ~doc:"Worker domains the fleet is sharded across.")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ] ~doc:"Coarser tick for smoke runs.")
  in
  let unsafe =
    Arg.(value & flag
         & info [ "unsafe-update" ]
             ~doc:"Roll out a deliberately widened (allow-all) update; \
                   the verifier gate refuses it and the rollout halts.")
  in
  let report =
    Arg.(value & opt (some string) None
         & info [ "report" ] ~docv:"FILE"
             ~doc:"Write the campaign report to $(docv) as JSON.")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Roll a policy update across a simulated fleet in verifier-gated \
          stages while a Table-I threat goes live mid-run. Exit 0 on a \
          completed rollout, 4 when the gate refused the update.")
    Term.(const run $ fleet $ seed $ domains $ quick $ unsafe $ report)

(* ---------- policy ---------- *)

let policy_cmd =
  let run permissive =
    let p =
      if permissive then V.Policy_map.permissive () else V.Policy_map.baseline ()
    in
    print_string (Secpol.Policy.Printer.to_string p);
    0
  in
  let permissive =
    Arg.(value & flag & info [ "permissive" ] ~doc:"Print the factory (allow-all) policy instead.")
  in
  Cmd.v
    (Cmd.info "policy" ~doc:"Print the car's derived least-privilege baseline policy.")
    Term.(const run $ permissive)

(* ---------- sniff ---------- *)

let sniff_cmd =
  let run level seed seconds =
    let car =
      Car.create ~seed ~enforcement:(Campaign.enforcement_of level) ()
    in
    Car.run car ~seconds;
    print_string (Secpol.Can.Candump.export (Car.trace car));
    0
  in
  let seconds =
    Arg.(value & opt float 1.0 & info [ "t"; "seconds" ] ~docv:"S" ~doc:"Capture duration.")
  in
  Cmd.v
    (Cmd.info "sniff"
       ~doc:"Drive the car and dump its bus traffic in candump format.")
    Term.(const run $ enforcement $ seed $ seconds)

(* ---------- replay ---------- *)

let replay_cmd =
  let run level seed file =
    let text =
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Secpol.Can.Candump.import text with
    | Error e ->
        Printf.eprintf "%s: %s\n" file e;
        1
    | Ok records ->
        let car =
          Car.create ~seed ~enforcement:(Campaign.enforcement_of level) ()
        in
        Car.run car ~seconds:0.2;
        (* the replay device is foreign hardware on the bus *)
        let _replayer = Secpol.Can.Node.create ~name:"replayer" car.Car.bus in
        let span =
          List.fold_left
            (fun (lo, hi) (r : Secpol.Can.Candump.record) ->
              (min lo r.time, max hi r.time))
            (infinity, neg_infinity) records
        in
        Secpol.Can.Candump.replay car.Car.sim car.Car.bus ~sender:"replayer"
          records;
        Car.run car ~seconds:(snd span -. fst span +. 1.0);
        Printf.printf "replayed %d frames from %s\n" (List.length records) file;
        Format.printf "state after replay: %a@." V.State.pp car.Car.state;
        List.iter
          (fun (t, msg) -> Printf.printf "[%8.3f] %s\n" t msg)
          (V.State.events car.Car.state);
        0
  in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"LOG" ~doc:"candump log file.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay a candump log onto the car's bus from an alien station.")
    Term.(const run $ enforcement $ seed $ file)

(* ---------- chaos ---------- *)

let chaos_cmd =
  let module F = Secpol.Faults in
  let module Tcar = V.Topology_car in
  (* segment-scoped plans run on the multi-segment topology car through
     the blast runner; everything else keeps the flat-bus harness *)
  let run_blast ~seed ~plan ~placement ~unbounded_gateway report_out =
    let outcome = F.Blast.run ~placement ~unbounded_gateway ~seed ~plan () in
    (match report_out with
    | None -> ()
    | Some file ->
        Out_channel.with_open_text file (fun oc ->
            output_string oc
              (Secpol.Policy.Json.to_string outcome.F.Blast.report);
            output_char oc '\n');
        Printf.printf "blast report written to %s\n" file);
    let blast = outcome.F.Blast.blast in
    let car = F.Blast.car blast in
    Printf.printf "placement: %s%s\n"
      (Tcar.placement_name (Tcar.placement car))
      (if unbounded_gateway then " (unbounded gateway)" else "");
    Printf.printf "blast region: %s\n"
      (match F.Blast.faulted blast with
      | [] -> "(none)"
      | segs -> String.concat ", " segs);
    List.iter
      (fun seg ->
        let bus = Tcar.bus car seg in
        Printf.printf
          "  %-13s %s util %5.1f%%  frames %6d  deliveries %6d  pending %d\n"
          seg
          (if List.mem seg (F.Blast.faulted blast) then "[blast]"
           else "       ")
          (100.0 *. Secpol.Can.Bus.utilisation bus)
          (Secpol.Can.Bus.frames_sent bus)
          (Tcar.deliveries_in car seg)
          (Secpol.Can.Bus.pending bus))
      (Tcar.segments car);
    List.iter
      (fun (v : F.Invariant.violation) ->
        Printf.printf "VIOLATION [%8.4f] %s: %s\n" v.F.Invariant.time
          v.F.Invariant.check v.F.Invariant.detail)
      (F.Invariant.Blast.violations outcome.F.Blast.checker);
    if outcome.F.Blast.passed then begin
      Printf.printf "chaos %s: blast contained\n" plan.F.Plan.name;
      0
    end
    else begin
      Printf.printf "chaos %s: CONTAINMENT VIOLATIONS\n" plan.F.Plan.name;
      4
    end
  in
  let run seed plan_name seconds placement unbounded_gateway report_out =
    match F.Plan.of_name ~seed ~horizon:seconds plan_name with
    | None ->
        Printf.eprintf "unknown plan %S (one of: %s)\n" plan_name
          (String.concat ", " F.Plan.named);
        1
    | Some plan when F.Plan.segment_scoped plan ->
        Format.printf "%a" F.Plan.pp plan;
        run_blast ~seed ~plan ~placement ~unbounded_gateway report_out
    | Some plan ->
        Format.printf "%a" F.Plan.pp plan;
        let outcome = F.Chaos.run ~seed ~plan () in
        (match report_out with
        | None -> ()
        | Some file ->
            let oc = open_out file in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () ->
                output_string oc (F.Report.to_string outcome.F.Chaos.report);
                output_char oc '\n');
            Printf.printf "fault report written to %s\n" file);
        let car = F.Harness.car outcome.F.Chaos.harness in
        Format.printf "final state: %a@." V.State.pp car.Car.state;
        (match F.Harness.failsafe_entered outcome.F.Chaos.harness with
        | None -> ()
        | Some at -> Printf.printf "entered fail-safe at %.4fs\n" at);
        List.iter
          (fun (v : F.Invariant.violation) ->
            Printf.printf "VIOLATION [%8.4f] %s: %s\n" v.F.Invariant.time
              v.F.Invariant.check v.F.Invariant.detail)
          (F.Invariant.violations outcome.F.Chaos.checker);
        if outcome.F.Chaos.passed then begin
          Printf.printf "chaos %s: all invariants held\n" plan.F.Plan.name;
          0
        end
        else begin
          Printf.printf "chaos %s: INVARIANT VIOLATIONS\n" plan.F.Plan.name;
          4
        end
  in
  let plan_name =
    Arg.(
      value
      & opt string "stall"
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "Fault plan: stall, storm, partition, crash, hpe-corruption, \
             skewed-stall, mixed (seed-generated), or a segment-scoped \
             plan on the multi-segment car: segment-partition, \
             segment-babble, gateway-failover.")
  in
  let seconds =
    Arg.(
      value & opt float 4.0
      & info [ "t"; "seconds" ] ~docv:"S" ~doc:"Campaign horizon.")
  in
  let placement =
    let placement_conv =
      let parse s =
        match Tcar.placement_of_name s with
        | Some p -> Ok p
        | None ->
            Error
              (`Msg
                 (Printf.sprintf "expected central or distributed, got %S" s))
      in
      let print ppf p = Format.pp_print_string ppf (Tcar.placement_name p) in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt placement_conv `Distributed
      & info [ "placement" ] ~docv:"WHERE"
          ~doc:
            "Enforcement placement for segment-scoped plans: central \
             (gateway whitelists only) or distributed (per-node HPE gate \
             banks as well).")
  in
  let unbounded_gateway =
    Arg.(
      value & flag
      & info [ "unbounded-gateway" ]
          ~doc:
            "Build the gateways with an effectively unlimited admission \
             queue — a deliberately broken configuration whose backlog \
             the blast-radius invariant must catch (expected exit 4 \
             under segment-babble).")
  in
  let report_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Write the fault report (per-fault MTTR, watchdog MTTD, \
             fail-safe latency, violations, telemetry) to $(docv) as JSON.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a fault-injection campaign against the HPE-enforced car. \
          Exit 0 when every safety invariant held, 4 on violations.")
    Term.(
      const run $ seed $ plan_name $ seconds $ placement $ unbounded_gateway
      $ report_out)

let () =
  let info =
    Cmd.info "carsim" ~version:"1.0.0"
      ~doc:"Connected-car simulation and attack-scenario runner."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd; table1_cmd; run_cmd; attack_cmd; matrix_cmd;
            campaign_cmd; policy_cmd; sniff_cmd; replay_cmd; chaos_cmd;
          ]))
