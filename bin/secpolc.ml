(* secpolc: the policy compiler / toolchain CLI.

   Subcommands:
     lint    parse + compile + full static analysis (text or JSON report)
     check   thin alias for lint: text output, fail on errors
     fmt     pretty-print the normal form
     eval    evaluate one access request against a policy
     verify  semantic verification: symbolic decision-space analysis
     diff    semantic + rule-level difference between two policy files
     bundle  seal a policy file into an update bundle (prints the checksum)
*)

module Policy = Secpol.Policy
module Vehicle = Secpol.Vehicle
module Lint = Policy.Lint
module Diagnostic = Policy.Diagnostic
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  match Policy.Parser.parse (read_file path) with
  | Ok p -> Ok p
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

let policy_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"POLICY" ~doc:"Policy source file.")

let strategy_conv =
  Arg.enum
    [
      ("deny-overrides", Policy.Engine.Deny_overrides);
      ("allow-overrides", Policy.Engine.Allow_overrides);
      ("first-match", Policy.Engine.First_match);
    ]

let strategy_arg =
  Arg.(value & opt strategy_conv Policy.Engine.Deny_overrides
       & info [ "strategy" ] ~docv:"S"
           ~doc:"Resolution strategy: $(b,deny-overrides), \
                 $(b,allow-overrides) or $(b,first-match).")

(* ---------- lint ---------- *)

(* Exit codes: 0 clean (or findings below --fail-on), 1 findings at or above
   the threshold, 3 unreadable / unparsable / uncompilable policy.  Cmdliner
   reserves 124/125 for command-line errors. *)

let comma_list =
  Arg.list ~sep:',' Arg.string

let format_arg =
  Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
       & info [ "format" ] ~docv:"FMT" ~doc:"Output format: $(b,text) or $(b,json).")

let fail_on_arg =
  Arg.(value
       & opt (enum [ ("error", `Error); ("warning", `Warning); ("never", `Never) ]) `Error
       & info [ "fail-on" ] ~docv:"SEV"
           ~doc:"Exit non-zero when findings of this severity (or worse) \
                 exist: $(b,error), $(b,warning) or $(b,never).")

let modes_arg =
  Arg.(value & opt (some comma_list) None
       & info [ "modes" ] ~docv:"M1,M2"
           ~doc:"Declared mode universe; defaults to the modes the policy \
                 names.")

let subjects_arg =
  Arg.(value & opt (some comma_list) None
       & info [ "subjects" ] ~docv:"S1,S2" ~doc:"Subject universe.")

let assets_arg =
  Arg.(value & opt (some comma_list) None
       & info [ "assets" ] ~docv:"A1,A2" ~doc:"Asset universe.")

let lint_config ~strategy ~modes ~subjects ~assets ~vehicle =
  let default l = function Some v -> Some v | None -> l in
  if vehicle then
    {
      Lint.strategy;
      modes = default (Some (List.map Vehicle.Modes.name Vehicle.Modes.all)) modes;
      subjects = default (Some Vehicle.Names.assets) subjects;
      assets = default (Some Vehicle.Names.assets) assets;
    }
  else { Lint.strategy; modes; subjects; assets }

let run_lint file ~strategy ~modes ~subjects ~assets ~vehicle =
  match load file with
  | Error e -> Error e
  | Ok ast -> (
      match Policy.Compile.compile ast with
      | Error issues ->
          Error
            (String.concat "\n"
               (List.map
                  (fun i -> Format.asprintf "%a" Policy.Compile.pp_issue i)
                  issues))
      | Ok (db, _warnings) ->
          let config = lint_config ~strategy ~modes ~subjects ~assets ~vehicle in
          let passes =
            if vehicle then Lint.builtin @ Vehicle.Lint_passes.passes ()
            else Lint.builtin
          in
          Ok (db, Lint.run ~passes config db))

let exit_for ~fail_on diagnostics =
  let errors = Diagnostic.count Diagnostic.Error diagnostics in
  let warnings = Diagnostic.count Diagnostic.Warning diagnostics in
  match fail_on with
  | `Never -> 0
  | `Error -> if errors > 0 then 1 else 0
  | `Warning -> if errors > 0 || warnings > 0 then 1 else 0

let explain code =
  match Diagnostic.code_of_id code with
  | None ->
      Printf.eprintf "unknown diagnostic code %S (SP001..SP%03d)\n" code
        (List.length Diagnostic.all_codes);
      3
  | Some c ->
      Printf.printf "%s (%s), default severity %s\n\n%s\n" (Diagnostic.id c)
        (Diagnostic.slug c)
        (Diagnostic.severity_name (Diagnostic.default_severity c))
        (Diagnostic.explain c);
      0

let lint_cmd =
  let run file format strategy fail_on modes subjects assets vehicle explain_code =
    match (explain_code, file) with
    | Some code, _ -> explain code
    | None, None ->
        prerr_endline "secpolc lint: a POLICY file is required unless --explain is given";
        3
    | None, Some file -> (
        match run_lint file ~strategy ~modes ~subjects ~assets ~vehicle with
        | Error e ->
            prerr_endline e;
            3
        | Ok (db, diagnostics) ->
            (match format with
            | `Text -> Format.printf "%a" Lint.pp_report (db, diagnostics)
            | `Json ->
                print_endline
                  (Policy.Json.to_string (Lint.report_to_json db diagnostics)));
            exit_for ~fail_on diagnostics)
  in
  let file =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"POLICY" ~doc:"Policy source file.")
  in
  let vehicle =
    Arg.(value & flag
         & info [ "vehicle" ]
             ~doc:"Lint against the built-in connected-car deployment: the \
                   car's mode/subject/asset universes plus the cross-layer \
                   HPE-consistency and threat-traceability passes.")
  in
  let explain_code =
    Arg.(value & opt (some string) None
         & info [ "explain" ] ~docv:"CODE"
             ~doc:"Print the long-form description of a diagnostic code \
                   (e.g. $(b,SP003) or $(b,coverage-gap)) and exit.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run all static-analysis passes over a policy."
       ~man:
         [
           `S Manpage.s_description;
           `P "Parses and compiles $(i,POLICY), runs the lint passes \
               (conflicts SP001, shadowing SP002, coverage gaps SP003, \
               unreachable rules SP004, unknown modes SP005, rate sanity \
               SP006/SP007, and with $(b,--vehicle) also HPE consistency \
               SP008 and threat traceability SP009) and reports the \
               findings.  $(b,--explain) documents any SP001..SP014 code, \
               including the semantic-verifier codes emitted by \
               $(b,secpolc verify) and $(b,secpolc diff).";
           `S Manpage.s_exit_status;
           `P "0 on a clean policy (or findings below $(b,--fail-on)); 1 \
               when findings at or above the threshold exist; 3 when the \
               policy cannot be read, parsed or compiled.";
         ])
    Term.(const run $ file $ format_arg $ strategy_arg $ fail_on_arg
          $ modes_arg $ subjects_arg $ assets_arg $ vehicle $ explain_code)

(* ---------- check ---------- *)

let check_cmd =
  let run first_match file =
    let strategy =
      if first_match then Policy.Engine.First_match
      else Policy.Engine.Deny_overrides
    in
    match
      run_lint file ~strategy ~modes:None ~subjects:None ~assets:None
        ~vehicle:false
    with
    | Error e ->
        prerr_endline e;
        1
    | Ok (db, diagnostics) ->
        Format.printf "%a" Lint.pp_report (db, diagnostics);
        if Diagnostic.count Diagnostic.Error diagnostics > 0 then 2 else 0
  in
  let first_match =
    Arg.(value & flag
         & info [ "first-match" ]
             ~doc:"Analyse reachability assuming first-match resolution.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Parse, compile and statically analyse a policy (alias for \
             lint with text output; exit 2 on errors)." )
    Term.(const run $ first_match $ policy_file)

(* ---------- fmt ---------- *)

let fmt_cmd =
  let run file =
    match load file with
    | Error e ->
        prerr_endline e;
        1
    | Ok ast ->
        print_string (Policy.Printer.to_string ast);
        0
  in
  Cmd.v
    (Cmd.info "fmt" ~doc:"Print the canonical form of a policy.")
    Term.(const run $ policy_file)

(* ---------- eval ---------- *)

let eval_cmd =
  let run file mode subject asset op msg_id strategy =
    match load file with
    | Error e ->
        prerr_endline e;
        1
    | Ok ast -> (
        match Policy.Compile.compile ast with
        | Error issues ->
            List.iter (fun i -> Format.eprintf "%a@." Policy.Compile.pp_issue i) issues;
            1
        | Ok (db, _) ->
            let engine = Policy.Engine.create ~strategy db in
            let request = { Policy.Ir.mode; subject; asset; op; msg_id } in
            let outcome = Policy.Engine.decide engine request in
            Format.printf "%a -> %a@." Policy.Ir.pp_request request
              Policy.Engine.pp_outcome outcome;
            (match outcome.Policy.Engine.decision with
            | Policy.Ast.Allow -> 0
            | Policy.Ast.Deny -> 3))
  in
  let mode =
    Arg.(value & opt string "" & info [ "mode" ] ~docv:"MODE" ~doc:"Operating mode.")
  in
  let subject =
    Arg.(required & opt (some string) None & info [ "subject" ] ~docv:"SUBJECT" ~doc:"Requesting subject.")
  in
  let asset =
    Arg.(required & opt (some string) None & info [ "asset" ] ~docv:"ASSET" ~doc:"Target asset.")
  in
  let op_conv =
    Arg.enum [ ("read", Policy.Ir.Read); ("write", Policy.Ir.Write) ]
  in
  let op =
    Arg.(value & opt op_conv Policy.Ir.Read
         & info [ "op" ] ~docv:"OP" ~doc:"$(b,read) or $(b,write).")
  in
  let msg =
    Arg.(value & opt (some int) None & info [ "msg" ] ~docv:"ID" ~doc:"CAN message id.")
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate one access request. Exit 0 allow / 3 deny.")
    Term.(const run $ policy_file $ mode $ subject $ asset $ op $ msg $ strategy_arg)

(* ---------- verify ---------- *)

let load_db path =
  match load path with
  | Error e -> Error e
  | Ok ast -> (
      match Policy.Compile.compile ast with
      | Error issues ->
          Error
            (String.concat "\n"
               (List.map
                  (fun i -> Format.asprintf "%a" Policy.Compile.pp_issue i)
                  issues))
      | Ok (db, _warnings) -> Ok (ast, db))

(* Threat entry points name attack surfaces; requests arrive as the asset
   names of the CAN nodes behind them, which is what policy rules bind. *)
let vehicle_obligations () =
  Secpol.Threat.Obligation.of_model
    ~subjects_of_entry_point:(fun ep ->
      List.map Vehicle.Names.asset_of_node (Vehicle.Names.nodes_of_entry_point ep))
    (Vehicle.Threat_catalog.model ())

let verify_cmd =
  let run file format strategy fail_on modes subjects assets vehicle =
    match load_db file with
    | Error e ->
        prerr_endline e;
        3
    | Ok (_ast, db) ->
        let cfg = lint_config ~strategy ~modes ~subjects ~assets ~vehicle in
        let obligations = if vehicle then vehicle_obligations () else [] in
        let report =
          Policy.Verify.analyse ~strategy:cfg.Lint.strategy
            ?modes:cfg.Lint.modes ?subjects:cfg.Lint.subjects
            ?assets:cfg.Lint.assets ~obligations db
        in
        (match format with
        | `Text -> Format.printf "%a" Policy.Verify.pp_report report
        | `Json ->
            print_endline
              (Policy.Json.to_string (Policy.Verify.report_to_json report)));
        exit_for ~fail_on report.Policy.Verify.diagnostics
  in
  let vehicle =
    Arg.(value & flag
         & info [ "vehicle" ]
             ~doc:"Verify against the built-in connected-car deployment: \
                   the car's mode/subject/asset universes plus the denial \
                   obligations derived from the Table-I threat catalogue \
                   (SP013).")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Semantically verify a policy by symbolic decision-space \
             analysis."
       ~man:
         [
           `S Manpage.s_description;
           `P "Computes every access cell's exact decision partition over \
               the message-id space, measures default-decision \
               completeness, proves that the interpreted engine, the \
               compiled table and the symbolic partition agree on every \
               region boundary in every reachable rate-budget state \
               (SP014 on divergence), and reports dead rules (SP011), \
               mergeable modes (SP010) and, with $(b,--vehicle), \
               unmitigated threat obligations (SP013).";
           `S Manpage.s_exit_status;
           `P "0 when verification passes (or findings stay below \
               $(b,--fail-on)); 1 when findings at or above the threshold \
               exist; 3 when the policy cannot be read, parsed or \
               compiled.";
         ])
    Term.(const run $ policy_file $ format_arg $ strategy_arg $ fail_on_arg
          $ modes_arg $ subjects_arg $ assets_arg $ vehicle)

(* ---------- bench ---------- *)

(* Exit codes: 0 measured (and above --min-speedup / --check-scaling when
   given); 1 the compiled fast path fell below --min-speedup or parallel
   scaling fell below --check-scaling; 3 unreadable / unparsable /
   uncompilable policy.  Coarse CPU-clock timing on purpose: this is the
   CI-friendly smoke check, bench/main.exe perf is the precise harness. *)

let write_file path text =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc text)

(* Shard-per-domain scaling on the same synthesised workload: one
   Serve.run per requested domain count, timestamps strictly increasing so
   rate-limited rules behave identically across runs. *)
let bench_parallel ~strategy ~iters ~domains db workload =
  let n = Array.length workload in
  let work =
    Array.init iters (fun k -> (float_of_int k *. 1e-3, workload.(k mod n)))
  in
  List.map
    (fun d ->
      let r = Secpol.Par.Serve.run ~domains:d ~strategy db work in
      (d, r.Secpol.Par.Serve.stats))
    domains

let parallel_json ~name ~version ~iters runs scaling =
  Policy.Json.Obj
    [
      ("policy", Policy.Json.String name);
      ("version", Policy.Json.Int version);
      ("iterations", Policy.Json.Int iters);
      ("partition_key", Policy.Json.String "subject");
      ( "runs",
        Policy.Json.List
          (List.map
             (fun (d, (s : Secpol.Par.Serve.stats)) ->
               Policy.Json.Obj
                 [
                   ("domains", Policy.Json.Int d);
                   ("served", Policy.Json.Int s.served);
                   ("elapsed_s", Policy.Json.Float s.elapsed_s);
                   ("throughput_per_s", Policy.Json.Float s.throughput);
                   ( "per_shard",
                     Policy.Json.List
                       (Array.to_list
                          (Array.map
                             (fun c -> Policy.Json.Int c)
                             s.per_shard)) );
                 ])
             runs) );
      ("scaling", Policy.Json.Float scaling);
    ]

let bench_cmd =
  let json_num = function
    | Policy.Json.Float f -> Some f
    | Policy.Json.Int i -> Some (float_of_int i)
    | _ -> None
  in
  let run file strategy iters min_speedup json domains check_scaling
      parallel_out batch baseline tolerance =
    match load file with
    | Error e ->
        prerr_endline e;
        3
    | Ok ast -> (
        match Policy.Compile.compile ast with
        | Error issues ->
            List.iter
              (fun i -> Format.eprintf "%a@." Policy.Compile.pp_issue i)
              issues;
            3
        | Ok (db, _) ->
            (* synthesise a request mix covering every asset and subject the
               policy names, plus a stranger falling to the default *)
            let modes =
              "normal"
              :: List.concat_map
                   (fun (r : Policy.Ir.rule) ->
                     Option.value ~default:[] r.Policy.Ir.modes)
                   db.Policy.Ir.rules
              |> List.sort_uniq String.compare
            in
            let subjects = "stranger" :: Policy.Ir.subjects db in
            let workload =
              List.concat_map
                (fun asset ->
                  List.concat_map
                    (fun subject ->
                      List.concat_map
                        (fun mode ->
                          List.concat_map
                            (fun op ->
                              [
                                { Policy.Ir.mode; subject; asset; op; msg_id = None };
                                {
                                  Policy.Ir.mode;
                                  subject;
                                  asset;
                                  op;
                                  msg_id = Some 0x100;
                                };
                              ])
                            [ Policy.Ir.Read; Policy.Ir.Write ])
                        modes)
                    subjects)
                (Policy.Ir.assets db)
              |> Array.of_list
            in
            if Array.length workload = 0 then begin
              prerr_endline "policy has no rules to benchmark";
              3
            end
            else begin
              let time mode =
                let engine =
                  Policy.Engine.create ~strategy ~mode ~cache:false db
                in
                let n = Array.length workload in
                (* warm up allocators and the table *)
                for k = 0 to min n 1000 - 1 do
                  ignore (Policy.Engine.decide engine workload.(k mod n))
                done;
                (* wall time from the shared monotonic helper, not
                   [Sys.time]: CPU seconds under-count when the process is
                   descheduled and drift from what bench/ and the parallel
                   layer report, so all timing now goes through one clock *)
                let t0 = Secpol.Obs.Clock.now () in
                for k = 0 to iters - 1 do
                  ignore (Policy.Engine.decide engine workload.(k mod n))
                done;
                (Secpol.Obs.Clock.now () -. t0) /. float_of_int iters *. 1e9
              in
              let interpreted = time `Interpreted in
              let compiled = time `Compiled in
              let batched =
                if not batch then None
                else begin
                  let engine =
                    Policy.Engine.create ~strategy ~mode:`Compiled ~cache:false
                      db
                  in
                  let n = Array.length workload in
                  let b = Policy.Batch.create ~capacity:n () in
                  Array.iter (fun req -> Policy.Batch.push b req) workload;
                  let out = Array.make n Policy.Ast.Deny in
                  let rounds = max 1 (iters / n) in
                  (* same warmup discipline as the per-request loops *)
                  Policy.Engine.decide_batch engine b ~out;
                  let t0 = Secpol.Obs.Clock.now () in
                  for _ = 1 to rounds do
                    Policy.Engine.decide_batch engine b ~out
                  done;
                  Some
                    ((Secpol.Obs.Clock.now () -. t0)
                    /. float_of_int (rounds * n)
                    *. 1e9)
                end
              in
              let batched_speedup =
                match batched with
                | Some b when b > 0.0 -> Some (compiled /. b)
                | _ -> None
              in
              (* separate instrumented pass: the timing loops above stay
                 free of per-decision clock reads *)
              let histogram mode =
                let obs = Secpol.Obs.Registry.create () in
                let engine =
                  Policy.Engine.create ~strategy ~mode ~cache:false ~obs db
                in
                let n = Array.length workload in
                for k = 0 to min iters 10_000 - 1 do
                  ignore (Policy.Engine.decide engine workload.(k mod n))
                done;
                Secpol.Obs.Registry.histogram obs "policy.engine.decide_ns"
              in
              let h_interpreted = histogram `Interpreted in
              let h_compiled = histogram `Compiled in
              let speedup =
                if compiled > 0.0 then interpreted /. compiled else 0.0
              in
              (match json with
              | false ->
                  Printf.printf
                    "policy %s v%d: %d rules, %d-request workload, %d \
                     iterations\ninterpreted: %8.1f ns/op\ncompiled:    \
                     %8.1f ns/op\nspeedup:     %8.2fx\n"
                    db.Policy.Ir.name db.Policy.Ir.version
                    (List.length db.Policy.Ir.rules)
                    (Array.length workload) iters interpreted compiled speedup;
                  (match (batched, batched_speedup) with
                  | Some b, Some s ->
                      Printf.printf
                        "batched:     %8.1f ns/op\nbatched speedup: %.2fx \
                         over per-request compiled\n"
                        b s
                  | _ -> ());
                  Format.printf "interpreted latency: %a@.compiled latency:    %a@."
                    Secpol.Obs.Histogram.pp_summary h_interpreted
                    Secpol.Obs.Histogram.pp_summary h_compiled
              | true ->
                  print_endline
                    (Policy.Json.to_string
                       (Policy.Json.Obj
                          ([
                            ("policy", Policy.Json.String db.Policy.Ir.name);
                            ("version", Policy.Json.Int db.Policy.Ir.version);
                            ("rules", Policy.Json.Int (List.length db.Policy.Ir.rules));
                            ("iterations", Policy.Json.Int iters);
                            ("interpreted_ns_per_op", Policy.Json.Float interpreted);
                            ("compiled_ns_per_op", Policy.Json.Float compiled);
                            ("speedup", Policy.Json.Float speedup);
                          ]
                          @ (match (batched, batched_speedup) with
                            | Some b, Some s ->
                                [
                                  ( "batched_ns_per_op",
                                    Policy.Json.Float b );
                                  ("batched_speedup", Policy.Json.Float s);
                                ]
                            | _ -> [])
                          @ [
                            ( "interpreted_latency_ns",
                              Policy.Obs_json.histogram h_interpreted );
                            ( "compiled_latency_ns",
                              Policy.Obs_json.histogram h_compiled );
                          ]))));
              let speedup_rc =
                match min_speedup with
                | Some m when speedup < m ->
                    Printf.eprintf
                      "speedup %.2fx below required minimum %.2fx\n" speedup m;
                    1
                | Some _ | None -> 0
              in
              let parallel_rc =
                match domains with
                | [] -> 0
                | domains ->
                    let runs =
                      bench_parallel ~strategy ~iters ~domains db workload
                      |> List.sort (fun (a, _) (b, _) -> compare a b)
                    in
                    let base_d, (base : Secpol.Par.Serve.stats) =
                      List.hd runs
                    in
                    let top_d, (top : Secpol.Par.Serve.stats) =
                      List.hd (List.rev runs)
                    in
                    let scaling =
                      if base.throughput > 0.0 then
                        top.throughput /. base.throughput
                      else 0.0
                    in
                    if not json then begin
                      List.iter
                        (fun (d, (s : Secpol.Par.Serve.stats)) ->
                          Printf.printf
                            "parallel %d domain(s): %10.0f decisions/s\n" d
                            s.throughput)
                        runs;
                      Printf.printf
                        "scaling %d -> %d domains: %.2fx throughput\n" base_d
                        top_d scaling
                    end;
                    (match parallel_out with
                    | Some path ->
                        write_file path
                          (Policy.Json.to_string
                             (parallel_json ~name:db.Policy.Ir.name
                                ~version:db.Policy.Ir.version ~iters runs
                                scaling)
                          ^ "\n")
                    | None -> ());
                    (match check_scaling with
                    | Some m when scaling < m ->
                        Printf.eprintf
                          "parallel scaling %.2fx below required minimum \
                           %.2fx\n"
                          scaling m;
                        1
                    | Some _ | None -> 0)
              in
              let baseline_rc =
                match baseline with
                | None -> 0
                | Some path -> (
                    match Policy.Json.of_string (read_file path) with
                    | Error e ->
                        Printf.eprintf "%s: %s\n" path e;
                        3
                    | Ok base ->
                        (* speedups are ratios, so they transfer across
                           machines in a way absolute ns/op numbers do not;
                           only a drop below the tolerance band fails —
                           getting faster never does *)
                        let floor_of b = b *. (1.0 -. (tolerance /. 100.0)) in
                        let check name fresh =
                          match
                            Option.bind (Policy.Json.member name base) json_num
                          with
                          | None -> 0
                          | Some b when fresh >= floor_of b ->
                              Printf.eprintf
                                "baseline %s: %.2f vs %.2f (floor %.2f) ok\n"
                                name fresh b (floor_of b);
                              0
                          | Some b ->
                              Printf.eprintf
                                "baseline %s REGRESSED: %.2f below floor \
                                 %.2f (baseline %.2f, tolerance %.0f%%)\n"
                                name fresh (floor_of b) b tolerance;
                              4
                        in
                        let rc = check "speedup" speedup in
                        let rc' =
                          match batched_speedup with
                          | Some s -> check "batched_speedup" s
                          | None -> 0
                        in
                        max rc rc')
              in
              if speedup_rc <> 0 then speedup_rc
              else if parallel_rc <> 0 then parallel_rc
              else baseline_rc
            end)
  in
  let iters =
    Arg.(value & opt int 100_000
         & info [ "iters" ] ~docv:"N" ~doc:"Decision iterations per engine.")
  in
  let min_speedup =
    Arg.(value & opt (some float) None
         & info [ "min-speedup" ] ~docv:"X"
             ~doc:"Exit 1 when the compiled engine's speedup over the \
                   interpreted engine is below $(docv).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the measurements as a JSON object.")
  in
  let domains =
    Arg.(value & opt (list int) []
         & info [ "domains" ] ~docv:"N1,N2"
             ~doc:"Also serve the workload through the shard-per-domain \
                   parallel layer at each given domain count and report \
                   throughput.")
  in
  let check_scaling =
    Arg.(value & opt (some float) None
         & info [ "check-scaling" ] ~docv:"X"
             ~doc:"Exit 1 when the highest $(b,--domains) count's \
                   throughput over the lowest count's is below $(docv).")
  in
  let parallel_out =
    Arg.(value & opt (some string) None
         & info [ "parallel-out" ] ~docv:"FILE"
             ~doc:"Write the $(b,--domains) scaling measurements as JSON \
                   to $(docv).")
  in
  let batch =
    Arg.(value & flag
         & info [ "batch" ]
             ~doc:"Also time the zero-allocation batched decision path \
                   ($(b,decide_batch) over a struct-of-arrays buffer) and \
                   report its ns/op and speedup over the per-request \
                   compiled engine.")
  in
  let baseline =
    Arg.(value & opt (some file) None
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"Compare this run's speedup ratios against a previous \
                   $(b,--json) report saved in $(docv); exit 4 when one \
                   regresses more than $(b,--tolerance) below it.")
  in
  let tolerance =
    Arg.(value & opt float 10.0
         & info [ "tolerance" ] ~docv:"PCT"
             ~doc:"Allowed regression below the $(b,--baseline) ratios, in \
                   percent.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Micro-benchmark the interpreted vs compiled engine on a policy."
       ~man:
         [
           `S Manpage.s_description;
           `P "Compiles $(i,POLICY), synthesises a request workload covering \
               its assets, subjects and modes, and times the interpreted \
               rule scan against the compiled decision table.  With \
               $(b,--batch) the batched decision path is timed as well; \
               with $(b,--baseline) the measured speedup ratios are gated \
               against a previously saved $(b,--json) report.";
           `S Manpage.s_exit_status;
           `P "0 when measured (and at or above $(b,--min-speedup) when \
               given); 1 below the minimum or below $(b,--check-scaling); \
               3 when the policy or $(b,--baseline) file cannot be read, \
               parsed or compiled; 4 when a ratio regressed more than \
               $(b,--tolerance) below the $(b,--baseline).";
         ])
    Term.(
      const run $ policy_file $ strategy_arg $ iters $ min_speedup $ json
      $ domains $ check_scaling $ parallel_out $ batch $ baseline $ tolerance)

(* ---------- diff ---------- *)

let diff_cmd =
  let run old_file new_file strategy format json_out fail_on =
    match (load_db old_file, load_db new_file) with
    | Error e, _ | _, Error e ->
        prerr_endline e;
        3
    | Ok (old_p, old_db), Ok (new_p, new_db) ->
        let r = Policy.Verify.diff ~strategy old_db new_db in
        (match format with
        | `Text ->
            Format.printf "%a" Policy.Update.pp_diff
              (Policy.Update.diff old_p new_p);
            Format.printf "%a" Policy.Verify.pp_diff_report r;
            if r.Policy.Verify.deltas = [] then
              print_endline "policies are semantically identical"
        | `Json ->
            print_endline (Policy.Json.to_string (Policy.Verify.diff_to_json r)));
        (match json_out with
        | Some path ->
            write_file path
              (Policy.Json.to_string (Policy.Verify.diff_to_json r) ^ "\n")
        | None -> ());
        if fail_on = `Widened
           && Policy.Verify.count_direction Policy.Verify.Widened r > 0
        then 1
        else 0
  in
  let old_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD" ~doc:"Old policy.")
  in
  let new_file =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW" ~doc:"New policy.")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json-out" ] ~docv:"FILE"
             ~doc:"Also write the semantic diff as JSON to $(docv).")
  in
  let fail_on =
    Arg.(value & opt (enum [ ("widened", `Widened); ("never", `Never) ]) `Never
         & info [ "fail-on" ] ~docv:"DIR"
             ~doc:"Exit 1 when the update has deltas of this kind: \
                   $(b,widened) (the new version allows requests the old \
                   one denied, SP012) or $(b,never).")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Semantic decision-space difference between two policy \
             versions."
       ~man:
         [
           `S Manpage.s_description;
           `P "Computes the exact per-cell decision-region changes between \
               $(i,OLD) and $(i,NEW) by symbolic analysis (see $(b,secpolc \
               verify)), classifying each delta as widened, tightened or \
               changed, alongside the rule-level add/remove summary.  A \
               widened delta means the update silently allows requests the \
               old version denied (SP012).";
           `S Manpage.s_exit_status;
           `P "0 when the update is acceptable under $(b,--fail-on); 1 \
               otherwise; 3 when either policy cannot be read, parsed or \
               compiled.";
         ])
    Term.(const run $ old_file $ new_file $ strategy_arg $ format_arg
          $ json_out $ fail_on)

(* ---------- bundle ---------- *)

let bundle_cmd =
  let run file key =
    match Policy.Update.bundle_of_source (read_file file) with
    | Error e ->
        Printf.eprintf "%s: %s\n" file e;
        1
    | Ok b ->
        let b =
          match key with None -> b | Some key -> Policy.Update.sign ~key b
        in
        Printf.printf "name:      %s\nversion:   %d\nchecksum:  %s\nsize:      %d bytes\n"
          b.Policy.Update.name b.Policy.Update.version b.Policy.Update.checksum
          (String.length b.Policy.Update.source);
        (match b.Policy.Update.signature with
        | Some s -> Printf.printf "signature: %s\n" s
        | None -> ());
        0
  in
  let key =
    Arg.(value & opt (some string) None
         & info [ "sign" ] ~docv:"KEY" ~doc:"Sign the bundle under the OEM key.")
  in
  Cmd.v
    (Cmd.info "bundle" ~doc:"Validate and seal a policy into an update bundle.")
    Term.(const run $ policy_file $ key)

let () =
  let info =
    Cmd.info "secpolc" ~version:"1.0.0"
      ~doc:"Policy compiler and toolchain for the Secpol policy DSL."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            lint_cmd; check_cmd; fmt_cmd; eval_cmd; verify_cmd; bench_cmd;
            diff_cmd; bundle_cmd;
          ]))
