(* secpold: the long-running decision daemon.

   Subcommands:
     serve   run the daemon in the foreground (Unix socket, optional TCP)
     reload  hot-swap the served policy, gated by the semantic verifier
     stats   scrape the daemon's JSON report over the socket
     decide  ask one decision over the socket (exit 0 allow / 3 deny)
     hammer  drive concurrent decide load; track a probe request across a
             swap and write a machine-readable report (the CI smoke job)
*)

module Policy = Secpol.Policy
module Serve = Secpol.Serve
module Daemon = Serve.Daemon
module Client = Serve.Client
module Wire = Serve.Wire
module Json = Policy.Json
module Clock = Secpol.Obs.Clock
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path text =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc text)

(* Exit codes: 0 success (decide: allow), 1 transport/daemon error, 3
   unreadable/unparsable policy (decide: deny), 4 reload refused by the
   widening gate.  Cmdliner reserves 124/125. *)

let load_db path =
  match Policy.Compile.of_source (read_file path) with
  | Ok db -> Ok db
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

let strategy_conv =
  Arg.enum
    [
      ("deny-overrides", Policy.Engine.Deny_overrides);
      ("allow-overrides", Policy.Engine.Allow_overrides);
      ("first-match", Policy.Engine.First_match);
    ]

let socket_arg =
  Arg.(value & opt string "secpold.sock"
       & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let policy_file =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"POLICY" ~doc:"Policy source file.")

(* ---------- serve ---------- *)

let serve_cmd =
  let run file socket tcp domains strategy no_cache queue_capacity watchdog_ms =
    match load_db file with
    | Error e ->
        Printf.eprintf "%s\n" e;
        3
    | Ok db -> (
        let config =
          {
            Daemon.default_config with
            socket_path = socket;
            tcp_port = tcp;
            domains;
            strategy;
            cache = not no_cache;
            queue_capacity;
            watchdog_deadline_s = watchdog_ms /. 1e3;
          }
        in
        match Daemon.start ~config db with
        | exception Unix.Unix_error (err, _, _) ->
            Printf.eprintf "secpold: cannot bind %s: %s\n" socket
              (Unix.error_message err);
            1
        | daemon ->
            Printf.printf "secpold: serving %s v%d on %s (%d domain%s)\n%!"
              db.Policy.Ir.name db.Policy.Ir.version socket domains
              (if domains = 1 then "" else "s");
            let stopping = ref false in
            let stop_on _ =
              if not !stopping then begin
                stopping := true;
                Daemon.stop daemon;
                exit 0
              end
            in
            Sys.set_signal Sys.sigint (Sys.Signal_handle stop_on);
            Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_on);
            (* the accept threads do the work; park the main thread *)
            let rec sleep () =
              Unix.sleep 3600;
              sleep ()
            in
            sleep ())
  in
  let tcp =
    Arg.(value & opt (some int) None
         & info [ "tcp" ] ~docv:"PORT" ~doc:"Also listen on loopback TCP.")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N" ~doc:"Worker shards (domains).")
  in
  let strategy =
    Arg.(value & opt strategy_conv Policy.Engine.Deny_overrides
         & info [ "strategy" ] ~docv:"S"
             ~doc:"Resolution strategy: $(b,deny-overrides), \
                   $(b,allow-overrides) or $(b,first-match).")
  in
  let no_cache =
    Arg.(value & flag
         & info [ "no-cache" ] ~doc:"Disable the per-worker decision cache.")
  in
  let queue_capacity =
    Arg.(value & opt int 1024
         & info [ "queue" ] ~docv:"N"
             ~doc:"Per-shard ring depth: the admission bound.")
  in
  let watchdog_ms =
    Arg.(value & opt float 1000.0
         & info [ "watchdog-ms" ] ~docv:"MS"
             ~doc:"Per-shard answer deadline before fail-safe denies.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the decision daemon in the foreground."
       ~man:
         [
           `S Manpage.s_description;
           `P "Compiles $(i,POLICY), spawns one pinned worker domain per \
               shard over the shared decision table, and answers batched \
               decide requests over a Unix-domain socket (and optionally \
               loopback TCP).  The served policy can be hot-swapped with \
               $(b,secpold reload) without dropping a request.";
         ])
    Term.(const run $ policy_file $ socket_arg $ tcp $ domains $ strategy
          $ no_cache $ queue_capacity $ watchdog_ms)

(* ---------- reload ---------- *)

let reload_cmd =
  let run file socket allow_widen =
    match
      (* parse locally first: a syntax error should not cost a round trip *)
      load_db file
    with
    | Error e ->
        Printf.eprintf "%s\n" e;
        3
    | Ok _ -> (
        let source = read_file file in
        match Client.connect ~attempts:1 socket with
        | exception Unix.Unix_error (err, _, _) ->
            Printf.eprintf "secpold: cannot connect %s: %s\n" socket
              (Unix.error_message err);
            1
        | client ->
            Fun.protect
              ~finally:(fun () -> Client.close client)
              (fun () ->
                let r = Client.reload client ~allow_widen source in
                Printf.printf
                  "%s: widened %d, tightened %d, changed %d (epoch %d)\n%s\n"
                  (match r.Client.status with
                  | Wire.Swapped -> "swapped"
                  | Wire.Refused_widened -> "refused"
                  | Wire.Rejected -> "rejected")
                  r.Client.widened r.Client.tightened r.Client.changed
                  r.Client.epoch r.Client.detail;
                match r.Client.status with
                | Wire.Swapped -> 0
                | Wire.Refused_widened -> 4
                | Wire.Rejected -> 3))
  in
  let allow_widen =
    Arg.(value & flag
         & info [ "allow-widen" ]
             ~doc:"Swap even when the update widens allow regions (the \
                   verifier gate refuses widenings by default).")
  in
  Cmd.v
    (Cmd.info "reload" ~doc:"Hot-swap the served policy, verifier-gated."
       ~man:
         [
           `S Manpage.s_description;
           `P "Ships the policy source to the daemon, which compiles it \
               off-path, computes the exact decision-region diff against \
               the running policy, and refuses the swap when any region \
               widens unless $(b,--allow-widen) is passed.  On acceptance \
               the new table is published atomically: every request \
               answered after this command returns was decided under the \
               new policy.";
           `S Manpage.s_exit_status;
           `P "0 swapped; 3 the policy does not parse or compile; 4 \
               refused by the widening gate; 1 transport failure.";
         ])
    Term.(const run $ policy_file $ socket_arg $ allow_widen)

(* ---------- stats ---------- *)

let stats_cmd =
  let run socket out =
    match Client.connect ~attempts:1 socket with
    | exception Unix.Unix_error (err, _, _) ->
        Printf.eprintf "secpold: cannot connect %s: %s\n" socket
          (Unix.error_message err);
        1
    | client ->
        Fun.protect
          ~finally:(fun () -> Client.close client)
          (fun () ->
            let body = Client.stats client in
            (match out with
            | None -> print_endline body
            | Some path -> write_file path body);
            0)
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Write the report to a file.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Scrape the daemon's counters and metrics as JSON.")
    Term.(const run $ socket_arg $ out)

(* ---------- decide ---------- *)

let op_conv = Arg.enum [ ("read", Policy.Ir.Read); ("write", Policy.Ir.Write) ]

let subject_arg =
  Arg.(required & opt (some string) None
       & info [ "subject" ] ~docv:"S" ~doc:"Requesting subject.")

let asset_arg =
  Arg.(required & opt (some string) None
       & info [ "asset" ] ~docv:"A" ~doc:"Target asset.")

let op_arg =
  Arg.(value & opt op_conv Policy.Ir.Read
       & info [ "op" ] ~docv:"OP" ~doc:"$(b,read) or $(b,write).")

let mode_arg =
  Arg.(value & opt string "normal"
       & info [ "mode" ] ~docv:"M" ~doc:"Operating mode.")

let msg_arg =
  Arg.(value & opt (some int) None
       & info [ "msg" ] ~docv:"ID" ~doc:"CAN message ID.")

let request subject asset op mode msg_id =
  { Policy.Ir.mode; subject; asset; op; msg_id }

let decide_cmd =
  let run socket subject asset op mode msg =
    match Client.connect ~attempts:1 socket with
    | exception Unix.Unix_error (err, _, _) ->
        Printf.eprintf "secpold: cannot connect %s: %s\n" socket
          (Unix.error_message err);
        1
    | client ->
        Fun.protect
          ~finally:(fun () -> Client.close client)
          (fun () ->
            let b = Client.decide client [| request subject asset op mode msg |] in
            let verdict = b.Client.allows.(0) in
            Printf.printf "%s%s\n"
              (if verdict then "allow" else "deny")
              (if b.Client.degraded then " (degraded)"
               else if b.Client.shed then " (shed)"
               else "");
            if verdict then 0 else 3)
  in
  Cmd.v
    (Cmd.info "decide" ~doc:"Ask the daemon for one decision."
       ~man:
         [
           `S Manpage.s_exit_status;
           `P "0 allow; 3 deny (including fail-safe denies); 1 transport \
               failure.";
         ])
    Term.(const run $ socket_arg $ subject_arg $ asset_arg $ op_arg $ mode_arg
          $ msg_arg)

(* ---------- hammer ---------- *)

(* The swap-correctness driver: every thread sends batches as fast as it
   can and tracks the probe request's answer on every batch.  Across a
   hot swap the probe must change value at most once (monotone old->new)
   and every batch must be answered — the report makes both checkable. *)
type hammer_thread = {
  mutable sent : int;
  mutable answered : int;
  mutable errors : int;
  mutable degraded_batches : int;
  mutable shed_batches : int;
  mutable probe_first : bool option;
  mutable probe_last : bool option;
  mutable probe_flips : int;
}

let hammer_cmd =
  let run socket seconds threads batch subject asset op mode msg report_path =
    let probe = request subject asset op mode msg in
    let reqs = Array.make (max batch 1) probe in
    let states =
      Array.init threads (fun _ ->
          {
            sent = 0;
            answered = 0;
            errors = 0;
            degraded_batches = 0;
            shed_batches = 0;
            probe_first = None;
            probe_last = None;
            probe_flips = 0;
          })
    in
    let deadline = Clock.now () +. seconds in
    let worker state =
      match Client.connect socket with
      | exception _ -> state.errors <- state.errors + 1
      | client ->
          Fun.protect
            ~finally:(fun () -> Client.close client)
            (fun () ->
              while Clock.now () < deadline do
                state.sent <- state.sent + 1;
                match Client.decide client reqs with
                | exception _ -> state.errors <- state.errors + 1
                | b ->
                    state.answered <- state.answered + 1;
                    if b.Client.degraded then
                      state.degraded_batches <- state.degraded_batches + 1;
                    if b.Client.shed then
                      state.shed_batches <- state.shed_batches + 1;
                    if not (b.Client.degraded || b.Client.shed) then begin
                      let v = b.Client.allows.(0) in
                      (match state.probe_last with
                      | Some prev when prev <> v ->
                          state.probe_flips <- state.probe_flips + 1
                      | _ -> ());
                      if state.probe_first = None then
                        state.probe_first <- Some v;
                      state.probe_last <- Some v
                    end
              done)
    in
    let handles =
      Array.map (fun s -> Thread.create (fun () -> worker s) ()) states
    in
    Array.iter Thread.join handles;
    let total f = Array.fold_left (fun a s -> a + f s) 0 states in
    let thread_json s =
      Json.Obj
        [
          ("sent", Json.Int s.sent);
          ("answered", Json.Int s.answered);
          ("errors", Json.Int s.errors);
          ("degraded_batches", Json.Int s.degraded_batches);
          ("shed_batches", Json.Int s.shed_batches);
          ( "probe_first",
            match s.probe_first with
            | None -> Json.Null
            | Some b -> Json.Bool b );
          ( "probe_last",
            match s.probe_last with None -> Json.Null | Some b -> Json.Bool b
          );
          ("probe_flips", Json.Int s.probe_flips);
        ]
    in
    let report =
      Json.Obj
        [
          ("schema", Json.Int 1);
          ("suite", Json.String "secpold-hammer");
          ("threads", Json.Int threads);
          ("batch", Json.Int (max batch 1));
          ("seconds", Json.Float seconds);
          ("sent", Json.Int (total (fun s -> s.sent)));
          ("answered", Json.Int (total (fun s -> s.answered)));
          ("errors", Json.Int (total (fun s -> s.errors)));
          ("degraded_batches", Json.Int (total (fun s -> s.degraded_batches)));
          ("shed_batches", Json.Int (total (fun s -> s.shed_batches)));
          ("probe_flips", Json.Int (total (fun s -> s.probe_flips)));
          ( "per_thread",
            Json.List (Array.to_list (Array.map thread_json states)) );
        ]
    in
    let text = Json.to_string report in
    (match report_path with
    | None -> print_endline text
    | Some path -> write_file path text);
    if total (fun s -> s.errors) > 0 then 1 else 0
  in
  let seconds =
    Arg.(value & opt float 2.0
         & info [ "seconds" ] ~docv:"S" ~doc:"How long to drive load.")
  in
  let threads =
    Arg.(value & opt int 4
         & info [ "threads" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let batch =
    Arg.(value & opt int 16
         & info [ "batch" ] ~docv:"N" ~doc:"Requests per decide message.")
  in
  let report =
    Arg.(value & opt (some string) None
         & info [ "report" ] ~docv:"FILE" ~doc:"Write the JSON report here.")
  in
  Cmd.v
    (Cmd.info "hammer"
       ~doc:"Drive concurrent decide load and track a probe request."
       ~man:
         [
           `S Manpage.s_description;
           `P "Each thread opens its own connection and sends decide \
               batches of the probe request until the deadline.  The \
               report counts sent/answered/errors per thread and how \
               often the probe's answer changed — across a single hot \
               swap it must change at most once.";
           `S Manpage.s_exit_status;
           `P "0 when every batch was answered; 1 otherwise.";
         ])
    Term.(const run $ socket_arg $ seconds $ threads $ batch $ subject_arg
          $ asset_arg $ op_arg $ mode_arg $ msg_arg $ report)

let () =
  let info =
    Cmd.info "secpold" ~version:"1.0.0"
      ~doc:"Long-running policy decision daemon with verifier-gated hot \
            reload."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ serve_cmd; reload_cmd; stats_cmd; decide_cmd; hammer_cmd ]))
