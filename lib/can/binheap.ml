(* A plain mutable binary min-heap.  The backing array holds [option]s so
   popped slots can be cleared to [None] — a heap that shrinks after a
   burst must not pin the burst's elements against the GC. *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a option array;
  mutable size : int;
}

let create ?(capacity = 16) ~cmp () =
  { cmp; data = Array.make (max capacity 1) None; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let get t i =
  match t.data.(i) with Some v -> v | None -> assert false

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp (get t i) (get t parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp (get t l) (get t !smallest) < 0 then smallest := l;
  if r < t.size && t.cmp (get t r) (get t !smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t v =
  if t.size = Array.length t.data then begin
    let bigger = Array.make (2 * t.size) None in
    Array.blit t.data 0 bigger 0 t.size;
    t.data <- bigger
  end;
  t.data.(t.size) <- Some v;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let root = get t 0 in
    t.size <- t.size - 1;
    t.data.(0) <- t.data.(t.size);
    t.data.(t.size) <- None;
    if t.size > 0 then sift_down t 0;
    Some root
  end

(* Heapify bottom-up: O(n), versus O(n log n) for repeated pushes. *)
let rebuild t =
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done

let drain_if t pred =
  let dropped = ref [] in
  let kept = ref 0 in
  for i = 0 to t.size - 1 do
    let v = get t i in
    if pred v then dropped := v :: !dropped
    else begin
      t.data.(!kept) <- Some v;
      incr kept
    end
  done;
  for i = !kept to t.size - 1 do
    t.data.(i) <- None
  done;
  t.size <- !kept;
  rebuild t;
  !dropped
