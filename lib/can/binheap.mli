(** A mutable binary min-heap, the arbitration queue behind {!Bus}.

    The bus used to keep pending frames in a list: [pending] was
    [List.length], every arbitration slot re-filtered the losers, and the
    load gauges walked the whole list — O(n²) under a babbling-idiot
    storm, which the fault-plan runs pay for.  A heap makes the winning
    frame a O(log n) pop and the queue depth an O(1) field read. *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** [cmp a b < 0] means [a] pops before [b].  [capacity] (default 16) is
    only the initial allocation; the heap grows by doubling. *)

val length : 'a t -> int
(** O(1). *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** O(log n) amortised. *)

val peek : 'a t -> 'a option
(** The minimum element, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val drain_if : 'a t -> ('a -> bool) -> 'a list
(** Remove every element satisfying the predicate in one O(n) sweep
    (the survivors are re-heapified bottom-up).  The removed elements
    are returned in {e unspecified} order — sort if order matters. *)
