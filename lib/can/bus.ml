module Engine = Secpol_sim.Engine
module Rng = Secpol_sim.Rng
module Obs = Secpol_obs

type tx_outcome = Sent | Retried of int | Abandoned

type station = {
  name : string;
  deliver : time:float -> sender:string -> bool list -> unit;
  on_wire_error : unit -> unit;
}

type pending = {
  sender : string;
  frame : Frame.t;
  attempts : int;
  seq : int;
  enqueued : float; (* sim time the frame first entered the queue *)
  on_outcome : tx_outcome -> unit;
}

type t = {
  sim : Engine.t;
  bitrate : float;
  mutable corrupt_prob : float;
  max_retries : int;
  rng : Rng.t;
  trace : Trace.t;
  mutable stations : station list;
  queue : pending Binheap.t;
  mutable busy : bool;
  mutable seq : int;
  mutable busy_time : float;
  c_frames : Obs.Counter.t;
  c_retries : Obs.Counter.t;
  c_abandoned : Obs.Counter.t;
  c_wire_errors : Obs.Counter.t;
  tx_latency : Obs.Histogram.t; (* queue-to-delivery, sim milliseconds *)
}

(* Arbitration order: dominant identifier wins; FIFO (by seq) among equal
   ids, which models a node's internal queue order.  A retried frame keeps
   its seq, so it re-enters arbitration at its original FIFO position
   rather than behind frames queued while it was on the wire. *)
let arbitration_order (a : pending) (b : pending) =
  match Identifier.arbitration_compare a.frame.Frame.id b.frame.Frame.id with
  | 0 -> compare a.seq b.seq
  | c -> c

let create ?(corrupt_prob = 0.0) ?(max_retries = 16) ~bitrate sim =
  if bitrate <= 0.0 then invalid_arg "Bus.create: bitrate must be positive";
  if corrupt_prob < 0.0 || corrupt_prob > 1.0 then
    invalid_arg "Bus.create: corrupt_prob outside [0,1]";
  {
    sim;
    bitrate;
    corrupt_prob;
    max_retries;
    rng = Rng.split (Engine.rng sim);
    trace = Trace.create ();
    stations = [];
    queue = Binheap.create ~cmp:arbitration_order ();
    busy = false;
    seq = 0;
    busy_time = 0.0;
    c_frames = Obs.Counter.create ();
    c_retries = Obs.Counter.create ();
    c_abandoned = Obs.Counter.create ();
    c_wire_errors = Obs.Counter.create ();
    (* 10 us first bucket: a minimal classic-CAN frame at 1 Mbit/s is
       ~50 us of wire time, so arbitration queueing shows up as growth
       across buckets rather than saturating the first one *)
    tx_latency = Obs.Histogram.create ~lo:0.01 ~ratio:2.0 ~buckets:32 ();
  }

let sim t = t.sim

let trace t = t.trace

let attach t ~name ~deliver ~on_wire_error =
  if List.exists (fun s -> s.name = name) t.stations then
    invalid_arg (Printf.sprintf "Bus.attach: duplicate station %S" name);
  t.stations <- t.stations @ [ { name; deliver; on_wire_error } ]

(* Detaching a station takes its queued frames out of arbitration: the
   hardware is gone, so nothing can clock them onto the wire.  Each dropped
   frame is accounted as abandoned (traced, counted, outcome reported) so
   [pending]/[frames_sent]/[abandoned] stay consistent across a detach.  A
   frame of the detached station that is already mid-transmission is left
   alone — it is on the wire and completes physically. *)
let detach t name =
  t.stations <- List.filter (fun s -> s.name <> name) t.stations;
  let dropped =
    List.sort
      (fun (a : pending) b -> compare a.seq b.seq)
      (Binheap.drain_if t.queue (fun (p : pending) -> p.sender = name))
  in
  let now = Engine.now t.sim in
  List.iter
    (fun (p : pending) ->
      Obs.Counter.incr t.c_abandoned;
      Trace.record t.trace ~time:now ~node:p.sender p.frame Trace.Tx_abandoned;
      p.on_outcome Abandoned)
    dropped

let corrupt_prob t = t.corrupt_prob

let set_corrupt_prob t p =
  if p < 0.0 || p > 1.0 then
    invalid_arg "Bus.set_corrupt_prob: probability outside [0,1]";
  t.corrupt_prob <- p

let stations t = List.map (fun s -> s.name) t.stations

let pending t = Binheap.length t.queue

let frames_sent t = Obs.Counter.value t.c_frames

let retries t = Obs.Counter.value t.c_retries

let abandoned t = Obs.Counter.value t.c_abandoned

let wire_errors t = Obs.Counter.value t.c_wire_errors

let busy_time t = t.busy_time

let utilisation t =
  let now = Engine.now t.sim in
  if now <= 0.0 then 0.0 else t.busy_time /. now

let tx_latency t = t.tx_latency

let attach_obs ?(prefix = "can.bus") t reg =
  let key suffix = prefix ^ "." ^ suffix in
  Obs.Registry.register_counter reg (key "frames_sent") t.c_frames;
  Obs.Registry.register_counter reg (key "tx_retries") t.c_retries;
  Obs.Registry.register_counter reg (key "tx_abandoned") t.c_abandoned;
  Obs.Registry.register_counter reg (key "wire_errors") t.c_wire_errors;
  Obs.Registry.register_histogram reg (key "tx_latency_ms") t.tx_latency;
  Obs.Registry.register_gauge reg (key "utilisation") (fun () ->
      utilisation t);
  Obs.Registry.register_gauge reg (key "busy_time_s") (fun () -> t.busy_time);
  Obs.Registry.register_gauge reg (key "pending") (fun () ->
      float_of_int (Binheap.length t.queue))

let rec start_transmission t =
  match Binheap.pop t.queue with
  | None -> t.busy <- false
  | Some winner ->
      t.busy <- true;
      let duration = Frame.transmission_time winner.frame ~bitrate:t.bitrate in
      Engine.schedule_in t.sim ~delay:duration (fun sim ->
          t.busy_time <- t.busy_time +. duration;
          let now = Engine.now sim in
          let corrupted = Rng.chance t.rng t.corrupt_prob in
          if corrupted then begin
            Obs.Counter.incr t.c_wire_errors;
            Trace.record t.trace ~time:now ~node:winner.sender winner.frame
              Trace.Tx_error;
            List.iter
              (fun s -> if s.name <> winner.sender then s.on_wire_error ())
              t.stations;
            if winner.attempts + 1 > t.max_retries then begin
              Obs.Counter.incr t.c_abandoned;
              Trace.record t.trace ~time:now ~node:winner.sender winner.frame
                Trace.Tx_abandoned;
              winner.on_outcome Abandoned
            end
            else begin
              Obs.Counter.incr t.c_retries;
              winner.on_outcome (Retried (winner.attempts + 1));
              Binheap.push t.queue { winner with attempts = winner.attempts + 1 }
            end
          end
          else begin
            Obs.Counter.incr t.c_frames;
            Obs.Histogram.observe t.tx_latency
              ((now -. winner.enqueued) *. 1e3);
            Trace.record t.trace ~time:now ~node:winner.sender winner.frame
              Trace.Tx_ok;
            let wire = Transceiver.transmit winner.frame in
            List.iter
              (fun s ->
                if s.name <> winner.sender then
                  s.deliver ~time:now ~sender:winner.sender wire)
              t.stations;
            winner.on_outcome Sent
          end;
          start_transmission t)

let transmit t ~sender ?(on_outcome = fun _ -> ()) frame =
  let p =
    {
      sender;
      frame;
      attempts = 0;
      seq = t.seq;
      enqueued = Engine.now t.sim;
      on_outcome;
    }
  in
  t.seq <- t.seq + 1;
  Binheap.push t.queue p;
  if not t.busy then start_transmission t
