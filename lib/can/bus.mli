(** The shared CAN bus (paper Fig. 2): broadcast medium with priority
    arbitration, transmission timing, optional noise, and automatic
    retransmission.

    CAN is multi-master CSMA/CR: when the bus goes idle, the pending frame
    with the dominant (numerically lowest) identifier wins arbitration and
    transmits; losers wait.  Every attached station sees every frame —
    which is the security problem the paper starts from. *)

type tx_outcome = Sent | Retried of int | Abandoned

type t

val create :
  ?corrupt_prob:float ->
  ?max_retries:int ->
  bitrate:float ->
  Secpol_sim.Engine.t ->
  t
(** [corrupt_prob] (default 0.) is the per-transmission probability of a
    line error; [max_retries] (default 16) bounds automatic
    retransmission.  [bitrate] in bits/s (classic CAN: 125k/250k/500k/1M).
    @raise Invalid_argument on a non-positive bitrate or a probability
    outside [0,1]. *)

val sim : t -> Secpol_sim.Engine.t

val trace : t -> Trace.t

val attach :
  t ->
  name:string ->
  deliver:(time:float -> sender:string -> bool list -> unit) ->
  on_wire_error:(unit -> unit) ->
  unit
(** Connect a station.  [deliver] receives the raw wire bits of every frame
    some *other* station transmits; [on_wire_error] fires when a
    transmission is corrupted on the wire.
    @raise Invalid_argument on a duplicate station name. *)

val detach : t -> string -> unit
(** Remove a station.  Frames the station still had queued for arbitration
    are dropped and accounted as abandoned ([Tx_abandoned] trace entries,
    the [abandoned] counter, and each frame's [on_outcome]); a frame of the
    station already on the wire completes normally.  Unknown names are
    ignored. *)

val corrupt_prob : t -> float

val set_corrupt_prob : t -> float -> unit
(** Change the per-transmission line-error probability at run time — the
    injection point for frame-corruption bursts (fault campaigns raise it
    for a bounded window, then restore it).
    @raise Invalid_argument outside [0,1]. *)

val stations : t -> string list

val transmit :
  t -> sender:string -> ?on_outcome:(tx_outcome -> unit) -> Frame.t -> unit
(** Queue a frame for transmission.  Delivery happens after arbitration and
    the frame's wire time; [on_outcome] reports the final fate. *)

val pending : t -> int

val frames_sent : t -> int

val retries : t -> int
(** Retransmissions after a wire error (the frame lost arbitration to
    noise, not to a dominant id). *)

val abandoned : t -> int
(** Frames given up after [max_retries] consecutive wire errors. *)

val wire_errors : t -> int
(** Corrupted transmissions observed on the wire. *)

val busy_time : t -> float
(** Cumulative seconds the bus spent transmitting (for utilisation). *)

val utilisation : t -> float
(** [busy_time / now]; 0. at time 0. *)

val tx_latency : t -> Secpol_obs.Histogram.t
(** Queue-to-delivery latency per successfully sent frame, in simulated
    milliseconds — arbitration and retransmission delay included. *)

val attach_obs : ?prefix:string -> t -> Secpol_obs.Registry.t -> unit
(** Export the bus counters, the [tx_latency_ms] histogram and the load
    gauges ([utilisation], [busy_time_s], [pending]) under
    [<prefix>.*] (default prefix ["can.bus"]).  Multi-segment topologies
    pass a per-segment prefix (e.g. ["can.seg.powertrain"]) so several
    buses can share one registry.  The bus always maintains these
    instruments; attaching merely names them in the registry. *)
