type record = { time : float; interface : string; frame : Frame.t }

let hex_payload payload =
  String.concat ""
    (List.map (Printf.sprintf "%02X")
       (List.init (String.length payload) (fun i -> Char.code payload.[i])))

let id_text id =
  if Identifier.is_extended id then Printf.sprintf "%08X" (Identifier.raw id)
  else Printf.sprintf "%03X" (Identifier.raw id)

let line_of ?(interface = "can0") ~time (frame : Frame.t) =
  let body =
    if frame.rtr then
      if frame.dlc = 0 then "R" else Printf.sprintf "R%d" frame.dlc
    else hex_payload frame.payload
  in
  Printf.sprintf "(%.6f) %s %s#%s" time interface (id_text frame.id) body

let hex_digit c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let parse_hex_byte s i =
  match (hex_digit s.[i], hex_digit s.[i + 1]) with
  | Some hi, Some lo -> Some ((hi lsl 4) lor lo)
  | _ -> None

(* Strict digit-by-digit parses: [int_of_string_opt] accepts OCaml literal
   syntax — underscores ("1_2"), base prefixes, signs — none of which is
   valid candump, so underscore-laced garbage must not slip through. *)
let parse_hex_id s =
  let n = String.length s in
  if n = 0 || n > 8 then None
  else
    let rec go i acc =
      if i = n then Some acc
      else
        match hex_digit s.[i] with
        | Some d -> go (i + 1) ((acc lsl 4) lor d)
        | None -> None
    in
    go 0 0

let parse_decimal s =
  let n = String.length s in
  if n = 0 || n > 3 then None
  else
    let rec go i acc =
      if i = n then Some acc
      else
        match s.[i] with
        | '0' .. '9' -> go (i + 1) ((acc * 10) + Char.code s.[i] - Char.code '0')
        | _ -> None
    in
    go 0 0

let parse_frame_body id_part body =
  let id_value =
    match parse_hex_id id_part with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "bad identifier %S" id_part)
  in
  match id_value with
  | Error _ as e -> e
  | Ok raw -> (
      let make_id () =
        (* candump convention: >3 hex digits means an extended id *)
        if String.length id_part > 3 then Identifier.extended raw
        else Identifier.standard raw
      in
      match make_id () with
      | exception Invalid_argument m -> Error m
      | id ->
          if body = "R" then Ok (Frame.remote id ~dlc:0)
          else if String.length body > 0 && body.[0] = 'R' then
            match parse_decimal (String.sub body 1 (String.length body - 1)) with
            | Some dlc when dlc <= 8 -> Ok (Frame.remote id ~dlc)
            | Some _ | None -> Error (Printf.sprintf "bad remote dlc %S" body)
          else begin
            let n = String.length body in
            if n mod 2 <> 0 then Error "odd number of payload hex digits"
            else if n / 2 > 8 then Error "payload exceeds 8 bytes"
            else
              let rec bytes i acc =
                if i >= n then Ok (List.rev acc)
                else
                  match parse_hex_byte body i with
                  | Some b -> bytes (i + 2) (b :: acc)
                  | None -> Error (Printf.sprintf "bad hex payload %S" body)
              in
              match bytes 0 [] with
              | Error _ as e -> e
              | Ok byte_list ->
                  let payload =
                    String.init (List.length byte_list) (fun i ->
                        Char.chr (List.nth byte_list i))
                  in
                  Ok (Frame.data id payload)
          end)

let parse_line line =
  (* "(time) interface id#body" *)
  let line = String.trim line in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if String.length line = 0 || line.[0] <> '(' then fail "missing timestamp"
  else
    match String.index_opt line ')' with
    | None -> fail "unterminated timestamp"
    | Some close -> (
        let time_text = String.sub line 1 (close - 1) in
        match float_of_string_opt time_text with
        | None -> fail "bad timestamp %S" time_text
        | Some time -> (
            let rest = String.trim (String.sub line (close + 1) (String.length line - close - 1)) in
            match String.split_on_char ' ' rest with
            | [ interface; frame_text ] -> (
                match String.index_opt frame_text '#' with
                | None -> fail "missing '#' in %S" frame_text
                | Some hash -> (
                    let id_part = String.sub frame_text 0 hash in
                    let body =
                      String.sub frame_text (hash + 1)
                        (String.length frame_text - hash - 1)
                    in
                    match parse_frame_body id_part body with
                    | Ok frame -> Ok { time; interface; frame }
                    | Error e -> Error e))
            | _ -> fail "expected 'interface id#data', got %S" rest))

let export ?interface trace =
  let buffer = Buffer.create 1024 in
  List.iter
    (fun (e : Trace.entry) ->
      match e.event with
      | Trace.Tx_ok ->
          Buffer.add_string buffer (line_of ?interface ~time:e.time e.frame);
          Buffer.add_char buffer '\n'
      | _ -> ())
    (Trace.entries trace);
  Buffer.contents buffer

let import text =
  let lines = String.split_on_char '\n' text in
  let rec loop i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then loop (i + 1) acc rest
        else (
          match parse_line line with
          | Ok r -> loop (i + 1) (r :: acc) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" i e))
  in
  loop 1 [] lines

let replay sim bus ~sender records =
  match records with
  | [] -> ()
  | first :: _ ->
      let t0 =
        List.fold_left (fun acc r -> min acc r.time) first.time records
      in
      let start = Secpol_sim.Engine.now sim in
      List.iter
        (fun r ->
          Secpol_sim.Engine.schedule sim
            ~at:(start +. (r.time -. t0))
            (fun _ -> Bus.transmit bus ~sender r.frame))
        records
