(** candump-compatible log format (the de-facto interchange format of
    SocketCAN's can-utils).

    Line shape, as produced by [candump -L]:
    {v (1436509052.249713) can0 123#2A366C v}
    Standard IDs print as 3 hex digits, extended as 8; remote frames use
    [R] plus an optional DLC ([R3]).  Export/import lets simulated traces
    be compared with, or replayed from, real captures. *)

type record = { time : float; interface : string; frame : Frame.t }

val line_of : ?interface:string -> time:float -> Frame.t -> string
(** One log line (no trailing newline).  [interface] defaults to ["can0"]. *)

val parse_line : string -> (record, string) result
(** Strict: identifiers must be 1–8 raw hex digits and a remote DLC raw
    decimal digits — OCaml integer-literal extras ([_], [0x]/[0o]
    prefixes, signs) are rejected, so a line like [1_2#DE] or [12#R0_8]
    never parses. *)

val export : ?interface:string -> Trace.t -> string
(** Every successful transmission ([Tx_ok]) of the trace, one line each,
    chronological, trailing newline included (empty string for an idle
    trace). *)

val import : string -> (record list, string) result
(** Parse a whole log; blank lines are skipped; fails on the first
    malformed line with its line number. *)

val replay :
  Secpol_sim.Engine.t ->
  Bus.t ->
  sender:string ->
  record list ->
  unit
(** Schedule the records' frames for transmission at their timestamps
    (relative to the earliest record, offset to the current simulation
    time).  The sender must be attached to the bus. *)
