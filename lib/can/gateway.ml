module Obs = Secpol_obs
module Engine = Secpol_sim.Engine

type direction = [ `A_to_b | `B_to_a ]

(* One direction's accounting.  Keeping the two directions separate is what
   makes a one-sided event — a partitioned or babbling destination shedding
   every forward towards it while the reverse path stays healthy — visible
   in telemetry instead of averaged away in an aggregate. *)
type side = {
  forwarded : Obs.Counter.t;
  dropped : Obs.Counter.t;
  shed : Obs.Counter.t;
  retries : Obs.Counter.t;
  mutable predicate : Frame.t -> bool;
}

type t = {
  name : string;
  a : Bus.t;
  b : Bus.t;
  max_in_flight : int;
  retry_backoff : float;
  max_retries : int;
  forward_timeout : float;
  mutable in_flight : int;
  ab : side;
  ba : side;
  mutable attached : bool;
}

let side_create predicate =
  {
    forwarded = Obs.Counter.create ();
    dropped = Obs.Counter.create ();
    shed = Obs.Counter.create ();
    retries = Obs.Counter.create ();
    predicate;
  }

let side_of t = function `A_to_b -> t.ab | `B_to_a -> t.ba

(* One forwarding attempt.  The bus reports the frame's final fate through
   [on_outcome]; on [Abandoned] (the destination segment is saturated or
   storming with errors) the gateway retries with exponential backoff until
   its retry budget or the forwarding deadline runs out, then sheds the
   frame.  Bounded retries + a deadline are what keep a partitioned or
   jammed segment from queueing the gateway's memory without limit. *)
let rec submit t ~dst ~side ~attempt ~deadline frame =
  Bus.transmit dst ~sender:t.name frame ~on_outcome:(function
    | Bus.Sent ->
        t.in_flight <- t.in_flight - 1;
        Obs.Counter.incr side.forwarded
    | Bus.Retried _ -> (* bus-level retransmission; final fate still due *) ()
    | Bus.Abandoned ->
        let sim = Bus.sim dst in
        let backoff =
          t.retry_backoff *. Float.of_int (1 lsl Stdlib.min attempt 16)
        in
        if attempt < t.max_retries && Engine.now sim +. backoff <= deadline
        then begin
          Obs.Counter.incr side.retries;
          Engine.schedule_in sim ~delay:backoff (fun sim ->
              if Engine.now sim <= deadline then
                submit t ~dst ~side ~attempt:(attempt + 1) ~deadline frame
              else begin
                t.in_flight <- t.in_flight - 1;
                Obs.Counter.incr side.shed
              end)
        end
        else begin
          t.in_flight <- t.in_flight - 1;
          Obs.Counter.incr side.shed
        end)

let bridge t ~dst ~side wire =
  match Transceiver.receive wire with
  | Transceiver.Line_error _ -> ()
  | Transceiver.Frame frame ->
      if not (side.predicate frame) then Obs.Counter.incr side.dropped
      else if t.in_flight >= t.max_in_flight then
        (* shed at admission: the gateway is already carrying its limit,
           so new load is dropped instead of queued *)
        Obs.Counter.incr side.shed
      else begin
        t.in_flight <- t.in_flight + 1;
        let deadline = Engine.now (Bus.sim dst) +. t.forward_timeout in
        submit t ~dst ~side ~attempt:0 ~deadline frame
      end

let attach_buses t =
  Bus.attach t.a ~name:t.name
    ~deliver:(fun ~time:_ ~sender:_ wire -> bridge t ~dst:t.b ~side:t.ab wire)
    ~on_wire_error:(fun () -> ());
  (try
     Bus.attach t.b ~name:t.name
       ~deliver:(fun ~time:_ ~sender:_ wire ->
         bridge t ~dst:t.a ~side:t.ba wire)
       ~on_wire_error:(fun () -> ())
   with Invalid_argument _ as e ->
     Bus.detach t.a t.name;
     raise e);
  t.attached <- true

let connect ?(max_in_flight = 64) ?(retry_backoff = 0.002) ?(max_retries = 3)
    ?(forward_timeout = 0.25) ~name ~a ~b ~forward_a_to_b ~forward_b_to_a () =
  if a == b then invalid_arg "Gateway.connect: both sides are the same bus";
  if max_in_flight <= 0 then
    invalid_arg "Gateway.connect: max_in_flight must be positive";
  if retry_backoff <= 0.0 then
    invalid_arg "Gateway.connect: retry_backoff must be positive";
  if max_retries < 0 then
    invalid_arg "Gateway.connect: max_retries must be non-negative";
  if forward_timeout <= 0.0 then
    invalid_arg "Gateway.connect: forward_timeout must be positive";
  let t =
    {
      name;
      a;
      b;
      max_in_flight;
      retry_backoff;
      max_retries;
      forward_timeout;
      in_flight = 0;
      ab = side_create forward_a_to_b;
      ba = side_create forward_b_to_a;
      attached = false;
    }
  in
  attach_buses t;
  t

let name t = t.name

let forwarded_dir t dir = Obs.Counter.value (side_of t dir).forwarded

let dropped_dir t dir = Obs.Counter.value (side_of t dir).dropped

let shed_dir t dir = Obs.Counter.value (side_of t dir).shed

let retries_dir t dir = Obs.Counter.value (side_of t dir).retries

let forwarded t = forwarded_dir t `A_to_b + forwarded_dir t `B_to_a

let dropped t = dropped_dir t `A_to_b + dropped_dir t `B_to_a

let shed t = shed_dir t `A_to_b + shed_dir t `B_to_a

let retries t = retries_dir t `A_to_b + retries_dir t `B_to_a

let in_flight t = t.in_flight

let connected t = t.attached

let set_predicates t ~forward_a_to_b ~forward_b_to_a =
  t.ab.predicate <- forward_a_to_b;
  t.ba.predicate <- forward_b_to_a

let attach_obs t reg =
  let register key c =
    Obs.Registry.register_counter reg
      (Printf.sprintf "can.gateway.%s.%s" t.name key)
      c
  in
  let register_side label (s : side) =
    register (label ^ ".forwarded") s.forwarded;
    register (label ^ ".dropped") s.dropped;
    register (label ^ ".shed") s.shed;
    register (label ^ ".retries") s.retries
  in
  register_side "a_to_b" t.ab;
  register_side "b_to_a" t.ba;
  (* direction-summed gauges keep the pre-split names alive for dashboards
     that chart the totals *)
  let aggregate suffix f =
    Obs.Registry.register_gauge reg
      (Printf.sprintf "can.gateway.%s.%s" t.name suffix)
      (fun () -> float_of_int (f t))
  in
  aggregate "forwarded" forwarded;
  aggregate "dropped" dropped;
  aggregate "shed" shed;
  aggregate "retries" retries;
  Obs.Registry.register_gauge reg
    (Printf.sprintf "can.gateway.%s.in_flight" t.name)
    (fun () -> float_of_int t.in_flight)

let disconnect t =
  if t.attached then begin
    Bus.detach t.a t.name;
    Bus.detach t.b t.name;
    t.attached <- false
  end

let reconnect t = if not t.attached then attach_buses t
