module Obs = Secpol_obs
module Engine = Secpol_sim.Engine

type t = {
  name : string;
  a : Bus.t;
  b : Bus.t;
  max_in_flight : int;
  retry_backoff : float;
  max_retries : int;
  forward_timeout : float;
  mutable in_flight : int;
  forwarded : Obs.Counter.t;
  dropped : Obs.Counter.t;
  shed : Obs.Counter.t;
  retries : Obs.Counter.t;
}

(* One forwarding attempt.  The bus reports the frame's final fate through
   [on_outcome]; on [Abandoned] (the destination segment is saturated or
   storming with errors) the gateway retries with exponential backoff until
   its retry budget or the forwarding deadline runs out, then sheds the
   frame.  Bounded retries + a deadline are what keep a partitioned or
   jammed segment from queueing the gateway's memory without limit. *)
let rec submit t ~dst ~attempt ~deadline frame =
  Bus.transmit dst ~sender:t.name frame ~on_outcome:(function
    | Bus.Sent ->
        t.in_flight <- t.in_flight - 1;
        Obs.Counter.incr t.forwarded
    | Bus.Retried _ -> (* bus-level retransmission; final fate still due *) ()
    | Bus.Abandoned ->
        let sim = Bus.sim dst in
        let backoff =
          t.retry_backoff *. Float.of_int (1 lsl Stdlib.min attempt 16)
        in
        if attempt < t.max_retries && Engine.now sim +. backoff <= deadline
        then begin
          Obs.Counter.incr t.retries;
          Engine.schedule_in sim ~delay:backoff (fun sim ->
              if Engine.now sim <= deadline then
                submit t ~dst ~attempt:(attempt + 1) ~deadline frame
              else begin
                t.in_flight <- t.in_flight - 1;
                Obs.Counter.incr t.shed
              end)
        end
        else begin
          t.in_flight <- t.in_flight - 1;
          Obs.Counter.incr t.shed
        end)

let bridge t ~dst ~predicate wire =
  match Transceiver.receive wire with
  | Transceiver.Line_error _ -> ()
  | Transceiver.Frame frame ->
      if not (predicate frame) then Obs.Counter.incr t.dropped
      else if t.in_flight >= t.max_in_flight then
        (* shed at admission: the gateway is already carrying its limit,
           so new load is dropped instead of queued *)
        Obs.Counter.incr t.shed
      else begin
        t.in_flight <- t.in_flight + 1;
        let deadline = Engine.now (Bus.sim dst) +. t.forward_timeout in
        submit t ~dst ~attempt:0 ~deadline frame
      end

let connect ?(max_in_flight = 64) ?(retry_backoff = 0.002) ?(max_retries = 3)
    ?(forward_timeout = 0.25) ~name ~a ~b ~forward_a_to_b ~forward_b_to_a () =
  if a == b then invalid_arg "Gateway.connect: both sides are the same bus";
  if max_in_flight <= 0 then
    invalid_arg "Gateway.connect: max_in_flight must be positive";
  if retry_backoff <= 0.0 then
    invalid_arg "Gateway.connect: retry_backoff must be positive";
  if max_retries < 0 then
    invalid_arg "Gateway.connect: max_retries must be non-negative";
  if forward_timeout <= 0.0 then
    invalid_arg "Gateway.connect: forward_timeout must be positive";
  let t =
    {
      name;
      a;
      b;
      max_in_flight;
      retry_backoff;
      max_retries;
      forward_timeout;
      in_flight = 0;
      forwarded = Obs.Counter.create ();
      dropped = Obs.Counter.create ();
      shed = Obs.Counter.create ();
      retries = Obs.Counter.create ();
    }
  in
  Bus.attach a ~name
    ~deliver:(fun ~time:_ ~sender:_ wire ->
      bridge t ~dst:b ~predicate:forward_a_to_b wire)
    ~on_wire_error:(fun () -> ());
  (try
     Bus.attach b ~name
       ~deliver:(fun ~time:_ ~sender:_ wire ->
         bridge t ~dst:a ~predicate:forward_b_to_a wire)
       ~on_wire_error:(fun () -> ())
   with Invalid_argument _ as e ->
     Bus.detach a name;
     raise e);
  t

let name t = t.name

let forwarded t = Obs.Counter.value t.forwarded

let dropped t = Obs.Counter.value t.dropped

let shed t = Obs.Counter.value t.shed

let retries t = Obs.Counter.value t.retries

let in_flight t = t.in_flight

let attach_obs t reg =
  let register suffix c =
    Obs.Registry.register_counter reg
      (Printf.sprintf "can.gateway.%s.%s" t.name suffix)
      c
  in
  register "forwarded" t.forwarded;
  register "dropped" t.dropped;
  register "shed" t.shed;
  register "retries" t.retries;
  Obs.Registry.register_gauge reg
    (Printf.sprintf "can.gateway.%s.in_flight" t.name)
    (fun () -> float_of_int t.in_flight)

let disconnect t =
  Bus.detach t.a t.name;
  Bus.detach t.b t.name
