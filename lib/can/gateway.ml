module Obs = Secpol_obs

type t = {
  name : string;
  a : Bus.t;
  b : Bus.t;
  forwarded : Obs.Counter.t;
  dropped : Obs.Counter.t;
}

let bridge t ~dst ~predicate wire =
  match Transceiver.receive wire with
  | Transceiver.Line_error _ -> ()
  | Transceiver.Frame frame ->
      if predicate frame then begin
        Obs.Counter.incr t.forwarded;
        Bus.transmit dst ~sender:t.name frame
      end
      else Obs.Counter.incr t.dropped

let connect ~name ~a ~b ~forward_a_to_b ~forward_b_to_a =
  if a == b then invalid_arg "Gateway.connect: both sides are the same bus";
  let t =
    {
      name;
      a;
      b;
      forwarded = Obs.Counter.create ();
      dropped = Obs.Counter.create ();
    }
  in
  Bus.attach a ~name
    ~deliver:(fun ~time:_ ~sender:_ wire ->
      bridge t ~dst:b ~predicate:forward_a_to_b wire)
    ~on_wire_error:(fun () -> ());
  (try
     Bus.attach b ~name
       ~deliver:(fun ~time:_ ~sender:_ wire ->
         bridge t ~dst:a ~predicate:forward_b_to_a wire)
       ~on_wire_error:(fun () -> ())
   with Invalid_argument _ as e ->
     Bus.detach a name;
     raise e);
  t

let name t = t.name

let forwarded t = Obs.Counter.value t.forwarded

let dropped t = Obs.Counter.value t.dropped

let attach_obs t reg =
  Obs.Registry.register_counter reg
    (Printf.sprintf "can.gateway.%s.forwarded" t.name)
    t.forwarded;
  Obs.Registry.register_counter reg
    (Printf.sprintf "can.gateway.%s.dropped" t.name)
    t.dropped

let disconnect t =
  Bus.detach t.a t.name;
  Bus.detach t.b t.name
