(** A CAN-to-CAN gateway bridging two bus segments.

    Network segmentation is the *guideline* countermeasure the paper's §V
    lists ("CAN bus gateway: limit components with CAN bus access"): nodes
    live on separate buses and only whitelisted traffic crosses.  The
    gateway forwards by frame predicate (typically an ID whitelist) with
    store-and-forward semantics; it is deliberately ID-granular, not
    sender-granular — a frame whose ID legitimately crosses is forwarded
    regardless of who injected it, which is exactly the residual weakness
    the per-node HPE addresses (shown in the ablation bench). *)

type t

val connect :
  name:string ->
  a:Bus.t ->
  b:Bus.t ->
  forward_a_to_b:(Frame.t -> bool) ->
  forward_b_to_a:(Frame.t -> bool) ->
  t
(** Attach a station named [name] to both buses.  Every decodable frame
    seen on one side is forwarded to the other when its predicate allows.
    @raise Invalid_argument if the name is taken on either bus, or the two
    arguments are the same bus. *)

val name : t -> string

val forwarded : t -> int
(** Frames bridged (both directions). *)

val dropped : t -> int
(** Frames the predicates refused. *)

val attach_obs : t -> Secpol_obs.Registry.t -> unit
(** Export the forwarded/dropped counters under [can.gateway.<name>.*]. *)

val disconnect : t -> unit
