(** A CAN-to-CAN gateway bridging two bus segments.

    Network segmentation is the *guideline* countermeasure the paper's §V
    lists ("CAN bus gateway: limit components with CAN bus access"): nodes
    live on separate buses and only whitelisted traffic crosses.  The
    gateway forwards by frame predicate (typically an ID whitelist) with
    store-and-forward semantics; it is deliberately ID-granular, not
    sender-granular — a frame whose ID legitimately crosses is forwarded
    regardless of who injected it, which is exactly the residual weakness
    the per-node HPE addresses (shown in the ablation bench).

    Forwarding is bounded on purpose: at most [max_in_flight] frames are in
    forwarding at once, a frame the destination bus abandons is retried
    with exponential backoff at most [max_retries] times, and every frame
    carries a forwarding deadline ([forward_timeout] from admission).  When
    any bound is exceeded the frame is {e shed} — dropped and counted —
    so a partitioned or error-storming destination segment degrades the
    gateway's throughput instead of growing its queue without limit.

    All counters are kept per direction ([`A_to_b] frames seen on [a] and
    forwarded towards [b]; [`B_to_a] the reverse) so a one-sided shed storm
    against a faulted destination segment is visible as such. *)

type t

type direction = [ `A_to_b | `B_to_a ]

val connect :
  ?max_in_flight:int ->
  ?retry_backoff:float ->
  ?max_retries:int ->
  ?forward_timeout:float ->
  name:string ->
  a:Bus.t ->
  b:Bus.t ->
  forward_a_to_b:(Frame.t -> bool) ->
  forward_b_to_a:(Frame.t -> bool) ->
  unit ->
  t
(** Attach a station named [name] to both buses.  Every decodable frame
    seen on one side is forwarded to the other when its predicate allows.

    [max_in_flight] (default 64) bounds concurrent forwards; [retry_backoff]
    (default 2 ms, doubling per attempt) and [max_retries] (default 3)
    shape gateway-level retries after a bus-level abandonment;
    [forward_timeout] (default 250 ms) is the per-frame forwarding
    deadline.
    @raise Invalid_argument if the name is taken on either bus, the two
    arguments are the same bus, or a bound is non-positive. *)

val name : t -> string

val forwarded : t -> int
(** Frames bridged (both directions summed) — counted on confirmed
    delivery, not on admission. *)

val dropped : t -> int
(** Frames the predicates refused (both directions summed). *)

val shed : t -> int
(** Whitelisted frames dropped by overload protection: admission refused at
    the in-flight bound, retry budget exhausted, or forwarding deadline
    passed (both directions summed). *)

val retries : t -> int
(** Gateway-level re-submissions after the destination bus abandoned a
    forward (distinct from the bus's own wire-error retransmissions; both
    directions summed). *)

val forwarded_dir : t -> direction -> int

val dropped_dir : t -> direction -> int

val shed_dir : t -> direction -> int

val retries_dir : t -> direction -> int

val in_flight : t -> int
(** Forwards currently outstanding (admitted, no final fate yet). *)

val connected : t -> bool
(** [false] between {!disconnect} and {!reconnect}. *)

val set_predicates :
  t ->
  forward_a_to_b:(Frame.t -> bool) ->
  forward_b_to_a:(Frame.t -> bool) ->
  unit
(** Replace both forwarding predicates atomically.  Used by gateway
    failover to drop into a limp-home whitelist without rebuilding the
    topology; frames already admitted keep forwarding. *)

val attach_obs : t -> Secpol_obs.Registry.t -> unit
(** Export per-direction counters under
    [can.gateway.<name>.{a_to_b,b_to_a}.*], direction-summed aggregates
    under the pre-split [can.gateway.<name>.{forwarded,dropped,shed,
    retries}] names, and the [in_flight] gauge. *)

val disconnect : t -> unit
(** Detach from both buses (a crashed gateway ECU).  In-flight forwards
    already submitted to a destination bus complete or abandon on their
    own; nothing new is admitted.  Idempotent. *)

val reconnect : t -> unit
(** Re-attach a disconnected gateway to both buses with its current
    predicates (possibly replaced via {!set_predicates} while down).
    No-op when already attached. *)
