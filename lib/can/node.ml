type gate = { gate_name : string; check : Frame.t -> bool }

type t = {
  name : string;
  bus : Bus.t;
  controller : Controller.t;
  mutable tx_gate : gate option;
  mutable rx_gate : gate option;
  mutable on_receive : (t -> sender:string -> Frame.t -> unit) option;
  mutable received : Frame.t list; (* newest first *)
  mutable received_count : int;
  mutable down : bool; (* crashed: no tx, no rx until restart *)
}

let trace_now t event frame =
  let time = Secpol_sim.Engine.now (Bus.sim t.bus) in
  Trace.record (Bus.trace t.bus) ~time ~node:t.name frame event

(* Receive-side trace entries are attributed to the *sender* (the entry's
   event names the receiver), so traces answer "who injected what". *)
let trace_rx t ~sender event frame =
  let time = Secpol_sim.Engine.now (Bus.sim t.bus) in
  Trace.record (Bus.trace t.bus) ~time ~node:sender frame event

let rec deliver t ~time:_ ~sender wire =
  if t.down then ()
  else
    match t.rx_gate with
  | Some gate -> (
      (* The read gate samples the wire before the controller: decode just
         for the check; line errors still reach the controller so error
         counters behave identically with and without a gate. *)
      match Transceiver.receive wire with
      | Transceiver.Frame frame when not (gate.check frame) ->
          trace_rx t ~sender (Trace.Rx_blocked (t.name, gate.gate_name)) frame
      | Transceiver.Frame _ | Transceiver.Line_error _ -> deliver_to_controller t ~sender wire)
  | None -> deliver_to_controller t ~sender wire

and deliver_to_controller t ~sender wire =
  match Controller.receive t.controller wire with
  | Controller.Line_error _ ->
      (* nothing to trace against a decodable frame; counters already bumped *)
      ()
  | Controller.Filtered frame -> trace_rx t ~sender (Trace.Rx_filtered t.name) frame
  | Controller.Deliver frame ->
      trace_rx t ~sender (Trace.Rx_delivered t.name) frame;
      t.received <- frame :: t.received;
      t.received_count <- t.received_count + 1;
      Option.iter (fun f -> f t ~sender frame) t.on_receive

let create ?(filters = []) ~name bus =
  let controller = Controller.create ~name () in
  Controller.set_filters controller filters;
  let t =
    {
      name;
      bus;
      controller;
      tx_gate = None;
      rx_gate = None;
      on_receive = None;
      received = [];
      received_count = 0;
      down = false;
    }
  in
  Bus.attach bus ~name
    ~deliver:(fun ~time ~sender wire -> deliver t ~time ~sender wire)
    ~on_wire_error:(fun () -> Controller.note_wire_error controller);
  t

let name t = t.name

let bus t = t.bus

let controller t = t.controller

let set_on_receive t f = t.on_receive <- Some f

let set_tx_gate t ~name check = t.tx_gate <- Some { gate_name = name; check }

let set_rx_gate t ~name check = t.rx_gate <- Some { gate_name = name; check }

let clear_gates t =
  t.tx_gate <- None;
  t.rx_gate <- None

let send t ?(on_outcome = fun _ -> ()) frame =
  let refused () =
    Controller.note_tx_refused t.controller;
    trace_now t Trace.Tx_refused frame;
    false
  in
  if t.down then false
  else
  match t.tx_gate with
  | Some gate when not (gate.check frame) -> refused ()
  | Some _ | None ->
      if not (Errors.can_transmit (Controller.errors t.controller)) then refused ()
      else begin
        Bus.transmit t.bus ~sender:t.name frame ~on_outcome:(fun outcome ->
            (match outcome with
            | Bus.Sent -> Controller.note_tx_ok t.controller
            | Bus.Retried _ -> Controller.note_tx_error t.controller
            | Bus.Abandoned -> Controller.note_tx_abandoned t.controller);
            on_outcome outcome);
        true
      end

let received t = List.rev t.received

let received_count t = t.received_count

let last_received t = match t.received with [] -> None | f :: _ -> Some f

let detach t = Bus.detach t.bus t.name

let attached t = List.mem t.name (Bus.stations t.bus)

let reattach t =
  if not (attached t) then
    Bus.attach t.bus ~name:t.name
      ~deliver:(fun ~time ~sender wire -> deliver t ~time ~sender wire)
      ~on_wire_error:(fun () -> Controller.note_wire_error t.controller)

let is_down t = t.down

let set_down t down = t.down <- down

(* Crash: the station disappears from the bus (its queued frames are
   dropped by [Bus.detach]) and refuses all traffic.  Restart: rejoin the
   bus with error counters reset, as a power-cycled controller would. *)
let crash t =
  t.down <- true;
  detach t

let restart t =
  t.down <- false;
  Errors.reset (Controller.errors t.controller);
  reattach t
