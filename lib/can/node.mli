(** A CAN node (paper Fig. 3): transceiver + controller + processor.

    The "processor" is an OCaml callback ([set_on_receive]).  Gates model
    hardware sitting between the controller and the bus: the paper's
    hardware policy engine installs a write gate (outbound frames checked
    against the approved writing list) and a read gate (inbound frames
    checked against the approved reading list).  Gates are installed by
    {!Secpol_hpe}, not by node firmware, so "firmware compromise" (which
    may clear acceptance filters and forge frames) cannot remove them. *)

type t

val create : ?filters:Acceptance.t list -> name:string -> Bus.t -> t
(** Create a node and attach it to the bus.
    @raise Invalid_argument on a duplicate name. *)

val name : t -> string

val bus : t -> Bus.t

val controller : t -> Controller.t

val set_on_receive : t -> (t -> sender:string -> Frame.t -> unit) -> unit
(** Processor callback invoked for every frame that passes the read gate
    and the acceptance filters. *)

val set_tx_gate : t -> name:string -> (Frame.t -> bool) -> unit
(** Install a write gate: outbound frames for which the gate returns
    [false] never reach the bus (traced as [Tx_refused]). *)

val set_rx_gate : t -> name:string -> (Frame.t -> bool) -> unit
(** Install a read gate: inbound frames for which the gate returns [false]
    never reach the controller (traced as [Rx_blocked]). *)

val clear_gates : t -> unit
(** Remove both gates (e.g. to model a device without an HPE). *)

val send : t -> ?on_outcome:(Bus.tx_outcome -> unit) -> Frame.t -> bool
(** Transmit a frame.  Returns [false] when refused locally (write gate or
    bus-off controller); [true] when queued on the bus. *)

val received : t -> Frame.t list
(** Frames delivered to the processor so far, oldest first. *)

val received_count : t -> int

val last_received : t -> Frame.t option

val detach : t -> unit
(** Remove the node from the bus (it stops receiving); its frames still
    queued for arbitration are dropped — see {!Bus.detach}. *)

val reattach : t -> unit
(** Rejoin the bus after a {!detach}; a no-op while attached. *)

val attached : t -> bool

val crash : t -> unit
(** Fault injection: the node loses power.  It detaches from the bus
    (queued frames dropped as abandoned) and both [send] and delivery are
    inert until {!restart}. *)

val restart : t -> unit
(** Recover from {!crash}: error counters reset (power-cycled controller)
    and the node rejoins the bus.  Gates, filters and the processor
    callback survive — they are hardware and boot firmware, not volatile
    state. *)

val is_down : t -> bool

val set_down : t -> bool -> unit
(** Raw control over the power flag, for faults that are not full crashes
    (e.g. a partitioned segment: the node is alive but cut off, so its
    error counters survive the healing where {!restart} would reset them). *)
