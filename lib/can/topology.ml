module Engine = Secpol_sim.Engine

type spec = {
  segments : (string * string list) list;
  links : (string * (string * string)) list;
}

type flow = { id : int; src : string; dsts : string list }

type t = {
  sim : Engine.t;
  spec : spec;
  flows : flow list;
  buses : (string * Bus.t) list;
  gateways : (string * Gateway.t) list;
  node_segment : (string * string) list;
  whitelists : (string * (int list * int list)) list;
      (* per gateway: (ids crossing a->b, ids crossing b->a) *)
}

let fail fmt = Printf.ksprintf invalid_arg fmt

let segment_names spec = List.map fst spec.segments

let rec find_dup = function
  | [] -> None
  | x :: rest -> if List.mem x rest then Some x else find_dup rest

(* Undirected adjacency: segment -> (neighbour, gateway, direction of the
   gateway predicate that carries segment -> neighbour traffic). *)
let adjacency spec =
  List.concat_map
    (fun (gw, (sa, sb)) -> [ (sa, (sb, gw, `A_to_b)); (sb, (sa, gw, `B_to_a)) ])
    spec.links

let neighbours adj seg = List.filter_map
    (fun (s, edge) -> if s = seg then Some edge else None)
    adj

let validate_spec spec =
  if spec.segments = [] then fail "Topology: no segments";
  let segs = segment_names spec in
  (match find_dup segs with
  | Some s -> fail "Topology: duplicate segment %S" s
  | None -> ());
  let nodes = List.concat_map snd spec.segments in
  (match find_dup nodes with
  | Some n -> fail "Topology: node %S appears in more than one segment" n
  | None -> ());
  let gws = List.map fst spec.links in
  (match find_dup gws with
  | Some g -> fail "Topology: duplicate gateway %S" g
  | None -> ());
  List.iter
    (fun g ->
      if List.mem g segs then
        fail "Topology: gateway %S reuses a segment name" g;
      if List.mem g nodes then fail "Topology: gateway %S reuses a node name" g)
    gws;
  List.iter
    (fun (g, (sa, sb)) ->
      if not (List.mem sa segs) then
        fail "Topology: link %S references unknown segment %S" g sa;
      if not (List.mem sb segs) then
        fail "Topology: link %S references unknown segment %S" g sb;
      if sa = sb then fail "Topology: link %S joins %S to itself" g sa)
    spec.links;
  (* the segment graph must be a tree: paths (and so routing) are unique,
     and a single gateway crash splits the car into exactly two sides *)
  let n_segs = List.length segs in
  if List.length spec.links <> n_segs - 1 then
    fail "Topology: %d segments need exactly %d links (tree), got %d" n_segs
      (n_segs - 1)
      (List.length spec.links);
  let adj = adjacency spec in
  let rec reach visited = function
    | [] -> visited
    | seg :: rest ->
        if List.mem seg visited then reach visited rest
        else
          let next = List.map (fun (s, _, _) -> s) (neighbours adj seg) in
          reach (seg :: visited) (next @ rest)
  in
  let reached = reach [] [ List.hd segs ] in
  List.iter
    (fun s ->
      if not (List.mem s reached) then
        fail "Topology: segment %S is not connected to %S" s (List.hd segs))
    segs

(* Unique tree path from [src] to [dst] as a list of directed edges
   [(gateway, direction)] plus the segments visited (src first). *)
let path adj ~src ~dst =
  let rec dfs visited seg edges_rev segs_rev =
    if seg = dst then Some (List.rev edges_rev, List.rev (seg :: segs_rev))
    else
      List.fold_left
        (fun acc (next, gw, dir) ->
          match acc with
          | Some _ -> acc
          | None ->
              if List.mem next visited then None
              else
                dfs (next :: visited) next
                  ((gw, dir) :: edges_rev)
                  (seg :: segs_rev))
        None (neighbours adj seg)
  in
  match dfs [ src ] src [] [] with
  | Some r -> r
  | None -> fail "Topology: no path from %S to %S" src dst

let create ?(bitrate = 500_000.0) ?(corrupt_prob = 0.0) ?max_in_flight
    ?retry_backoff ?max_retries ?forward_timeout sim spec ~flows =
  validate_spec spec;
  let segs = segment_names spec in
  List.iter
    (fun f ->
      if not (List.mem f.src segs) then
        fail "Topology: flow 0x%03X from unknown segment %S" f.id f.src;
      List.iter
        (fun d ->
          if not (List.mem d segs) then
            fail "Topology: flow 0x%03X to unknown segment %S" f.id d)
        f.dsts)
    flows;
  let buses =
    List.map (fun (name, _) -> (name, Bus.create ~corrupt_prob ~bitrate sim))
      spec.segments
  in
  let node_segment =
    List.concat_map
      (fun (seg, nodes) -> List.map (fun n -> (n, seg)) nodes)
      spec.segments
  in
  let adj = adjacency spec in
  (* Derive every directed edge's ID whitelist from the flows: an ID
     crosses gateway [g] in direction [d] iff some flow's unique tree path
     from its source segment to a destination segment uses that directed
     edge.  No hand-wired predicates: change the message map or the policy
     and the routing follows. *)
  let whitelists =
    let tbl = Hashtbl.create 16 in
    List.iter (fun (gw, _) -> Hashtbl.replace tbl gw ([], [])) spec.links;
    List.iter
      (fun f ->
        List.iter
          (fun dst ->
            if dst <> f.src then
              let edges, _ = path adj ~src:f.src ~dst in
              List.iter
                (fun (gw, dir) ->
                  let ab, ba = Hashtbl.find tbl gw in
                  match dir with
                  | `A_to_b ->
                      if not (List.mem f.id ab) then
                        Hashtbl.replace tbl gw (f.id :: ab, ba)
                  | `B_to_a ->
                      if not (List.mem f.id ba) then
                        Hashtbl.replace tbl gw (ab, f.id :: ba))
                edges)
          f.dsts)
      flows;
    List.map
      (fun (gw, _) ->
        let ab, ba = Hashtbl.find tbl gw in
        (gw, (List.sort_uniq compare ab, List.sort_uniq compare ba)))
      spec.links
  in
  let predicate ids (frame : Frame.t) =
    match frame.id with
    | Identifier.Standard id -> List.mem id ids
    | Identifier.Extended _ -> false
  in
  let gateways =
    List.map
      (fun (gw, (sa, sb)) ->
        let ab, ba = List.assoc gw whitelists in
        ( gw,
          Gateway.connect ?max_in_flight ?retry_backoff ?max_retries
            ?forward_timeout ~name:gw ~a:(List.assoc sa buses)
            ~b:(List.assoc sb buses) ~forward_a_to_b:(predicate ab)
            ~forward_b_to_a:(predicate ba) () ))
      spec.links
  in
  { sim; spec; flows; buses; gateways; node_segment; whitelists }

let sim t = t.sim

let spec t = t.spec

let flows t = t.flows

let segments t = segment_names t.spec

let gateway_names t = List.map fst t.spec.links

let bus t seg =
  match List.assoc_opt seg t.buses with
  | Some b -> b
  | None -> fail "Topology.bus: unknown segment %S" seg

let gateway t gw =
  match List.assoc_opt gw t.gateways with
  | Some g -> g
  | None -> fail "Topology.gateway: unknown gateway %S" gw

let link t gw =
  match List.assoc_opt gw t.spec.links with
  | Some l -> l
  | None -> fail "Topology.link: unknown gateway %S" gw

let segment_of t node = List.assoc_opt node t.node_segment

let members t seg =
  match List.assoc_opt seg t.spec.segments with
  | Some ns -> ns
  | None -> fail "Topology.members: unknown segment %S" seg

let crossing_ids t ~gateway:gw dir =
  match List.assoc_opt gw t.whitelists with
  | Some (ab, ba) -> ( match dir with `A_to_b -> ab | `B_to_a -> ba)
  | None -> fail "Topology.crossing_ids: unknown gateway %S" gw

(* Reachability of an ID injected on [src]: follow every directed edge
   whose whitelist carries the ID.  This is the declared routing semantics
   the simulated gateways must implement — the qcheck property in the test
   suite compares it against observed flat-bus delivery. *)
let route t ~src id =
  if not (List.mem src (segments t)) then
    fail "Topology.route: unknown segment %S" src;
  let adj = adjacency t.spec in
  let rec reach visited = function
    | [] -> visited
    | seg :: rest ->
        if List.mem seg visited then reach visited rest
        else
          let next =
            List.filter_map
              (fun (s, gw, dir) ->
                if List.mem id (crossing_ids t ~gateway:gw dir) then Some s
                else None)
              (neighbours adj seg)
          in
          reach (seg :: visited) (next @ rest)
  in
  List.filter (fun s -> List.mem s (reach [] [ src ])) (segments t)

let components t ~without =
  List.iter (fun g -> ignore (link t g)) without;
  let live_links =
    List.filter (fun (g, _) -> not (List.mem g without)) t.spec.links
  in
  let adj = adjacency { t.spec with links = live_links } in
  let rec reach visited = function
    | [] -> visited
    | seg :: rest ->
        if List.mem seg visited then reach visited rest
        else
          let next = List.map (fun (s, _, _) -> s) (neighbours adj seg) in
          reach (seg :: visited) (next @ rest)
  in
  let rec group remaining =
    match remaining with
    | [] -> []
    | seg :: _ ->
        let comp = reach [] [ seg ] in
        let comp = List.filter (fun s -> List.mem s comp) (segments t) in
        comp :: group (List.filter (fun s -> not (List.mem s comp)) remaining)
  in
  group (segments t)

let restrict t ~gateway:gw ~ids =
  let g = gateway t gw in
  let ab, ba =
    match List.assoc_opt gw t.whitelists with
    | Some w -> w
    | None -> assert false
  in
  let keep wl = List.filter (fun id -> List.mem id ids) wl in
  let predicate allowed (frame : Frame.t) =
    match frame.id with
    | Identifier.Standard id -> List.mem id allowed
    | Identifier.Extended _ -> false
  in
  Gateway.set_predicates g
    ~forward_a_to_b:(predicate (keep ab))
    ~forward_b_to_a:(predicate (keep ba))

let restore t ~gateway:gw =
  let g = gateway t gw in
  let ab, ba =
    match List.assoc_opt gw t.whitelists with
    | Some w -> w
    | None -> assert false
  in
  let predicate allowed (frame : Frame.t) =
    match frame.id with
    | Identifier.Standard id -> List.mem id allowed
    | Identifier.Extended _ -> false
  in
  Gateway.set_predicates g ~forward_a_to_b:(predicate ab)
    ~forward_b_to_a:(predicate ba)

let attach_obs ?(prefix = "can.seg") t reg =
  List.iter
    (fun (seg, bus) ->
      Bus.attach_obs ~prefix:(prefix ^ "." ^ seg) bus reg)
    t.buses;
  List.iter (fun (_, gw) -> Gateway.attach_obs gw reg) t.gateways
