(** A multi-segment CAN topology: named segment buses joined by gateways.

    This generalises the paper's §V "CAN bus gateway" guideline from the
    hard-coded two-bus special case to a graph: each {e segment} is a
    {!Bus} owning a set of stations, each {e link} is a {!Gateway} ECU
    joining two segments.  The segment graph must be a tree, so every
    frame has a unique route and a single gateway crash splits the car
    into exactly two sides.

    Routing is {e derived}, never hand-wired: the caller supplies the
    designed {!flow}s (typically computed from the vehicle message map
    filtered by the compiled policy — see [Vehicle.Segment_map]), and each
    gateway's per-direction ID whitelist is the set of flows whose unique
    tree path crosses that directed edge.  {!route} exposes the resulting
    reachability relation so tests can check the wiring against the
    declaration. *)

type spec = {
  segments : (string * string list) list;
      (** segment name, member node names (each node in exactly one) *)
  links : (string * (string * string)) list;
      (** gateway name, (segment [a], segment [b]) *)
}

type flow = {
  id : int;  (** standard CAN identifier *)
  src : string;  (** producing segment *)
  dsts : string list;  (** consuming segments *)
}

type t

val create :
  ?bitrate:float ->
  ?corrupt_prob:float ->
  ?max_in_flight:int ->
  ?retry_backoff:float ->
  ?max_retries:int ->
  ?forward_timeout:float ->
  Secpol_sim.Engine.t ->
  spec ->
  flows:flow list ->
  t
(** Validate [spec], build one bus per segment (all at [bitrate], default
    500 kbit/s) and one gateway per link with whitelists derived from
    [flows].  The gateway bounds ([max_in_flight] etc.) apply to every
    gateway and default to {!Gateway.connect}'s defaults.
    @raise Invalid_argument if the spec is not a connected tree, names
    collide, or a flow references an unknown segment. *)

val sim : t -> Secpol_sim.Engine.t

val spec : t -> spec

val flows : t -> flow list

val segments : t -> string list
(** Segment names, in spec order. *)

val gateway_names : t -> string list

val bus : t -> string -> Bus.t
(** By segment name.  @raise Invalid_argument on unknown names. *)

val gateway : t -> string -> Gateway.t
(** By gateway name.  @raise Invalid_argument on unknown names. *)

val link : t -> string -> string * string
(** The two segments a gateway joins.
    @raise Invalid_argument on unknown names. *)

val segment_of : t -> string -> string option
(** Segment owning a node name, if any. *)

val members : t -> string -> string list
(** Node names of a segment.  @raise Invalid_argument on unknown names. *)

val crossing_ids : t -> gateway:string -> Gateway.direction -> int list
(** The derived whitelist of one directed edge, sorted. *)

val route : t -> src:string -> int -> string list
(** Segments (in spec order, [src] included) a frame with the given
    standard ID injected on [src] can reach: the closure over directed
    edges whose whitelist carries the ID.  This is the declared routing
    semantics the gateways implement. *)

val components : t -> without:string list -> string list list
(** Connected components of the segment graph once the named gateways'
    links are severed — the blast-region computation for gateway crashes.
    @raise Invalid_argument on unknown gateway names. *)

val restrict : t -> gateway:string -> ids:int list -> unit
(** Replace the gateway's predicates with the intersection of its derived
    whitelists and [ids] — the fail-closed limp-home used by gateway
    failover (never wider than the designed whitelist). *)

val restore : t -> gateway:string -> unit
(** Reinstate the gateway's full derived whitelists. *)

val attach_obs : ?prefix:string -> t -> Secpol_obs.Registry.t -> unit
(** Export every segment bus under [<prefix>.<segment>.*] (default prefix
    ["can.seg"]) and every gateway under [can.gateway.<name>.*]. *)
