(** Secpol: policy-based security modelling and enforcement for embedded
    architectures.

    Reproduction of Hagan, Siddiqui & Sezer, IEEE SOCC 2018.  One umbrella
    namespace over the constituent libraries:

    - {!Obs}: zero-dependency telemetry (counters, histograms, traces).
    - {!Sim}: deterministic discrete-event simulation substrate.
    - {!Threat}: STRIDE/DREAD application threat modelling.
    - {!Policy}: the policy DSL, compiler, engine, derivation and updates.
    - {!Can}: the CAN bus simulator (ISO 11898 classic frames).
    - {!Hpe}: the hardware policy engine (paper Fig. 4).
    - {!Selinux}: the SELinux-style software policy engine.
    - {!Par}: shard-per-domain parallel serving of policy decisions and
      HPE frame gating (one engine per domain, merged telemetry).
    - {!Serve}: the [secpold] decision daemon — wire protocol, persistent
      pool serving, RCU-style hot policy swap.
    - {!Vehicle}: the connected-car case study (paper §V).
    - {!Faults}: fault injection, fail-safe watchdogs and chaos campaigns.
    - {!Attack}: Table-I attack scenarios and campaigns.
    - {!Lifecycle}: product life-cycle and response-time models.
    - {!Pipeline}: the end-to-end modelling -> policy -> deployment flow. *)

module Obs = Secpol_obs
module Sim = Secpol_sim
module Threat = Secpol_threat
module Policy = Secpol_policy
module Can = Secpol_can
module Hpe = Secpol_hpe
module Par = Secpol_par
module Serve = Secpol_serve
module Selinux = Secpol_selinux
module Vehicle = Secpol_vehicle
module Faults = Secpol_faults
module Attack = Secpol_attack
module Lifecycle = Secpol_lifecycle
module Pipeline = Pipeline
