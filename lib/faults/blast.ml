module Engine = Secpol_sim.Engine
module Can = Secpol_can
module Topology = Secpol_can.Topology
module Tcar = Secpol_vehicle.Topology_car
module Segment_map = Secpol_vehicle.Segment_map
module Json = Secpol_policy.Json
module Obs_json = Secpol_policy.Obs_json
module Obs = Secpol_obs

type record = {
  entry : Plan.entry;
  mutable injected_at : float option;
  mutable cleared_at : float option;
  mutable region : string list;
      (* segments this fault blasts: the faulted segment itself, or for a
         gateway crash everything the crash cuts off the healthy core *)
}

type t = {
  car : Tcar.t;
  obs : Obs.Registry.t;
  plan : Plan.t;
  placement : Tcar.placement;
  records : record list;
  mutable faulted : string list; (* union of regions, monotone *)
  mutable babblers : int;
}

let car t = t.car

let obs t = t.obs

let plan t = t.plan

let records t = t.records

let faulted t = t.faulted

(* The blast region of one fault.  For a gateway crash: sever the link
   and keep the component with the most member nodes as the healthy core;
   everything else is cut off and therefore inside the blast. *)
let region_of car kind =
  let topo = Tcar.topology car in
  match kind with
  | Fault.Segment_partition { segment; _ } | Fault.Segment_babble { segment; _ }
    ->
      [ segment ]
  | Fault.Gateway_crash { gateway; _ } ->
      let comps = Topology.components topo ~without:[ gateway ] in
      let size comp =
        List.fold_left
          (fun acc seg -> acc + List.length (Topology.members topo seg))
          0 comp
      in
      let healthy =
        List.fold_left
          (fun best comp -> if size comp > size best then comp else best)
          (List.hd comps) comps
      in
      List.concat (List.filter (fun comp -> comp != healthy) comps)
  | _ -> []

let mark_faulted t region =
  List.iter
    (fun seg ->
      if not (List.mem seg t.faulted) then t.faulted <- seg :: t.faulted)
    region

let inject t r =
  let sim = Tcar.sim t.car in
  let now = Engine.now sim in
  r.injected_at <- Some now;
  r.region <- region_of t.car r.entry.Plan.kind;
  mark_faulted t r.region;
  let clear f =
    Engine.schedule_in sim ~delay:(Fault.clears_after r.entry.Plan.kind)
      (fun sim ->
        f ();
        r.cleared_at <- Some (Engine.now sim))
  in
  let topo = Tcar.topology t.car in
  match r.entry.Plan.kind with
  | Fault.Segment_partition { segment; heal_after = _ } ->
      (* a severed medium: every transmission on the segment wire-errors,
         so gateway forwards towards it abandon, back off and shed — a
         one-sided shed storm the per-direction counters make visible *)
      let bus = Topology.bus topo segment in
      let prev = Can.Bus.corrupt_prob bus in
      Can.Bus.set_corrupt_prob bus 1.0;
      clear (fun () ->
          Can.Bus.set_corrupt_prob bus prev;
          (* medium repaired: member controllers went bus-off during the
             storm of their own failed transmissions; reset them, as a
             post-repair controller re-init would *)
          List.iter
            (fun name ->
              Can.Errors.reset
                (Can.Controller.errors
                   (Can.Node.controller (Tcar.node t.car name))))
            (Topology.members topo segment))
  | Fault.Segment_babble { segment; msg_id; period; duration } ->
      t.babblers <- t.babblers + 1;
      let bus = Topology.bus topo segment in
      let rogue =
        Can.Node.create
          ~name:(Printf.sprintf "babbler%d" t.babblers)
          bus
      in
      let jam _ =
        ignore (Can.Node.send rogue (Can.Frame.data_std msg_id "\255"))
      in
      jam sim;
      Engine.every sim ~period ~until:(now +. duration) jam;
      clear (fun () -> Can.Node.detach rogue)
  | Fault.Gateway_crash { gateway; down_for = _ } ->
      let gw = Topology.gateway topo gateway in
      Can.Gateway.disconnect gw;
      clear (fun () ->
          (* failover, fail closed: the repaired gateway comes back in
             limp-home, forwarding only the minimal safety-critical
             crossings until a maintenance action restores the full
             whitelist (never within this run) *)
          Topology.restrict topo ~gateway
            ~ids:(Segment_map.minimal_crossing_ids ());
          Can.Gateway.reconnect gw)
  | _ ->
      (* non-segment kinds are rejected in [run] *)
      assert false

(* ---------- end-of-run obligations ---------- *)

let delivered_after car seg ~time =
  Can.Trace.count
    (Can.Bus.trace (Tcar.bus car seg))
    (fun e ->
      e.Can.Trace.time > time
      &&
      match e.Can.Trace.event with
      | Can.Trace.Rx_delivered _ -> true
      | _ -> false)

let finalize t checker =
  List.iter
    (fun r ->
      match (r.entry.Plan.kind, r.cleared_at) with
      | (Fault.Segment_partition _ | Fault.Segment_babble _), Some cleared ->
          (* a healed segment must come back: deliveries resume between the
             heal and the horizon *)
          List.iter
            (fun seg ->
              if delivered_after t.car seg ~time:cleared = 0 then
                Invariant.Blast.fail checker ~check:"blast_recovery"
                  (Printf.sprintf
                     "segment %s: no deliveries after healing at %.3fs" seg
                     cleared))
            r.region
      | Fault.Gateway_crash _, Some cleared ->
          (* limp-home is fail-closed: after failover the cut-off segments
             may only receive the minimal crossing whitelist or traffic
             produced inside them *)
          let topo = Tcar.topology t.car in
          let minimal = Segment_map.minimal_crossing_ids () in
          List.iter
            (fun seg ->
              let local_ids =
                List.concat_map
                  (fun node ->
                    List.map
                      (fun (m : Secpol_vehicle.Messages.t) -> m.id)
                      (Secpol_vehicle.Messages.produced_by node))
                  (Topology.members topo seg)
              in
              let allowed = minimal @ local_ids in
              Can.Trace.entries (Can.Bus.trace (Tcar.bus t.car seg))
              |> List.iter (fun e ->
                     match e.Can.Trace.event with
                     | Can.Trace.Rx_delivered _ when e.Can.Trace.time > cleared
                       -> (
                         match e.Can.Trace.frame.Can.Frame.id with
                         | Can.Identifier.Standard id ->
                             if not (List.mem id allowed) then
                               Invariant.Blast.fail checker ~check:"limp_home"
                                 (Printf.sprintf
                                    "segment %s: 0x%03X delivered at %.3fs \
                                     after fail-closed failover"
                                    seg id e.Can.Trace.time)
                         | Can.Identifier.Extended _ ->
                             Invariant.Blast.fail checker ~check:"limp_home"
                               (Printf.sprintf
                                  "segment %s: extended frame crossed after \
                                   failover"
                                  seg))
                     | _ -> ()))
            r.region
      | _ -> ())
    t.records

(* ---------- report ---------- *)

let ms s = s *. 1000.0

let opt_float = function None -> Json.Null | Some v -> Json.Float v

let fault_json (r : record) =
  let mttr =
    match (r.injected_at, r.cleared_at) with
    | Some i, Some c -> Some (ms (c -. i))
    | _ -> None
  in
  Json.Obj
    [
      ("kind", Json.String (Fault.label r.entry.Plan.kind));
      ("planned_at", Json.Float r.entry.Plan.at);
      ("injected_at", opt_float r.injected_at);
      ("cleared_at", opt_float r.cleared_at);
      ("mttr_ms", opt_float mttr);
      ("region", Json.List (List.map (fun s -> Json.String s) r.region));
    ]

let p99_of bus =
  let h = Can.Bus.tx_latency bus in
  if Obs.Histogram.count h = 0 then None
  else Some (Obs.Histogram.percentile h 99.0)

let segment_json t ~clean seg =
  let bus = Tcar.bus t.car seg in
  let p99 = p99_of bus in
  let clean_p99 = p99_of (Tcar.bus clean seg) in
  let ratio =
    match (p99, clean_p99) with
    | Some p, Some c when c > 0.0 -> Some (p /. c)
    | _ -> None
  in
  Json.Obj
    [
      ("name", Json.String seg);
      ("faulted", Json.Bool (List.mem seg t.faulted));
      ("frames_sent", Json.Int (Can.Bus.frames_sent bus));
      ("deliveries", Json.Int (Tcar.deliveries_in t.car seg));
      ("utilisation", Json.Float (Can.Bus.utilisation bus));
      ("pending_end", Json.Int (Can.Bus.pending bus));
      ("tx_p99_ms", opt_float p99);
      ("clean_tx_p99_ms", opt_float clean_p99);
      ("p99_vs_clean", opt_float ratio);
      ("false_blocks", Json.Int (Tcar.false_blocks_in t.car seg));
    ]

let direction_json gw dir =
  Json.Obj
    [
      ("forwarded", Json.Int (Can.Gateway.forwarded_dir gw dir));
      ("dropped", Json.Int (Can.Gateway.dropped_dir gw dir));
      ("shed", Json.Int (Can.Gateway.shed_dir gw dir));
      ("retries", Json.Int (Can.Gateway.retries_dir gw dir));
    ]

let gateway_json t name =
  let gw = Topology.gateway (Tcar.topology t.car) name in
  Json.Obj
    [
      ("name", Json.String name);
      ("connected", Json.Bool (Can.Gateway.connected gw));
      ("in_flight_end", Json.Int (Can.Gateway.in_flight gw));
      ("a_to_b", direction_json gw `A_to_b);
      ("b_to_a", direction_json gw `B_to_a);
    ]

let report t ~seed ~checker ~clean ~bound =
  let violations = Invariant.Blast.violations checker in
  Json.Obj
    [
      ("plan", Json.String t.plan.Plan.name);
      ("seed", Json.String (Int64.to_string seed));
      ("horizon", Json.Float t.plan.Plan.horizon);
      ("placement", Json.String (Tcar.placement_name t.placement));
      ("verdict", Json.String (if violations = [] then "pass" else "fail"));
      ("faults", Json.List (List.map fault_json t.records));
      ( "bound",
        Json.Obj
          [
            ("max_pending", Json.Int bound.Invariant.Blast.max_pending);
            ("p99_ms", Json.Float bound.Invariant.Blast.p99_ms);
            ( "max_gateway_backlog",
              Json.Int bound.Invariant.Blast.max_gateway_backlog );
          ] );
      ( "blast_radius",
        Json.Obj
          [
            ( "faulted_segments",
              Json.List (List.map (fun s -> Json.String s) t.faulted) );
            ( "segments",
              Json.List
                (List.map (segment_json t ~clean) (Tcar.segments t.car)) );
            ( "gateways",
              Json.List
                (List.map (gateway_json t)
                   (Topology.gateway_names (Tcar.topology t.car))) );
          ] );
      ( "violations",
        Json.List
          (List.map
             (fun (v : Invariant.violation) ->
               Json.Obj
                 [
                   ("time", Json.Float v.Invariant.time);
                   ("check", Json.String v.Invariant.check);
                   ("detail", Json.String v.Invariant.detail);
                 ])
             violations) );
      ("telemetry", Obs_json.registry t.obs);
    ]

(* ---------- the runner ---------- *)

type outcome = {
  blast : t;
  checker : Invariant.Blast.t;
  report : Json.t;
  passed : bool;
}

let run ?(placement = `Distributed) ?bound ?(slice = 0.25)
    ?(unbounded_gateway = false) ~seed ~plan () =
  if slice <= 0.0 then invalid_arg "Blast.run: slice must be positive";
  List.iter
    (fun (e : Plan.entry) ->
      match e.Plan.kind with
      | Fault.Segment_partition _ | Fault.Segment_babble _
      | Fault.Gateway_crash _ ->
          ()
      | k ->
          invalid_arg
            (Printf.sprintf
               "Blast.run: %s is not segment-scoped (use Faults.Chaos)"
               (Fault.label k)))
    plan.Plan.entries;
  let bound =
    match bound with Some b -> b | None -> Invariant.Blast.default_bound
  in
  let build ~obs () =
    (* "unbounded" models the deliberately-broken gateway the containment
       gate must catch: admission effectively never sheds, so a saturated
       destination grows the in-flight backlog without limit *)
    if unbounded_gateway then
      Tcar.create ~seed ~placement ?obs ~max_in_flight:1_000_000 ()
    else Tcar.create ~seed ~placement ?obs ()
  in
  let obs = Obs.Registry.create () in
  let car = build ~obs:(Some obs) () in
  let t =
    {
      car;
      obs;
      plan;
      placement;
      records =
        List.map
          (fun entry ->
            { entry; injected_at = None; cleared_at = None; region = [] })
          plan.Plan.entries;
      faulted = [];
      babblers = 0;
    }
  in
  (match
     Plan.validate
       ~topology:
         {
           Plan.segments = Tcar.segments car;
           gateways = Topology.gateway_names (Tcar.topology car);
         }
       plan
   with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Blast.run: " ^ msg));
  let sim = Tcar.sim car in
  List.iter
    (fun r ->
      Engine.schedule sim ~at:r.entry.Plan.at (fun _ -> inject t r))
    t.records;
  let checker =
    Invariant.Blast.create ~bound ~faulted:(fun () -> t.faulted) car
  in
  let horizon = plan.Plan.horizon in
  let rec step at =
    if at < horizon then begin
      Engine.run_until sim at;
      Invariant.Blast.check checker;
      step (at +. slice)
    end
  in
  step slice;
  Engine.run_until sim horizon;
  Invariant.Blast.check checker;
  finalize t checker;
  (* the never-faulted twin, for per-segment latency ratios in the report *)
  let clean = build ~obs:None () in
  Tcar.run clean ~seconds:horizon;
  let report = report t ~seed ~checker ~clean ~bound in
  { blast = t; checker; report; passed = Invariant.Blast.ok checker }
