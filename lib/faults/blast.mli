(** Chaos runner for segment-scoped faults on a topology car.

    The flat-bus {!Harness} answers "does one car survive faults?"; this
    runner answers the distributed-enforcement question: "when one
    segment fails, does the failure stay there?".  It drives a
    {!Secpol_vehicle.Topology_car} through a segment-scoped {!Plan},
    streaming the {!Invariant.Blast} containment checks at every slice,
    and reports the blast radius per (plan × placement):

    - {b Segment_partition}: the segment medium is severed (every
      transmission wire-errors); gateway forwards towards it abandon,
      back off and shed — visible one-sided in the per-direction
      counters.  Healing repairs the medium and resets the member
      controllers' error counters.
    - {b Segment_babble}: a rogue station saturates the segment's
      arbitration with top-priority frames.  Bounded gateways shed at
      admission and contain it; the deliberately-broken
      [unbounded_gateway] build grows its backlog past the bound and
      must be caught ([blast_gateway_backlog]).
    - {b Gateway_crash}: the gateway disconnects; everything the crash
      cuts off the healthy core is inside the blast.  Failover is
      fail-closed: the gateway returns in limp-home, forwarding only
      {!Secpol_vehicle.Segment_map.minimal_crossing_ids}.

    End-of-run obligations: healed segments must deliver again
    ([blast_recovery]); after a gateway failover, cut-off segments may
    only receive the minimal whitelist or locally produced traffic
    ([limp_home]).

    The report's per-segment latency figures are normalised against a
    never-faulted twin run with the same seed, placement and gateway
    bounds. *)

type t

val car : t -> Secpol_vehicle.Topology_car.t

val obs : t -> Secpol_obs.Registry.t

val plan : t -> Plan.t

type record = {
  entry : Plan.entry;
  mutable injected_at : float option;
  mutable cleared_at : float option;
  mutable region : string list;  (** segments this fault blasts *)
}

val records : t -> record list

val faulted : t -> string list
(** Union of every injected fault's blast region so far (monotone). *)

type outcome = {
  blast : t;
  checker : Invariant.Blast.t;
  report : Secpol_policy.Json.t;
  passed : bool;
}

val run :
  ?placement:Secpol_vehicle.Topology_car.placement ->
  ?bound:Invariant.Blast.bound ->
  ?slice:float ->
  ?unbounded_gateway:bool ->
  seed:int64 ->
  plan:Plan.t ->
  unit ->
  outcome
(** Build a topology car ([placement] defaults to [`Distributed]), run
    the plan to its horizon checking {!Invariant.Blast} every [slice]
    (default 0.25) simulated seconds, then the end-of-run obligations,
    then a clean reference run for the report's latency ratios.
    [unbounded_gateway] builds the gateways with an effectively
    unlimited admission queue — the negative-containment configuration
    CI uses to prove the gate can fail.
    @raise Invalid_argument if the plan contains a fault that is not
    segment-scoped, references unknown segments or gateways, or [slice]
    is not positive. *)
