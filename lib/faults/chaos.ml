module Car = Secpol_vehicle.Car
module Policy_map = Secpol_vehicle.Policy_map

type outcome = {
  harness : Harness.t;
  checker : Invariant.t;
  report : Secpol_policy.Json.t;
  passed : bool;
}

let run ?(watchdog_period = 0.01) ?(watchdog_deadline = 0.05) ?(slice = 0.05)
    ~seed ~plan () =
  if slice <= 0.0 then invalid_arg "Chaos.run: slice must be positive";
  (* both cars get the same enforcement and seed: the reference run is the
     faulted run minus the plan, so end-state comparison is meaningful *)
  let enforcement () = Car.Hpe (Policy_map.baseline ()) in
  let harness =
    Harness.create ~watchdog_period ~watchdog_deadline
      ~enforcement:(enforcement ()) ~seed ~plan ()
  in
  let checker = Invariant.create harness in
  let horizon = plan.Plan.horizon in
  let rec step at =
    if at < horizon then begin
      Harness.run_until harness at;
      Invariant.check checker;
      step (at +. slice)
    end
  in
  step slice;
  Harness.run_until harness horizon;
  let reference = Car.create ~seed ~enforcement:(enforcement ()) () in
  Car.run reference ~seconds:horizon;
  Invariant.finalize checker ~reference;
  let report = Report.build ~seed ~harness ~checker in
  { harness; checker; report; passed = Invariant.ok checker }
