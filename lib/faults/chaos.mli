(** A complete chaos campaign: build, fault, watch, verify, report.

    [run] drives one HPE-enforced car through one fault plan in fixed
    slices, checking the {!Invariant} suite at every slice boundary, then
    runs a never-faulted reference car to the same horizon for the
    convergence check and emits the {!Report} JSON.  Fully deterministic
    in [(seed, plan)]. *)

type outcome = {
  harness : Harness.t;
  checker : Invariant.t;
  report : Secpol_policy.Json.t;
  passed : bool;
}

val run :
  ?watchdog_period:float ->
  ?watchdog_deadline:float ->
  ?slice:float ->
  seed:int64 ->
  plan:Plan.t ->
  unit ->
  outcome
(** [slice] defaults to 50 ms of simulated time between invariant sweeps.
    @raise Invalid_argument on a non-positive slice or an invalid plan. *)
