module Engine = Secpol_sim.Engine

type t = {
  sim : Engine.t;
  mutable factor : float;
  mutable base_sim : float;
  mutable base_local : float;
}

let create sim =
  { sim; factor = 1.0; base_sim = Engine.now sim; base_local = Engine.now sim }

let now t = t.base_local +. ((Engine.now t.sim -. t.base_sim) *. t.factor)

let factor t = t.factor

let set_factor t f =
  if f <= 0.0 then invalid_arg "Clock.set_factor: factor must be positive";
  (* rebase so local time is continuous across the rate change *)
  let local = now t in
  t.base_local <- local;
  t.base_sim <- Engine.now t.sim;
  t.factor <- f
