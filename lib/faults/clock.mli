(** A skewable view of simulation time.

    Watchdogs do not read an oracle: they read a local oscillator that can
    drift.  [now] advances at [factor] x simulation time (continuous across
    rate changes), so fault campaigns can check that detection deadlines
    hold under bounded clock skew. *)

type t

val create : Secpol_sim.Engine.t -> t
(** Starts synchronised with the simulation clock, factor 1. *)

val now : t -> float

val factor : t -> float

val set_factor : t -> float -> unit
(** Change the drift rate; local time is continuous at the switch.
    @raise Invalid_argument unless positive. *)
