type kind =
  | Node_crash of { node : string; down_for : float }
  | Babbling_idiot of { msg_id : int; period : float; duration : float }
  | Corruption_burst of { prob : float; duration : float }
  | Bus_partition of { nodes : string list; heal_after : float }
  | Hpe_corruption of { node : string; scrub_after : float }
  | Policy_stall of { down_for : float }
  | Clock_skew of { factor : float; duration : float }
  | Segment_partition of { segment : string; heal_after : float }
  | Segment_babble of {
      segment : string;
      msg_id : int;
      period : float;
      duration : float;
    }
  | Gateway_crash of { gateway : string; down_for : float }

let label = function
  | Node_crash _ -> "node_crash"
  | Babbling_idiot _ -> "babbling_idiot"
  | Corruption_burst _ -> "corruption_burst"
  | Bus_partition _ -> "bus_partition"
  | Hpe_corruption _ -> "hpe_corruption"
  | Policy_stall _ -> "policy_stall"
  | Clock_skew _ -> "clock_skew"
  | Segment_partition _ -> "segment_partition"
  | Segment_babble _ -> "segment_babble"
  | Gateway_crash _ -> "gateway_crash"

(* Sim time the fault stops acting on its own (recovery actions run then);
   a policy stall additionally leaves the vehicle latched in fail-safe. *)
let clears_after = function
  | Node_crash { down_for; _ } -> down_for
  | Babbling_idiot { duration; _ } -> duration
  | Corruption_burst { duration; _ } -> duration
  | Bus_partition { heal_after; _ } -> heal_after
  | Hpe_corruption { scrub_after; _ } -> scrub_after
  | Policy_stall { down_for } -> down_for
  | Clock_skew { duration; _ } -> duration
  | Segment_partition { heal_after; _ } -> heal_after
  | Segment_babble { duration; _ } -> duration
  | Gateway_crash { down_for; _ } -> down_for

let validate = function
  | Node_crash { node; down_for } ->
      if node = "" then Error "node_crash: empty node name"
      else if down_for <= 0.0 then Error "node_crash: down_for must be positive"
      else Ok ()
  | Babbling_idiot { msg_id; period; duration } ->
      if msg_id < 0 || msg_id > 0x7FF then
        Error "babbling_idiot: msg_id outside 11-bit range"
      else if period <= 0.0 then Error "babbling_idiot: period must be positive"
      else if duration <= 0.0 then
        Error "babbling_idiot: duration must be positive"
      else Ok ()
  | Corruption_burst { prob; duration } ->
      if prob < 0.0 || prob > 1.0 then
        Error "corruption_burst: prob outside [0,1]"
      else if duration <= 0.0 then
        Error "corruption_burst: duration must be positive"
      else Ok ()
  | Bus_partition { nodes; heal_after } ->
      if nodes = [] then Error "bus_partition: no nodes"
      else if heal_after <= 0.0 then
        Error "bus_partition: heal_after must be positive"
      else Ok ()
  | Hpe_corruption { node; scrub_after } ->
      if node = "" then Error "hpe_corruption: empty node name"
      else if scrub_after <= 0.0 then
        Error "hpe_corruption: scrub_after must be positive"
      else Ok ()
  | Policy_stall { down_for } ->
      if down_for <= 0.0 then Error "policy_stall: down_for must be positive"
      else Ok ()
  | Clock_skew { factor; duration } ->
      if factor <= 0.0 then Error "clock_skew: factor must be positive"
      else if duration <= 0.0 then Error "clock_skew: duration must be positive"
      else Ok ()
  | Segment_partition { segment; heal_after } ->
      if segment = "" then Error "segment_partition: empty segment name"
      else if heal_after <= 0.0 then
        Error "segment_partition: heal_after must be positive"
      else Ok ()
  | Segment_babble { segment; msg_id; period; duration } ->
      if segment = "" then Error "segment_babble: empty segment name"
      else if msg_id < 0 || msg_id > 0x7FF then
        Error "segment_babble: msg_id outside 11-bit range"
      else if period <= 0.0 then Error "segment_babble: period must be positive"
      else if duration <= 0.0 then
        Error "segment_babble: duration must be positive"
      else Ok ()
  | Gateway_crash { gateway; down_for } ->
      if gateway = "" then Error "gateway_crash: empty gateway name"
      else if down_for <= 0.0 then
        Error "gateway_crash: down_for must be positive"
      else Ok ()

let pp ppf = function
  | Node_crash { node; down_for } ->
      Format.fprintf ppf "node_crash(%s, %.3fs)" node down_for
  | Babbling_idiot { msg_id; period; duration } ->
      Format.fprintf ppf "babbling_idiot(0x%x, every %.4fs for %.3fs)" msg_id
        period duration
  | Corruption_burst { prob; duration } ->
      Format.fprintf ppf "corruption_burst(p=%.2f, %.3fs)" prob duration
  | Bus_partition { nodes; heal_after } ->
      Format.fprintf ppf "bus_partition({%s}, heal %.3fs)"
        (String.concat "," nodes) heal_after
  | Hpe_corruption { node; scrub_after } ->
      Format.fprintf ppf "hpe_corruption(%s, scrub %.3fs)" node scrub_after
  | Policy_stall { down_for } ->
      Format.fprintf ppf "policy_stall(%.3fs)" down_for
  | Clock_skew { factor; duration } ->
      Format.fprintf ppf "clock_skew(x%.2f, %.3fs)" factor duration
  | Segment_partition { segment; heal_after } ->
      Format.fprintf ppf "segment_partition(%s, heal %.3fs)" segment heal_after
  | Segment_babble { segment; msg_id; period; duration } ->
      Format.fprintf ppf "segment_babble(%s, 0x%x every %.4fs for %.3fs)"
        segment msg_id period duration
  | Gateway_crash { gateway; down_for } ->
      Format.fprintf ppf "gateway_crash(%s, %.3fs)" gateway down_for
