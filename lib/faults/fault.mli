(** Injectable platform faults.

    Each constructor names one failure class the paper's deployment story
    has to survive: crashing ECUs, a babbling-idiot node jamming
    arbitration, line-noise bursts, a partitioned bus segment, bit
    corruption inside the HPE's register file, a policy engine that stops
    answering, and watchdog clock skew.  Every fault carries its own
    recovery horizon so campaigns can measure time-to-recover. *)

type kind =
  | Node_crash of { node : string; down_for : float }
      (** the node loses power for [down_for] seconds, then restarts *)
  | Babbling_idiot of { msg_id : int; period : float; duration : float }
      (** a rogue station floods the bus with top-priority frames *)
  | Corruption_burst of { prob : float; duration : float }
      (** the wire's per-transmission error probability jumps to [prob] *)
  | Bus_partition of { nodes : string list; heal_after : float }
      (** the named stations are cut off the medium, healing later *)
  | Hpe_corruption of { node : string; scrub_after : float }
      (** a bit flip lands in the node's approved-list RAM; a hardware
          scrub re-provisions the file after [scrub_after] seconds *)
  | Policy_stall of { down_for : float }
      (** the policy engine stops answering decisions *)
  | Clock_skew of { factor : float; duration : float }
      (** the watchdog's clock runs at [factor] x real time *)
  | Segment_partition of { segment : string; heal_after : float }
      (** the named topology segment's medium is severed (every
          transmission on it wire-errors) until repaired; healing resets
          the member controllers' error states *)
  | Segment_babble of {
      segment : string;
      msg_id : int;
      period : float;
      duration : float;
    }
      (** a rogue station on the named segment floods it with
          top-priority frames — pick a period below the frame wire time
          to saturate arbitration *)
  | Gateway_crash of { gateway : string; down_for : float }
      (** the named gateway ECU drops off both its buses; after
          [down_for] seconds it fails over into limp-home, forwarding
          only the fail-closed minimal crossing whitelist *)

val label : kind -> string
(** Stable snake_case tag, used in reports and plan names. *)

val clears_after : kind -> float
(** Seconds after injection at which the fault's recovery action runs. *)

val validate : kind -> (unit, string) result

val pp : Format.formatter -> kind -> unit
