module Engine = Secpol_sim.Engine
module Can = Secpol_can
module Hpe = Secpol_hpe
module Policy = Secpol_policy
module Car = Secpol_vehicle.Car
module State = Secpol_vehicle.State
module Modes = Secpol_vehicle.Modes
module Names = Secpol_vehicle.Names
module Policy_map = Secpol_vehicle.Policy_map

type record = {
  entry : Plan.entry;
  mutable injected_at : float option;
  mutable cleared_at : float option;
}

type t = {
  car : Car.t;
  obs : Secpol_obs.Registry.t;
  clock : Clock.t;
  watchdog : Watchdog.t;
  plan : Plan.t;
  records : record list;
  configs : ((Modes.t * string) * Hpe.Config.t) list;
      (* per (mode, node), cached while the policy engine answers: the
         scrub path must not depend on a live engine *)
  base_corrupt_prob : float;
  mutable mode_changes : (float * Modes.t) list; (* newest first *)
  mutable stall_started : float option;
  mutable stall_cleared : float option;
  mutable failsafe_entered : float option;
  mutable min_clock_factor : float;
  mutable babblers : int;
}

let sim t = t.car.Car.sim

(* The watchdog's ping is a real decision request, not a health flag: a
   stalled engine raises [Unavailable] on [decide], which is exactly what
   a deployed monitor would observe. *)
let ping car () =
  match car.Car.policy_engine with
  | None -> true
  | Some engine -> (
      let probe =
        {
          Policy.Ir.mode = Modes.name car.Car.state.State.mode;
          subject = Names.asset_of_node Names.safety;
          asset = Names.asset_safety_critical;
          op = Policy.Ir.Read;
          msg_id = None;
        }
      in
      match
        Policy.Engine.decide ~now:(Engine.now car.Car.sim) engine probe
      with
      | _ -> true
      | exception Policy.Engine.Unavailable -> false)

let note_mode t mode =
  t.mode_changes <- (Engine.now (sim t), mode) :: t.mode_changes

let degrade t () =
  if Car.mode t.car <> Modes.Fail_safe then begin
    Car.enter_fail_safe t.car ~reason:"policy watchdog expired";
    let now = Engine.now (sim t) in
    if t.failsafe_entered = None then t.failsafe_entered <- Some now;
    note_mode t Modes.Fail_safe
  end

(* ---------- injection ---------- *)

let scrub_hpe t node =
  match Car.hpe t.car node with
  | None -> ()
  | Some hpe -> (
      let key = (Car.mode t.car, node) in
      match List.assoc_opt key t.configs with
      | None -> ()
      | Some config ->
          Hpe.Registers.hard_reset (Hpe.Engine.registers hpe);
          ignore (Hpe.Engine.provision hpe config))

let inject t r =
  let engine = sim t in
  let now = Engine.now engine in
  r.injected_at <- Some now;
  let clear f =
    Engine.schedule_in engine ~delay:(Fault.clears_after r.entry.Plan.kind)
      (fun engine ->
        f ();
        r.cleared_at <- Some (Engine.now engine))
  in
  match r.entry.Plan.kind with
  | Fault.Node_crash { node; down_for = _ } ->
      let n = Car.node t.car node in
      Can.Node.crash n;
      clear (fun () -> Can.Node.restart n)
  | Fault.Babbling_idiot { msg_id; period; duration } ->
      t.babblers <- t.babblers + 1;
      let name = Printf.sprintf "babbler%d" t.babblers in
      let rogue = Can.Node.create ~name t.car.Car.bus in
      let jam _ =
        ignore (Can.Node.send rogue (Can.Frame.data_std msg_id "\255"))
      in
      jam engine;
      Engine.every engine ~period ~until:(now +. duration) jam;
      clear (fun () -> Can.Node.detach rogue)
  | Fault.Corruption_burst { prob; duration = _ } ->
      Can.Bus.set_corrupt_prob t.car.Car.bus prob;
      clear (fun () ->
          Can.Bus.set_corrupt_prob t.car.Car.bus t.base_corrupt_prob)
  | Fault.Bus_partition { nodes; heal_after = _ } ->
      let stations = List.map (Car.node t.car) nodes in
      List.iter
        (fun n ->
          (* cut off, not power-cycled: error counters survive healing *)
          Can.Node.set_down n true;
          Can.Node.detach n)
        stations;
      clear (fun () ->
          List.iter
            (fun n ->
              Can.Node.set_down n false;
              Can.Node.reattach n)
            stations)
  | Fault.Hpe_corruption { node; scrub_after = _ } ->
      (match Car.hpe t.car node with
      | None -> ()
      | Some hpe ->
          (* a bit flip lands straight in approved-list RAM, bypassing the
             register interface — the seal is not updated, so the file
             fails its checksum and both gates fail closed *)
          Hpe.Approved_list.add
            (Hpe.Registers.read_list (Hpe.Engine.registers hpe))
            (Can.Identifier.standard 0x7DF));
      clear (fun () -> scrub_hpe t node)
  | Fault.Policy_stall { down_for = _ } ->
      (match t.car.Car.policy_engine with
      | None -> ()
      | Some pe ->
          Policy.Engine.set_stalled pe true;
          if t.stall_started = None then t.stall_started <- Some now);
      clear (fun () ->
          match t.car.Car.policy_engine with
          | None -> ()
          | Some pe ->
              Policy.Engine.set_stalled pe false;
              if t.stall_cleared = None then
                t.stall_cleared <- Some (Engine.now engine))
  | Fault.Clock_skew { factor; duration = _ } ->
      let prev = Clock.factor t.clock in
      Clock.set_factor t.clock factor;
      t.min_clock_factor <- Float.min t.min_clock_factor factor;
      clear (fun () -> Clock.set_factor t.clock prev)
  | Fault.Segment_partition _ | Fault.Segment_babble _ | Fault.Gateway_crash _
    ->
      (* segment-scoped plans are rejected in [create]: the flat-bus car
         has no segments or gateways to fault *)
      assert false

(* ---------- construction ---------- *)

let create ?(watchdog_period = 0.01) ?(watchdog_deadline = 0.05)
    ?(enforcement = Car.Hpe (Policy_map.baseline ())) ~seed ~plan () =
  (match Plan.validate plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Harness.create: " ^ msg));
  if Plan.segment_scoped plan then
    invalid_arg
      "Harness.create: segment-scoped plan needs a topology car (Faults.Blast)";
  let obs = Secpol_obs.Registry.create () in
  let car = Car.create ~seed ~enforcement ~obs () in
  let configs =
    match car.Car.policy_engine with
    | None -> []
    | Some engine ->
        List.concat_map
          (fun mode ->
            List.map
              (fun node ->
                ((mode, node), Policy_map.hpe_config_for engine ~mode ~node))
              Names.nodes)
          Modes.all
  in
  let clock = Clock.create car.Car.sim in
  let records =
    List.map
      (fun entry -> { entry; injected_at = None; cleared_at = None })
      plan.Plan.entries
  in
  let rec t =
    lazy
      {
        car;
        obs;
        clock;
        watchdog =
          Watchdog.create ~period:watchdog_period ~deadline:watchdog_deadline
            ~clock ~ping:(ping car)
            ~on_expire:(fun () -> degrade (Lazy.force t) ())
            car.Car.sim;
        plan;
        records;
        configs;
        base_corrupt_prob = Can.Bus.corrupt_prob car.Car.bus;
        mode_changes = [ (0.0, Car.mode car) ];
        stall_started = None;
        stall_cleared = None;
        failsafe_entered = None;
        min_clock_factor = 1.0;
        babblers = 0;
      }
  in
  let t = Lazy.force t in
  List.iter
    (fun r ->
      Engine.schedule car.Car.sim ~at:r.entry.Plan.at (fun _ -> inject t r))
    records;
  t

let run_until t until = Engine.run_until (sim t) until

let run t = run_until t t.plan.Plan.horizon

let car t = t.car

let obs t = t.obs

let clock t = t.clock

let watchdog t = t.watchdog

let plan t = t.plan

let records t = t.records

let stall_started t = t.stall_started

let stall_cleared t = t.stall_cleared

let failsafe_entered t = t.failsafe_entered

let min_clock_factor t = t.min_clock_factor

(* Mode as the harness saw it at [time]; changes land newest-first. *)
let mode_at t time =
  let rec find = function
    | [] -> Modes.Normal
    | (at, mode) :: older -> if at <= time then mode else find older
  in
  find t.mode_changes

let mode_changes t = List.rev t.mode_changes

let config_for t ~mode ~node = List.assoc_opt (mode, node) t.configs

(* The fail-safe deadline bound: from the moment the stall starts, the
   watchdog needs one period to notice, [deadline] seconds of *local*
   clock to trip, and one more period of slack for the discrete check
   grid — all stretched by the slowest clock rate seen. *)
let failsafe_bound t ~stall_at =
  let wd = t.watchdog in
  stall_at
  +. ((Watchdog.deadline wd +. (2.0 *. Watchdog.period wd))
     /. t.min_clock_factor)
