(** One car under one fault plan.

    The harness builds a driving {!Secpol_vehicle.Car} (HPE-enforced by
    default), arms a {!Watchdog} whose ping is a live policy decision and
    whose expiry drives the car into fail-safe, schedules every fault in
    the plan (and its recovery) on the simulation engine, and keeps the
    bookkeeping — injection/clearing times, mode timeline, stall and
    fail-safe timestamps — that {!Invariant} and {!Report} consume. *)

type record = {
  entry : Plan.entry;
  mutable injected_at : float option;
  mutable cleared_at : float option;
}

type t

val create :
  ?watchdog_period:float ->
  ?watchdog_deadline:float ->
  ?enforcement:Secpol_vehicle.Car.enforcement ->
  seed:int64 ->
  plan:Plan.t ->
  unit ->
  t
(** Watchdog defaults: 10 ms ping period, 50 ms deadline.  [enforcement]
    defaults to [Hpe (Policy_map.baseline ())] — the degradation story is
    about the hardware engines.  Per-(mode, node) HPE configs are cached
    here, while the policy engine still answers, so scrubs and the
    fail-safe transition never consult it live.
    @raise Invalid_argument on an invalid plan. *)

val run : t -> unit
(** Run the simulation to the plan's horizon. *)

val run_until : t -> float -> unit
(** Advance to an intermediate time (the chaos runner steps in slices and
    checks invariants between them). *)

val car : t -> Secpol_vehicle.Car.t

val obs : t -> Secpol_obs.Registry.t

val clock : t -> Clock.t

val watchdog : t -> Watchdog.t

val plan : t -> Plan.t

val records : t -> record list
(** Plan order, with injection/clearing timestamps filled in as the run
    progresses. *)

val stall_started : t -> float option
(** When the first policy stall was injected, if any. *)

val stall_cleared : t -> float option

val failsafe_entered : t -> float option
(** When the watchdog drove the car into fail-safe, if it did. *)

val min_clock_factor : t -> float
(** Slowest watchdog clock rate seen so far (1.0 without skew faults). *)

val mode_at : t -> float -> Secpol_vehicle.Modes.t
(** Operating mode at a past simulation time, from the harness's mode
    timeline. *)

val mode_changes : t -> (float * Secpol_vehicle.Modes.t) list
(** Chronological (time, new mode), starting with the initial mode. *)

val config_for :
  t ->
  mode:Secpol_vehicle.Modes.t ->
  node:string ->
  Secpol_hpe.Config.t option
(** The cached HPE config for one (mode, node); [None] without HPE
    enforcement. *)

val failsafe_bound : t -> stall_at:float -> float
(** Latest acceptable fail-safe entry for a stall injected at [stall_at]:
    one watchdog period to notice, the deadline of continuous failure,
    one period of grid slack — stretched by the slowest clock factor. *)
