module Engine = Secpol_sim.Engine
module Obs = Secpol_obs
module Can = Secpol_can
module Hpe = Secpol_hpe
module Car = Secpol_vehicle.Car
module Tcar = Secpol_vehicle.Topology_car
module Modes = Secpol_vehicle.Modes
module State = Secpol_vehicle.State

type violation = { time : float; check : string; detail : string }

type t = {
  harness : Harness.t;
  mutable cursor : int; (* trace entries already examined *)
  mutable last_sent : int;
  mutable last_abandoned : int;
  mutable violations : violation list; (* newest first *)
}

let create harness =
  { harness; cursor = 0; last_sent = 0; last_abandoned = 0; violations = [] }

let violations t = List.rev t.violations

let ok t = t.violations = []

let fail t ~check detail =
  let time = Engine.now (Harness.car t.harness).Car.sim in
  t.violations <- { time; check; detail } :: t.violations

(* ---------- per-slice checks ---------- *)

let check_counters t =
  let bus = (Harness.car t.harness).Car.bus in
  let sent = Can.Bus.frames_sent bus in
  let abandoned = Can.Bus.abandoned bus in
  let pending = Can.Bus.pending bus in
  if sent < t.last_sent then
    fail t ~check:"counters"
      (Printf.sprintf "frames_sent went backwards (%d -> %d)" t.last_sent sent);
  if abandoned < t.last_abandoned then
    fail t ~check:"counters"
      (Printf.sprintf "abandoned went backwards (%d -> %d)" t.last_abandoned
         abandoned);
  if pending > 10_000 then
    fail t ~check:"counters"
      (Printf.sprintf "%d frames pending: arbitration queue is diverging"
         pending);
  t.last_sent <- sent;
  t.last_abandoned <- abandoned

(* Every delivery at an HPE-guarded node must be on that node's approved
   reading list for the operating mode in force.  Frames completing in
   the same timestamp batch as a mode switch may have been gated under
   the outgoing mode, so a delivery is also accepted if the mode a
   millisecond earlier approved it. *)
let approved t ~node ~time msg_id =
  let approved_under mode =
    match Harness.config_for t.harness ~mode ~node with
    | None -> true (* no cached config: nothing to judge against *)
    | Some config -> List.mem msg_id config.Hpe.Config.read_ids
  in
  approved_under (Harness.mode_at t.harness time)
  || approved_under (Harness.mode_at t.harness (time -. 0.001))

let check_deliveries t =
  let car = Harness.car t.harness in
  let entries = Can.Trace.entries (Car.trace car) in
  let fresh = List.filteri (fun i _ -> i >= t.cursor) entries in
  t.cursor <- List.length entries;
  List.iter
    (fun e ->
      match e.Can.Trace.event with
      | Can.Trace.Rx_delivered receiver when Car.hpe car receiver <> None ->
          let id = e.Can.Trace.frame.Can.Frame.id in
          let msg_id = Can.Identifier.raw id in
          if
            Can.Identifier.is_extended id
            || not (approved t ~node:receiver ~time:e.Can.Trace.time msg_id)
          then
            fail t ~check:"approved_rx"
              (Printf.sprintf "0x%03X delivered to %s at %.4fs outside its %s"
                 msg_id receiver e.Can.Trace.time "approved reading list")
      | _ -> ())
    fresh

let check_failsafe_deadline t =
  match Harness.stall_started t.harness with
  | None -> ()
  | Some stall_at -> (
      let now = Engine.now (Harness.car t.harness).Car.sim in
      let bound = Harness.failsafe_bound t.harness ~stall_at in
      match Harness.failsafe_entered t.harness with
      | Some entered when entered <= bound -> ()
      | Some entered ->
          fail t ~check:"failsafe_deadline"
            (Printf.sprintf
               "fail-safe entered at %.4fs, after the %.4fs bound" entered
               bound)
      | None ->
          if now > bound then
            fail t ~check:"failsafe_deadline"
              (Printf.sprintf
                 "policy engine stalled at %.4fs; still not fail-safe at \
                  %.4fs (bound %.4fs)"
                 stall_at now bound))

let check t =
  check_counters t;
  check_deliveries t;
  check_failsafe_deadline t

(* ---------- end-of-run checks ---------- *)

let state_fields (s : State.t) =
  [
    ("mode", Modes.name s.State.mode);
    ("ev_ecu_enabled", string_of_bool s.State.ev_ecu_enabled);
    ("engine_running", string_of_bool s.State.engine_running);
    ("eps_active", string_of_bool s.State.eps_active);
    ("doors_locked", string_of_bool s.State.doors_locked);
    ("alarm_armed", string_of_bool s.State.alarm_armed);
    ("modem_enabled", string_of_bool s.State.modem_enabled);
    ("tracking_enabled", string_of_bool s.State.tracking_enabled);
    ("failsafe_latched", string_of_bool s.State.failsafe_latched);
    ("speed_kmh", Printf.sprintf "%.3f" s.State.speed_kmh);
    ("software_installs", string_of_int s.State.software_installs);
    ("emergency_calls", string_of_int s.State.emergency_calls);
  ]

let finalize t ~reference =
  check t;
  let car = Harness.car t.harness in
  if Plan.degrading (Harness.plan t.harness) then begin
    if Car.mode car <> Modes.Fail_safe then
      fail t ~check:"latched"
        (Printf.sprintf "degrading plan ended in %s, not fail-safe"
           (Modes.name (Car.mode car)));
    if not car.Car.state.State.failsafe_latched then
      fail t ~check:"latched" "fail-safe actions were never latched";
    if Harness.failsafe_entered t.harness = None then
      fail t ~check:"latched" "harness never recorded the fail-safe entry"
  end
  else
    (* every fault recovered: the run must land on the same steady state a
       never-faulted car reaches *)
    List.iter2
      (fun (name, faulted) (_, clean) ->
        if faulted <> clean then
          fail t ~check:"convergence"
            (Printf.sprintf "%s diverged: %s (faulted) vs %s (clean)" name
               faulted clean))
      (state_fields car.Car.state)
      (state_fields reference.Car.state)

(* ---------- blast-radius invariant (topology cars) ---------- *)

module Blast = struct
  module Topology = Can.Topology

  type bound = { max_pending : int; p99_ms : float; max_gateway_backlog : int }

  (* Pending and p99 are far above a healthy segment's steady state (a few
     frames, sub-millisecond) but far below what a saturated or severed
     segment exhibits, so drift towards the bound is a containment leak
     long before user-visible failure.  The gateway backlog bound is twice
     the default admission limit: a correctly bounded gateway can never
     reach it, an unbounded one under a babbling destination does. *)
  let default_bound =
    { max_pending = 512; p99_ms = 25.0; max_gateway_backlog = 128 }

  type seg_state = {
    seg : string;
    mutable last_deliveries : int;
    mutable last_false_blocks : int;
  }

  type t = {
    car : Tcar.t;
    bound : bound;
    faulted : unit -> string list;
        (* segments currently inside a blast region; monotone over a run *)
    states : seg_state list;
    mutable slices : int;
    mutable violations : violation list; (* newest first *)
  }

  let create ?(bound = default_bound) ~faulted car =
    {
      car;
      bound;
      faulted;
      states =
        List.map
          (fun seg -> { seg; last_deliveries = 0; last_false_blocks = 0 })
          (Tcar.segments car);
      slices = 0;
      violations = [];
    }

  let violations t = List.rev t.violations

  let ok t = t.violations = []

  let fail t ~check detail =
    let time = Engine.now (Tcar.sim t.car) in
    t.violations <- { time; check; detail } :: t.violations

  (* The containment obligation, checked every slice: outside the faulted
     region, queues stay bounded, delivery latency stays flat, frames keep
     arriving, and enforcement never starts blocking designed traffic.
     Inside the region anything goes — that segment is the blast. *)
  let check_segment t st =
    let bus = Tcar.bus t.car st.seg in
    let pending = Can.Bus.pending bus in
    if pending > t.bound.max_pending then
      fail t ~check:"blast_pending"
        (Printf.sprintf "segment %s: %d frames pending (bound %d)" st.seg
           pending t.bound.max_pending);
    let latency = Can.Bus.tx_latency bus in
    if Obs.Histogram.count latency > 0 then begin
      let p99 = Obs.Histogram.percentile latency 99.0 in
      if p99 > t.bound.p99_ms then
        fail t ~check:"blast_latency"
          (Printf.sprintf "segment %s: tx p99 %.2fms (bound %.2fms)" st.seg p99
             t.bound.p99_ms)
    end;
    let deliveries = Tcar.deliveries_in t.car st.seg in
    (* two warm-up slices before demanding progress: periodic traffic needs
       a moment to start crossing gateways *)
    if t.slices > 2 && deliveries <= st.last_deliveries then
      fail t ~check:"blast_liveness"
        (Printf.sprintf "segment %s: no deliveries this slice (stuck at %d)"
           st.seg deliveries);
    st.last_deliveries <- deliveries;
    let false_blocks = Tcar.false_blocks_in t.car st.seg in
    if false_blocks > st.last_false_blocks then
      fail t ~check:"blast_decisions"
        (Printf.sprintf
           "segment %s: %d new enforcement blocks on designed traffic" st.seg
           (false_blocks - st.last_false_blocks));
    st.last_false_blocks <- false_blocks

  let check t =
    t.slices <- t.slices + 1;
    let faulted = t.faulted () in
    List.iter
      (fun st ->
        if List.mem st.seg faulted then begin
          (* keep the baselines warm so a healed segment is not instantly
             flagged for history accumulated during the fault *)
          st.last_deliveries <- Tcar.deliveries_in t.car st.seg;
          st.last_false_blocks <- Tcar.false_blocks_in t.car st.seg
        end
        else check_segment t st)
      t.states;
    let topo = Tcar.topology t.car in
    List.iter
      (fun gw_name ->
        let gw = Topology.gateway topo gw_name in
        let backlog = Can.Gateway.in_flight gw in
        if backlog > t.bound.max_gateway_backlog then
          fail t ~check:"blast_gateway_backlog"
            (Printf.sprintf "gateway %s: %d forwards in flight (bound %d)"
               gw_name backlog t.bound.max_gateway_backlog))
      (Topology.gateway_names topo)
end
