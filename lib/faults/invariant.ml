module Engine = Secpol_sim.Engine
module Can = Secpol_can
module Hpe = Secpol_hpe
module Car = Secpol_vehicle.Car
module Modes = Secpol_vehicle.Modes
module State = Secpol_vehicle.State

type violation = { time : float; check : string; detail : string }

type t = {
  harness : Harness.t;
  mutable cursor : int; (* trace entries already examined *)
  mutable last_sent : int;
  mutable last_abandoned : int;
  mutable violations : violation list; (* newest first *)
}

let create harness =
  { harness; cursor = 0; last_sent = 0; last_abandoned = 0; violations = [] }

let violations t = List.rev t.violations

let ok t = t.violations = []

let fail t ~check detail =
  let time = Engine.now (Harness.car t.harness).Car.sim in
  t.violations <- { time; check; detail } :: t.violations

(* ---------- per-slice checks ---------- *)

let check_counters t =
  let bus = (Harness.car t.harness).Car.bus in
  let sent = Can.Bus.frames_sent bus in
  let abandoned = Can.Bus.abandoned bus in
  let pending = Can.Bus.pending bus in
  if sent < t.last_sent then
    fail t ~check:"counters"
      (Printf.sprintf "frames_sent went backwards (%d -> %d)" t.last_sent sent);
  if abandoned < t.last_abandoned then
    fail t ~check:"counters"
      (Printf.sprintf "abandoned went backwards (%d -> %d)" t.last_abandoned
         abandoned);
  if pending > 10_000 then
    fail t ~check:"counters"
      (Printf.sprintf "%d frames pending: arbitration queue is diverging"
         pending);
  t.last_sent <- sent;
  t.last_abandoned <- abandoned

(* Every delivery at an HPE-guarded node must be on that node's approved
   reading list for the operating mode in force.  Frames completing in
   the same timestamp batch as a mode switch may have been gated under
   the outgoing mode, so a delivery is also accepted if the mode a
   millisecond earlier approved it. *)
let approved t ~node ~time msg_id =
  let approved_under mode =
    match Harness.config_for t.harness ~mode ~node with
    | None -> true (* no cached config: nothing to judge against *)
    | Some config -> List.mem msg_id config.Hpe.Config.read_ids
  in
  approved_under (Harness.mode_at t.harness time)
  || approved_under (Harness.mode_at t.harness (time -. 0.001))

let check_deliveries t =
  let car = Harness.car t.harness in
  let entries = Can.Trace.entries (Car.trace car) in
  let fresh = List.filteri (fun i _ -> i >= t.cursor) entries in
  t.cursor <- List.length entries;
  List.iter
    (fun e ->
      match e.Can.Trace.event with
      | Can.Trace.Rx_delivered receiver when Car.hpe car receiver <> None ->
          let id = e.Can.Trace.frame.Can.Frame.id in
          let msg_id = Can.Identifier.raw id in
          if
            Can.Identifier.is_extended id
            || not (approved t ~node:receiver ~time:e.Can.Trace.time msg_id)
          then
            fail t ~check:"approved_rx"
              (Printf.sprintf "0x%03X delivered to %s at %.4fs outside its %s"
                 msg_id receiver e.Can.Trace.time "approved reading list")
      | _ -> ())
    fresh

let check_failsafe_deadline t =
  match Harness.stall_started t.harness with
  | None -> ()
  | Some stall_at -> (
      let now = Engine.now (Harness.car t.harness).Car.sim in
      let bound = Harness.failsafe_bound t.harness ~stall_at in
      match Harness.failsafe_entered t.harness with
      | Some entered when entered <= bound -> ()
      | Some entered ->
          fail t ~check:"failsafe_deadline"
            (Printf.sprintf
               "fail-safe entered at %.4fs, after the %.4fs bound" entered
               bound)
      | None ->
          if now > bound then
            fail t ~check:"failsafe_deadline"
              (Printf.sprintf
                 "policy engine stalled at %.4fs; still not fail-safe at \
                  %.4fs (bound %.4fs)"
                 stall_at now bound))

let check t =
  check_counters t;
  check_deliveries t;
  check_failsafe_deadline t

(* ---------- end-of-run checks ---------- *)

let state_fields (s : State.t) =
  [
    ("mode", Modes.name s.State.mode);
    ("ev_ecu_enabled", string_of_bool s.State.ev_ecu_enabled);
    ("engine_running", string_of_bool s.State.engine_running);
    ("eps_active", string_of_bool s.State.eps_active);
    ("doors_locked", string_of_bool s.State.doors_locked);
    ("alarm_armed", string_of_bool s.State.alarm_armed);
    ("modem_enabled", string_of_bool s.State.modem_enabled);
    ("tracking_enabled", string_of_bool s.State.tracking_enabled);
    ("failsafe_latched", string_of_bool s.State.failsafe_latched);
    ("speed_kmh", Printf.sprintf "%.3f" s.State.speed_kmh);
    ("software_installs", string_of_int s.State.software_installs);
    ("emergency_calls", string_of_int s.State.emergency_calls);
  ]

let finalize t ~reference =
  check t;
  let car = Harness.car t.harness in
  if Plan.degrading (Harness.plan t.harness) then begin
    if Car.mode car <> Modes.Fail_safe then
      fail t ~check:"latched"
        (Printf.sprintf "degrading plan ended in %s, not fail-safe"
           (Modes.name (Car.mode car)));
    if not car.Car.state.State.failsafe_latched then
      fail t ~check:"latched" "fail-safe actions were never latched";
    if Harness.failsafe_entered t.harness = None then
      fail t ~check:"latched" "harness never recorded the fail-safe entry"
  end
  else
    (* every fault recovered: the run must land on the same steady state a
       never-faulted car reaches *)
    List.iter2
      (fun (name, faulted) (_, clean) ->
        if faulted <> clean then
          fail t ~check:"convergence"
            (Printf.sprintf "%s diverged: %s (faulted) vs %s (clean)" name
               faulted clean))
      (state_fields car.Car.state)
      (state_fields reference.Car.state)
