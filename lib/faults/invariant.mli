(** Safety invariants checked throughout a chaos run.

    A checker is stateful: {!check} is called at every slice boundary and
    examines only what changed since the last call, {!finalize} adds the
    end-of-run obligations.  The checks:

    - {b counters}: bus counters never go backwards and the arbitration
      queue stays bounded (a partitioned segment must shed load, not
      queue forever);
    - {b approved_rx}: under any fault, no frame is delivered to an
      HPE-guarded node outside its approved reading list for the mode in
      force — faults may cost availability, never policy violations;
    - {b failsafe_deadline}: once the policy engine stalls, the car is in
      fail-safe no later than {!Harness.failsafe_bound};
    - {b latched} (degrading plans): the run ends latched in fail-safe;
    - {b convergence} (recoverable plans): the final vehicle state equals
      a never-faulted run's steady state, field by field. *)

type violation = { time : float; check : string; detail : string }

type t

val create : Harness.t -> t

val check : t -> unit
(** Examine everything since the previous call; record violations. *)

val finalize : t -> reference:Secpol_vehicle.Car.t -> unit
(** Run {!check} once more, then the end-of-run obligations.
    [reference] is a never-faulted car advanced to the same horizon. *)

val violations : t -> violation list
(** Chronological. *)

val ok : t -> bool
