(** Safety invariants checked throughout a chaos run.

    A checker is stateful: {!check} is called at every slice boundary and
    examines only what changed since the last call, {!finalize} adds the
    end-of-run obligations.  The checks:

    - {b counters}: bus counters never go backwards and the arbitration
      queue stays bounded (a partitioned segment must shed load, not
      queue forever);
    - {b approved_rx}: under any fault, no frame is delivered to an
      HPE-guarded node outside its approved reading list for the mode in
      force — faults may cost availability, never policy violations;
    - {b failsafe_deadline}: once the policy engine stalls, the car is in
      fail-safe no later than {!Harness.failsafe_bound};
    - {b latched} (degrading plans): the run ends latched in fail-safe;
    - {b convergence} (recoverable plans): the final vehicle state equals
      a never-faulted run's steady state, field by field. *)

type violation = { time : float; check : string; detail : string }

type t

val create : Harness.t -> t

val check : t -> unit
(** Examine everything since the previous call; record violations. *)

val finalize : t -> reference:Secpol_vehicle.Car.t -> unit
(** Run {!check} once more, then the end-of-run obligations.
    [reference] is a never-faulted car advanced to the same horizon. *)

val violations : t -> violation list
(** Chronological. *)

val ok : t -> bool

(** The blast-radius invariant for topology cars.

    A segment-scoped fault may do anything to its own segment; every
    {e other} segment must stay within a declared bound, checked
    streaming at every slice:

    - {b blast_pending}: the segment's arbitration queue stays under
      [max_pending];
    - {b blast_latency}: the segment's cumulative delivery-latency p99
      stays under [p99_ms];
    - {b blast_liveness}: frames keep arriving every slice (after two
      warm-up slices);
    - {b blast_decisions}: enforcement never starts blocking designed
      traffic outside the blast ([Topology_car.false_blocks_in] stays
      flat);
    - {b blast_gateway_backlog}: every gateway's in-flight forwards stay
      under [max_gateway_backlog] — the check a gateway with an unbounded
      queue fails when its destination segment saturates. *)
module Blast : sig
  type bound = { max_pending : int; p99_ms : float; max_gateway_backlog : int }

  val default_bound : bound

  type t

  val create :
    ?bound:bound ->
    faulted:(unit -> string list) ->
    Secpol_vehicle.Topology_car.t ->
    t
  (** [faulted] returns the segments currently inside the blast region
      (excluded from the per-segment checks); the caller keeps it
      monotone over a run. *)

  val check : t -> unit
  (** Sweep every segment and gateway once; record violations. *)

  val fail : t -> check:string -> string -> unit
  (** Record an externally detected violation (the blast runner's
      end-of-run obligations use this). *)

  val violations : t -> violation list
  (** Chronological. *)

  val ok : t -> bool
end
