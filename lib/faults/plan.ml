module Rng = Secpol_sim.Rng
module Names = Secpol_vehicle.Names

type entry = { at : float; kind : Fault.kind }

type t = { name : string; horizon : float; entries : entry list }

type topology = { segments : string list; gateways : string list }

(* Segment-scoped faults name topology pieces a flat-bus car does not
   have; callers that own a topology pass it so bad names are rejected at
   plan build, exactly like the horizon checks. *)
let check_topology topo kind =
  let known what names name =
    if List.mem name names then Ok ()
    else
      Error
        (Printf.sprintf "plan: %s names unknown %s %S" (Fault.label kind) what
           name)
  in
  match kind with
  | Fault.Segment_partition { segment; _ } | Fault.Segment_babble { segment; _ }
    ->
      known "segment" topo.segments segment
  | Fault.Gateway_crash { gateway; _ } -> known "gateway" topo.gateways gateway
  | _ -> Ok ()

let segment_scoped t =
  List.exists
    (fun e ->
      match e.kind with
      | Fault.Segment_partition _ | Fault.Segment_babble _
      | Fault.Gateway_crash _ ->
          true
      | _ -> false)
    t.entries

let validate ?topology t =
  if t.horizon <= 0.0 then Error "plan: horizon must be positive"
  else
    let rec check = function
      | [] -> Ok ()
      | e :: rest -> (
          if e.at < 0.0 then Error "plan: negative injection time"
          else if e.at >= t.horizon then
            Error
              (Printf.sprintf "plan: %s injected at %.3fs, past the %.3fs horizon"
                 (Fault.label e.kind) e.at t.horizon)
          else
            match Fault.validate e.kind with
            | Error _ as err -> err
            | Ok () -> (
                match topology with
                | None -> check rest
                | Some topo -> (
                    match check_topology topo e.kind with
                    | Ok () -> check rest
                    | Error _ as err -> err)))
    in
    check t.entries

(* A plan is degrading when it is expected to end latched in Fail_safe:
   any policy stall long enough for the watchdog to notice does that.
   Everything else must recover to the never-faulted steady state. *)
let degrading t =
  List.exists
    (fun e -> match e.kind with Fault.Policy_stall _ -> true | _ -> false)
    t.entries

let sorted entries =
  List.stable_sort (fun a b -> Float.compare a.at b.at) entries

(* ---------- named plans ---------- *)

let stall ~horizon =
  {
    name = "stall";
    horizon;
    entries =
      [ { at = horizon *. 0.25; kind = Fault.Policy_stall { down_for = horizon *. 0.25 } } ];
  }

let storm ~horizon =
  {
    name = "storm";
    horizon;
    entries =
      sorted
        [
          {
            at = horizon *. 0.15;
            kind =
              Fault.Babbling_idiot
                { msg_id = 0x000; period = 0.002; duration = horizon *. 0.2 };
          };
          {
            at = horizon *. 0.45;
            kind = Fault.Corruption_burst { prob = 0.3; duration = horizon *. 0.15 };
          };
        ];
  }

let partition ~horizon =
  {
    name = "partition";
    horizon;
    entries =
      [
        {
          at = horizon *. 0.2;
          kind =
            Fault.Bus_partition
              {
                nodes = [ Names.infotainment; Names.telematics ];
                heal_after = horizon *. 0.3;
              };
        };
      ];
  }

let crash ~horizon =
  {
    name = "crash";
    horizon;
    entries =
      sorted
        [
          {
            at = horizon *. 0.2;
            kind =
              Fault.Node_crash
                { node = Names.infotainment; down_for = horizon *. 0.25 };
          };
          {
            at = horizon *. 0.35;
            kind =
              Fault.Node_crash { node = Names.door_locks; down_for = horizon *. 0.2 };
          };
        ];
  }

let hpe_corruption ~horizon =
  {
    name = "hpe-corruption";
    horizon;
    entries =
      [
        {
          at = horizon *. 0.3;
          kind =
            Fault.Hpe_corruption
              { node = Names.ev_ecu; scrub_after = horizon *. 0.25 };
        };
      ];
  }

let skewed_stall ~horizon =
  {
    name = "skewed-stall";
    horizon;
    entries =
      sorted
        [
          {
            at = horizon *. 0.1;
            kind = Fault.Clock_skew { factor = 0.5; duration = horizon *. 0.6 };
          };
          {
            at = horizon *. 0.3;
            kind = Fault.Policy_stall { down_for = horizon *. 0.25 };
          };
        ];
  }

(* ---------- segment-scoped plans (topology cars only) ---------- *)

(* The infotainment leaf is the designated victim: it is the
   attack-surface segment the architecture exists to contain, and losing
   it must not cost the chassis or powertrain anything. *)

let segment_partition ~horizon =
  {
    name = "segment-partition";
    horizon;
    entries =
      [
        {
          at = horizon *. 0.2;
          kind =
            Fault.Segment_partition
              {
                segment = Secpol_vehicle.Segment_map.seg_infotainment;
                heal_after = horizon *. 0.3;
              };
        };
      ];
  }

let segment_babble ~horizon =
  {
    name = "segment-babble";
    horizon;
    entries =
      [
        {
          at = horizon *. 0.15;
          kind =
            (* 0.1 ms period is below the minimal frame wire time at
               500 kbit/s, so the rogue saturates arbitration on its own
               segment and gateway forwards towards it stall *)
            Fault.Segment_babble
              {
                segment = Secpol_vehicle.Segment_map.seg_infotainment;
                msg_id = 0x000;
                period = 0.0001;
                duration = horizon *. 0.45;
              };
        };
      ];
  }

let gateway_failover ~horizon =
  {
    name = "gateway-failover";
    horizon;
    entries =
      [
        {
          at = horizon *. 0.2;
          kind =
            Fault.Gateway_crash
              {
                gateway = Secpol_vehicle.Segment_map.gw_infotainment;
                down_for = horizon *. 0.25;
              };
        };
      ];
  }

let threat_trigger ?(msg_id = Secpol_vehicle.Messages.lock_command) ~at
    ~horizon () =
  if horizon <= 0.0 then
    invalid_arg "Plan.threat_trigger: horizon must be positive";
  if at < 0.0 || at >= horizon then
    invalid_arg "Plan.threat_trigger: activation outside [0, horizon)";
  {
    name = "threat-trigger";
    horizon;
    entries =
      [
        {
          at;
          kind =
            (* the forged-frame flood carrying the threat's message id;
               it stays live until the horizon *)
            Fault.Babbling_idiot
              { msg_id; period = 0.05; duration = horizon -. at };
        };
      ];
  }

let threat_window t =
  List.find_map
    (fun e ->
      match e.kind with
      | Fault.Babbling_idiot { msg_id; duration; _ } ->
          Some (e.at, Float.min t.horizon (e.at +. duration), msg_id)
      | _ -> None)
    t.entries

(* ---------- seeded generation ---------- *)

(* Recoverable faults only: generated campaigns exercise breadth, the
   degradation path is exercised by the explicit stall plans.  Windows are
   kept inside [0.1h, 0.7h] so every fault has cleared well before the
   horizon and the convergence invariant is meaningful. *)
let random_fault rng ~horizon =
  let crashable =
    (* the safety ECU stays up: crashing the component that latches
       fail-safe is a different experiment (and a different paper) *)
    [| Names.infotainment; Names.telematics; Names.door_locks; Names.eps |]
  in
  let dur lo hi = lo +. Rng.float rng (hi -. lo) in
  match Rng.int rng 5 with
  | 0 ->
      Fault.Node_crash
        { node = Rng.pick rng crashable; down_for = dur 0.05 (horizon *. 0.2) }
  | 1 ->
      Fault.Babbling_idiot
        {
          msg_id = 0x000;
          period = 0.001 +. Rng.float rng 0.004;
          duration = dur 0.05 (horizon *. 0.15);
        }
  | 2 ->
      Fault.Corruption_burst
        { prob = 0.1 +. Rng.float rng 0.4; duration = dur 0.05 (horizon *. 0.15) }
  | 3 ->
      Fault.Bus_partition
        {
          nodes = [ Rng.pick rng crashable ];
          heal_after = dur 0.05 (horizon *. 0.2);
        }
  | _ ->
      Fault.Hpe_corruption
        { node = Rng.pick rng crashable; scrub_after = dur 0.05 (horizon *. 0.2) }

let generate ?(faults = 4) ~seed ~horizon () =
  if horizon <= 0.0 then invalid_arg "Plan.generate: horizon must be positive";
  if faults < 0 then invalid_arg "Plan.generate: negative fault count";
  let rng = Rng.create seed in
  let entries =
    List.init faults (fun _ ->
        {
          at = (horizon *. 0.1) +. Rng.float rng (horizon *. 0.6);
          kind = random_fault rng ~horizon;
        })
  in
  { name = Printf.sprintf "mixed-%Ld" seed; horizon; entries = sorted entries }

let named =
  [
    "stall";
    "storm";
    "partition";
    "crash";
    "hpe-corruption";
    "skewed-stall";
    "mixed";
    "segment-partition";
    "segment-babble";
    "gateway-failover";
  ]

let of_name ?(seed = 42L) ?(horizon = 4.0) name =
  match name with
  | "stall" -> Some (stall ~horizon)
  | "storm" -> Some (storm ~horizon)
  | "partition" -> Some (partition ~horizon)
  | "crash" -> Some (crash ~horizon)
  | "hpe-corruption" -> Some (hpe_corruption ~horizon)
  | "skewed-stall" -> Some (skewed_stall ~horizon)
  | "mixed" -> Some (generate ~seed ~horizon ())
  | "segment-partition" -> Some (segment_partition ~horizon)
  | "segment-babble" -> Some (segment_babble ~horizon)
  | "gateway-failover" -> Some (gateway_failover ~horizon)
  | _ -> None

let pp ppf t =
  Format.fprintf ppf "plan %s (horizon %.1fs, %d faults)@." t.name t.horizon
    (List.length t.entries);
  List.iter
    (fun e -> Format.fprintf ppf "  [%6.3f] %a@." e.at Fault.pp e.kind)
    t.entries
