(** Deterministic fault schedules.

    A plan is a list of (time, fault) injections against one simulated car.
    Plans are either hand-authored (the named plans below) or generated
    from a seed; either way the schedule is fully determined before the
    run starts, so a campaign is reproducible from [(seed, plan name)]
    alone. *)

type entry = { at : float; kind : Fault.kind }

type t = { name : string; horizon : float; entries : entry list }

type topology = { segments : string list; gateways : string list }
(** The names a segment-scoped plan may reference. *)

val validate : ?topology:topology -> t -> (unit, string) result
(** Every entry inside [0, horizon) and individually well-formed.  With
    [topology], segment-scoped entries naming unknown segments or
    gateways are rejected too — a flat-bus harness passes the empty
    topology, so any segment-scoped entry is an error there. *)

val segment_scoped : t -> bool
(** The plan contains at least one segment-scoped fault
    ([Segment_partition], [Segment_babble], [Gateway_crash]) and so needs
    a topology car ({!Blast}) rather than the flat-bus harness. *)

val degrading : t -> bool
(** [true] when the plan is expected to end latched in [Fail_safe] (it
    stalls the policy engine); [false] means the run must recover to the
    never-faulted steady state. *)

val stall : horizon:float -> t
(** Policy engine stalls mid-run; the watchdog must drive the car into
    fail-safe within its deadline. *)

val storm : horizon:float -> t
(** Babbling-idiot flood followed by a line-noise burst. *)

val partition : horizon:float -> t
(** The connectivity-side stations drop off the bus, then heal. *)

val crash : horizon:float -> t
(** Two overlapping node crash/restart cycles. *)

val hpe_corruption : horizon:float -> t
(** A bit flip in one node's approved-list RAM; scrubbed later. *)

val skewed_stall : horizon:float -> t
(** A policy stall while the watchdog's clock runs slow — detection must
    still happen within the skew-adjusted bound. *)

val segment_partition : horizon:float -> t
(** The infotainment segment's medium is severed, then repaired. *)

val segment_babble : horizon:float -> t
(** A rogue station saturates the infotainment segment's arbitration with
    top-priority frames (period below the frame wire time). *)

val gateway_failover : horizon:float -> t
(** The infotainment gateway crashes, then fails over into the
    fail-closed minimal-crossing limp-home. *)

val threat_trigger : ?msg_id:int -> at:float -> horizon:float -> unit -> t
(** A single Table-I threat going live at [at] and staying live until the
    horizon: a forged-frame flood ({!Fault.Babbling_idiot}) carrying
    [msg_id] (default the door-lock command, the row-14 attack vector).
    Plan times are unitless floats — the chaos harness reads them as
    seconds against one car, a fleet campaign
    ({!Secpol_lifecycle.Campaign}) reads the same schedule in days.
    @raise Invalid_argument unless [0 <= at < horizon]. *)

val threat_window : t -> (float * float * int) option
(** [(activation, clearance, msg_id)] of the plan's first forged-frame
    flood (clearance clamped to the horizon); [None] when the plan
    carries no such fault. *)

val generate : ?faults:int -> seed:int64 -> horizon:float -> unit -> t
(** [faults] (default 4) random recoverable faults at seeded times. *)

val named : string list
(** CLI plan names accepted by {!of_name}. *)

val of_name : ?seed:int64 -> ?horizon:float -> string -> t option
(** Resolve a CLI name; [seed] only shapes the ["mixed"] plan, [horizon]
    (default 4 s) scales every plan. *)

val pp : Format.formatter -> t -> unit
