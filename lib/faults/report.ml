module Json = Secpol_policy.Json
module Obs_json = Secpol_policy.Obs_json
module Obs = Secpol_obs

let ms s = s *. 1000.0

let opt_float = function None -> Json.Null | Some v -> Json.Float v

let fault_json (r : Harness.record) =
  let mttr =
    match (r.Harness.injected_at, r.Harness.cleared_at) with
    | Some i, Some c -> Some (ms (c -. i))
    | _ -> None
  in
  ( Json.Obj
      [
        ("kind", Json.String (Fault.label r.Harness.entry.Plan.kind));
        ("planned_at", Json.Float r.Harness.entry.Plan.at);
        ("injected_at", opt_float r.Harness.injected_at);
        ("cleared_at", opt_float r.Harness.cleared_at);
        ("mttr_ms", opt_float mttr);
      ],
    mttr )

let violation_json (v : Invariant.violation) =
  Json.Obj
    [
      ("time", Json.Float v.Invariant.time);
      ("check", Json.String v.Invariant.check);
      ("detail", Json.String v.Invariant.detail);
    ]

let build ~seed ~harness ~checker =
  let plan = Harness.plan harness in
  let wd = Harness.watchdog harness in
  (* MTTR: fault injection to recovery action; MTTD: first failed ping to
     the watchdog trip.  Both live in the run's telemetry registry so the
     export pipeline (and merges) treat them like any other histogram. *)
  let obs = Harness.obs harness in
  let mttr_hist = Obs.Registry.histogram ~lo:0.1 obs "faults.mttr_ms" in
  let mttd_hist = Obs.Registry.histogram ~lo:0.1 obs "faults.mttd_ms" in
  let faults, mttrs =
    List.fold_left
      (fun (js, ms_acc) r ->
        let j, mttr = fault_json r in
        (j :: js, match mttr with None -> ms_acc | Some m -> m :: ms_acc))
      ([], [])
      (Harness.records harness)
  in
  let faults = List.rev faults in
  List.iter (Obs.Histogram.observe mttr_hist) (List.rev mttrs);
  let detections = Watchdog.detections wd in
  List.iter (fun (_, mttd) -> Obs.Histogram.observe mttd_hist (ms mttd)) detections;
  let failsafe =
    match Harness.stall_started harness with
    | None -> Json.Null
    | Some stall_at ->
        let entered = Harness.failsafe_entered harness in
        Json.Obj
          [
            ("stall_started", Json.Float stall_at);
            ("entered", opt_float entered);
            ( "latency_ms",
              opt_float (Option.map (fun e -> ms (e -. stall_at)) entered) );
            ("bound", Json.Float (Harness.failsafe_bound harness ~stall_at));
          ]
  in
  let violations = Invariant.violations checker in
  Json.Obj
    [
      ("plan", Json.String plan.Plan.name);
      ("seed", Json.String (Int64.to_string seed));
      ("horizon", Json.Float plan.Plan.horizon);
      ("degrading", Json.Bool (Plan.degrading plan));
      ("verdict", Json.String (if violations = [] then "pass" else "fail"));
      ("faults", Json.List faults);
      ( "watchdog",
        Json.Obj
          [
            ("period_ms", Json.Float (ms (Watchdog.period wd)));
            ("deadline_ms", Json.Float (ms (Watchdog.deadline wd)));
            ("trips", Json.Int (Watchdog.trips wd));
            ( "detections",
              Json.List
                (List.map
                   (fun (at, mttd) ->
                     Json.Obj
                       [
                         ("at", Json.Float at); ("mttd_ms", Json.Float (ms mttd));
                       ])
                   detections) );
          ] );
      ("failsafe", failsafe);
      ("mttd_ms", Obs_json.histogram mttd_hist);
      ("mttr_ms", Obs_json.histogram mttr_hist);
      ("violations", Json.List (List.map violation_json violations));
      ("telemetry", Obs_json.registry obs);
    ]

let to_string json = Json.to_string json
