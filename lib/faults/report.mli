(** The machine-readable fault report a chaos campaign emits.

    One JSON object per run: the plan and seed (enough to reproduce it),
    per-fault injection/recovery timestamps with MTTR, the watchdog's
    detections with MTTD, the fail-safe entry latency against its bound,
    every invariant violation, and the run's full telemetry snapshot.
    MTTD/MTTR are also folded into [faults.mttd_ms] / [faults.mttr_ms]
    histograms in the harness's registry so they ride the normal
    telemetry export path. *)

val build :
  seed:int64 ->
  harness:Harness.t ->
  checker:Invariant.t ->
  Secpol_policy.Json.t
(** Call after the run (and {!Invariant.finalize}) completed. *)

val to_string : Secpol_policy.Json.t -> string
(** Compact JSON rendering. *)
