module Engine = Secpol_sim.Engine

type t = {
  sim : Engine.t;
  clock : Clock.t;
  period : float;
  deadline : float;
  ping : unit -> bool;
  on_expire : unit -> unit;
  mutable last_ok : float; (* local-clock time of the last healthy ping *)
  mutable failing_since : float option; (* sim time of the first failed ping *)
  mutable tripped : bool;
  mutable trips : int;
  mutable detections : (float * float) list; (* (sim time, sim MTTD) newest first *)
}

let check t sim =
  if t.ping () then begin
    if t.tripped then t.tripped <- false;
    t.failing_since <- None;
    t.last_ok <- Clock.now t.clock
  end
  else begin
    (match t.failing_since with
    | None -> t.failing_since <- Some (Engine.now sim)
    | Some _ -> ());
    if (not t.tripped) && Clock.now t.clock -. t.last_ok >= t.deadline then begin
      t.tripped <- true;
      t.trips <- t.trips + 1;
      let now = Engine.now sim in
      let since = Option.value ~default:now t.failing_since in
      t.detections <- (now, now -. since) :: t.detections;
      t.on_expire ()
    end
  end

let create ?(period = 0.01) ?(deadline = 0.05) ~clock ~ping ~on_expire sim =
  if period <= 0.0 then invalid_arg "Watchdog.create: period must be positive";
  if deadline <= 0.0 then
    invalid_arg "Watchdog.create: deadline must be positive";
  let t =
    {
      sim;
      clock;
      period;
      deadline;
      ping;
      on_expire;
      last_ok = Clock.now clock;
      failing_since = None;
      tripped = false;
      trips = 0;
      detections = [];
    }
  in
  Engine.every sim ~period (check t);
  t

let period t = t.period

let deadline t = t.deadline

let tripped t = t.tripped

let trips t = t.trips

let detections t = List.rev t.detections
