(** A fail-safe watchdog over an unreliable dependency.

    Every [period] (simulation) seconds the watchdog pings its dependency.
    When pings have been failing for at least [deadline] seconds of its
    {e local} clock — which may be skewed — it trips once and fires
    [on_expire]; a later healthy ping re-arms it.  [on_expire] is the
    degradation hook: in the chaos harness it is
    {!Secpol_vehicle.Car.enter_fail_safe}. *)

type t

val create :
  ?period:float ->
  ?deadline:float ->
  clock:Clock.t ->
  ping:(unit -> bool) ->
  on_expire:(unit -> unit) ->
  Secpol_sim.Engine.t ->
  t
(** Defaults: ping every 10 ms, trip after 50 ms of continuous failure.
    Scheduling starts immediately (first check one period in).
    @raise Invalid_argument on non-positive period or deadline. *)

val period : t -> float

val deadline : t -> float

val tripped : t -> bool
(** Currently expired (no healthy ping since the trip). *)

val trips : t -> int
(** Total times the deadline expired. *)

val detections : t -> (float * float) list
(** Per trip, chronological: the simulation time the watchdog tripped and
    the detection latency (trip time minus the first failed ping), both in
    simulation seconds regardless of clock skew. *)
