module Identifier = Secpol_can.Identifier
module Intervals_set = Secpol_policy.Intervals

type backend = Bitset | Hashtable | Intervals

type repr =
  | Bits of { std : Bytes.t; ext : (int, unit) Hashtbl.t }
  | Table of (int * bool, unit) Hashtbl.t
      (** key: raw id, is_extended *)
  | Ranges of { mutable std : Intervals_set.t; ext : (int, unit) Hashtbl.t }
      (** the compiled policy table's sorted-interval matcher, reused:
          standard IDs as disjoint ranges, sparse extended IDs hashed *)

type t = { backend : backend; repr : repr; mutable cardinal : int }

let create ?(backend = Bitset) () =
  let repr =
    match backend with
    | Bitset -> Bits { std = Bytes.make 256 '\000'; ext = Hashtbl.create 16 }
    | Hashtable -> Table (Hashtbl.create 64)
    | Intervals ->
        Ranges { std = Intervals_set.empty; ext = Hashtbl.create 16 }
  in
  { backend; repr; cardinal = 0 }

let backend t = t.backend

let bit_get bytes i =
  Char.code (Bytes.get bytes (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set bytes i v =
  let byte = Char.code (Bytes.get bytes (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if v then byte lor mask else byte land lnot mask in
  Bytes.set bytes (i lsr 3) (Char.chr byte)

(* membership for a raw standard ID without building an [Identifier.t]:
   the batched rx gate streams over an [int array] of IDs and this keeps
   the bitset / interval backends allocation-free per lookup (the hash
   backend still allocates its tuple key) *)
let mem_std t i =
  match t.repr with
  | Bits { std; _ } -> bit_get std i
  | Ranges { std; _ } -> Intervals_set.mem std i
  | Table tbl -> Hashtbl.mem tbl (i, false)

let mem t id =
  match (t.repr, id) with
  | Bits { std; _ }, Identifier.Standard i -> bit_get std i
  | Bits { ext; _ }, Identifier.Extended i -> Hashtbl.mem ext i
  | Ranges { std; _ }, Identifier.Standard i -> Intervals_set.mem std i
  | Ranges { ext; _ }, Identifier.Extended i -> Hashtbl.mem ext i
  | Table tbl, _ -> Hashtbl.mem tbl (Identifier.raw id, Identifier.is_extended id)

let add t id =
  if not (mem t id) then begin
    t.cardinal <- t.cardinal + 1;
    match (t.repr, id) with
    | Bits { std; _ }, Identifier.Standard i -> bit_set std i true
    | Bits { ext; _ }, Identifier.Extended i -> Hashtbl.replace ext i ()
    | Ranges r, Identifier.Standard i ->
        r.std <- Intervals_set.add r.std ~lo:i ~hi:i
    | Ranges { ext; _ }, Identifier.Extended i -> Hashtbl.replace ext i ()
    | Table tbl, _ ->
        Hashtbl.replace tbl (Identifier.raw id, Identifier.is_extended id) ()
  end

let add_range t ~lo ~hi =
  if lo < 0 || hi > 0x7FF || hi < lo then
    invalid_arg "Approved_list.add_range: bad 11-bit range";
  match t.repr with
  | Ranges r ->
      (* bulk form: one interval merge instead of per-ID insertion *)
      let before = Intervals_set.cardinal r.std in
      r.std <- Intervals_set.add r.std ~lo ~hi;
      t.cardinal <- t.cardinal + (Intervals_set.cardinal r.std - before)
  | Bits _ | Table _ ->
      for i = lo to hi do
        add t (Identifier.standard i)
      done

let remove t id =
  if mem t id then begin
    t.cardinal <- t.cardinal - 1;
    match (t.repr, id) with
    | Bits { std; _ }, Identifier.Standard i -> bit_set std i false
    | Bits { ext; _ }, Identifier.Extended i -> Hashtbl.remove ext i
    | Ranges r, Identifier.Standard i ->
        r.std <- Intervals_set.remove r.std ~lo:i ~hi:i
    | Ranges { ext; _ }, Identifier.Extended i -> Hashtbl.remove ext i
    | Table tbl, _ ->
        Hashtbl.remove tbl (Identifier.raw id, Identifier.is_extended id)
  end

let cardinal t = t.cardinal

let clear t =
  (match t.repr with
  | Bits { std; ext } ->
      Bytes.fill std 0 (Bytes.length std) '\000';
      Hashtbl.reset ext
  | Ranges r ->
      r.std <- Intervals_set.empty;
      Hashtbl.reset r.ext
  | Table tbl -> Hashtbl.reset tbl);
  t.cardinal <- 0

let of_ids ?backend ids =
  let t = create ?backend () in
  List.iter (add t) ids;
  t

let to_ids t =
  let std, ext =
    match t.repr with
    | Bits { std; ext } ->
        let s = ref [] in
        for i = 0x7FF downto 0 do
          if bit_get std i then s := i :: !s
        done;
        (!s, Hashtbl.fold (fun k () acc -> k :: acc) ext [])
    | Ranges { std; ext } ->
        ( List.concat_map
            (fun (lo, hi) -> List.init (hi - lo + 1) (fun i -> lo + i))
            (Intervals_set.ranges std),
          Hashtbl.fold (fun k () acc -> k :: acc) ext [] )
    | Table tbl ->
        Hashtbl.fold
          (fun (raw, is_ext) () (s, e) ->
            if is_ext then (s, raw :: e) else (raw :: s, e))
          tbl ([], [])
  in
  List.map Identifier.standard (List.sort compare std)
  @ List.map Identifier.extended (List.sort compare ext)

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat ", "
       (List.map (Format.asprintf "%a" Identifier.pp) (to_ids t)))
