(** Approved CAN-message-ID lists (paper Fig. 4).

    The HPE holds one list of approved IDs for reading and one for writing;
    the decision block consults them per frame.  Three interchangeable
    implementations are provided for the lookup-structure ablation bench:
    a bitset over the 11-bit standard ID space (with a hash table for the
    sparse extended IDs), a plain hash table, and the compiled policy
    table's sorted-interval matcher ({!Secpol_policy.Intervals}) — the
    natural fit when approvals arrive as message-ID ranges. *)

type backend = Bitset | Hashtable | Intervals

type t

val create : ?backend:backend -> unit -> t
(** Empty list; default backend [Bitset]. *)

val backend : t -> backend

val add : t -> Secpol_can.Identifier.t -> unit

val add_range : t -> lo:int -> hi:int -> unit
(** Approve every *standard* ID in [lo..hi] (inclusive).
    @raise Invalid_argument when outside the 11-bit space or [hi < lo]. *)

val remove : t -> Secpol_can.Identifier.t -> unit

val mem : t -> Secpol_can.Identifier.t -> bool

val mem_std : t -> int -> bool
(** [mem] for a raw {e standard} (11-bit) ID, skipping the
    {!Secpol_can.Identifier.t} construction — the lookup the batched rx
    gate ({!Engine.gate_rx_batch}) streams with.  Allocation-free on the
    [Bitset] and [Intervals] backends. *)

val cardinal : t -> int

val clear : t -> unit

val of_ids : ?backend:backend -> Secpol_can.Identifier.t list -> t

val to_ids : t -> Secpol_can.Identifier.t list
(** Sorted: standard IDs ascending, then extended ascending. *)

val pp : Format.formatter -> t -> unit
