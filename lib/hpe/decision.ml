module Counter = Secpol_obs.Counter

type direction = Reading | Writing

type verdict = Grant | Block

type t = {
  direction : direction;
  approved : Approved_list.t;
  grants : Counter.t;
  blocks : Counter.t;
}

let create direction approved =
  {
    direction;
    approved;
    grants = Counter.create ();
    blocks = Counter.create ();
  }

let direction t = t.direction

let decide t (frame : Secpol_can.Frame.t) =
  if Approved_list.mem t.approved frame.id then begin
    Counter.incr t.grants;
    Grant
  end
  else begin
    Counter.incr t.blocks;
    Block
  end

let decide_std t raw =
  if Approved_list.mem_std t.approved raw then begin
    Counter.incr t.grants;
    true
  end
  else begin
    Counter.incr t.blocks;
    false
  end

let grants t = Counter.value t.grants

let blocks t = Counter.value t.blocks

let counters t = (t.grants, t.blocks)

let reset_counters t =
  Counter.reset t.grants;
  Counter.reset t.blocks

let direction_name = function Reading -> "reading" | Writing -> "writing"

let verdict_name = function Grant -> "grant" | Block -> "block"
