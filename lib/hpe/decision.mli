(** The HPE decision block (paper Fig. 4): compares a frame's message ID
    against the approved list for its direction and grants or blocks. *)

type direction = Reading | Writing

type verdict = Grant | Block

type t
(** A decision block bound to one approved list, with counters. *)

val create : direction -> Approved_list.t -> t

val direction : t -> direction

val decide : t -> Secpol_can.Frame.t -> verdict
(** Grant iff the frame's identifier is on the approved list.  Remote
    frames are judged by the same identifier rule. *)

val decide_std : t -> int -> bool
(** [decide] for a raw standard ID, as a bare boolean ([true] = grant):
    same counters, no [Frame.t] or verdict to build.  The form the batched
    rx gate uses ({!Approved_list.mem_std}). *)

val grants : t -> int

val blocks : t -> int

val counters : t -> Secpol_obs.Counter.t * Secpol_obs.Counter.t
(** The (grants, blocks) counter instances, so an engine can register them
    with a telemetry registry. *)

val reset_counters : t -> unit

val direction_name : direction -> string

val verdict_name : verdict -> string
