module Node = Secpol_can.Node
module Obs = Secpol_obs

(* Coarse message-id classes for per-node telemetry: the CAN identifier's
   priority page, named after the traffic that lives there in automotive
   layouts (dominant ids are safety-critical).  Classification is purely
   range-based so the HPE needs no knowledge of a concrete message map. *)
let class_names =
  [|
    "safety"; "powertrain"; "body"; "telematics"; "infotainment";
    "diagnostic"; "other"; "extended";
  |]

let class_of_std id =
  if id < 0x100 then 0
  else if id < 0x200 then 1
  else if id < 0x300 then 2
  else if id < 0x400 then 3
  else if id < 0x500 then 4
  else if id < 0x600 then 5
  else 6

let class_of_id = function
  | Secpol_can.Identifier.Extended _ -> 7
  | Secpol_can.Identifier.Standard id -> class_of_std id

let event_names = [| "rx.accept"; "rx.drop"; "tx.accept"; "tx.drop" |]

let n_classes = Array.length class_names

type t = {
  node : Node.t;
  regs : Registers.t;
  read_block : Decision.t;
  write_block : Decision.t;
  rates : Rate_limiter.t;
  rate_blocks : Obs.Counter.t;
  integrity_blocks : Obs.Counter.t;
  own_ids : (int, unit) Hashtbl.t;
  spoof_alerts : Obs.Counter.t;
  obs : Obs.Registry.t option;
  (* event * class -> counter, created on first frame of that kind so an
     export only shows classes the node actually saw *)
  class_counters : Obs.Counter.t option array;
}

let gate_name = "hpe"

let node_name t = Node.name t.node

(* per-frame class accounting: array-indexed, no allocation after a
   (event, class) pair's first occurrence; nothing at all without obs *)
let bump_slot t event cls =
  match t.obs with
  | None -> ()
  | Some reg ->
      let slot = (event * n_classes) + cls in
      let c =
        match t.class_counters.(slot) with
        | Some c -> c
        | None ->
            let c =
              Obs.Registry.counter reg
                (Printf.sprintf "hpe.%s.%s.%s" (node_name t)
                   event_names.(event) class_names.(cls))
            in
            t.class_counters.(slot) <- Some c;
            c
      in
      Obs.Counter.incr c

let bump_class t event id = bump_slot t event (class_of_id id)

(* The rx gate's decision, shared between the per-frame gate closure
   planted on the node and the bulk candump-replay path. *)
let rx_decide t (frame : Secpol_can.Frame.t) =
  (* impersonation detection: a frame arriving with an ID this node is
     the sole producer of cannot be genuine.  Detection, not prevention:
     the frame is flagged but filtering is still governed by the approved
     reading list. *)
  (match frame.Secpol_can.Frame.id with
  | Secpol_can.Identifier.Standard id when Hashtbl.mem t.own_ids id ->
      Obs.Counter.incr t.spoof_alerts
  | Secpol_can.Identifier.Standard _ | Secpol_can.Identifier.Extended _ -> ());
  let accept =
    (* fail closed: a register file that no longer matches its sealed
       checksum cannot be trusted to encode the provisioned policy, so
       the gate denies everything until re-provisioning restores it *)
    if not (Registers.integrity_ok t.regs) then begin
      Obs.Counter.incr t.integrity_blocks;
      false
    end
    else
      (not (Registers.read_filter_enabled t.regs))
      || Decision.decide t.read_block frame = Decision.Grant
  in
  bump_class t (if accept then 0 else 1) frame.Secpol_can.Frame.id;
  accept

let install ?obs node =
  let regs = Registers.create () in
  let read_block = Decision.create Decision.Reading (Registers.read_list regs) in
  let write_block = Decision.create Decision.Writing (Registers.write_list regs) in
  let t =
    { node; regs; read_block; write_block; rates = Rate_limiter.create ();
      rate_blocks = Obs.Counter.create ();
      integrity_blocks = Obs.Counter.create ();
      own_ids = Hashtbl.create 8;
      spoof_alerts = Obs.Counter.create (); obs;
      class_counters = Array.make (Array.length event_names * n_classes) None }
  in
  (match obs with
  | None -> ()
  | Some reg ->
      let name = Node.name node in
      let register suffix c =
        Obs.Registry.register_counter reg
          (Printf.sprintf "hpe.%s.%s" name suffix) c
      in
      let rg, rb = Decision.counters read_block in
      let wg, wb = Decision.counters write_block in
      register "read.grants" rg;
      register "read.blocks" rb;
      register "write.grants" wg;
      register "write.blocks" wb;
      register "rate_blocks" t.rate_blocks;
      register "integrity_blocks" t.integrity_blocks;
      register "spoof_alerts" t.spoof_alerts);
  let now () = Secpol_sim.Engine.now (Secpol_can.Bus.sim (Node.bus node)) in
  Node.set_rx_gate node ~name:gate_name (fun frame -> rx_decide t frame);
  Node.set_tx_gate node ~name:gate_name (fun frame ->
      let accept =
        if not (Registers.integrity_ok regs) then begin
          Obs.Counter.incr t.integrity_blocks;
          false
        end
        else
          (not (Registers.write_filter_enabled regs))
          ||
        if Decision.decide write_block frame <> Decision.Grant then false
        else
          match frame.Secpol_can.Frame.id with
          | Secpol_can.Identifier.Standard id ->
              let ok = Rate_limiter.admit t.rates ~now:(now ()) ~msg_id:id in
              if not ok then Obs.Counter.incr t.rate_blocks;
              ok
          | Secpol_can.Identifier.Extended _ -> true
      in
      bump_class t (if accept then 2 else 3) frame.Secpol_can.Frame.id;
      accept);
  t

let registers t = t.regs

let load_rates t (config : Config.t) =
  Rate_limiter.clear t.rates;
  List.iter
    (fun (msg_id, rate) -> Rate_limiter.set t.rates ~msg_id rate)
    config.Config.write_rates;
  Hashtbl.reset t.own_ids;
  List.iter (fun id -> Hashtbl.replace t.own_ids id ()) config.Config.own_ids

let provision t config =
  match Config.provision t.regs config () with
  | Error _ as e -> e
  | Ok () ->
      (* the rate table freezes under the same lock as the lists *)
      load_rates t config;
      Ok ()

let provision_unlocked t config =
  match Config.provision t.regs config ~lock:false () with
  | Error _ as e -> e
  | Ok () ->
      load_rates t config;
      Ok ()

let locked t = Registers.locked t.regs

let read_grants t = Decision.grants t.read_block

let read_blocks t = Decision.blocks t.read_block

let write_grants t = Decision.grants t.write_block

let write_blocks t = Decision.blocks t.write_block

let rate_blocks t = Obs.Counter.value t.rate_blocks

let integrity_blocks t = Obs.Counter.value t.integrity_blocks

let integrity_ok t = Registers.integrity_ok t.regs

let spoof_alerts t = Obs.Counter.value t.spoof_alerts

let uninstall t = Node.clear_gates t.node

(* ------------------------------------------------------------------ *)
(* Bulk gating                                                         *)
(* ------------------------------------------------------------------ *)

let gate_rx_batch t ?n ~(ids : int array) ~(out : bool array) () =
  let n = match n with None -> Array.length ids | Some n -> n in
  if n < 0 || n > Array.length ids then
    invalid_arg "Hpe.Engine.gate_rx_batch: n outside the ids column";
  if Array.length out < n then
    invalid_arg "Hpe.Engine.gate_rx_batch: out array shorter than the batch";
  (* the register file cannot change mid-batch (nothing yields), so the
     integrity and filter-enable checks of the per-frame gate hoist out of
     the loop; each arm below is counter-for-counter what n calls of
     [rx_decide] on standard-ID frames would record *)
  if not (Registers.integrity_ok t.regs) then
    for i = 0 to n - 1 do
      let id = ids.(i) in
      if Hashtbl.mem t.own_ids id then Obs.Counter.incr t.spoof_alerts;
      Obs.Counter.incr t.integrity_blocks;
      bump_slot t 1 (class_of_std id);
      out.(i) <- false
    done
  else if not (Registers.read_filter_enabled t.regs) then
    for i = 0 to n - 1 do
      let id = ids.(i) in
      if Hashtbl.mem t.own_ids id then Obs.Counter.incr t.spoof_alerts;
      bump_slot t 0 (class_of_std id);
      out.(i) <- true
    done
  else
    for i = 0 to n - 1 do
      let id = ids.(i) in
      if Hashtbl.mem t.own_ids id then Obs.Counter.incr t.spoof_alerts;
      let accept = Decision.decide_std t.read_block id in
      bump_slot t (if accept then 0 else 1) (class_of_std id);
      out.(i) <- accept
    done

type replay = { frames : int; accepted : int; dropped : int }

let replay_chunk = 1024

let replay_candump t records =
  let ids = Array.make replay_chunk 0 in
  let out = Array.make replay_chunk false in
  let accepted = ref 0 in
  let frames = ref 0 in
  let fill = ref 0 in
  let flush () =
    if !fill > 0 then begin
      gate_rx_batch t ~n:!fill ~ids ~out ();
      for i = 0 to !fill - 1 do
        if out.(i) then incr accepted
      done;
      frames := !frames + !fill;
      fill := 0
    end
  in
  List.iter
    (fun (r : Secpol_can.Candump.record) ->
      match r.frame.Secpol_can.Frame.id with
      | Secpol_can.Identifier.Standard id ->
          ids.(!fill) <- id;
          incr fill;
          if !fill = replay_chunk then flush ()
      | Secpol_can.Identifier.Extended _ ->
          (* drain the pending standard-ID column first so the engine's
             counters advance in capture order *)
          flush ();
          incr frames;
          if rx_decide t r.frame then incr accepted)
    records;
  flush ();
  { frames = !frames; accepted = !accepted; dropped = !frames - !accepted }

let pp_stats ppf t =
  Format.fprintf ppf "%s: read grant=%d block=%d; write grant=%d block=%d%s"
    (node_name t) (read_grants t) (read_blocks t) (write_grants t)
    (write_blocks t)
    (if locked t then " [locked]" else "")
