(** The hardware policy engine, installed on a CAN node (paper Fig. 4).

    The engine owns a register file and two decision blocks.  [install]
    plants read/write gates between the node's transceiver and controller;
    the gates consult the decision blocks, which consult the approved lists
    in the register file.  The engine is *transparent*: node firmware (the
    processor callback, the acceptance filters) is untouched, and once the
    register file is locked firmware cannot influence filtering at all. *)

type t

val install : ?obs:Secpol_obs.Registry.t -> Secpol_can.Node.t -> t
(** Create an HPE with a reset register file and attach its gates to the
    node.  Until filters are enabled by provisioning, everything passes.

    [obs] exports the engine's counters under [hpe.<node>.*]: the decision
    blocks' [read/write.grants/blocks], the behavioural [rate_blocks] and
    the impersonation [spoof_alerts], plus per-frame accept/drop tallies
    keyed by message-id class ([hpe.<node>.rx.accept.safety], ...).  The
    class counters materialise lazily on the first frame of that class, so
    a snapshot only lists traffic the node actually saw; without [obs] the
    gates do no per-class work at all. *)

val node_name : t -> string

val registers : t -> Registers.t

val provision : t -> Config.t -> (unit, string) result
(** {!Config.provision} with both filters enabled and the lock set. *)

val provision_unlocked : t -> Config.t -> (unit, string) result
(** Same but without locking — for the ablation that shows why the lock
    matters. *)

val locked : t -> bool

val read_grants : t -> int

val read_blocks : t -> int

val write_grants : t -> int

val write_blocks : t -> int

val rate_blocks : t -> int
(** Writes that passed the approved list but exceeded their behavioural
    budget (see {!Rate_limiter}). *)

val integrity_ok : t -> bool
(** {!Registers.integrity_ok} of this engine's register file. *)

val integrity_blocks : t -> int
(** Frames denied because the register file failed its checksum: after
    out-of-band corruption (fault injection, bit flips) both gates fail
    closed and every crossing frame lands here until the file is
    re-provisioned. *)

val spoof_alerts : t -> int
(** Incoming frames carrying an ID this node exclusively produces
    ({!Config.t.own_ids}) — somebody on the bus is impersonating it.
    Alert-only: per-ID filtering cannot prove which copy is genuine, so
    the frame's fate is still decided by the reading list; the alert
    feeds intrusion detection. *)

val uninstall : t -> unit
(** Remove the gates from the node (for baseline comparisons). *)

val gate_rx_batch : t -> ?n:int -> ids:int array -> out:bool array -> unit -> unit
(** Run the first [n] (default: all) raw standard IDs of the [ids] column
    through the rx gate in bulk, writing each frame's accept verdict into
    [out.(i)].  Counter-for-counter equivalent to the per-frame gate on
    the same IDs — spoof alerts, integrity blocks, read grants/blocks and
    per-class tallies all advance identically — but the integrity and
    filter-enable register checks are hoisted out of the loop (nothing
    can change the register file mid-batch), and membership is tested
    with {!Approved_list.mem_std}, so the loop allocates nothing on the
    [Bitset] and [Intervals] backends.  This is the shape bulk candump
    replay decomposes into.
    @raise Invalid_argument when [n] is outside [ids] or [out] is shorter
    than the batch. *)

type replay = {
  frames : int;  (** records judged *)
  accepted : int;  (** frames the rx gate passed *)
  dropped : int;  (** frames the rx gate blocked *)
}

val replay_candump : t -> Secpol_can.Candump.record list -> replay
(** Replay a parsed candump capture ({!Secpol_can.Candump.import})
    through this engine's rx gate, without a simulator: standard-ID runs
    are packed into a reusable column and judged with {!gate_rx_batch}
    (flushed at chunk boundaries and before any extended-ID frame, so
    counters advance in capture order); extended frames take the
    per-frame path.  Useful for asking "what would this HPE have dropped
    from a real capture?" at bulk speed. *)

val pp_stats : Format.formatter -> t -> unit
