module Rate_window = Secpol_policy.Rate_window

type entry = { rate : Secpol_policy.Ast.rate; win : Rate_window.t }

type t = (int, entry) Hashtbl.t

let create () : t = Hashtbl.create 16

let set t ~msg_id rate =
  Hashtbl.replace t msg_id { rate; win = Rate_window.of_rate rate }

let remove t ~msg_id = Hashtbl.remove t msg_id

let clear t = Hashtbl.reset t

let limit t ~msg_id =
  Option.map (fun e -> e.rate) (Hashtbl.find_opt t msg_id)

let limits t =
  Hashtbl.fold (fun id e acc -> (id, e.rate) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let admit t ~now ~msg_id =
  match Hashtbl.find_opt t msg_id with
  | None -> true
  | Some e -> Rate_window.admit e.win ~now

let reset_state t = Hashtbl.iter (fun _ e -> Rate_window.reset e.win) t
