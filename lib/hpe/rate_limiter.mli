(** Hardware rate limiter: the HPE's behavioural-policy block.

    Per approved message ID, an optional sliding-window budget: at most
    [count] transmissions per [window_ms].  This hardens the residual cases
    where a legitimate writer is compromised — the forged traffic is shaped
    down to the designed rate (e.g. a lock-command replay storm).  The
    table is provisioned together with the approved lists and is frozen by
    the same lock bit.

    Window edge semantics (grant expiry at exactly [grant + window]) are
    those of {!Secpol_policy.Rate_window}, the same implementation the
    software policy engine uses — hardware and software budgets cannot
    drift apart. *)

type t

val create : unit -> t
(** Empty table: every ID unlimited. *)

val set : t -> msg_id:int -> Secpol_policy.Ast.rate -> unit
(** Install or replace the budget for one ID. *)

val remove : t -> msg_id:int -> unit

val clear : t -> unit

val limit : t -> msg_id:int -> Secpol_policy.Ast.rate option

val limits : t -> (int * Secpol_policy.Ast.rate) list
(** Sorted by message ID. *)

val admit : t -> now:float -> msg_id:int -> bool
(** [true] when the ID carries no budget or the budget has room; admission
    consumes one unit. *)

val reset_state : t -> unit
(** Forget consumption history but keep the configured budgets. *)
