type t = {
  read_list : Approved_list.t;
  write_list : Approved_list.t;
  mutable read_enable : bool;
  mutable write_enable : bool;
  mutable locked : bool;
  (* checksum over the whole file, refreshed on every *programmed* write:
     only out-of-band corruption (a bit flip in the approved-list RAM, not
     a register-interface write) can make the stored and recomputed values
     diverge *)
  mutable sealed : int;
}

let ctrl = 0x00

let status = 0x04

let cmd_add_read = 0x08

let cmd_add_write = 0x0C

let cmd_clear = 0x10

let count_read = 0x14

let count_write = 0x18

(* FNV-1a over the register file contents.  Approved lists hash their
   sorted ID sequence, so the checksum is independent of insertion order
   and of the list backend. *)
let checksum t =
  let fnv_prime = 0x100000001b3 in
  let h = ref 0x2545F4914F6CDD1D in
  let mix v =
    h := !h lxor v;
    h := !h * fnv_prime
  in
  let mix_list list tag =
    mix tag;
    List.iter
      (fun id ->
        mix
          (match id with
          | Secpol_can.Identifier.Standard v -> v
          | Secpol_can.Identifier.Extended v -> v lor 0x4000_0000))
      (Approved_list.to_ids list)
  in
  mix_list t.read_list 1;
  mix_list t.write_list 2;
  mix
    (Bool.to_int t.read_enable
    lor (Bool.to_int t.write_enable lsl 1)
    lor (Bool.to_int t.locked lsl 2));
  !h land max_int

let reseal t = t.sealed <- checksum t

let integrity_ok t = t.sealed = checksum t

let create () =
  let t =
    {
      read_list = Approved_list.create ();
      write_list = Approved_list.create ();
      read_enable = false;
      write_enable = false;
      locked = false;
      sealed = 0;
    }
  in
  reseal t;
  t

let read_list t = t.read_list

let write_list t = t.write_list

let read_filter_enabled t = t.read_enable

let write_filter_enabled t = t.write_enable

let locked t = t.locked

let ctrl_value t =
  Bool.to_int t.read_enable
  lor (Bool.to_int t.write_enable lsl 1)
  lor (Bool.to_int t.locked lsl 2)

let write_reg_unsealed t ~addr value =
  if t.locked && not (addr = ctrl && value = ctrl_value t) then
    Error "HPE register file is locked"
  else if addr = ctrl then begin
    t.read_enable <- value land 1 <> 0;
    t.write_enable <- value land 2 <> 0;
    if value land 4 <> 0 then t.locked <- true;
    Ok ()
  end
  else if addr = cmd_add_read || addr = cmd_add_write then
    if value < 0 || value > 0x7FF then
      Error (Printf.sprintf "CAN id 0x%x outside 11-bit range" value)
    else begin
      let list = if addr = cmd_add_read then t.read_list else t.write_list in
      Approved_list.add list (Secpol_can.Identifier.standard value);
      Ok ()
    end
  else if addr = cmd_clear then begin
    Approved_list.clear t.read_list;
    Approved_list.clear t.write_list;
    Ok ()
  end
  else if addr = status || addr = count_read || addr = count_write then
    Error (Printf.sprintf "register 0x%02x is read-only" addr)
  else Error (Printf.sprintf "unknown register 0x%02x" addr)

let write_reg t ~addr value =
  match write_reg_unsealed t ~addr value with
  | Ok () ->
      reseal t;
      Ok ()
  | Error _ as e -> e

let read_reg t ~addr =
  if addr = ctrl || addr = status then Ok (ctrl_value t)
  else if addr = count_read then Ok (Approved_list.cardinal t.read_list)
  else if addr = count_write then Ok (Approved_list.cardinal t.write_list)
  else if addr = cmd_add_read || addr = cmd_add_write || addr = cmd_clear then
    Error (Printf.sprintf "register 0x%02x is write-only" addr)
  else Error (Printf.sprintf "unknown register 0x%02x" addr)

let hard_reset t =
  Approved_list.clear t.read_list;
  Approved_list.clear t.write_list;
  t.read_enable <- false;
  t.write_enable <- false;
  t.locked <- false;
  reseal t
