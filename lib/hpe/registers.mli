(** Memory-mapped register interface of the HPE.

    The engine is configured the way real security IP is: boot firmware
    writes its approved lists through a small register file, then sets the
    lock bit.  Once locked, every further write is refused until hardware
    reset — this is what keeps the HPE out of reach of compromised
    firmware. *)

type t

(** Register map (word addresses): *)

val ctrl : int
(** 0x00 — bit0: read filter enable; bit1: write filter enable;
    bit2: lock (write-once). *)

val status : int
(** 0x04 — read-only; bit0/bit1 mirror the enables, bit2 the lock. *)

val cmd_add_read : int
(** 0x08 — write a standard CAN ID to approve it for reading. *)

val cmd_add_write : int
(** 0x0C — write a standard CAN ID to approve it for writing. *)

val cmd_clear : int
(** 0x10 — write any value to clear both approved lists. *)

val count_read : int
(** 0x14 — read-only; cardinality of the approved reading list. *)

val count_write : int
(** 0x18 — read-only; cardinality of the approved writing list. *)

val create : unit -> t
(** Reset state: filters disabled, unlocked, empty lists. *)

val read_list : t -> Approved_list.t

val write_list : t -> Approved_list.t

val read_filter_enabled : t -> bool

val write_filter_enabled : t -> bool

val locked : t -> bool

val write_reg : t -> addr:int -> int -> (unit, string) result
(** Refused when locked (except that re-writing CTRL with the lock bit
    already set is idempotent), on read-only or unknown addresses, and on
    out-of-range IDs. *)

val read_reg : t -> addr:int -> (int, string) result

val hard_reset : t -> unit
(** Clears everything including the lock — models a power cycle with
    re-provisioning, not something reachable from software. *)

val checksum : t -> int
(** Order-insensitive FNV-1a digest of the whole register file (both
    approved lists, the enables, the lock bit). *)

val integrity_ok : t -> bool
(** The register file re-seals its stored checksum on every successful
    {!write_reg} (the authorised programming path) and on {!hard_reset};
    [integrity_ok] recomputes the digest and compares.  [false] therefore
    means the file was altered out of band — a bit flip or glitch attack
    on the approved-list RAM — and the engine's gates must fail closed
    (deny everything) rather than enforce a corrupted policy. *)
