module Ast = Secpol_policy.Ast
module Ir = Secpol_policy.Ir
module Table = Secpol_policy.Table
module Engine = Secpol_policy.Engine
module Batch = Secpol_policy.Batch
module Verify = Secpol_policy.Verify
module Json = Secpol_policy.Json
module Rng = Secpol_sim.Rng
module Plan = Secpol_faults.Plan
module Histogram = Secpol_obs.Histogram
module Clock = Secpol_obs.Clock
module Partition = Secpol_par.Partition
module Names = Secpol_vehicle.Names
module Modes = Secpol_vehicle.Modes
module Policy_map = Secpol_vehicle.Policy_map
module Instance = Secpol_vehicle.Instance
module Threat_catalog = Secpol_vehicle.Threat_catalog

type stage = { name : string; fraction : float; start_day : float }

type config = {
  fleet : int;
  seed : int64;
  domains : int;
  stages : stage list;
  ota_mean_days : float;
  recall_mean_days : float;
  recall_no_show : float;
  horizon_days : float;
  tick_days : float;
  plan : Plan.t;
  threat_id : string;
  lock_bursts_every : int;
}

let default_config ?(fleet = 100_000) ?(seed = 42L) ?(domains = 1)
    ?(quick = false) () =
  let horizon_days = 30.0 in
  {
    fleet;
    seed;
    domains;
    stages =
      [
        { name = "canary"; fraction = 0.01; start_day = 0.0 };
        { name = "cohort"; fraction = 0.10; start_day = 2.0 };
        { name = "fleet"; fraction = 1.0; start_day = 5.0 };
      ];
    ota_mean_days = 3.0;
    recall_mean_days = 90.0;
    recall_no_show = 0.25;
    horizon_days;
    tick_days = (if quick then 0.5 else 0.25);
    plan = Plan.threat_trigger ~at:6.0 ~horizon:horizon_days ();
    threat_id = Threat_catalog.door_lock_in_accident;
    lock_bursts_every = (if quick then 32 else 16);
  }

(* ---------- validation ---------- *)

let validate cfg =
  let err fmt = Printf.ksprintf (fun m -> Error ("campaign: " ^ m)) fmt in
  if cfg.fleet <= 0 then err "fleet must be positive"
  else if cfg.domains < 1 then err "domains must be >= 1"
  else if cfg.horizon_days <= 0.0 then err "horizon must be positive"
  else if cfg.tick_days <= 0.0 then err "tick must be positive"
  else if cfg.ota_mean_days <= 0.0 then err "ota mean must be positive"
  else if cfg.recall_mean_days <= 0.0 then err "recall mean must be positive"
  else if cfg.recall_no_show < 0.0 || cfg.recall_no_show > 1.0 then
    err "recall no-show outside [0,1]"
  else if cfg.stages = [] then err "no rollout stages"
  else begin
    let rec stages_ok prev_f prev_d = function
      | [] -> Ok ()
      | s :: rest ->
          if s.fraction <= prev_f || s.fraction > 1.0 then
            err "stage %S: fractions must ascend within (0,1]" s.name
          else if s.start_day < prev_d then
            err "stage %S: start days must not decrease" s.name
          else stages_ok s.fraction s.start_day rest
    in
    match stages_ok 0.0 0.0 cfg.stages with
    | Error _ as e -> e
    | Ok () -> (
        match Plan.threat_window cfg.plan with
        | None -> err "plan %S carries no threat window" cfg.plan.Plan.name
        | Some (t_on, _, _) when t_on >= cfg.horizon_days ->
            err "threat activates at day %g, past the %g-day horizon" t_on
              cfg.horizon_days
        | Some _ -> (
            match Threat_catalog.find cfg.threat_id with
            | None -> err "unknown threat id %S" cfg.threat_id
            | Some row -> Ok row))
  end

(* ---------- verifier gate ---------- *)

type gate = {
  widened : int;
  tightened : int;
  changed : int;
  violations_before : int;
  violations_after : int;
  passed : bool;
}

let violations ~obligations db =
  let r = Verify.analyse ~obligations db in
  List.fold_left
    (fun acc (s : Verify.obligation_status) -> acc + List.length s.violations)
    0 r.Verify.obligations

let gate ~old_db ~new_db () =
  let d = Verify.diff old_db new_db in
  let widened = Verify.count_direction Verify.Widened d in
  let tightened = Verify.count_direction Verify.Tightened d in
  let changed = Verify.count_direction Verify.Changed d in
  let obligations = Threat_catalog.obligations () in
  let violations_before = violations ~obligations old_db in
  let violations_after = violations ~obligations new_db in
  {
    widened;
    tightened;
    changed;
    violations_before;
    violations_after;
    passed = widened = 0 && violations_after <= violations_before;
  }

(* ---------- reports ---------- *)

type channel_report = {
  mitigated : int;
  never : int;
  p50_days : float;
  p99_days : float;
  mean_days : float;
}

type stage_report = {
  stage : stage;
  gate_passed : bool;
  started : bool;
  vehicles : int;
  adopted : int;
}

type report = {
  config : config;
  threat_title : string;
  threat_day : float;
  gate : gate;
  stages : stage_report list;
  versions : (int * int) list;
  decisions : int;
  benign_denied : int;
  lock_allowed : int;
  lock_denied : int;
  ota : channel_report;
  recall : channel_report;
  speedup_p50 : float;
  elapsed_s : float;
  throughput_per_s : float;
}

(* ---------- per-vehicle determinism ---------- *)

let golden = 0x9E3779B97F4A7C15L

(* one independent stream per (seed, vehicle); a second, salted stream
   for the recall baseline so the comparator can never perturb the OTA
   draws *)
let vehicle_seed seed id = Int64.add seed (Int64.mul golden (Int64.of_int (id + 1)))

let recall_salt = 0x5DEECE66DA5A5A5AL

let stage_index stages u =
  let rec go i = function
    | [] -> None
    | s :: rest -> if u < s.fraction then Some i else go (i + 1) rest
  in
  go 0 stages

(* day-scale log histogram: first bucket one quarter-day, range out past
   any recall tail; both channels use the same layout so either merges
   across shards *)
let day_histogram () = Histogram.create ~lo:0.25 ~ratio:1.25 ~buckets:48 ()

(* ---------- benign traffic ---------- *)

(* Designed normal-mode traffic: each message probed as its first designed
   producer (write) and first designed consumer (read).  Lock-command
   writes are excluded — under the hardened version they ground in a
   rate-limited rule, and budget-dependent traffic must go through the
   owning instance, not a shared engine. *)
let benign_templates () =
  let module M = Secpol_vehicle.Messages in
  let normal = Modes.name Modes.Normal in
  M.all
  |> List.concat_map (fun (m : M.t) ->
         if not (m.modes = [] || List.mem Modes.Normal m.modes) then []
         else begin
           let write =
             match m.producers with
             | p :: _ when m.id <> M.lock_command ->
                 [
                   {
                     Ir.mode = normal;
                     subject = Names.asset_of_node p;
                     asset = m.asset;
                     op = Ir.Write;
                     msg_id = Some m.id;
                   };
                 ]
             | _ -> []
           in
           let read =
             match m.consumers with
             | c :: _ ->
                 [
                   {
                     Ir.mode = normal;
                     subject = Names.asset_of_node c;
                     asset = m.asset;
                     op = Ir.Read;
                     msg_id = Some m.id;
                   };
                 ]
             | [] -> []
           in
           write @ read
         end)
  |> Array.of_list

(* ---------- shard execution ---------- *)

type shard_out = {
  s_decisions : int;
  s_benign_denied : int;
  s_lock_allowed : int;
  s_lock_denied : int;
  s_assigned : int array;
  s_adopted : int array;
  s_old_count : int;
  s_new_count : int;
  s_hist : Histogram.t;
  s_recall_hist : Histogram.t;
  s_recall_never : int;
}

type lane = {
  engine : Engine.t;
  batch : Batch.t;
  owners : int array;
  kinds : Bytes.t;
}

let chunk = 4096

let kind_benign = '\000'

let kind_attack = '\001'

let run_shard ~(cfg : config) ~gate_passed ~table_old ~db_old ~table_new
    ~db_new ~lock_rules_old ~lock_rules_new ~benign ~attack ~lock_template
    ~t_on ~t_off ids =
  let n = Array.length ids in
  let stages = Array.of_list cfg.stages in
  let n_stages = Array.length stages in
  let v_old = db_old.Ir.version and v_new = db_new.Ir.version in
  let lane table db =
    {
      engine = Engine.of_table ~cache:false table db;
      batch = Batch.create ~capacity:chunk ();
      owners = Array.make chunk 0;
      kinds = Bytes.make chunk kind_benign;
    }
  in
  let lane_old = lane table_old db_old and lane_new = lane table_new db_new in
  let out = Array.make chunk Ast.Deny in
  let decisions = ref 0
  and benign_denied = ref 0
  and lock_allowed = ref 0
  and lock_denied = ref 0
  and recall_never = ref 0 in
  let assigned = Array.make n_stages 0 and adopted = Array.make n_stages 0 in
  let hist = day_histogram () and recall_hist = day_histogram () in
  let insts = Array.map (fun id -> Instance.create ~id ~version:v_old ()) ids in
  let adopt = Array.make n infinity in
  let stage_of = Array.make n (-1) in
  let ttm = Array.make n infinity in
  for i = 0 to n - 1 do
    let id = ids.(i) in
    let rng = Rng.create (vehicle_seed cfg.seed id) in
    let u = Rng.float rng 1.0 in
    (match stage_index cfg.stages u with
    | Some s ->
        stage_of.(i) <- s;
        assigned.(s) <- assigned.(s) + 1;
        if gate_passed then
          adopt.(i) <-
            stages.(s).start_day +. Rng.exponential rng cfg.ota_mean_days
    | None -> ());
    let rrng = Rng.create (Int64.logxor (vehicle_seed cfg.seed id) recall_salt) in
    if Rng.chance rrng cfg.recall_no_show then incr recall_never
    else begin
      (* the recall comparator is statistical and untruncated: recalls run
         for years, so exposure simply ends when the garage visit lands *)
      let landed = Rng.exponential rrng cfg.recall_mean_days in
      Histogram.observe recall_hist (Float.max 0.0 (landed -. t_on))
    end
  done;
  let flush ~day lane =
    let len = Batch.length lane.batch in
    if len > 0 then begin
      Engine.decide_batch lane.engine lane.batch ~out;
      for j = 0 to len - 1 do
        let i = lane.owners.(j) in
        if Bytes.get lane.kinds j = kind_attack then begin
          if out.(j) = Ast.Deny && ttm.(i) = infinity then begin
            ttm.(i) <- day;
            Histogram.observe hist (day -. t_on)
          end
        end
        else if out.(j) = Ast.Deny then incr benign_denied
      done;
      decisions := !decisions + len;
      Batch.clear lane.batch
    end
  in
  let push ~day ~now lane i kind req =
    if Batch.length lane.batch = chunk then flush ~day lane;
    let j = Batch.length lane.batch in
    lane.owners.(j) <- i;
    Bytes.set lane.kinds j kind;
    Batch.push ~now lane.batch req
  in
  let n_benign = Array.length benign in
  let ticks = int_of_float (ceil (cfg.horizon_days /. cfg.tick_days)) in
  for k = 0 to ticks - 1 do
    let day = float_of_int k *. cfg.tick_days in
    let now = day *. 86_400.0 in
    let threat_live = day >= t_on && day < t_off in
    for i = 0 to n - 1 do
      let inst = insts.(i) in
      if Instance.version inst = v_old && day >= adopt.(i) then begin
        Instance.install inst ~version:v_new;
        adopted.(stage_of.(i)) <- adopted.(stage_of.(i)) + 1
      end;
      let on_new = Instance.version inst = v_new in
      let lane = if on_new then lane_new else lane_old in
      push ~day ~now lane i kind_benign
        benign.((Instance.id inst + k) mod n_benign);
      if threat_live && ttm.(i) = infinity then
        push ~day ~now lane i kind_attack attack;
      if
        cfg.lock_bursts_every > 0
        && (k + Instance.id inst) mod cfg.lock_bursts_every = 0
      then begin
        let rules, default =
          if on_new then (lock_rules_new, db_new.Ir.default)
          else (lock_rules_old, db_old.Ir.default)
        in
        let req = { lock_template with Ir.mode = Instance.mode inst } in
        for _ = 1 to 3 do
          match Instance.decide inst ~rules ~default ~now req with
          | Ast.Allow -> incr lock_allowed
          | Ast.Deny -> incr lock_denied
        done
      end
    done;
    flush ~day lane_old;
    flush ~day lane_new
  done;
  let old_count = ref 0 in
  Array.iter
    (fun inst -> if Instance.version inst = v_old then incr old_count)
    insts;
  {
    s_decisions = !decisions;
    s_benign_denied = !benign_denied;
    s_lock_allowed = !lock_allowed;
    s_lock_denied = !lock_denied;
    s_assigned = assigned;
    s_adopted = adopted;
    s_old_count = !old_count;
    s_new_count = n - !old_count;
    s_hist = hist;
    s_recall_hist = recall_hist;
    s_recall_never = !recall_never;
  }

(* ---------- the campaign ---------- *)

let channel_report ~fleet_never hist =
  let mitigated = Histogram.count hist in
  if mitigated = 0 then
    { mitigated; never = fleet_never; p50_days = 0.0; p99_days = 0.0; mean_days = 0.0 }
  else
    (* percentiles are bucket bounds (exact whatever the merge order);
       the mean is a float sum, so round to a microday to keep the
       report byte-identical across domain counts *)
    let microday x = Float.round (x *. 1e6) /. 1e6 in
    {
      mitigated;
      never = fleet_never;
      p50_days = Histogram.percentile hist 50.0;
      p99_days = Histogram.percentile hist 99.0;
      mean_days = microday (Histogram.mean hist);
    }

let run ?(old_policy = Policy_map.baseline ~version:1 ())
    ?(new_policy = Policy_map.hardened ~version:2 ()) cfg =
  match validate cfg with
  | Error _ as e -> e
  | Ok row ->
      let started_at = Clock.now () in
      let db_old = Policy_map.compile old_policy
      and db_new = Policy_map.compile new_policy in
      if db_old.Ir.version = db_new.Ir.version then
        Error "campaign: update must change the policy version"
      else begin
        (* the only two table compiles of the whole campaign: every
           vehicle on a version shares that version's table *)
        let table_old = Table.compile ~strategy:Engine.Deny_overrides db_old in
        let table_new = Table.compile ~strategy:Engine.Deny_overrides db_new in
        let g = gate ~old_db:db_old ~new_db:db_new () in
        let t_on, t_off, msg_id =
          match Plan.threat_window cfg.plan with
          | Some w -> w
          | None -> assert false (* validated *)
        in
        let threat = row.Threat_catalog.threat in
        let attack =
          (* the forged frame as the policy layer sees it: the threat's
             live mode, arriving over its first entry point *)
          let mode =
            match threat.Secpol_threat.Threat.modes with
            | m :: _ -> m
            | [] -> Modes.name Modes.Normal
          in
          let subject =
            match threat.Secpol_threat.Threat.entry_points with
            | ep :: _ -> (
                match Names.nodes_of_entry_point ep with
                | node :: _ -> Names.asset_of_node node
                | [] -> Verify.other)
            | [] -> Verify.other
          in
          {
            Ir.mode;
            subject;
            asset = threat.Secpol_threat.Threat.asset;
            op = Ir.Write;
            msg_id = Some msg_id;
          }
        in
        let lock_template =
          {
            Ir.mode = Modes.name Modes.Normal;
            subject = Names.asset_connectivity;
            asset = Names.door_locks;
            op = Ir.Write;
            msg_id = Some Secpol_vehicle.Messages.lock_command;
          }
        in
        let lock_rules_old = Ir.rules_for_asset db_old Names.door_locks in
        let lock_rules_new = Ir.rules_for_asset db_new Names.door_locks in
        let benign = benign_templates () in
        let shards =
          Partition.assign_by ~shards:cfg.domains string_of_int
            (Array.init cfg.fleet Fun.id)
        in
        let shard ids =
          run_shard ~cfg ~gate_passed:g.passed ~table_old ~db_old ~table_new
            ~db_new ~lock_rules_old ~lock_rules_new ~benign ~attack
            ~lock_template ~t_on ~t_off ids
        in
        let outs =
          if cfg.domains = 1 then [| shard shards.(0) |]
          else
            shards
            |> Array.map (fun ids -> Domain.spawn (fun () -> shard ids))
            |> Array.map Domain.join
        in
        let sum f = Array.fold_left (fun acc o -> acc + f o) 0 outs in
        let sum_at f s =
          Array.fold_left (fun acc o -> acc + (f o).(s)) 0 outs
        in
        let merge_hists f =
          Array.fold_left
            (fun acc o -> Histogram.merge acc (f o))
            (day_histogram ()) outs
        in
        let hist = merge_hists (fun o -> o.s_hist) in
        let recall_hist = merge_hists (fun o -> o.s_recall_hist) in
        let decisions = sum (fun o -> o.s_decisions) in
        let ota =
          channel_report ~fleet_never:(cfg.fleet - Histogram.count hist) hist
        in
        let recall =
          channel_report
            ~fleet_never:(sum (fun o -> o.s_recall_never))
            recall_hist
        in
        let speedup_p50 =
          if ota.mitigated = 0 || recall.mitigated = 0 then 0.0
          else recall.p50_days /. Float.max ota.p50_days cfg.tick_days
        in
        let elapsed_s = Clock.now () -. started_at in
        Ok
          {
            config = cfg;
            threat_title = threat.Secpol_threat.Threat.title;
            threat_day = t_on;
            gate = g;
            stages =
              List.mapi
                (fun s stage ->
                  {
                    stage;
                    gate_passed = g.passed;
                    started = g.passed && stage.start_day < cfg.horizon_days;
                    vehicles = sum_at (fun o -> o.s_assigned) s;
                    adopted = sum_at (fun o -> o.s_adopted) s;
                  })
                cfg.stages;
            versions =
              [
                (db_old.Ir.version, sum (fun o -> o.s_old_count));
                (db_new.Ir.version, sum (fun o -> o.s_new_count));
              ];
            decisions;
            benign_denied = sum (fun o -> o.s_benign_denied);
            lock_allowed = sum (fun o -> o.s_lock_allowed);
            lock_denied = sum (fun o -> o.s_lock_denied);
            ota;
            recall;
            speedup_p50;
            elapsed_s;
            throughput_per_s =
              (if elapsed_s > 0.0 then float_of_int decisions /. elapsed_s
               else 0.0);
          }
      end

(* ---------- JSON ---------- *)

let channel_to_json c =
  Json.Obj
    [
      ("mitigated", Json.Int c.mitigated);
      ("never", Json.Int c.never);
      ("p50_days", Json.Float c.p50_days);
      ("p99_days", Json.Float c.p99_days);
      ("mean_days", Json.Float c.mean_days);
    ]

let to_json r =
  let cfg = r.config in
  Json.Obj
    [
      ("schema", Json.Int 1);
      ("suite", Json.String "secpol-campaign");
      ("fleet", Json.Int cfg.fleet);
      ("seed", Json.String (Int64.to_string cfg.seed));
      ("domains", Json.Int cfg.domains);
      ("tick_days", Json.Float cfg.tick_days);
      ("horizon_days", Json.Float cfg.horizon_days);
      ( "threat",
        Json.Obj
          [
            ("id", Json.String cfg.threat_id);
            ("title", Json.String r.threat_title);
            ("activated_day", Json.Float r.threat_day);
            ("plan", Json.String cfg.plan.Plan.name);
          ] );
      ( "gate",
        Json.Obj
          [
            ("passed", Json.Bool r.gate.passed);
            ("widened", Json.Int r.gate.widened);
            ("tightened", Json.Int r.gate.tightened);
            ("changed", Json.Int r.gate.changed);
            ("violations_before", Json.Int r.gate.violations_before);
            ("violations_after", Json.Int r.gate.violations_after);
          ] );
      ( "stages",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("name", Json.String s.stage.name);
                   ("fraction", Json.Float s.stage.fraction);
                   ("start_day", Json.Float s.stage.start_day);
                   ("gate_passed", Json.Bool s.gate_passed);
                   ("started", Json.Bool s.started);
                   ("vehicles", Json.Int s.vehicles);
                   ("adopted", Json.Int s.adopted);
                 ])
             r.stages) );
      ( "versions",
        Json.Obj
          (List.map
             (fun (v, n) -> (string_of_int v, Json.Int n))
             r.versions) );
      ("decisions", Json.Int r.decisions);
      ("benign_denied", Json.Int r.benign_denied);
      ("lock_allowed", Json.Int r.lock_allowed);
      ("lock_denied", Json.Int r.lock_denied);
      ("ota", channel_to_json r.ota);
      ("recall", channel_to_json r.recall);
      ("speedup_p50", Json.Float r.speedup_p50);
      ("elapsed_s", Json.Float r.elapsed_s);
      ("throughput_per_s", Json.Float r.throughput_per_s);
    ]
