(** Fleet-scale policy-update campaigns.

    Where {!Ota} and {!Fleet} model {e when} a new policy version lands on
    each vehicle, a campaign executes the whole update story end to end
    and measures what the update buys: every vehicle is a live
    {!Secpol_vehicle.Instance} making real policy decisions before,
    during and after the rollout, and the campaign records how long each
    vehicle stays exposed to a Table-I threat that goes live mid-run.

    {b Sharing.}  The fleet holds exactly one compiled
    {!Secpol_policy.Table} per policy version — a million instances over
    a two-version rollout share two tables.  Instances are sharded across
    OCaml domains by {!Secpol_par.Partition.assign_by}; each shard owns a
    private {!Secpol_policy.Engine} pair over the shared tables and
    drives its bulk traffic through
    {!Secpol_policy.Engine.decide_batch}.  Requests that can ground in a
    rate-limited rule are routed through the owning instance instead
    (per-vehicle budgets; see {!Secpol_vehicle.Instance.decide}), so a
    shared engine never conflates two vehicles' budgets.

    {b Gating.}  The rollout is staged (canary, then cohort, then fleet)
    and every stage promotion is gated by the semantic verifier: the
    update must not widen any decision region
    ({!Secpol_policy.Verify.diff}) and must not regress any
    threat-derived obligation ({!Secpol_policy.Verify.analyse} over the
    Table-I obligations).  A refused gate halts the rollout before the
    first stage — the fleet keeps answering traffic on the old version,
    which is exactly what the mitigation histogram then shows.

    {b Determinism.}  Per-vehicle randomness is derived from
    [(seed, vehicle id)], stage starts are absolute campaign days and the
    gate is a static property of the two versions, so shards never
    communicate and the report is identical for every [domains] value. *)

type stage = {
  name : string;
  fraction : float;  (** cumulative fleet fraction covered once live *)
  start_day : float;  (** campaign day the stage starts updating *)
}

type config = {
  fleet : int;
  seed : int64;
  domains : int;
  stages : stage list;  (** ordered by [start_day], fractions ascending *)
  ota_mean_days : float;  (** per-vehicle OTA adoption delay mean *)
  recall_mean_days : float;  (** recall-baseline adoption delay mean *)
  recall_no_show : float;  (** recall-baseline no-show probability *)
  horizon_days : float;
  tick_days : float;  (** decision-traffic resolution *)
  plan : Secpol_faults.Plan.t;
      (** fault schedule, read in days; its forged-frame flood
          ({!Secpol_faults.Plan.threat_window}) is the mid-run threat *)
  threat_id : string;  (** Table-I row the flood realises *)
  lock_bursts_every : int;
      (** a vehicle emits a 3-frame lock-command burst every this many
          ticks (exercises per-vehicle budgets); 0 disables *)
}

val default_config :
  ?fleet:int -> ?seed:int64 -> ?domains:int -> ?quick:bool -> unit -> config
(** Canary 1% at day 0, cohort 10% at day 2, full fleet at day 5;
    threat live from day 6; 30-day horizon.  [quick] (default false)
    halves the tick resolution for smoke runs.  Defaults: [fleet]
    100_000, [seed] 42, [domains] 1. *)

(** {2 Verifier gate} *)

type gate = {
  widened : int;  (** decision regions the update makes more permissive *)
  tightened : int;
  changed : int;  (** incomparable deltas (e.g. two different rates) *)
  violations_before : int;  (** obligation violations under the old version *)
  violations_after : int;  (** ... and under the new *)
  passed : bool;  (** [widened = 0] and no obligation regression *)
}

val gate :
  old_db:Secpol_policy.Ir.db -> new_db:Secpol_policy.Ir.db -> unit -> gate
(** The static promotion gate: {!Secpol_policy.Verify.diff} between the
    versions plus {!Secpol_policy.Verify.analyse} of both against the
    Table-I obligations (entry points mapped to subjects as
    [secpolc verify --vehicle] does). *)

(** {2 Running and reporting} *)

type channel_report = {
  mitigated : int;  (** vehicles whose attack probe was denied in time *)
  never : int;  (** vehicles still exposed at the horizon *)
  p50_days : float;  (** 0 when nothing was mitigated *)
  p99_days : float;
  mean_days : float;
}

type stage_report = {
  stage : stage;
  gate_passed : bool;  (** gate verdict at this stage's promotion *)
  started : bool;
  vehicles : int;  (** vehicles assigned to the stage *)
  adopted : int;  (** of those, on the new version by the horizon *)
}

type report = {
  config : config;
  threat_title : string;
  threat_day : float;
  gate : gate;
  stages : stage_report list;
  versions : (int * int) list;  (** version -> vehicle count at horizon *)
  decisions : int;  (** batched decisions served *)
  benign_denied : int;  (** designed traffic denied — 0 on a sound update *)
  lock_allowed : int;  (** burst frames admitted by per-vehicle budgets *)
  lock_denied : int;  (** burst frames shaped off by per-vehicle budgets *)
  ota : channel_report;  (** time-to-mitigation under the staged OTA *)
  recall : channel_report;  (** ... under the recall baseline *)
  speedup_p50 : float;
      (** recall p50 over OTA p50, the latter clamped up to one tick
          (the measurement resolution) *)
  elapsed_s : float;
  throughput_per_s : float;
}

val run :
  ?old_policy:Secpol_policy.Ast.policy ->
  ?new_policy:Secpol_policy.Ast.policy ->
  config ->
  (report, string) result
(** Execute a campaign rolling the fleet from [old_policy] (default
    {!Secpol_vehicle.Policy_map.baseline} v1, which leaves row 14 open)
    to [new_policy] (default {!Secpol_vehicle.Policy_map.hardened} v2,
    which closes it).  Errors on an invalid configuration or a plan
    without a threat window; a {e refused gate} is not an error — the
    report carries the verdict and the unmitigated fleet. *)

val to_json : report -> Secpol_policy.Json.t
(** Stable machine-readable form ([schema] 1).  [elapsed_s] and
    [throughput_per_s] are the only fields that vary between identical
    runs. *)
