module Policy = Secpol_policy
module Rng = Secpol_sim.Rng

type device = { store : Policy.Update.store }

type t = { devices : device array; policy_name : string; rng : Rng.t }

let create ?(seed = 42L) ~size policy =
  if size <= 0 then Error "Fleet.create: size must be positive"
  else begin
    let factory = Policy.Update.bundle policy in
    let make_device _ =
      let store = Policy.Update.create () in
      match Policy.Update.install store factory with
      | Ok () -> Ok { store }
      | Error e -> Error e
    in
    let rec build i acc =
      if i = size then Ok (Array.of_list (List.rev acc))
      else
        match make_device i with
        | Ok d -> build (i + 1) (d :: acc)
        | Error e -> Error e
    in
    match build 0 [] with
    | Error e -> Error e
    | Ok devices ->
        Ok { devices; policy_name = policy.Policy.Ast.name; rng = Rng.create seed }
  end

let size t = Array.length t.devices

let versions t =
  let counts = Hashtbl.create 8 in
  Array.iter
    (fun d ->
      let v =
        match Policy.Update.current d.store t.policy_name with
        | Some b -> b.Policy.Update.version
        | None -> 0
      in
      Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
    t.devices;
  Hashtbl.fold (fun v n acc -> (v, n) :: acc) counts [] |> List.sort compare

type distribution = {
  bundle_version : int;
  adoption_days : float array;
  tampered_rejections : int;
  never : int;
}

let distribute t ?(channel = Ota.Over_the_air) ?params ?(corruption = 0.0)
    bundle =
  let params =
    match params with
    | Some p -> { p with Ota.fleet = size t }
    | None -> { Ota.default_params with Ota.fleet = size t }
  in
  if corruption < 0.0 || corruption >= 1.0 then
    (* exactly 1.0 is rejected rather than admitted: every delivery would
       arrive tampered, the clean-retry loop could never terminate, and a
       fleet where no clean copy can ever land has no distribution to
       report *)
    Error "Fleet.distribute: corruption outside [0,1)"
  else begin
    let tampered = ref 0 in
    let never = ref 0 in
    let adoptions = ref [] in
    let failure = ref None in
    Array.iter
      (fun d ->
        match !failure with
        | Some _ -> ()
        | None -> (
            let delay =
              match channel with
              | Ota.Over_the_air -> Some (Rng.exponential t.rng params.Ota.ota_mean_days)
              | Ota.Recall ->
                  if Rng.chance t.rng params.Ota.recall_no_show then None
                  else Some (Rng.exponential t.rng params.Ota.recall_mean_days)
            in
            match delay with
            | None -> incr never
            | Some base_delay ->
                (* a corrupted delivery is rejected by the device (integrity
                   check) and retried with a clean copy; the retry travels
                   the same channel as the original, so its delay is drawn
                   from that channel's own mean — recall retries used to be
                   drawn from the (much faster) OTA mean, silently
                   flattering the recall baseline *)
                let retry_mean =
                  match channel with
                  | Ota.Over_the_air -> params.Ota.ota_mean_days
                  | Ota.Recall -> params.Ota.recall_mean_days
                in
                let delay = ref base_delay in
                while Rng.chance t.rng corruption do
                  incr tampered;
                  let evil =
                    Policy.Update.tampered bundle ~payload:"policy \"evil\" version 99 { }"
                  in
                  (match Policy.Update.install d.store evil with
                  | Ok () -> failure := Some "device installed a tampered bundle"
                  | Error _ -> ());
                  delay := !delay +. Rng.exponential t.rng retry_mean
                done;
                (match Policy.Update.install d.store bundle with
                | Ok () -> adoptions := !delay :: !adoptions
                | Error e -> failure := Some e)))
      t.devices;
    match !failure with
    | Some e -> Error e
    | None ->
        let adoption_days = Array.of_list !adoptions in
        (* Float.compare, not polymorphic compare: same total order on
           floats (infinities at the tail) without the per-element
           structural-compare dispatch — measurable at fleet = 1M *)
        Array.sort Float.compare adoption_days;
        Ok
          {
            bundle_version = bundle.Policy.Update.version;
            adoption_days;
            tampered_rejections = !tampered;
            never = !never;
          }
  end

let protected_fraction dist t ~days =
  let n = Array.length dist.adoption_days in
  let rec bsearch lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if dist.adoption_days.(mid) <= days then bsearch (mid + 1) hi
      else bsearch lo mid
    end
  in
  float_of_int (bsearch 0 n) /. float_of_int (size t)

let days_to_quantile dist t q =
  if q <= 0.0 then Some 0.0
  else begin
    let target = int_of_float (ceil (q *. float_of_int (size t))) in
    let n = Array.length dist.adoption_days in
    if target > n then None else Some dist.adoption_days.(target - 1)
  end
