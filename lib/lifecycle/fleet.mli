(** A deployed fleet of devices, each holding a real policy store.

    Where {!Ota} models adoption *times* statistically, [Fleet] executes
    the distribution: every device runs {!Secpol_policy.Update.install},
    so version monotonicity and bundle integrity are enforced per device —
    a bundle corrupted in transit is rejected by the device and retried,
    exactly the property the sealed-bundle design buys. *)

type t

val create :
  ?seed:int64 -> size:int -> Secpol_policy.Ast.policy -> (t, string) result
(** Manufacture [size] devices, each with the given policy installed as its
    factory version. *)

val size : t -> int

val versions : t -> (int * int) list
(** Installed version -> device count, ascending. *)

type distribution = {
  bundle_version : int;
  adoption_days : float array;  (** sorted days-since-release, adopters only *)
  tampered_rejections : int;
      (** deliveries that arrived corrupted and were refused by the device
          (each is retried with a clean copy) *)
  never : int;  (** devices that never applied the update (recall no-shows) *)
}

val distribute :
  t ->
  ?channel:Ota.channel ->
  ?params:Ota.params ->
  ?corruption:float ->
  Secpol_policy.Update.bundle ->
  (distribution, string) result
(** Push a bundle to every device.  [channel] (default [Over_the_air]) and
    [params] (default {!Ota.default_params}, with the fleet size overridden)
    shape the per-device delay; [corruption] (default [0.]) is the
    probability a delivery arrives tampered — the device rejects it and a
    clean retry lands after an extra delay drawn from the {e same
    channel's} mean.  [corruption] must be in [0, 1): at exactly 1 no
    clean copy could ever land and the retry chain would never terminate,
    so the value is refused.  Errors if the bundle is not newer than what
    some device already runs. *)

val protected_fraction : distribution -> t -> days:float -> float
(** Fraction of the fleet running the new version [days] after release. *)

val days_to_quantile : distribution -> t -> float -> float option
(** Days until the given fleet fraction is protected; [None] if never. *)
