module Rng = Secpol_sim.Rng

type channel = Over_the_air | Recall

type params = {
  fleet : int;
  ota_mean_days : float;
  recall_mean_days : float;
  recall_no_show : float;
}

let default_params =
  { fleet = 100_000; ota_mean_days = 3.0; recall_mean_days = 90.0; recall_no_show = 0.25 }

type rollout = {
  channel : channel;
  days_to_quantile : float -> float option;
  protected_at : float -> float;
}

let channel_name = function
  | Over_the_air -> "over-the-air"
  | Recall -> "recall"

let simulate rng params channel =
  if params.fleet <= 0 then invalid_arg "Ota.simulate: empty fleet";
  (* per-vehicle days until protected; infinity = never *)
  let times =
    Array.init params.fleet (fun _ ->
        match channel with
        | Over_the_air -> Rng.exponential rng params.ota_mean_days
        | Recall ->
            if Rng.chance rng params.recall_no_show then infinity
            else Rng.exponential rng params.recall_mean_days)
  in
  (* Float.compare orders never-adopters (infinity) at the tail like the
     polymorphic compare did, minus its per-element dispatch cost *)
  Array.sort Float.compare times;
  let n = float_of_int params.fleet in
  let days_to_quantile q =
    if q <= 0.0 then Some 0.0
    else if q > 1.0 then None
    else begin
      let idx = int_of_float (ceil (q *. n)) - 1 in
      let idx = max 0 (min (params.fleet - 1) idx) in
      let t = times.(idx) in
      if Float.is_finite t then Some t else None
    end
  in
  let protected_at d =
    (* binary search: count of times <= d *)
    let rec bsearch lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if times.(mid) <= d then bsearch (mid + 1) hi else bsearch lo mid
      end
    in
    float_of_int (bsearch 0 params.fleet) /. n
  in
  { channel; days_to_quantile; protected_at }
