(* A CAS loop rather than a mutex: readings race only on the watermark
   word, and the loser of a race simply re-reads — the clock must stay
   callable from every domain without serialising them. *)

let watermark = Atomic.make neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  let rec clamp () =
    let prev = Atomic.get watermark in
    if t <= prev then prev
    else if Atomic.compare_and_set watermark prev t then t
    else clamp ()
  in
  clamp ()

let elapsed_ns ~since = Float.max 0.0 ((now () -. since) *. 1e9)
let resolution = 1e-6
