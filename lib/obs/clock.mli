(** One shared measurement clock for every benchmark entry point.

    [secpolc bench] used to time with [Sys.time] (process CPU seconds)
    while [bench/main.exe] timed with wall-clock seconds — two numbers
    that silently disagree the moment anything sleeps, blocks or runs on
    more than one core.  Every timing loop now reads this module instead,
    so a ns/op from one harness is comparable with a ns/op from the
    other.

    The clock is wall time made {e monotonic}: readings are clamped to a
    process-wide high-water mark, so a backwards NTP step can flatten an
    interval to zero but never produce a negative one.  The watermark is
    an {!Atomic}, making the clamp safe to read from every domain of the
    parallel serving layer. *)

val now : unit -> float
(** Monotonic-ized wall clock, in seconds.  Absolute values are only
    meaningful relative to other [now] readings in the same process. *)

val elapsed_ns : since:float -> float
(** Nanoseconds elapsed since an earlier [now] reading (never negative). *)

val resolution : float
(** Smallest interval this clock can distinguish, in seconds (1 µs — the
    granularity of [Unix.gettimeofday]).  Two [now] readings closer than
    this may compare equal; timing code dividing by an elapsed interval
    should clamp to [resolution] rather than special-case zero. *)
