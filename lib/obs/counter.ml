type t = { mutable v : int }

let create () = { v = 0 }

let incr t = t.v <- t.v + 1

let add t n =
  if n < 0 then invalid_arg "Counter.add: counters are monotonic";
  t.v <- t.v + n

let value t = t.v

let reset t = t.v <- 0
