(** A monotonic event counter.

    One mutable machine word: incrementing allocates nothing, so counters
    can sit directly on enforcement hot paths.  Counters only go up —
    deltas and rates are derived by the consumer from successive
    snapshots. *)

type t

val create : unit -> t

val incr : t -> unit

val add : t -> int -> unit
(** @raise Invalid_argument on a negative increment. *)

val value : t -> int

val reset : t -> unit
(** Restart the counter at zero — for the owning component's lifecycle
    events (e.g. a hardware re-provisioning), not for consumers.  As with
    any monotonic metric, a snapshot reader must treat a value regression
    as a restart. *)
