type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of value list
  | Obj of (string * value) list

let finite f = if Float.is_finite f then Float f else Null

let histogram h =
  let quantiles =
    if Histogram.count h = 0 then []
    else
      [
        ("min", finite (Histogram.min h));
        ("p50", finite (Histogram.percentile h 50.0));
        ("p90", finite (Histogram.percentile h 90.0));
        ("p99", finite (Histogram.percentile h 99.0));
        ("max", finite (Histogram.max h));
      ]
  in
  let buckets =
    Histogram.buckets h |> Array.to_list
    |> List.filter (fun (_, n) -> n > 0)
    |> List.map (fun (le, n) -> Obj [ ("le", finite le); ("n", Int n) ])
  in
  Obj
    ([
       ("count", Int (Histogram.count h));
       ("sum", finite (Histogram.sum h));
       ("mean", finite (Histogram.mean h));
     ]
    @ quantiles
    @ [ ("invalid", Int (Histogram.invalid h)); ("buckets", List buckets) ])

let event (e : Ring.event) =
  Obj
    ([
       ("seq", Int e.seq);
       ("time", finite e.time);
       ("name", String e.name);
       ("kind", String (Ring.kind_name e.kind));
     ]
    @ (if e.span = 0 then [] else [ ("span", Int e.span) ])
    @
    match e.attrs with
    | [] -> []
    | attrs ->
        [ ("attrs", Obj (List.map (fun (k, v) -> (k, String v)) attrs)) ])

let registry reg =
  Obj
    [
      ("schema", Int 1);
      ( "counters",
        Obj
          (List.map
             (fun (n, c) -> (n, Int (Counter.value c)))
             (Registry.counters reg)) );
      ( "gauges",
        Obj (List.map (fun (n, v) -> (n, finite v)) (Registry.gauges reg)) );
      ( "histograms",
        Obj
          (List.map (fun (n, h) -> (n, histogram h)) (Registry.histograms reg))
      );
      ( "trace",
        Obj
          [
            ("dropped", Int (Ring.dropped (Registry.trace reg)));
            ("events", List (List.map event (Ring.events (Registry.trace reg))));
          ] );
    ]

let to_text reg =
  let buf = Buffer.create 512 in
  List.iter
    (fun (n, c) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" n (Counter.value c)))
    (Registry.counters reg);
  List.iter
    (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "%s %g\n" n v))
    (Registry.gauges reg);
  List.iter
    (fun (n, h) ->
      Buffer.add_string buf
        (Format.asprintf "%s %a\n" n Histogram.pp_summary h))
    (Registry.histograms reg);
  Buffer.contents buf
