(** Snapshot a registry into a neutral, serialiser-agnostic tree.

    [Secpol_obs] stays dependency-free, so it cannot name a concrete JSON
    library; {!value} mirrors the shape of any JSON document and a
    serialiser (e.g. [Secpol_policy.Obs_json]) maps it 1:1 onto its own
    representation.  Non-finite floats export as [Null] so the tree is
    always representable as strict JSON. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of value list
  | Obj of (string * value) list

val histogram : Histogram.t -> value
(** [count/sum/mean], [min/p50/p90/p99/max] when non-empty, the [invalid]
    tally, and the non-empty buckets as [{le, n}] pairs. *)

val event : Ring.event -> value

val registry : Registry.t -> value
(** The full snapshot: counters, sampled gauges, histograms and the trace
    ring, each namespace sorted by metric name. *)

val to_text : Registry.t -> string
(** One metric per line, human-oriented. *)
