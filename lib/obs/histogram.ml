type t = {
  lo : float;
  ratio : float;
  bounds : float array; (* upper bound of bucket i; length buckets - 1 *)
  counts : int array; (* length buckets; last is the overflow bucket *)
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable invalid : int;
}

let create ?(lo = 1.0) ?(ratio = 2.0) ?(buckets = 32) () =
  if lo <= 0.0 then invalid_arg "Histogram.create: lo must be positive";
  if ratio <= 1.0 then invalid_arg "Histogram.create: ratio must exceed 1";
  if buckets < 2 then invalid_arg "Histogram.create: need at least 2 buckets";
  let bounds = Array.make (buckets - 1) 0.0 in
  bounds.(0) <- lo;
  for i = 1 to buckets - 2 do
    bounds.(i) <- bounds.(i - 1) *. ratio
  done;
  {
    lo;
    ratio;
    bounds;
    counts = Array.make buckets 0;
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    invalid = 0;
  }

let bucket_count t = Array.length t.counts

(* smallest bucket whose upper bound covers [x]; the last bucket is a
   catch-all so the search cannot fall off the end *)
let index_of t x =
  let n = Array.length t.bounds in
  if x <= t.lo then 0
  else if x > t.bounds.(n - 1) then n
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if x <= t.bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  end

let observe t x =
  if Float.is_nan x || x < 0.0 then t.invalid <- t.invalid + 1
  else begin
    let i = index_of t x in
    t.counts.(i) <- t.counts.(i) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. x;
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x
  end

let count t = t.count

let sum t = t.sum

let invalid t = t.invalid

let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

let min t =
  if t.count = 0 then invalid_arg "Histogram.min: empty histogram";
  t.min_v

let max t =
  if t.count = 0 then invalid_arg "Histogram.max: empty histogram";
  t.max_v

let percentile t p =
  if t.count = 0 then invalid_arg "Histogram.percentile: empty histogram";
  if p < 0.0 || p > 100.0 || Float.is_nan p then
    invalid_arg "Histogram.percentile: p out of range";
  if p = 0.0 then t.min_v
  else if p = 100.0 then t.max_v
  else begin
    let rank =
      Stdlib.max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int t.count)))
    in
    let i = ref 0 and seen = ref 0 in
    while !seen + t.counts.(!i) < rank do
      seen := !seen + t.counts.(!i);
      incr i
    done;
    (* report the bucket's upper bound, clamped to the observed range: the
       true sample lies within one [ratio] factor below it *)
    let upper =
      if !i < Array.length t.bounds then t.bounds.(!i) else t.max_v
    in
    Stdlib.max t.min_v (Stdlib.min t.max_v upper)
  end

let compatible a b =
  a.lo = b.lo && a.ratio = b.ratio
  && Array.length a.counts = Array.length b.counts

let merge a b =
  if not (compatible a b) then
    invalid_arg "Histogram.merge: incompatible bucket layouts";
  let m = create ~lo:a.lo ~ratio:a.ratio ~buckets:(Array.length a.counts) () in
  Array.iteri (fun i n -> m.counts.(i) <- n + b.counts.(i)) a.counts;
  m.count <- a.count + b.count;
  m.sum <- a.sum +. b.sum;
  m.min_v <- Stdlib.min a.min_v b.min_v;
  m.max_v <- Stdlib.max a.max_v b.max_v;
  m.invalid <- a.invalid + b.invalid;
  m

let copy t =
  let c = create ~lo:t.lo ~ratio:t.ratio ~buckets:(Array.length t.counts) () in
  Array.blit t.counts 0 c.counts 0 (Array.length t.counts);
  c.count <- t.count;
  c.sum <- t.sum;
  c.min_v <- t.min_v;
  c.max_v <- t.max_v;
  c.invalid <- t.invalid;
  c

let buckets t =
  Array.mapi
    (fun i n ->
      let upper =
        if i < Array.length t.bounds then t.bounds.(i) else infinity
      in
      (upper, n))
    t.counts

let pp_summary ppf t =
  if t.count = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.1f min=%.1f p50=%.1f p99=%.1f max=%.1f"
      t.count (mean t) t.min_v (percentile t 50.0) (percentile t 99.0) t.max_v
