(** Log-bucketed latency histogram.

    Memory is O(buckets) and independent of the number of observations: a
    fixed array of geometric buckets ([lo], [lo*ratio], [lo*ratio^2], ...,
    overflow) plus exact count / sum / min / max.  Quantiles are read off
    the cumulative bucket counts, so a reported percentile is the bucket
    upper bound — within one [ratio] factor of the exact sample value —
    clamped to the observed [min, max] range.  Two histograms with the same
    layout merge bucket-wise, which is what makes per-shard telemetry
    aggregatable.

    Non-finite and negative observations are never mixed into the
    distribution; they are tallied separately in {!invalid}. *)

type t

val create : ?lo:float -> ?ratio:float -> ?buckets:int -> unit -> t
(** [lo] (default 1.0) is the upper bound of the first bucket, [ratio]
    (default 2.0) the geometric growth factor, [buckets] (default 32) the
    total bucket count including the overflow bucket.
    @raise Invalid_argument on [lo <= 0], [ratio <= 1] or [buckets < 2]. *)

val observe : t -> float -> unit

val count : t -> int
(** Valid (finite, non-negative) observations. *)

val sum : t -> float

val mean : t -> float
(** 0. on an empty histogram. *)

val min : t -> float
(** Exact. @raise Invalid_argument on an empty histogram. *)

val max : t -> float
(** Exact. @raise Invalid_argument on an empty histogram. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in \[0,100\], nearest-rank over the bucket
    counts.  [p = 0] and [p = 100] return the exact minimum and maximum.
    @raise Invalid_argument on an empty histogram or out-of-range [p]. *)

val invalid : t -> int
(** Observations dropped for being NaN or negative. *)

val merge : t -> t -> t
(** Bucket-wise sum; the inputs are unchanged.
    @raise Invalid_argument when the bucket layouts differ. *)

val copy : t -> t
(** Independent snapshot with the same layout and contents; further
    observations into either histogram leave the other unchanged. *)

val bucket_count : t -> int
(** Constant for the histogram's lifetime, whatever [count] grows to. *)

val buckets : t -> (float * int) array
(** [(upper_bound, count)] per bucket; the overflow bucket reports
    [infinity]. *)

val pp_summary : Format.formatter -> t -> unit
