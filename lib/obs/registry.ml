type t = {
  clock : unit -> float;
  counters : (string, Counter.t) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  gauges : (string, unit -> float) Hashtbl.t;
  trace : Ring.t;
}

let create ?(clock = Sys.time) ?(trace_capacity = 512) () =
  {
    clock;
    counters = Hashtbl.create 32;
    histograms = Hashtbl.create 8;
    gauges = Hashtbl.create 8;
    trace = Ring.create ~capacity:trace_capacity ();
  }

let clock t = t.clock

let now t = t.clock ()

let trace t = t.trace

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = Counter.create () in
      Hashtbl.replace t.counters name c;
      c

let histogram ?lo ?ratio ?buckets t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h = Histogram.create ?lo ?ratio ?buckets () in
      Hashtbl.replace t.histograms name h;
      h

let register_counter t name c = Hashtbl.replace t.counters name c

let register_histogram t name h = Hashtbl.replace t.histograms name h

let register_gauge t name f = Hashtbl.replace t.gauges name f

let merge_into ~into src =
  Hashtbl.iter
    (fun name c -> Counter.add (counter into name) (Counter.value c))
    src.counters;
  Hashtbl.iter
    (fun name h ->
      match Hashtbl.find_opt into.histograms name with
      | None -> Hashtbl.replace into.histograms name (Histogram.copy h)
      | Some existing ->
          Hashtbl.replace into.histograms name (Histogram.merge existing h))
    src.histograms

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_bindings t.counters

let histograms t = sorted_bindings t.histograms

let gauges t = List.map (fun (n, f) -> (n, f ())) (sorted_bindings t.gauges)
