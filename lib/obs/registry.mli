(** The telemetry registry: one namespace of counters, histograms, gauges
    and an event-trace ring, shared by every instrumented layer.

    Components either ask the registry for a metric by name (find or
    create) or register instruments they already own — the latter lets a
    component keep counting with zero overhead when no registry is
    attached, then expose the same counter instance once one is.

    Gauges are sampled lazily: a gauge is a closure evaluated only at
    snapshot time, so derived values (cache occupancy, bus utilisation)
    cost nothing between exports. *)

type t

val create : ?clock:(unit -> float) -> ?trace_capacity:int -> unit -> t
(** [clock] (default [Sys.time]) timestamps trace events and latency
    spans; inject a simulation clock to trace in sim time. *)

val clock : t -> unit -> float

val now : t -> float

val counter : t -> string -> Counter.t
(** Find or create. *)

val histogram :
  ?lo:float -> ?ratio:float -> ?buckets:int -> t -> string -> Histogram.t
(** Find or create; the layout arguments only apply on creation. *)

val trace : t -> Ring.t

val register_counter : t -> string -> Counter.t -> unit
(** Expose an existing counter under [name] (replaces any previous). *)

val register_histogram : t -> string -> Histogram.t -> unit

val register_gauge : t -> string -> (unit -> float) -> unit

val counters : t -> (string * Counter.t) list
(** Sorted by name. *)

val histograms : t -> (string * Histogram.t) list

val gauges : t -> (string * float) list
(** Sampled now, sorted by name. *)
