(** The telemetry registry: one namespace of counters, histograms, gauges
    and an event-trace ring, shared by every instrumented layer.

    Components either ask the registry for a metric by name (find or
    create) or register instruments they already own — the latter lets a
    component keep counting with zero overhead when no registry is
    attached, then expose the same counter instance once one is.

    Gauges are sampled lazily: a gauge is a closure evaluated only at
    snapshot time, so derived values (cache occupancy, bus utilisation)
    cost nothing between exports. *)

type t

val create : ?clock:(unit -> float) -> ?trace_capacity:int -> unit -> t
(** [clock] (default [Sys.time]) timestamps trace events and latency
    spans; inject a simulation clock to trace in sim time. *)

val clock : t -> unit -> float

val now : t -> float

val counter : t -> string -> Counter.t
(** Find or create. *)

val histogram :
  ?lo:float -> ?ratio:float -> ?buckets:int -> t -> string -> Histogram.t
(** Find or create; the layout arguments only apply on creation. *)

val trace : t -> Ring.t

val register_counter : t -> string -> Counter.t -> unit
(** Expose an existing counter under [name] (replaces any previous). *)

val register_histogram : t -> string -> Histogram.t -> unit

val register_gauge : t -> string -> (unit -> float) -> unit

val merge_into : into:t -> t -> unit
(** Fold [src]'s instruments into [into], name-wise: counter values are
    added into [into]'s counters (created when absent), histograms are
    bucket-merged ({!Histogram.merge}) into fresh instances — [src] is
    never aliased, so the source registry (e.g. one owned by a worker
    domain) can keep being written afterwards without corrupting the
    merged view.  This is how per-shard registries aggregate into one
    run-level registry after a parallel run.  Gauges and the event-trace
    ring are {e not} merged: a gauge is a closure over its owner's state,
    and trace entries are only meaningful on their own timeline — export
    those per shard instead.  Merging replaces [into]'s histogram
    {e bindings}; components holding direct references to a previously
    registered histogram keep their instance, but the registry now reports
    the merged copy.
    @raise Invalid_argument when same-named histograms have different
    bucket layouts. *)

val counters : t -> (string * Counter.t) list
(** Sorted by name. *)

val histograms : t -> (string * Histogram.t) list

val gauges : t -> (string * float) list
(** Sampled now, sorted by name. *)
