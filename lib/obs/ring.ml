type kind = Point | Span_begin | Span_end

type event = {
  seq : int;
  time : float;
  name : string;
  kind : kind;
  span : int;
  attrs : (string * string) list;
}

type t = {
  capacity : int;
  buf : event option array;
  mutable length : int;
  mutable next : int; (* slot the next event lands in *)
  mutable seq : int;
  mutable next_span : int;
  mutable dropped : int;
}

let create ?(capacity = 256) () =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  {
    capacity;
    buf = Array.make capacity None;
    length = 0;
    next = 0;
    seq = 0;
    next_span = 1;
    dropped = 0;
  }

let capacity t = t.capacity

let length t = t.length

let dropped t = t.dropped

let push t ~time ~kind ~span ~attrs name =
  if t.length = t.capacity then t.dropped <- t.dropped + 1
  else t.length <- t.length + 1;
  t.buf.(t.next) <- Some { seq = t.seq; time; name; kind; span; attrs };
  t.next <- (t.next + 1) mod t.capacity;
  t.seq <- t.seq + 1

let record t ~time ?(attrs = []) name =
  push t ~time ~kind:Point ~span:0 ~attrs name

let span_begin t ~time ?(attrs = []) name =
  let id = t.next_span in
  t.next_span <- t.next_span + 1;
  push t ~time ~kind:Span_begin ~span:id ~attrs name;
  id

let span_end t ~time ?(attrs = []) id name =
  push t ~time ~kind:Span_end ~span:id ~attrs name

let events t =
  (* oldest first: slots [next .. next+length) modulo capacity *)
  let start = (t.next - t.length + t.capacity) mod t.capacity in
  List.init t.length (fun i ->
      match t.buf.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.length <- 0;
  t.next <- 0

let kind_name = function
  | Point -> "point"
  | Span_begin -> "span_begin"
  | Span_end -> "span_end"
