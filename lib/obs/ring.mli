(** Fixed-capacity event-trace ring buffer.

    The newest [capacity] events are retained; older ones are overwritten
    and counted in {!dropped}.  Every event carries a monotonic sequence
    number, so a consumer can detect the gap.  Spans are matched pairs of
    [Span_begin]/[Span_end] events sharing a span id — recording both ends
    as plain events keeps the hot path allocation-light and lets a span
    survive even when only one end is still inside the window. *)

type kind = Point | Span_begin | Span_end

type event = {
  seq : int;  (** monotonic, never reused *)
  time : float;
  name : string;
  kind : kind;
  span : int;  (** 0 for points; matching begin/end share an id *)
  attrs : (string * string) list;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 256.
    @raise Invalid_argument on a non-positive capacity. *)

val record : t -> time:float -> ?attrs:(string * string) list -> string -> unit

val span_begin :
  t -> time:float -> ?attrs:(string * string) list -> string -> int
(** Returns the fresh span id to pass to {!span_end}. *)

val span_end :
  t -> time:float -> ?attrs:(string * string) list -> int -> string -> unit

val events : t -> event list
(** Oldest first. *)

val capacity : t -> int

val length : t -> int

val dropped : t -> int
(** Events overwritten since creation. *)

val clear : t -> unit
(** Forget buffered events; sequence and span counters keep running. *)

val kind_name : kind -> string
