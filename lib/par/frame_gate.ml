module Identifier = Secpol_can.Identifier
module Config = Secpol_hpe.Config
module Approved_list = Secpol_hpe.Approved_list
module Rate_limiter = Secpol_hpe.Rate_limiter
module Registry = Secpol_obs.Registry
module Counter = Secpol_obs.Counter
module Clock = Secpol_obs.Clock

type dir = Rx | Tx

type event = { time : float; node : string; dir : dir; id : Identifier.t }

type verdict = Grant | Block | Rate_block

type stats = {
  domains : int;
  served : int;
  per_shard : int array;
  elapsed_s : float;
  throughput : float;
  granted : int;
  blocked : int;
  rate_blocked : int;
}

type result = {
  verdicts : verdict array;
  registry : Registry.t;
  stats : stats;
}

(* Per-node gate state, private to the shard that owns the node. *)
type gate = {
  read : Approved_list.t;
  write : Approved_list.t;
  own : Approved_list.t;
  limiter : Rate_limiter.t;
}

let gate_of_config (c : Config.t) =
  let list_of ids = Approved_list.of_ids (List.map Identifier.standard ids) in
  let limiter = Rate_limiter.create () in
  List.iter
    (fun (msg_id, rate) -> Rate_limiter.set limiter ~msg_id rate)
    c.write_rates;
  {
    read = list_of c.read_ids;
    write = list_of c.write_ids;
    own = list_of c.own_ids;
    limiter;
  }

let gate_event gates registry (e : event) =
  match Hashtbl.find_opt gates e.node with
  | None ->
      (* unprotected ECU: pass-through, but make the gap visible *)
      Counter.incr (Registry.counter registry "hpe.gate.unguarded");
      Grant
  | Some gate -> (
      match e.dir with
      | Tx ->
          if not (Approved_list.mem gate.write e.id) then (
            Counter.incr (Registry.counter registry "hpe.gate.tx_blocked");
            Block)
          else if
            Rate_limiter.admit gate.limiter ~now:e.time
              ~msg_id:(Identifier.raw e.id)
          then (
            Counter.incr (Registry.counter registry "hpe.gate.granted");
            Grant)
          else (
            Counter.incr (Registry.counter registry "hpe.gate.rate_blocked");
            Rate_block)
      | Rx ->
          if Approved_list.mem gate.own e.id then (
            (* a frame carrying an ID only this node may produce *)
            Counter.incr (Registry.counter registry "hpe.gate.spoof_blocked");
            Block)
          else if Approved_list.mem gate.read e.id then (
            Counter.incr (Registry.counter registry "hpe.gate.granted");
            Grant)
          else (
            Counter.incr (Registry.counter registry "hpe.gate.rx_blocked");
            Block))

let gate_slice configs (events : event array) idxs =
  let registry = Registry.create () in
  let gates = Hashtbl.create (List.length configs) in
  List.iter
    (fun (node, config) -> Hashtbl.replace gates node (gate_of_config config))
    configs;
  let verdicts = Array.map (fun i -> gate_event gates registry events.(i)) idxs in
  (verdicts, registry)

let scatter n slices =
  let out = Array.make n None in
  List.iter
    (fun (idxs, verdicts) ->
      Array.iteri (fun k i -> out.(i) <- Some verdicts.(k)) idxs)
    slices;
  Array.map (function Some v -> v | None -> assert false) out

let finish ~domains ~started slices =
  let n = List.fold_left (fun a (idxs, _, _) -> a + Array.length idxs) 0 slices in
  let registry = Registry.create () in
  List.iter
    (fun (_, _, shard_registry) ->
      Registry.merge_into ~into:registry shard_registry)
    slices;
  let verdicts =
    scatter n (List.map (fun (idxs, vs, _) -> (idxs, vs)) slices)
  in
  let count v = Array.fold_left (fun a x -> if x = v then a + 1 else a) 0 in
  let elapsed_s = Clock.now () -. started in
  let throughput = if elapsed_s > 0. then float_of_int n /. elapsed_s else 0. in
  {
    verdicts;
    registry;
    stats =
      {
        domains;
        served = n;
        per_shard =
          Array.of_list (List.map (fun (idxs, _, _) -> Array.length idxs) slices);
        elapsed_s;
        throughput;
        granted = count Grant verdicts;
        blocked = count Block verdicts;
        rate_blocked = count Rate_block verdicts;
      };
  }

let run ?(domains = 1) ?group configs events =
  if domains < 1 then invalid_arg "Frame_gate.run: domains < 1";
  let key = match group with Some f -> f | None -> fun (e : event) -> e.node in
  let shards = Partition.assign_by ~shards:domains key events in
  (* timed region: gating only — partitioning is a one-time cost *)
  let started = Clock.now () in
  let workers =
    Array.map
      (fun idxs -> Domain.spawn (fun () -> gate_slice configs events idxs))
      shards
  in
  let slices =
    Array.to_list
      (Array.map2
         (fun idxs worker ->
           let verdicts, registry = Domain.join worker in
           (idxs, verdicts, registry))
         shards workers)
  in
  finish ~domains ~started slices

let run_sequential configs events =
  let idxs = Array.init (Array.length events) Fun.id in
  let started = Clock.now () in
  let verdicts, registry = gate_slice configs events idxs in
  finish ~domains:1 ~started [ (idxs, verdicts, registry) ]
