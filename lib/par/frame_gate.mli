(** Sharded per-node HPE frame gating.

    The paper's HPE is one enforcement point {e per CAN node}: each node's
    hardware holds its own approved lists and rate-limiter state.  That
    slicing is exactly shard-per-domain — gate state for a node lives in
    precisely one shard ({!Partition.assign_by} on the node name), so
    domains never contend and the sharded evaluation is verdict-for-verdict
    identical to {!run_sequential}.

    Each event is a frame crossing one node's gate: [Tx] (the node wants
    the frame on the bus — checked against its write approvals and write
    budgets) or [Rx] (a bus frame arriving — checked against its read
    approvals, and against its exclusively-owned IDs for impersonation).
    Nodes without a configured gate pass traffic through untouched, as an
    unprotected ECU on a mixed bus would. *)

type dir = Rx | Tx

type event = {
  time : float;  (** seconds; non-decreasing per node *)
  node : string;
  dir : dir;
  id : Secpol_can.Identifier.t;
}

type verdict =
  | Grant
  | Block  (** not on the relevant approved list, or an Rx spoof *)
  | Rate_block  (** write-approved but its sliding-window budget is spent *)

type stats = {
  domains : int;
  served : int;
  per_shard : int array;
  elapsed_s : float;  (** wall-clock seconds *)
  throughput : float;  (** events gated per wall-clock second *)
  granted : int;
  blocked : int;
  rate_blocked : int;
}

type result = {
  verdicts : verdict array;  (** one per event, in input order *)
  registry : Secpol_obs.Registry.t;
      (** merged [hpe.gate.*] counters from every shard *)
  stats : stats;
}

val run :
  ?domains:int ->
  ?group:(event -> string) ->
  (string * Secpol_hpe.Config.t) list ->
  event array ->
  result
(** [run configs events] gates every event through its node's configuration
    (commonly built with {!Secpol_hpe.Config.of_policy}), sharding events
    across [domains] (default 1) worker domains by [group] (default the
    node name — the paper's gate-per-node slicing).  A topology bench
    groups by {e segment} instead, modelling one gate bank per segment.
    [group] must refine the per-node slicing: every event of one node
    must map to the same key, or rate-limiter state is split across
    shards and verdicts diverge from {!run_sequential}.
    @raise Invalid_argument when [domains < 1]. *)

val run_sequential :
  (string * Secpol_hpe.Config.t) list -> event array -> result
(** Single-domain, no-spawn baseline; reference semantics for {!run}. *)
