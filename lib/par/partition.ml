module Ir = Secpol_policy.Ir

type key = Subject | Asset

let key_name = function Subject -> "subject" | Asset -> "asset"

(* 32-bit FNV-1a; OCaml's native int is at least 63 bits, so the masked
   multiply never overflows into the sign bit *)
let fnv_offset = 0x811c9dc5

let fnv_prime = 0x01000193

let mask32 = 0xFFFFFFFF

let hash_string s =
  let h = ref fnv_offset in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * fnv_prime land mask32)
    s;
  !h

let shard_of_string ~shards s =
  if shards < 1 then invalid_arg "Partition.shard_of_string: shards < 1";
  hash_string s mod shards

let label_of key (req : Ir.request) =
  match key with Subject -> req.Ir.subject | Asset -> req.Ir.asset

let shard_of key ~shards req = shard_of_string ~shards (label_of key req)

let assign_by ~shards label items =
  if shards < 1 then invalid_arg "Partition.assign_by: shards < 1";
  let counts = Array.make shards 0 in
  let shard = Array.map (fun item -> shard_of_string ~shards (label item)) items in
  Array.iter (fun s -> counts.(s) <- counts.(s) + 1) shard;
  let slots = Array.map (fun n -> Array.make n 0) counts in
  let filled = Array.make shards 0 in
  Array.iteri
    (fun i s ->
      slots.(s).(filled.(s)) <- i;
      filled.(s) <- filled.(s) + 1)
    shard;
  slots

let assign key ~shards reqs = assign_by ~shards (label_of key) reqs
