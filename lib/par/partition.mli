(** Deterministic traffic partitioning for shard-per-domain serving.

    The parallel layer never shares mutable enforcement state between
    domains; instead the {e partitioner} routes every piece of traffic to
    the one shard that owns its state.  For policy requests the unit of
    mutable state is the rate budget, keyed by [(rule, subject)] in
    {!Secpol_policy.Engine} — and since a rule is scoped to exactly one
    asset, {e both} available keys preserve budget locality:

    - {!Subject}: all of a subject's requests land in one shard.  This is
      the paper's natural slicing — one enforcement engine per CAN node,
      each node owning its own budgets (the subject {e is} the node).
    - {!Asset}: all requests touching an asset land in one shard — the
      per-resource slicing, useful when a few subjects dominate traffic.

    Hashing is FNV-1a (32-bit), implemented here rather than borrowed from
    [Hashtbl.hash]: the shard assignment is part of the sharding contract
    (per-shard telemetry, replayable workloads), so it must be stable
    across runs, architectures and compiler versions. *)

type key = Subject | Asset

val key_name : key -> string

val hash_string : string -> int
(** 32-bit FNV-1a, in [\[0, 2^32)]. *)

val shard_of_string : shards:int -> string -> int
(** [hash_string] reduced to [\[0, shards)].
    @raise Invalid_argument when [shards < 1]. *)

val shard_of : key -> shards:int -> Secpol_policy.Ir.request -> int

val assign_by : shards:int -> ('a -> string) -> 'a array -> int array array
(** [assign_by ~shards label items] routes each item to
    [shard_of_string ~shards (label item)] and returns, per shard, the
    indices into [items] it owns — input order preserved within every
    shard, so per-key state observes the same event order it would
    sequentially. *)

val assign : key -> shards:int -> Secpol_policy.Ir.request array -> int array array
(** {!assign_by} on the request field selected by [key]. *)
