module Ir = Secpol_policy.Ir
module Engine = Secpol_policy.Engine
module Table = Secpol_policy.Table
module Registry = Secpol_obs.Registry

(* ------------------------------------------------------------------ *)
(* Policy generations                                                  *)
(* ------------------------------------------------------------------ *)

(* The RCU side of the pool: the current policy lives behind one atomic
   pointer.  A swap publishes a whole new generation — epoch, compiled
   table, source db — in a single store; workers re-read the pointer at
   job boundaries and rebind their private engine when the epoch moved.
   Readers never block writers and writers never block readers: the only
   shared mutable word on the decision path is this pointer. *)
type generation = { epoch : int; table : Table.t; db : Ir.db }

(* ------------------------------------------------------------------ *)
(* Tickets                                                             *)
(* ------------------------------------------------------------------ *)

type 'a state = Pending | Done of 'a | Raised of exn

type 'a ticket = {
  t_mu : Mutex.t;
  t_cv : Condition.t;
  mutable state : 'a state;
}

let ticket () = { t_mu = Mutex.create (); t_cv = Condition.create (); state = Pending }

let resolve ticket st =
  Mutex.lock ticket.t_mu;
  ticket.state <- st;
  Condition.broadcast ticket.t_cv;
  Mutex.unlock ticket.t_mu

let await ticket =
  Mutex.lock ticket.t_mu;
  let rec wait () =
    match ticket.state with
    | Pending ->
        Condition.wait ticket.t_cv ticket.t_mu;
        wait ()
    | st -> st
  in
  let st = wait () in
  Mutex.unlock ticket.t_mu;
  match st with
  | Done v -> v
  | Raised e -> raise e
  | Pending -> assert false

(* [Condition] has no timed wait in the stdlib, so the deadline path
   polls: check, sleep half a millisecond, re-check.  The watchdog
   deadlines this serves are milliseconds — a 0.5 ms poll quantum is
   noise there, and the slow path only runs when a shard has already
   stalled. *)
let await_timeout ticket ~timeout_s =
  let deadline = Secpol_obs.Clock.now () +. timeout_s in
  let rec wait () =
    Mutex.lock ticket.t_mu;
    let st = ticket.state in
    Mutex.unlock ticket.t_mu;
    match st with
    | Done v -> Some (Ok v)
    | Raised e -> Some (Error e)
    | Pending ->
        if Secpol_obs.Clock.now () >= deadline then None
        else begin
          (try Unix.sleepf 0.0005 with Unix.Unix_error _ -> ());
          wait ()
        end
  in
  wait ()

(* ------------------------------------------------------------------ *)
(* Workers and rings                                                   *)
(* ------------------------------------------------------------------ *)

type worker = {
  shard : int;
  mutable engine : Engine.t;
  mutable registry : Registry.t; (* instruments of the current engine *)
  retired : Registry.t; (* accumulated telemetry of pre-swap engines *)
  mutable retired_stats : Engine.stats;
  mutable epoch_seen : int;
}

type job = worker -> unit

(* An SPSC ring per shard: one consumer (the pinned worker domain), many
   producers (client connection threads) serialised by the producer
   mutex.  Head and tail are atomics so the consumer's fast path never
   takes the lock; the condvar only parks an idle consumer. *)
type ring = {
  slots : job option array; (* length is a power of two *)
  mask : int;
  head : int Atomic.t; (* next slot to consume *)
  tail : int Atomic.t; (* next slot to fill *)
  mu : Mutex.t;
  cv : Condition.t;
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let ring_create capacity =
  let capacity = next_pow2 (max capacity 1) 1 in
  {
    slots = Array.make capacity None;
    mask = capacity - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    mu = Mutex.create ();
    cv = Condition.create ();
  }

(* Returns false when the ring is full — admission control is the
   caller's problem (the daemon retries then sheds, per the gateway
   discipline), not the ring's. *)
let ring_push ring job =
  Mutex.lock ring.mu;
  let tail = Atomic.get ring.tail in
  if tail - Atomic.get ring.head >= Array.length ring.slots then begin
    Mutex.unlock ring.mu;
    false
  end
  else begin
    ring.slots.(tail land ring.mask) <- Some job;
    Atomic.set ring.tail (tail + 1);
    Condition.signal ring.cv;
    Mutex.unlock ring.mu;
    true
  end

(* Consumer side: spin briefly (a loaded ring almost always has the next
   job visible within a few relaxed reads), then park on the condvar.
   Jobs already admitted are always drained, even after [stop] — the
   zero-dropped guarantee extends through shutdown. *)
let ring_pop ring ~stop =
  let take head =
    let slot = head land ring.mask in
    let job = ring.slots.(slot) in
    ring.slots.(slot) <- None;
    Atomic.set ring.head (head + 1);
    job
  in
  let rec go spins =
    let head = Atomic.get ring.head in
    if Atomic.get ring.tail > head then take head
    else if Atomic.get stop then None
    else if spins > 0 then begin
      Domain.cpu_relax ();
      go (spins - 1)
    end
    else begin
      Mutex.lock ring.mu;
      if Atomic.get ring.tail = Atomic.get ring.head && not (Atomic.get stop)
      then Condition.wait ring.cv ring.mu;
      Mutex.unlock ring.mu;
      go 64
    end
  in
  go 64

(* ------------------------------------------------------------------ *)
(* The pool                                                            *)
(* ------------------------------------------------------------------ *)

type t = {
  current : generation Atomic.t;
  mutable workers : worker array;
  rings : ring array;
  mutable handles : unit Domain.t array;
  stop : bool Atomic.t;
  cache : bool;
  cache_capacity : int option;
  mutable joined : bool;
}

let zero_stats : Engine.stats =
  {
    decisions = 0;
    allows = 0;
    denies = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_flushes = 0;
  }

let add_stats (a : Engine.stats) (b : Engine.stats) : Engine.stats =
  {
    decisions = a.decisions + b.decisions;
    allows = a.allows + b.allows;
    denies = a.denies + b.denies;
    cache_hits = a.cache_hits + b.cache_hits;
    cache_misses = a.cache_misses + b.cache_misses;
    cache_flushes = a.cache_flushes + b.cache_flushes;
  }

let make_engine pool registry gen =
  Engine.of_table ~cache:pool.cache ?cache_capacity:pool.cache_capacity
    ~obs:registry gen.table gen.db

(* Job-boundary epoch check: requests of a batch already being decided
   finish against the generation they started on (a coherent answer),
   and the very next job observes the new table.  Telemetry of the
   outgoing engine is folded into the worker's retired registry so a
   swap never zeroes the shard's cumulative counters. *)
let refresh pool w =
  let gen = Atomic.get pool.current in
  if gen.epoch <> w.epoch_seen then begin
    Registry.merge_into ~into:w.retired w.registry;
    w.retired_stats <- add_stats w.retired_stats (Engine.stats w.engine);
    let registry = Registry.create () in
    w.registry <- registry;
    w.engine <- make_engine pool registry gen;
    w.epoch_seen <- gen.epoch
  end

let worker_loop pool w ring ready =
  Atomic.incr ready;
  let rec loop () =
    match ring_pop ring ~stop:pool.stop with
    | None -> ()
    | Some job ->
        refresh pool w;
        job w;
        loop ()
  in
  loop ()

let create ?(cache = true) ?cache_capacity ?(queue_capacity = 1024) ~domains
    table db =
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  if queue_capacity < 1 then invalid_arg "Pool.create: queue_capacity < 1";
  let gen = { epoch = 1; table; db } in
  let pool =
    {
      current = Atomic.make gen;
      workers = [||];
      rings = Array.init domains (fun _ -> ring_create queue_capacity);
      handles = [||];
      stop = Atomic.make false;
      cache;
      cache_capacity;
      joined = false;
    }
  in
  let workers =
    Array.init domains (fun shard ->
        let registry = Registry.create () in
        {
          shard;
          engine = make_engine pool registry gen;
          registry;
          retired = Registry.create ();
          retired_stats = zero_stats;
          epoch_seen = gen.epoch;
        })
  in
  pool.workers <- workers;
  let ready = Atomic.make 0 in
  pool.handles <-
    Array.init domains (fun shard ->
        Domain.spawn (fun () ->
            worker_loop pool workers.(shard) pool.rings.(shard) ready));
  (* Readiness barrier: return only once every worker is in its serve
     loop, so callers never bill domain startup to the first requests. *)
  while Atomic.get ready < domains do
    Domain.cpu_relax ()
  done;
  pool

let domains pool = Array.length pool.workers

let epoch pool = (Atomic.get pool.current).epoch

let table pool = (Atomic.get pool.current).table

let db pool = (Atomic.get pool.current).db

let rec swap pool new_table new_db =
  let gen = Atomic.get pool.current in
  let next = { epoch = gen.epoch + 1; table = new_table; db = new_db } in
  if Atomic.compare_and_set pool.current gen next then next.epoch
  else swap pool new_table new_db

let try_submit pool ~shard f =
  if shard < 0 || shard >= Array.length pool.rings then
    invalid_arg "Pool.try_submit: shard out of range";
  if Atomic.get pool.stop then None
  else begin
    let t = ticket () in
    let job w =
      resolve t (try Done (f w) with e -> Raised e)
    in
    if ring_push pool.rings.(shard) job then Some t else None
  end

let worker_shard w = w.shard

let worker_engine w = w.engine

let worker_epoch w = w.epoch_seen

let worker_snapshot w =
  let registry = Registry.create () in
  Registry.merge_into ~into:registry w.retired;
  Registry.merge_into ~into:registry w.registry;
  (add_stats w.retired_stats (Engine.stats w.engine), registry)

let shutdown pool =
  if not pool.joined then begin
    pool.joined <- true;
    Atomic.set pool.stop true;
    Array.iter
      (fun ring ->
        Mutex.lock ring.mu;
        Condition.broadcast ring.cv;
        Mutex.unlock ring.mu)
      pool.rings;
    Array.iter Domain.join pool.handles
  end
