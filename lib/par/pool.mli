(** A persistent domain pool: the serving core behind [secpold].

    {!Serve.run} spawns and joins a fresh set of domains on every call —
    fine for a one-shot batch, hopeless for a daemon, where domain
    startup would dominate small requests.  The pool spawns one pinned
    worker per shard {e once}; each worker owns a private
    {!Secpol_policy.Engine.of_table} engine and
    {!Secpol_obs.Registry} over the shared immutable
    {!Secpol_policy.Table}, and drains jobs from its own request ring.

    {b Hot swap (RCU-style).}  The current policy generation — epoch,
    compiled table, source db — lives behind a single atomic pointer.
    {!swap} publishes a new generation in one store; every worker
    re-reads the pointer at job boundaries and rebinds its engine when
    the epoch moved.  Decisions in flight complete against the
    generation they started on; no decision ever sees a half-swapped
    policy, no reader ever blocks, and nothing is dropped.  Telemetry
    survives the swap: the outgoing engine's counters are folded into
    the worker's cumulative registry before rebinding.

    {b Admission.}  {!try_submit} never blocks: a full ring returns
    [None] and the caller decides — the daemon retries briefly, then
    sheds with a fail-safe deny, mirroring the gateway's retry-then-shed
    discipline.  Jobs that {e were} admitted are always executed, even
    during shutdown. *)

type t

type worker
(** A worker's view of itself, passed to every job it executes: the
    shard's private engine and telemetry.  Only valid inside the job —
    never stash it. *)

type 'a ticket
(** A pending result.  Resolved exactly once by the worker; awaiting
    after resolution returns immediately. *)

val create :
  ?cache:bool ->
  ?cache_capacity:int ->
  ?queue_capacity:int ->
  domains:int ->
  Secpol_policy.Table.t ->
  Secpol_policy.Ir.db ->
  t
(** Spawn [domains] pinned workers over a compiled table and its source
    db (generation 1).  [queue_capacity] (default 1024, rounded up to a
    power of two) bounds each shard's request ring — the backpressure
    point.  [cache]/[cache_capacity] configure each worker's private
    engine.  Returns only once every worker is parked in its serve loop,
    so first-request latency never includes domain startup.
    @raise Invalid_argument when [domains < 1] or [queue_capacity < 1]. *)

val domains : t -> int

val epoch : t -> int
(** Epoch of the currently published generation (starts at 1). *)

val table : t -> Secpol_policy.Table.t

val db : t -> Secpol_policy.Ir.db

val swap : t -> Secpol_policy.Table.t -> Secpol_policy.Ir.db -> int
(** Publish a new policy generation; returns its epoch.  The caller
    compiles (and gates) the table off-path first — by the time [swap]
    returns, every job submitted afterwards is decided under the new
    generation.  Lock-free; concurrent swaps serialise on the CAS. *)

val try_submit : t -> shard:int -> (worker -> 'a) -> 'a ticket option
(** Enqueue a job on a shard's ring.  [None] means the ring is full
    (shed or retry — caller's choice); [Some ticket] means the job
    {e will} run, in submission order for that shard.
    @raise Invalid_argument when [shard] is out of range. *)

val await : 'a ticket -> 'a
(** Block until the job completes; re-raises the job's exception. *)

val await_timeout : 'a ticket -> timeout_s:float -> ('a, exn) result option
(** Like {!await} with a deadline: [None] when the deadline passed with
    the job still pending (the job is {e not} cancelled — a later await
    can still collect it).  Polls at ~0.5 ms granularity, which only
    matters on the already-degraded path. *)

val worker_shard : worker -> int

val worker_engine : worker -> Secpol_policy.Engine.t
(** The shard's current private engine — rebound on epoch change, so
    hold it no longer than the current job.  Exposed for jobs that need
    more than deciding (tests inject stalls through it). *)

val worker_epoch : worker -> int
(** Generation epoch the worker's engine is currently bound to. *)

val worker_snapshot : worker -> Secpol_policy.Engine.stats * Secpol_obs.Registry.t
(** Cumulative engine stats and a freshly merged registry copy for this
    shard — pre-swap generations included.  Run it {e as a job} on the
    shard so it reads quiesced state. *)

val shutdown : t -> unit
(** Stop accepting jobs, drain every ring, join every worker.
    Idempotent.  Jobs admitted before shutdown still execute. *)
