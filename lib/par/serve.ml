module Ir = Secpol_policy.Ir
module Ast = Secpol_policy.Ast
module Batch = Secpol_policy.Batch
module Engine = Secpol_policy.Engine
module Table = Secpol_policy.Table
module Registry = Secpol_obs.Registry
module Clock = Secpol_obs.Clock

type stats = {
  domains : int;
  served : int;
  per_shard : int array;
  elapsed_s : float;
  throughput : float;
  engine : Engine.stats;
}

type result = {
  outcomes : Engine.outcome array;
  registry : Registry.t;
  stats : stats;
}

type batch_result = {
  decisions : Ast.decision array;
  registry : Registry.t;
  stats : stats;
}

let zero_engine_stats : Engine.stats =
  {
    decisions = 0;
    allows = 0;
    denies = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_flushes = 0;
  }

let add_engine_stats (a : Engine.stats) (b : Engine.stats) : Engine.stats =
  {
    decisions = a.decisions + b.decisions;
    allows = a.allows + b.allows;
    denies = a.denies + b.denies;
    cache_hits = a.cache_hits + b.cache_hits;
    cache_misses = a.cache_misses + b.cache_misses;
    cache_flushes = a.cache_flushes + b.cache_flushes;
  }

(* One shard's work: a private engine over the shared table, a private
   registry, decisions taken in slice order (= input order). *)
let serve_slice ?cache ?cache_capacity table db work idxs =
  let registry = Registry.create () in
  let engine = Engine.of_table ?cache ?cache_capacity ~obs:registry table db in
  let outcomes =
    Array.map
      (fun i ->
        let now, req = work.(i) in
        Engine.decide ~now engine req)
      idxs
  in
  (outcomes, registry, Engine.stats engine)

let scatter n slices =
  let out = Array.make n None in
  List.iter
    (fun (idxs, outcomes) ->
      Array.iteri (fun k i -> out.(i) <- Some outcomes.(k)) idxs)
    slices;
  Array.map (function Some o -> o | None -> assert false) out

let finish ~domains ~started slices =
  let n = List.fold_left (fun a (idxs, _, _, _) -> a + Array.length idxs) 0 slices in
  let registry = Registry.create () in
  let engine_stats = ref zero_engine_stats in
  List.iter
    (fun (_, _, shard_registry, shard_stats) ->
      Registry.merge_into ~into:registry shard_registry;
      engine_stats := add_engine_stats !engine_stats shard_stats)
    slices;
  let outcomes =
    scatter n (List.map (fun (idxs, outs, _, _) -> (idxs, outs)) slices)
  in
  (* Clamp to the clock's resolution: a sub-resolution quick run then
     reports a conservative lower bound on throughput instead of 0.0,
     which would poison downstream ratio gates. *)
  let elapsed_s = Float.max (Clock.now () -. started) Clock.resolution in
  let throughput = float_of_int n /. elapsed_s in
  {
    outcomes;
    registry;
    stats =
      {
        domains;
        served = n;
        per_shard =
          Array.of_list (List.map (fun (idxs, _, _, _) -> Array.length idxs) slices);
        elapsed_s;
        throughput;
        engine = !engine_stats;
      };
  }

(* Start barrier: [Domain.spawn] costs ~ms per domain, so starting the
   clock before spawning bills startup as serving time — at quick sizes
   that understates multi-domain throughput enough to flap scaling
   gates.  Each worker signals ready then parks on a condition variable
   until released; the clock starts only once every domain is running.
   Parking (rather than spinning) matters when domains outnumber cores:
   a spinning worker must burn a scheduling quantum just to notice the
   release, which would land inside the timed region. *)
let with_start_barrier ~domains spawn_workers =
  let mu = Mutex.create () in
  let cv = Condition.create () in
  let ready = ref 0 in
  let go = ref false in
  let gate () =
    Mutex.lock mu;
    incr ready;
    if !ready = domains then Condition.broadcast cv;
    while not !go do
      Condition.wait cv mu
    done;
    Mutex.unlock mu
  in
  let workers = spawn_workers gate in
  Mutex.lock mu;
  while !ready < domains do
    Condition.wait cv mu
  done;
  let started = Clock.now () in
  go := true;
  Condition.broadcast cv;
  Mutex.unlock mu;
  (started, workers)

let run ?(domains = 1) ?(key = Partition.Subject) ?(strategy = Engine.Deny_overrides)
    ?cache ?cache_capacity db work =
  if domains < 1 then invalid_arg "Serve.run: domains < 1";
  let table = Table.compile ~strategy db in
  let requests = Array.map snd work in
  let shards = Partition.assign key ~shards:domains requests in
  (* timed region: serving only — compile, partition and domain startup
     are one-time costs excluded by the start barrier *)
  let started, workers =
    with_start_barrier ~domains:(Array.length shards) (fun gate ->
        Array.map
          (fun idxs ->
            Domain.spawn (fun () ->
                gate ();
                serve_slice ?cache ?cache_capacity table db work idxs))
          shards)
  in
  let slices =
    Array.to_list
      (Array.map2
         (fun idxs worker ->
           let outs, registry, stats = Domain.join worker in
           (idxs, outs, registry, stats))
         shards workers)
  in
  finish ~domains ~started slices

let run_sequential ?(strategy = Engine.Deny_overrides) ?cache ?cache_capacity db
    work =
  let table = Table.compile ~strategy db in
  let idxs = Array.init (Array.length work) Fun.id in
  let started = Clock.now () in
  let outs, registry, stats =
    serve_slice ?cache ?cache_capacity table db work idxs
  in
  finish ~domains:1 ~started [ (idxs, outs, registry, stats) ]

(* ------------------------------------------------------------------ *)
(* The batched path                                                    *)
(* ------------------------------------------------------------------ *)

(* One shard's work on the batched path: pack the whole slice into a
   struct-of-arrays arena once, then decide it in bulk — the per-request
   loop is {!Secpol_policy.Engine.decide_batch}'s allocation-free column
   sweep instead of one [Engine.decide] call (and outcome record) per
   request.  The decision cache is irrelevant here (the batch path
   bypasses it), so the engine is created without one. *)
let serve_slice_batch table db work idxs =
  let registry = Registry.create () in
  let engine = Engine.of_table ~cache:false ~obs:registry table db in
  let n = Array.length idxs in
  let batch = Batch.create ~capacity:(max 1 n) () in
  Array.iter
    (fun i ->
      let now, req = work.(i) in
      Batch.push ~now batch req)
    idxs;
  let decisions = Array.make n Ast.Deny in
  Engine.decide_batch engine batch ~out:decisions;
  (decisions, registry, Engine.stats engine)

let finish_batch ~domains ~started slices =
  let n =
    List.fold_left (fun a (idxs, _, _, _) -> a + Array.length idxs) 0 slices
  in
  let registry = Registry.create () in
  let engine_stats = ref zero_engine_stats in
  List.iter
    (fun (_, _, shard_registry, shard_stats) ->
      Registry.merge_into ~into:registry shard_registry;
      engine_stats := add_engine_stats !engine_stats shard_stats)
    slices;
  let decisions =
    scatter n (List.map (fun (idxs, ds, _, _) -> (idxs, ds)) slices)
  in
  let elapsed_s = Float.max (Clock.now () -. started) Clock.resolution in
  let throughput = float_of_int n /. elapsed_s in
  {
    decisions;
    registry;
    stats =
      {
        domains;
        served = n;
        per_shard =
          Array.of_list
            (List.map (fun (idxs, _, _, _) -> Array.length idxs) slices);
        elapsed_s;
        throughput;
        engine = !engine_stats;
      };
  }

let run_batch ?(domains = 1) ?(key = Partition.Subject)
    ?(strategy = Engine.Deny_overrides) db work =
  if domains < 1 then invalid_arg "Serve.run_batch: domains < 1";
  let table = Table.compile ~strategy db in
  let requests = Array.map snd work in
  let shards = Partition.assign key ~shards:domains requests in
  let started, workers =
    with_start_barrier ~domains:(Array.length shards) (fun gate ->
        Array.map
          (fun idxs ->
            Domain.spawn (fun () ->
                gate ();
                serve_slice_batch table db work idxs))
          shards)
  in
  let slices =
    Array.to_list
      (Array.map2
         (fun idxs worker ->
           let ds, registry, stats = Domain.join worker in
           (idxs, ds, registry, stats))
         shards workers)
  in
  finish_batch ~domains ~started slices

let run_batch_sequential ?(strategy = Engine.Deny_overrides) db work =
  let table = Table.compile ~strategy db in
  let idxs = Array.init (Array.length work) Fun.id in
  let started = Clock.now () in
  let ds, registry, stats = serve_slice_batch table db work idxs in
  finish_batch ~domains:1 ~started [ (idxs, ds, registry, stats) ]
