(** Shard-per-domain policy decision serving.

    The parallel execution model of the layer: the policy database is
    compiled {e once} into an immutable {!Secpol_policy.Table}, shared
    read-only by every domain; each domain then owns a fully private
    {!Secpol_policy.Engine} (its own decision cache and rate budgets) and
    a private {!Secpol_obs.Registry}, and serves only the slice of the
    workload that {!Partition} routes to it.  Nothing mutable crosses a
    domain boundary, so the hot path takes no locks at all.

    Because the partitioner keeps every piece of per-key mutable state
    (rate budgets keyed by [(rule, subject)]) inside a single shard, and
    each shard sees its requests in input order, the sharded run is
    decision-for-decision identical to {!run_sequential} — the qcheck
    harness in [test/test_par.ml] pins this. *)

type stats = {
  domains : int;
  served : int;  (** total requests decided *)
  per_shard : int array;  (** requests decided by each shard *)
  elapsed_s : float;  (** wall-clock seconds (not CPU time) *)
  throughput : float;  (** decisions per wall-clock second *)
  engine : Secpol_policy.Engine.stats;  (** summed across shards *)
}

type result = {
  outcomes : Secpol_policy.Engine.outcome array;
      (** one per request, in input order *)
  registry : Secpol_obs.Registry.t;
      (** per-shard registries merged ({!Secpol_obs.Registry.merge_into}) *)
  stats : stats;
}

val run :
  ?domains:int ->
  ?key:Partition.key ->
  ?strategy:Secpol_policy.Engine.strategy ->
  ?cache:bool ->
  ?cache_capacity:int ->
  Secpol_policy.Ir.db ->
  (float * Secpol_policy.Ir.request) array ->
  result
(** [run db work] decides every [(now, request)] pair of [work].
    [domains] (default 1) worker domains are spawned, each serving the
    shard {!Partition.assign} gives it under [key] (default
    {!Partition.Subject}).  [strategy], [cache] and [cache_capacity] are
    those of {!Secpol_policy.Engine.create}.  Timestamps must be
    non-decreasing per partition key (see {!Secpol_policy.Rate_window}).
    @raise Invalid_argument when [domains < 1]. *)

val run_sequential :
  ?strategy:Secpol_policy.Engine.strategy ->
  ?cache:bool ->
  ?cache_capacity:int ->
  Secpol_policy.Ir.db ->
  (float * Secpol_policy.Ir.request) array ->
  result
(** The single-engine baseline: same compiled table, one engine, no
    spawned domain.  Reference semantics for {!run}. *)

type batch_result = {
  decisions : Secpol_policy.Ast.decision array;
      (** one per request, in input order *)
  registry : Secpol_obs.Registry.t;
  stats : stats;
}

val run_batch :
  ?domains:int ->
  ?key:Partition.key ->
  ?strategy:Secpol_policy.Engine.strategy ->
  Secpol_policy.Ir.db ->
  (float * Secpol_policy.Ir.request) array ->
  batch_result
(** [run] over the batched decision path: each shard packs its whole
    slice into a {!Secpol_policy.Batch} struct-of-arrays arena and serves
    it with one {!Secpol_policy.Engine.decide_batch} call, so the
    per-request work inside a shard is the allocation-free column sweep
    rather than a per-request [decide] (and outcome record).  Decisions
    are identical to {!run}'s [outcome.decision] for the same inputs;
    what the batch path gives up is per-request matched-rule attribution
    (there is no [cache] knob because batches bypass the decision cache).
    @raise Invalid_argument when [domains < 1]. *)

val run_batch_sequential :
  ?strategy:Secpol_policy.Engine.strategy ->
  Secpol_policy.Ir.db ->
  (float * Secpol_policy.Ir.request) array ->
  batch_result
(** Single-engine, no-spawn reference for {!run_batch} — one arena, one
    [decide_batch] call over the whole workload. *)
