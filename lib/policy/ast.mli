(** Abstract syntax of the policy DSL.

    Concrete syntax example:
    {v
    policy "ev_ecu_protection" version 2 {
      default deny;
      mode normal, fail_safe {
        asset ev_ecu {
          allow read from sensors, door_locks;
          deny  write from infotainment;
          allow write from ev_ecu messages 0x100..0x10f, 0x200;
        }
      }
      asset engine {
        allow read from any;
      }
    }
    v}

    A [mode] section scopes its asset blocks to the listed operating modes;
    a top-level asset block applies in every mode.  Rules are evaluated with
    an explicit conflict-resolution strategy (see {!Conflict}); the
    [default] section gives the decision when no rule matches. *)

type op = Read | Write | Rw

type decision = Allow | Deny

type subjects =
  | Any_subject
  | Subjects of string list  (** non-empty, sorted, deduplicated *)

type msg_range = { lo : int; hi : int }
(** Inclusive CAN-message-ID range; a single ID is [{lo = i; hi = i}]. *)

type rate = { count : int; window_ms : int }
(** Behavioural rate limit: at most [count] granted operations per sliding
    [window_ms]-millisecond window, per subject.  Written
    [rate 2 per 1000].  The paper's Table I notes that "more complex
    policies such as behavioural or situational based policies may be
    derived"; this is the behavioural form. *)

type rule = {
  decision : decision;
  op : op;
  subjects : subjects;
  messages : msg_range list option;
      (** [None] = any message ID; [Some rs] restricts the rule to IDs in
          one of the ranges *)
  rate : rate option;
      (** only meaningful on [allow] rules; beyond the budget the rule
          stops matching and evaluation falls through (usually to
          [default deny]) *)
}

type asset_block = { asset : string; rules : rule list }

type section =
  | Default of decision
  | Modes of string list * asset_block list
  | Global of asset_block

type policy = { name : string; version : int; sections : section list }

val op_name : op -> string

val decision_name : decision -> string

val range : int -> int -> msg_range
(** @raise Invalid_argument if [hi < lo] or [lo < 0]. *)

val rate_limit : count:int -> window_ms:int -> rate
(** @raise Invalid_argument on non-positive count or window. *)

val single : int -> msg_range

val range_mem : int -> msg_range -> bool

val normalise_subjects : subjects -> subjects
(** Sorts and deduplicates; collapses an empty list to [Any_subject]. *)

val normalise_ranges : msg_range list -> msg_range list
(** Sorts by lower bound and merges overlapping or adjacent ranges, so the
    normal form of a message set is unique. *)

val normalise : policy -> policy
(** Canonical form: subjects normalised, message ranges sorted and merged
    where overlapping/adjacent, mode lists sorted and deduplicated.
    Pretty-printing then parsing a normalised policy yields it back
    unchanged. *)

val equal : policy -> policy -> bool
(** Structural equality of normal forms. *)
