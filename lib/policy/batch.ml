type t = {
  mutable len : int;
  mutable subjects : string array;
  mutable assets : string array;
  mutable modes : string array;
  mutable ops : int array;
  mutable msg_ids : int array;
  mutable nows : float array;
  mutable exact_hash : int array;
  mutable wild_hash : int array;
  (* mode-interning memo for Table.decide_batch: valid only while
     [memo_stamp] matches the deciding table's compile stamp, so a batch
     replayed against a different (or hot-swapped) table can never reuse a
     stale mode id *)
  mutable memo_stamp : int;
  mutable memo_mode : string;
  mutable memo_id : int;
}

let no_msg_id = -1

(* a string no caller can be physically equal to, so the memo never hits
   before its first fill *)
let memo_unset = String.init 1 (fun _ -> '\255')

let create ?(capacity = 1024) () =
  let capacity = max 1 capacity in
  {
    len = 0;
    subjects = Array.make capacity "";
    assets = Array.make capacity "";
    modes = Array.make capacity "";
    ops = Array.make capacity 0;
    msg_ids = Array.make capacity no_msg_id;
    nows = Array.make capacity 0.0;
    exact_hash = Array.make capacity 0;
    wild_hash = Array.make capacity 0;
    memo_stamp = -1;
    memo_mode = memo_unset;
    memo_id = 0;
  }

let length t = t.len

let capacity t = Array.length t.ops

let clear t = t.len <- 0

let grow t =
  let cap = Array.length t.ops in
  let cap' = 2 * cap in
  let extend fill a =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  t.subjects <- extend "" t.subjects;
  t.assets <- extend "" t.assets;
  t.modes <- extend "" t.modes;
  t.ops <- extend 0 t.ops;
  t.msg_ids <- extend no_msg_id t.msg_ids;
  t.nows <- extend 0.0 t.nows;
  t.exact_hash <- extend 0 t.exact_hash;
  t.wild_hash <- extend 0 t.wild_hash

let push ?(now = 0.0) t (req : Ir.request) =
  if t.len = Array.length t.ops then grow t;
  let i = t.len in
  t.subjects.(i) <- req.subject;
  t.assets.(i) <- req.asset;
  t.modes.(i) <- req.mode;
  t.ops.(i) <- Ir.Request.op_tag req.op;
  t.msg_ids.(i) <-
    (match req.msg_id with None -> no_msg_id | Some id -> id);
  t.nows.(i) <- now;
  t.exact_hash.(i) <-
    Ir.Request.triple_hash ~subject:req.subject ~asset:req.asset req.op;
  t.wild_hash.(i) <- Ir.Request.pair_hash ~asset:req.asset req.op;
  t.len <- i + 1

let of_work work =
  let t = create ~capacity:(max 1 (Array.length work)) () in
  Array.iter (fun (now, req) -> push ~now t req) work;
  t

let request t i =
  if i < 0 || i >= t.len then invalid_arg "Batch.request: index out of bounds";
  {
    Ir.mode = t.modes.(i);
    subject = t.subjects.(i);
    asset = t.assets.(i);
    op = (if t.ops.(i) = Ir.Request.op_tag Ir.Read then Ir.Read else Ir.Write);
    msg_id = (let m = t.msg_ids.(i) in if m = no_msg_id then None else Some m);
  }
