(** Struct-of-arrays request arena for the batched decision path.

    A [Batch.t] holds up to [capacity] requests decomposed into flat
    columns — one array per field, plus the two dispatch hashes of the
    compiled table pre-computed at fill time — so
    {!Engine.decide_batch} can stream over plain arrays instead of
    chasing one {!Ir.request} record per decision.  The arena is
    reusable: {!clear} resets the length without touching the buffers,
    so a caller that fills, decides and clears in a loop allocates
    nothing after the arena has grown to its working size.

    {b Representation.}  The record is exposed (rather than abstract)
    because the decision-table inner loop in {!Table} reads the columns
    directly; treat every field as owned by this library.  [ops] holds
    {!Ir.Request.op_tag} values, [msg_ids] uses {!no_msg_id} for
    requests without a message ID, and the [memo_*] fields are the
    mode-interning memo private to {!Table.decide_batch}. *)

type t = {
  mutable len : int;
  mutable subjects : string array;
  mutable assets : string array;
  mutable modes : string array;
  mutable ops : int array;  (** {!Ir.Request.op_tag} per request *)
  mutable msg_ids : int array;  (** {!no_msg_id} when the request has none *)
  mutable nows : float array;  (** rate-limit timestamps, seconds *)
  mutable exact_hash : int array;  (** {!Ir.Request.triple_hash} *)
  mutable wild_hash : int array;  (** {!Ir.Request.pair_hash} *)
  mutable memo_stamp : int;
  mutable memo_mode : string;
  mutable memo_id : int;
}

val no_msg_id : int
(** The [msg_ids] sentinel for "no message ID" ([-1]; real IDs are
    non-negative). *)

val create : ?capacity:int -> unit -> t
(** An empty arena with room for [capacity] (default 1024) requests
    before the first growth. *)

val length : t -> int

val capacity : t -> int

val clear : t -> unit
(** Forget the contents, keep the buffers: O(1), no allocation. *)

val push : ?now:float -> t -> Ir.request -> unit
(** Append one request, pre-hashing its dispatch keys.  [now] (default
    [0.]) is the timestamp rate-limited rules will see, as in
    {!Engine.decide}.  Amortised O(1); allocates only when the arena
    must grow (doubling). *)

val of_work : (float * Ir.request) array -> t
(** A fresh arena filled from [(now, request)] pairs, sized exactly. *)

val request : t -> int -> Ir.request
(** Reconstruct request [i] as a record (allocates; for tests and the
    interpreted fallback, never the hot path).
    @raise Invalid_argument when [i] is out of bounds. *)
