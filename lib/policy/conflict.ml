type conflict = { rule_a : Ir.rule; rule_b : Ir.rule; reason : string }

let intersect a b = List.exists (fun x -> List.mem x b) a

let subjects_overlap a b =
  match (a, b) with
  | Ast.Any_subject, _ | _, Ast.Any_subject -> true
  | Ast.Subjects xs, Ast.Subjects ys -> intersect xs ys

let modes_overlap a b =
  match (a, b) with
  | None, _ | _, None -> true
  | Some xs, Some ys -> intersect xs ys

(* Message clauses reduce to the shared symbolic {!Region} semantics: two
   clauses overlap iff their regions intersect (a missing clause is the
   full region, so it overlaps everything non-empty). *)
let messages_overlap a b =
  not
    (Region.is_empty
       (Region.inter (Region.of_messages a) (Region.of_messages b)))

let overlap (a : Ir.rule) (b : Ir.rule) =
  a.asset = b.asset
  && intersect a.ops b.ops
  && subjects_overlap a.subjects b.subjects
  && modes_overlap a.modes b.modes
  && messages_overlap a.messages b.messages

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

let subjects_covers a b =
  match (a, b) with
  | Ast.Any_subject, _ -> true
  | Ast.Subjects _, Ast.Any_subject -> false
  | Ast.Subjects xs, Ast.Subjects ys -> subset ys xs

let modes_covers a b =
  match (a, b) with
  | None, _ -> true
  | Some _, None -> false
  | Some xs, Some ys -> subset ys xs

let messages_covers a b =
  Region.subset (Region.of_messages b) (Region.of_messages a)

let covers (a : Ir.rule) (b : Ir.rule) =
  (* a rate-limited rule stops matching once its budget is spent, so it
     never fully covers another rule *)
  a.rate = None
  && a.asset = b.asset
  && subset b.ops a.ops
  && subjects_covers a.subjects b.subjects
  && modes_covers a.modes b.modes
  && messages_covers a.messages b.messages

let ordered_pairs rules =
  let rec loop acc = function
    | [] -> List.rev acc
    | r :: rest ->
        let acc = List.fold_left (fun acc r' -> (r, r') :: acc) acc rest in
        loop acc rest
  in
  loop [] rules

let conflicts (db : Ir.db) =
  ordered_pairs db.rules
  |> List.filter_map (fun ((a : Ir.rule), (b : Ir.rule)) ->
         if a.decision <> b.decision && overlap a b then
           Some
             {
               rule_a = a;
               rule_b = b;
               reason =
                 Printf.sprintf
                   "rules #%d (%s) and #%d (%s) overlap on asset %s with opposite decisions"
                   a.idx (Ast.decision_name a.decision) b.idx
                   (Ast.decision_name b.decision) a.asset;
             }
         else None)

let shadowed (db : Ir.db) =
  ordered_pairs db.rules
  |> List.filter (fun ((a : Ir.rule), (b : Ir.rule)) ->
         a.decision = b.decision && covers a b)

let pp_conflict ppf c = Format.pp_print_string ppf c.reason
