type cell = { mode : string; subject : string; asset : string; op : Ir.op }

type verdict = Full | Partial of Ast.msg_range list | Gap

type report = {
  total : int;
  covered : int;
  partial : (cell * Ast.msg_range list) list;
  gaps : cell list;
  default : Ast.decision;
}

(* Ignoring the message dimension: does the rule speak about this cell at
   all? *)
let rule_touches (r : Ir.rule) (c : cell) =
  r.asset = c.asset
  && List.mem c.op r.ops
  && (match r.subjects with
     | Ast.Any_subject -> true
     | Ast.Subjects l -> List.mem c.subject l)
  && match r.modes with None -> true | Some l -> List.mem c.mode l

(* A rule scoped to message ids decides the cell only for those ids:
   requests outside the ranges (or carrying no id at all) fall through, so
   the rule must not count as covering the whole cell. *)
let rule_covers (r : Ir.rule) (c : cell) = rule_touches r c && r.messages = None

(* The union of the touching rules' message regions (shared {!Region}
   semantics) classifies the cell: a region including the id-less request
   can only come from a rule with no message clause, which decides every
   id — [Full]; an empty union means nothing touches — [Gap]; anything
   else decides only the ids it covers — [Partial]. *)
let classify (db : Ir.db) c =
  let touching = List.filter (fun r -> rule_touches r c) db.rules in
  let region =
    List.fold_left
      (fun acc (r : Ir.rule) ->
        Region.union acc (Region.of_messages r.messages))
      Region.empty touching
  in
  if region.Region.none then Full
  else if Region.is_empty region then Gap
  else Partial (Region.to_ranges region)

let cell_covered (db : Ir.db) c = classify db c = Full

let analyse db ~modes ~subjects ~assets =
  if modes = [] || subjects = [] || assets = [] then
    invalid_arg "Coverage.analyse: empty universe";
  let gaps = ref [] in
  let partial = ref [] in
  let covered = ref 0 in
  let total = ref 0 in
  List.iter
    (fun mode ->
      List.iter
        (fun subject ->
          List.iter
            (fun asset ->
              List.iter
                (fun op ->
                  incr total;
                  let c = { mode; subject; asset; op } in
                  match classify db c with
                  | Full -> incr covered
                  | Partial ranges -> partial := (c, ranges) :: !partial
                  | Gap -> gaps := c :: !gaps)
                [ Ir.Read; Ir.Write ])
            assets)
        subjects)
    modes;
  { total = !total; covered = !covered; partial = List.rev !partial;
    gaps = List.rev !gaps; default = db.Ir.default }

let ratio r = if r.total = 0 then 1.0 else float_of_int r.covered /. float_of_int r.total

let ranges_text ranges =
  String.concat "," (List.map Ir.range_text ranges)

let pp ppf r =
  Format.fprintf ppf
    "coverage: %d/%d cells decided explicitly (%.0f%%); %d partial, %d gap(s) \
     fall to default %s"
    r.covered r.total
    (100.0 *. ratio r)
    (List.length r.partial)
    (List.length r.gaps)
    (Ast.decision_name r.default);
  List.iteri
    (fun i (c, ranges) ->
      if i < 5 then
        Format.fprintf ppf "@,  partial: %s %s %s in %s decided only for messages %s"
          c.subject (Ir.op_name c.op) c.asset c.mode (ranges_text ranges))
    r.partial;
  List.iteri
    (fun i c ->
      if i < 5 then
        Format.fprintf ppf "@,  gap: %s %s %s in %s" c.subject
          (Ir.op_name c.op) c.asset c.mode)
    r.gaps;
  if List.length r.gaps > 5 then
    Format.fprintf ppf "@,  ... and %d more" (List.length r.gaps - 5)
