(** Coverage analysis: which cells of the access space does a policy decide
    explicitly, and which fall silently to the default?

    With [default deny] a gap is fail-safe but may indicate a forgotten
    legitimate flow (a Q4 false block waiting to happen); with
    [default allow] a gap is an unreviewed permission.  The analysis
    enumerates the [(mode, subject, asset, operation)] grid over declared
    universes and reports the cells no rule speaks about.

    The message-id dimension is handled conservatively: a rule scoped to
    message ranges decides its cell only for the ids it names, so such a
    cell is {e partially} covered — requests outside the ranges (or with no
    message id) still fall to the default. *)

type cell = { mode : string; subject : string; asset : string; op : Ir.op }

type verdict =
  | Full  (** some rule with no message restriction decides the cell *)
  | Partial of Ast.msg_range list
      (** only message-scoped rules decide it; the normalised union of the
          decided ids is given *)
  | Gap  (** no rule speaks about the cell *)

type report = {
  total : int;  (** grid size *)
  covered : int;  (** fully covered cells *)
  partial : (cell * Ast.msg_range list) list;
      (** cells decided only for some message ids, deterministic order *)
  gaps : cell list;  (** uncovered cells, deterministic order *)
  default : Ast.decision;  (** what the gaps resolve to at run time *)
}

val rule_covers : Ir.rule -> cell -> bool
(** Full cover: the rule's scope includes the cell and it carries no
    message restriction. *)

val rule_touches : Ir.rule -> cell -> bool
(** The rule's (asset, op, subject, mode) scope includes the cell, message
    restrictions ignored. *)

val classify : Ir.db -> cell -> verdict

val cell_covered : Ir.db -> cell -> bool
(** [classify db c = Full]. *)

val analyse :
  Ir.db ->
  modes:string list ->
  subjects:string list ->
  assets:string list ->
  report
(** Enumerate the grid.  Universes must be non-empty.
    @raise Invalid_argument otherwise. *)

val ratio : report -> float
(** fully covered / total. *)

val pp : Format.formatter -> report -> unit
(** Summary plus the first few partial cells and gaps. *)
