type severity = Error | Warning | Info

type code =
  | Conflict
  | Shadowed
  | Coverage_gap
  | Unreachable_rule
  | Mode_unknown
  | Rate_deny
  | Rate_ineffective
  | Hpe_mismatch
  | Threat_untraced
  | Mode_mergeable
  | Region_empty
  | Allow_widened
  | Threat_unmitigated
  | Semantics_divergence

type t = {
  code : code;
  severity : severity;
  message : string;
  rules : int list;
  asset : string option;
  subject : string option;
  mode : string option;
  op : Ir.op option;
  msg_range : (int * int) option;
}

let all_codes =
  [
    Conflict; Shadowed; Coverage_gap; Unreachable_rule; Mode_unknown;
    Rate_deny; Rate_ineffective; Hpe_mismatch; Threat_untraced;
    Mode_mergeable; Region_empty; Allow_widened; Threat_unmitigated;
    Semantics_divergence;
  ]

let id = function
  | Conflict -> "SP001"
  | Shadowed -> "SP002"
  | Coverage_gap -> "SP003"
  | Unreachable_rule -> "SP004"
  | Mode_unknown -> "SP005"
  | Rate_deny -> "SP006"
  | Rate_ineffective -> "SP007"
  | Hpe_mismatch -> "SP008"
  | Threat_untraced -> "SP009"
  | Mode_mergeable -> "SP010"
  | Region_empty -> "SP011"
  | Allow_widened -> "SP012"
  | Threat_unmitigated -> "SP013"
  | Semantics_divergence -> "SP014"

let slug = function
  | Conflict -> "conflict"
  | Shadowed -> "shadowed"
  | Coverage_gap -> "coverage-gap"
  | Unreachable_rule -> "unreachable-rule"
  | Mode_unknown -> "mode-unknown"
  | Rate_deny -> "rate-deny"
  | Rate_ineffective -> "rate-ineffective"
  | Hpe_mismatch -> "hpe-mismatch"
  | Threat_untraced -> "threat-untraced"
  | Mode_mergeable -> "mode-mergeable"
  | Region_empty -> "region-empty"
  | Allow_widened -> "allow-widened"
  | Threat_unmitigated -> "threat-unmitigated"
  | Semantics_divergence -> "semantics-divergence"

let code_of_id s =
  List.find_opt (fun c -> id c = s || slug c = s) all_codes

(* A conflict, a rule that never matches because of a typo, an impossible
   rate, or hardware contradicting software are all bugs in the policy; dead
   rules and silent defaults are smells the author should review. *)
let default_severity = function
  | Conflict | Mode_unknown | Rate_deny | Hpe_mismatch | Semantics_divergence
    ->
      Error
  | Shadowed | Coverage_gap | Unreachable_rule | Rate_ineffective
  | Threat_untraced | Region_empty | Allow_widened | Threat_unmitigated ->
      Warning
  | Mode_mergeable -> Info

let explain = function
  | Conflict ->
      "Two rules overlap — some (mode, subject, asset, operation, message \
       id) request matches both — and they disagree on the decision.  The \
       outcome then depends entirely on the resolution strategy, which is \
       rarely what the author meant: make the scopes disjoint or delete \
       one rule."
  | Shadowed ->
      "A rule's entire scope is covered by an earlier rule with the same \
       decision, so it can never change any outcome.  Dead weight: delete \
       it, or narrow the earlier rule if the later one was meant to \
       differ."
  | Coverage_gap ->
      "No rule decides some (mode, subject, asset, operation) cell — or \
       decides it only for part of the message-id space — so those \
       requests fall silently to the policy default.  Under default deny \
       this fails safe (informational); under default allow it is an \
       unreviewed permission (warning)."
  | Unreachable_rule ->
      "Under the chosen resolution strategy a single other rule covers \
       this rule's whole scope and always wins (a deny over an allow \
       under deny-overrides, an unlimited allow over a deny under \
       allow-overrides, an earlier opposite rule under first-match), so \
       no request can ever trigger it."
  | Mode_unknown ->
      "The rule names a mode outside the declared mode universe.  Almost \
       always a typo: the rule silently never matches, because the \
       vehicle can never be in a mode that does not exist."
  | Rate_deny ->
      "A deny rule carries a rate limit.  A deny must be unconditional — \
       \"deny, but only so often\" would mean the request is sometimes \
       allowed by exhaustion, which inverts the intent.  The compiler \
       rejects this; the lint reports it with a location."
  | Rate_ineffective ->
      "A rate limit can never bind because an unlimited allow rule \
       covers the same scope: when the budget runs out, the request \
       falls through to the unlimited rule and is allowed anyway.  \
       Either drop the rate or narrow the unlimited rule."
  | Hpe_mismatch ->
      "The hardware policy engine's approved-id lists disagree with the \
       software engine's decision for some (binding, operation): one \
       layer grants what the other denies.  The two enforcement points \
       must agree, or the weaker one is the real policy."
  | Threat_untraced ->
      "A threat in the catalogue maps to no policy rule at all: nothing \
       in the policy even touches the threat's asset in its modes, so \
       the countermeasure the model calls for does not exist."
  | Mode_mergeable ->
      "Semantic verifier: two (or more) modes decide an asset \
       identically for every subject, operation and message id, through \
       distinct mode-scoped rules.  The rules could merge into one rule \
       naming all the modes — smaller policy, one place to update."
  | Region_empty ->
      "Semantic verifier: after strategy folding, the rule's effective \
       decision region is empty — every request it matches is decided \
       by earlier or overriding rules, possibly by several of them \
       jointly.  Strictly stronger than SP004, which only detects a \
       single covering rule."
  | Allow_widened ->
      "Update differ: the new policy version allows requests the old \
       version denied (or relaxes a rate-limited allow to an unlimited \
       one) somewhere in the decision space.  Widening may be intended, \
       but it must be reviewed — an OTA campaign should never widen \
       silently."
  | Threat_unmitigated ->
      "Threat-assertion checker: the policy allows the attack operation \
       of a catalogued threat on its asset, in a mode the threat is \
       live, for a subject the threat model does not exempt.  The \
       reported region is exactly the unmitigated attack surface."
  | Semantics_divergence ->
      "The symbolic verifier found a request on which the interpreted \
       engine and the compiled decision table disagree (or an engine \
       disagrees with the symbolic decision partition).  This is a \
       toolchain bug, never a policy bug: report it."

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_name = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let make ?severity ?(rules = []) ?asset ?subject ?mode ?op ?msg_range code
    message =
  {
    code;
    severity =
      (match severity with Some s -> s | None -> default_severity code);
    message;
    rules = List.sort_uniq Int.compare rules;
    asset;
    subject;
    mode;
    op;
    msg_range;
  }

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let cmp =
    Stdlib.compare (severity_rank a.severity) (severity_rank b.severity)
  in
  if cmp <> 0 then cmp
  else
    let cmp = String.compare (id a.code) (id b.code) in
    if cmp <> 0 then cmp
    else
      let cmp = Stdlib.compare a.rules b.rules in
      if cmp <> 0 then cmp
      else
        Stdlib.compare
          (a.asset, a.subject, a.mode, a.op, a.msg_range, a.message)
          (b.asset, b.subject, b.mode, b.op, b.msg_range, b.message)

let by_code code = List.filter (fun d -> d.code = code)

let count severity l =
  List.length (List.filter (fun d -> d.severity = severity) l)

let worst = function
  | [] -> None
  | l ->
      Some
        (List.fold_left
           (fun acc d ->
             if severity_rank d.severity < severity_rank acc then d.severity
             else acc)
           Info l)

let pp ppf d =
  Format.fprintf ppf "%s %s (%s): %s"
    (severity_name d.severity)
    (id d.code) (slug d.code) d.message

let to_json d =
  let opt_str key = function
    | None -> []
    | Some s -> [ (key, Json.String s) ]
  in
  Json.Obj
    ([
       ("code", Json.String (id d.code));
       ("slug", Json.String (slug d.code));
       ("severity", Json.String (severity_name d.severity));
       ("message", Json.String d.message);
       ("rules", Json.List (List.map (fun i -> Json.Int i) d.rules));
     ]
    @ opt_str "asset" d.asset
    @ opt_str "subject" d.subject
    @ opt_str "mode" d.mode
    @ opt_str "op" (Option.map Ir.op_name d.op)
    @
    match d.msg_range with
    | None -> []
    | Some (lo, hi) ->
        [ ("messages", Json.Obj [ ("lo", Json.Int lo); ("hi", Json.Int hi) ]) ])

let of_json json =
  let ( let* ) r f = Result.bind r f in
  let field key conv what =
    match Option.bind (Json.member key json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "diagnostic: missing or bad %S %s" key what)
  in
  let opt_str key = Option.bind (Json.member key json) Json.to_str in
  let* code_str = field "code" Json.to_str "string" in
  let* code =
    match code_of_id code_str with
    | Some c -> Ok c
    | None -> Error (Printf.sprintf "diagnostic: unknown code %S" code_str)
  in
  let* severity_str = field "severity" Json.to_str "string" in
  let* severity =
    match severity_of_name severity_str with
    | Some s -> Ok s
    | None ->
        Error (Printf.sprintf "diagnostic: unknown severity %S" severity_str)
  in
  let* message = field "message" Json.to_str "string" in
  let* rule_items = field "rules" Json.to_list "list" in
  let* rules =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        match Json.to_int item with
        | Some i -> Ok (i :: acc)
        | None -> Error "diagnostic: non-integer rule index")
      (Ok []) rule_items
  in
  let* op =
    match opt_str "op" with
    | None -> Ok None
    | Some "read" -> Ok (Some Ir.Read)
    | Some "write" -> Ok (Some Ir.Write)
    | Some other -> Error (Printf.sprintf "diagnostic: unknown op %S" other)
  in
  let* msg_range =
    match Json.member "messages" json with
    | None -> Ok None
    | Some r -> (
        match
          ( Option.bind (Json.member "lo" r) Json.to_int,
            Option.bind (Json.member "hi" r) Json.to_int )
        with
        | Some lo, Some hi -> Ok (Some (lo, hi))
        | _ -> Error "diagnostic: bad messages range")
  in
  Ok
    {
      code;
      severity;
      message;
      rules = List.sort_uniq Int.compare (List.rev rules);
      asset = opt_str "asset";
      subject = opt_str "subject";
      mode = opt_str "mode";
      op;
      msg_range;
    }
