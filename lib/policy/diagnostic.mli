(** Structured diagnostics for Secpol static analysis.

    Every finding a lint pass can emit carries a {e stable} code (the
    [SPxxx] identifiers below never change meaning between releases — CI
    gates and editors key on them), a severity, a human-readable message
    and a structured payload naming the rules, asset, subject, mode,
    operation and message-id range involved, so tooling does not have to
    parse prose.  Text and JSON renderers are provided; the JSON form
    round-trips through {!of_json}. *)

type severity = Error | Warning | Info

type code =
  | Conflict  (** [SP001] overlapping rules with opposite decisions *)
  | Shadowed  (** [SP002] rule fully covered by an earlier same-decision rule *)
  | Coverage_gap
      (** [SP003] an access cell no rule decides (or decides only for some
          message ids), falling silently to the default *)
  | Unreachable_rule
      (** [SP004] a rule no request can trigger under the chosen resolution
          strategy *)
  | Mode_unknown
      (** [SP005] a rule names a mode outside the declared mode universe, so
          it silently never matches *)
  | Rate_deny  (** [SP006] a deny rule carries a rate limit *)
  | Rate_ineffective
      (** [SP007] a rate limit that never binds because an unlimited allow
          rule covers the same scope *)
  | Hpe_mismatch
      (** [SP008] hardware policy engine configuration disagrees with the
          software engine's decision for some (binding, op) *)
  | Threat_untraced
      (** [SP009] a threat-catalogue countermeasure maps to no policy rule *)
  | Mode_mergeable
      (** [SP010] modes whose decision functions are identical on an asset
          through distinct mode-scoped rules — merge candidates *)
  | Region_empty
      (** [SP011] a rule whose effective decision region is empty after
          strategy folding: earlier/overriding rules jointly capture its
          whole scope (strictly stronger than SP004) *)
  | Allow_widened
      (** [SP012] a policy update widens an allow region: the new version
          allows requests the old version denied *)
  | Threat_unmitigated
      (** [SP013] the policy allows a catalogued threat's attack operation
          on its asset for a non-exempt subject *)
  | Semantics_divergence
      (** [SP014] interpreted and compiled engines (or an engine and the
          symbolic partition) disagree on a request — a toolchain bug *)

type t = {
  code : code;
  severity : severity;
  message : string;
  rules : int list;  (** indices of the rules involved, ascending *)
  asset : string option;
  subject : string option;
  mode : string option;
  op : Ir.op option;
  msg_range : (int * int) option;
}

val all_codes : code list
(** In [SP001..] order. *)

val id : code -> string
(** The stable identifier, e.g. ["SP001"]. *)

val slug : code -> string
(** The stable short name, e.g. ["coverage-gap"]. *)

val code_of_id : string -> code option
(** Accepts either the [SPxxx] id or the slug. *)

val default_severity : code -> severity

val explain : code -> string
(** The long-form description of a code — what the finding means, why it
    matters and what to do about it ([secpolc lint --explain]). *)

val severity_name : severity -> string

val severity_of_name : string -> severity option

val make :
  ?severity:severity ->
  ?rules:int list ->
  ?asset:string ->
  ?subject:string ->
  ?mode:string ->
  ?op:Ir.op ->
  ?msg_range:int * int ->
  code ->
  string ->
  t
(** [make code message] with the code's default severity unless
    overridden.  Rule indices are sorted. *)

val compare : t -> t -> int
(** Severity first (errors before warnings before infos), then code, then
    rule indices, then payload — a deterministic report order. *)

val by_code : code -> t list -> t list

val count : severity -> t list -> int

val worst : t list -> severity option
(** [None] on an empty list. *)

val pp : Format.formatter -> t -> unit
(** One line: [error SP001 (conflict): message]. *)

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result
