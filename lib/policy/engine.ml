type strategy = Table.strategy =
  | Deny_overrides
  | Allow_overrides
  | First_match

type mode = [ `Interpreted | `Compiled ]

type outcome = {
  decision : Ast.decision;
  matched : Ir.rule option;
  from_cache : bool;
}

type stats = {
  decisions : int;
  allows : int;
  denies : int;
  cache_hits : int;
  cache_misses : int;
  cache_flushes : int;
}

module Cache = Hashtbl.Make (Ir.Request)

type t = {
  mutable db : Ir.db;
  strategy : strategy;
  mode : mode;
  mutable by_asset : (string, Ir.rule list) Hashtbl.t;
      (* interpreted path; kept in both modes for introspection *)
  mutable table : Table.t option;  (* compiled path *)
  cache : (Ast.decision * Ir.rule option) Cache.t option;
  cache_capacity : int;
  (* sliding-window grant timestamps per (rate-limited rule, subject) *)
  buckets : (int * string, float list ref) Hashtbl.t;
  mutable rated_assets : string list;
  mutable decisions : int;
  mutable allows : int;
  mutable denies : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_flushes : int;
}

let index_by_asset (db : Ir.db) =
  let tbl = Hashtbl.create 32 in
  (* keep source order within each asset bucket *)
  List.iter
    (fun (r : Ir.rule) ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt tbl r.asset) in
      Hashtbl.replace tbl r.asset (existing @ [ r ]))
    db.rules;
  tbl

let rated_assets_of (db : Ir.db) =
  db.rules
  |> List.filter_map (fun (r : Ir.rule) ->
         if r.rate <> None then Some r.asset else None)
  |> List.sort_uniq String.compare

let default_cache_capacity = 8192

let create ?(strategy = Deny_overrides) ?(cache = true)
    ?(cache_capacity = default_cache_capacity) ?(mode = `Compiled) db =
  if cache_capacity <= 0 then
    invalid_arg "Engine.create: cache_capacity must be positive";
  {
    db;
    strategy;
    mode;
    by_asset = index_by_asset db;
    table =
      (match mode with
      | `Compiled -> Some (Table.compile ~strategy db)
      | `Interpreted -> None);
    cache = (if cache then Some (Cache.create 256) else None);
    cache_capacity;
    buckets = Hashtbl.create 32;
    rated_assets = rated_assets_of db;
    decisions = 0;
    allows = 0;
    denies = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_flushes = 0;
  }

let strategy t = t.strategy

let mode t = t.mode

let db t = t.db

let table_stats t = Option.map Table.stats t.table

(* Behavioural budgets: a rate-limited allow rule is *available* while its
   sliding window has room, and its budget is consumed only when the rule
   actually produces the Allow decision — matching alongside a winning deny
   costs nothing.  Deny rules never carry rates (the compiler refuses
   them). *)
let bucket_of t (r : Ir.rule) subject =
  let key = (r.idx, subject) in
  match Hashtbl.find_opt t.buckets key with
  | Some b -> b
  | None ->
      let b = ref [] in
      Hashtbl.replace t.buckets key b;
      b

let rate_available t ~now (r : Ir.rule) subject =
  match r.rate with
  | None -> true
  | Some { Ast.count; window_ms } ->
      let bucket = bucket_of t r subject in
      let horizon = now -. (float_of_int window_ms /. 1000.0) in
      bucket := List.filter (fun ts -> ts > horizon) !bucket;
      List.length !bucket < count

let rate_consume t ~now (r : Ir.rule) subject =
  if r.rate <> None then begin
    let bucket = bucket_of t r subject in
    bucket := now :: !bucket
  end

let matching_rules t (req : Ir.request) =
  let candidates =
    Option.value ~default:[] (Hashtbl.find_opt t.by_asset req.Ir.asset)
  in
  List.filter (fun r -> Ir.rule_matches r req) candidates

let resolve_interpreted t ~now (req : Ir.request) =
  let matching = matching_rules t req in
  let subject = req.Ir.subject in
  (* the first allow rule whose budget (if any) has room; consuming it *)
  let take_allow rules =
    match
      List.find_opt
        (fun (r : Ir.rule) ->
          r.decision = Ast.Allow && rate_available t ~now r subject)
        rules
    with
    | Some r ->
        rate_consume t ~now r subject;
        Some r
    | None -> None
  in
  match t.strategy with
  | First_match ->
      (* scan in source order; an exhausted allow rule is skipped *)
      let rec scan = function
        | [] -> (t.db.default, None)
        | (r : Ir.rule) :: rest -> (
            match r.decision with
            | Ast.Deny -> (Ast.Deny, Some r)
            | Ast.Allow ->
                if rate_available t ~now r subject then begin
                  rate_consume t ~now r subject;
                  (Ast.Allow, Some r)
                end
                else scan rest)
      in
      scan matching
  | Deny_overrides -> (
      match List.find_opt (fun (r : Ir.rule) -> r.decision = Ast.Deny) matching with
      | Some r -> (Ast.Deny, Some r)
      | None -> (
          match take_allow matching with
          | Some r -> (Ast.Allow, Some r)
          | None -> (t.db.default, None)))
  | Allow_overrides -> (
      match take_allow matching with
      | Some r -> (Ast.Allow, Some r)
      | None -> (
          match
            List.find_opt (fun (r : Ir.rule) -> r.decision = Ast.Deny) matching
          with
          | Some r -> (Ast.Deny, Some r)
          | None -> (t.db.default, None)))

let resolve t ~now (req : Ir.request) =
  match t.table with
  | Some table ->
      Table.decide table
        ~rate_available:(fun r -> rate_available t ~now r req.Ir.subject)
        ~rate_consume:(fun r -> rate_consume t ~now r req.Ir.subject)
        req
  | None -> resolve_interpreted t ~now req

let record t decision =
  t.decisions <- t.decisions + 1;
  match decision with
  | Ast.Allow -> t.allows <- t.allows + 1
  | Ast.Deny -> t.denies <- t.denies + 1

let cache_insert t cache req entry =
  (* bounded: a full flush beats per-entry eviction bookkeeping on the hot
     path, and the compiled table repopulates a flushed cache in one pass
     over the working set *)
  if Cache.length cache >= t.cache_capacity then begin
    Cache.reset cache;
    t.cache_flushes <- t.cache_flushes + 1
  end;
  Cache.replace cache req entry

let decide ?(now = 0.0) t (req : Ir.request) =
  let cacheable = not (List.mem req.Ir.asset t.rated_assets) in
  match t.cache with
  | Some cache when cacheable -> (
      match Cache.find_opt cache req with
      | Some (decision, matched) ->
          t.cache_hits <- t.cache_hits + 1;
          record t decision;
          { decision; matched; from_cache = true }
      | None ->
          t.cache_misses <- t.cache_misses + 1;
          let decision, matched = resolve t ~now req in
          cache_insert t cache req (decision, matched);
          record t decision;
          { decision; matched; from_cache = false })
  | Some _ | None ->
      let decision, matched = resolve t ~now req in
      record t decision;
      { decision; matched; from_cache = false }

let permitted ?now t req = (decide ?now t req).decision = Ast.Allow

let flush_cache t = Option.iter Cache.reset t.cache

let swap_db t db =
  t.db <- db;
  t.by_asset <- index_by_asset db;
  (match t.mode with
  | `Compiled -> t.table <- Some (Table.compile ~strategy:t.strategy db)
  | `Interpreted -> ());
  t.rated_assets <- rated_assets_of db;
  Hashtbl.reset t.buckets;
  flush_cache t

let stats t =
  {
    decisions = t.decisions;
    allows = t.allows;
    denies = t.denies;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
    cache_flushes = t.cache_flushes;
  }

let pp_outcome ppf o =
  Format.fprintf ppf "%s%s"
    (Ast.decision_name o.decision)
    (match o.matched with
    | None -> " (default)"
    | Some r -> Printf.sprintf " (rule #%d of %s)" r.idx r.origin)
