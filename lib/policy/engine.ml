module Obs = Secpol_obs

type strategy = Table.strategy =
  | Deny_overrides
  | Allow_overrides
  | First_match

type mode = [ `Interpreted | `Compiled ]

type outcome = {
  decision : Ast.decision;
  matched : Ir.rule option;
  from_cache : bool;
}

type stats = {
  decisions : int;
  allows : int;
  denies : int;
  cache_hits : int;
  cache_misses : int;
  cache_flushes : int;
}

module Cache = Hashtbl.Make (Ir.Request)

exception Unavailable

type t = {
  mutable db : Ir.db;
  mutable stalled : bool;
  strategy : strategy;
  mode : mode;
  mutable by_asset : (string, Ir.rule list) Hashtbl.t;
      (* interpreted path; kept in both modes for introspection *)
  mutable table : Table.t option;  (* compiled path *)
  cache : (Ast.decision * Ir.rule option) Cache.t option;
  cache_capacity : int;
  (* sliding-window grant budgets per (rate-limited rule, subject) *)
  buckets : (int * string, Rate_window.t) Hashtbl.t;
  (* the batch path's rate callbacks, closed over [buckets] once at
     construction so decide_batch passes pre-existing closures instead of
     allocating fresh ones per call *)
  rate_avail_cb : Ir.rule -> string -> float -> bool;
  rate_cons_cb : Ir.rule -> string -> float -> unit;
  mutable rated_assets : string list;
  (* one consistent registry instead of ad-hoc mutable stat fields; the
     counters exist (and cost one word each) even without a registry, so
     the hot path never branches on whether telemetry is attached *)
  c_decisions : Obs.Counter.t;
  c_allows : Obs.Counter.t;
  c_denies : Obs.Counter.t;
  c_cache_hits : Obs.Counter.t;
  c_cache_misses : Obs.Counter.t;
  c_cache_flushes : Obs.Counter.t;
  latency : Obs.Histogram.t option; (* per-decision, ns; None when no obs *)
  batch_latency : Obs.Histogram.t option; (* per-batch, ns; None when no obs *)
  clock : unit -> float;
  events : Obs.Ring.t option;
}

let index_by_asset (db : Ir.db) =
  let tbl = Hashtbl.create 32 in
  (* keep source order within each asset bucket: cons (O(1)) while
     scanning, then reverse each bucket once — appending with [@] here is
     quadratic in rules per asset *)
  List.iter
    (fun (r : Ir.rule) ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt tbl r.asset) in
      Hashtbl.replace tbl r.asset (r :: existing))
    db.rules;
  Hashtbl.filter_map_inplace (fun _ rules -> Some (List.rev rules)) tbl;
  tbl

let rated_assets_of (db : Ir.db) =
  db.rules
  |> List.filter_map (fun (r : Ir.rule) ->
         if r.rate <> None then Some r.asset else None)
  |> List.sort_uniq String.compare

let default_cache_capacity = 8192

(* Behavioural budgets, shared by the scalar and batched paths: a
   rate-limited allow rule is *available* while its sliding window has
   room, and its budget is consumed only when the rule actually produces
   the Allow decision.  Keyed by (rule index, subject) over the engine's
   bucket table — free functions so the batch callbacks can close over
   the table before the engine record exists. *)
let bucket_of buckets (r : Ir.rule) rate subject =
  let key = (r.Ir.idx, subject) in
  match Hashtbl.find_opt buckets key with
  | Some w -> w
  | None ->
      let w = Rate_window.of_rate rate in
      Hashtbl.replace buckets key w;
      w

let rate_available_in buckets ~now (r : Ir.rule) subject =
  match r.rate with
  | None -> true
  | Some rate -> Rate_window.available (bucket_of buckets r rate subject) ~now

let rate_consume_in buckets ~now (r : Ir.rule) subject =
  match r.rate with
  | None -> ()
  | Some rate -> Rate_window.consume (bucket_of buckets r rate subject) ~now

let make ~strategy ~cache ~cache_capacity ~mode ~obs ~table db =
  if cache_capacity <= 0 then
    invalid_arg "Engine.create: cache_capacity must be positive";
  let counter name =
    let c = Obs.Counter.create () in
    Option.iter
      (fun reg -> Obs.Registry.register_counter reg ("policy.engine." ^ name) c)
      obs;
    c
  in
  let buckets = Hashtbl.create 32 in
  {
    db;
    stalled = false;
    strategy;
    mode;
    by_asset = index_by_asset db;
    table;
    cache = (if cache then Some (Cache.create 256) else None);
    cache_capacity;
    buckets;
    rate_avail_cb = (fun r subject now -> rate_available_in buckets ~now r subject);
    rate_cons_cb = (fun r subject now -> rate_consume_in buckets ~now r subject);
    rated_assets = rated_assets_of db;
    c_decisions = counter "decisions";
    c_allows = counter "allows";
    c_denies = counter "denies";
    c_cache_hits = counter "cache.hits";
    c_cache_misses = counter "cache.misses";
    c_cache_flushes = counter "cache.flushes";
    latency =
      Option.map
        (fun reg ->
          Obs.Registry.histogram ~lo:50.0 ~ratio:2.0 ~buckets:32 reg
            "policy.engine.decide_ns")
        obs;
    batch_latency =
      Option.map
        (fun reg ->
          Obs.Registry.histogram ~lo:1000.0 ~ratio:2.0 ~buckets:32 reg
            "policy.engine.decide_batch_ns")
        obs;
    clock =
      (match obs with Some reg -> Obs.Registry.clock reg | None -> Sys.time);
    events = Option.map Obs.Registry.trace obs;
  }

let create ?(strategy = Deny_overrides) ?(cache = true)
    ?(cache_capacity = default_cache_capacity) ?(mode = `Compiled) ?obs db =
  let table =
    match mode with
    | `Compiled -> Some (Table.compile ~strategy db)
    | `Interpreted -> None
  in
  make ~strategy ~cache ~cache_capacity ~mode ~obs ~table db

let of_table ?(cache = true) ?(cache_capacity = default_cache_capacity) ?obs
    table db =
  make ~strategy:(Table.strategy table) ~cache ~cache_capacity ~mode:`Compiled
    ~obs ~table:(Some table) db

let strategy t = t.strategy

let mode t = t.mode

let db t = t.db

let table_stats t = Option.map Table.stats t.table

(* Matching alongside a winning deny costs nothing; deny rules never carry
   rates (the compiler refuses them).  Window semantics live in
   {!Rate_window}, shared with the HPE's hardware shaper. *)
let rate_available t ~now (r : Ir.rule) subject =
  rate_available_in t.buckets ~now r subject

let rate_consume t ~now (r : Ir.rule) subject =
  rate_consume_in t.buckets ~now r subject

let matching_rules t (req : Ir.request) =
  let candidates =
    Option.value ~default:[] (Hashtbl.find_opt t.by_asset req.Ir.asset)
  in
  List.filter (fun r -> Ir.rule_matches r req) candidates

let resolve_interpreted t ~now (req : Ir.request) =
  let matching = matching_rules t req in
  let subject = req.Ir.subject in
  (* the first allow rule whose budget (if any) has room; consuming it *)
  let take_allow rules =
    match
      List.find_opt
        (fun (r : Ir.rule) ->
          r.decision = Ast.Allow && rate_available t ~now r subject)
        rules
    with
    | Some r ->
        rate_consume t ~now r subject;
        Some r
    | None -> None
  in
  match t.strategy with
  | First_match ->
      (* scan in source order; an exhausted allow rule is skipped *)
      let rec scan = function
        | [] -> (t.db.default, None)
        | (r : Ir.rule) :: rest -> (
            match r.decision with
            | Ast.Deny -> (Ast.Deny, Some r)
            | Ast.Allow ->
                if rate_available t ~now r subject then begin
                  rate_consume t ~now r subject;
                  (Ast.Allow, Some r)
                end
                else scan rest)
      in
      scan matching
  | Deny_overrides -> (
      match List.find_opt (fun (r : Ir.rule) -> r.decision = Ast.Deny) matching with
      | Some r -> (Ast.Deny, Some r)
      | None -> (
          match take_allow matching with
          | Some r -> (Ast.Allow, Some r)
          | None -> (t.db.default, None)))
  | Allow_overrides -> (
      match take_allow matching with
      | Some r -> (Ast.Allow, Some r)
      | None -> (
          match
            List.find_opt (fun (r : Ir.rule) -> r.decision = Ast.Deny) matching
          with
          | Some r -> (Ast.Deny, Some r)
          | None -> (t.db.default, None)))

let resolve t ~now (req : Ir.request) =
  match t.table with
  | Some table ->
      Table.decide table
        ~rate_available:(fun r -> rate_available t ~now r req.Ir.subject)
        ~rate_consume:(fun r -> rate_consume t ~now r req.Ir.subject)
        req
  | None -> resolve_interpreted t ~now req

let record t decision =
  Obs.Counter.incr t.c_decisions;
  match decision with
  | Ast.Allow -> Obs.Counter.incr t.c_allows
  | Ast.Deny -> Obs.Counter.incr t.c_denies

let cache_insert t cache req entry =
  (* bounded: a full flush beats per-entry eviction bookkeeping on the hot
     path, and the compiled table repopulates a flushed cache in one pass
     over the working set *)
  if Cache.length cache >= t.cache_capacity then begin
    (match t.events with
    | None -> ()
    | Some ring ->
        Obs.Ring.record ring ~time:(t.clock ())
          ~attrs:[ ("entries", string_of_int (Cache.length cache)) ]
          "policy.cache.flush");
    Cache.reset cache;
    Obs.Counter.incr t.c_cache_flushes
  end;
  Cache.replace cache req entry

let decide_untimed t ~now (req : Ir.request) =
  let cacheable = not (List.mem req.Ir.asset t.rated_assets) in
  match t.cache with
  | Some cache when cacheable -> (
      match Cache.find_opt cache req with
      | Some (decision, matched) ->
          Obs.Counter.incr t.c_cache_hits;
          record t decision;
          { decision; matched; from_cache = true }
      | None ->
          Obs.Counter.incr t.c_cache_misses;
          let decision, matched = resolve t ~now req in
          cache_insert t cache req (decision, matched);
          record t decision;
          { decision; matched; from_cache = false })
  | Some _ | None ->
      let decision, matched = resolve t ~now req in
      record t decision;
      { decision; matched; from_cache = false }

let set_stalled t stalled = t.stalled <- stalled

let stalled t = t.stalled

let decide ?(now = 0.0) t (req : Ir.request) =
  if t.stalled then raise Unavailable;
  match t.latency with
  | None -> decide_untimed t ~now req
  | Some h ->
      let t0 = t.clock () in
      let outcome = decide_untimed t ~now req in
      Obs.Histogram.observe h ((t.clock () -. t0) *. 1e9);
      outcome

let permitted ?now t req = (decide ?now t req).decision = Ast.Allow

(* The batched fast path.  Per-request work against a compiled table is
   free of minor-heap allocation: the batch's columns are flat arrays,
   dispatch lookups probe open-addressed arrays, the rate callbacks are
   the closures stored at construction, and the decision counters are
   one-word cells.  Per-*batch* costs (the latency observation, interning
   a mode the memo has not seen) stay O(1) regardless of batch size. *)
let decide_batch_untimed t (b : Batch.t) ~out =
  let allows =
    match t.table with
    | Some table ->
        Table.decide_batch table ~rate_available:t.rate_avail_cb
          ~rate_consume:t.rate_cons_cb b ~out
    | None ->
        (* interpreted parity path: reconstructs each request (allocating);
           exists so batch ≡ scalar holds in both engine modes, not for
           speed.  Bypasses the cache like the compiled batch path. *)
        let allows = ref 0 in
        for i = 0 to b.Batch.len - 1 do
          let decision, _ =
            resolve_interpreted t ~now:b.Batch.nows.(i) (Batch.request b i)
          in
          if decision = Ast.Allow then incr allows;
          out.(i) <- decision
        done;
        !allows
  in
  (* bulk stats: three counter adds per batch, not two bumps per request *)
  Obs.Counter.add t.c_decisions b.Batch.len;
  Obs.Counter.add t.c_allows allows;
  Obs.Counter.add t.c_denies (b.Batch.len - allows)

let decide_batch t (b : Batch.t) ~out =
  if t.stalled then raise Unavailable;
  if Array.length out < b.Batch.len then
    invalid_arg "Engine.decide_batch: out array shorter than the batch";
  match t.batch_latency with
  | None -> decide_batch_untimed t b ~out
  | Some h ->
      let t0 = t.clock () in
      decide_batch_untimed t b ~out;
      Obs.Histogram.observe h ((t.clock () -. t0) *. 1e9)

let flush_cache t = Option.iter Cache.reset t.cache

let swap_db t db =
  t.db <- db;
  t.by_asset <- index_by_asset db;
  (match t.mode with
  | `Compiled -> t.table <- Some (Table.compile ~strategy:t.strategy db)
  | `Interpreted -> ());
  t.rated_assets <- rated_assets_of db;
  Hashtbl.reset t.buckets;
  (match t.events with
  | None -> ()
  | Some ring ->
      Obs.Ring.record ring ~time:(t.clock ())
        ~attrs:
          [
            ("policy", db.Ir.name); ("version", string_of_int db.Ir.version);
          ]
        "policy.engine.swap_db");
  flush_cache t

let stats t =
  {
    decisions = Obs.Counter.value t.c_decisions;
    allows = Obs.Counter.value t.c_allows;
    denies = Obs.Counter.value t.c_denies;
    cache_hits = Obs.Counter.value t.c_cache_hits;
    cache_misses = Obs.Counter.value t.c_cache_misses;
    cache_flushes = Obs.Counter.value t.c_cache_flushes;
  }

let pp_outcome ppf o =
  Format.fprintf ppf "%s%s"
    (Ast.decision_name o.decision)
    (match o.matched with
    | None -> " (default)"
    | Some r -> Printf.sprintf " (rule #%d of %s)" r.idx r.origin)
