(** Policy evaluation engine: the configurable "policy engine" of the paper,
    shared by the software (SELinux-style) and hardware (HPE) enforcement
    paths, which compile their own tables from the same {!Ir.db}. *)

type strategy = Table.strategy =
  | Deny_overrides
      (** any matching deny wins over any matching allow (default; this is
          the fail-safe composition used for Table I) *)
  | Allow_overrides  (** any matching allow wins over any matching deny *)
  | First_match  (** the earliest matching rule in source order decides *)

type mode = [ `Interpreted | `Compiled ]
(** [`Interpreted] scans the per-asset rule list on every decision;
    [`Compiled] (the default) lowers the database into an indexed
    {!Table} at creation / {!swap_db} time so the hot path is a single
    hashed lookup.  Observable semantics are identical. *)

type outcome = {
  decision : Ast.decision;
  matched : Ir.rule option;  (** rule that determined the decision, if any *)
  from_cache : bool;
}

type t

exception Unavailable
(** Raised by {!decide}/{!permitted} while the engine is {!stalled}: a
    stalled engine answers nothing, and callers must treat "no answer" as
    deny (fail closed) or escalate to their degradation path — never
    assume allow. *)

val set_stalled : t -> bool -> unit
(** Fault injection: mark the engine stalled (crashed process, partitioned
    service, wedged coprocessor) or recovered.  While stalled every
    decision raises {!Unavailable}; introspection ({!db}, {!stats}) stays
    readable, as a post-mortem would be. *)

val stalled : t -> bool

val create :
  ?strategy:strategy ->
  ?cache:bool ->
  ?cache_capacity:int ->
  ?mode:mode ->
  ?obs:Secpol_obs.Registry.t ->
  Ir.db ->
  t
(** [cache] (default [true]) memoises decisions per distinct request in a
    table keyed by {!Ir.Request}.  The cache is bounded: once it holds
    [cache_capacity] entries (default 8192) it is flushed in full and the
    flush is counted in {!stats}, so unbounded request diversity (fuzzing,
    long simulations) cannot grow it without limit.

    [obs] attaches the engine to a telemetry registry: the decision and
    cache counters are exported under [policy.engine.*], every decision's
    latency is observed into the [policy.engine.decide_ns] histogram
    (timed with the registry clock), and cache flushes / database swaps
    land in the registry's event trace.  Without [obs] the engine keeps
    counting — counters are single mutable words — but takes no clock
    readings and allocates nothing for telemetry on the decision path.
    @raise Invalid_argument if [cache_capacity <= 0]. *)

val of_table :
  ?cache:bool ->
  ?cache_capacity:int ->
  ?obs:Secpol_obs.Registry.t ->
  Table.t ->
  Ir.db ->
  t
(** An engine over a {e pre-compiled, shared} decision table, skipping the
    per-engine compile.  [db] must be the database [table] was compiled
    from (it backs introspection and the interpreted index); the strategy
    is taken from the table.  The table is never mutated — it is frozen
    after {!Table.compile} — so one table can back many engines at once,
    including engines in different OCaml domains: all mutable state (the
    decision cache, rate-limit budgets, counters) is private to each
    engine.  This is the constructor the shard-per-domain layer
    ({!Secpol_par}) uses: compile once, then hand every shard the same
    table.  {!swap_db} on such an engine compiles a fresh private table
    and detaches from the shared one (which other engines keep using
    unaffected).
    @raise Invalid_argument if [cache_capacity <= 0]. *)

val strategy : t -> strategy

val mode : t -> mode

val db : t -> Ir.db

val table_stats : t -> Table.stats option
(** Shape of the compiled decision table; [None] in interpreted mode. *)

val decide : ?now:float -> t -> Ir.request -> outcome
(** [now] (seconds, default [0.]) drives behavioural rate limits: an allow
    rule with [rate n per w] can ground at most [n] Allow decisions per
    subject within any sliding [w]-millisecond window; once exhausted it is
    skipped and evaluation falls through (usually to [default deny]).  The
    budget is consumed only when the rule actually produces the decision —
    matching alongside a winning deny costs nothing.  Requests touching
    rate-limited assets bypass the decision cache (their outcome is
    time-dependent). *)

val permitted : ?now:float -> t -> Ir.request -> bool
(** [decide] projected to a boolean. *)

val decide_batch : t -> Batch.t -> out:Ast.decision array -> unit
(** The bulk-traffic fast path: decide every request of the batch,
    writing request [i]'s decision into [out.(i)] ([out] is caller-owned
    and must hold at least {!Batch.length} elements).  Decisions — and
    rate-budget consumption — are exactly those of calling {!decide} on
    each request in batch order with its [now] timestamp; the decision
    counters in {!stats} advance identically.

    What batch decisions give up for speed: no per-request matched-rule
    attribution or [from_cache] flag (use {!decide} when attribution
    matters), and the decision cache is bypassed — against a compiled
    table a batched decision is already one open-addressed probe, which
    is what a cache hit costs, without the insertion bookkeeping.

    Allocation contract: against a compiled table, the steady-state
    per-request cost is {e zero} minor-heap words — the batch columns,
    dispatch probes and decision counters are all flat-array or
    single-word operations (pinned by a [Gc.minor_words] test).  O(1)
    per-batch costs remain: the latency observation when [obs] is
    attached, interning a mode string the batch memo has not seen, and
    rate-limited rules allocate per evaluation (their budget table is
    keyed by subject).  In interpreted mode the batch path is a parity
    loop over {!decide}'s resolver and allocates per request.
    @raise Unavailable while the engine is stalled.
    @raise Invalid_argument when [out] is shorter than the batch. *)

val swap_db : t -> Ir.db -> unit
(** Hot-swap the policy database (a policy update); recompiles the decision
    table in compiled mode and flushes the cache. *)

val flush_cache : t -> unit

type stats = {
  decisions : int;
  allows : int;
  denies : int;
  cache_hits : int;
  cache_misses : int;
  cache_flushes : int;  (** times the bounded cache was emptied at capacity *)
}

val stats : t -> stats

val pp_outcome : Format.formatter -> outcome -> unit
