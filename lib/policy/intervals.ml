(* Flattened representation: los.(i)..his.(i) inclusive, sorted by lo,
   pairwise disjoint and non-adjacent (normal form), so membership is one
   binary search and no allocation. *)

type t = { los : int array; his : int array }

let empty = { los = [||]; his = [||] }

let is_empty t = Array.length t.los = 0

let check_pair (lo, hi) =
  if lo < 0 || hi < lo then
    invalid_arg (Printf.sprintf "Intervals: bad range %d..%d" lo hi)

let normalise pairs =
  List.iter check_pair pairs;
  let sorted = List.sort compare pairs in
  let merged =
    List.fold_left
      (fun acc (lo, hi) ->
        match acc with
        | (plo, phi) :: rest when lo <= phi + 1 -> (plo, max phi hi) :: rest
        | _ -> (lo, hi) :: acc)
      [] sorted
    |> List.rev
  in
  {
    los = Array.of_list (List.map fst merged);
    his = Array.of_list (List.map snd merged);
  }

let of_ranges pairs = normalise pairs

let ranges t =
  Array.to_list (Array.mapi (fun i lo -> (lo, t.his.(i))) t.los)

(* greatest i with los.(i) <= x, then check his.(i); top-level recursion
   rather than refs or an inner closure so the batched decision loop stays
   allocation-free even without flambda *)
(* indices stay within [0, n): [lo]/[hi] start at 0/(n-1) and the bisection
   only narrows, so the unchecked reads are safe *)
let rec mem_from los his x lo hi =
  if lo >= hi then x <= Array.unsafe_get his lo
  else
    let mid = (lo + hi + 1) / 2 in
    if Array.unsafe_get los mid <= x then mem_from los his x mid hi
    else mem_from los his x lo (mid - 1)

let mem t x =
  let n = Array.length t.los in
  if n = 0 || x < t.los.(0) then false
  else mem_from t.los t.his x 0 (n - 1)

let add t ~lo ~hi = normalise ((lo, hi) :: ranges t)

let remove t ~lo ~hi =
  check_pair (lo, hi);
  let keep =
    List.concat_map
      (fun (rlo, rhi) ->
        if rhi < lo || rlo > hi then [ (rlo, rhi) ]
        else
          (if rlo < lo then [ (rlo, lo - 1) ] else [])
          @ if rhi > hi then [ (hi + 1, rhi) ] else [])
      (ranges t)
  in
  normalise keep

(* Normal form is unique (sorted, disjoint, non-adjacent), so structural
   equality of the arrays is set equality. *)
let equal a b = a.los = b.los && a.his = b.his

let union a b = normalise (ranges a @ ranges b)

let diff a b =
  List.fold_left (fun acc (lo, hi) -> remove acc ~lo ~hi) a (ranges b)

(* a ∩ b = a \ (a \ b): two linear passes over compile-time-sized sets beat
   a bespoke merge walk that would need its own boundary proofs. *)
let inter a b = diff a (diff a b)

let subset a b = is_empty (diff a b)

let complement t ~lo ~hi =
  check_pair (lo, hi);
  diff (of_ranges [ (lo, hi) ]) t

let cardinal t =
  Array.to_list t.los
  |> List.mapi (fun i lo -> t.his.(i) - lo + 1)
  |> List.fold_left ( + ) 0

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat ", "
       (List.map
          (fun (lo, hi) ->
            if lo = hi then Printf.sprintf "0x%x" lo
            else Printf.sprintf "0x%x..0x%x" lo hi)
          (ranges t)))
