(** Sorted disjoint inclusive integer intervals with binary-search
    membership.

    The compiled decision table ({!Table}) lowers every rule's message-ID
    ranges into one of these, and the HPE reuses the same structure as an
    approved-list backend, so a membership probe is [O(log n)] in the
    number of disjoint ranges regardless of how wide they are — a bitset
    would pay in memory for wide ranges, a per-ID hash table in population
    time.  Values are immutable; [add]/[remove] rebuild, which is fine for
    compile-/provisioning-time mutation and keeps the hot [mem] path a
    pure array probe. *)

type t

val empty : t

val of_ranges : (int * int) list -> t
(** Build from inclusive [(lo, hi)] pairs in any order; overlapping and
    adjacent ranges are merged.  Pairs with [hi < lo] are rejected.
    @raise Invalid_argument on a reversed pair or negative bound. *)

val mem : t -> int -> bool
(** Binary search over the disjoint ranges. *)

val add : t -> lo:int -> hi:int -> t
(** Union with [lo..hi] (inclusive), re-normalising.
    @raise Invalid_argument as {!of_ranges}. *)

val remove : t -> lo:int -> hi:int -> t
(** Subtract [lo..hi], splitting any straddling range. *)

val is_empty : t -> bool

val equal : t -> t -> bool
(** Set equality.  The normal form is unique, so this is structural. *)

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t
(** Elements of the first set not in the second. *)

val subset : t -> t -> bool
(** [subset a b] is [true] when every element of [a] is in [b]. *)

val complement : t -> lo:int -> hi:int -> t
(** Elements of [lo..hi] (inclusive) not in the set.  Elements of the set
    outside [lo..hi] are dropped, not preserved.
    @raise Invalid_argument on a reversed pair or negative bound. *)

val cardinal : t -> int
(** Total number of integers covered (sum of range widths). *)

val ranges : t -> (int * int) list
(** The normal form: sorted, disjoint, non-adjacent inclusive pairs. *)

val pp : Format.formatter -> t -> unit
