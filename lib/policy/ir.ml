type op = Read | Write

type request = {
  mode : string;
  subject : string;
  asset : string;
  op : op;
  msg_id : int option;
}

type rule = {
  idx : int;
  decision : Ast.decision;
  ops : op list;
  subjects : Ast.subjects;
  asset : string;
  modes : string list option;
  messages : Ast.msg_range list option;
  rate : Ast.rate option;
  origin : string;
}

type db = {
  name : string;
  version : int;
  default : Ast.decision;
  rules : rule list;
}

let op_of_ast = function
  | Ast.Read -> [ Read ]
  | Ast.Write -> [ Write ]
  | Ast.Rw -> [ Read; Write ]

let op_name = function Read -> "read" | Write -> "write"

let subject_matches subjects subject =
  match subjects with
  | Ast.Any_subject -> true
  | Ast.Subjects l -> List.mem subject l

let mode_matches modes mode =
  match modes with None -> true | Some l -> List.mem mode l

let message_matches messages msg_id =
  match messages with
  | None -> true
  | Some ranges -> (
      match msg_id with
      | None -> false
      | Some id -> List.exists (Ast.range_mem id) ranges)

module Request = struct
  type t = request

  (* Distinct small primes per op so (subject, asset, read) and (subject,
     asset, write) never collide structurally. *)
  let op_tag = function Read -> 17 | Write -> 29

  (* The two dispatch hashes of the compiled table, split out so the batch
     arena can pre-hash every request once at fill time: [triple_hash]
     keys the exact (subject, asset, op) dispatch, [pair_hash] the
     wildcard (asset, op) fallback for subjects the policy never names. *)
  let triple_hash ~subject ~asset op =
    let h = String.hash subject in
    let h = (h * 31) + String.hash asset in
    ((h * 31) + op_tag op) land max_int

  let pair_hash ~asset op = ((String.hash asset * 31) + op_tag op) land max_int

  let equal a b =
    a.op = b.op
    && (match (a.msg_id, b.msg_id) with
       | None, None -> true
       | Some x, Some y -> x = y
       | None, Some _ | Some _, None -> false)
    && String.equal a.subject b.subject
    && String.equal a.asset b.asset
    && String.equal a.mode b.mode

  let hash r =
    let h = String.hash r.mode in
    let h = (h * 31) + String.hash r.subject in
    let h = (h * 31) + String.hash r.asset in
    let h = (h * 31) + op_tag r.op in
    ((h * 31) + (match r.msg_id with None -> 3 | Some id -> id + 7)) land max_int
end

let rule_matches (r : rule) (req : request) =
  r.asset = req.asset
  && List.mem req.op r.ops
  && subject_matches r.subjects req.subject
  && mode_matches r.modes req.mode
  && message_matches r.messages req.msg_id

let rules_for_asset db asset = List.filter (fun r -> r.asset = asset) db.rules

let assets db =
  List.sort_uniq String.compare (List.map (fun r -> r.asset) db.rules)

let subjects db =
  db.rules
  |> List.concat_map (fun r ->
         match r.subjects with Ast.Any_subject -> [] | Ast.Subjects l -> l)
  |> List.sort_uniq String.compare

let pp_ops ppf ops =
  Format.pp_print_string ppf (String.concat "+" (List.map op_name ops))

let pp_subjects ppf = function
  | Ast.Any_subject -> Format.pp_print_string ppf "any"
  | Ast.Subjects l -> Format.pp_print_string ppf (String.concat "," l)

let range_text (g : Ast.msg_range) =
  if g.lo = g.hi then Printf.sprintf "0x%x" g.lo
  else Printf.sprintf "0x%x..0x%x" g.lo g.hi

let pp_rule ppf r =
  Format.fprintf ppf "#%d %s %a on %s from %a" r.idx
    (Ast.decision_name r.decision)
    pp_ops r.ops r.asset pp_subjects r.subjects;
  (match r.messages with
  | None -> ()
  | Some ranges ->
      Format.fprintf ppf " messages %s"
        (String.concat "," (List.map range_text ranges)));
  (match r.rate with
  | None -> ()
  | Some rate -> Format.fprintf ppf " rate %d/%dms" rate.count rate.window_ms);
  match r.modes with
  | None -> ()
  | Some modes -> Format.fprintf ppf " [modes %s]" (String.concat "," modes)

let pp_request ppf req =
  Format.fprintf ppf "%s %s %s (mode %s%s)" req.subject (op_name req.op)
    req.asset req.mode
    (match req.msg_id with
    | None -> ""
    | Some id -> Printf.sprintf ", msg 0x%x" id)

let pp_db ppf db =
  Format.fprintf ppf "policy %s v%d: default %s, %d rules@." db.name db.version
    (Ast.decision_name db.default)
    (List.length db.rules);
  List.iter (fun r -> Format.fprintf ppf "  %a@." pp_rule r) db.rules
