(** Compiled policy representation and access-request matching.

    The compiler ({!Compile}) lowers a policy AST into a flat list of rules,
    each scoped by asset, operating modes, subjects and message IDs.  The
    engine ({!Engine}) evaluates access requests against this form. *)

type op = Read | Write

type request = {
  mode : string;  (** current operating mode *)
  subject : string;  (** requesting entity, e.g. a CAN node id *)
  asset : string;  (** target asset id *)
  op : op;
  msg_id : int option;  (** CAN message ID when relevant *)
}

type rule = {
  idx : int;  (** source order; used by first-match resolution *)
  decision : Ast.decision;
  ops : op list;  (** [Rw] in the source expands to both *)
  subjects : Ast.subjects;
  asset : string;
  modes : string list option;  (** [None] = applies in every mode *)
  messages : Ast.msg_range list option;  (** [None] = any message ID *)
  rate : Ast.rate option;
      (** behavioural budget; enforced by {!Engine} per (rule, subject) *)
  origin : string;  (** provenance, e.g. ["car_policy v2"] *)
}

type db = {
  name : string;
  version : int;
  default : Ast.decision;  (** decision when no rule matches *)
  rules : rule list;  (** in source order *)
}

val op_of_ast : Ast.op -> op list
(** [Read]->[\[Read\]], [Write]->[\[Write\]], [Rw]->[\[Read; Write\]]. *)

val op_name : op -> string

val range_text : Ast.msg_range -> string
(** ["0x100"] or ["0x100..0x10f"]. *)

val subject_matches : Ast.subjects -> string -> bool
(** [Any_subject] covers everything; [Subjects l] covers members of [l]. *)

val mode_matches : string list option -> string -> bool
(** [None] (no mode scope) covers every mode; [Some l] covers members of
    [l]. *)

val rule_matches : rule -> request -> bool
(** True when every dimension of the rule covers the request.  A
    message-constrained rule only matches requests that carry a message ID
    inside one of its ranges. *)

module Request : sig
  type t = request

  val equal : t -> t -> bool

  val hash : t -> int
  (** Field-wise hash (no [Hashtbl.hash] on the structured value), suitable
      for [Hashtbl.Make]; used to key the engine's decision cache and the
      compiled table ({!Table}). *)

  val op_tag : op -> int
  (** Small distinct integer per operation, the column representation used
      by {!Batch} (an [int array] of operations stays unboxed and
      comparison-free on the batched decision path). *)

  val triple_hash : subject:string -> asset:string -> op -> int
  (** Hash of the [(subject, asset, op)] dispatch key, consistent with
      {!hash}'s treatment of the same fields; precomputed per request by
      {!Batch.push} and used by {!Table}'s open-addressed dispatch. *)

  val pair_hash : asset:string -> op -> int
  (** Hash of the [(asset, op)] wildcard-dispatch key (rules whose subject
      is [any], matched when the policy never names the subject). *)
end

val rules_for_asset : db -> string -> rule list
(** Rules scoped to the given asset, in source order. *)

val assets : db -> string list
(** Distinct assets mentioned by the rules, sorted. *)

val subjects : db -> string list
(** Distinct named subjects mentioned by the rules, sorted. *)

val pp_rule : Format.formatter -> rule -> unit

val pp_request : Format.formatter -> request -> unit

val pp_db : Format.formatter -> db -> unit
