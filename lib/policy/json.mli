(** A minimal JSON tree, printer and parser.

    Just enough for machine-readable diagnostics ({!Diagnostic.to_json},
    [secpolc lint --format json]) without pulling a JSON dependency into the
    embedded toolchain.  The printer emits compact, deterministic output
    (object fields in the order given); the parser accepts standard JSON
    and is used to round-trip lint reports in tests and tooling. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering; strings are escaped per RFC 8259. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed).  Errors carry a
    character offset. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing fields and non-objects. *)

val to_int : t -> int option

val to_str : t -> string option

val to_list : t -> t list option
