type config = {
  strategy : Engine.strategy;
  modes : string list option;
  subjects : string list option;
  assets : string list option;
}

let default_config =
  { strategy = Engine.Deny_overrides; modes = None; subjects = None; assets = None }

type pass = {
  name : string;
  short : string;
  run : config -> Ir.db -> Diagnostic.t list;
}

let pass ~name ~short run = { name; short; run }

(* ---------- built-in passes ---------- *)

let conflict_pass =
  pass ~name:"conflict"
    ~short:"overlapping rules with opposite decisions (SP001)"
    (fun _cfg db ->
      List.map
        (fun (c : Conflict.conflict) ->
          Diagnostic.make Diagnostic.Conflict c.reason
            ~rules:[ c.rule_a.Ir.idx; c.rule_b.Ir.idx ]
            ~asset:c.rule_a.Ir.asset)
        (Conflict.conflicts db))

let shadow_pass =
  pass ~name:"shadow"
    ~short:"rules covered by an earlier same-decision rule (SP002)"
    (fun _cfg db ->
      List.map
        (fun ((winner : Ir.rule), (dead : Ir.rule)) ->
          Diagnostic.make Diagnostic.Shadowed
            (Printf.sprintf
               "rule #%d is redundant: rule #%d precedes it and covers its \
                entire scope with the same decision (%s)"
               dead.idx winner.idx
               (Ast.decision_name dead.decision))
            ~rules:[ winner.idx; dead.idx ]
            ~asset:dead.asset)
        (Conflict.shadowed db))

let range_span = function
  | [] -> None
  | (g : Ast.msg_range) :: _ as ranges ->
      let hi =
        List.fold_left (fun acc (g : Ast.msg_range) -> max acc g.hi) g.hi ranges
      in
      Some (g.lo, hi)

let coverage_pass =
  pass ~name:"coverage"
    ~short:"access cells falling silently to the default (SP003)"
    (fun cfg db ->
      let modes =
        match cfg.modes with
        | Some (_ :: _ as l) -> l
        | Some [] | None -> (
            match
              List.concat_map
                (fun (r : Ir.rule) -> Option.value ~default:[] r.modes)
                db.Ir.rules
              |> List.sort_uniq String.compare
            with
            | [] -> [ "(any)" ]
            | l -> l)
      in
      let subjects =
        match cfg.subjects with Some l -> l | None -> Ir.subjects db
      in
      let assets =
        match cfg.assets with Some l -> l | None -> Ir.assets db
      in
      if subjects = [] || assets = [] then []
      else
        let report = Coverage.analyse db ~modes ~subjects ~assets in
        (* a gap under default deny fails safe; under default allow it is an
           unreviewed permission *)
        let severity =
          match report.Coverage.default with
          | Ast.Deny -> Diagnostic.Info
          | Ast.Allow -> Diagnostic.Warning
        in
        let dflt = Ast.decision_name report.Coverage.default in
        List.map
          (fun (c : Coverage.cell) ->
            Diagnostic.make Diagnostic.Coverage_gap ~severity
              (Printf.sprintf
                 "no rule decides %s %s on %s in mode %s; the request falls \
                  to default %s"
                 c.subject (Ir.op_name c.op) c.asset c.mode dflt)
              ~asset:c.asset ~subject:c.subject ~mode:c.mode ~op:c.op)
          report.Coverage.gaps
        @ List.map
            (fun ((c : Coverage.cell), ranges) ->
              Diagnostic.make Diagnostic.Coverage_gap ~severity
                (Printf.sprintf
                   "%s %s on %s in mode %s is decided only for messages %s; \
                    other ids fall to default %s"
                   c.subject (Ir.op_name c.op) c.asset c.mode
                   (String.concat "," (List.map Ir.range_text ranges))
                   dflt)
                ~asset:c.asset ~subject:c.subject ~mode:c.mode ~op:c.op
                ?msg_range:(range_span ranges))
            report.Coverage.partial)

let unreachable_pass =
  pass ~name:"unreachable"
    ~short:"rules no request can trigger under the strategy (SP004)"
    (fun cfg db ->
      let rules = db.Ir.rules in
      let diag ~(dead : Ir.rule) ~(coverer : Ir.rule) why =
        Diagnostic.make Diagnostic.Unreachable_rule
          (Printf.sprintf "rule #%d (%s on %s) can never take effect: %s"
             dead.idx
             (Ast.decision_name dead.decision)
             dead.asset why)
          ~rules:[ coverer.idx; dead.idx ]
          ~asset:dead.asset
      in
      match cfg.strategy with
      | Engine.Deny_overrides ->
          List.filter_map
            (fun (a : Ir.rule) ->
              if a.decision <> Ast.Allow then None
              else
                List.find_opt
                  (fun (d : Ir.rule) ->
                    d.decision = Ast.Deny && Conflict.covers d a)
                  rules
                |> Option.map (fun (d : Ir.rule) ->
                       diag ~dead:a ~coverer:d
                         (Printf.sprintf
                            "deny rule #%d covers its scope and deny \
                             overrides allow"
                            d.idx)))
            rules
      | Engine.Allow_overrides ->
          List.filter_map
            (fun (d : Ir.rule) ->
              if d.decision <> Ast.Deny then None
              else
                List.find_opt
                  (fun (a : Ir.rule) ->
                    a.decision = Ast.Allow && Conflict.covers a d)
                  rules
                |> Option.map (fun (a : Ir.rule) ->
                       diag ~dead:d ~coverer:a
                         (Printf.sprintf
                            "unlimited allow rule #%d covers its scope and \
                             allow overrides deny"
                            a.idx)))
            rules
      | Engine.First_match ->
          (* same-decision cover is SP002; here an earlier opposite-decision
             rule always wins the race *)
          List.filter_map
            (fun (later : Ir.rule) ->
              List.find_opt
                (fun (earlier : Ir.rule) ->
                  earlier.idx < later.idx
                  && earlier.decision <> later.decision
                  && Conflict.covers earlier later)
                rules
              |> Option.map (fun (earlier : Ir.rule) ->
                     diag ~dead:later ~coverer:earlier
                       (Printf.sprintf
                          "rule #%d precedes it, covers its scope and \
                           decides %s first"
                          earlier.idx
                          (Ast.decision_name earlier.decision))))
            rules)

let mode_pass =
  pass ~name:"modes"
    ~short:"rules naming modes outside the declared universe (SP005)"
    (fun cfg db ->
      match cfg.modes with
      | None -> []
      | Some universe ->
          List.concat_map
            (fun (r : Ir.rule) ->
              match r.modes with
              | None -> []
              | Some l ->
                  List.filter_map
                    (fun m ->
                      if List.mem m universe then None
                      else
                        Some
                          (Diagnostic.make Diagnostic.Mode_unknown
                             (Printf.sprintf
                                "rule #%d names unknown mode %S and can \
                                 never match in it (declared modes: %s)"
                                r.idx m
                                (String.concat ", " universe))
                             ~rules:[ r.idx ] ~asset:r.asset ~mode:m))
                    l)
            db.Ir.rules)

let rate_pass =
  pass ~name:"rates" ~short:"rate-limit sanity (SP006, SP007)"
    (fun _cfg db ->
      let rules = db.Ir.rules in
      List.concat_map
        (fun (r : Ir.rule) ->
          match (r.decision, r.rate) with
          | _, None -> []
          | Ast.Deny, Some _ ->
              [
                Diagnostic.make Diagnostic.Rate_deny
                  (Printf.sprintf
                     "deny rule #%d carries a rate limit; a deny must be \
                      unconditional"
                     r.idx)
                  ~rules:[ r.idx ] ~asset:r.asset;
              ]
          | Ast.Allow, Some rate -> (
              match
                List.find_opt
                  (fun (a : Ir.rule) ->
                    a.idx <> r.idx && a.decision = Ast.Allow
                    && Conflict.covers a r)
                  rules
              with
              | None -> []
              | Some a ->
                  [
                    Diagnostic.make Diagnostic.Rate_ineffective
                      (Printf.sprintf
                         "rate limit %d per %dms on rule #%d never binds: \
                          unlimited allow rule #%d covers the same scope"
                         rate.Ast.count rate.Ast.window_ms r.idx a.idx)
                      ~rules:[ a.idx; r.idx ] ~asset:r.asset;
                  ]))
        rules)

let builtin =
  [ conflict_pass; shadow_pass; coverage_pass; unreachable_pass; mode_pass; rate_pass ]

(* ---------- registry ---------- *)

let extra : pass list ref = ref []

let register p =
  extra := List.filter (fun q -> q.name <> p.name) !extra @ [ p ]

let registered () =
  let names = List.map (fun p -> p.name) !extra in
  List.filter (fun p -> not (List.mem p.name names)) builtin @ !extra

(* ---------- running ---------- *)

let run ?passes config db =
  let passes = match passes with Some l -> l | None -> registered () in
  List.concat_map (fun p -> p.run config db) passes
  |> List.sort_uniq Diagnostic.compare

let report_to_json (db : Ir.db) diagnostics =
  Json.Obj
    [
      ("policy", Json.String db.name);
      ("version", Json.Int db.version);
      ("default", Json.String (Ast.decision_name db.default));
      ("rules", Json.Int (List.length db.rules));
      ("diagnostics", Json.List (List.map Diagnostic.to_json diagnostics));
      ( "summary",
        Json.Obj
          [
            ("errors", Json.Int (Diagnostic.count Diagnostic.Error diagnostics));
            ( "warnings",
              Json.Int (Diagnostic.count Diagnostic.Warning diagnostics) );
            ("infos", Json.Int (Diagnostic.count Diagnostic.Info diagnostics));
          ] );
    ]

let pp_report ppf ((db : Ir.db), diagnostics) =
  List.iter (fun d -> Format.fprintf ppf "%a@." Diagnostic.pp d) diagnostics;
  Format.fprintf ppf "%s v%d: %d rules, %d error(s), %d warning(s), %d info@."
    db.name db.version (List.length db.rules)
    (Diagnostic.count Diagnostic.Error diagnostics)
    (Diagnostic.count Diagnostic.Warning diagnostics)
    (Diagnostic.count Diagnostic.Info diagnostics)
