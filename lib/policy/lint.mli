(** The lint pass framework: a registry of static analyses that run over a
    compiled {!Ir.db} and return {!Diagnostic.t}s.

    The paper's policy-update story (ship a policy, not a redesign) only
    holds if an updated policy can be verified {e before} deployment; this
    is the verification stage.  Passes are plain values, so layers above
    the policy library (the HPE, the vehicle case study) can contribute
    cross-layer analyses by registering passes of their own — see
    [Secpol_vehicle.Lint_passes]. *)

type config = {
  strategy : Engine.strategy;
      (** resolution strategy the deployment will use; reachability depends
          on it *)
  modes : string list option;
      (** declared mode universe; enables the [SP005 mode-unknown] pass and
          widens the coverage grid *)
  subjects : string list option;  (** coverage universe override *)
  assets : string list option;  (** coverage universe override *)
}

val default_config : config
(** [Deny_overrides], no declared universes. *)

type pass = {
  name : string;
  short : string;  (** one-line description for [--list-passes] style output *)
  run : config -> Ir.db -> Diagnostic.t list;
}

val pass : name:string -> short:string -> (config -> Ir.db -> Diagnostic.t list) -> pass

(** {1 Built-in passes} *)

val conflict_pass : pass
(** [SP001]: overlapping rules with opposite decisions. *)

val shadow_pass : pass
(** [SP002]: a rule fully covered by an earlier rule with the same
    decision. *)

val coverage_pass : pass
(** [SP003]: cells of the (mode, subject, asset, op) grid that no rule
    decides — including cells decided only for some message ids.  Gaps
    falling to [default deny] are informational (fail-safe); gaps falling
    to [default allow] are warnings (unreviewed permission). *)

val unreachable_pass : pass
(** [SP004]: rules no request can trigger under [config.strategy] — an
    allow covered by a deny under [Deny_overrides], a deny covered by an
    unlimited allow under [Allow_overrides], a rule covered by an earlier
    opposite-decision rule under [First_match].  (Same-decision cover is
    [SP002].) *)

val mode_pass : pass
(** [SP005]: rules naming modes outside [config.modes] — typos that
    silently never match.  Skipped when no universe is declared. *)

val rate_pass : pass
(** [SP006]: a rate limit on a deny rule; [SP007]: a rate limit that never
    binds because an unlimited allow rule covers the same scope. *)

val builtin : pass list
(** The passes above, in order. *)

(** {1 Registry} *)

val register : pass -> unit
(** Add a pass to the global registry (replacing any registered pass with
    the same name).  Built-ins are always present. *)

val registered : unit -> pass list
(** Built-ins followed by registered passes, registration order. *)

(** {1 Running} *)

val run : ?passes:pass list -> config -> Ir.db -> Diagnostic.t list
(** Run [passes] (default {!registered}[ ()]) and return all diagnostics in
    {!Diagnostic.compare} order. *)

val report_to_json : Ir.db -> Diagnostic.t list -> Json.t
(** The machine-readable report: policy name/version, diagnostics, and a
    per-severity summary. *)

val pp_report : Format.formatter -> Ir.db * Diagnostic.t list -> unit
(** The human-readable report: one line per diagnostic plus a summary. *)
