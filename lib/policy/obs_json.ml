module Obs = Secpol_obs

let rec of_value : Obs.Export.value -> Json.t = function
  | Obs.Export.Null -> Json.Null
  | Obs.Export.Bool b -> Json.Bool b
  | Obs.Export.Int i -> Json.Int i
  | Obs.Export.Float f -> Json.Float f
  | Obs.Export.String s -> Json.String s
  | Obs.Export.List l -> Json.List (List.map of_value l)
  | Obs.Export.Obj fields ->
      Json.Obj (List.map (fun (k, v) -> (k, of_value v)) fields)

let histogram h = of_value (Obs.Export.histogram h)

let registry reg = of_value (Obs.Export.registry reg)

let to_string reg = Json.to_string (registry reg)
