(** JSON serialisation of {!Secpol_obs} telemetry.

    [Secpol_obs] exports a neutral {!Secpol_obs.Export.value} tree so it
    can stay dependency-free; this module maps that tree 1:1 onto
    {!Json.t}, making registry snapshots printable and re-parsable with
    the same hand-rolled JSON used everywhere else in the toolchain. *)

val of_value : Secpol_obs.Export.value -> Json.t

val histogram : Secpol_obs.Histogram.t -> Json.t

val registry : Secpol_obs.Registry.t -> Json.t

val to_string : Secpol_obs.Registry.t -> string
(** [Json.to_string] of {!registry}. *)
