type t = {
  count : int;
  window_s : float;
  grants : float Queue.t;
  mutable newest : float;
      (* newest recorded grant; pushes are clamped to it so the queue stays
         sorted even if the caller's clock steps backwards *)
}

let create ~count ~window_ms =
  if count < 0 then invalid_arg "Rate_window.create: negative count";
  if window_ms <= 0 then
    invalid_arg "Rate_window.create: window must be positive";
  {
    count;
    window_s = float_of_int window_ms /. 1000.0;
    grants = Queue.create ();
    newest = neg_infinity;
  }

let of_rate (r : Ast.rate) = create ~count:r.count ~window_ms:r.window_ms

(* A grant at [g] is live while [now -. g < window_s]: it counts against
   the budget up to, but excluding, the instant exactly one window later.
   Grants are recorded in non-decreasing time order ([consume] clamps), so
   expiry only ever removes from the front — each timestamp is pushed and
   popped once, O(1) amortised. *)
let prune t ~now =
  let horizon = now -. t.window_s in
  while (not (Queue.is_empty t.grants)) && Queue.peek t.grants <= horizon do
    ignore (Queue.pop t.grants)
  done

let available t ~now =
  prune t ~now;
  Queue.length t.grants < t.count

(* Clamp a backwards clock step to the newest grant already recorded: the
   queue must stay sorted for [prune]'s front-only expiry to be exact.  A
   regressed grant therefore expires no earlier than the grants issued
   before it — the conservative reading of a clock fault. *)
let consume t ~now =
  let stamp = if now > t.newest then now else t.newest in
  t.newest <- stamp;
  Queue.push stamp t.grants

let admit t ~now =
  if available t ~now then begin
    consume t ~now;
    true
  end
  else false

let in_window t ~now =
  prune t ~now;
  Queue.length t.grants

let reset t =
  Queue.clear t.grants;
  t.newest <- neg_infinity
