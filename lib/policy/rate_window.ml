type t = { count : int; window_s : float; grants : float Queue.t }

let create ~count ~window_ms =
  if count < 0 then invalid_arg "Rate_window.create: negative count";
  if window_ms <= 0 then
    invalid_arg "Rate_window.create: window must be positive";
  {
    count;
    window_s = float_of_int window_ms /. 1000.0;
    grants = Queue.create ();
  }

let of_rate (r : Ast.rate) = create ~count:r.count ~window_ms:r.window_ms

(* A grant at [g] is live while [now -. g < window_s]: it counts against
   the budget up to, but excluding, the instant exactly one window later.
   Grants are consumed in time order, so expiry only ever removes from the
   front — each timestamp is pushed and popped once, O(1) amortised. *)
let prune t ~now =
  let horizon = now -. t.window_s in
  while (not (Queue.is_empty t.grants)) && Queue.peek t.grants <= horizon do
    ignore (Queue.pop t.grants)
  done

let available t ~now =
  prune t ~now;
  Queue.length t.grants < t.count

let consume t ~now = Queue.push now t.grants

let admit t ~now =
  if available t ~now then begin
    consume t ~now;
    true
  end
  else false

let in_window t ~now =
  prune t ~now;
  Queue.length t.grants

let reset t = Queue.clear t.grants
