(** Sliding-window admission budget: at most [count] grants within any
    [window_ms]-millisecond window.

    This is the one implementation behind every behavioural rate limit —
    the policy engine's per-(rule, subject) budgets and the HPE's
    per-message-id hardware shaper — so the edge semantics are defined
    once:

    - a grant at time [g] occupies the budget for [now - g < window],
      i.e. it expires at exactly [g + window] ({e inclusive} expiry: an
      admit attempted precisely one window after a grant no longer sees
      it);
    - admission at a given [now] first expires old grants, then admits
      iff fewer than [count] live grants remain, consuming one slot.

    {b Clock assumption.}  Timestamps are expected to be non-decreasing
    across calls (simulation or monotonic time); expiry then only removes
    from the front of the grant queue, making every operation O(1)
    amortised — not O(live grants) per admit.  The window is defensive
    about violations: a grant recorded at a [now] earlier than the newest
    recorded grant is clamped {e up} to that newest timestamp, so the
    queue stays sorted and front-only pruning remains exact.  A backwards
    clock step therefore never lets stale grants linger past their
    blocker's expiry, and never lets a regressed grant expire earlier than
    the grants issued before it.  [prune]/[available]/[in_window] at a
    regressed [now] simply see a smaller horizon and expire nothing — the
    conservative (fail-closed) reading of a clock fault. *)

type t

val create : count:int -> window_ms:int -> t
(** @raise Invalid_argument on a negative count or non-positive window. *)

val of_rate : Ast.rate -> t

val admit : t -> now:float -> bool
(** [available] and, when true, [consume] in one step. *)

val available : t -> now:float -> bool
(** Room in the window at [now]?  Does not consume. *)

val consume : t -> now:float -> unit
(** Record a grant at [now] unconditionally.  When [now] is earlier than
    the newest recorded grant (a backwards clock step), the grant is
    stamped with that newest timestamp instead — see the clock assumption
    above. *)

val in_window : t -> now:float -> int
(** Live grants at [now]. *)

val reset : t -> unit
(** Forget consumption history (including the clock-clamp watermark); the
    budget itself is immutable. *)
