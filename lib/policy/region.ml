(* A decision region of the message dimension: requests carry either no
   message id at all or one 29-bit CAN identifier, so a region is a pair of
   "matches the id-less request" and an interval set over the id space.
   Every symbolic analysis (verify, diff, conflict, coverage) shares this
   one representation so there is a single message semantics. *)

type t = { none : bool; ids : Intervals.t }

let max_id = 0x1FFFFFFF

let empty = { none = false; ids = Intervals.empty }

let full = { none = true; ids = Intervals.of_ranges [ (0, max_id) ] }

let all_ids = { none = false; ids = Intervals.of_ranges [ (0, max_id) ] }

let none_only = { none = true; ids = Intervals.empty }

let of_intervals ids = { none = false; ids }

let is_empty t = (not t.none) && Intervals.is_empty t.ids

let equal a b = a.none = b.none && Intervals.equal a.ids b.ids

let inter a b = { none = a.none && b.none; ids = Intervals.inter a.ids b.ids }

let union a b = { none = a.none || b.none; ids = Intervals.union a.ids b.ids }

let diff a b =
  { none = a.none && not b.none; ids = Intervals.diff a.ids b.ids }

let subset a b = ((not a.none) || b.none) && Intervals.subset a.ids b.ids

let mem t = function None -> t.none | Some id -> Intervals.mem t.ids id

let cardinal t = Intervals.cardinal t.ids + if t.none then 1 else 0

(* The exact region a rule's message clause matches: no clause matches
   everything including the id-less request; an explicit clause matches
   only requests carrying an id inside one of its ranges (this is the
   semantics of both {!Ir.message_matches} and the compiled
   {!Table.crule_matches}). *)
let of_messages = function
  | None -> full
  | Some ranges ->
      {
        none = false;
        ids =
          Intervals.of_ranges
            (List.map (fun (g : Ast.msg_range) -> (g.lo, g.hi)) ranges);
      }

let to_ranges t =
  List.map (fun (lo, hi) -> { Ast.lo; hi }) (Intervals.ranges t.ids)

let span t =
  match Intervals.ranges t.ids with
  | [] -> None
  | (lo, _) :: _ as ranges ->
      let hi = List.fold_left (fun acc (_, hi) -> max acc hi) lo ranges in
      Some (lo, hi)

(* Representative points of the region: every interval endpoint plus a
   midpoint for wide intervals, plus the id-less request when included.
   Evaluating a decision function at these witnesses covers every boundary
   of the region. *)
let witnesses t =
  let points =
    List.concat_map
      (fun (lo, hi) ->
        let mid = lo + ((hi - lo) / 2) in
        List.sort_uniq Int.compare [ lo; mid; hi ]
        |> List.map (fun i -> Some i))
      (Intervals.ranges t.ids)
  in
  if t.none then None :: points else points

let pp ppf t =
  if is_empty t then Format.pp_print_string ppf "(empty)"
  else if equal t full then Format.pp_print_string ppf "any message"
  else begin
    if t.none then Format.pp_print_string ppf "no-id";
    if not (Intervals.is_empty t.ids) then begin
      if t.none then Format.pp_print_string ppf "+";
      if Intervals.equal t.ids all_ids.ids then
        Format.pp_print_string ppf "all ids"
      else Intervals.pp ppf t.ids
    end
  end

let to_json t =
  Json.Obj
    [
      ("includes_no_id", Json.Bool t.none);
      ( "ranges",
        Json.List
          (List.map
             (fun (lo, hi) ->
               Json.Obj [ ("lo", Json.Int lo); ("hi", Json.Int hi) ])
             (Intervals.ranges t.ids)) );
      ("ids", Json.Int (Intervals.cardinal t.ids));
    ]
