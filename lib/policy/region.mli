(** Decision regions of the message dimension.

    A request's message coordinate is either absent ([msg_id = None]) or a
    29-bit CAN identifier, so a region is "does it include the id-less
    request" plus an {!Intervals} set over [0..max_id].  This is the shared
    symbolic message semantics: the conflict and coverage lints, the
    semantic verifier and the update differ all reduce rule message clauses
    to regions and reason with set algebra instead of ad-hoc range walks. *)

type t = { none : bool; ids : Intervals.t }

val max_id : int
(** [0x1FFFFFFF], the top of the 29-bit extended CAN identifier space. *)

val empty : t

val full : t
(** The whole message dimension: the id-less request plus every id in
    [0..max_id]. *)

val all_ids : t
(** Every id in [0..max_id], excluding the id-less request. *)

val none_only : t
(** Only the id-less request. *)

val of_intervals : Intervals.t -> t
(** Ids only; does not include the id-less request. *)

val of_messages : Ast.msg_range list option -> t
(** The exact region a rule's message clause matches: [None] (no clause)
    matches {!full}; [Some ranges] matches only requests carrying an id
    inside the ranges — never the id-less request.  Mirrors
    {!Ir.message_matches} and the compiled table's matcher. *)

val is_empty : t -> bool

val equal : t -> t -> bool

val inter : t -> t -> t

val union : t -> t -> t

val diff : t -> t -> t

val subset : t -> t -> bool

val mem : t -> int option -> bool

val cardinal : t -> int
(** Number of ids covered, counting the id-less request as one point. *)

val to_ranges : t -> Ast.msg_range list
(** The id part as normalised AST ranges (sorted, merged). *)

val span : t -> (int * int) option
(** Lowest and highest covered id, ignoring the id-less point. *)

val witnesses : t -> int option list
(** Representative request coordinates: every interval endpoint, a
    midpoint for wide intervals, and [None] when the region includes the
    id-less request.  Evaluating a decision function at the witnesses of
    every region of a partition covers every boundary of the partition. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Json.t
