type strategy = Deny_overrides | Allow_overrides | First_match

let op_tag = Ir.Request.op_tag

(* ------------------------------------------------------------------ *)
(* Compile-time grouping key: dedicated hashing, no Hashtbl.hash on     *)
(* structured keys                                                      *)
(* ------------------------------------------------------------------ *)

module Asset_key = struct
  type t = { asset : string; op : Ir.op }

  let equal a b = a.op = b.op && String.equal a.asset b.asset

  let hash k = Ir.Request.pair_hash ~asset:k.asset k.op
end

module AH = Hashtbl.Make (Asset_key)

module Mode_tbl = Hashtbl.Make (struct
  type t = string

  let equal = String.equal

  let hash s = String.hash s land max_int
end)

(* ------------------------------------------------------------------ *)
(* Compiled rule form                                                  *)
(* ------------------------------------------------------------------ *)

(* Modes intern to bits 0..60 of a mask; bit 61 ([1 lsl unknown_mode_id])
   means "a mode the policy never names", so [Mask (-1)] (a rule with no
   mode scope) matches those too while explicit masks never can.  Policies
   naming more than 61 distinct modes keep the literal list — correctness
   over speed in a case that does not occur in practice. *)
let max_interned_modes = 61

(* mode ids are 0..60 for interned modes; 61 is the shared id of every
   mode the policy never names *)
let unknown_mode_id = max_interned_modes

let mode_slots = unknown_mode_id + 1

type cmodes = Mask of int | Listed of string list

(* Message-ID constraints after normalisation.  Almost every automotive
   rule covers one contiguous ID window, so the single-interval case gets
   its own constructor and matches with two integer compares instead of a
   cross-module binary search (no flambda, so [Intervals.mem] is a real
   call on the hot path). *)
type cmsgs = Any_msg | Range1 of int * int | Ranges of Intervals.t

type crule = {
  rule : Ir.rule;
  cmodes : cmodes;
  cmsgs : cmsgs;
  allow : bool;
  rated : bool;
}

type verdict =
  | Const of Ast.decision * Ir.rule
      (** head rule matches unconditionally: precomputed decision *)
  | By_mode of {
      decisions : Ast.decision array;
      rules : Ir.rule option array;
    }
      (** every rule in the bucket is mode-only (no message ranges, no
          rates): the whole bucket collapses to one decision per interned
          mode id — a branch-free array read at decision time *)
  | Scan of crule array

(* ------------------------------------------------------------------ *)
(* Open-addressed dispatch                                             *)
(* ------------------------------------------------------------------ *)

(* The [(subject, asset, op)] / [(asset, op)] key spaces are fixed once
   the policy is compiled, so instead of a general-purpose [Hashtbl]
   (whose [find_opt] allocates an option per lookup) the table is lowered
   into flat open-addressed arrays: power-of-two capacity at most half
   full, linear probing, hashes precomputed — a miss or hit costs a few
   array reads and string compares and never allocates.  [hashes.(j) = -1]
   marks an empty slot; [verdicts.(j)] keeps its [Some] from build time so
   lookups return a pre-existing pointer. *)
type dispatch = {
  dmask : int;
  hashes : int array;
  k1 : string array;  (* subject (exact) or asset (wildcard) *)
  k2 : string array;  (* asset (exact) or "" (wildcard) *)
  dops : int array;
  verdicts : verdict option array;
}

let empty_dispatch =
  {
    dmask = 0;
    hashes = [| -1 |];
    k1 = [| "" |];
    k2 = [| "" |];
    dops = [| 0 |];
    verdicts = [| None |];
  }

let build_dispatch entries =
  match entries with
  | [] -> empty_dispatch
  | _ ->
      let n = List.length entries in
      let cap = ref 1 in
      while !cap < 2 * n do
        cap := !cap * 2
      done;
      let cap = !cap in
      let d =
        {
          dmask = cap - 1;
          hashes = Array.make cap (-1);
          k1 = Array.make cap "";
          k2 = Array.make cap "";
          dops = Array.make cap 0;
          verdicts = Array.make cap None;
        }
      in
      List.iter
        (fun (h, k1, k2, op, verdict) ->
          let j = ref (h land d.dmask) in
          while d.hashes.(!j) <> -1 do
            j := (!j + 1) land d.dmask
          done;
          d.hashes.(!j) <- h;
          d.k1.(!j) <- k1;
          d.k2.(!j) <- k2;
          d.dops.(!j) <- op;
          d.verdicts.(!j) <- Some verdict)
        entries;
      d

(* top-level recursion (not an inner [let rec]) so probing never builds a
   closure — the batched loop's zero-allocation contract depends on it.
   [j] is always masked by [dmask] (capacity - 1), so every index is in
   bounds by construction and the reads can skip the bounds checks. *)
let rec probe d h k1 k2 op j =
  let hj = Array.unsafe_get d.hashes j in
  if hj = -1 then None
  else if
    hj = h
    && Array.unsafe_get d.dops j = op
    && String.equal (Array.unsafe_get d.k1 j) k1
    && String.equal (Array.unsafe_get d.k2 j) k2
  then Array.unsafe_get d.verdicts j
  else probe d h k1 k2 op ((j + 1) land d.dmask)

let[@inline] find_dispatch d ~h ~k1 ~k2 ~op = probe d h k1 k2 op (h land d.dmask)

(* Frozen after [compile]: every field is populated during compilation and
   only ever read afterwards, which is what makes a compiled table safe to
   share read-only across domains (see {!Secpol_par}). *)
type t = {
  strategy : strategy;
  default : Ast.decision;
  exact : dispatch;
  wildcard : dispatch;
  mode_ids : int Mode_tbl.t;
  stamp : int;
}

(* one unique stamp per compiled table, so batch arenas can tell whether
   their mode-interning memo still refers to the deciding table *)
let stamp_counter = Atomic.make 0

let strategy t = t.strategy

let default t = t.default

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let compile ~strategy (db : Ir.db) =
  let mode_ids = Mode_tbl.create 16 in
  let intern_mode m =
    match Mode_tbl.find_opt mode_ids m with
    | Some i -> Some i
    | None ->
        let i = Mode_tbl.length mode_ids in
        if i >= max_interned_modes then None
        else begin
          Mode_tbl.replace mode_ids m i;
          Some i
        end
  in
  let compile_modes = function
    | None -> Mask (-1)
    | Some modes -> (
        let bits =
          List.fold_left
            (fun acc m ->
              match (acc, intern_mode m) with
              | Some mask, Some i -> Some (mask lor (1 lsl i))
              | _, None | None, _ -> None)
            (Some 0) modes
        in
        match bits with Some mask -> Mask mask | None -> Listed modes)
  in
  let compile_rule (r : Ir.rule) =
    {
      rule = r;
      cmodes = compile_modes r.modes;
      cmsgs =
        (match r.messages with
        | None -> Any_msg
        | Some ranges -> (
            let iv =
              Intervals.of_ranges
                (List.map (fun (g : Ast.msg_range) -> (g.lo, g.hi)) ranges)
            in
            match Intervals.ranges iv with
            | [ (lo, hi) ] -> Range1 (lo, hi)
            | _ -> Ranges iv));
      allow = r.decision = Ast.Allow;
      rated = r.rate <> None;
    }
  in
  (* fold the strategy into bucket order: after this, every strategy is
     "first matching rule in bucket order wins" (rate-exhausted allows are
     skipped), which is exactly what the interpreted engine computes *)
  let reorder rules =
    match strategy with
    | First_match -> rules
    | Deny_overrides ->
        let denies, allows =
          List.partition (fun (r : Ir.rule) -> r.decision = Ast.Deny) rules
        in
        denies @ allows
    | Allow_overrides ->
        let denies, allows =
          List.partition (fun (r : Ir.rule) -> r.decision = Ast.Deny) rules
        in
        allows @ denies
  in
  let mode_only c = c.cmsgs = Any_msg && not c.rated in
  let mask_of c = match c.cmodes with Mask m -> m | Listed _ -> 0 in
  let to_verdict default rules =
    let arr = Array.of_list (List.map compile_rule (reorder rules)) in
    match arr.(0) with
    | { cmodes = Mask (-1); cmsgs = Any_msg; rated = false; rule; _ } ->
        (* everything after an unconditional head is unreachable *)
        Const (rule.Ir.decision, rule)
    | _
      when Array.for_all
             (fun c ->
               mode_only c && match c.cmodes with Mask _ -> true | Listed _ -> false)
             arr ->
        (* mode-only bucket: precompute the winner for every mode id, so
           deciding is one array read with no scan and no branches *)
        let decisions = Array.make mode_slots default in
        let rules = Array.make mode_slots None in
        for m = 0 to mode_slots - 1 do
          let bit = 1 lsl m in
          match Array.find_opt (fun c -> mask_of c land bit <> 0) arr with
          | Some c ->
              decisions.(m) <- c.rule.Ir.decision;
              rules.(m) <- Some c.rule
          | None -> ()
        done;
        By_mode { decisions; rules }
    | _ -> Scan arr
  in
  (* group rules by (asset, op) in source order *)
  let groups = AH.create 32 in
  let group_order = ref [] in
  List.iter
    (fun (r : Ir.rule) ->
      List.iter
        (fun op ->
          let key = { Asset_key.asset = r.asset; op } in
          match AH.find_opt groups key with
          | Some rules -> rules := r :: !rules
          | None ->
              AH.replace groups key (ref [ r ]);
              group_order := key :: !group_order)
        r.ops)
    db.rules;
  let exact_entries = ref [] in
  let wildcard_entries = ref [] in
  List.iter
    (fun (key : Asset_key.t) ->
      let rules = List.rev !(AH.find groups key) in
      let named =
        rules
        |> List.concat_map (fun (r : Ir.rule) ->
               match r.subjects with
               | Ast.Any_subject -> []
               | Ast.Subjects l -> l)
        |> List.sort_uniq String.compare
      in
      List.iter
        (fun subject ->
          let bucket =
            List.filter
              (fun (r : Ir.rule) -> Ir.subject_matches r.subjects subject)
              rules
          in
          exact_entries :=
            ( Ir.Request.triple_hash ~subject ~asset:key.asset key.op,
              subject,
              key.asset,
              op_tag key.op,
              to_verdict db.default bucket )
            :: !exact_entries)
        named;
      match
        List.filter (fun (r : Ir.rule) -> r.subjects = Ast.Any_subject) rules
      with
      | [] -> ()
      | any_rules ->
          wildcard_entries :=
            ( Ir.Request.pair_hash ~asset:key.asset key.op,
              key.asset,
              "",
              op_tag key.op,
              to_verdict db.default any_rules )
            :: !wildcard_entries)
    (List.rev !group_order);
  {
    strategy;
    default = db.default;
    exact = build_dispatch !exact_entries;
    wildcard = build_dispatch !wildcard_entries;
    mode_ids;
    stamp = Atomic.fetch_and_add stamp_counter 1;
  }

(* ------------------------------------------------------------------ *)
(* The fast path                                                       *)
(* ------------------------------------------------------------------ *)

let mode_id t mode =
  match Mode_tbl.find_opt t.mode_ids mode with
  | Some i -> i
  | None -> unknown_mode_id

let[@inline] crule_matches (c : crule) ~bit ~mode ~msg =
  (match c.cmodes with
  | Mask m -> m land bit <> 0
  | Listed l -> List.mem mode l)
  &&
  match c.cmsgs with
  | Any_msg -> true
  (* msg = -1 (no id) is below every lo, so it is never a member *)
  | Range1 (lo, hi) -> lo <= msg && msg <= hi
  | Ranges iv -> Intervals.mem iv msg

let rec scan_scalar t arr n i ~bit ~mode ~msg ~rate_available ~rate_consume =
  if i = n then (t.default, None)
  else
    let c = arr.(i) in
    if crule_matches c ~bit ~mode ~msg then
      if not c.allow then (Ast.Deny, Some c.rule)
      else if not c.rated then (Ast.Allow, Some c.rule)
      else if rate_available c.rule then begin
        rate_consume c.rule;
        (Ast.Allow, Some c.rule)
      end
      else scan_scalar t arr n (i + 1) ~bit ~mode ~msg ~rate_available
             ~rate_consume
    else
      scan_scalar t arr n (i + 1) ~bit ~mode ~msg ~rate_available ~rate_consume

let decide t ~rate_available ~rate_consume (req : Ir.request) =
  let op = op_tag req.op in
  let verdict =
    match
      find_dispatch t.exact
        ~h:(Ir.Request.triple_hash ~subject:req.subject ~asset:req.asset req.op)
        ~k1:req.subject ~k2:req.asset ~op
    with
    | Some _ as v -> v
    | None ->
        find_dispatch t.wildcard
          ~h:(Ir.Request.pair_hash ~asset:req.asset req.op)
          ~k1:req.asset ~k2:"" ~op
  in
  match verdict with
  | None -> (t.default, None)
  | Some (Const (decision, rule)) -> (decision, Some rule)
  | Some (By_mode { decisions; rules }) ->
      let m = mode_id t req.mode in
      (decisions.(m), rules.(m))
  | Some (Scan arr) ->
      let bit = 1 lsl mode_id t req.mode in
      let msg = match req.msg_id with None -> -1 | Some id -> id in
      scan_scalar t arr (Array.length arr) 0 ~bit ~mode:req.mode ~msg
        ~rate_available ~rate_consume

(* ------------------------------------------------------------------ *)
(* The batched path                                                    *)
(* ------------------------------------------------------------------ *)

(* Mode interning for a batch: physical-equality memo against the batch's
   last mode string, falling back to the hash lookup (which allocates an
   option) only when the mode string changes or the batch last ran
   against a different table.  Batches streaming one mode — the common
   bulk-replay shape — intern exactly once. *)
let[@inline] batch_mode_id t (b : Batch.t) i =
  let m = b.Batch.modes.(i) in
  if b.Batch.memo_stamp = t.stamp && m == b.Batch.memo_mode then
    b.Batch.memo_id
  else begin
    let id = mode_id t m in
    b.Batch.memo_stamp <- t.stamp;
    b.Batch.memo_mode <- m;
    b.Batch.memo_id <- id;
    id
  end

(* Top-level recursion again, and the batch/index pair is passed instead
   of the subject/now values so the float timestamp is only read — and
   boxed for the callback — in the rated branch (rate-limited rules are
   outside the zero-allocation contract; every other branch touches only
   ints and pre-existing pointers). *)
let rec scan_batched t arr n k ~bit ~mode ~msg (b : Batch.t) i rate_available
    rate_consume =
  if k = n then t.default
  else
    let c = Array.unsafe_get arr k (* k < n = Array.length arr *) in
    if crule_matches c ~bit ~mode ~msg then
      if not c.allow then Ast.Deny
      else if not c.rated then Ast.Allow
      else
        let subject = b.Batch.subjects.(i) in
        let now = b.Batch.nows.(i) in
        if rate_available c.rule subject now then begin
          rate_consume c.rule subject now;
          Ast.Allow
        end
        else
          scan_batched t arr n (k + 1) ~bit ~mode ~msg b i rate_available
            rate_consume
    else
      scan_batched t arr n (k + 1) ~bit ~mode ~msg b i rate_available
        rate_consume

let decide_batch t ~rate_available ~rate_consume (b : Batch.t)
    ~(out : Ast.decision array) =
  let n = b.Batch.len in
  let exact = t.exact and wildcard = t.wildcard in
  let subjects = b.Batch.subjects
  and assets = b.Batch.assets
  and modes = b.Batch.modes
  and ops = b.Batch.ops
  and msg_ids = b.Batch.msg_ids
  and exact_hash = b.Batch.exact_hash
  and wild_hash = b.Batch.wild_hash in
  let allows = ref 0 in
  (* [i < n = Batch.length b <= capacity], the invariant every column
     shares, so the column reads can skip their bounds checks; [out] is
     the only caller-supplied array and was length-checked by the engine. *)
  for i = 0 to n - 1 do
    let subject = Array.unsafe_get subjects i in
    let asset = Array.unsafe_get assets i in
    let op = Array.unsafe_get ops i in
    let verdict =
      match
        find_dispatch exact
          ~h:(Array.unsafe_get exact_hash i)
          ~k1:subject ~k2:asset ~op
      with
      | Some _ as v -> v
      | None ->
          find_dispatch wildcard
            ~h:(Array.unsafe_get wild_hash i)
            ~k1:asset ~k2:"" ~op
    in
    let decision =
      match verdict with
      | None -> t.default
      | Some (Const (decision, _)) -> decision
      | Some (By_mode { decisions; _ }) ->
          (* mode ids are < mode_slots = Array.length decisions *)
          Array.unsafe_get decisions (batch_mode_id t b i)
      | Some (Scan arr) ->
          scan_batched t arr (Array.length arr) 0
            ~bit:(1 lsl batch_mode_id t b i)
            ~mode:(Array.unsafe_get modes i)
            ~msg:(Array.unsafe_get msg_ids i)
            b i rate_available rate_consume
    in
    if decision = Ast.Allow then incr allows;
    out.(i) <- decision
  done;
  !allows

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

type stats = {
  buckets : int;
  wildcard_buckets : int;
  folded : int;
  mode_folded : int;
  max_bucket : int;
  modes : int;
}

let stats t =
  let fold_dispatch d (count, folded, mode_folded, max_bucket) =
    Array.fold_left
      (fun (count, folded, mode_folded, max_bucket) -> function
        | None -> (count, folded, mode_folded, max_bucket)
        | Some (Const _) -> (count + 1, folded + 1, mode_folded, max_bucket)
        | Some (By_mode _) -> (count + 1, folded, mode_folded + 1, max_bucket)
        | Some (Scan arr) ->
            (count + 1, folded, mode_folded, max max_bucket (Array.length arr)))
      (count, folded, mode_folded, max_bucket)
      d.verdicts
  in
  let exact_count, folded, mode_folded, max_bucket =
    fold_dispatch t.exact (0, 0, 0, 0)
  in
  let all_count, folded, mode_folded, max_bucket =
    fold_dispatch t.wildcard (exact_count, folded, mode_folded, max_bucket)
  in
  {
    buckets = exact_count;
    wildcard_buckets = all_count - exact_count;
    folded;
    mode_folded;
    max_bucket;
    modes = Mode_tbl.length t.mode_ids;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d buckets (+%d wildcard), %d folded to constants, %d folded per-mode, \
     longest scan %d, %d modes interned"
    s.buckets s.wildcard_buckets s.folded s.mode_folded s.max_bucket s.modes
