type strategy = Deny_overrides | Allow_overrides | First_match

(* ------------------------------------------------------------------ *)
(* Key modules: dedicated hashing, no Hashtbl.hash on structured keys  *)
(* ------------------------------------------------------------------ *)

let op_tag = function Ir.Read -> 17 | Ir.Write -> 29

module Subject_key = struct
  type t = { subject : string; asset : string; op : Ir.op }

  let equal a b =
    a.op = b.op
    && String.equal a.subject b.subject
    && String.equal a.asset b.asset

  let hash k =
    let h = String.hash k.subject in
    let h = (h * 31) + String.hash k.asset in
    ((h * 31) + op_tag k.op) land max_int
end

module Asset_key = struct
  type t = { asset : string; op : Ir.op }

  let equal a b = a.op = b.op && String.equal a.asset b.asset

  let hash k = ((String.hash k.asset * 31) + op_tag k.op) land max_int
end

module SH = Hashtbl.Make (Subject_key)
module AH = Hashtbl.Make (Asset_key)

module Mode_tbl = Hashtbl.Make (struct
  type t = string

  let equal = String.equal

  let hash s = String.hash s land max_int
end)

(* ------------------------------------------------------------------ *)
(* Compiled rule form                                                  *)
(* ------------------------------------------------------------------ *)

(* Modes intern to bits 0..60 of a mask; bit 61 means "a mode the policy
   never names", so [Mask (-1)] (a rule with no mode scope) matches those
   too while explicit masks never can.  Policies naming more than 61
   distinct modes keep the literal list — correctness over speed in a case
   that does not occur in practice. *)
let unknown_mode_bit = 1 lsl 61

let max_interned_modes = 61

type cmodes = Mask of int | Listed of string list

type cmsgs = Any_msg | Ranges of Intervals.t

type crule = {
  rule : Ir.rule;
  cmodes : cmodes;
  cmsgs : cmsgs;
  allow : bool;
  rated : bool;
}

type verdict =
  | Const of Ast.decision * Ir.rule
      (** head rule matches unconditionally: precomputed decision *)
  | Scan of crule array

(* Frozen after [compile]: every field (including the hashtables) is
   populated during compilation and only ever read afterwards, which is
   what makes a compiled table safe to share read-only across domains
   (see {!Secpol_par}). *)
type t = {
  strategy : strategy;
  default : Ast.decision;
  exact : verdict SH.t;
  wildcard : verdict AH.t;
  mode_ids : int Mode_tbl.t;
}

let strategy t = t.strategy

let default t = t.default

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let compile ~strategy (db : Ir.db) =
  let mode_ids = Mode_tbl.create 16 in
  let intern_mode m =
    match Mode_tbl.find_opt mode_ids m with
    | Some i -> Some i
    | None ->
        let i = Mode_tbl.length mode_ids in
        if i >= max_interned_modes then None
        else begin
          Mode_tbl.replace mode_ids m i;
          Some i
        end
  in
  let compile_modes = function
    | None -> Mask (-1)
    | Some modes -> (
        let bits =
          List.fold_left
            (fun acc m ->
              match (acc, intern_mode m) with
              | Some mask, Some i -> Some (mask lor (1 lsl i))
              | _, None | None, _ -> None)
            (Some 0) modes
        in
        match bits with Some mask -> Mask mask | None -> Listed modes)
  in
  let compile_rule (r : Ir.rule) =
    {
      rule = r;
      cmodes = compile_modes r.modes;
      cmsgs =
        (match r.messages with
        | None -> Any_msg
        | Some ranges ->
            Ranges
              (Intervals.of_ranges
                 (List.map (fun (g : Ast.msg_range) -> (g.lo, g.hi)) ranges)));
      allow = r.decision = Ast.Allow;
      rated = r.rate <> None;
    }
  in
  (* fold the strategy into bucket order: after this, every strategy is
     "first matching rule in bucket order wins" (rate-exhausted allows are
     skipped), which is exactly what the interpreted engine computes *)
  let reorder rules =
    match strategy with
    | First_match -> rules
    | Deny_overrides ->
        let denies, allows =
          List.partition (fun (r : Ir.rule) -> r.decision = Ast.Deny) rules
        in
        denies @ allows
    | Allow_overrides ->
        let denies, allows =
          List.partition (fun (r : Ir.rule) -> r.decision = Ast.Deny) rules
        in
        allows @ denies
  in
  let to_verdict rules =
    let arr = Array.of_list (List.map compile_rule (reorder rules)) in
    match arr.(0) with
    | { cmodes = Mask (-1); cmsgs = Any_msg; rated = false; rule; _ } ->
        (* everything after an unconditional head is unreachable *)
        Const (rule.Ir.decision, rule)
    | _ -> Scan arr
  in
  (* group rules by (asset, op) in source order *)
  let groups = AH.create 32 in
  let group_order = ref [] in
  List.iter
    (fun (r : Ir.rule) ->
      List.iter
        (fun op ->
          let key = { Asset_key.asset = r.asset; op } in
          match AH.find_opt groups key with
          | Some rules -> rules := r :: !rules
          | None ->
              AH.replace groups key (ref [ r ]);
              group_order := key :: !group_order)
        r.ops)
    db.rules;
  let exact = SH.create 64 in
  let wildcard = AH.create 32 in
  List.iter
    (fun (key : Asset_key.t) ->
      let rules = List.rev !(AH.find groups key) in
      let named =
        rules
        |> List.concat_map (fun (r : Ir.rule) ->
               match r.subjects with
               | Ast.Any_subject -> []
               | Ast.Subjects l -> l)
        |> List.sort_uniq String.compare
      in
      List.iter
        (fun subject ->
          let bucket =
            List.filter
              (fun (r : Ir.rule) -> Ir.subject_matches r.subjects subject)
              rules
          in
          SH.replace exact
            { Subject_key.subject; asset = key.asset; op = key.op }
            (to_verdict bucket))
        named;
      match
        List.filter (fun (r : Ir.rule) -> r.subjects = Ast.Any_subject) rules
      with
      | [] -> ()
      | any_rules -> AH.replace wildcard key (to_verdict any_rules))
    (List.rev !group_order);
  { strategy; default = db.default; exact; wildcard; mode_ids }

(* ------------------------------------------------------------------ *)
(* The fast path                                                       *)
(* ------------------------------------------------------------------ *)

let mode_bit t mode =
  match Mode_tbl.find_opt t.mode_ids mode with
  | Some i -> 1 lsl i
  | None -> unknown_mode_bit

let crule_matches (c : crule) ~bit ~mode ~msg_id =
  (match c.cmodes with
  | Mask m -> m land bit <> 0
  | Listed l -> List.mem mode l)
  &&
  match c.cmsgs with
  | Any_msg -> true
  | Ranges iv -> ( match msg_id with None -> false | Some id -> Intervals.mem iv id)

let decide t ~rate_available ~rate_consume (req : Ir.request) =
  let verdict =
    match
      SH.find_opt t.exact
        { Subject_key.subject = req.subject; asset = req.asset; op = req.op }
    with
    | Some _ as v -> v
    | None -> AH.find_opt t.wildcard { Asset_key.asset = req.asset; op = req.op }
  in
  match verdict with
  | None -> (t.default, None)
  | Some (Const (decision, rule)) -> (decision, Some rule)
  | Some (Scan arr) ->
      let bit = mode_bit t req.mode in
      let n = Array.length arr in
      let rec go i =
        if i = n then (t.default, None)
        else
          let c = arr.(i) in
          if crule_matches c ~bit ~mode:req.mode ~msg_id:req.msg_id then
            if not c.allow then (Ast.Deny, Some c.rule)
            else if not c.rated then (Ast.Allow, Some c.rule)
            else if rate_available c.rule then begin
              rate_consume c.rule;
              (Ast.Allow, Some c.rule)
            end
            else go (i + 1)
          else go (i + 1)
      in
      go 0

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

type stats = {
  buckets : int;
  wildcard_buckets : int;
  folded : int;
  max_bucket : int;
  modes : int;
}

let stats t =
  let fold_verdict v (folded, max_bucket) =
    match v with
    | Const _ -> (folded + 1, max_bucket)
    | Scan arr -> (folded, max max_bucket (Array.length arr))
  in
  let folded, max_bucket =
    SH.fold (fun _ v acc -> fold_verdict v acc) t.exact (0, 0)
  in
  let folded, max_bucket =
    AH.fold (fun _ v acc -> fold_verdict v acc) t.wildcard (folded, max_bucket)
  in
  {
    buckets = SH.length t.exact;
    wildcard_buckets = AH.length t.wildcard;
    folded;
    max_bucket;
    modes = Mode_tbl.length t.mode_ids;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d buckets (+%d wildcard), %d folded to constants, longest scan %d, %d \
     modes interned"
    s.buckets s.wildcard_buckets s.folded s.max_bucket s.modes
